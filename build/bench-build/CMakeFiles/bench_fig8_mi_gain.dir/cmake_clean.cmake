file(REMOVE_RECURSE
  "../bench/bench_fig8_mi_gain"
  "../bench/bench_fig8_mi_gain.pdb"
  "CMakeFiles/bench_fig8_mi_gain.dir/bench_fig8_mi_gain.cc.o"
  "CMakeFiles/bench_fig8_mi_gain.dir/bench_fig8_mi_gain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mi_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
