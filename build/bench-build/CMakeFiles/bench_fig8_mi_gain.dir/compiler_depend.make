# Empty compiler generated dependencies file for bench_fig8_mi_gain.
# This may be replaced when dependencies are built.
