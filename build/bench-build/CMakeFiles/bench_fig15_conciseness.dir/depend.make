# Empty dependencies file for bench_fig15_conciseness.
# This may be replaced when dependencies are built.
