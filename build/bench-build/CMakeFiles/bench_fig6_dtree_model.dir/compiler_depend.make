# Empty compiler generated dependencies file for bench_fig6_dtree_model.
# This may be replaced when dependencies are built.
