file(REMOVE_RECURSE
  "../bench/bench_fig6_dtree_model"
  "../bench/bench_fig6_dtree_model.pdb"
  "CMakeFiles/bench_fig6_dtree_model.dir/bench_fig6_dtree_model.cc.o"
  "CMakeFiles/bench_fig6_dtree_model.dir/bench_fig6_dtree_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dtree_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
