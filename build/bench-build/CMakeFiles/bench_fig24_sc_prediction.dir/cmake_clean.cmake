file(REMOVE_RECURSE
  "../bench/bench_fig24_sc_prediction"
  "../bench/bench_fig24_sc_prediction.pdb"
  "CMakeFiles/bench_fig24_sc_prediction.dir/bench_fig24_sc_prediction.cc.o"
  "CMakeFiles/bench_fig24_sc_prediction.dir/bench_fig24_sc_prediction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_sc_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
