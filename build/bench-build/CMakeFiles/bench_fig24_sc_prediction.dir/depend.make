# Empty dependencies file for bench_fig24_sc_prediction.
# This may be replaced when dependencies are built.
