file(REMOVE_RECURSE
  "../bench/bench_fig20_threads"
  "../bench/bench_fig20_threads.pdb"
  "CMakeFiles/bench_fig20_threads.dir/bench_fig20_threads.cc.o"
  "CMakeFiles/bench_fig20_threads.dir/bench_fig20_threads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
