# Empty dependencies file for bench_fig12_validation.
# This may be replaced when dependencies are built.
