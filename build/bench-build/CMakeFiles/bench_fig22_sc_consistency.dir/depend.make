# Empty dependencies file for bench_fig22_sc_consistency.
# This may be replaced when dependencies are built.
