file(REMOVE_RECURSE
  "../bench/bench_fig22_sc_consistency"
  "../bench/bench_fig22_sc_consistency.pdb"
  "CMakeFiles/bench_fig22_sc_consistency.dir/bench_fig22_sc_consistency.cc.o"
  "CMakeFiles/bench_fig22_sc_consistency.dir/bench_fig22_sc_consistency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_sc_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
