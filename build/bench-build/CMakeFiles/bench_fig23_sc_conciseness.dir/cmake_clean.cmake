file(REMOVE_RECURSE
  "../bench/bench_fig23_sc_conciseness"
  "../bench/bench_fig23_sc_conciseness.pdb"
  "CMakeFiles/bench_fig23_sc_conciseness.dir/bench_fig23_sc_conciseness.cc.o"
  "CMakeFiles/bench_fig23_sc_conciseness.dir/bench_fig23_sc_conciseness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_sc_conciseness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
