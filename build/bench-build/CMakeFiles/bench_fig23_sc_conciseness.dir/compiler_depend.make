# Empty compiler generated dependencies file for bench_fig23_sc_conciseness.
# This may be replaced when dependencies are built.
