# Empty dependencies file for bench_fig5_logreg_model.
# This may be replaced when dependencies are built.
