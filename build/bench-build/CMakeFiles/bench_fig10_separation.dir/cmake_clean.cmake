file(REMOVE_RECURSE
  "../bench/bench_fig10_separation"
  "../bench/bench_fig10_separation.pdb"
  "CMakeFiles/bench_fig10_separation.dir/bench_fig10_separation.cc.o"
  "CMakeFiles/bench_fig10_separation.dir/bench_fig10_separation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
