# Empty dependencies file for bench_fig14_consistency.
# This may be replaced when dependencies are built.
