file(REMOVE_RECURSE
  "../bench/bench_fig14_consistency"
  "../bench/bench_fig14_consistency.pdb"
  "CMakeFiles/bench_fig14_consistency.dir/bench_fig14_consistency.cc.o"
  "CMakeFiles/bench_fig14_consistency.dir/bench_fig14_consistency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
