file(REMOVE_RECURSE
  "../bench/bench_appendix_a"
  "../bench/bench_appendix_a.pdb"
  "CMakeFiles/bench_appendix_a.dir/bench_appendix_a.cc.o"
  "CMakeFiles/bench_appendix_a.dir/bench_appendix_a.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
