file(REMOVE_RECURSE
  "../bench/bench_fig1_queuing"
  "../bench/bench_fig1_queuing.pdb"
  "CMakeFiles/bench_fig1_queuing.dir/bench_fig1_queuing.cc.o"
  "CMakeFiles/bench_fig1_queuing.dir/bench_fig1_queuing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_queuing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
