file(REMOVE_RECURSE
  "../bench/bench_summary_claims"
  "../bench/bench_summary_claims.pdb"
  "CMakeFiles/bench_summary_claims.dir/bench_summary_claims.cc.o"
  "CMakeFiles/bench_summary_claims.dir/bench_summary_claims.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
