# Empty dependencies file for penalized_selection_test.
# This may be replaced when dependencies are built.
