file(REMOVE_RECURSE
  "CMakeFiles/penalized_selection_test.dir/penalized_selection_test.cc.o"
  "CMakeFiles/penalized_selection_test.dir/penalized_selection_test.cc.o.d"
  "penalized_selection_test"
  "penalized_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/penalized_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
