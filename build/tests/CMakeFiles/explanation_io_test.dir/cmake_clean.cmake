file(REMOVE_RECURSE
  "CMakeFiles/explanation_io_test.dir/explanation_io_test.cc.o"
  "CMakeFiles/explanation_io_test.dir/explanation_io_test.cc.o.d"
  "explanation_io_test"
  "explanation_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explanation_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
