# Empty dependencies file for explanation_io_test.
# This may be replaced when dependencies are built.
