file(REMOVE_RECURSE
  "CMakeFiles/cep_engine_test.dir/cep_engine_test.cc.o"
  "CMakeFiles/cep_engine_test.dir/cep_engine_test.cc.o.d"
  "cep_engine_test"
  "cep_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cep_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
