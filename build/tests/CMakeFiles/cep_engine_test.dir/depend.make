# Empty dependencies file for cep_engine_test.
# This may be replaced when dependencies are built.
