file(REMOVE_RECURSE
  "CMakeFiles/correlation_filter_test.dir/correlation_filter_test.cc.o"
  "CMakeFiles/correlation_filter_test.dir/correlation_filter_test.cc.o.d"
  "correlation_filter_test"
  "correlation_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
