# Empty dependencies file for within_test.
# This may be replaced when dependencies are built.
