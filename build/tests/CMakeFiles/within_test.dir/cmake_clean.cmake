file(REMOVE_RECURSE
  "CMakeFiles/within_test.dir/within_test.cc.o"
  "CMakeFiles/within_test.dir/within_test.cc.o.d"
  "within_test"
  "within_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/within_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
