file(REMOVE_RECURSE
  "CMakeFiles/partition_alignment_test.dir/partition_alignment_test.cc.o"
  "CMakeFiles/partition_alignment_test.dir/partition_alignment_test.cc.o.d"
  "partition_alignment_test"
  "partition_alignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_alignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
