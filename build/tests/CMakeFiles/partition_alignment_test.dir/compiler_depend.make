# Empty compiler generated dependencies file for partition_alignment_test.
# This may be replaced when dependencies are built.
