# Empty compiler generated dependencies file for supply_chain_sim_test.
# This may be replaced when dependencies are built.
