file(REMOVE_RECURSE
  "CMakeFiles/supply_chain_sim_test.dir/supply_chain_sim_test.cc.o"
  "CMakeFiles/supply_chain_sim_test.dir/supply_chain_sim_test.cc.o.d"
  "supply_chain_sim_test"
  "supply_chain_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_chain_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
