# Empty dependencies file for xstream_system_test.
# This may be replaced when dependencies are built.
