file(REMOVE_RECURSE
  "CMakeFiles/xstream_system_test.dir/xstream_system_test.cc.o"
  "CMakeFiles/xstream_system_test.dir/xstream_system_test.cc.o.d"
  "xstream_system_test"
  "xstream_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xstream_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
