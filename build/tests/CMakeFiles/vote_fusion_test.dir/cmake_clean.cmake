file(REMOVE_RECURSE
  "CMakeFiles/vote_fusion_test.dir/vote_fusion_test.cc.o"
  "CMakeFiles/vote_fusion_test.dir/vote_fusion_test.cc.o.d"
  "vote_fusion_test"
  "vote_fusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vote_fusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
