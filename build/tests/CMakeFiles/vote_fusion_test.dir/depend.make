# Empty dependencies file for vote_fusion_test.
# This may be replaced when dependencies are built.
