file(REMOVE_RECURSE
  "CMakeFiles/mutual_info_test.dir/mutual_info_test.cc.o"
  "CMakeFiles/mutual_info_test.dir/mutual_info_test.cc.o.d"
  "mutual_info_test"
  "mutual_info_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutual_info_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
