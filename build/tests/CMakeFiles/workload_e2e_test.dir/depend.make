# Empty dependencies file for workload_e2e_test.
# This may be replaced when dependencies are built.
