file(REMOVE_RECURSE
  "CMakeFiles/workload_e2e_test.dir/workload_e2e_test.cc.o"
  "CMakeFiles/workload_e2e_test.dir/workload_e2e_test.cc.o.d"
  "workload_e2e_test"
  "workload_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
