# Empty dependencies file for entropy_distance_test.
# This may be replaced when dependencies are built.
