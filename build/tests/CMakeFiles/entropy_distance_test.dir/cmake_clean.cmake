file(REMOVE_RECURSE
  "CMakeFiles/entropy_distance_test.dir/entropy_distance_test.cc.o"
  "CMakeFiles/entropy_distance_test.dir/entropy_distance_test.cc.o.d"
  "entropy_distance_test"
  "entropy_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entropy_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
