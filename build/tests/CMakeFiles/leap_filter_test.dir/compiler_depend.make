# Empty compiler generated dependencies file for leap_filter_test.
# This may be replaced when dependencies are built.
