file(REMOVE_RECURSE
  "CMakeFiles/leap_filter_test.dir/leap_filter_test.cc.o"
  "CMakeFiles/leap_filter_test.dir/leap_filter_test.cc.o.d"
  "leap_filter_test"
  "leap_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leap_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
