file(REMOVE_RECURSE
  "CMakeFiles/hadoop_sim_test.dir/hadoop_sim_test.cc.o"
  "CMakeFiles/hadoop_sim_test.dir/hadoop_sim_test.cc.o.d"
  "hadoop_sim_test"
  "hadoop_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hadoop_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
