file(REMOVE_RECURSE
  "CMakeFiles/nfa_differential_test.dir/nfa_differential_test.cc.o"
  "CMakeFiles/nfa_differential_test.dir/nfa_differential_test.cc.o.d"
  "nfa_differential_test"
  "nfa_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfa_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
