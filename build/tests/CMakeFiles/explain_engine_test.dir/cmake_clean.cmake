file(REMOVE_RECURSE
  "CMakeFiles/explain_engine_test.dir/explain_engine_test.cc.o"
  "CMakeFiles/explain_engine_test.dir/explain_engine_test.cc.o.d"
  "explain_engine_test"
  "explain_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
