# Empty dependencies file for auto_detect.
# This may be replaced when dependencies are built.
