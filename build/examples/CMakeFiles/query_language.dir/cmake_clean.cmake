file(REMOVE_RECURSE
  "CMakeFiles/query_language.dir/query_language.cpp.o"
  "CMakeFiles/query_language.dir/query_language.cpp.o.d"
  "query_language"
  "query_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
