# Empty dependencies file for proactive_monitoring.
# This may be replaced when dependencies are built.
