file(REMOVE_RECURSE
  "CMakeFiles/proactive_monitoring.dir/proactive_monitoring.cpp.o"
  "CMakeFiles/proactive_monitoring.dir/proactive_monitoring.cpp.o.d"
  "proactive_monitoring"
  "proactive_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
