file(REMOVE_RECURSE
  "CMakeFiles/exstream_cli.dir/exstream_cli.cpp.o"
  "CMakeFiles/exstream_cli.dir/exstream_cli.cpp.o.d"
  "exstream_cli"
  "exstream_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exstream_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
