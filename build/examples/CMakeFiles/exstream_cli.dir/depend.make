# Empty dependencies file for exstream_cli.
# This may be replaced when dependencies are built.
