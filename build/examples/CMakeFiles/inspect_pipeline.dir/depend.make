# Empty dependencies file for inspect_pipeline.
# This may be replaced when dependencies are built.
