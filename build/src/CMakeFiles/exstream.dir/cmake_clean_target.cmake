file(REMOVE_RECURSE
  "libexstream.a"
)
