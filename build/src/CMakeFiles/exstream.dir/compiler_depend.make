# Empty compiler generated dependencies file for exstream.
# This may be replaced when dependencies are built.
