
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/archive/archive.cc" "src/CMakeFiles/exstream.dir/archive/archive.cc.o" "gcc" "src/CMakeFiles/exstream.dir/archive/archive.cc.o.d"
  "/root/repo/src/archive/chunk.cc" "src/CMakeFiles/exstream.dir/archive/chunk.cc.o" "gcc" "src/CMakeFiles/exstream.dir/archive/chunk.cc.o.d"
  "/root/repo/src/archive/serialization.cc" "src/CMakeFiles/exstream.dir/archive/serialization.cc.o" "gcc" "src/CMakeFiles/exstream.dir/archive/serialization.cc.o.d"
  "/root/repo/src/cep/engine.cc" "src/CMakeFiles/exstream.dir/cep/engine.cc.o" "gcc" "src/CMakeFiles/exstream.dir/cep/engine.cc.o.d"
  "/root/repo/src/cep/match_table.cc" "src/CMakeFiles/exstream.dir/cep/match_table.cc.o" "gcc" "src/CMakeFiles/exstream.dir/cep/match_table.cc.o.d"
  "/root/repo/src/cep/nfa.cc" "src/CMakeFiles/exstream.dir/cep/nfa.cc.o" "gcc" "src/CMakeFiles/exstream.dir/cep/nfa.cc.o.d"
  "/root/repo/src/cep/predicate.cc" "src/CMakeFiles/exstream.dir/cep/predicate.cc.o" "gcc" "src/CMakeFiles/exstream.dir/cep/predicate.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/exstream.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/exstream.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/exstream.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/exstream.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/exstream.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/exstream.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/exstream.dir/common/status.cc.o" "gcc" "src/CMakeFiles/exstream.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/exstream.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/exstream.dir/common/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/exstream.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/exstream.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/exstream.dir/common/value.cc.o" "gcc" "src/CMakeFiles/exstream.dir/common/value.cc.o.d"
  "/root/repo/src/detect/detector.cc" "src/CMakeFiles/exstream.dir/detect/detector.cc.o" "gcc" "src/CMakeFiles/exstream.dir/detect/detector.cc.o.d"
  "/root/repo/src/event/event.cc" "src/CMakeFiles/exstream.dir/event/event.cc.o" "gcc" "src/CMakeFiles/exstream.dir/event/event.cc.o.d"
  "/root/repo/src/event/registry.cc" "src/CMakeFiles/exstream.dir/event/registry.cc.o" "gcc" "src/CMakeFiles/exstream.dir/event/registry.cc.o.d"
  "/root/repo/src/event/schema.cc" "src/CMakeFiles/exstream.dir/event/schema.cc.o" "gcc" "src/CMakeFiles/exstream.dir/event/schema.cc.o.d"
  "/root/repo/src/event/stream.cc" "src/CMakeFiles/exstream.dir/event/stream.cc.o" "gcc" "src/CMakeFiles/exstream.dir/event/stream.cc.o.d"
  "/root/repo/src/explain/alignment.cc" "src/CMakeFiles/exstream.dir/explain/alignment.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/alignment.cc.o.d"
  "/root/repo/src/explain/annotation.cc" "src/CMakeFiles/exstream.dir/explain/annotation.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/annotation.cc.o.d"
  "/root/repo/src/explain/correlation_filter.cc" "src/CMakeFiles/exstream.dir/explain/correlation_filter.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/correlation_filter.cc.o.d"
  "/root/repo/src/explain/engine.cc" "src/CMakeFiles/exstream.dir/explain/engine.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/engine.cc.o.d"
  "/root/repo/src/explain/explanation.cc" "src/CMakeFiles/exstream.dir/explain/explanation.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/explanation.cc.o.d"
  "/root/repo/src/explain/explanation_io.cc" "src/CMakeFiles/exstream.dir/explain/explanation_io.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/explanation_io.cc.o.d"
  "/root/repo/src/explain/labeling.cc" "src/CMakeFiles/exstream.dir/explain/labeling.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/labeling.cc.o.d"
  "/root/repo/src/explain/leap_filter.cc" "src/CMakeFiles/exstream.dir/explain/leap_filter.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/leap_filter.cc.o.d"
  "/root/repo/src/explain/partition_table.cc" "src/CMakeFiles/exstream.dir/explain/partition_table.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/partition_table.cc.o.d"
  "/root/repo/src/explain/predicate_builder.cc" "src/CMakeFiles/exstream.dir/explain/predicate_builder.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/predicate_builder.cc.o.d"
  "/root/repo/src/explain/reward.cc" "src/CMakeFiles/exstream.dir/explain/reward.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/reward.cc.o.d"
  "/root/repo/src/explain/temporal.cc" "src/CMakeFiles/exstream.dir/explain/temporal.cc.o" "gcc" "src/CMakeFiles/exstream.dir/explain/temporal.cc.o.d"
  "/root/repo/src/features/builder.cc" "src/CMakeFiles/exstream.dir/features/builder.cc.o" "gcc" "src/CMakeFiles/exstream.dir/features/builder.cc.o.d"
  "/root/repo/src/features/feature.cc" "src/CMakeFiles/exstream.dir/features/feature.cc.o" "gcc" "src/CMakeFiles/exstream.dir/features/feature.cc.o.d"
  "/root/repo/src/features/feature_space.cc" "src/CMakeFiles/exstream.dir/features/feature_space.cc.o" "gcc" "src/CMakeFiles/exstream.dir/features/feature_space.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/exstream.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/exstream.dir/io/csv.cc.o.d"
  "/root/repo/src/ml/data_fusion.cc" "src/CMakeFiles/exstream.dir/ml/data_fusion.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/data_fusion.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/exstream.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/exstream.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/discretize.cc" "src/CMakeFiles/exstream.dir/ml/discretize.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/discretize.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/exstream.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/majority_vote.cc" "src/CMakeFiles/exstream.dir/ml/majority_vote.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/majority_vote.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/exstream.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/mutual_info.cc" "src/CMakeFiles/exstream.dir/ml/mutual_info.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/mutual_info.cc.o.d"
  "/root/repo/src/ml/penalized_selection.cc" "src/CMakeFiles/exstream.dir/ml/penalized_selection.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/penalized_selection.cc.o.d"
  "/root/repo/src/ml/stump.cc" "src/CMakeFiles/exstream.dir/ml/stump.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ml/stump.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/exstream.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/exstream.dir/query/ast.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/exstream.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/exstream.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/exstream.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/exstream.dir/query/parser.cc.o.d"
  "/root/repo/src/sim/hadoop_sim.cc" "src/CMakeFiles/exstream.dir/sim/hadoop_sim.cc.o" "gcc" "src/CMakeFiles/exstream.dir/sim/hadoop_sim.cc.o.d"
  "/root/repo/src/sim/metric_model.cc" "src/CMakeFiles/exstream.dir/sim/metric_model.cc.o" "gcc" "src/CMakeFiles/exstream.dir/sim/metric_model.cc.o.d"
  "/root/repo/src/sim/supply_chain_sim.cc" "src/CMakeFiles/exstream.dir/sim/supply_chain_sim.cc.o" "gcc" "src/CMakeFiles/exstream.dir/sim/supply_chain_sim.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "src/CMakeFiles/exstream.dir/sim/workloads.cc.o" "gcc" "src/CMakeFiles/exstream.dir/sim/workloads.cc.o.d"
  "/root/repo/src/ts/aggregate.cc" "src/CMakeFiles/exstream.dir/ts/aggregate.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ts/aggregate.cc.o.d"
  "/root/repo/src/ts/clustering.cc" "src/CMakeFiles/exstream.dir/ts/clustering.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ts/clustering.cc.o.d"
  "/root/repo/src/ts/correlation.cc" "src/CMakeFiles/exstream.dir/ts/correlation.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ts/correlation.cc.o.d"
  "/root/repo/src/ts/distance.cc" "src/CMakeFiles/exstream.dir/ts/distance.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ts/distance.cc.o.d"
  "/root/repo/src/ts/entropy_distance.cc" "src/CMakeFiles/exstream.dir/ts/entropy_distance.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ts/entropy_distance.cc.o.d"
  "/root/repo/src/ts/time_series.cc" "src/CMakeFiles/exstream.dir/ts/time_series.cc.o" "gcc" "src/CMakeFiles/exstream.dir/ts/time_series.cc.o.d"
  "/root/repo/src/viz/ascii_chart.cc" "src/CMakeFiles/exstream.dir/viz/ascii_chart.cc.o" "gcc" "src/CMakeFiles/exstream.dir/viz/ascii_chart.cc.o.d"
  "/root/repo/src/xstream/evaluation.cc" "src/CMakeFiles/exstream.dir/xstream/evaluation.cc.o" "gcc" "src/CMakeFiles/exstream.dir/xstream/evaluation.cc.o.d"
  "/root/repo/src/xstream/system.cc" "src/CMakeFiles/exstream.dir/xstream/system.cc.o" "gcc" "src/CMakeFiles/exstream.dir/xstream/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
