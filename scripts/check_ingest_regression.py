#!/usr/bin/env python3
"""CI regression gate for bench_ingest_throughput.

Compares a fresh bench run against the committed baseline using only
machine-independent quantities, so a baseline recorded on one host gates runs
on any other:

  * merge speedup ratio — merged batched ev/s divided by no-merge ev/s at the
    top query count, each measured *within its own run*. Hardware speed
    cancels out of the ratio; a >threshold drop (default 10%) fails.
  * match rows — the benches are seeded and deterministic, so every config
    must produce exactly the baseline's match rows on any machine.
  * merge groups — the planner must collapse the replicated query set into no
    more groups than the baseline did.

Absolute events/sec are printed for context but never gated: cross-machine
absolute throughput with a fixed threshold would produce false verdicts as
runner hardware varies.

Both runs must use the same bench configuration (same --smoke flag); the
script refuses to compare a smoke run against a full baseline.

Usage:
  check_ingest_regression.py BASELINE.json CURRENT.json [--threshold 0.10]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def pick(results, queries, mode, threads):
    for r in results:
        if r["queries"] == queries and r["mode"] == mode and r["threads"] == threads:
            return r
    return None


def merge_speedup(results, queries, failures, label):
    """Within-run merged/no-merge throughput ratio at `queries` (x1)."""
    merged = pick(results, queries, "batched", 1)
    plain = pick(results, queries, "no-merge", 1)
    if merged is None or plain is None:
        failures.append(f"{label}: missing batched/no-merge x1 @ {queries} queries")
        return None
    if plain["events_per_sec"] <= 0:
        failures.append(f"{label}: no-merge x1 @ {queries} queries ran at 0 ev/s")
        return None
    return merged["events_per_sec"] / plain["events_per_sec"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated fractional drop in the merge speedup "
                         "ratio (default 0.10)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    if base.get("smoke") != cur.get("smoke"):
        print(f"FAIL: config mismatch: baseline smoke={base.get('smoke')}, "
              f"current smoke={cur.get('smoke')}")
        return 1
    if base.get("batch_size") != cur.get("batch_size"):
        print(f"FAIL: batch_size mismatch: {base.get('batch_size')} vs "
              f"{cur.get('batch_size')}")
        return 1

    top_queries = max(r["queries"] for r in base["results"])
    failures = []

    # Informational only — absolute ev/s depend on the host and are not gated.
    for mode in ("batched", "no-merge"):
        b = pick(base["results"], top_queries, mode, 1)
        c = pick(cur["results"], top_queries, mode, 1)
        if b is not None and c is not None:
            print(f"{mode:>9} x1 @ {top_queries}q: baseline "
                  f"{b['events_per_sec']:,.0f} ev/s, current "
                  f"{c['events_per_sec']:,.0f} ev/s (informational)")

    # Throughput gate: the within-run merge speedup ratio. Both sides of the
    # ratio ran on the same machine seconds apart, so the comparison against
    # the baseline's ratio is hardware-independent.
    b_ratio = merge_speedup(base["results"], top_queries, failures, "baseline")
    c_ratio = merge_speedup(cur["results"], top_queries, failures, "current")
    if b_ratio is not None and c_ratio is not None:
        floor = b_ratio * (1.0 - args.threshold)
        verdict = "OK" if c_ratio >= floor else "REGRESSED"
        print(f"merge speedup @ {top_queries}q: baseline {b_ratio:,.1f}x, "
              f"current {c_ratio:,.1f}x, floor {floor:,.1f}x -> {verdict}")
        if verdict != "OK":
            failures.append(
                f"merge speedup @ {top_queries} queries dropped "
                f"{(1.0 - c_ratio / b_ratio) * 100.0:.1f}% "
                f"(> {args.threshold * 100.0:.0f}% allowed)")

    # Work-equivalence cross-check: every config must produce the same match
    # rows as its baseline counterpart — the benches are seeded, so this is
    # exact on any machine, and a throughput "win" that skips work is a
    # correctness bug, not a speedup.
    for b in base["results"]:
        c = pick(cur["results"], b["queries"], b["mode"], b["threads"])
        if c is not None and c["match_rows"] != b["match_rows"]:
            failures.append(
                f"{b['mode']} x{b['threads']} @ {b['queries']} queries: "
                f"match_rows {c['match_rows']} != baseline {b['match_rows']}")

    # Merge-plan gate: the optimizer must still collapse the replicated query
    # set into as few groups as the baseline did.
    b = pick(base["results"], top_queries, "batched", 1)
    c = pick(cur["results"], top_queries, "batched", 1)
    if b is not None and c is not None:
        print(f"merge groups @ {top_queries}q: baseline {b['merge_groups']}, "
              f"current {c['merge_groups']} (compression "
              f"{c['merge_compression']:.1f}x)")
        if c["merge_groups"] > b["merge_groups"]:
            failures.append(
                f"merge planner regressed: {c['merge_groups']} groups @ "
                f"{top_queries} queries, baseline had {b['merge_groups']}")

    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nPASS: no ingest regression (ratio-gated; absolute ev/s not compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
