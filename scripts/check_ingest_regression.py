#!/usr/bin/env python3
"""CI regression gate for bench_ingest_throughput.

Compares a fresh bench run against the committed baseline and fails (exit 1)
if ingestion throughput at the top query count regressed by more than the
threshold (default 10%), or if the multi-query optimizer lost compression
(more merge groups than the baseline for the same query set).

Both runs must use the same bench configuration (same --smoke flag); the
script refuses to compare a smoke run against a full baseline.

Usage:
  check_ingest_regression.py BASELINE.json CURRENT.json [--threshold 0.10]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def pick(results, queries, mode, threads):
    for r in results:
        if r["queries"] == queries and r["mode"] == mode and r["threads"] == threads:
            return r
    return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated fractional throughput drop (default 0.10)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    if base.get("smoke") != cur.get("smoke"):
        print(f"FAIL: config mismatch: baseline smoke={base.get('smoke')}, "
              f"current smoke={cur.get('smoke')}")
        return 1
    if base.get("batch_size") != cur.get("batch_size"):
        print(f"FAIL: batch_size mismatch: {base.get('batch_size')} vs "
              f"{cur.get('batch_size')}")
        return 1

    top_queries = max(r["queries"] for r in base["results"])
    failures = []

    # Throughput gate: merged batched single-thread at the top query count is
    # the configuration the tentpole optimizes; it is also the least noisy
    # (no cross-core scheduling variance).
    for mode in ("batched", "no-merge"):
        b = pick(base["results"], top_queries, mode, 1)
        c = pick(cur["results"], top_queries, mode, 1)
        if b is None or c is None:
            failures.append(f"missing {mode} x1 @ {top_queries} queries "
                            f"(baseline={b is not None}, current={c is not None})")
            continue
        floor = b["events_per_sec"] * (1.0 - args.threshold)
        verdict = "OK" if c["events_per_sec"] >= floor else "REGRESSED"
        print(f"{mode:>9} x1 @ {top_queries}q: baseline "
              f"{b['events_per_sec']:,.0f} ev/s, current "
              f"{c['events_per_sec']:,.0f} ev/s, floor {floor:,.0f} -> {verdict}")
        if verdict != "OK":
            failures.append(
                f"{mode} x1 @ {top_queries} queries dropped "
                f"{(1.0 - c['events_per_sec'] / b['events_per_sec']) * 100.0:.1f}% "
                f"(> {args.threshold * 100.0:.0f}% allowed)")

    # Work-equivalence cross-check: every config must produce the same match
    # rows as its baseline counterpart — a throughput "win" that skips work
    # is a correctness bug, not a speedup.
    for b in base["results"]:
        c = pick(cur["results"], b["queries"], b["mode"], b["threads"])
        if c is not None and c["match_rows"] != b["match_rows"]:
            failures.append(
                f"{b['mode']} x{b['threads']} @ {b['queries']} queries: "
                f"match_rows {c['match_rows']} != baseline {b['match_rows']}")

    # Merge-plan gate: the optimizer must still collapse the replicated query
    # set into as few groups as the baseline did.
    b = pick(base["results"], top_queries, "batched", 1)
    c = pick(cur["results"], top_queries, "batched", 1)
    if b is not None and c is not None:
        print(f"merge groups @ {top_queries}q: baseline {b['merge_groups']}, "
              f"current {c['merge_groups']} (compression "
              f"{c['merge_compression']:.1f}x)")
        if c["merge_groups"] > b["merge_groups"]:
            failures.append(
                f"merge planner regressed: {c['merge_groups']} groups @ "
                f"{top_queries} queries, baseline had {b['merge_groups']}")

    if failures:
        print("\nFAIL:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nPASS: no ingest throughput regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
