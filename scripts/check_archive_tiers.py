#!/usr/bin/env python3
"""Gate the tiered-archive benchmark (machine-independent).

bench_archive_tiers serializes the same simulator archive through every
spill format and reports the on-disk byte counts, plus correctness
booleans from its tiered-vs-exact differential Explain run. Byte counts
and booleans do not depend on hardware speed, so this gate runs on any
machine; the wall-clock speedups in the JSON are informational here
(the bench binary itself gates them in full mode, where the workload is
large enough for timing to be stable).

Checks, in order:
  1. Correctness: ``abnormal_series_identical`` is true — tiered
     reference scans must never change the abnormal-interval features —
     and ``tier_segments_served`` > 0 (the tiered pass really answered
     from tiers; a zero means the timing compared identical code paths).
  2. Compression: ``compression_ratio_v3_over_v4`` >= --min-ratio
     (default 5.0 — the v4 acceptance floor; pass a lower floor for
     reduced smoke workloads only if their ratio genuinely differs).
  3. Optionally, against a committed baseline JSON (--baseline): the
     current ratio may not regress below --regression x the baseline
     ratio (default 0.9), catching codec regressions that still clear
     the absolute floor.

Usage:
  check_archive_tiers.py BENCH_archive_tiers.json [--min-ratio 5.0]
      [--baseline bench/baselines/BENCH_archive_tiers_smoke.json]
      [--regression 0.9]
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_archive_tiers.json to check")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=5.0,
        help="minimum v3/v4 on-disk compression ratio",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON to compare the ratio against",
    )
    parser.add_argument(
        "--regression",
        type=float,
        default=0.9,
        help="minimum current/baseline compression-ratio quotient",
    )
    args = parser.parse_args()

    with open(args.current, "r", encoding="utf-8") as f:
        cur = json.load(f)

    if cur.get("bench") != "archive_tiers":
        fail(f"{args.current} is not an archive_tiers benchmark result")

    for key in (
        "v3_bytes",
        "v4_bytes",
        "compression_ratio_v3_over_v4",
        "tier_segments_served",
        "abnormal_series_identical",
        "explain_speedup",
    ):
        if key not in cur:
            fail(f"missing field {key!r} in {args.current}")

    failures = []

    if not cur["abnormal_series_identical"]:
        failures.append(
            "tiered Explain changed the abnormal-interval feature series — "
            "tiers must only ever answer reference-side scans"
        )
    if cur["tier_segments_served"] <= 0:
        failures.append(
            "tiered pass served no tier segments — the comparison never "
            "exercised the tier path"
        )

    ratio = cur["compression_ratio_v3_over_v4"]
    print(
        f"spill size: v3 {cur['v3_bytes']} B, v4 {cur['v4_bytes']} B "
        f"(ratio {ratio:.2f}x, floor {args.min_ratio:.2f}x)"
    )
    print(
        f"explain speedup {cur['explain_speedup']:.2f}x "
        f"(informational; gated by the bench binary in full mode)"
    )
    if ratio < args.min_ratio:
        failures.append(
            f"compression ratio {ratio:.2f}x below floor {args.min_ratio:.2f}x"
        )

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as f:
            base = json.load(f)
        base_ratio = base["compression_ratio_v3_over_v4"]
        quotient = ratio / base_ratio if base_ratio > 0 else 0.0
        print(
            f"baseline ratio {base_ratio:.2f}x, current/baseline "
            f"{quotient:.3f} (floor {args.regression:.3f})"
        )
        if quotient < args.regression:
            failures.append(
                f"compression ratio regressed to {quotient:.3f} of the "
                f"committed baseline ({ratio:.2f}x vs {base_ratio:.2f}x)"
            )

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}")
        sys.exit(1)
    mode = "smoke" if cur.get("smoke") else "full"
    print(
        f"PASS: archive tiering gate ({mode} run, "
        f"{cur.get('events_total', '?')} events)"
    )


if __name__ == "__main__":
    main()
