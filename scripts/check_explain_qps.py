#!/usr/bin/env python3
"""Gate the continuous-serving Explain benchmark (machine-independent).

bench_explain_qps runs one explanation through three feature paths
(incremental tails, columnar archive scan, legacy row scan) and reports
bit-identity booleans, the single-flight computation count for
concurrent callers of one cold key, and the cached/uncached and
incremental/scan speed ratios. The booleans and the computation count do
not depend on hardware speed, so this gate runs on any machine. The
speed *ratios* are mostly machine-independent too (both sides run on the
same box), so they are gated here against conservative floors and,
optionally, a committed baseline; absolute wall-clock numbers are
informational only.

Checks, in order:
  1. Correctness: ``incremental_identical`` and ``legacy_identical`` are
     true (the serving layer must never change an explanation), and
     ``tail_full_hits + tail_partial_hits`` > 0 (the incremental pass
     really answered from the tails).
  2. Single-flight: ``single_flight_computations`` == 1 — concurrent
     callers of one cold key must share one computation.
  3. Ratios, full runs only: ``cached_speedup`` >= --min-cached-speedup
     (default 20) and ``incremental_speedup`` >= --min-incremental-speedup
     (default 2). Smoke workloads are too small to amortize the tail
     path's per-call overhead, so for them the floors are informational
     and only the baseline-regression check below applies (the bench
     binary itself enforces the floors in full mode).
  4. Optionally, against a committed baseline JSON (--baseline): neither
     ratio may regress below --regression x its baseline value
     (default 0.5 — ratios on tiny smoke workloads are noisier than the
     archive-tier byte counts, so the regression floor is looser).

Usage:
  check_explain_qps.py BENCH_explain_qps.json
      [--min-cached-speedup 20] [--min-incremental-speedup 2]
      [--baseline bench/baselines/BENCH_explain_qps_smoke.json]
      [--regression 0.5]
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_explain_qps.json to check")
    parser.add_argument(
        "--min-cached-speedup",
        type=float,
        default=20.0,
        help="minimum cached-repeat / uncached Explain speedup",
    )
    parser.add_argument(
        "--min-incremental-speedup",
        type=float,
        default=2.0,
        help="minimum incremental / cold-archive feature-build speedup",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON to compare the ratios against",
    )
    parser.add_argument(
        "--regression",
        type=float,
        default=0.5,
        help="minimum current/baseline quotient for each ratio",
    )
    args = parser.parse_args()

    with open(args.current, "r", encoding="utf-8") as f:
        cur = json.load(f)

    if cur.get("bench") != "explain_qps":
        fail(f"{args.current} is not an explain_qps benchmark result")

    for key in (
        "incremental_identical",
        "legacy_identical",
        "single_flight_computations",
        "cached_speedup",
        "incremental_speedup",
        "tail_full_hits",
        "tail_partial_hits",
    ):
        if key not in cur:
            fail(f"missing field {key!r} in {args.current}")

    failures = []

    if not cur["incremental_identical"]:
        failures.append(
            "incremental-tail explanation diverged from the archive scan — "
            "the serving layer must be bit-identical"
        )
    if not cur["legacy_identical"]:
        failures.append(
            "legacy row-scan explanation diverged from the columnar scan"
        )
    if cur["tail_full_hits"] + cur["tail_partial_hits"] <= 0:
        failures.append(
            "incremental pass never touched the tails — the comparison "
            "never exercised the incremental path"
        )
    if cur["single_flight_computations"] != 1:
        failures.append(
            f"{cur['single_flight_computations']} computations for one cold "
            "key (want exactly 1 — single-flight dedup broken)"
        )

    cached = cur["cached_speedup"]
    incremental = cur["incremental_speedup"]
    smoke = bool(cur.get("smoke"))
    print(
        f"cached repeat {cached:.1f}x uncached "
        f"(floor {args.min_cached_speedup:.1f}x); incremental build "
        f"{incremental:.2f}x cold scan "
        f"(floor {args.min_incremental_speedup:.2f}x)"
        + (" [smoke: floors informational, baseline-regression only]"
           if smoke else "")
    )
    # The hard speedup floors describe the full workload; the smoke workload
    # is too small to amortize the tail path's per-call overhead, so smoke
    # runs are held only to the baseline-regression quotient below (mirroring
    # check_archive_tiers.py: full-mode wall-clock gates live in the bench
    # binary itself).
    if not smoke:
        if cached < args.min_cached_speedup:
            failures.append(
                f"cached speedup {cached:.1f}x below floor "
                f"{args.min_cached_speedup:.1f}x"
            )
        if incremental < args.min_incremental_speedup:
            failures.append(
                f"incremental speedup {incremental:.2f}x below floor "
                f"{args.min_incremental_speedup:.2f}x"
            )

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as f:
            base = json.load(f)
        for name, cur_val in (
            ("cached_speedup", cached),
            ("incremental_speedup", incremental),
        ):
            base_val = base[name]
            quotient = cur_val / base_val if base_val > 0 else 0.0
            print(
                f"baseline {name} {base_val:.2f}x, current/baseline "
                f"{quotient:.3f} (floor {args.regression:.3f})"
            )
            if quotient < args.regression:
                failures.append(
                    f"{name} regressed to {quotient:.3f} of the committed "
                    f"baseline ({cur_val:.2f}x vs {base_val:.2f}x)"
                )

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}")
        sys.exit(1)
    mode = "smoke" if cur.get("smoke") else "full"
    print(
        f"PASS: explain serving gate ({mode} run, "
        f"{cur.get('events_total', '?')} events, "
        f"{cur.get('cached_qps', 0):.0f} cached QPS)"
    )


if __name__ == "__main__":
    main()
