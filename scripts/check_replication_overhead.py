#!/usr/bin/env python3
"""Gate the replication overhead benchmark (machine-independent).

bench_replication measures the same child ingest workload twice in one
process — standalone, then replicating to a loopback parent — and reports
``overhead_ratio`` = replicated ev/s / standalone ev/s. Because both sides
of the ratio run on the same host seconds apart, hardware speed cancels
out and the ratio can be gated on any machine; absolute ev/s are never
compared here.

Checks, in order:
  1. Correctness: the parent applied every event (``parent_events_applied``
     == ``stream_events``) with zero gap events. A fast child that sheds
     on a healthy loopback link is a bug, not a win.
  2. Overhead: ``overhead_ratio`` >= --min-ratio (default 0.4 — the async
     sender may not slow the child's ingest down by more than 2.5x; on
     full-size runs the spool cost amortizes and the ratio is far higher,
     the floor mostly guards the tiny smoke stream).
  3. Fan-in: every ``fanin`` row (1/2/4 children, 2 tenants, one receiver)
     must be contamination-free — each tenant's parent applied exactly its
     own children's events with zero sheds and zero gaps (hard booleans,
     not timing) — and ``fanin_ratio`` (N-children aggregate ev/s divided
     by the 1-child aggregate ev/s from the same process) must stay above
     --min-fanin-ratio. Like overhead_ratio, both sides of the ratio run
     on the same host seconds apart, so the floor is machine-independent.

Usage:
  check_replication_overhead.py BENCH_replication.json [--min-ratio 0.4]
      [--min-fanin-ratio 0.3]
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH_replication.json to check")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.4,
        help="minimum replicated/standalone ingest throughput ratio",
    )
    parser.add_argument(
        "--min-fanin-ratio",
        type=float,
        default=0.3,
        help="minimum N-children/1-child aggregate throughput ratio",
    )
    args = parser.parse_args()

    with open(args.current, "r", encoding="utf-8") as f:
        cur = json.load(f)

    if cur.get("bench") != "replication":
        fail(f"{args.current} is not a replication benchmark result")

    for key in (
        "stream_events",
        "parent_events_applied",
        "parent_gap_events",
        "overhead_ratio",
        "ingest_eps_standalone",
        "ingest_eps_replicated",
    ):
        if key not in cur:
            fail(f"missing field {key!r} in {args.current}")

    failures = []

    events = cur["stream_events"]
    applied = cur["parent_events_applied"]
    gaps = cur["parent_gap_events"]
    if applied != events:
        failures.append(
            f"parent applied {applied} of {events} events — replication "
            "lost data on a healthy loopback link"
        )
    if gaps != 0:
        failures.append(f"parent reported {gaps} gap events (expected 0)")

    ratio = cur["overhead_ratio"]
    print(
        f"ingest: standalone {cur['ingest_eps_standalone']:.0f} ev/s, "
        f"replicated {cur['ingest_eps_replicated']:.0f} ev/s "
        f"(absolute values informational only)"
    )
    print(f"overhead ratio {ratio:.3f} (floor {args.min_ratio:.3f})")
    if ratio < args.min_ratio:
        failures.append(
            f"overhead ratio {ratio:.3f} below floor {args.min_ratio:.3f} — "
            "replication is stealing too much child ingest throughput"
        )

    fanin = cur.get("fanin")
    if not isinstance(fanin, list) or not fanin:
        failures.append("missing or empty 'fanin' section")
    else:
        for row in fanin:
            for key in (
                "children",
                "fanin_ratio",
                "contamination_free",
                "tenant_a_applied",
                "tenant_b_applied",
                "tenant_a_shed_events",
                "tenant_b_shed_events",
                "gap_events",
            ):
                if key not in row:
                    failures.append(f"fan-in row missing field {key!r}")
                    break
            else:
                n = row["children"]
                print(
                    f"fan-in {n} children: ratio {row['fanin_ratio']:.3f}, "
                    f"tenant-a {row['tenant_a_applied']} ev / "
                    f"{row['tenant_a_shed_events']} shed, "
                    f"tenant-b {row['tenant_b_applied']} ev / "
                    f"{row['tenant_b_shed_events']} shed"
                )
                if not row["contamination_free"]:
                    failures.append(
                        f"fan-in with {n} children reported cross-tenant "
                        "contamination (wrong per-tenant event counts, "
                        "sheds, or gaps)"
                    )
                if (
                    row["tenant_a_shed_events"] != 0
                    or row["tenant_b_shed_events"] != 0
                    or row["gap_events"] != 0
                ):
                    failures.append(
                        f"fan-in with {n} children shed or gapped events on "
                        "a healthy loopback link"
                    )
                if row["fanin_ratio"] < args.min_fanin_ratio:
                    failures.append(
                        f"fan-in ratio {row['fanin_ratio']:.3f} with {n} "
                        f"children below floor {args.min_fanin_ratio:.3f}"
                    )

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}")
        sys.exit(1)
    mode = "smoke" if cur.get("smoke") else "full"
    print(f"PASS: replication overhead gate ({mode} run, {events} events)")


if __name__ == "__main__":
    main()
