// libFuzzer harness for the spill deserializers (v1/v2 row payloads and the
// v3 columnar format) — the bytes read back from archive spill files and WAL
// record payloads. Both entry points must reject arbitrary corruption with a
// Status, never a crash or an unbounded allocation.
//
// Build: cmake -DEXSTREAM_BUILD_FUZZERS=ON with Clang; see fuzz/CMakeLists.txt.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "archive/serialization.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);
  exstream::DeserializeEvents(buf).ok();
  exstream::DeserializeColumns(buf).ok();
  return 0;
}
