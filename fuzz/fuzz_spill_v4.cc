// libFuzzer harness for the compressed decoders behind the v4 spill format
// and the tier sidecar: varint/zigzag streams, delta-of-delta timestamps,
// Gorilla-style XOR doubles, RLE tags, and dictionary strings. Arbitrary
// bytes must come back as a Status (Corruption/Truncated), never a crash,
// hang, or unbounded allocation.
//
// DeserializeEvents/DeserializeColumns dispatch on the magic, so seeding the
// input with the v4 magic exercises the compressed block parsers directly;
// DeserializeTiers covers the EXT1 sidecar parser the archive reads at
// checkpoint restore.
//
// Build: cmake -DEXSTREAM_BUILD_FUZZERS=ON with Clang; see fuzz/CMakeLists.txt.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "archive/serialization.h"
#include "archive/tiers.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);
  exstream::DeserializeEvents(buf).ok();
  exstream::DeserializeColumns(buf).ok();
  // Match the sidecar's embedded event type so the expected-type guard does
  // not reject the input before the per-tier block decoders run.
  uint32_t tier_type = 0;
  if (size >= 8) std::memcpy(&tier_type, data + 4, sizeof(tier_type));
  exstream::DeserializeTiers(buf, tier_type).ok();

  // Re-run the column parser with the v4 magic prepended so inputs that do
  // not start with a valid header still reach the per-column block decoders.
  std::string v4;
  v4.reserve(size + 4);
  v4.push_back('\x34');  // little-endian u32 0x45585334 ("EXS4")
  v4.push_back('\x53');
  v4.push_back('\x58');
  v4.push_back('\x45');
  v4.append(buf);
  exstream::DeserializeColumns(v4).ok();
  return 0;
}
