// libFuzzer harness for the replication wire surface — the exact bytes a
// hostile or fault-corrupted link delivers. Two stages:
//
// 1. FrameDecoder must classify any byte stream as frames / need-more /
//    Corruption without crashing, over-allocating on fuzzed lengths, or
//    mis-parsing a typed payload; the typed Decode()s are fuzzed on both raw
//    input and decoded frame payloads (version skew, truncated strings,
//    trailing garbage).
//
// 2. Session confusion: frames from several spoofed sessions (mixed tenants,
//    duplicate identities, raw garbage) interleave against ONE receiver
//    through socket-free SessionDrivers. A poisoned session must stay
//    poisoned, must never take down the process, and must leave the receiver
//    healthy enough that a fresh well-formed session still completes a
//    HELLO + CHUNK + ACK round afterwards.
//
// Build: cmake -DEXSTREAM_BUILD_FUZZERS=ON with Clang; see fuzz/CMakeLists.txt.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "event/registry.h"
#include "net/frame.h"
#include "net/replication_receiver.h"
#include "xstream/system.h"
#include "xstream/tenant_hub.h"

namespace {

std::string HelloBytes(const std::string& tenant, const std::string& node,
                       uint64_t floor_seq) {
  exstream::HelloFrame hello;
  hello.tenant = tenant;
  hello.node_id = node;
  hello.floor_seq = floor_seq;
  return exstream::EncodeFrame(exstream::FrameType::kHello, hello.Encode());
}

std::string EmptyChunkBytes(uint64_t chunk_id, uint64_t first_seq) {
  exstream::ChunkFrame f;
  f.chunk_id = chunk_id;
  f.first_seq = first_seq;
  f.event_count = 0;
  f.events = exstream::SerializeEvents({});
  return exstream::EncodeFrame(exstream::FrameType::kChunk, f.Encode());
}

void FuzzDecoder(std::string_view buf, const uint8_t* data, size_t size) {
  // Incremental delivery: split the input at a fuzzer-chosen point so frames
  // straddle Feed() boundaries (the recv-loop reality).
  exstream::FrameDecoder decoder;
  const size_t split = size > 0 ? data[0] % (size + 1) : 0;
  decoder.Feed(buf.substr(0, split));
  for (;;) {
    auto frame = decoder.Next();
    if (!frame.ok() || !frame->has_value()) break;
    const std::string& payload = (*frame)->payload;
    exstream::HelloFrame::Decode(payload).ok();
    exstream::HelloAckFrame::Decode(payload).ok();
    exstream::ChunkFrame::Decode(payload).ok();
    exstream::WalTailFrame::Decode(payload).ok();
    exstream::AckFrame::Decode(payload).ok();
  }
  if (!decoder.poisoned()) {
    decoder.Feed(buf.substr(split));
    for (;;) {
      auto frame = decoder.Next();
      if (!frame.ok() || !frame->has_value()) break;
    }
  }

  // The typed decoders must also survive the raw input as a payload.
  exstream::HelloFrame::Decode(buf).ok();
  exstream::HelloAckFrame::Decode(buf).ok();
  exstream::ChunkFrame::Decode(buf).ok();
  exstream::WalTailFrame::Decode(buf).ok();
  exstream::AckFrame::Decode(buf).ok();
}

void FuzzMultiSessionReceiver(const uint8_t* data, size_t size) {
  using exstream::ReplicationReceiver;

  exstream::EventTypeRegistry registry;
  exstream::XStreamConfig cfg;
  exstream::XStreamSystem sys0(&registry, cfg);
  exstream::XStreamSystem sys1(&registry, cfg);
  exstream::TenantHub hub;
  if (!hub.AddTenant("t0", &sys0).ok()) __builtin_trap();
  if (!hub.AddTenant("t1", &sys1).ok()) __builtin_trap();

  exstream::ReplicationReceiverOptions opts;
  ReplicationReceiver receiver(&hub, opts);

  constexpr size_t kDrivers = 3;
  std::vector<std::unique_ptr<ReplicationReceiver::SessionDriver>> drivers;
  for (size_t i = 0; i < kDrivers; ++i) {
    drivers.push_back(
        std::make_unique<ReplicationReceiver::SessionDriver>(&receiver));
  }
  bool was_ended[kDrivers] = {false, false, false};

  // Byte-coded action stream: each step picks a driver and one of four frame
  // shapes; raw-garbage steps splice unmodified fuzz bytes into that
  // session's byte stream. Bounded so a long input cannot stall the run.
  size_t pos = 0;
  auto take = [&]() -> uint8_t { return pos < size ? data[pos++] : 0; };
  constexpr int kMaxSteps = 64;
  for (int step = 0; step < kMaxSteps && pos < size; ++step) {
    const uint8_t op = take();
    const size_t idx = op % kDrivers;
    ReplicationReceiver::SessionDriver& d = *drivers[idx];

    std::string bytes;
    switch ((op / kDrivers) % 4) {
      case 0: {  // HELLO — mixed tenants, colliding node ids across drivers
        const uint8_t sel = take();
        const std::string tenant = (sel & 1) ? "t1" : "t0";
        const std::string node = (sel & 2) ? "nA" : "nB";
        bytes = HelloBytes(tenant, node, static_cast<uint64_t>(take()) * 64);
        break;
      }
      case 1:  // empty CHUNK at a fuzzer-chosen seq (gap / dedupe / in-order)
        bytes = EmptyChunkBytes(take(), static_cast<uint64_t>(take()) * 16);
        break;
      case 2: {  // raw fuzz bytes straight onto this session's wire
        const size_t n = std::min<size_t>(1 + take() % 64, size - pos);
        bytes.assign(reinterpret_cast<const char*>(data + pos), n);
        pos += n;
        break;
      }
      default: {  // a frame type a child never legitimately sends
        exstream::AckFrame ack;
        ack.ack_seq = take();
        ack.chunk_id = take();
        bytes = exstream::EncodeFrame(exstream::FrameType::kAck, ack.Encode());
        break;
      }
    }

    const bool ok = d.Feed(bytes).ok();
    // A session that ended must stay ended: no later bytes may revive it.
    if (was_ended[idx] && ok) __builtin_trap();
    if (d.ended()) was_ended[idx] = true;
    if (!ok && !d.ended()) __builtin_trap();
  }

  // Whatever the spoofed sessions did, the receiver itself must still serve
  // a fresh well-formed session end to end for BOTH tenants.
  for (const char* tenant : {"t0", "t1"}) {
    ReplicationReceiver::SessionDriver fresh(&receiver);
    if (!fresh.Feed(HelloBytes(tenant, "fresh", 0)).ok()) __builtin_trap();
    exstream::FrameDecoder dec;
    dec.Feed(fresh.out());
    auto frame = dec.Next();
    if (!frame.ok() || !frame->has_value()) __builtin_trap();
    auto helloack = exstream::HelloAckFrame::Decode((*frame)->payload);
    if (!helloack.ok() || !helloack->accepted) __builtin_trap();
    fresh.ClearOut();
    if (!fresh.Feed(EmptyChunkBytes(1, helloack->resume_seq)).ok()) {
      __builtin_trap();
    }
    if (fresh.out().empty()) __builtin_trap();  // the ACK must come back
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);
  FuzzDecoder(buf, data, size);
  FuzzMultiSessionReceiver(data, size);
  return 0;
}
