// libFuzzer harness for the replication frame decoder — the exact bytes a
// hostile or fault-corrupted link delivers. FrameDecoder must classify any
// byte stream as frames / need-more / Corruption without crashing,
// over-allocating on fuzzed lengths, or mis-parsing a typed payload; the
// typed Decode()s are fuzzed on both raw input and decoded frame payloads
// (version skew, truncated strings, trailing garbage).
//
// Build: cmake -DEXSTREAM_BUILD_FUZZERS=ON with Clang; see fuzz/CMakeLists.txt.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/frame.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);

  // Incremental delivery: split the input at a fuzzer-chosen point so frames
  // straddle Feed() boundaries (the recv-loop reality).
  exstream::FrameDecoder decoder;
  const size_t split = size > 0 ? data[0] % (size + 1) : 0;
  decoder.Feed(buf.substr(0, split));
  for (;;) {
    auto frame = decoder.Next();
    if (!frame.ok() || !frame->has_value()) break;
    const std::string& payload = (*frame)->payload;
    exstream::HelloFrame::Decode(payload).ok();
    exstream::HelloAckFrame::Decode(payload).ok();
    exstream::ChunkFrame::Decode(payload).ok();
    exstream::WalTailFrame::Decode(payload).ok();
    exstream::AckFrame::Decode(payload).ok();
  }
  if (!decoder.poisoned()) {
    decoder.Feed(buf.substr(split));
    for (;;) {
      auto frame = decoder.Next();
      if (!frame.ok() || !frame->has_value()) break;
    }
  }

  // The typed decoders must also survive the raw input as a payload.
  exstream::HelloFrame::Decode(buf).ok();
  exstream::HelloAckFrame::Decode(buf).ok();
  exstream::ChunkFrame::Decode(buf).ok();
  exstream::WalTailFrame::Decode(buf).ok();
  exstream::AckFrame::Decode(buf).ok();
  return 0;
}
