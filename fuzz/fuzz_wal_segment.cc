// libFuzzer harness for the WAL segment scanner — the exact bytes a crashed
// process leaves behind. ScanWalSegmentBuffer must classify any input as
// intact records + (optionally) one torn tail, without crashing, overflowing,
// or over-allocating on hostile headers (fuzzed lengths/counts).
//
// Build: cmake -DEXSTREAM_BUILD_FUZZERS=ON with Clang; see fuzz/CMakeLists.txt.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "io/wal.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);
  exstream::ScanWalSegmentBuffer(buf,
                                 [](uint64_t, exstream::EventBatch) {});
  return 0;
}
