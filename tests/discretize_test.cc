#include "ml/discretize.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

TEST(EqualWidthTest, BinsSpanRange) {
  const std::vector<double> values = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto bins = EqualWidthBins(values, 5);
  EXPECT_EQ(bins.front(), 0);
  EXPECT_EQ(bins.back(), 4);
  for (int b : bins) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 5);
  }
}

TEST(EqualWidthTest, ConstantInputAllZero) {
  const auto bins = EqualWidthBins({3, 3, 3}, 4);
  for (int b : bins) EXPECT_EQ(b, 0);
}

TEST(EqualWidthTest, DegenerateArgs) {
  EXPECT_TRUE(EqualWidthBins({}, 4).empty());
  const auto one_bin = EqualWidthBins({1, 2, 3}, 1);
  for (int b : one_bin) EXPECT_EQ(b, 0);
}

TEST(FayyadIraniTest, CleanSplitFound) {
  // Class 0 lives below 10, class 1 above: one cut near 10.
  std::vector<double> values;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    values.push_back(i);
    labels.push_back(i < 15 ? 0 : 1);
  }
  const auto cuts = FayyadIraniCuts(values, labels);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_NEAR(cuts[0], 14.5, 1e-9);
}

TEST(FayyadIraniTest, NoSplitOnRandomLabels) {
  Rng rng(11);
  std::vector<double> values;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    values.push_back(rng.Uniform(0, 1));
    labels.push_back(rng.Chance(0.5) ? 1 : 0);
  }
  // MDL should reject most splits on pure noise.
  EXPECT_LE(FayyadIraniCuts(values, labels).size(), 2u);
}

TEST(FayyadIraniTest, TwoIntervalsOfAbnormal) {
  // Abnormal at both extremes -> two cuts (the paper's multi-range feature).
  std::vector<double> values;
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) {
    values.push_back(i);
    labels.push_back((i < 20 || i >= 40) ? 1 : 0);
  }
  const auto cuts = FayyadIraniCuts(values, labels);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_NEAR(cuts[0], 19.5, 1e-9);
  EXPECT_NEAR(cuts[1], 39.5, 1e-9);
}

TEST(FayyadIraniTest, PureClassNoCuts) {
  EXPECT_TRUE(FayyadIraniCuts({1, 2, 3, 4, 5, 6}, {1, 1, 1, 1, 1, 1}).empty());
}

TEST(ApplyCutsTest, IntervalIndices) {
  const std::vector<double> cuts = {10.0, 20.0};
  const auto bins = ApplyCuts({5, 10, 15, 25}, cuts);
  EXPECT_EQ(bins[0], 0);
  EXPECT_EQ(bins[1], 1);  // a value equal to a cut belongs to the upper bin
  EXPECT_EQ(bins[2], 1);
  EXPECT_EQ(bins[3], 2);
}

TEST(ApplyCutsTest, NoCutsSingleBin) {
  const auto bins = ApplyCuts({1, 2, 3}, {});
  for (int b : bins) EXPECT_EQ(b, 0);
}

}  // namespace
}  // namespace exstream
