// Tests of the method-comparison evaluation shared by the Fig. 14-16/22-24
// benches, plus a parameterized end-to-end sweep across every paper workload.

#include "xstream/evaluation.h"

#include <gtest/gtest.h>

namespace exstream {
namespace {

WorkloadRunOptions FastOptions() {
  WorkloadRunOptions options;
  options.num_nodes = 4;
  options.num_normal_jobs = 2;
  options.sc_num_sensors = 6;
  options.sc_num_machines = 6;
  return options;
}

TEST(EvaluationTest, AllMethodsScored) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok());
  auto cmp = CompareMethods(**run);
  ASSERT_TRUE(cmp.ok()) << cmp.status().ToString();
  ASSERT_EQ(cmp->results.size(), 6u);
  for (const char* m : {kMethodXStream, kMethodXStreamCluster, kMethodLogReg,
                        kMethodDTree, kMethodVote, kMethodFusion}) {
    const MethodResult& r = FindMethod(*cmp, m);
    EXPECT_EQ(r.method, m);
    EXPECT_GE(r.prediction_f1, 0.0);
    EXPECT_LE(r.prediction_f1, 1.0);
    EXPECT_GE(r.consistency, 0.0);
    EXPECT_LE(r.consistency, 1.0);
  }
  EXPECT_GT(cmp->feature_space_size, 100u);
  EXPECT_GE(cmp->ground_truth_size, 2u);
  EXPECT_GE(cmp->ground_truth_clusters, 1u);
}

TEST(EvaluationTest, VotingAndFusionNeverSelect) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok());
  auto cmp = CompareMethods(**run);
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(FindMethod(*cmp, kMethodVote).explanation_size, cmp->feature_space_size);
  EXPECT_EQ(FindMethod(*cmp, kMethodFusion).explanation_size,
            cmp->feature_space_size);
}

TEST(EvaluationTest, XStreamClusterDominatesBaselinesOnConsistency) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok());
  auto cmp = CompareMethods(**run);
  ASSERT_TRUE(cmp.ok());
  const double xs = FindMethod(*cmp, kMethodXStreamCluster).consistency;
  for (const char* m : {kMethodLogReg, kMethodDTree, kMethodVote, kMethodFusion}) {
    EXPECT_GT(xs, FindMethod(*cmp, m).consistency) << m;
  }
  // And it is concise.
  EXPECT_LE(FindMethod(*cmp, kMethodXStreamCluster).explanation_size, 4u);
}

// The paper's headline claims must hold on every workload of both use cases
// (the bench binaries print the full tables; this guards the shape in CI).
class WorkloadSweepTest : public ::testing::TestWithParam<WorkloadDef> {};

TEST_P(WorkloadSweepTest, XStreamClusterConsistentAndConcise) {
  auto run = BuildWorkloadRun(GetParam(), FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExplainOptions options = (*run)->DefaultExplainOptions();
  ExplanationEngine engine = (*run)->MakeExplanationEngine(options);
  auto report = engine.Explain((*run)->annotation);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Concise: a handful of features at most.
  EXPECT_GE(report->final_features.size(), 1u);
  EXPECT_LE(report->final_features.size(), 5u);
  // Consistent: cluster-aware F-measure against ground truth is high.
  EXPECT_GE(ClusterAwareConsistency(*report, (*run)->ground_truth), 0.65)
      << GetParam().name;
  // And the CNF is non-trivial.
  EXPECT_FALSE(report->explanation.empty());
}

std::vector<WorkloadDef> AllWorkloads() {
  std::vector<WorkloadDef> all = HadoopWorkloads();
  for (const WorkloadDef& d : SupplyChainWorkloads()) all.push_back(d);
  return all;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweepTest,
                         ::testing::ValuesIn(AllWorkloads()),
                         [](const ::testing::TestParamInfo<WorkloadDef>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace exstream
