#include "xstream/system.h"

#include <gtest/gtest.h>

#include "sim/hadoop_sim.h"

namespace exstream {
namespace {

class XStreamSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry_).ok());
  }

  // Streams a small anomalous cluster run through the system.
  void StreamWorkload(XStreamSystem* system) {
    HadoopSimConfig config;
    config.num_nodes = 3;
    config.seed = 77;
    HadoopClusterSim sim(config, &registry_);
    HadoopJobConfig job;
    job.job_id = "job-x";
    job.program = "p";
    job.dataset = "d";
    sim.AddJob(job);
    AnomalySpec anomaly;
    anomaly.type = AnomalyType::kHighMemory;
    anomaly.start = 60;
    anomaly.end = 300;
    sim.AddAnomaly(anomaly);
    ASSERT_TRUE(sim.Run(system).ok());
  }

  EventTypeRegistry registry_;
};

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

TEST_F(XStreamSystemTest, MonitorArchiveExplainLoop) {
  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  XStreamSystem system(&registry_, config);
  auto qid = system.AddQuery(kQ1, "Q1");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  StreamWorkload(&system);
  EXPECT_GT(system.archive().TotalEvents(), 1000u);
  EXPECT_GT(system.engine().match_table(*qid).NumRows("job-x"), 50u);

  ASSERT_TRUE(system.IndexPartitions(*qid, {{"program", "p"}}).ok());
  EXPECT_EQ(system.partitions().size(), 1u);

  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q1", {60, 300}, "job-x"};
  annotation.reference = {"Q1", {360, 600}, "job-x"};
  auto report = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->final_features.empty());
  EXPECT_FALSE(system.explanation_active());
}

TEST_F(XStreamSystemTest, LatencyHistogramsPopulated) {
  XStreamSystem system(&registry_);
  ASSERT_TRUE(system.AddQuery(kQ1, "Q1").ok());
  StreamWorkload(&system);
  EXPECT_GT(system.idle_latency().count(), 0u);
  // Nothing was explained, so no busy samples.
  EXPECT_EQ(system.busy_latency().count(), 0u);
}

TEST_F(XStreamSystemTest, AsyncExplanationRunsConcurrently) {
  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  XStreamSystem system(&registry_, config);
  auto qid = system.AddQuery(kQ1, "Q1");
  ASSERT_TRUE(qid.ok());
  StreamWorkload(&system);
  ASSERT_TRUE(system.IndexPartitions(*qid, {{"program", "p"}}).ok());

  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q1", {60, 300}, "job-x"};
  annotation.reference = {"Q1", {360, 600}, "job-x"};
  auto future = system.ExplainAsync(annotation, *qid, "sum_dataSize");
  // Keep monitoring while the analysis runs.
  Event probe(*registry_.IdOf("CpuUsage"), 10000,
              {Value(int64_t{0}), Value(1.0), Value(1.0), Value(1.0), Value(1.0)});
  system.OnEvent(probe);
  auto report = future.get();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->final_features.empty());
}

TEST_F(XStreamSystemTest, BadQueryRejected) {
  XStreamSystem system(&registry_);
  EXPECT_FALSE(system.AddQuery("PATTERN SEQ(Nope n)", "bad").ok());
}

}  // namespace
}  // namespace exstream
