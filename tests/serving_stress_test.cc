// Stress test of the continuous-serving layer (meant for TSan).
//
// One system runs everything the serving PR added, all at once:
//  * sharded batched ingestion feeding the incremental feature tails,
//  * the streaming detector observing match notifications and auto-triggering
//    Explains on its background worker,
//  * interactive threads hammering the cached Explain path with repeated and
//    overlapping requests while the data watermark advances underneath them,
//  * stats/watermark readers polling the serving surfaces.
// Afterwards the final explanation must still be bit-identical to a plain
// archive-scan engine over the same data — concurrency may change timing,
// never results.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "explain/engine.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

TEST(ServingStressTest, ConcurrentAutoAndInteractiveExplainsDuringShardedIngest) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());

  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.explain.num_threads = 2;
  config.explain.enable_validation = false;  // partitions index mid-stream
  config.ingest.ingest_threads = 4;
  config.serving.incremental_features = true;
  config.serving.incremental_retention = 400;  // force eviction + backfill
  config.serving.explain_cache_capacity = 16;
  StreamingDetectorOptions detector_options;
  detector_options.warmup_samples = 16;
  detector_options.z_threshold = 3.0;
  detector_options.min_anomaly_samples = 2;
  detector_options.cooldown_samples = 2;
  config.serving.detector = detector_options;
  config.serving.auto_explain = true;
  XStreamSystem system(&registry, config);
  auto qid = system.AddQuery(kQ1, "Q1");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  ASSERT_NE(system.detector(), nullptr);

  // Simulate the anomalous run into a buffer so ingest can be batched
  // through the sharded pipeline.
  HadoopSimConfig sim_config;
  sim_config.num_nodes = 3;
  sim_config.seed = 77;
  HadoopClusterSim sim(sim_config, &registry);
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 60;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  VectorSink sink;
  ASSERT_TRUE(sim.Run(&sink).ok());
  const std::vector<Event>& stream = sink.events();
  ASSERT_GT(stream.size(), 1000u);

  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q1", {60, 300}, "job-x"};
  annotation.reference = {"Q1", {360, 600}, "job-x"};

  std::atomic<bool> done{false};
  std::atomic<size_t> interactive_ok{0};
  std::vector<std::thread> explainers;
  for (int t = 0; t < 2; ++t) {
    explainers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        // Early calls race the stream's first match rows and may fail;
        // errors are legal (and must not be cached), data races are not.
        auto report = system.Explain(annotation, *qid, "sum_dataSize");
        if (report.ok()) interactive_ok.fetch_add(1);
      }
    });
  }
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)system.data_watermark();
      if (system.incremental() != nullptr) (void)system.incremental()->stats();
      if (system.explain_cache() != nullptr) {
        (void)system.explain_cache()->stats();
      }
      if (system.detector() != nullptr) (void)system.detector()->stats();
      (void)system.TakeAutoExplanations();
      std::this_thread::yield();
    }
  });

  constexpr size_t kBatch = 128;
  for (size_t i = 0; i < stream.size(); i += kBatch) {
    const size_t end = std::min(stream.size(), i + kBatch);
    system.OnEventBatch(EventBatch(stream.begin() + static_cast<ptrdiff_t>(i),
                                   stream.begin() + static_cast<ptrdiff_t>(end)));
  }
  system.Flush();
  system.DrainAutoExplains();
  done.store(true, std::memory_order_release);
  for (std::thread& t : explainers) t.join();
  poller.join();

  // The stream carries a large sustained anomaly; interactive explains must
  // have succeeded once the match table filled in.
  auto final_report = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(final_report.ok()) << final_report.status().ToString();
  EXPECT_GT(interactive_ok.load() + system.auto_explains_completed(), 0u);

  // Quiesced: the served explanation still equals the plain scan path.
  const ExplanationEngine scan_engine(
      &system.archive(), &system.partitions(),
      system.MakeSeriesProvider(*qid, "sum_dataSize"), config.explain);
  auto scan_report = scan_engine.Explain(annotation);
  ASSERT_TRUE(scan_report.ok());
  EXPECT_EQ(final_report->explanation.ToString(),
            scan_report->explanation.ToString());
  ASSERT_EQ(final_report->ranked.size(), scan_report->ranked.size());
  for (size_t i = 0; i < final_report->ranked.size(); ++i) {
    EXPECT_EQ(final_report->ranked[i].abnormal_series.values(),
              scan_report->ranked[i].abnormal_series.values());
    EXPECT_EQ(final_report->ranked[i].reference_series.values(),
              scan_report->ranked[i].reference_series.values());
  }

  // Serving counters moved and stayed coherent.
  const auto cache_stats = system.explain_cache()->stats();
  EXPECT_GT(cache_stats.computations, 0u);
  EXPECT_GE(cache_stats.misses, cache_stats.computations);
  const auto tail_stats = system.incremental()->stats();
  EXPECT_GT(tail_stats.full_hits + tail_stats.partial_hits + tail_stats.misses,
            0u);
}

}  // namespace
}  // namespace exstream
