#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"

namespace exstream {
namespace {

TEST(DecisionTreeTest, SingleSplitSeparableData) {
  Dataset data;
  data.feature_names = {"x", "noise"};
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const int y = i % 2;
    data.rows.push_back({y == 1 ? 10.0 + rng.Uniform(0, 1) : rng.Uniform(0, 1),
                         rng.Gaussian(0, 1)});
    data.labels.push_back(y);
  }
  auto tree = DecisionTree::Fit(data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumSplits(), 1u);
  EXPECT_EQ(tree->SelectedFeatures(), std::vector<std::string>{"x"});
  const auto preds = tree->Predict(data);
  EXPECT_DOUBLE_EQ(EvaluatePredictions(data.labels, preds).F1(), 1.0);
}

TEST(DecisionTreeTest, LearnsAxisAlignedXor) {
  // XOR over two features needs depth 2 and both features.
  Dataset data;
  data.feature_names = {"a", "b"};
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Chance(0.5) ? 1.0 : 0.0;
    const double b = rng.Chance(0.5) ? 1.0 : 0.0;
    data.rows.push_back({a + rng.Gaussian(0, 0.05), b + rng.Gaussian(0, 0.05)});
    data.labels.push_back(static_cast<int>(a) ^ static_cast<int>(b));
  }
  auto tree = DecisionTree::Fit(data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->SelectedFeatures().size(), 2u);
  const auto preds = tree->Predict(data);
  EXPECT_GE(EvaluatePredictions(data.labels, preds).F1(), 0.98);
}

TEST(DecisionTreeTest, DepthLimitRespected) {
  Dataset data;
  data.feature_names = {"a", "b"};
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Chance(0.5) ? 1.0 : 0.0;
    const double b = rng.Chance(0.5) ? 1.0 : 0.0;
    data.rows.push_back({a, b});
    data.labels.push_back(static_cast<int>(a) ^ static_cast<int>(b));
  }
  DecisionTreeOptions options;
  options.max_depth = 1;  // cannot express XOR
  auto tree = DecisionTree::Fit(data, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_LE(tree->NumSplits(), 1u);
}

TEST(DecisionTreeTest, PureDataYieldsLeaf) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 20; ++i) {
    data.rows.push_back({static_cast<double>(i)});
    data.labels.push_back(1);
  }
  auto tree = DecisionTree::Fit(data);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumSplits(), 0u);
  EXPECT_EQ(tree->PredictRow({3.0}), 1);
}

TEST(DecisionTreeTest, ToStringShowsStructure) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 40; ++i) {
    data.rows.push_back({static_cast<double>(i)});
    data.labels.push_back(i < 20 ? 0 : 1);
  }
  auto tree = DecisionTree::Fit(data);
  ASSERT_TRUE(tree.ok());
  const std::string s = tree->ToString();
  EXPECT_NE(s.find("x <"), std::string::npos);
  EXPECT_NE(s.find("Abnormal"), std::string::npos);
  EXPECT_NE(s.find("Normal"), std::string::npos);
}

TEST(DecisionTreeTest, MinSamplesStopsSplitting) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 6; ++i) {
    data.rows.push_back({static_cast<double>(i)});
    data.labels.push_back(i < 3 ? 0 : 1);
  }
  DecisionTreeOptions options;
  options.min_samples_split = 100;
  auto tree = DecisionTree::Fit(data, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->NumSplits(), 0u);
}

TEST(DecisionTreeTest, EmptyDataRejected) {
  Dataset empty;
  EXPECT_FALSE(DecisionTree::Fit(empty).ok());
}

}  // namespace
}  // namespace exstream
