#include "common/strings.h"

#include <gtest/gtest.h>

namespace exstream {
namespace {

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b  "), "a b");
  EXPECT_EQ(TrimWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, SplitAndTrim) {
  const auto parts = SplitAndTrim("a, b , c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitEmptyAndTrailing) {
  EXPECT_EQ(SplitAndTrim("", ',').size(), 1u);
  const auto parts = SplitAndTrim("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("PATTERN", "pattern"));
  EXPECT_TRUE(EqualsIgnoreCase("SeQ", "sEq"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("MemUsage.memFree", "MemUsage."));
  EXPECT_FALSE(StartsWith("Mem", "MemUsage"));
}

TEST(StringsTest, ToLower) { EXPECT_EQ(ToLower("AbC9_x"), "abc9_x"); }

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.1f", 3, "x", 2.5), "3-x-2.5");
  EXPECT_EQ(StrFormat("no args"), "no args");
  // Long output exceeding any small internal buffer.
  const std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

}  // namespace
}  // namespace exstream
