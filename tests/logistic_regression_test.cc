#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"

namespace exstream {
namespace {

// Linearly separable data: feature 0 carries the label, feature 1 is noise.
Dataset SeparableData(uint64_t seed, size_t n = 100) {
  Rng rng(seed);
  Dataset data;
  data.feature_names = {"signal", "noise"};
  for (size_t i = 0; i < n; ++i) {
    const int y = i % 2 == 0 ? 1 : 0;
    const double signal = y == 1 ? rng.Gaussian(5, 0.5) : rng.Gaussian(-5, 0.5);
    data.rows.push_back({signal, rng.Gaussian(0, 1)});
    data.labels.push_back(y);
  }
  return data;
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  const Dataset data = SeparableData(1);
  auto model = LogisticRegression::Fit(data);
  ASSERT_TRUE(model.ok());
  const auto preds = model->Predict(data);
  EXPECT_GE(EvaluatePredictions(data.labels, preds).F1(), 0.99);
}

TEST(LogisticRegressionTest, SignalWeightDominates) {
  const Dataset data = SeparableData(2);
  auto model = LogisticRegression::Fit(data);
  ASSERT_TRUE(model.ok());
  const auto ranked = model->RankedWeights();
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].first, "signal");
  EXPECT_GT(ranked[0].second, 0.0);  // higher signal -> abnormal
}

TEST(LogisticRegressionTest, L1DrivesNoiseToZero) {
  Rng rng(3);
  Dataset data;
  data.feature_names = {"signal"};
  for (int f = 0; f < 30; ++f) data.feature_names.push_back("n" + std::to_string(f));
  for (size_t i = 0; i < 200; ++i) {
    const int y = i % 2 == 0 ? 1 : 0;
    std::vector<double> row = {y == 1 ? rng.Gaussian(3, 0.5) : rng.Gaussian(-3, 0.5)};
    for (int f = 0; f < 30; ++f) row.push_back(rng.Gaussian(0, 1));
    data.rows.push_back(std::move(row));
    data.labels.push_back(y);
  }
  LogisticRegressionOptions options;
  options.l1 = 0.02;
  auto model = LogisticRegression::Fit(data, options);
  ASSERT_TRUE(model.ok());
  // Sparsity: far fewer than all 31 features survive.
  EXPECT_LT(model->SelectedFeatures().size(), 10u);
  EXPECT_EQ(model->SelectedFeatures().front(), "signal");
}

TEST(LogisticRegressionTest, ProbabilityMonotoneInSignal) {
  const Dataset data = SeparableData(4);
  auto model = LogisticRegression::Fit(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->PredictProbability({5, 0}), 0.9);
  EXPECT_LT(model->PredictProbability({-5, 0}), 0.1);
}

TEST(LogisticRegressionTest, EmptyDataRejected) {
  Dataset empty;
  EXPECT_FALSE(LogisticRegression::Fit(empty).ok());
}

TEST(LogisticRegressionTest, LossDecreases) {
  const Dataset data = SeparableData(5);
  LogisticRegressionOptions few;
  few.max_iterations = 2;
  LogisticRegressionOptions many;
  many.max_iterations = 300;
  auto m_few = LogisticRegression::Fit(data, few);
  auto m_many = LogisticRegression::Fit(data, many);
  ASSERT_TRUE(m_few.ok());
  ASSERT_TRUE(m_many.ok());
  EXPECT_LT(m_many->final_loss(), m_few->final_loss());
}

}  // namespace
}  // namespace exstream
