// TenantHub unit tests: tenant-qualified partition-key namespaces (the
// injective escaping that keeps two tenants' keys from ever colliding), the
// filesystem-safe tenant name sanitizer, the tenant registry, and the
// deterministic token-bucket / queue-share quota arithmetic the replication
// receiver's admission path rides on.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cep/interner.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"
#include "xstream/tenant_hub.h"

namespace exstream {
namespace {

TEST(TenantKeyTest, QualifyRoundTrips) {
  const std::pair<std::string, std::string> cases[] = {
      {"alpha", "job-x"},
      {"a/b", "c"},            // separator in the tenant
      {"a", "b/c"},            // separator in the key
      {"a%2F", "b"},           // literal escape sequence must survive
      {"%", "/"},
      {"", "k"},               // empty tenant
      {"t", ""},               // empty key
      {"t\xc3\xa9nant", "k\xe2\x82\xac"},  // non-ASCII bytes pass through
  };
  for (const auto& [tenant, key] : cases) {
    const std::string qualified = QualifyTenantKey(tenant, key);
    std::string t, k;
    ASSERT_TRUE(SplitTenantKey(qualified, &t, &k)) << qualified;
    EXPECT_EQ(t, tenant) << qualified;
    EXPECT_EQ(k, key) << qualified;
  }
}

TEST(TenantKeyTest, QualificationIsInjective) {
  // The classic ambiguity: ("a", "b/c") vs ("a/b", "c") must not collide.
  EXPECT_NE(QualifyTenantKey("a", "b/c"), QualifyTenantKey("a/b", "c"));
  EXPECT_NE(QualifyTenantKey("a%2Fb", "c"), QualifyTenantKey("a/b", "c"));
  EXPECT_NE(QualifyTenantKey("a", "%2F"), QualifyTenantKey("a", "/"));
}

TEST(TenantKeyTest, SplitRejectsMalformed) {
  std::string t, k;
  EXPECT_FALSE(SplitTenantKey("no-separator", &t, &k));
  EXPECT_FALSE(SplitTenantKey("bad%zz/k", &t, &k));
  EXPECT_FALSE(SplitTenantKey("trailing%/k", &t, &k));
  EXPECT_FALSE(SplitTenantKey("trailing%2/k", &t, &k));
}

TEST(TenantHubTest, SanitizeTenantForPath) {
  EXPECT_EQ(TenantHub::SanitizeTenantForPath("alpha-1.prod_x"),
            "alpha-1.prod_x");
  EXPECT_EQ(TenantHub::SanitizeTenantForPath("a/b"), "a_b");
  EXPECT_EQ(TenantHub::SanitizeTenantForPath("../../etc"), ".._.._etc");
  EXPECT_EQ(TenantHub::SanitizeTenantForPath(".."), "_..");
  EXPECT_EQ(TenantHub::SanitizeTenantForPath("."), "_.");
  EXPECT_EQ(TenantHub::SanitizeTenantForPath(""), "_");
  EXPECT_EQ(TenantHub::SanitizeTenantForPath("a b\tc"), "a_b_c");
}

std::unique_ptr<XStreamSystem> MakeBareSystem(EventTypeRegistry* registry) {
  XStreamConfig cfg;
  cfg.explain.feature_space.windows = {10};
  return std::make_unique<XStreamSystem>(registry, cfg);
}

TEST(TenantHubTest, RegistryRejectsDuplicatesAndUnknowns) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  auto sys = MakeBareSystem(&registry);

  TenantHub hub;
  EXPECT_FALSE(hub.AddTenant("", sys.get()).ok());
  EXPECT_FALSE(hub.AddTenant("t", nullptr).ok());
  ASSERT_TRUE(hub.AddTenant("t", sys.get()).ok());
  EXPECT_FALSE(hub.AddTenant("t", sys.get()).ok());

  EXPECT_TRUE(hub.HasTenant("t"));
  EXPECT_FALSE(hub.HasTenant("u"));
  EXPECT_EQ(hub.system("t"), sys.get());
  EXPECT_EQ(hub.system("u"), nullptr);
  EXPECT_EQ(hub.tenants(), std::vector<std::string>{"t"});
  EXPECT_FALSE(hub.SetQuota("u", TenantQuota{}).ok());
  EXPECT_FALSE(hub.fault_stats("u").ok());
  EXPECT_FALSE(hub.TryChargeQuota("u", 1));
  EXPECT_FALSE(hub.TryEnterQueue("u", 1));
  EXPECT_FALSE(hub.LockApply("u").owns_lock());
  EXPECT_TRUE(hub.LockApply("t").owns_lock());
}

TEST(TenantHubTest, TokenBucketRefillsDeterministically) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  auto sys = MakeBareSystem(&registry);

  int64_t now_ms = 0;
  TenantHub hub([&now_ms] { return now_ms; });
  TenantQuota quota;
  quota.bytes_per_sec = 100;
  quota.burst_bytes = 200;
  ASSERT_TRUE(hub.AddTenant("t", sys.get(), quota).ok());

  // Full bucket at start.
  EXPECT_TRUE(hub.TryChargeQuota("t", 150));   // tokens: 200 -> 50
  EXPECT_FALSE(hub.TryChargeQuota("t", 100));  // 50 < 100
  now_ms += 1000;                              // +100 tokens -> 150
  EXPECT_TRUE(hub.TryChargeQuota("t", 100));   // tokens: 150 -> 50
  now_ms += 10000;                             // clamps at burst (200)
  EXPECT_TRUE(hub.TryChargeQuota("t", 200));
  EXPECT_FALSE(hub.TryChargeQuota("t", 1));

  // A frame larger than the whole bucket is admitted when the bucket is
  // full — otherwise it could never pass.
  now_ms += 2000;  // bucket back to burst
  EXPECT_TRUE(hub.TryChargeQuota("t", 100000));
  EXPECT_FALSE(hub.TryChargeQuota("t", 1));  // drained to zero, not negative

  // bytes_per_sec == 0 disables the limit entirely.
  ASSERT_TRUE(hub.SetQuota("t", TenantQuota{}).ok());
  EXPECT_TRUE(hub.TryChargeQuota("t", 1u << 30));
  EXPECT_TRUE(hub.TryChargeQuota("t", 1u << 30));
}

TEST(TenantHubTest, QueueShareAdmitsIdleTenantAndTracksBytes) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  auto sys = MakeBareSystem(&registry);

  TenantHub hub;
  TenantQuota quota;
  quota.queue_share_bytes = 100;
  ASSERT_TRUE(hub.AddTenant("t", sys.get(), quota).ok());

  // An idle tenant is always admitted, even past the share (no starvation).
  EXPECT_TRUE(hub.TryEnterQueue("t", 500));
  EXPECT_EQ(hub.tenant_stats("t").queued_bytes, 500u);
  // With bytes in flight, the share gates strictly.
  EXPECT_FALSE(hub.TryEnterQueue("t", 1));
  hub.LeaveQueue("t", 500);
  EXPECT_EQ(hub.tenant_stats("t").queued_bytes, 0u);
  EXPECT_TRUE(hub.TryEnterQueue("t", 40));
  EXPECT_TRUE(hub.TryEnterQueue("t", 40));   // 80 <= 100
  EXPECT_FALSE(hub.TryEnterQueue("t", 40));  // 120 > 100
  hub.LeaveQueue("t", 80);

  // Shed bookkeeping lands on the right counters.
  hub.NoteQuotaShed("t", 64, /*queue_share=*/false);
  hub.NoteQuotaShed("t", 32, /*queue_share=*/true);
  const auto stats = hub.tenant_stats("t");
  EXPECT_EQ(stats.quota_shed_frames, 1u);
  EXPECT_EQ(stats.quota_shed_events, 64u);
  EXPECT_EQ(stats.queue_shed_frames, 1u);
  EXPECT_EQ(stats.queue_shed_events, 32u);
}

TEST(TenantHubTest, QualifiedPartitionsAreTenantScoped) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  HadoopSimConfig cfg;
  cfg.num_nodes = 2;
  cfg.seed = 11;
  HadoopClusterSim sim(cfg, &registry);
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  VectorSink sink;
  ASSERT_TRUE(sim.Run(&sink).ok());

  auto sys = MakeBareSystem(&registry);
  const auto qid = sys->AddQuery(
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))",
      "Q1");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  sys->OnEventBatch(sink.events());
  sys->Flush();

  TenantHub hub;
  ASSERT_TRUE(hub.AddTenant("beta", sys.get()).ok());
  const auto partitions = hub.QualifiedPartitions("beta", *qid);
  ASSERT_TRUE(partitions.ok()) << partitions.status().ToString();
  ASSERT_FALSE(partitions->empty());
  bool found = false;
  for (const std::string& qualified : *partitions) {
    std::string tenant, key;
    ASSERT_TRUE(SplitTenantKey(qualified, &tenant, &key)) << qualified;
    EXPECT_EQ(tenant, "beta");
    found |= key == "job-x";
  }
  EXPECT_TRUE(found) << "job-x partition missing from the qualified listing";

  EXPECT_FALSE(hub.QualifiedPartitions("nope", *qid).ok());
  EXPECT_FALSE(hub.QualifiedPartitions("beta", *qid + 17).ok());
}

}  // namespace
}  // namespace exstream
