#include "ts/distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ts/entropy_distance.h"

namespace exstream {
namespace {

TimeSeries Series(std::vector<double> values) {
  TimeSeries s;
  for (size_t i = 0; i < values.size(); ++i) {
    (void)s.Append(static_cast<Timestamp>(i), values[i]);
  }
  return s;
}

DistanceOptions RawOptions() {
  DistanceOptions opts;
  opts.z_normalize = false;  // compare raw values in unit tests
  opts.resample_points = 16;
  return opts;
}

TEST(DistanceTest, FactoryByName) {
  for (const std::string& name : BaselineDistanceNames()) {
    auto d = MakeDistanceByName(name);
    ASSERT_TRUE(d.ok()) << name;
    EXPECT_EQ((*d)->name(), name);
  }
  EXPECT_TRUE(MakeDistanceByName("dissim").ok());
  EXPECT_FALSE(MakeDistanceByName("bogus").ok());
}

TEST(DistanceTest, IdenticalSeriesScoreZero) {
  const TimeSeries s = Series({1, 2, 3, 4, 5, 4, 3, 2});
  for (const std::string& name : BaselineDistanceNames()) {
    auto d = MakeDistanceByName(name, RawOptions());
    ASSERT_TRUE(d.ok());
    EXPECT_NEAR((*d)->Distance(s, s), 0.0, 1e-9) << name;
  }
}

TEST(DistanceTest, Symmetry) {
  Rng rng(3);
  std::vector<double> va;
  std::vector<double> vb;
  for (int i = 0; i < 40; ++i) {
    va.push_back(rng.Gaussian(0, 1));
    vb.push_back(rng.Gaussian(0.5, 1.2));
  }
  const TimeSeries a = Series(va);
  const TimeSeries b = Series(vb);
  for (const std::string& name : BaselineDistanceNames()) {
    auto d = MakeDistanceByName(name, RawOptions());
    ASSERT_TRUE(d.ok());
    EXPECT_NEAR((*d)->Distance(a, b), (*d)->Distance(b, a), 1e-9) << name;
  }
}

TEST(DistanceTest, ManhattanAndEuclideanKnownValues) {
  // Constant series 0 vs constant 1, resampled to 16 points.
  const TimeSeries zeros = Series(std::vector<double>(16, 0.0));
  const TimeSeries ones = Series(std::vector<double>(16, 1.0));
  auto l1 = MakeManhattanDistance(RawOptions());
  auto l2 = MakeEuclideanDistance(RawOptions());
  EXPECT_NEAR(l1->Distance(zeros, ones), 16.0, 1e-9);
  EXPECT_NEAR(l2->Distance(zeros, ones), 4.0, 1e-9);  // sqrt(16)
}

TEST(DistanceTest, DtwHandlesTimeShift) {
  // A shifted copy of a pattern: DTW warps it back (small distance), while
  // the lock-step L1 sees the misalignment (larger distance).
  std::vector<double> base = {0, 0, 0, 5, 9, 5, 0, 0, 0, 0, 0, 0};
  std::vector<double> shifted = {0, 0, 0, 0, 0, 0, 5, 9, 5, 0, 0, 0};
  const TimeSeries a = Series(base);
  const TimeSeries b = Series(shifted);
  DistanceOptions opts = RawOptions();
  opts.resample_points = base.size();
  const double dtw = MakeDtwDistance(opts)->Distance(a, b);
  const double l1 = MakeManhattanDistance(opts)->Distance(a, b);
  EXPECT_LT(dtw * static_cast<double>(base.size()), l1);
}

TEST(DistanceTest, LcssPerfectMatchAndMismatch) {
  const TimeSeries a = Series({1, 2, 3, 4});
  const TimeSeries far = Series({100, 200, 300, 400});
  DistanceOptions opts = RawOptions();
  auto lcss = MakeLcssDistance(opts);
  EXPECT_NEAR(lcss->Distance(a, a), 0.0, 1e-9);
  EXPECT_NEAR(lcss->Distance(a, far), 1.0, 1e-9);  // nothing matches
}

TEST(DistanceTest, EdrCountsMismatchedElements) {
  const TimeSeries a = Series({1, 1, 1, 1});
  const TimeSeries b = Series({1, 1, 50, 1});
  auto edr = MakeEdrDistance(RawOptions());
  const double d = edr->Distance(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 0.5);
}

TEST(DistanceTest, ErpAccumulatesGapPenalty) {
  const TimeSeries a = Series({2, 2, 2});
  const TimeSeries b = Series({2, 2, 2, 2, 2, 2});
  auto erp = MakeErpDistance(RawOptions());
  EXPECT_GT(erp->Distance(a, b), 0.0);  // extra elements pay |v - gap|
}

TEST(DistanceTest, EmptySeriesConventions) {
  const TimeSeries empty;
  const TimeSeries s = Series({1, 2});
  auto l2 = MakeEuclideanDistance(RawOptions());
  EXPECT_DOUBLE_EQ(l2->Distance(empty, empty), 0.0);
  EXPECT_TRUE(std::isinf(l2->Distance(empty, s)));
}

TEST(DistanceTest, PaperLockStepLimitation) {
  // Sec. 4.2: lock-step distances cannot distinguish (TS1,TS2) from
  // (TS3,TS4), but the entropy distance can.
  const TimeSeries ts1 = Series({1, 1, 1});
  const TimeSeries ts2 = Series({0, 0, 0});
  const TimeSeries ts3 = Series({1, 0, 1});
  const TimeSeries ts4 = Series({0, 1, 0});
  auto l1 = MakeManhattanDistance(RawOptions());
  EXPECT_NEAR(l1->Distance(ts1, ts2), l1->Distance(ts3, ts4), 1e-9);
  const double e12 = ComputeEntropyDistance(ts1, ts2).distance;
  const double e34 = ComputeEntropyDistance(ts3, ts4).distance;
  EXPECT_GT(e12, e34);
}

TEST(DistanceTest, ElasticLengthCapRespected) {
  // Very long series must still complete quickly via downsampling.
  Rng rng(5);
  std::vector<double> big;
  for (int i = 0; i < 5000; ++i) big.push_back(rng.Gaussian(0, 1));
  const TimeSeries a = Series(big);
  DistanceOptions opts;
  opts.max_elastic_points = 64;
  auto dtw = MakeDtwDistance(opts);
  const double d = dtw->Distance(a, a);
  EXPECT_NEAR(d, 0.0, 1e-9);
}

// All named distances remain finite and non-negative on random inputs.
class DistancePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(DistancePropertyTest, FiniteNonNegative) {
  const auto& [name, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> va;
  std::vector<double> vb;
  const int na = 5 + static_cast<int>(rng.UniformInt(0, 60));
  const int nb = 5 + static_cast<int>(rng.UniformInt(0, 60));
  for (int i = 0; i < na; ++i) va.push_back(rng.Gaussian(0, 3));
  for (int i = 0; i < nb; ++i) vb.push_back(rng.Gaussian(1, 3));
  auto d = MakeDistanceByName(name);
  ASSERT_TRUE(d.ok());
  const double dist = (*d)->Distance(Series(va), Series(vb));
  EXPECT_TRUE(std::isfinite(dist)) << name;
  EXPECT_GE(dist, 0.0) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistances, DistancePropertyTest,
    ::testing::Combine(::testing::Values("manhattan", "euclidean", "dissim", "dtw",
                                         "edr", "erp", "lcss"),
                       ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3})));

}  // namespace
}  // namespace exstream
