#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace exstream {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad thing");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::IOError("disk gone");
  Status b = a;  // shares the state
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk gone");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  EXSTREAM_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> Doubled(int x) {
  EXSTREAM_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_EQ(r.ValueOrDie(), 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Doubled(4).ok());
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_FALSE(Doubled(-4).ok());
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).MoveValue();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace exstream
