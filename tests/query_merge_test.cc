// Tests of the multi-query optimizer: signature canonicalization
// (query_merge.h), merge-class assignment, and full differential
// bit-identity of the merged shared-NFA engine against the legacy
// per-query evaluator on both paper simulators (Hadoop cluster and
// supply chain).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cep/engine.h"
#include "cep/query_merge.h"
#include "common/strings.h"
#include "query/parser.h"
#include "sim/hadoop_sim.h"
#include "sim/supply_chain_sim.h"

namespace exstream {
namespace {

// ---------------------------------------------------------------------------
// Signature canonicalization
// ---------------------------------------------------------------------------

class MergeSignatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Start", {{"job", ValueType::kString},
                                                    {"region", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Tick", {{"job", ValueType::kString},
                                                   {"region", ValueType::kString},
                                                   {"size", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("End", {{"job", ValueType::kString},
                                                  {"region", ValueType::kString}}))
                    .ok());
  }

  CompiledQuery Compile(const std::string& text) {
    auto query = ParseQuery(text);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto cq = CompiledQuery::Compile(*query, &registry_);
    EXPECT_TRUE(cq.ok()) << cq.status().ToString();
    return std::move(*cq);
  }

  MergeSignature Sig(const std::string& text) {
    return BuildMergeSignature(Compile(text));
  }

  EventTypeRegistry registry_;
};

constexpr char kBase[] =
    "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
    "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))";

TEST_F(MergeSignatureTest, ReplicasShareAllKeys) {
  const MergeSignature s1 = Sig(kBase);
  const MergeSignature s2 = Sig(kBase);
  EXPECT_TRUE(s1.mergeable);
  EXPECT_EQ(s1.group_key, s2.group_key);
  EXPECT_EQ(s1.residue_key, s2.residue_key);
  EXPECT_EQ(s1.table_key, s2.table_key);
}

TEST_F(MergeSignatureTest, PredicateReorderingCanonicalizes) {
  // WHERE predicates are an AND conjunction; their order must not split
  // groups.
  const MergeSignature s1 = Sig(
      "PATTERN SEQ(Start a, Tick+ b[], End c) "
      "WHERE [job] AND b.size > 1 AND b.size < 9 "
      "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))");
  const MergeSignature s2 = Sig(
      "PATTERN SEQ(Start a, Tick+ b[], End c) "
      "WHERE [job] AND b.size < 9 AND b.size > 1 "
      "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))");
  EXPECT_TRUE(s1.mergeable);
  EXPECT_EQ(s1.group_key, s2.group_key);
  EXPECT_EQ(s1.residue_key, s2.residue_key);
}

TEST_F(MergeSignatureTest, AliasRenamingCanonicalizes) {
  // Compiled references are positional; variable names must not matter.
  const MergeSignature s2 = Sig(
      "PATTERN SEQ(Start x, Tick+ y[], End z) WHERE [job] "
      "RETURN (y[i].timestamp, x.job, sum(y[1..i].size))");
  const MergeSignature s1 = Sig(kBase);
  EXPECT_EQ(s1.group_key, s2.group_key);
  EXPECT_EQ(s1.residue_key, s2.residue_key);
}

TEST_F(MergeSignatureTest, DifferentPredicateConstantsSplitGroups) {
  const MergeSignature s1 = Sig(
      "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] AND b.size > 1 "
      "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))");
  const MergeSignature s2 = Sig(
      "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] AND b.size > 2 "
      "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))");
  EXPECT_NE(s1.group_key, s2.group_key);
}

TEST_F(MergeSignatureTest, DifferentPartitionAttributesSplitGroups) {
  const MergeSignature by_job = Sig(kBase);
  const MergeSignature by_region = Sig(
      "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [region] "
      "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))");
  EXPECT_TRUE(by_region.mergeable);
  EXPECT_NE(by_job.group_key, by_region.group_key);
}

TEST_F(MergeSignatureTest, WithinSplitsGroups) {
  const MergeSignature s1 = Sig(
      "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] WITHIN 100 "
      "RETURN (a.job)");
  const MergeSignature s2 = Sig(
      "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] WITHIN 200 "
      "RETURN (a.job)");
  EXPECT_NE(s1.group_key, s2.group_key);
}

TEST_F(MergeSignatureTest, DifferentReturnsShareGroupSplitResidue) {
  const MergeSignature s1 = Sig(kBase);
  const MergeSignature s2 = Sig(
      "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
      "RETURN (b[i].timestamp, a.job, count(b[1..i].size))");
  EXPECT_EQ(s1.group_key, s2.group_key);
  EXPECT_NE(s1.residue_key, s2.residue_key);
}

TEST_F(MergeSignatureTest, NegationIsUnmergeable) {
  const MergeSignature sig =
      Sig("PATTERN SEQ(Start a, !Tick b, End c) WHERE [job] RETURN (a.job)");
  EXPECT_FALSE(sig.mergeable);
}

TEST_F(MergeSignatureTest, PlannerAssignsClasses) {
  MergePlanner planner;
  const CompiledQuery replica1 = Compile(kBase);
  const CompiledQuery replica2 = Compile(kBase);
  const CompiledQuery other_return = Compile(
      "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
      "RETURN (b[i].timestamp, a.job, count(b[1..i].size))");
  const CompiledQuery other_pattern = Compile(
      "PATTERN SEQ(Start a, End c) WHERE [job] RETURN (a.job)");

  const MergeAssignment a1 = planner.Assign(replica1);
  const MergeAssignment a2 = planner.Assign(replica2);
  const MergeAssignment a3 = planner.Assign(other_return);
  const MergeAssignment a4 = planner.Assign(other_pattern);

  EXPECT_TRUE(a1.new_group);
  EXPECT_FALSE(a2.new_group);
  EXPECT_EQ(a1.group, a2.group);
  EXPECT_EQ(a1.residue, a2.residue);
  EXPECT_EQ(a1.table, a2.table);

  EXPECT_EQ(a1.group, a3.group);     // same pattern
  EXPECT_TRUE(a3.new_residue);       // different RETURN
  EXPECT_NE(a1.residue, a3.residue);

  EXPECT_TRUE(a4.new_group);  // different SEQ shape
  EXPECT_NE(a1.group, a4.group);

  const MergePlanStats& stats = planner.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.groups, 2u);
  EXPECT_EQ(stats.residue_classes, 3u);
  EXPECT_EQ(stats.table_classes, 3u);
  EXPECT_EQ(stats.unmergeable, 0u);
}

TEST_F(MergeSignatureTest, PlannerSingletonsNeverMerge) {
  MergePlanner planner;
  const CompiledQuery neg = Compile(
      "PATTERN SEQ(Start a, !Tick b, End c) WHERE [job] RETURN (a.job)");
  const MergeAssignment a1 = planner.Assign(neg);
  const MergeAssignment a2 = planner.Assign(neg);
  EXPECT_NE(a1.group, a2.group);  // identical text, still isolated
  EXPECT_EQ(planner.stats().unmergeable, 2u);

  // force_singleton isolates even a mergeable query (mid-stream AddQuery).
  const CompiledQuery plain = Compile(kBase);
  const MergeAssignment a3 = planner.Assign(plain);
  const MergeAssignment a4 = planner.Assign(plain, /*force_singleton=*/true);
  EXPECT_NE(a3.group, a4.group);
}

// ---------------------------------------------------------------------------
// Differential bit-identity on the paper simulators
// ---------------------------------------------------------------------------

struct NoteCopy {
  QueryId query;
  uint32_t partition_id;
  std::string partition;
  Timestamp ts;
  std::vector<Value> values;
  bool complete;

  static NoteCopy From(const MatchNotification& n) {
    return NoteCopy{n.query,  n.partition_id, std::string(n.partition),
                    n.row.ts, n.row.values,   n.complete};
  }
  bool operator==(const NoteCopy& o) const {
    return query == o.query && partition_id == o.partition_id &&
           partition == o.partition && ts == o.ts && values == o.values &&
           complete == o.complete;
  }
};

struct TableCopy {
  std::vector<std::string> partitions;
  std::vector<std::vector<MatchRow>> rows;
  std::vector<bool> complete;

  static TableCopy From(const MatchTable& t) {
    TableCopy c;
    c.partitions = t.Partitions();
    for (const std::string& p : c.partitions) {
      c.rows.push_back(t.Rows(p));
      c.complete.push_back(t.IsComplete(p));
    }
    return c;
  }
};

void ExpectTablesEqual(const TableCopy& a, const TableCopy& b,
                       const std::string& label) {
  ASSERT_EQ(a.partitions, b.partitions) << label;
  ASSERT_EQ(a.complete, b.complete) << label;
  for (size_t p = 0; p < a.partitions.size(); ++p) {
    ASSERT_EQ(a.rows[p].size(), b.rows[p].size())
        << label << " partition " << a.partitions[p];
    for (size_t i = 0; i < a.rows[p].size(); ++i) {
      ASSERT_EQ(a.rows[p][i].ts, b.rows[p][i].ts)
          << label << " " << a.partitions[p] << "#" << i;
      ASSERT_EQ(a.rows[p][i].values, b.rows[p][i].values)
          << label << " " << a.partitions[p] << "#" << i;
    }
  }
}

struct EngineOutput {
  std::vector<TableCopy> tables;
  std::vector<NoteCopy> notes;
};

// Runs `queries` through one engine configuration and captures everything an
// observer can see: per-query MatchTables and the callback sequence.
EngineOutput RunEngine(const EventTypeRegistry& registry,
                       const std::vector<std::string>& queries,
                       const std::vector<Event>& stream, bool merge,
                       size_t ingest_threads, size_t batch_size) {
  CepEngineOptions options;
  options.enable_query_merge = merge;
  options.ingest_threads = ingest_threads;
  CepEngine engine(&registry, options);
  std::vector<QueryId> ids;
  for (size_t q = 0; q < queries.size(); ++q) {
    auto qid = engine.AddQueryText(queries[q], StrFormat("Q%zu", q));
    EXPECT_TRUE(qid.ok()) << qid.status().ToString();
    ids.push_back(*qid);
  }
  EngineOutput out;
  engine.SetMatchCallback([&out](const MatchNotification& n) {
    out.notes.push_back(NoteCopy::From(n));
  });
  if (batch_size == 0) {
    for (const Event& e : stream) engine.OnEvent(e);
  } else {
    for (size_t i = 0; i < stream.size(); i += batch_size) {
      const size_t end = std::min(stream.size(), i + batch_size);
      engine.OnEventBatch(EventBatch(stream.begin() + static_cast<ptrdiff_t>(i),
                                     stream.begin() + static_cast<ptrdiff_t>(end)));
    }
  }
  for (const QueryId id : ids) {
    out.tables.push_back(TableCopy::From(engine.match_table(id)));
  }
  return out;
}

void CheckMergedMatchesLegacy(const EventTypeRegistry& registry,
                              const std::vector<std::string>& queries,
                              const std::vector<Event>& stream,
                              const std::string& label) {
  // Ground truth: the legacy per-query evaluator, sequential.
  const EngineOutput ref =
      RunEngine(registry, queries, stream, /*merge=*/false, 1, 0);
  ASSERT_FALSE(ref.notes.empty()) << label << ": stream produced no matches";

  struct Config {
    size_t threads;
    size_t batch;
  };
  const Config configs[] = {{1, 0}, {1, 64}, {2, 64}, {8, 512}};
  for (const Config& c : configs) {
    const std::string run_label =
        StrFormat("%s merged threads=%zu batch=%zu", label.c_str(), c.threads,
                  c.batch);
    const EngineOutput got =
        RunEngine(registry, queries, stream, /*merge=*/true, c.threads, c.batch);
    ASSERT_EQ(got.tables.size(), ref.tables.size()) << run_label;
    for (size_t q = 0; q < got.tables.size(); ++q) {
      ExpectTablesEqual(ref.tables[q], got.tables[q],
                        StrFormat("%s Q%zu", run_label.c_str(), q));
    }
    ASSERT_EQ(got.notes.size(), ref.notes.size()) << run_label;
    for (size_t i = 0; i < got.notes.size(); ++i) {
      ASSERT_TRUE(got.notes[i] == ref.notes[i])
          << run_label << " note #" << i << " (callback order must match)";
    }
  }
}

std::vector<Event> BuildHadoopStream(const EventTypeRegistry& registry) {
  HadoopSimConfig config;
  config.num_nodes = 3;
  config.seed = 99;
  HadoopClusterSim sim(config, &registry);
  for (int j = 0; j < 4; ++j) {
    HadoopJobConfig job;
    job.job_id = StrFormat("job-%d", j);
    job.program = "wordcount";
    job.dataset = "ds";
    job.start_time = j * 120;
    sim.AddJob(job);
  }
  VectorSink sink;
  EXPECT_TRUE(sim.Run(&sink).ok());
  return sink.TakeEvents();
}

TEST(QueryMergeDifferentialTest, HadoopSimulatorBitIdentical) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  const std::vector<Event> stream = BuildHadoopStream(registry);
  ASSERT_FALSE(stream.empty());

  // A mixed portfolio: replicas (merge fully), a residue-mate with a
  // different RETURN, an alias-renamed replica, and a WITHIN variant that
  // must stay in its own group.
  const std::vector<std::string> queries = {
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))",
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))",
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, count(b[1..i].dataSize))",
      "PATTERN SEQ(JobStart x, DataIO+ y[], JobEnd z) WHERE [jobId] "
      "RETURN (y[i].timestamp, x.jobId, sum(y[1..i].dataSize))",
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] WITHIN 500 "
      "RETURN (b[i].timestamp, a.jobId, max(b[1..i].dataSize))",
  };
  CheckMergedMatchesLegacy(registry, queries, stream, "hadoop");
}

TEST(QueryMergeDifferentialTest, SupplyChainSimulatorBitIdentical) {
  EventTypeRegistry registry;
  SupplyChainConfig config;
  config.num_sensors = 4;
  config.num_machines = 4;
  config.num_products = 4;
  config.seed = 23;
  ASSERT_TRUE(SupplyChainSim::RegisterEventTypes(&registry, config).ok());
  SupplyChainSim sim(config, &registry);
  ScAnomalySpec spec;
  spec.type = ScAnomalyType::kSubParMaterial;
  spec.product_index = 1;
  spec.targets = {0};
  sim.AddAnomaly(spec);
  VectorSink sink;
  ASSERT_TRUE(sim.Run(&sink).ok());
  const std::vector<Event> stream = sink.TakeEvents();
  ASSERT_FALSE(stream.empty());

  const std::vector<std::string> queries = {
      "PATTERN SEQ(ProductStart a, ProductProgress+ b[], ProductEnd c) "
      "WHERE [productId] RETURN (b[i].timestamp, a.productId, "
      "avg(b[1..i].quality))",
      "PATTERN SEQ(ProductStart a, ProductProgress+ b[], ProductEnd c) "
      "WHERE [productId] RETURN (b[i].timestamp, a.productId, "
      "avg(b[1..i].quality))",
      "PATTERN SEQ(ProductStart a, ProductProgress+ b[], ProductEnd c) "
      "WHERE [productId] RETURN (b[i].timestamp, a.productId, "
      "min(b[1..i].quality))",
  };
  CheckMergedMatchesLegacy(registry, queries, stream, "supply-chain");
}

// ---------------------------------------------------------------------------
// Engine-level merge behavior
// ---------------------------------------------------------------------------

class MergedEngineTest : public MergeSignatureTest {};

TEST_F(MergedEngineTest, StatsReportCompression) {
  CepEngine engine(&registry_);
  ASSERT_TRUE(engine.merge_enabled());
  for (int q = 0; q < 10; ++q) {
    ASSERT_TRUE(engine.AddQueryText(kBase, StrFormat("Q%d", q)).ok());
  }
  const MergePlanStats& stats = engine.merge_stats();
  EXPECT_EQ(stats.queries, 10u);
  EXPECT_EQ(stats.groups, 1u);
  EXPECT_EQ(stats.residue_classes, 1u);
  EXPECT_EQ(stats.table_classes, 1u);
  EXPECT_DOUBLE_EQ(stats.compression(), 10.0);
}

TEST_F(MergedEngineTest, MidStreamAddQueryIsIsolatedAndCorrect) {
  // A query added after events have flowed must not inherit the group's
  // partial-match history, and must still agree with the legacy engine fed
  // the same add-mid-stream sequence.
  std::vector<Event> first_half;
  std::vector<Event> second_half;
  Timestamp ts = 0;
  for (int i = 0; i < 40; ++i) {
    const std::string job = StrFormat("j%d", i % 3);
    auto& dst = i < 20 ? first_half : second_half;
    dst.emplace_back(0, ++ts, MakeValues(job, std::string("r")));
    dst.emplace_back(1, ++ts, MakeValues(job, std::string("r"), 1.5 * i));
    dst.emplace_back(2, ++ts, MakeValues(job, std::string("r")));
  }

  auto run = [&](bool merge) {
    CepEngineOptions options;
    options.enable_query_merge = merge;
    CepEngine engine(&registry_, options);
    auto q0 = engine.AddQueryText(kBase, "Q0");
    EXPECT_TRUE(q0.ok());
    for (const Event& e : first_half) engine.OnEvent(e);
    auto q1 = engine.AddQueryText(kBase, "Q1");  // mid-stream replica
    EXPECT_TRUE(q1.ok());
    for (const Event& e : second_half) engine.OnEvent(e);
    std::vector<TableCopy> tables;
    tables.push_back(TableCopy::From(engine.match_table(*q0)));
    tables.push_back(TableCopy::From(engine.match_table(*q1)));
    return tables;
  };

  const auto legacy = run(false);
  const auto merged = run(true);
  ExpectTablesEqual(legacy[0], merged[0], "mid-stream Q0");
  ExpectTablesEqual(legacy[1], merged[1], "mid-stream Q1");
  // Q1 saw only the second half: strictly fewer rows than Q0.
  size_t q0_rows = 0;
  size_t q1_rows = 0;
  for (const auto& r : merged[0].rows) q0_rows += r.size();
  for (const auto& r : merged[1].rows) q1_rows += r.size();
  EXPECT_LT(q1_rows, q0_rows);
  EXPECT_GT(q1_rows, 0u);
}

TEST_F(MergedEngineTest, ShrinkingShardPoolKeepsRoutingAllEvents) {
  // Regression: the router's per-shard lists used to only grow, so after
  // SetIngestThreads lowered the shard count, RouteGroupBatch kept spreading
  // work over the stale larger list while only the first `shards` entries
  // were ever drained — silently dropping every event hashed to an upper
  // shard (including in the serial shards==1 path).
  std::vector<Event> stream;
  Timestamp ts = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string job = StrFormat("j%d", i % 8);  // spread over shards
    stream.emplace_back(0, ++ts, MakeValues(job, std::string("r")));
    stream.emplace_back(1, ++ts, MakeValues(job, std::string("r"), 1.0 * i));
    stream.emplace_back(2, ++ts, MakeValues(job, std::string("r")));
  }
  const std::vector<std::string> queries = {kBase, kBase};

  auto make_engine = [&](size_t threads) {
    CepEngineOptions options;
    options.ingest_threads = threads;
    auto engine = std::make_unique<CepEngine>(&registry_, options);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_TRUE(engine->AddQueryText(queries[q], StrFormat("Q%zu", q)).ok());
    }
    return engine;
  };
  auto ingest = [&](CepEngine* engine, size_t begin, size_t end) {
    constexpr size_t kBatch = 32;
    for (size_t i = begin; i < end; i += kBatch) {
      const size_t stop = std::min(end, i + kBatch);
      engine->IngestBatch(
          EventBatch(stream.begin() + static_cast<ptrdiff_t>(i),
                     stream.begin() + static_cast<ptrdiff_t>(stop)));
    }
  };

  auto ref = make_engine(1);
  ingest(ref.get(), 0, stream.size());

  // Wide, then shrink to serial, then widen again mid-stream.
  auto dut = make_engine(4);
  ingest(dut.get(), 0, stream.size() / 3);
  dut->SetIngestThreads(1);
  ingest(dut.get(), stream.size() / 3, 2 * stream.size() / 3);
  dut->SetIngestThreads(2);
  ingest(dut.get(), 2 * stream.size() / 3, stream.size());

  for (size_t q = 0; q < queries.size(); ++q) {
    ExpectTablesEqual(TableCopy::From(ref->match_table(static_cast<QueryId>(q))),
                      TableCopy::From(dut->match_table(static_cast<QueryId>(q))),
                      StrFormat("shrunk shards Q%zu", q));
  }
}

TEST_F(MergedEngineTest, MidStreamAddQueryCheckpointRestores) {
  // Regression: a query added mid-stream is a forced-singleton merge group,
  // but recovery re-adds every query before any event flows — without the
  // persisted mid-stream flags the restoring planner merged it into its
  // structural group and RestoreState rejected the snapshot as corrupt.
  std::vector<Event> part1;
  std::vector<Event> part2;
  std::vector<Event> part3;
  Timestamp ts = 0;
  auto triplet = [&](std::vector<Event>* dst, const std::string& job,
                     double size) {
    dst->emplace_back(0, ++ts, MakeValues(job, std::string("r")));
    dst->emplace_back(1, ++ts, MakeValues(job, std::string("r"), size));
    dst->emplace_back(2, ++ts, MakeValues(job, std::string("r")));
  };
  for (int i = 0; i < 12; ++i) triplet(&part1, StrFormat("j%d", i % 3), 0.5 * i);
  for (int i = 0; i < 12; ++i) triplet(&part2, StrFormat("j%d", i % 4), 1.5 * i);
  // Leave one run mid-kleene at the snapshot point; part3 closes it.
  part2.emplace_back(0, ++ts, MakeValues(std::string("open"), std::string("r")));
  part2.emplace_back(1, ++ts, MakeValues(std::string("open"), std::string("r"), 7.0));
  for (int i = 0; i < 12; ++i) triplet(&part3, StrFormat("j%d", i % 4), 2.5 * i);
  part3.emplace_back(2, ++ts, MakeValues(std::string("open"), std::string("r")));

  auto capture = [](CepEngine* engine) {
    std::vector<TableCopy> tables;
    for (QueryId q = 0; q < engine->num_queries(); ++q) {
      tables.push_back(TableCopy::From(engine->match_table(q)));
    }
    return tables;
  };

  for (const bool save_merged : {false, true}) {
    CepEngineOptions source_options;
    source_options.enable_query_merge = save_merged;
    CepEngine source(&registry_, source_options);
    ASSERT_TRUE(source.AddQueryText(kBase, "Q0").ok());
    for (const Event& e : part1) source.OnEvent(e);
    ASSERT_TRUE(source.AddQueryText(kBase, "Q1").ok());  // mid-stream replica
    for (const Event& e : part2) source.OnEvent(e);
    BytesWriter snapshot;
    source.SaveState(&snapshot);
    for (const Event& e : part3) source.OnEvent(e);
    const std::vector<TableCopy> want = capture(&source);

    for (const bool restore_merged : {false, true}) {
      const std::string label = StrFormat("save_merged=%d restore_merged=%d",
                                          save_merged, restore_merged);
      CepEngineOptions options;
      options.enable_query_merge = restore_merged;
      // Recovery shape: both queries re-added before any event, so without
      // the persisted flags Q1 would merge into Q0's group.
      CepEngine restored(&registry_, options);
      ASSERT_TRUE(restored.AddQueryText(kBase, "Q0").ok());
      ASSERT_TRUE(restored.AddQueryText(kBase, "Q1").ok());
      BytesReader reader(snapshot.str());
      const Status st = restored.RestoreState(&reader);
      ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();

      // The flags must survive a re-checkpoint of the restored engine too.
      BytesWriter resnapshot;
      restored.SaveState(&resnapshot);
      CepEngine second(&registry_, options);
      ASSERT_TRUE(second.AddQueryText(kBase, "Q0").ok());
      ASSERT_TRUE(second.AddQueryText(kBase, "Q1").ok());
      BytesReader rereader(resnapshot.str());
      const Status st2 = second.RestoreState(&rereader);
      ASSERT_TRUE(st2.ok()) << label << " (re-checkpoint): " << st2.ToString();

      for (CepEngine* engine : {&restored, &second}) {
        for (const Event& e : part3) engine->OnEvent(e);
        const std::vector<TableCopy> got = capture(engine);
        ASSERT_EQ(got.size(), want.size()) << label;
        for (size_t q = 0; q < want.size(); ++q) {
          ExpectTablesEqual(want[q], got[q],
                            StrFormat("%s Q%zu", label.c_str(), q));
        }
      }
    }
  }
}

TEST_F(MergedEngineTest, CheckpointRoundTripsAcrossModes) {
  // A snapshot taken by a merged engine must restore into an unmerged engine
  // and vice versa, mid-pattern state included.
  std::vector<Event> first_half;
  std::vector<Event> second_half;
  Timestamp ts = 0;
  for (int i = 0; i < 30; ++i) {
    const std::string job = StrFormat("j%d", i % 4);
    // Leave runs mid-kleene at the snapshot point: starts and ticks in the
    // first half, closing End events only in the second.
    first_half.emplace_back(0, ++ts, MakeValues(job, std::string("r")));
    first_half.emplace_back(1, ++ts, MakeValues(job, std::string("r"), 0.5 * i));
    first_half.emplace_back(1, ++ts, MakeValues(job, std::string("r"), 1.5 * i));
    second_half.emplace_back(2, ++ts, MakeValues(job, std::string("r")));
  }

  const std::vector<std::string> queries = {
      kBase, kBase,
      "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
      "RETURN (b[i].timestamp, a.job, count(b[1..i].size))"};

  auto make_engine = [&](bool merge) {
    CepEngineOptions options;
    options.enable_query_merge = merge;
    auto engine = std::make_unique<CepEngine>(&registry_, options);
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_TRUE(engine->AddQueryText(queries[q], StrFormat("Q%zu", q)).ok());
    }
    return engine;
  };
  auto finish = [&](CepEngine* engine) {
    std::vector<TableCopy> tables;
    for (const Event& e : second_half) engine->OnEvent(e);
    for (size_t q = 0; q < queries.size(); ++q) {
      tables.push_back(
          TableCopy::From(engine->match_table(static_cast<QueryId>(q))));
    }
    return tables;
  };

  for (const bool save_merged : {false, true}) {
    for (const bool restore_merged : {false, true}) {
      const std::string label = StrFormat("save_merged=%d restore_merged=%d",
                                          save_merged, restore_merged);
      auto source = make_engine(save_merged);
      for (const Event& e : first_half) source->OnEvent(e);
      BytesWriter snapshot;
      source->SaveState(&snapshot);
      const std::vector<TableCopy> want = finish(source.get());

      auto restored = make_engine(restore_merged);
      BytesReader reader(snapshot.str());
      const Status st = restored->RestoreState(&reader);
      ASSERT_TRUE(st.ok()) << label << ": " << st.ToString();
      const std::vector<TableCopy> got = finish(restored.get());
      for (size_t q = 0; q < queries.size(); ++q) {
        ExpectTablesEqual(want[q], got[q],
                          StrFormat("%s Q%zu", label.c_str(), q));
      }
    }
  }
}

}  // namespace
}  // namespace exstream
