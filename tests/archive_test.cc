#include "archive/archive.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "archive/serialization.h"
#include "common/rng.h"

namespace exstream {
namespace {

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register(EventSchema("A", {{"x", ValueType::kDouble}})).ok());
    ASSERT_TRUE(registry_.Register(EventSchema("B", {{"y", ValueType::kInt64}})).ok());
  }

  Event MakeA(Timestamp ts, double x) { return Event(0, ts, {Value(x)}); }
  Event MakeB(Timestamp ts, int64_t y) { return Event(1, ts, {Value(y)}); }

  EventTypeRegistry registry_;
};

TEST_F(ArchiveTest, AppendAndScan) {
  EventArchive archive(&registry_);
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, t * 1.0)).ok());
  }
  auto events = archive.Scan(0, {10, 19});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 10u);
  EXPECT_EQ((*events)[0].ts, 10);
  EXPECT_EQ((*events)[9].ts, 19);
}

TEST_F(ArchiveTest, ScanRespectsType) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(1, 1)).ok());
  ASSERT_TRUE(archive.Append(MakeB(1, 2)).ok());
  auto a = archive.Scan(0, {0, 10});
  auto b = archive.Scan(1, {0, 10});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(b->size(), 1u);
  EXPECT_EQ((*b)[0].values[0].AsInt64(), 2);
}

TEST_F(ArchiveTest, ChunkBoundaries) {
  ArchiveOptions options;
  options.chunk_capacity = 16;
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, 0)).ok());
  }
  EXPECT_EQ(archive.CountEvents(0), 100u);
  EXPECT_EQ(archive.NumChunks(0), 100u / 16 + 1);
  // A scan crossing several chunk boundaries returns all matching events.
  auto events = archive.Scan(0, {10, 60});
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 51u);
}

TEST_F(ArchiveTest, OutOfOrderEventCountsAsError) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(10, 0)).ok());
  EXPECT_FALSE(archive.Append(MakeA(5, 0)).ok());
  archive.OnEvent(MakeA(3, 0));  // swallowed, counted
  EXPECT_EQ(archive.append_errors(), 1u);
}

TEST_F(ArchiveTest, UnknownTypeRejected) {
  EventArchive archive(&registry_);
  Event bogus(57, 0, {});
  EXPECT_FALSE(archive.Append(bogus).ok());
  EXPECT_FALSE(archive.Scan(57, {0, 1}).ok());
}

TEST_F(ArchiveTest, ScanAllGroupsByType) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(1, 0)).ok());
  ASSERT_TRUE(archive.Append(MakeB(2, 0)).ok());
  auto all = archive.ScanAll({0, 10});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].size(), 1u);
  EXPECT_EQ((*all)[1].size(), 1u);
  EXPECT_EQ(archive.TotalEvents(), 2u);
}

TEST_F(ArchiveTest, SpillToDiskAndReload) {
  char tmpl[] = "/tmp/exstream_spill_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  ArchiveOptions options;
  options.chunk_capacity = 8;
  options.spill_dir = std::string(tmpl);
  options.max_resident_chunks = 2;
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 200; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, t * 0.5)).ok());
  }
  // Scans transparently reload spilled chunks.
  auto events = archive.Scan(0, {0, 199});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 200u);
  EXPECT_DOUBLE_EQ((*events)[100].values[0].AsDouble(), 50.0);
}

TEST(SerializationTest, RoundTripAllTypes) {
  std::vector<Event> events;
  events.emplace_back(0, 10,
                      std::vector<Value>{Value(int64_t{-3}), Value(2.75),
                                         Value("hello world")});
  events.emplace_back(5, 20, std::vector<Value>{});
  const std::string data = SerializeEvents(events);
  auto parsed = DeserializeEvents(data);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].type, 0u);
  EXPECT_EQ((*parsed)[0].ts, 10);
  EXPECT_EQ((*parsed)[0].values[0].AsInt64(), -3);
  EXPECT_DOUBLE_EQ((*parsed)[0].values[1].AsDouble(), 2.75);
  EXPECT_EQ((*parsed)[0].values[2].AsString(), "hello world");
  EXPECT_EQ((*parsed)[1].type, 5u);
  EXPECT_TRUE((*parsed)[1].values.empty());
}

TEST(SerializationTest, CorruptionDetected) {
  std::vector<Event> events;
  events.emplace_back(0, 1, std::vector<Value>{Value(1.0)});
  std::string data = SerializeEvents(events);
  // Bad magic.
  std::string bad_magic = data;
  bad_magic[0] = 'x';
  EXPECT_FALSE(DeserializeEvents(bad_magic).ok());
  // Truncation.
  EXPECT_FALSE(DeserializeEvents(std::string_view(data).substr(0, data.size() - 3)).ok());
  // Trailing garbage.
  EXPECT_FALSE(DeserializeEvents(data + "zz").ok());
}

TEST(SerializationTest, FileRoundTrip) {
  char tmpl[] = "/tmp/exstream_file_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/events.bin";
  std::vector<Event> events;
  Rng rng(9);
  for (Timestamp t = 0; t < 64; ++t) {
    events.emplace_back(0, t, std::vector<Value>{Value(rng.Gaussian(0, 1))});
  }
  ASSERT_TRUE(WriteEventsFile(path, events).ok());
  auto loaded = ReadEventsFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i].values[0].AsDouble(),
                     events[i].values[0].AsDouble());
  }
}

TEST(SerializationTest, MissingFileErrors) {
  EXPECT_TRUE(ReadEventsFile("/nonexistent/path.bin").status().IsIOError());
}

}  // namespace
}  // namespace exstream
