#include "archive/archive.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "archive/serialization.h"
#include "common/rng.h"

namespace exstream {
namespace {

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register(EventSchema("A", {{"x", ValueType::kDouble}})).ok());
    ASSERT_TRUE(registry_.Register(EventSchema("B", {{"y", ValueType::kInt64}})).ok());
  }

  Event MakeA(Timestamp ts, double x) { return Event(0, ts, {Value(x)}); }
  Event MakeB(Timestamp ts, int64_t y) { return Event(1, ts, {Value(y)}); }

  EventTypeRegistry registry_;
};

TEST_F(ArchiveTest, AppendAndScan) {
  EventArchive archive(&registry_);
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, t * 1.0)).ok());
  }
  auto events = archive.Scan(0, {10, 19});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 10u);
  EXPECT_EQ((*events)[0].ts, 10);
  EXPECT_EQ((*events)[9].ts, 19);
}

TEST_F(ArchiveTest, ScanRespectsType) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(1, 1)).ok());
  ASSERT_TRUE(archive.Append(MakeB(1, 2)).ok());
  auto a = archive.Scan(0, {0, 10});
  auto b = archive.Scan(1, {0, 10});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(b->size(), 1u);
  EXPECT_EQ((*b)[0].values[0].AsInt64(), 2);
}

TEST_F(ArchiveTest, ChunkBoundaries) {
  ArchiveOptions options;
  options.chunk_capacity = 16;
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, 0)).ok());
  }
  EXPECT_EQ(archive.CountEvents(0), 100u);
  EXPECT_EQ(archive.NumChunks(0), 100u / 16 + 1);
  // A scan crossing several chunk boundaries returns all matching events.
  auto events = archive.Scan(0, {10, 60});
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 51u);
}

TEST_F(ArchiveTest, OutOfOrderEventCountsAsError) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(10, 0)).ok());
  EXPECT_FALSE(archive.Append(MakeA(5, 0)).ok());
  archive.OnEvent(MakeA(3, 0));  // swallowed, counted
  EXPECT_EQ(archive.append_errors(), 1u);
}

TEST_F(ArchiveTest, UnknownTypeRejected) {
  EventArchive archive(&registry_);
  Event bogus(57, 0, {});
  EXPECT_FALSE(archive.Append(bogus).ok());
  EXPECT_FALSE(archive.Scan(57, {0, 1}).ok());
}

TEST_F(ArchiveTest, ScanAllGroupsByType) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(1, 0)).ok());
  ASSERT_TRUE(archive.Append(MakeB(2, 0)).ok());
  auto all = archive.ScanAll({0, 10});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].type, 0u);
  EXPECT_EQ((*all)[0].events.size(), 1u);
  EXPECT_EQ((*all)[1].type, 1u);
  EXPECT_EQ((*all)[1].events.size(), 1u);
  EXPECT_EQ(archive.TotalEvents(), 2u);
}

TEST_F(ArchiveTest, ScanAllSkipsTypesWithNoInRangeEvents) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(1, 0)).ok());
  ASSERT_TRUE(archive.Append(MakeB(50, 0)).ok());
  // B's only event is outside the interval: no placeholder entry for it.
  auto all = archive.ScanAll({0, 10});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].type, 0u);
  // An interval matching nothing yields an empty result, not empty groups.
  auto none = archive.ScanAll({100, 200});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(ArchiveTest, ScanColumnsMatchesRowScan) {
  ArchiveOptions options;
  options.chunk_capacity = 8;  // force several sealed chunks plus an open tail
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 43; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, t * 2.0)).ok());
  }
  auto view = archive.ScanColumns(0, {4, 20});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->rows(), 17u);
  ASSERT_FALSE(view->segments.empty());
  // Timestamps across segments concatenate in time order, and the numeric
  // column carries the attribute values.
  Timestamp prev = -1;
  for (const auto& seg : view->segments) {
    for (size_t i = seg.begin; i < seg.end; ++i) {
      const Timestamp ts = seg.columns->ts()[i];
      EXPECT_GE(ts, prev);
      prev = ts;
      EXPECT_DOUBLE_EQ(seg.columns->attr(0).nums[i], ts * 2.0);
    }
  }
  // Materializing the view reproduces the row Scan exactly.
  std::vector<Event> rows;
  rows.reserve(view->rows());
  view->MaterializeEvents(&rows);
  auto scanned = archive.Scan(0, {4, 20});
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(rows.size(), scanned->size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].ts, (*scanned)[i].ts);
    ASSERT_EQ(rows[i].values.size(), (*scanned)[i].values.size());
    EXPECT_DOUBLE_EQ(rows[i].values[0].AsDouble(), (*scanned)[i].values[0].AsDouble());
  }
}

TEST_F(ArchiveTest, SpillToDiskAndReload) {
  char tmpl[] = "/tmp/exstream_spill_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  ArchiveOptions options;
  options.chunk_capacity = 8;
  options.spill_dir = std::string(tmpl);
  options.max_resident_chunks = 2;
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 200; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, t * 0.5)).ok());
  }
  // Scans transparently reload spilled chunks.
  auto events = archive.Scan(0, {0, 199});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 200u);
  EXPECT_DOUBLE_EQ((*events)[100].values[0].AsDouble(), 50.0);
}

TEST(SerializationTest, RoundTripAllTypes) {
  std::vector<Event> events;
  events.emplace_back(0, 10,
                      std::vector<Value>{Value(int64_t{-3}), Value(2.75),
                                         Value("hello world")});
  events.emplace_back(5, 20, std::vector<Value>{});
  const std::string data = SerializeEvents(events);
  auto parsed = DeserializeEvents(data);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].type, 0u);
  EXPECT_EQ((*parsed)[0].ts, 10);
  EXPECT_EQ((*parsed)[0].values[0].AsInt64(), -3);
  EXPECT_DOUBLE_EQ((*parsed)[0].values[1].AsDouble(), 2.75);
  EXPECT_EQ((*parsed)[0].values[2].AsString(), "hello world");
  EXPECT_EQ((*parsed)[1].type, 5u);
  EXPECT_TRUE((*parsed)[1].values.empty());
}

TEST(SerializationTest, CorruptionDetected) {
  std::vector<Event> events;
  events.emplace_back(0, 1, std::vector<Value>{Value(1.0)});
  std::string data = SerializeEvents(events);
  // Bad magic.
  std::string bad_magic = data;
  bad_magic[0] = 'x';
  EXPECT_FALSE(DeserializeEvents(bad_magic).ok());
  // Truncation.
  EXPECT_FALSE(DeserializeEvents(std::string_view(data).substr(0, data.size() - 3)).ok());
  // Trailing garbage.
  EXPECT_FALSE(DeserializeEvents(data + "zz").ok());
}

TEST(SerializationTest, FileRoundTrip) {
  char tmpl[] = "/tmp/exstream_file_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/events.bin";
  std::vector<Event> events;
  Rng rng(9);
  for (Timestamp t = 0; t < 64; ++t) {
    events.emplace_back(0, t, std::vector<Value>{Value(rng.Gaussian(0, 1))});
  }
  ASSERT_TRUE(WriteEventsFile(path, events).ok());
  auto loaded = ReadEventsFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i].values[0].AsDouble(),
                     events[i].values[0].AsDouble());
  }
}

TEST(SerializationTest, MissingFileErrors) {
  EXPECT_TRUE(ReadEventsFile("/nonexistent/path.bin").status().IsIOError());
}

// One same-type event run with every value kind, the shape a chunk spill has.
std::vector<Event> ChunkLikeEvents() {
  std::vector<Event> events;
  for (Timestamp t = 0; t < 32; ++t) {
    events.emplace_back(
        3, t,
        std::vector<Value>{Value(t * 0.5), Value(int64_t{100 - t}),
                           Value(std::string(t % 2 ? "odd" : "even"))});
  }
  return events;
}

TEST(SerializationTest, EveryFormatVersionRoundTrips) {
  const std::vector<Event> events = ChunkLikeEvents();
  for (const SpillFormat format :
       {SpillFormat::kV1, SpillFormat::kV2, SpillFormat::kV3}) {
    const std::string data = SerializeEvents(events, format);
    // Rows come back identical under every version...
    auto parsed = DeserializeEvents(data);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed->size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ((*parsed)[i].type, events[i].type);
      EXPECT_EQ((*parsed)[i].ts, events[i].ts);
      ASSERT_EQ((*parsed)[i].values.size(), 3u);
      EXPECT_DOUBLE_EQ((*parsed)[i].values[0].AsDouble(),
                       events[i].values[0].AsDouble());
      EXPECT_EQ((*parsed)[i].values[1].AsInt64(), events[i].values[1].AsInt64());
      EXPECT_EQ((*parsed)[i].values[2].AsString(), events[i].values[2].AsString());
    }
    // ...and every version also parses straight into columns.
    auto cols = DeserializeColumns(data);
    ASSERT_TRUE(cols.ok()) << cols.status().ToString();
    EXPECT_EQ(cols->rows(), events.size());
    EXPECT_EQ(cols->type(), 3u);
    ASSERT_EQ(cols->num_columns(), 3u);
    EXPECT_DOUBLE_EQ(cols->attr(0).nums[4], 2.0);
  }
}

TEST(SerializationTest, OldFormatFilesReadAsColumns) {
  char tmpl[] = "/tmp/exstream_file_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::vector<Event> events = ChunkLikeEvents();
  for (const SpillFormat format : {SpillFormat::kV1, SpillFormat::kV2}) {
    const std::string path =
        std::string(tmpl) + "/v" + std::to_string(static_cast<int>(format)) + ".bin";
    ASSERT_TRUE(WriteEventsFile(path, events, format).ok());
    auto cols = ReadColumnsFile(path);
    ASSERT_TRUE(cols.ok()) << cols.status().ToString();
    EXPECT_EQ(cols->rows(), events.size());
    std::vector<Event> rows;
    cols->MaterializeRows(0, cols->rows(), &rows);
    ASSERT_EQ(rows.size(), events.size());
    EXPECT_EQ(rows[7].values[2].AsString(), "odd");
  }
}

TEST(SerializationTest, V3CorruptedColumnIsPinpointed) {
  const std::string data = SerializeEvents(ChunkLikeEvents(), SpillFormat::kV3);
  // The buffer tail is the last column's payload (the string dictionary);
  // flipping a bit there must fail that column's CRC, not crash or misparse.
  std::string bad = data;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x40);
  const Status st = DeserializeEvents(bad).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("column"), std::string::npos) << st.ToString();
}

TEST(SerializationTest, MixedTypeBuffersFallBackToRows) {
  std::vector<Event> mixed;
  mixed.emplace_back(0, 1, std::vector<Value>{Value(1.0)});
  mixed.emplace_back(1, 2, std::vector<Value>{Value(int64_t{7})});
  // A v3 request on a mixed-type buffer writes the row layout (columnar
  // chunks are single-type by construction); rows still round-trip.
  const std::string data = SerializeEvents(mixed, SpillFormat::kV3);
  auto parsed = DeserializeEvents(data);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[1].type, 1u);
  // But folding mixed types into one chunk's columns is a structural error.
  EXPECT_TRUE(DeserializeColumns(data).status().IsCorruption());
}

}  // namespace
}  // namespace exstream
