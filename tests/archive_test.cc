#include "archive/archive.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "archive/serialization.h"
#include "archive/tiers.h"
#include "common/rng.h"

namespace exstream {
namespace {

class ArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register(EventSchema("A", {{"x", ValueType::kDouble}})).ok());
    ASSERT_TRUE(registry_.Register(EventSchema("B", {{"y", ValueType::kInt64}})).ok());
  }

  Event MakeA(Timestamp ts, double x) { return Event(0, ts, {Value(x)}); }
  Event MakeB(Timestamp ts, int64_t y) { return Event(1, ts, {Value(y)}); }

  EventTypeRegistry registry_;
};

TEST_F(ArchiveTest, AppendAndScan) {
  EventArchive archive(&registry_);
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, t * 1.0)).ok());
  }
  auto events = archive.Scan(0, {10, 19});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 10u);
  EXPECT_EQ((*events)[0].ts, 10);
  EXPECT_EQ((*events)[9].ts, 19);
}

TEST_F(ArchiveTest, ScanRespectsType) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(1, 1)).ok());
  ASSERT_TRUE(archive.Append(MakeB(1, 2)).ok());
  auto a = archive.Scan(0, {0, 10});
  auto b = archive.Scan(1, {0, 10});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(b->size(), 1u);
  EXPECT_EQ((*b)[0].values[0].AsInt64(), 2);
}

TEST_F(ArchiveTest, ChunkBoundaries) {
  ArchiveOptions options;
  options.chunk_capacity = 16;
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, 0)).ok());
  }
  EXPECT_EQ(archive.CountEvents(0), 100u);
  EXPECT_EQ(archive.NumChunks(0), 100u / 16 + 1);
  // A scan crossing several chunk boundaries returns all matching events.
  auto events = archive.Scan(0, {10, 60});
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 51u);
}

TEST_F(ArchiveTest, OutOfOrderEventCountsAsError) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(10, 0)).ok());
  EXPECT_FALSE(archive.Append(MakeA(5, 0)).ok());
  archive.OnEvent(MakeA(3, 0));  // swallowed, counted
  EXPECT_EQ(archive.append_errors(), 1u);
}

TEST_F(ArchiveTest, UnknownTypeRejected) {
  EventArchive archive(&registry_);
  Event bogus(57, 0, {});
  EXPECT_FALSE(archive.Append(bogus).ok());
  EXPECT_FALSE(archive.Scan(57, {0, 1}).ok());
}

TEST_F(ArchiveTest, ScanAllGroupsByType) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(1, 0)).ok());
  ASSERT_TRUE(archive.Append(MakeB(2, 0)).ok());
  auto all = archive.ScanAll({0, 10});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].type, 0u);
  EXPECT_EQ((*all)[0].events.size(), 1u);
  EXPECT_EQ((*all)[1].type, 1u);
  EXPECT_EQ((*all)[1].events.size(), 1u);
  EXPECT_EQ(archive.TotalEvents(), 2u);
}

TEST_F(ArchiveTest, ScanAllSkipsTypesWithNoInRangeEvents) {
  EventArchive archive(&registry_);
  ASSERT_TRUE(archive.Append(MakeA(1, 0)).ok());
  ASSERT_TRUE(archive.Append(MakeB(50, 0)).ok());
  // B's only event is outside the interval: no placeholder entry for it.
  auto all = archive.ScanAll({0, 10});
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ((*all)[0].type, 0u);
  // An interval matching nothing yields an empty result, not empty groups.
  auto none = archive.ScanAll({100, 200});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(ArchiveTest, ScanColumnsMatchesRowScan) {
  ArchiveOptions options;
  options.chunk_capacity = 8;  // force several sealed chunks plus an open tail
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 43; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, t * 2.0)).ok());
  }
  auto view = archive.ScanColumns(0, {4, 20});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->rows(), 17u);
  ASSERT_FALSE(view->segments.empty());
  // Timestamps across segments concatenate in time order, and the numeric
  // column carries the attribute values.
  Timestamp prev = -1;
  for (const auto& seg : view->segments) {
    for (size_t i = seg.begin; i < seg.end; ++i) {
      const Timestamp ts = seg.columns->ts()[i];
      EXPECT_GE(ts, prev);
      prev = ts;
      EXPECT_DOUBLE_EQ(seg.columns->attr(0).nums[i], ts * 2.0);
    }
  }
  // Materializing the view reproduces the row Scan exactly.
  std::vector<Event> rows;
  rows.reserve(view->rows());
  view->MaterializeEvents(&rows);
  auto scanned = archive.Scan(0, {4, 20});
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(rows.size(), scanned->size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].ts, (*scanned)[i].ts);
    ASSERT_EQ(rows[i].values.size(), (*scanned)[i].values.size());
    EXPECT_DOUBLE_EQ(rows[i].values[0].AsDouble(), (*scanned)[i].values[0].AsDouble());
  }
}

TEST_F(ArchiveTest, SpillToDiskAndReload) {
  char tmpl[] = "/tmp/exstream_spill_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  ArchiveOptions options;
  options.chunk_capacity = 8;
  options.spill_dir = std::string(tmpl);
  options.max_resident_chunks = 2;
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 200; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, t * 0.5)).ok());
  }
  // Scans transparently reload spilled chunks.
  auto events = archive.Scan(0, {0, 199});
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 200u);
  EXPECT_DOUBLE_EQ((*events)[100].values[0].AsDouble(), 50.0);
}

TEST(SerializationTest, RoundTripAllTypes) {
  std::vector<Event> events;
  events.emplace_back(0, 10,
                      std::vector<Value>{Value(int64_t{-3}), Value(2.75),
                                         Value("hello world")});
  events.emplace_back(5, 20, std::vector<Value>{});
  const std::string data = SerializeEvents(events);
  auto parsed = DeserializeEvents(data);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].type, 0u);
  EXPECT_EQ((*parsed)[0].ts, 10);
  EXPECT_EQ((*parsed)[0].values[0].AsInt64(), -3);
  EXPECT_DOUBLE_EQ((*parsed)[0].values[1].AsDouble(), 2.75);
  EXPECT_EQ((*parsed)[0].values[2].AsString(), "hello world");
  EXPECT_EQ((*parsed)[1].type, 5u);
  EXPECT_TRUE((*parsed)[1].values.empty());
}

TEST(SerializationTest, CorruptionDetected) {
  std::vector<Event> events;
  events.emplace_back(0, 1, std::vector<Value>{Value(1.0)});
  std::string data = SerializeEvents(events);
  // Bad magic.
  std::string bad_magic = data;
  bad_magic[0] = 'x';
  EXPECT_FALSE(DeserializeEvents(bad_magic).ok());
  // Truncation.
  EXPECT_FALSE(DeserializeEvents(std::string_view(data).substr(0, data.size() - 3)).ok());
  // Trailing garbage.
  EXPECT_FALSE(DeserializeEvents(data + "zz").ok());
}

TEST(SerializationTest, FileRoundTrip) {
  char tmpl[] = "/tmp/exstream_file_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/events.bin";
  std::vector<Event> events;
  Rng rng(9);
  for (Timestamp t = 0; t < 64; ++t) {
    events.emplace_back(0, t, std::vector<Value>{Value(rng.Gaussian(0, 1))});
  }
  ASSERT_TRUE(WriteEventsFile(path, events).ok());
  auto loaded = ReadEventsFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i].values[0].AsDouble(),
                     events[i].values[0].AsDouble());
  }
}

TEST(SerializationTest, MissingFileErrors) {
  EXPECT_TRUE(ReadEventsFile("/nonexistent/path.bin").status().IsIOError());
}

// One same-type event run with every value kind, the shape a chunk spill has.
std::vector<Event> ChunkLikeEvents() {
  std::vector<Event> events;
  for (Timestamp t = 0; t < 32; ++t) {
    events.emplace_back(
        3, t,
        std::vector<Value>{Value(t * 0.5), Value(int64_t{100 - t}),
                           Value(std::string(t % 2 ? "odd" : "even"))});
  }
  return events;
}

TEST(SerializationTest, EveryFormatVersionRoundTrips) {
  const std::vector<Event> events = ChunkLikeEvents();
  for (const SpillFormat format :
       {SpillFormat::kV1, SpillFormat::kV2, SpillFormat::kV3,
        SpillFormat::kV4}) {
    const std::string data = SerializeEvents(events, format);
    // Rows come back identical under every version...
    auto parsed = DeserializeEvents(data);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed->size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ((*parsed)[i].type, events[i].type);
      EXPECT_EQ((*parsed)[i].ts, events[i].ts);
      ASSERT_EQ((*parsed)[i].values.size(), 3u);
      EXPECT_DOUBLE_EQ((*parsed)[i].values[0].AsDouble(),
                       events[i].values[0].AsDouble());
      EXPECT_EQ((*parsed)[i].values[1].AsInt64(), events[i].values[1].AsInt64());
      EXPECT_EQ((*parsed)[i].values[2].AsString(), events[i].values[2].AsString());
    }
    // ...and every version also parses straight into columns.
    auto cols = DeserializeColumns(data);
    ASSERT_TRUE(cols.ok()) << cols.status().ToString();
    EXPECT_EQ(cols->rows(), events.size());
    EXPECT_EQ(cols->type(), 3u);
    ASSERT_EQ(cols->num_columns(), 3u);
    EXPECT_DOUBLE_EQ(cols->attr(0).nums[4], 2.0);
  }
}

TEST(SerializationTest, OldFormatFilesReadAsColumns) {
  char tmpl[] = "/tmp/exstream_file_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::vector<Event> events = ChunkLikeEvents();
  for (const SpillFormat format : {SpillFormat::kV1, SpillFormat::kV2,
                                   SpillFormat::kV3, SpillFormat::kV4}) {
    const std::string path =
        std::string(tmpl) + "/v" + std::to_string(static_cast<int>(format)) + ".bin";
    ASSERT_TRUE(WriteEventsFile(path, events, format).ok());
    auto cols = ReadColumnsFile(path);
    ASSERT_TRUE(cols.ok()) << cols.status().ToString();
    EXPECT_EQ(cols->rows(), events.size());
    std::vector<Event> rows;
    cols->MaterializeRows(0, cols->rows(), &rows);
    ASSERT_EQ(rows.size(), events.size());
    EXPECT_EQ(rows[7].values[2].AsString(), "odd");
  }
}

TEST(SerializationTest, V3CorruptedColumnIsPinpointed) {
  const std::string data = SerializeEvents(ChunkLikeEvents(), SpillFormat::kV3);
  // The buffer tail is the last column's payload (the string dictionary);
  // flipping a bit there must fail that column's CRC, not crash or misparse.
  std::string bad = data;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x40);
  const Status st = DeserializeEvents(bad).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("column"), std::string::npos) << st.ToString();
}

TEST(SerializationTest, MixedTypeBuffersFallBackToRows) {
  std::vector<Event> mixed;
  mixed.emplace_back(0, 1, std::vector<Value>{Value(1.0)});
  mixed.emplace_back(1, 2, std::vector<Value>{Value(int64_t{7})});
  // A v3/v4 request on a mixed-type buffer writes the row layout (columnar
  // chunks are single-type by construction); rows still round-trip.
  for (const SpillFormat format : {SpillFormat::kV3, SpillFormat::kV4}) {
    const std::string data = SerializeEvents(mixed, format);
    auto parsed = DeserializeEvents(data);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed->size(), 2u);
    EXPECT_EQ((*parsed)[1].type, 1u);
    // But folding mixed types into one chunk's columns is a structural error.
    EXPECT_TRUE(DeserializeColumns(data).status().IsCorruption());
  }
}

TEST(SerializationTest, V4CompressesBelowV3) {
  // A chunk-sized run with the value mix spills actually carry: slowly
  // drifting doubles, small ints, and a low-cardinality string column.
  std::vector<Event> events;
  Rng rng(17);
  double level = 40.0;
  for (Timestamp t = 0; t < 2048; ++t) {
    level += rng.Gaussian(0.0, 0.5);
    events.emplace_back(
        2, t,
        std::vector<Value>{Value(level), Value(int64_t{t % 16}),
                           Value(std::string(t % 3 ? "ok" : "slow"))});
  }
  const std::string v3 = SerializeEvents(events, SpillFormat::kV3);
  const std::string v4 = SerializeEvents(events, SpillFormat::kV4);
  EXPECT_LT(v4.size(), v3.size() / 2) << "v4=" << v4.size() << " v3=" << v3.size();
  auto parsed = DeserializeColumns(v4);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->rows(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed->ts()[i], events[i].ts);
    // Bitwise: the compressed double codec must be lossless.
    EXPECT_EQ(parsed->attr(0).nums[i], events[i].values[0].AsDouble());
  }
}

TEST(SerializationTest, V4CorruptedColumnIsPinpointed) {
  const std::string data = SerializeEvents(ChunkLikeEvents(), SpillFormat::kV4);
  // Flip one bit in the last column's compressed payload: the per-block CRC
  // must catch it and name the column, never crash or misdecode.
  std::string bad = data;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x40);
  const Status st = DeserializeEvents(bad).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("column"), std::string::npos) << st.ToString();
}

// ---- Storage tiers ---------------------------------------------------------

class TierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register(EventSchema("A", {{"x", ValueType::kDouble}})).ok());
  }

  Event MakeA(Timestamp ts, double x) { return Event(0, ts, {Value(x)}); }

  EventTypeRegistry registry_;
};

TEST_F(TierTest, BuildSelectAndWindowRange) {
  ChunkColumns cols(0, &registry_.schema(0));
  for (Timestamp t = 0; t < 16; ++t) {
    cols.AppendEvent(MakeA(t, static_cast<double>(t)));
  }
  const ChunkTiers tiers = BuildChunkTiers(cols, {4, 8});
  ASSERT_EQ(tiers.size(), 2u);
  EXPECT_EQ(tiers[0].window, 4);
  EXPECT_EQ(tiers[1].window, 8);
  // Rows 0..15 at window 4: ends 4, 8, 12, 16.
  ASSERT_EQ(tiers[0].windows(), 4u);
  EXPECT_EQ(tiers[0].ts.front(), 4);
  EXPECT_EQ(tiers[0].ts.back(), 16);
  ASSERT_EQ(tiers[0].attrs.size(), 1u);
  EXPECT_EQ(tiers[0].attrs[0].count[0], 4u);
  EXPECT_DOUBLE_EQ(tiers[0].attrs[0].sum[0], 0 + 1 + 2 + 3);
  EXPECT_DOUBLE_EQ(tiers[0].attrs[0].min[0], 0.0);
  EXPECT_DOUBLE_EQ(tiers[0].attrs[0].max[0], 3.0);
  // Tier selection: the coarsest tier whose window divides the resolution.
  EXPECT_EQ(SelectTier(tiers, 8), 1);
  EXPECT_EQ(SelectTier(tiers, 4), 0);
  EXPECT_EQ(SelectTier(tiers, 12), 0);  // 8 does not divide 12, 4 does
  EXPECT_EQ(SelectTier(tiers, 6), -1);
  EXPECT_EQ(SelectTier(tiers, 0), -1);
  // Window range: [5, 9] intersects windows ending at 8 and 12.
  const auto range = tiers[0].WindowRange({5, 9});
  EXPECT_EQ(range.first, 1u);
  EXPECT_EQ(range.second, 3u);
}

TEST_F(TierTest, SidecarRoundTripAndCorruptionDetected) {
  ChunkColumns cols(0, &registry_.schema(0));
  for (Timestamp t = 0; t < 64; ++t) {
    cols.AppendEvent(MakeA(t * 3, t * 0.25));
  }
  const ChunkTiers tiers = BuildChunkTiers(cols, {10});
  const std::string data = SerializeTiers(tiers, 0);
  auto parsed = DeserializeTiers(data, 0);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), tiers.size());
  EXPECT_EQ((*parsed)[0].ts, tiers[0].ts);
  EXPECT_EQ((*parsed)[0].attrs[0].count, tiers[0].attrs[0].count);
  EXPECT_EQ((*parsed)[0].attrs[0].sum, tiers[0].attrs[0].sum);
  // Wrong event type: the sidecar is rejected, not silently adopted.
  EXPECT_FALSE(DeserializeTiers(data, 9).ok());
  // Bit flip in the tier block: CRC failure, not a crash.
  std::string bad = data;
  bad[bad.size() - 2] = static_cast<char>(bad[bad.size() - 2] ^ 0x10);
  EXPECT_FALSE(DeserializeTiers(bad, 0).ok());
  // File round trip.
  char tmpl[] = "/tmp/exstream_tiers_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string path = TiersSidecarPath(std::string(tmpl) + "/c0.bin");
  ASSERT_TRUE(WriteTiersFile(path, tiers, 0).ok());
  auto loaded = ReadTiersFile(path, 0);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)[0].ts, tiers[0].ts);
}

TEST_F(TierTest, ScanColumnsServesTiersAtResolution) {
  ArchiveOptions options;
  options.chunk_capacity = 8;
  options.tier_windows = {4};
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 40; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, static_cast<double>(t))).ok());
  }
  // Exact scan: raw rows only, no tier segments.
  auto exact = archive.ScanColumns(0, {0, 39});
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->rows(), 40u);
  EXPECT_TRUE(exact->tier_segments.empty());
  // Resolution 4: sealed chunks answer from their 4 s tier; only the open
  // tail contributes raw rows.
  auto tiered = archive.ScanColumns(0, {0, 39}, nullptr, nullptr, 4);
  ASSERT_TRUE(tiered.ok());
  EXPECT_FALSE(tiered->tier_segments.empty());
  EXPECT_GT(archive.tier_segments_served(), 0u);
  size_t tier_rows = 0;
  double tier_sum = 0.0;
  for (const auto& seg : tiered->tier_segments) {
    for (size_t i = seg.begin; i < seg.end; ++i) {
      tier_rows += seg.tier->attrs[0].count[i];
      tier_sum += seg.tier->attrs[0].sum[i];
    }
  }
  size_t raw_rows = tiered->rows();
  double raw_sum = 0.0;
  for (const auto& seg : tiered->segments) {
    for (size_t i = seg.begin; i < seg.end; ++i) {
      raw_sum += seg.columns->attr(0).nums[i];
    }
  }
  // Tier aggregates plus the raw tail cover exactly the 40 appended rows.
  EXPECT_EQ(tier_rows + raw_rows, 40u);
  EXPECT_DOUBLE_EQ(tier_sum + raw_sum, 39.0 * 40.0 / 2.0);
  // Resolution 6 matches no tier: identical to the exact scan.
  auto mismatched = archive.ScanColumns(0, {0, 39}, nullptr, nullptr, 6);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_TRUE(mismatched->tier_segments.empty());
  EXPECT_EQ(mismatched->rows(), 40u);
}

TEST_F(TierTest, Tier0RetentionEvictsRawButKeepsTiers) {
  char tmpl[] = "/tmp/exstream_tier0_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  ArchiveOptions options;
  options.chunk_capacity = 8;
  options.spill_dir = std::string(tmpl);
  options.max_resident_chunks = 1;
  options.tier_windows = {4};
  options.tier0_retention_chunks = 1;
  EventArchive archive(&registry_, options);
  for (Timestamp t = 0; t < 80; ++t) {
    ASSERT_TRUE(archive.Append(MakeA(t, 1.0)).ok());
  }
  EXPECT_GT(archive.tier0_evictions(), 0u);

  // An exact scan refuses to silently substitute tier aggregates for the
  // evicted raw rows: it degrades, names the loss, and returns what is left.
  DegradationReport degradation;
  auto exact = archive.Scan(0, {0, 79}, &degradation);
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(exact->size(), 80u);
  EXPECT_TRUE(degradation.degraded());
  EXPECT_GT(degradation.resolution_degraded, 0u);
  EXPECT_GT(degradation.events_lost_estimate, 0u);
  EXPECT_NE(degradation.ToString().find("resolution-degraded"),
            std::string::npos);

  // A resolution-aligned scan is answered from the surviving tiers with no
  // degradation: every appended row is still accounted for.
  DegradationReport tiered_degradation;
  auto tiered =
      archive.ScanColumns(0, {0, 79}, &tiered_degradation, nullptr, 4);
  ASSERT_TRUE(tiered.ok());
  EXPECT_FALSE(tiered_degradation.degraded());
  size_t covered = tiered->rows();
  for (const auto& seg : tiered->tier_segments) {
    for (size_t i = seg.begin; i < seg.end; ++i) {
      covered += seg.tier->attrs[0].count[i];
    }
  }
  EXPECT_EQ(covered, 80u);
}

}  // namespace
}  // namespace exstream
