#include "detect/streaming_detector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/hadoop_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

StreamingDetectorOptions FastOptions() {
  StreamingDetectorOptions options;
  options.warmup_samples = 16;
  options.z_threshold = 4.0;
  options.cooldown_samples = 2;
  options.min_anomaly_samples = 2;
  return options;
}

// A noiseless periodic baseline then a large sustained spike: exactly one
// anomaly, localized to the spike, with the same-length preceding reference.
TEST(StreamingDetectorTest, DetectsSustainedSpike) {
  StreamingDetector detector("Q", FastOptions());
  Timestamp ts = 0;
  for (int i = 0; i < 100; ++i) detector.Observe("p", ts++, 10.0 + (i % 3));
  for (int i = 0; i < 20; ++i) detector.Observe("p", ts++, 200.0);
  for (int i = 0; i < 50; ++i) detector.Observe("p", ts++, 10.0 + (i % 3));

  auto ready = detector.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  const StreamAnomaly& a = ready[0];
  EXPECT_EQ(a.partition, "p");
  EXPECT_GE(a.peak_z, FastOptions().z_threshold);
  EXPECT_EQ(a.annotation.abnormal.range.lower, 100);
  EXPECT_EQ(a.annotation.abnormal.range.upper, 119);
  // Same-length span immediately before the excursion.
  EXPECT_EQ(a.annotation.reference.range.upper, 99);
  EXPECT_EQ(a.annotation.reference.range.lower, 100 - a.annotation.abnormal.range.Length());
  EXPECT_EQ(a.annotation.abnormal.query, "Q");
  EXPECT_EQ(detector.stats().anomalies_emitted, 1u);
}

// A series that is still elevated when the input ends never accumulates the
// cooldown run, so the excursion only surfaces through the end-of-stream
// finalize hook.
TEST(StreamingDetectorTest, FinalizeClosesExcursionStillOpenAtEndOfStream) {
  StreamingDetector detector("Q", FastOptions());
  Timestamp ts = 0;
  for (int i = 0; i < 100; ++i) detector.Observe("p", ts++, 10.0 + (i % 3));
  for (int i = 0; i < 20; ++i) detector.Observe("p", ts++, 200.0);
  // No return to baseline: the stream simply stops.

  EXPECT_TRUE(detector.TakeReady().empty());
  EXPECT_EQ(detector.FinalizeOpenExcursions(), 1u);
  auto ready = detector.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].annotation.abnormal.range.lower, 100);
  EXPECT_EQ(ready[0].annotation.abnormal.range.upper, 119);
  // Idempotent once closed: nothing is open anymore.
  EXPECT_EQ(detector.FinalizeOpenExcursions(), 0u);
  EXPECT_TRUE(detector.TakeReady().empty());
}

// Finalizing an excursion shorter than min_anomaly_samples still discards it
// (same emit-or-discard path as a cooldown close).
TEST(StreamingDetectorTest, FinalizeDiscardsShortOpenExcursion) {
  StreamingDetector detector("Q", FastOptions());
  Timestamp ts = 0;
  for (int i = 0; i < 100; ++i) detector.Observe("p", ts++, 10.0 + (i % 3));
  detector.Observe("p", ts++, 500.0);  // one abnormal sample, then EOF

  EXPECT_EQ(detector.FinalizeOpenExcursions(), 1u);
  EXPECT_TRUE(detector.TakeReady().empty());
  EXPECT_EQ(detector.stats().anomalies_dropped, 1u);
}

TEST(StreamingDetectorTest, SteadySeriesEmitsNothing) {
  StreamingDetector detector("Q", FastOptions());
  for (Timestamp t = 0; t < 500; ++t) {
    detector.Observe("p", t, 50.0 + std::sin(t * 0.1) * 2.0);
  }
  EXPECT_TRUE(detector.TakeReady().empty());
  EXPECT_EQ(detector.stats().anomalies_emitted, 0u);
}

TEST(StreamingDetectorTest, BaselineFrozenDuringExcursion) {
  // A long excursion must not teach the detector that the anomaly is normal:
  // the EWMA is frozen, so even 200 abnormal samples close from the original
  // baseline's point of view.
  StreamingDetector detector("Q", FastOptions());
  Timestamp ts = 0;
  for (int i = 0; i < 300; ++i) detector.Observe("p", ts++, 10.0 + (i % 3));
  for (int i = 0; i < 200; ++i) detector.Observe("p", ts++, 300.0);
  for (int i = 0; i < 10; ++i) detector.Observe("p", ts++, 10.0 + (i % 3));
  auto ready = detector.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].annotation.abnormal.range.Length() + 1, 200);
}

TEST(StreamingDetectorTest, ShortBlipBelowMinSamplesDropped) {
  StreamingDetectorOptions options = FastOptions();
  options.min_anomaly_samples = 3;
  StreamingDetector detector("Q", options);
  Timestamp ts = 0;
  for (int i = 0; i < 100; ++i) detector.Observe("p", ts++, 10.0 + (i % 3));
  detector.Observe("p", ts++, 500.0);  // one-sample blip
  for (int i = 0; i < 50; ++i) detector.Observe("p", ts++, 10.0 + (i % 3));
  EXPECT_TRUE(detector.TakeReady().empty());
  EXPECT_EQ(detector.stats().anomalies_dropped, 1u);
  EXPECT_EQ(detector.stats().excursions_opened, 1u);
}

TEST(StreamingDetectorTest, PartitionsTrackedIndependently) {
  StreamingDetector detector("Q", FastOptions());
  Timestamp ts = 0;
  for (int i = 0; i < 100; ++i) {
    detector.Observe("calm", ts, 10.0 + (i % 3));
    detector.Observe("spiky", ts, i < 60 ? 10.0 + (i % 3) : 400.0);
    ++ts;
  }
  for (int i = 0; i < 20; ++i) {
    detector.Observe("calm", ts, 10.0 + (i % 3));
    detector.Observe("spiky", ts, 10.0 + (i % 3));
    ++ts;
  }
  auto ready = detector.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].partition, "spiky");
  EXPECT_EQ(detector.stats().partitions_tracked, 2u);
}

// End-to-end: the detector rides the engine's match callback inside a full
// system and the auto-explain worker turns its anomaly into an explanation.
TEST(StreamingDetectorSystemTest, AutoExplainProducesReport) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  constexpr char kQ[] =
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.explain.enable_validation = false;  // no partition index pre-built
  StreamingDetectorOptions detector_options;
  detector_options.warmup_samples = 16;
  detector_options.z_threshold = 3.0;
  detector_options.min_anomaly_samples = 2;
  detector_options.cooldown_samples = 2;
  config.serving.detector = detector_options;
  config.serving.auto_explain = true;
  config.serving.incremental_features = true;
  config.serving.explain_cache_capacity = 8;
  XStreamSystem system(&registry, config);
  auto qid = system.AddQuery(kQ, "Q1");
  ASSERT_TRUE(qid.ok());
  ASSERT_NE(system.detector(), nullptr);

  HadoopSimConfig sim_config;
  sim_config.num_nodes = 3;
  sim_config.seed = 77;
  HadoopClusterSim sim(sim_config, &registry);
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 60;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  ASSERT_TRUE(sim.Run(&system).ok());
  system.Flush();
  system.DrainAutoExplains();

  EXPECT_GT(system.detector()->stats().samples, 0u);
  const auto autos = system.TakeAutoExplanations();
  if (autos.empty()) {
    // The monitored aggregate may genuinely stay inside 3 sigma for this
    // seed; the wiring is still proven if the detector sampled the series.
    SUCCEED() << "no excursion crossed the threshold for this stream";
    return;
  }
  for (const auto& ae : autos) {
    EXPECT_EQ(ae.anomaly.annotation.abnormal.query, "Q1");
    if (ae.report->ok()) {
      EXPECT_FALSE((**ae.report).ranked.empty());
    }
  }
  EXPECT_EQ(system.auto_explains_completed(), autos.size());
}

}  // namespace
}  // namespace exstream
