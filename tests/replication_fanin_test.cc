// Multi-child fan-in replication tests: one ReplicationReceiver accepting
// several concurrent child sessions across several tenants. The acceptance
// matrix runs 3 children / 2 tenants with every repl-connect/send/recv fault
// mode plus a kill+restart of every child, and requires each tenant's
// parent-side state (match tables, archive, Explain output) to stay
// bit-identical to that tenant's single-node run — sibling failures must be
// invisible. Companion tests cover the per-(tenant, child) ledger kill
// points (sync-then-ack), per-tenant quotas and queue shares (shed counts
// disclosed only through the owning tenant), handshake edge cases (duplicate
// HELLO, tenant switch, per-child resume across a parent restart), prompt
// session reap + immediate reconnect after a kill -9'd child, and v1 gap
// state file back-compat.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "archive/serialization.h"
#include "common/bytes.h"
#include "common/fault_injection.h"
#include "io/file_util.h"
#include "net/frame.h"
#include "net/replication_receiver.h"
#include "net/socket.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"
#include "xstream/tenant_hub.h"

namespace exstream {
namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

constexpr size_t kBatch = 64;

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/exstream_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

struct Workload {
  std::unique_ptr<EventTypeRegistry> registry;
  std::vector<Event> events;
};

Workload MakeWorkload() {
  Workload w;
  w.registry = std::make_unique<EventTypeRegistry>();
  EXPECT_TRUE(HadoopClusterSim::RegisterEventTypes(w.registry.get()).ok());
  HadoopSimConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 77;
  HadoopClusterSim sim(cfg, w.registry.get());
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 60;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  VectorSink sink;
  EXPECT_TRUE(sim.Run(&sink).ok());
  w.events = sink.events();
  return w;
}

XStreamConfig BaseConfig() {
  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  return config;
}

ReplicationSenderOptions SenderOptions(uint16_t port, const std::string& tenant,
                                       const std::string& node) {
  ReplicationSenderOptions r;
  r.port = port;
  r.tenant = tenant;
  r.node_id = node;
  r.chunk_events = 64;
  r.max_pending_chunks = 512;
  r.connect_timeout_ms = 500;
  r.io_timeout_ms = 500;
  r.idle_poll_ms = 5;
  r.reconnect.base_backoff_ms = 5.0;
  r.reconnect.max_backoff_ms = 100.0;
  return r;
}

std::unique_ptr<XStreamSystem> MakeSystem(
    const Workload& w, QueryId* qid, const std::string& wal_dir = "",
    std::optional<ReplicationSenderOptions> replication = std::nullopt) {
  XStreamConfig cfg = BaseConfig();
  if (!wal_dir.empty()) {
    cfg.durability.wal_dir = wal_dir;
    cfg.durability.fsync = WalFsyncPolicy::kNone;
    cfg.durability.wal_segment_bytes = 64u << 10;
  }
  cfg.replication = std::move(replication);
  auto sys = std::make_unique<XStreamSystem>(w.registry.get(), cfg);
  const auto q = sys->AddQuery(kQ1, "Q1");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  *qid = q.ok() ? *q : 0;
  return sys;
}

ReplicationReceiverOptions ReceiverOptions(uint16_t port,
                                           const std::string& state_path = "") {
  ReplicationReceiverOptions r;
  r.port = port;
  r.io_timeout_ms = 100;  // bounds Stop() latency in tests
  if (!state_path.empty()) r.state_path = state_path;
  return r;
}

void Feed(EventSink* sink, const std::vector<Event>& events, size_t begin,
          size_t end) {
  for (size_t i = begin; i < end;) {
    const size_t n = std::min(kBatch, end - i);
    sink->OnEventBatch(EventBatch(events.begin() + i, events.begin() + i + n));
    i += n;
  }
}

std::string Fingerprint(XStreamSystem& sys, QueryId qid) {
  std::string out;
  const MatchTable& mt = sys.engine().match_table(qid);
  for (const std::string& p : mt.Partitions()) {
    out += "partition " + p + (mt.IsComplete(p) ? " complete\n" : " open\n");
    for (const MatchRow& row : mt.Rows(p)) {
      out += std::to_string(row.ts);
      for (const Value& v : row.values) {
        out += '|';
        out += v.ToString();
      }
      out += '\n';
    }
  }
  out += "events_processed=" +
         std::to_string(sys.engine().events_processed()) + '\n';
  const TimeInterval all{std::numeric_limits<Timestamp>::min(),
                         std::numeric_limits<Timestamp>::max()};
  const auto scans = sys.archive().ScanAll(all);
  EXPECT_TRUE(scans.ok()) << scans.status().ToString();
  if (scans.ok()) {
    for (const auto& ts : *scans) {
      out += "type " + std::to_string(ts.type) + '\n';
      for (const Event& e : ts.events) {
        out += std::to_string(e.ts);
        for (const Value& v : e.values) {
          out += '|';
          out += v.ToString();
        }
        out += '\n';
      }
    }
  }
  return out;
}

Result<ExplanationReport> RunExplain(XStreamSystem& sys, QueryId qid) {
  EXSTREAM_RETURN_NOT_OK(sys.IndexPartitions(qid, {{"program", "p"}}));
  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q1", {60, 300}, "job-x"};
  annotation.reference = {"Q1", {360, 600}, "job-x"};
  return sys.Explain(annotation, qid, "sum_dataSize");
}

struct SingleNodeTruth {
  std::string fingerprint;
  std::vector<std::string> features;
};

// --- Frame-building helpers for SessionDriver-based tests ------------------

std::string HelloBytes(const std::string& tenant, const std::string& node,
                       uint64_t floor_seq = 0) {
  HelloFrame hello;
  hello.tenant = tenant;
  hello.node_id = node;
  hello.floor_seq = floor_seq;
  return EncodeFrame(FrameType::kHello, hello.Encode());
}

std::string ChunkBytes(uint64_t chunk_id, uint64_t first_seq,
                       const std::vector<Event>& events) {
  ChunkFrame f;
  f.chunk_id = chunk_id;
  f.first_seq = first_seq;
  f.event_count = static_cast<uint32_t>(events.size());
  f.events = SerializeEvents(events);
  return EncodeFrame(FrameType::kChunk, f.Encode());
}

std::vector<Frame> ParseFrames(std::string_view bytes) {
  FrameDecoder d;
  d.Feed(bytes);
  std::vector<Frame> out;
  for (;;) {
    auto f = d.Next();
    EXPECT_TRUE(f.ok()) << f.status().ToString();
    if (!f.ok() || !f->has_value()) break;
    out.push_back(std::move(**f));
  }
  return out;
}

// HELLOACK from the driver's response buffer (clears the buffer).
HelloAckFrame TakeHelloAck(ReplicationReceiver::SessionDriver& driver) {
  HelloAckFrame ack;
  bool found = false;
  for (const Frame& f : ParseFrames(driver.out())) {
    if (f.type == FrameType::kHelloAck) {
      auto decoded = HelloAckFrame::Decode(f.payload);
      EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
      if (decoded.ok()) {
        ack = *decoded;
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "no HELLOACK in the driver's output";
  driver.ClearOut();
  return ack;
}

// Last ACK from the driver's response buffer (clears the buffer).
AckFrame TakeLastAck(ReplicationReceiver::SessionDriver& driver) {
  AckFrame ack;
  bool found = false;
  for (const Frame& f : ParseFrames(driver.out())) {
    if (f.type == FrameType::kAck) {
      auto decoded = AckFrame::Decode(f.payload);
      EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
      if (decoded.ok()) {
        ack = *decoded;
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "no ACK in the driver's output";
  driver.ClearOut();
  return ack;
}

// Drives `events[begin, end)` into an accepted session as 64-event chunks
// (seq == index within `events`), asserting each frame ACKs.
void DriveChunks(ReplicationReceiver::SessionDriver& driver,
                 const std::vector<Event>& events, size_t begin, size_t end) {
  for (size_t i = begin; i < end;) {
    const size_t n = std::min(kBatch, end - i);
    const std::vector<Event> slice(events.begin() + i, events.begin() + i + n);
    const Status fed = driver.Feed(ChunkBytes(i / kBatch + 1, i, slice));
    ASSERT_TRUE(fed.ok()) << fed.ToString();
    i += n;
  }
}

// --- The fan-in acceptance matrix ------------------------------------------

struct LinkFaultCase {
  const char* name;
  const char* site;
  FaultOp op;
  FaultMode mode;
  int max_hits;
  int skip;
};

// One child of the matrix: its own system + WAL + sender identity, plus the
// stream slice it owns and how far it has fed.
struct MatrixChild {
  std::string tenant;
  std::string node;
  std::string wal_dir;
  const std::vector<Event>* stream = nullptr;
  std::unique_ptr<XStreamSystem> sys;
  QueryId qid = 0;
  size_t fed = 0;
};

// Segment boundary for phase `phase` of `phases`, kBatch-aligned except the
// final phase (which takes the remainder).
size_t SegEnd(size_t n, int phase, int phases) {
  if (phase + 1 >= phases) return n;
  return std::min(n, (((n * static_cast<size_t>(phase + 1)) /
                       static_cast<size_t>(phases)) /
                      kBatch) *
                         kBatch);
}

TEST(ReplicationFanInTest, MatrixKillsRestartsFaultsPreserveTenantIsolation) {
  const Workload w = MakeWorkload();

  // Tenant beta's stream splits by event type across two children: b1 owns
  // the pattern types, b2 the metric types. Each type comes from exactly one
  // child, so the tenant's archive and match state depend only on per-child
  // order — which the per-phase drains below make deterministic.
  std::vector<EventTypeId> pattern_types;
  for (const char* name : {"JobStart", "DataIO", "JobEnd"}) {
    auto id = w.registry->IdOf(name);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    pattern_types.push_back(*id);
  }
  auto is_pattern = [&](const Event& e) {
    return std::find(pattern_types.begin(), pattern_types.end(), e.type) !=
           pattern_types.end();
  };
  std::vector<Event> b1_stream, b2_stream;
  for (const Event& e : w.events) {
    (is_pattern(e) ? b1_stream : b2_stream).push_back(e);
  }
  ASSERT_FALSE(b1_stream.empty());
  ASSERT_FALSE(b2_stream.empty());

  constexpr int kPhases = 12;

  // Single-node truths. Tenant alpha's child carries the whole stream;
  // tenant beta's baseline is fed the same per-phase (b1 segment, then b2
  // segment) interleave the matrix drains enforce at the parent.
  SingleNodeTruth truth_a;
  {
    QueryId qid = 0;
    auto baseline = MakeSystem(w, &qid);
    Feed(baseline.get(), w.events, 0, w.events.size());
    baseline->Flush();
    truth_a.fingerprint = Fingerprint(*baseline, qid);
    auto report = RunExplain(*baseline, qid);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    truth_a.features = report->SelectedFeatureNames();
    ASSERT_FALSE(truth_a.features.empty());
  }
  SingleNodeTruth truth_b;
  {
    QueryId qid = 0;
    auto baseline = MakeSystem(w, &qid);
    size_t fed1 = 0, fed2 = 0;
    for (int phase = 0; phase < kPhases; ++phase) {
      const size_t e1 = SegEnd(b1_stream.size(), phase, kPhases);
      Feed(baseline.get(), b1_stream, fed1, e1);
      fed1 = e1;
      const size_t e2 = SegEnd(b2_stream.size(), phase, kPhases);
      Feed(baseline.get(), b2_stream, fed2, e2);
      fed2 = e2;
    }
    baseline->Flush();
    truth_b.fingerprint = Fingerprint(*baseline, qid);
    auto report = RunExplain(*baseline, qid);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    truth_b.features = report->SelectedFeatureNames();
    ASSERT_FALSE(truth_b.features.empty());
  }

  // Parent: one system per tenant behind a hub, one receiver, one ledger.
  const std::string state_path = MakeTempDir("fanin_state") + "/fanin.state";
  QueryId qid_a = 0, qid_b = 0;
  auto sys_a = MakeSystem(w, &qid_a);
  auto sys_b = MakeSystem(w, &qid_b);
  TenantHub hub;
  ASSERT_TRUE(hub.AddTenant("alpha", sys_a.get()).ok());
  ASSERT_TRUE(hub.AddTenant("beta", sys_b.get()).ok());
  auto receiver = std::make_unique<ReplicationReceiver>(
      &hub, ReceiverOptions(0, state_path));
  ASSERT_TRUE(receiver->Start().ok());
  const uint16_t port = receiver->port();

  auto make_child = [&](MatrixChild& c) {
    c.sys = MakeSystem(w, &c.qid, c.wal_dir, SenderOptions(port, c.tenant, c.node));
  };
  MatrixChild a1{"alpha", "a1", MakeTempDir("fanin_a1"), &w.events, nullptr};
  MatrixChild b1{"beta", "b1", MakeTempDir("fanin_b1"), &b1_stream, nullptr};
  MatrixChild b2{"beta", "b2", MakeTempDir("fanin_b2"), &b2_stream, nullptr};
  make_child(a1);
  make_child(b1);
  make_child(b2);

  // Kill -9 + restart: destroy the child, rebuild it from its WAL, let the
  // sender resume against the receiver's per-(tenant, child) watermark.
  auto restart_child = [&](MatrixChild& c) {
    SCOPED_TRACE("restart " + c.tenant + "/" + c.node);
    c.sys.reset();
    make_child(c);
    const auto rep = c.sys->Recover(std::string());
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(rep->wal.next_seq, c.fed);
  };

  auto feed_segment = [&](MatrixChild& c, int phase) {
    const size_t end = SegEnd(c.stream->size(), phase, kPhases);
    Feed(c.sys.get(), *c.stream, c.fed, end);
    c.fed = end;
    c.sys->Flush();
  };
  auto drain = [&](MatrixChild& c) {
    ASSERT_TRUE(c.sys->replication()->WaitForDrain(60000))
        << c.tenant << "/" << c.node << " did not converge";
  };

  // Every repl-connect/send/recv fault mode. Connect cases sit right after a
  // kill so a reconnect is guaranteed to trip them.
  const LinkFaultCase kCases[kPhases] = {
      {"send-fail", "repl-send", FaultOp::kSend, FaultMode::kFailOpen, 3, 2},
      {"send-reset", "repl-send", FaultOp::kSend, FaultMode::kReset, 3, 5},
      {"send-truncate", "repl-send", FaultOp::kSend, FaultMode::kTruncate, 3, 1},
      {"connect-fail", "repl-connect", FaultOp::kConnect, FaultMode::kFailOpen,
       2, 0},
      {"send-corrupt", "repl-send", FaultOp::kSend, FaultMode::kCorruptBytes, 3,
       4},
      {"send-delay", "repl-send", FaultOp::kSend, FaultMode::kDelay, 50, 0},
      {"connect-reset", "repl-connect", FaultOp::kConnect, FaultMode::kReset, 2,
       0},
      {"recv-fail", "repl-recv", FaultOp::kRecv, FaultMode::kFailOpen, 3, 2},
      {"recv-reset", "repl-recv", FaultOp::kRecv, FaultMode::kReset, 3, 5},
      {"recv-truncate", "repl-recv", FaultOp::kRecv, FaultMode::kTruncate, 3, 1},
      {"recv-corrupt", "repl-recv", FaultOp::kRecv, FaultMode::kCorruptBytes, 3,
       4},
      {nullptr, nullptr, FaultOp::kSend, FaultMode::kFailOpen, 0, 0},
  };

  for (int phase = 0; phase < kPhases; ++phase) {
    SCOPED_TRACE("phase " + std::to_string(phase));
    const LinkFaultCase& c = kCases[phase];
    if (c.name != nullptr) {
      SCOPED_TRACE(c.name);
      FaultPlan plan;
      plan.mode = c.mode;
      plan.op = c.op;
      plan.site = c.site;
      plan.skip = c.skip;
      plan.max_hits = c.max_hits;
      plan.delay_ms = 2;
      FaultInjector::Global().Arm(plan);
    }
    // Kills land at phase start, after arming, so the phase-3/-6 connect
    // faults hit the restarted child's reconnect.
    if (phase == 3) restart_child(a1);
    if (phase == 6) restart_child(b1);
    if (phase == 9) restart_child(b2);
    if (HasFatalFailure()) return;

    // Tenant alpha streams concurrently throughout; tenant beta's two
    // children are drained in b1-then-b2 order so beta's fresh-apply order
    // matches its baseline exactly.
    feed_segment(a1, phase);
    feed_segment(b1, phase);
    drain(b1);
    feed_segment(b2, phase);
    drain(b2);
    drain(a1);
    if (HasFatalFailure()) return;

    if (c.name != nullptr) {
      const size_t hits = FaultInjector::Global().hits();
      FaultInjector::Global().Disarm();
      EXPECT_GT(hits, 0u) << c.name << " never fired; the phase tested nothing";
    }
  }

  EXPECT_EQ(a1.fed, w.events.size());
  EXPECT_EQ(b1.fed, b1_stream.size());
  EXPECT_EQ(b2.fed, b2_stream.size());

  receiver->Stop();
  sys_a->Flush();
  sys_b->Flush();

  // Link faults and kills shed nothing: every event either applied or is a
  // retransmit the per-child watermark deduped.
  const auto rstats = receiver->stats();
  EXPECT_EQ(rstats.gap_events, 0u);
  EXPECT_EQ(rstats.quota_shed_events, 0u);
  // No frame_errors assertion: the per-phase hits>0 checks above prove every
  // fault fired, but a repl-send corruption can land on either direction of
  // the link — when it hits a parent->child ACK the CHILD's decoder poisons
  // and reconnects, and the receiver never sees a bad frame.
  EXPECT_EQ(receiver->watermark("alpha", "a1"), w.events.size());
  EXPECT_EQ(receiver->watermark("beta", "b1"), b1_stream.size());
  EXPECT_EQ(receiver->watermark("beta", "b2"), b2_stream.size());
  EXPECT_EQ(receiver->sessions().size(), 3u);

  // Per-tenant bit-identity, each against its own single-node truth.
  EXPECT_EQ(Fingerprint(*sys_a, qid_a), truth_a.fingerprint);
  EXPECT_EQ(Fingerprint(*sys_b, qid_b), truth_b.fingerprint);
  auto report_a = RunExplain(*sys_a, qid_a);
  ASSERT_TRUE(report_a.ok()) << report_a.status().ToString();
  EXPECT_EQ(report_a->SelectedFeatureNames(), truth_a.features);
  EXPECT_FALSE(report_a->degradation.degraded());
  auto report_b = RunExplain(*sys_b, qid_b);
  ASSERT_TRUE(report_b.ok()) << report_b.status().ToString();
  EXPECT_EQ(report_b->SelectedFeatureNames(), truth_b.features);
  EXPECT_FALSE(report_b->degradation.degraded());
  EXPECT_EQ(hub.tenant_stats("alpha").quota_shed_events, 0u);
  EXPECT_EQ(hub.tenant_stats("beta").quota_shed_events, 0u);

  // Disclosure isolation: a fresh receiver instance over the same ledger
  // file resumes b2 at its persisted watermark; a seq jump from b2 is a gap
  // disclosed in beta's DegradationReport — and only beta's.
  receiver.reset();
  ReplicationReceiver receiver2(&hub, ReceiverOptions(0, state_path));
  ReplicationReceiver::SessionDriver driver(&receiver2);
  ASSERT_TRUE(driver.Feed(HelloBytes("beta", "b2")).ok());
  const HelloAckFrame resume = TakeHelloAck(driver);
  ASSERT_TRUE(resume.accepted) << resume.message;
  EXPECT_EQ(resume.resume_seq, b2_stream.size())
      << "the per-(tenant, child) watermark did not survive the restart";

  const uint64_t kGap = 96;
  std::vector<Event> shifted(b2_stream.begin(), b2_stream.begin() + kBatch);
  for (Event& e : shifted) e.ts += 1000000;
  ASSERT_TRUE(
      driver.Feed(ChunkBytes(9001, b2_stream.size() + kGap, shifted)).ok());
  const AckFrame ack = TakeLastAck(driver);
  EXPECT_EQ(ack.ack_seq, b2_stream.size() + kGap + kBatch);
  EXPECT_EQ(receiver2.stats().gap_events, kGap);

  // The gap lands in beta's report; alpha's state and report are untouched.
  EXPECT_EQ(sys_b->shed_events(), kGap);
  EXPECT_EQ(sys_a->shed_events(), 0u);
  auto degraded_b = RunExplain(*sys_b, qid_b);
  ASSERT_TRUE(degraded_b.ok()) << degraded_b.status().ToString();
  EXPECT_TRUE(degraded_b->degradation.degraded());
  EXPECT_EQ(degraded_b->degradation.events_shed, kGap);
  EXPECT_EQ(Fingerprint(*sys_a, qid_a), truth_a.fingerprint);
  auto clean_a = RunExplain(*sys_a, qid_a);
  ASSERT_TRUE(clean_a.ok()) << clean_a.status().ToString();
  EXPECT_FALSE(clean_a->degradation.degraded());
  EXPECT_EQ(receiver2.watermark("alpha", "a1"), w.events.size());
}

// --- Quotas ----------------------------------------------------------------

// Token-bucket quota: with a deterministic clock, an over-quota frame is shed
// at the parent, still ACKed (the watermark advances past it), and disclosed
// through the owning tenant's stats and DegradationReport only.
TEST(ReplicationFanInTest, TokenBucketQuotaShedsAndDisclosesToOwnerOnly) {
  const Workload w = MakeWorkload();
  const size_t n = w.events.size();

  int64_t now_ms = 0;
  TenantHub hub([&now_ms] { return now_ms; });
  QueryId qid_a = 0, qid_b = 0;
  auto sys_a = MakeSystem(w, &qid_a);
  auto sys_b = MakeSystem(w, &qid_b);
  ASSERT_TRUE(hub.AddTenant("alpha", sys_a.get()).ok());
  ASSERT_TRUE(hub.AddTenant("beta", sys_b.get()).ok());
  ReplicationReceiver receiver(&hub, ReceiverOptions(0));

  ReplicationReceiver::SessionDriver beta(&receiver);
  ASSERT_TRUE(beta.Feed(HelloBytes("beta", "b1")).ok());
  ASSERT_TRUE(TakeHelloAck(beta).accepted);
  DriveChunks(beta, w.events, 0, n);
  if (HasFatalFailure()) return;
  beta.ClearOut();

  ReplicationReceiver::SessionDriver alpha(&receiver);
  ASSERT_TRUE(alpha.Feed(HelloBytes("alpha", "a1")).ok());
  ASSERT_TRUE(TakeHelloAck(alpha).accepted);
  DriveChunks(alpha, w.events, 0, n);
  if (HasFatalFailure()) return;
  alpha.ClearOut();

  // Starve beta: 1 byte/sec, 1-byte bucket. The first frame is admitted (a
  // frame larger than the whole bucket passes when the bucket is full — it
  // could never pass otherwise), draining the bucket; the second is shed.
  TenantQuota quota;
  quota.bytes_per_sec = 1;
  quota.burst_bytes = 1;
  ASSERT_TRUE(hub.SetQuota("beta", quota).ok());

  std::vector<Event> burst(w.events.begin(), w.events.begin() + 2 * kBatch);
  for (Event& e : burst) e.ts += 1000000;
  const std::vector<Event> first(burst.begin(), burst.begin() + kBatch);
  const std::vector<Event> second(burst.begin() + kBatch, burst.end());

  ASSERT_TRUE(beta.Feed(ChunkBytes(101, n, first)).ok());
  EXPECT_EQ(TakeLastAck(beta).ack_seq, n + kBatch);
  EXPECT_EQ(hub.tenant_stats("beta").quota_shed_events, 0u);

  ASSERT_TRUE(beta.Feed(ChunkBytes(102, n + kBatch, second)).ok());
  EXPECT_EQ(TakeLastAck(beta).ack_seq, n + 2 * kBatch)
      << "a quota-shed frame must still advance the watermark and ACK";
  EXPECT_EQ(hub.tenant_stats("beta").quota_shed_events, kBatch);
  EXPECT_EQ(hub.tenant_stats("beta").quota_shed_frames, 1u);
  EXPECT_EQ(receiver.stats().quota_shed_events, kBatch);
  EXPECT_EQ(sys_b->engine().events_processed(), n + kBatch);
  EXPECT_EQ(sys_b->shed_events(), kBatch);

  // Refill restores admission.
  now_ms += 1000;
  const std::vector<Event> third = [&] {
    std::vector<Event> v(w.events.begin(), w.events.begin() + kBatch);
    for (Event& e : v) e.ts += 2000000;
    return v;
  }();
  ASSERT_TRUE(beta.Feed(ChunkBytes(103, n + 2 * kBatch, third)).ok());
  EXPECT_EQ(TakeLastAck(beta).ack_seq, n + 3 * kBatch);
  EXPECT_EQ(sys_b->engine().events_processed(), n + 2 * kBatch);
  EXPECT_EQ(hub.tenant_stats("beta").quota_shed_events, kBatch);

  // Owner-only disclosure: beta's report carries the shed; alpha's is clean.
  auto report_b = RunExplain(*sys_b, qid_b);
  ASSERT_TRUE(report_b.ok()) << report_b.status().ToString();
  EXPECT_TRUE(report_b->degradation.degraded());
  EXPECT_EQ(report_b->degradation.events_shed, kBatch);
  auto report_a = RunExplain(*sys_a, qid_a);
  ASSERT_TRUE(report_a.ok()) << report_a.status().ToString();
  EXPECT_FALSE(report_a->degradation.degraded());
  EXPECT_EQ(sys_a->shed_events(), 0u);
  EXPECT_EQ(hub.tenant_stats("alpha").quota_shed_events, 0u);
  EXPECT_EQ(hub.tenant_stats("alpha").queue_shed_events, 0u);
}

// Queue-share admission: while a sibling session of the same tenant holds
// the tenant's whole queue share, a new frame is shed (disclosed to that
// tenant); once the share frees up, frames apply again.
TEST(ReplicationFanInTest, QueueShareExhaustionShedsWithDisclosure) {
  const Workload w = MakeWorkload();

  TenantHub hub;
  QueryId qid_a = 0, qid_b = 0;
  auto sys_a = MakeSystem(w, &qid_a);
  auto sys_b = MakeSystem(w, &qid_b);
  TenantQuota quota;
  quota.queue_share_bytes = 1;  // any in-flight sibling exhausts the share
  ASSERT_TRUE(hub.AddTenant("alpha", sys_a.get()).ok());
  ASSERT_TRUE(hub.AddTenant("beta", sys_b.get(), quota).ok());
  ReplicationReceiver receiver(&hub, ReceiverOptions(0));

  ReplicationReceiver::SessionDriver beta(&receiver);
  ASSERT_TRUE(beta.Feed(HelloBytes("beta", "b1")).ok());
  ASSERT_TRUE(TakeHelloAck(beta).accepted);

  // With nothing in flight the share never blocks (no self-starvation).
  const std::vector<Event> first(w.events.begin(), w.events.begin() + kBatch);
  ASSERT_TRUE(beta.Feed(ChunkBytes(1, 0, first)).ok());
  EXPECT_EQ(TakeLastAck(beta).ack_seq, kBatch);
  EXPECT_EQ(hub.tenant_stats("beta").queue_shed_events, 0u);

  // A sibling session parks bytes in beta's queue; the next frame overflows
  // the share and is shed — ACKed, watermark advanced, disclosed to beta.
  ASSERT_TRUE(hub.TryEnterQueue("beta", 4096));
  const std::vector<Event> second(w.events.begin() + kBatch,
                                  w.events.begin() + 2 * kBatch);
  ASSERT_TRUE(beta.Feed(ChunkBytes(2, kBatch, second)).ok());
  EXPECT_EQ(TakeLastAck(beta).ack_seq, 2 * kBatch);
  EXPECT_EQ(hub.tenant_stats("beta").queue_shed_events, kBatch);
  EXPECT_EQ(hub.tenant_stats("beta").queue_shed_frames, 1u);
  EXPECT_EQ(sys_b->shed_events(), kBatch);
  EXPECT_EQ(sys_b->engine().events_processed(), kBatch);
  hub.LeaveQueue("beta", 4096);

  // Share released: the stream continues, and alpha never saw any of it.
  const std::vector<Event> third(w.events.begin() + 2 * kBatch,
                                 w.events.begin() + 3 * kBatch);
  ASSERT_TRUE(beta.Feed(ChunkBytes(3, 2 * kBatch, third)).ok());
  EXPECT_EQ(TakeLastAck(beta).ack_seq, 3 * kBatch);
  EXPECT_EQ(sys_b->engine().events_processed(), 2 * kBatch);
  EXPECT_EQ(sys_a->shed_events(), 0u);
  EXPECT_EQ(sys_a->engine().events_processed(), 0u);
  EXPECT_EQ(hub.tenant_stats("alpha").queue_shed_events, 0u);
}

// --- Sync-then-ack kill points ---------------------------------------------

// Shared body for the two ledger kill-point tests: apply `clean_chunks`
// chunks cleanly, then fail the `skip`-th ledger file write of the next
// frame, crash the parent at that exact point, recover, and require the
// HELLOACK resume seq to equal `expected_resume` — then finish the stream
// and demand bit-identity with the single-node truth.
void RunLedgerKillPoint(int skip, bool expect_pending_landed) {
  const Workload w = MakeWorkload();
  const size_t n = w.events.size();
  const size_t kCleanChunks = 4;
  const size_t clean = kCleanChunks * kBatch;
  ASSERT_GT(n, clean + kBatch);

  SingleNodeTruth truth;
  {
    QueryId qid = 0;
    auto baseline = MakeSystem(w, &qid);
    Feed(baseline.get(), w.events, 0, n);
    baseline->Flush();
    truth.fingerprint = Fingerprint(*baseline, qid);
    auto report = RunExplain(*baseline, qid);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    truth.features = report->SelectedFeatureNames();
  }

  const std::string parent_wal = MakeTempDir("killpoint_wal");
  const std::string state_path = MakeTempDir("killpoint_state") + "/kp.state";

  {
    QueryId qid = 0;
    auto parent = MakeSystem(w, &qid, parent_wal);
    ReplicationReceiver receiver(parent.get(), ReceiverOptions(0, state_path));
    ReplicationReceiver::SessionDriver child(&receiver);
    ASSERT_TRUE(child.Feed(HelloBytes("default", "c1")).ok());
    const HelloAckFrame hello = TakeHelloAck(child);
    ASSERT_TRUE(hello.accepted) << hello.message;
    EXPECT_EQ(hello.resume_seq, 0u);
    DriveChunks(child, w.events, 0, clean);
    if (::testing::Test::HasFatalFailure()) return;
    child.ClearOut();

    // An applied frame persists the ledger exactly twice — the pre-apply
    // pending marker, then the post-WAL-sync commit — so skip=0 crashes
    // between ACK N and apply N+1, and skip=1 crashes after the WAL absorbed
    // frame N+1 but before the ledger could say so.
    FaultPlan plan;
    plan.mode = FaultMode::kFailOpen;
    plan.op = FaultOp::kWrite;
    plan.site = "file-write";
    plan.path_substring = "kp.state";
    plan.skip = skip;
    plan.max_hits = 1;
    FaultInjector::Global().Arm(plan);
    const std::vector<Event> next(w.events.begin() + clean,
                                  w.events.begin() + clean + kBatch);
    const Status fed = child.Feed(ChunkBytes(99, clean, next));
    const size_t hits = FaultInjector::Global().hits();
    FaultInjector::Global().Disarm();
    EXPECT_FALSE(fed.ok()) << "the injected ledger write failure was ignored";
    EXPECT_TRUE(child.ended());
    ASSERT_EQ(hits, 1u);
    // Parent crash at the kill point: driver, receiver, and system die; only
    // the WAL and the ledger file survive.
  }

  QueryId qid = 0;
  auto parent = MakeSystem(w, &qid, parent_wal);
  const auto rep = parent->Recover(std::string());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  const uint64_t expected_resume =
      expect_pending_landed ? clean + kBatch : clean;
  EXPECT_EQ(rep->wal.next_seq, expected_resume)
      << "the WAL and the kill point disagree about what landed";

  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0, state_path));
  ReplicationReceiver::SessionDriver child(&receiver);
  ASSERT_TRUE(child.Feed(HelloBytes("default", "c1")).ok());
  const HelloAckFrame hello = TakeHelloAck(child);
  ASSERT_TRUE(hello.accepted) << hello.message;
  EXPECT_EQ(hello.resume_seq, expected_resume)
      << "reconcile resolved the pending marker the wrong way";

  DriveChunks(child, w.events, expected_resume, n);
  if (::testing::Test::HasFatalFailure()) return;
  parent->Flush();

  const auto rstats = receiver.stats();
  EXPECT_EQ(rstats.gap_events, 0u);
  EXPECT_EQ(rstats.events_deduped, 0u)
      << "the resume seq made the child resend something already applied";
  EXPECT_EQ(receiver.watermark("default", "c1"), n);
  EXPECT_EQ(Fingerprint(*parent, qid), truth.fingerprint);
  auto report = RunExplain(*parent, qid);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->SelectedFeatureNames(), truth.features);
  EXPECT_FALSE(report->degradation.degraded());
}

// Crash before the pending marker persists: the frame never applied, the
// child must resend it, and nothing is lost.
TEST(ReplicationFanInTest, LedgerCrashBeforeApplyResumesWithoutLoss) {
  RunLedgerKillPoint(/*skip=*/0, /*expect_pending_landed=*/false);
}

// Crash between the WAL fsync and the ledger commit: the pending marker
// reconciles as landed, and the child must NOT resend (no double apply).
TEST(ReplicationFanInTest, LedgerCrashAfterWalSyncResumesWithoutDoubleApply) {
  RunLedgerKillPoint(/*skip=*/1, /*expect_pending_landed=*/true);
}

// --- Handshake edge cases --------------------------------------------------

// A duplicate HELLO — same identity or an attempted tenant switch — is a
// protocol violation that ends the offending session only: applied state is
// untouched and the identity remains resumable.
TEST(ReplicationFanInTest, DuplicateHelloAndTenantSwitchEndOnlyThatSession) {
  const Workload w = MakeWorkload();
  TenantHub hub;
  QueryId qid_a = 0, qid_b = 0;
  auto sys_a = MakeSystem(w, &qid_a);
  auto sys_b = MakeSystem(w, &qid_b);
  ASSERT_TRUE(hub.AddTenant("alpha", sys_a.get()).ok());
  ASSERT_TRUE(hub.AddTenant("beta", sys_b.get()).ok());
  ReplicationReceiver receiver(&hub, ReceiverOptions(0));

  {
    ReplicationReceiver::SessionDriver s1(&receiver);
    ASSERT_TRUE(s1.Feed(HelloBytes("alpha", "c1")).ok());
    ASSERT_TRUE(TakeHelloAck(s1).accepted);
    const std::vector<Event> slice(w.events.begin(), w.events.begin() + kBatch);
    ASSERT_TRUE(s1.Feed(ChunkBytes(1, 0, slice)).ok());
    EXPECT_EQ(TakeLastAck(s1).ack_seq, kBatch);

    const Status dup = s1.Feed(HelloBytes("alpha", "c1"));
    EXPECT_FALSE(dup.ok());
    EXPECT_NE(dup.ToString().find("duplicate HELLO"), std::string::npos)
        << dup.ToString();
    EXPECT_TRUE(s1.ended());
  }
  // The violation cost the session, not the state.
  EXPECT_EQ(sys_a->engine().events_processed(), kBatch);
  EXPECT_EQ(receiver.watermark("alpha", "c1"), kBatch);

  {
    // Tenant switch mid-session: HELLO as beta, then re-HELLO as alpha.
    ReplicationReceiver::SessionDriver s2(&receiver);
    ASSERT_TRUE(s2.Feed(HelloBytes("beta", "c9")).ok());
    ASSERT_TRUE(TakeHelloAck(s2).accepted);
    const Status sw = s2.Feed(HelloBytes("alpha", "c9"));
    EXPECT_FALSE(sw.ok());
    EXPECT_TRUE(s2.ended());
  }
  EXPECT_EQ(sys_b->engine().events_processed(), 0u);
  EXPECT_EQ(sys_a->engine().events_processed(), kBatch);

  // The identity the duplicate HELLO killed resumes exactly where it was.
  ReplicationReceiver::SessionDriver s3(&receiver);
  ASSERT_TRUE(s3.Feed(HelloBytes("alpha", "c1")).ok());
  const HelloAckFrame ack = TakeHelloAck(s3);
  ASSERT_TRUE(ack.accepted);
  EXPECT_EQ(ack.resume_seq, kBatch);
}

// Two children of one tenant at different watermarks: a parent restart must
// hand each child ITS resume seq from the per-(tenant, child) ledger, not an
// aggregate.
TEST(ReplicationFanInTest, ResumeWatermarksPerChildSurviveParentRestart) {
  const Workload w = MakeWorkload();
  ASSERT_GT(w.events.size(), 3 * kBatch);
  const std::string parent_wal = MakeTempDir("resume_wal");
  const std::string state_path = MakeTempDir("resume_state") + "/resume.state";

  {
    QueryId qid = 0;
    auto parent = MakeSystem(w, &qid, parent_wal);
    ReplicationReceiver receiver(parent.get(), ReceiverOptions(0, state_path));
    ReplicationReceiver::SessionDriver c1(&receiver);
    ASSERT_TRUE(c1.Feed(HelloBytes("default", "c1")).ok());
    ASSERT_TRUE(TakeHelloAck(c1).accepted);
    DriveChunks(c1, w.events, 0, 2 * kBatch);  // c1's own seqs 0..128

    ReplicationReceiver::SessionDriver c2(&receiver);
    ASSERT_TRUE(c2.Feed(HelloBytes("default", "c2")).ok());
    ASSERT_TRUE(TakeHelloAck(c2).accepted);
    const std::vector<Event> slice(w.events.begin() + 2 * kBatch,
                                   w.events.begin() + 3 * kBatch);
    ASSERT_TRUE(c2.Feed(ChunkBytes(1, 0, slice)).ok());  // c2's own seqs 0..64
    EXPECT_EQ(TakeLastAck(c2).ack_seq, kBatch);
    if (HasFatalFailure()) return;
    // Parent crash.
  }

  QueryId qid = 0;
  auto parent = MakeSystem(w, &qid, parent_wal);
  const auto rep = parent->Recover(std::string());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->wal.next_seq, 3 * kBatch);

  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0, state_path));
  ReplicationReceiver::SessionDriver c1(&receiver);
  ASSERT_TRUE(c1.Feed(HelloBytes("default", "c1")).ok());
  const HelloAckFrame ack1 = TakeHelloAck(c1);
  ASSERT_TRUE(ack1.accepted);
  EXPECT_EQ(ack1.resume_seq, 2 * kBatch);

  ReplicationReceiver::SessionDriver c2(&receiver);
  ASSERT_TRUE(c2.Feed(HelloBytes("default", "c2")).ok());
  const HelloAckFrame ack2 = TakeHelloAck(c2);
  ASSERT_TRUE(ack2.accepted);
  EXPECT_EQ(ack2.resume_seq, kBatch);

  // The ledger's view matches: two identities, each at its own watermark.
  const auto sessions = receiver.sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(receiver.watermark("default", "c1"), 2 * kBatch);
  EXPECT_EQ(receiver.watermark("default", "c2"), kBatch);
}

// --- Kill -9 + immediate reconnect (prompt reap) ---------------------------

// A child killed -9 leaves a dead socket behind with no FIN. Its immediate
// reconnect must take over the identity at once (not wait out the corpse),
// and once the corpse's socket does close, the session thread reaps promptly.
TEST(ReplicationFanInTest, KilledChildTakesOverIdentityImmediately) {
  const Workload w = MakeWorkload();
  QueryId qid = 0;
  auto parent = MakeSystem(w, &qid);
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0));
  ASSERT_TRUE(receiver.Start().ok());

  auto read_frame = [](TcpSocket& sock, FrameDecoder& dec, Frame* out) {
    for (int i = 0; i < 200; ++i) {
      auto next = dec.Next();
      if (!next.ok()) return false;
      if (next->has_value()) {
        *out = std::move(**next);
        return true;
      }
      char buf[1 << 14];
      auto n = sock.Recv(buf, sizeof(buf), 100);
      if (!n.ok() || *n == 0) continue;
      dec.Feed(std::string_view(buf, *n));
    }
    return false;
  };

  // Session 1: HELLO + one chunk, then the process "dies" — the socket stays
  // open and silent, exactly what kill -9 leaves behind.
  auto sock1 = TcpSocket::Connect("127.0.0.1", receiver.port(), 1000);
  ASSERT_TRUE(sock1.ok()) << sock1.status().ToString();
  ASSERT_TRUE(sock1->SendAll(HelloBytes("default", "k9")).ok());
  FrameDecoder dec1;
  Frame frame;
  ASSERT_TRUE(read_frame(*sock1, dec1, &frame));
  ASSERT_EQ(frame.type, FrameType::kHelloAck);
  const std::vector<Event> first(w.events.begin(), w.events.begin() + kBatch);
  ASSERT_TRUE(sock1->SendAll(ChunkBytes(1, 0, first)).ok());
  ASSERT_TRUE(read_frame(*sock1, dec1, &frame));
  ASSERT_EQ(frame.type, FrameType::kAck);

  // Session 2: the restarted child reconnects immediately. The HELLOACK must
  // arrive without waiting for session 1 to idle out, and resume at 64.
  const auto takeover_start = std::chrono::steady_clock::now();
  auto sock2 = TcpSocket::Connect("127.0.0.1", receiver.port(), 1000);
  ASSERT_TRUE(sock2.ok()) << sock2.status().ToString();
  ASSERT_TRUE(sock2->SendAll(HelloBytes("default", "k9")).ok());
  FrameDecoder dec2;
  ASSERT_TRUE(read_frame(*sock2, dec2, &frame));
  ASSERT_EQ(frame.type, FrameType::kHelloAck);
  auto ack = HelloAckFrame::Decode(frame.payload);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_TRUE(ack->accepted) << ack->message;
  EXPECT_EQ(ack->resume_seq, kBatch);
  const auto takeover_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - takeover_start);
  EXPECT_LT(takeover_ms.count(), 5000) << "takeover waited on the dead session";

  const std::vector<Event> second(w.events.begin() + kBatch,
                                  w.events.begin() + 2 * kBatch);
  ASSERT_TRUE(sock2->SendAll(ChunkBytes(2, kBatch, second)).ok());
  ASSERT_TRUE(read_frame(*sock2, dec2, &frame));
  ASSERT_EQ(frame.type, FrameType::kAck);
  {
    auto chunk_ack = AckFrame::Decode(frame.payload);
    ASSERT_TRUE(chunk_ack.ok());
    EXPECT_EQ(chunk_ack->ack_seq, 2 * kBatch);
  }
  EXPECT_GE(receiver.stats().sessions_superseded, 1u);

  // Orderly EOF reaps promptly: close both sockets and the live session
  // count must hit zero well within a few idle timeouts.
  sock1->Close();
  sock2->Close();
  bool reaped = false;
  for (int i = 0; i < 100 && !reaped; ++i) {
    reaped = receiver.stats().live_sessions == 0;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(reaped) << "session threads lingered after EOF";

  receiver.Stop();
  EXPECT_EQ(receiver.watermark("default", "k9"), 2 * kBatch);
  EXPECT_EQ(parent->engine().events_processed(), 2 * kBatch);
}

// --- v1 state file back-compat ---------------------------------------------

// A 12-byte v1 gap-state file (magic + u64 gap) loads as an unclaimed gap
// pool for the legacy tenant: re-disclosed on the system, claimed by the
// first child to HELLO, and carried in its resume watermark.
TEST(ReplicationFanInTest, V1GapStateClaimedByFirstChildAndRedisclosed) {
  const Workload w = MakeWorkload();
  const std::string state_path = MakeTempDir("v1_state") + "/gap.state";
  const uint64_t kLegacyGap = 500;
  {
    BytesWriter writer;
    writer.Put<uint32_t>(0x47525845u);  // "EXRG"
    writer.Put<uint64_t>(kLegacyGap);
    ASSERT_TRUE(WriteFileAtomic(state_path, writer.Take()).ok());
  }

  QueryId qid = 0;
  auto parent = MakeSystem(w, &qid);
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0, state_path));
  ReplicationReceiver::SessionDriver child(&receiver);
  // Loading the ledger re-disclosed the pre-restart loss on the system.
  EXPECT_EQ(parent->shed_events(), kLegacyGap);
  EXPECT_EQ(receiver.watermark(), kLegacyGap);

  ASSERT_TRUE(child.Feed(HelloBytes("default", "c1")).ok());
  const HelloAckFrame ack = TakeHelloAck(child);
  ASSERT_TRUE(ack.accepted);
  EXPECT_EQ(ack.resume_seq, kLegacyGap)
      << "the v1 gap pool was not claimed by the first child";

  const std::vector<Event> slice(w.events.begin(), w.events.begin() + kBatch);
  ASSERT_TRUE(child.Feed(ChunkBytes(1, kLegacyGap, slice)).ok());
  EXPECT_EQ(TakeLastAck(child).ack_seq, kLegacyGap + kBatch);
  EXPECT_EQ(receiver.watermark("default", "c1"), kLegacyGap + kBatch);
  EXPECT_EQ(parent->engine().events_processed(), kBatch);
}

}  // namespace
}  // namespace exstream
