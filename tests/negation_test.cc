// Tests of negated pattern components (SASE's `!B`): "match A followed by C
// with no intervening B".

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "query/parser.h"

namespace exstream {
namespace {

class NegationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("A", {{"k", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("B", {{"k", ValueType::kString},
                                                {"v", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("C", {{"k", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("D", {{"k", ValueType::kString},
                                                {"v", ValueType::kDouble}}))
                    .ok());
  }

  Event A(Timestamp ts) { return Event(0, ts, {Value("p")}); }
  Event B(Timestamp ts, double v = 0) { return Event(1, ts, {Value("p"), Value(v)}); }
  Event C(Timestamp ts) { return Event(2, ts, {Value("p")}); }
  Event D(Timestamp ts, double v = 0) { return Event(3, ts, {Value("p"), Value(v)}); }

  EventTypeRegistry registry_;
};

TEST_F(NegationTest, ParserHandlesNegatedComponent) {
  auto q = ParseQuery("PATTERN SEQ(A a, !B b, C c) WHERE [k] RETURN (a.k)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->components[0].negated);
  EXPECT_TRUE(q->components[1].negated);
  // Round trip.
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_TRUE(q2->components[1].negated);
}

TEST_F(NegationTest, ParserRejectsBadNegation) {
  // Negation at the edges.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(!A a, C c)").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a, !C c)").ok());
  // Negated kleene.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a, !B+ b[], C c)").ok());
}

TEST_F(NegationTest, CompileRejectsReferencesToNegated) {
  CepEngine engine(&registry_);
  EXPECT_FALSE(
      engine.AddQueryText("PATTERN SEQ(A a, !B b, C c) RETURN (b.v)", "Q").ok());
  EXPECT_FALSE(engine
                   .AddQueryText(
                       "PATTERN SEQ(A a, !B b, C c) WHERE c.k = b.k RETURN (a.k)",
                       "Q")
                   .ok());
}

TEST_F(NegationTest, MatchWithoutForbiddenEvent) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, !B b, C c) WHERE [k] RETURN (c.timestamp)", "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(A(1));
  engine.OnEvent(C(2));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

TEST_F(NegationTest, ForbiddenEventVoidsRun) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, !B b, C c) WHERE [k] RETURN (c.timestamp)", "Q");
  ASSERT_TRUE(qid.ok());
  engine.OnEvent(A(1));
  engine.OnEvent(B(2));
  engine.OnEvent(C(3));  // run was voided; no match
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 0u);
  // A later clean A..C still matches.
  engine.OnEvent(A(4));
  engine.OnEvent(C(5));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

TEST_F(NegationTest, GuardWindowClosesAfterNextComponent) {
  // B is only forbidden BETWEEN A and C; a B before A or after C is fine.
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, !B b, C c) WHERE [k] RETURN (c.timestamp)", "Q");
  ASSERT_TRUE(qid.ok());
  engine.OnEvent(B(0));  // before the run starts: ignored
  engine.OnEvent(A(1));
  engine.OnEvent(C(2));
  engine.OnEvent(B(3));  // after completion: ignored
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

TEST_F(NegationTest, PredicatesScopeTheNegation) {
  // Only large B events are forbidden.
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, !B b, C c) WHERE [k] AND b.v > 10 RETURN (c.timestamp)",
      "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(A(1));
  engine.OnEvent(B(2, 5));  // small B: allowed
  engine.OnEvent(C(3));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
  engine.OnEvent(A(4));
  engine.OnEvent(B(5, 50));  // large B: voids
  engine.OnEvent(C(6));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

TEST_F(NegationTest, NegationAfterKleene) {
  // No D may occur between the kleene phase and the closing C.
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, B+ b[], !D d, C c) WHERE [k] "
      "RETURN (b[i].timestamp, count(b[1..i].v))",
      "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(A(1));
  engine.OnEvent(B(2));
  engine.OnEvent(B(3));
  engine.OnEvent(D(4));  // voids the run
  engine.OnEvent(C(5));
  EXPECT_FALSE(engine.match_table(*qid).IsComplete("p"));
  // Clean run completes.
  engine.OnEvent(A(6));
  engine.OnEvent(B(7));
  engine.OnEvent(C(8));
  EXPECT_TRUE(engine.match_table(*qid).IsComplete("p"));
}

TEST_F(NegationTest, MultipleNegatedComponents) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, !B b, !D d, C c) WHERE [k] RETURN (c.timestamp)", "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(A(1));
  engine.OnEvent(D(2));  // either forbidden type voids
  engine.OnEvent(C(3));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 0u);
  engine.OnEvent(A(4));
  engine.OnEvent(C(5));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

TEST_F(NegationTest, VoidingEventCanStartNewRun) {
  // Pattern SEQ(A, !C, C)? C both forbidden and closing is contradictory;
  // use distinct roles: SEQ(B, !A, C) voided by A, which then... cannot start
  // (pattern starts with B). Instead check SEQ(A, !B, C) voided by B followed
  // by a fresh A.
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, !B b, C c) WHERE [k] RETURN (c.timestamp)", "Q");
  ASSERT_TRUE(qid.ok());
  engine.OnEvent(A(1));
  engine.OnEvent(B(2));
  engine.OnEvent(A(3));  // fresh run
  engine.OnEvent(C(4));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

}  // namespace
}  // namespace exstream
