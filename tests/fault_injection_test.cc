// Resilience tests: spill format v2 checksums and v1 compatibility, the
// error-code taxonomy (truncation vs corruption), and every FaultInjector
// mode exercised against the archive's retry / quarantine / degraded-scan
// machinery.

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "archive/archive.h"
#include "archive/serialization.h"
#include "common/fault_injection.h"
#include "io/file_util.h"
#include "common/stopwatch.h"

namespace exstream {
namespace {

bool FileExists(const std::string& path) { return access(path.c_str(), F_OK) == 0; }

std::vector<Event> MakeEvents(size_t n) {
  std::vector<Event> events;
  for (size_t t = 0; t < n; ++t) {
    events.emplace_back(0, static_cast<Timestamp>(t),
                        std::vector<Value>{Value(t * 0.5)});
  }
  return events;
}

TEST(SpillFormatTest, V2RoundTrip) {
  const std::vector<Event> events = MakeEvents(64);
  const std::string data = SerializeEvents(events, SpillFormat::kV2);
  auto parsed = DeserializeEvents(data);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 64u);
  EXPECT_DOUBLE_EQ((*parsed)[10].values[0].AsDouble(), 5.0);
}

TEST(SpillFormatTest, V1BuffersStayReadable) {
  const std::vector<Event> events = MakeEvents(16);
  const std::string data = SerializeEvents(events, SpillFormat::kV1);
  auto parsed = DeserializeEvents(data);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 16u);
}

TEST(SpillFormatTest, V1FilesStayReadable) {
  char tmpl[] = "/tmp/exstream_v1_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/v1.bin";
  const std::vector<Event> events = MakeEvents(32);
  ASSERT_TRUE(WriteEventsFile(path, events, SpillFormat::kV1).ok());
  auto loaded = ReadEventsFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 32u);
}

TEST(SpillFormatTest, ChecksumCatchesBitFlip) {
  std::string data = SerializeEvents(MakeEvents(8), SpillFormat::kV2);
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x01);
  const Status st = DeserializeEvents(data).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("checksum"), std::string::npos) << st.ToString();
}

TEST(SpillFormatTest, TruncationHasItsOwnCode) {
  // A v1 buffer cut mid-payload reads as Truncated, with the byte offset.
  const std::string v1 = SerializeEvents(MakeEvents(8), SpillFormat::kV1);
  const Status cut_payload =
      DeserializeEvents(std::string_view(v1).substr(0, v1.size() - 3)).status();
  EXPECT_TRUE(cut_payload.IsTruncated()) << cut_payload.ToString();
  EXPECT_NE(cut_payload.message().find("offset"), std::string::npos);

  // A v2 buffer cut mid-header is Truncated too...
  const std::string v2 = SerializeEvents(MakeEvents(8), SpillFormat::kV2);
  EXPECT_TRUE(DeserializeEvents(std::string_view(v2).substr(0, 10))
                  .status()
                  .IsTruncated());
  // ...but a v2 buffer cut mid-payload fails its checksum first: Corruption.
  EXPECT_TRUE(DeserializeEvents(std::string_view(v2).substr(0, v2.size() - 3))
                  .status()
                  .IsCorruption());
}

TEST(SpillFormatTest, HugeHeaderCountRejectedBeforeAllocation) {
  // The count lives outside the checksummed payload, so a patched count must
  // be caught by the size bound, not the CRC — and without a giant reserve.
  std::string data = SerializeEvents(MakeEvents(4), SpillFormat::kV2);
  const uint32_t huge = 0x7FFFFFFF;
  std::memcpy(&data[4], &huge, sizeof(huge));
  const Status st = DeserializeEvents(data).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("header count"), std::string::npos);
}

TEST(SpillFormatTest, ReadErrorsNameTheFile) {
  char tmpl[] = "/tmp/exstream_badmagic_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/junk.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite("not a spill file", 1, 16, f);
  fclose(f);
  const Status st = ReadEventsFile(path).status();
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find(path), std::string::npos) << st.ToString();
}

class FaultArchiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        registry_.Register(EventSchema("A", {{"x", ValueType::kDouble}})).ok());
    char tmpl[] = "/tmp/exstream_fault_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override { FaultInjector::Global().Disarm(); }

  ArchiveOptions SpillOptions() {
    ArchiveOptions options;
    options.chunk_capacity = 8;
    options.spill_dir = dir_;
    options.max_resident_chunks = 2;
    options.spill_retry.base_backoff_ms = 0.1;  // keep retries fast in tests
    options.spill_retry.max_backoff_ms = 0.5;
    return options;
  }

  void Fill(EventArchive* archive, size_t n = 200) {
    for (size_t t = 0; t < n; ++t) {
      ASSERT_TRUE(
          archive->Append(Event(0, static_cast<Timestamp>(t), {Value(t * 0.5)}))
              .ok());
    }
  }

  EventTypeRegistry registry_;
  std::string dir_;
};

TEST_F(FaultArchiveTest, V1SpillFormatRoundTripsThroughArchive) {
  ArchiveOptions options = SpillOptions();
  options.spill_format = SpillFormat::kV1;
  EventArchive archive(&registry_, options);
  Fill(&archive);
  auto events = archive.Scan(0, {0, 199});
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 200u);
}

TEST_F(FaultArchiveTest, V2SpillFormatRoundTripsThroughArchive) {
  // Archives written before the columnar format keep working untouched.
  ArchiveOptions options = SpillOptions();
  options.spill_format = SpillFormat::kV2;
  EventArchive archive(&registry_, options);
  Fill(&archive);
  auto events = archive.Scan(0, {0, 199});
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 200u);
}

// Finds chunk 0's spill file in `dir`, skipping its `.tiers` sidecar (and any
// `.quarantine` leftovers) — the rot tests must hit the primary bytes.
std::string FindChunk0Spill(const std::string& dir) {
  std::string victim;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return victim;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.find("type0_chunk0_") == std::string::npos) continue;
    if (name.size() >= 6 && name.compare(name.size() - 6, 6, ".tiers") == 0) {
      continue;
    }
    if (name.size() >= 11 &&
        name.compare(name.size() - 11, 11, ".quarantine") == 0) {
      continue;
    }
    victim = dir + "/" + name;
    break;
  }
  closedir(d);
  return victim;
}

TEST_F(FaultArchiveTest, V3CorruptedColumnQuarantinesNotCrashes) {
  ArchiveOptions options = SpillOptions();
  options.spill_format = SpillFormat::kV3;  // the uncompressed columnar format
  EventArchive archive(&registry_, options);
  Fill(&archive);

  // Rot one spill file on disk directly — the persistent-damage case, as
  // opposed to the injector's transient read-path corruption above.
  const std::string victim = FindChunk0Spill(dir_);
  ASSERT_FALSE(victim.empty()) << "no spill file for chunk 0 in " << dir_;
  FILE* f = fopen(victim.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, -1, SEEK_END), 0);  // last byte: inside a column payload
  const int c = fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(fseek(f, -1, SEEK_END), 0);
  fputc(c ^ 0x40, f);
  fclose(f);

  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 192u);  // the bad chunk's 8 events are skipped
  ASSERT_EQ(degradation.chunks_skipped(), 1u);
  // The per-column CRC pins the failure to a column, and the chunk is
  // quarantined exactly like a v2 checksum failure.
  EXPECT_NE(degradation.skipped[0].reason.find("column"), std::string::npos)
      << degradation.skipped[0].reason;
  EXPECT_TRUE(FileExists(victim + ".quarantine"));
  EXPECT_EQ(archive.quarantined_chunks(), 1u);
}

TEST_F(FaultArchiveTest, V4CorruptedCompressedBlockQuarantinesNamingColumn) {
  // Default spill format: v4 compressed columnar. A bit flip inside a
  // compressed column payload must fail that block's CRC — naming the column
  // — and quarantine the chunk, never crash or feed garbage to the decoders.
  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);

  const std::string victim = FindChunk0Spill(dir_);
  ASSERT_FALSE(victim.empty()) << "no spill file for chunk 0 in " << dir_;
  FILE* f = fopen(victim.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fseek(f, -1, SEEK_END), 0);  // inside the last column's block
  const int c = fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(fseek(f, -1, SEEK_END), 0);
  fputc(c ^ 0x40, f);
  fclose(f);

  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 192u);
  ASSERT_EQ(degradation.chunks_skipped(), 1u);
  EXPECT_NE(degradation.skipped[0].reason.find("column"), std::string::npos)
      << degradation.skipped[0].reason;
  EXPECT_TRUE(FileExists(victim + ".quarantine"));
  EXPECT_EQ(archive.quarantined_chunks(), 1u);
  // The tier sidecar survives the quarantine: coarse scans can still be
  // answered even though the raw bytes are gone for triage.
  EXPECT_TRUE(FileExists(victim + ".tiers"));
}

TEST_F(FaultArchiveTest, MmapReadSiteTransientFaultRetriedAway) {
  // Cold v4 reads go through the mmap seam; a transient fault there is
  // retried exactly like the buffered-read path before it.
  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);

  FaultPlan plan;
  plan.mode = FaultMode::kFailOpen;
  plan.op = FaultOp::kRead;
  plan.site = "mmap-read";
  plan.max_hits = 1;
  ScopedFaultInjection fault(plan);

  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 200u);
  EXPECT_FALSE(degradation.degraded());
  EXPECT_GE(archive.spill_read_retries(), 1u);
  EXPECT_EQ(archive.quarantined_chunks(), 0u);
}

TEST_F(FaultArchiveTest, MmapReadSiteCorruptionQuarantines) {
  // kCorruptBytes at the mmap seam flips a private (copy-on-write) byte, so
  // the on-disk file stays pristine while the in-memory view is poisoned —
  // the CRC check must still quarantine the chunk.
  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);

  FaultPlan plan;
  plan.mode = FaultMode::kCorruptBytes;
  plan.op = FaultOp::kRead;
  plan.site = "mmap-read";
  plan.path_substring = "type0_chunk0_";
  ScopedFaultInjection fault(plan);

  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 192u);
  ASSERT_EQ(degradation.chunks_skipped(), 1u);
  EXPECT_EQ(archive.quarantined_chunks(), 1u);
}

TEST_F(FaultArchiveTest, TransientReadFaultRetriedAway) {
  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);

  FaultPlan plan;
  plan.mode = FaultMode::kFailOpen;
  plan.op = FaultOp::kRead;
  plan.path_substring = dir_;
  plan.max_hits = 1;  // fails once; the retry succeeds
  ScopedFaultInjection fault(plan);

  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 200u);
  EXPECT_FALSE(degradation.degraded());
  EXPECT_GE(archive.spill_read_retries(), 1u);
  EXPECT_EQ(archive.quarantined_chunks(), 0u);
}

TEST_F(FaultArchiveTest, CorruptSpillQuarantinedScanDegrades) {
  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);

  // Rot the bytes of exactly one spill file (chunk 0 holds ts 0..7).
  FaultPlan plan;
  plan.mode = FaultMode::kCorruptBytes;
  plan.op = FaultOp::kRead;
  plan.path_substring = "type0_chunk0_";
  ScopedFaultInjection fault(plan);

  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 192u);  // everything but the bad chunk's 8 events

  ASSERT_EQ(degradation.chunks_skipped(), 1u);
  const auto& skipped = degradation.skipped[0];
  EXPECT_NE(skipped.spill_path.find("type0_chunk0_"), std::string::npos);
  EXPECT_EQ(skipped.events_lost, 8u);
  EXPECT_EQ(degradation.events_lost_estimate, 8u);
  EXPECT_LT(degradation.coverage.at(0).fraction(), 1.0);

  // The poisoned file was renamed aside for triage, not deleted.
  EXPECT_FALSE(FileExists(skipped.spill_path));
  EXPECT_TRUE(FileExists(skipped.spill_path + ".quarantine"));
  EXPECT_EQ(archive.quarantined_chunks(), 1u);
  EXPECT_EQ(archive.degraded_scans(), 1u);
}

TEST_F(FaultArchiveTest, QuarantineIsStickyAcrossScans) {
  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);
  {
    FaultPlan plan;
    plan.mode = FaultMode::kTruncate;
    plan.op = FaultOp::kRead;
    plan.path_substring = "type0_chunk1_";
    ScopedFaultInjection fault(plan);
    ASSERT_TRUE(archive.Scan(0, {0, 199}).ok());
  }
  ASSERT_EQ(archive.quarantined_chunks(), 1u);

  // With the injector disarmed the chunk stays out: it was quarantined, not
  // retried, and the second scan reports it as such.
  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 192u);
  ASSERT_EQ(degradation.chunks_skipped(), 1u);
  EXPECT_NE(degradation.skipped[0].reason.find("quarantined"), std::string::npos);
  EXPECT_EQ(archive.quarantined_chunks(), 1u);  // no double count
}

TEST_F(FaultArchiveTest, NoSpaceKeepsChunksResidentAndScannable) {
  FaultPlan plan;
  plan.mode = FaultMode::kNoSpace;
  plan.op = FaultOp::kWrite;
  plan.path_substring = dir_;
  ScopedFaultInjection fault(plan);

  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);  // every append must still succeed
  EXPECT_GT(archive.spill_write_failures(), 0u);

  // Nothing reached disk, so nothing can be lost: the data is all resident.
  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 200u);
  EXPECT_FALSE(degradation.degraded());
}

TEST_F(FaultArchiveTest, TransientWriteFaultRetriedAway) {
  FaultPlan plan;
  plan.mode = FaultMode::kFailOpen;
  plan.op = FaultOp::kWrite;
  plan.path_substring = dir_;
  plan.max_hits = 1;
  ScopedFaultInjection fault(plan);

  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);
  EXPECT_GE(archive.spill_write_retries(), 1u);
  EXPECT_EQ(archive.spill_write_failures(), 0u);

  auto events = archive.Scan(0, {0, 199});
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 200u);
}

TEST_F(FaultArchiveTest, EnospcSealKeepsChunkRetryable) {
  EventArchive archive(&registry_, SpillOptions());
  {
    FaultPlan plan;
    plan.mode = FaultMode::kNoSpace;
    plan.op = FaultOp::kWrite;
    plan.path_substring = dir_;
    ScopedFaultInjection fault(plan);
    Fill(&archive, 100);  // seal-triggered spills all hit ENOSPC
    EXPECT_GT(archive.spill_write_failures(), 0u);
  }
  // Nothing reached disk while the disk was "full".
  auto files = ListDirFiles(dir_);
  ASSERT_TRUE(files.ok());
  EXPECT_TRUE(files->empty());

  // The disk recovers; later seals probe again (past the cooldown) and the
  // retained chunks finally spill. No event was lost at any point.
  for (size_t t = 100; t < 300; ++t) {
    ASSERT_TRUE(
        archive.Append(Event(0, static_cast<Timestamp>(t), {Value(t * 0.5)}))
            .ok());
  }
  files = ListDirFiles(dir_);
  ASSERT_TRUE(files.ok());
  EXPECT_FALSE(files->empty()) << "spills must resume after ENOSPC clears";
  auto events = archive.Scan(0, {0, 299});
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), 300u);
}

TEST_F(FaultArchiveTest, QuarantineCapEvictsOldest) {
  ArchiveOptions options = SpillOptions();
  options.max_quarantine_files = 2;
  EventArchive archive(&registry_, options);
  Fill(&archive, 200);  // ~23 spilled chunks

  // Every spill read comes back corrupt: each unreadable chunk is renamed
  // *.quarantine, but the cap keeps only the newest two on disk.
  FaultPlan plan;
  plan.mode = FaultMode::kCorruptBytes;
  plan.op = FaultOp::kRead;
  plan.path_substring = dir_;
  ScopedFaultInjection fault(plan);
  DegradationReport degradation;
  auto events = archive.Scan(0, {0, 199}, &degradation);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(degradation.degraded());
  ASSERT_GT(archive.quarantined_chunks(), 2u);

  size_t on_disk = 0;
  const auto files = ListDirFiles(dir_);
  ASSERT_TRUE(files.ok());
  for (const std::string& f : *files) {
    if (f.size() > 11 && f.compare(f.size() - 11, 11, ".quarantine") == 0) {
      ++on_disk;
    }
  }
  EXPECT_EQ(on_disk, 2u);
  EXPECT_EQ(archive.quarantine_evictions(), archive.quarantined_chunks() - 2u);
}

TEST_F(FaultArchiveTest, DelayFaultAddsLatency) {
  EventArchive archive(&registry_, SpillOptions());
  Fill(&archive);

  FaultPlan plan;
  plan.mode = FaultMode::kDelay;
  plan.op = FaultOp::kRead;
  plan.path_substring = dir_;
  plan.delay_ms = 30;
  plan.max_hits = 1;
  ScopedFaultInjection fault(plan);

  Stopwatch timer;
  auto events = archive.Scan(0, {0, 199});
  const double elapsed = timer.ElapsedSeconds();
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 200u);  // delay slows the read, data is intact
  EXPECT_GE(elapsed, 0.025);
  EXPECT_EQ(FaultInjector::Global().hits(), 1u);
}

}  // namespace
}  // namespace exstream
