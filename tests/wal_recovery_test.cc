// Crash/recovery tests for the durable ingest path: a system with a WAL (and
// optionally a checkpoint) is killed at several points — batch boundary,
// mid-batch via CrashingSink, torn final record, mid-checkpoint manifest
// fault — then a fresh system Recover()s and resumes the stream. The
// recovered match tables and archive contents must be bit-identical to an
// uncrashed run, on both simulator workloads.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "io/file_util.h"
#include "sim/chaos.h"
#include "sim/hadoop_sim.h"
#include "sim/supply_chain_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

constexpr char kHadoopQueryText[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) "
    "WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";
constexpr char kScQueryText[] =
    "PATTERN SEQ(ProductStart a, ProductProgress+ b[], ProductEnd c) "
    "WHERE [productId] "
    "RETURN (b[i].timestamp, a.productId, avg(b[1..i].quality))";

constexpr size_t kBatch = 64;

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/exstream_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

struct Workload {
  std::unique_ptr<EventTypeRegistry> registry;
  std::vector<Event> events;
  std::string query_text;
  std::string query_name;
};

Workload MakeHadoopWorkload() {
  Workload w;
  w.registry = std::make_unique<EventTypeRegistry>();
  EXPECT_TRUE(HadoopClusterSim::RegisterEventTypes(w.registry.get()).ok());
  HadoopSimConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 11;
  HadoopClusterSim sim(cfg, w.registry.get());
  for (int j = 0; j < 2; ++j) {
    HadoopJobConfig job;
    job.job_id = "job_" + std::to_string(j);
    job.program = "WC-frequent-users";
    job.dataset = "worldcup";
    job.start_time = j * 300;
    job.num_mappers = 6;
    job.num_reducers = 2;
    job.map_phase_duration = 150;
    sim.AddJob(job);
  }
  VectorSink sink;
  EXPECT_TRUE(sim.Run(&sink).ok());
  w.events = sink.events();
  w.query_text = kHadoopQueryText;
  w.query_name = "Q1";
  return w;
}

Workload MakeSupplyChainWorkload() {
  Workload w;
  w.registry = std::make_unique<EventTypeRegistry>();
  SupplyChainConfig cfg;
  cfg.num_sensors = 4;
  cfg.num_machines = 4;
  cfg.num_products = 2;
  cfg.seed = 23;
  EXPECT_TRUE(SupplyChainSim::RegisterEventTypes(w.registry.get(), cfg).ok());
  SupplyChainSim sim(cfg, w.registry.get());
  VectorSink sink;
  EXPECT_TRUE(sim.Run(&sink).ok());
  w.events = sink.events();
  w.query_text = kScQueryText;
  w.query_name = "Qsc";
  return w;
}

std::unique_ptr<XStreamSystem> MakeSystem(const Workload& w,
                                          const std::string& wal_dir,
                                          size_t segment_bytes, QueryId* qid) {
  XStreamConfig cfg;
  if (!wal_dir.empty()) {
    cfg.durability.wal_dir = wal_dir;
    cfg.durability.fsync = WalFsyncPolicy::kNone;  // crash != power loss here
    cfg.durability.wal_segment_bytes = segment_bytes;
  }
  auto sys = std::make_unique<XStreamSystem>(w.registry.get(), cfg);
  const auto q = sys->AddQuery(w.query_text, w.query_name);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  *qid = q.ok() ? *q : 0;
  return sys;
}

void Feed(EventSink* sink, const std::vector<Event>& events, size_t begin,
          size_t end) {
  for (size_t i = begin; i < end;) {
    const size_t n = std::min(kBatch, end - i);
    sink->OnEventBatch(EventBatch(events.begin() + i, events.begin() + i + n));
    i += n;
  }
}

// Everything monitoring-visible: match rows per partition (with completion),
// the engine's event counter, and a full archive scan.
std::string Fingerprint(XStreamSystem& sys, QueryId qid) {
  std::string out;
  const MatchTable& mt = sys.engine().match_table(qid);
  for (const std::string& p : mt.Partitions()) {
    out += "partition " + p + (mt.IsComplete(p) ? " complete\n" : " open\n");
    for (const MatchRow& row : mt.Rows(p)) {
      out += std::to_string(row.ts);
      for (const Value& v : row.values) {
        out += '|';
        out += v.ToString();
      }
      out += '\n';
    }
  }
  out += "events_processed=" +
         std::to_string(sys.engine().events_processed()) + '\n';
  const TimeInterval all{std::numeric_limits<Timestamp>::min(),
                         std::numeric_limits<Timestamp>::max()};
  const auto scans = sys.archive().ScanAll(all);
  EXPECT_TRUE(scans.ok()) << scans.status().ToString();
  if (scans.ok()) {
    for (const auto& ts : *scans) {
      out += "type " + std::to_string(ts.type) + '\n';
      for (const Event& e : ts.events) {
        out += std::to_string(e.ts);
        for (const Value& v : e.values) {
          out += '|';
          out += v.ToString();
        }
        out += '\n';
      }
    }
  }
  return out;
}

// Cuts `bytes` off the end of the newest WAL segment — the torn final record
// a crash mid-fwrite leaves behind.
void TearWalTail(const std::string& wal_dir, size_t bytes) {
  const auto files = ListDirFiles(wal_dir);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  std::vector<std::string> segs;
  for (const std::string& f : *files) {
    if (f.size() > 4 && f.compare(f.size() - 4, 4, ".seg") == 0) {
      segs.push_back(f);
    }
  }
  ASSERT_FALSE(segs.empty());
  const std::string path = wal_dir + "/" + segs.back();
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_GT(static_cast<size_t>(st.st_size), bytes);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - static_cast<off_t>(bytes)), 0);
}

enum class CrashCase {
  kBatchBoundary,       // clean kill between appends, WAL-only recovery
  kMidBatch,            // CrashingSink splits a batch at the kill point
  kAfterCheckpoint,     // checkpoint midway, kill later: manifest + WAL tail
  kTornTail,            // final record torn; its events are re-sent
  kMidCheckpointFault,  // MANIFEST write dies: WAL must still cover everything
};

void RunCrashCase(const Workload& w, CrashCase c) {
  ASSERT_GE(w.events.size(), 4 * kBatch) << "workload too small to crash";
  const std::string wal_dir = MakeTempDir("wal");
  const std::string ckpt_dir = MakeTempDir("ckpt");
  // Small segments in the checkpoint cases force rotations mid-run, so the
  // checkpoint exercises TruncateThrough on genuinely closed segments.
  const bool tiny_segments =
      c == CrashCase::kAfterCheckpoint || c == CrashCase::kMidCheckpointFault;
  const size_t segment_bytes = tiny_segments ? 2048 : 4u << 20;

  QueryId qid = 0;
  // Uncrashed baseline: same batches, no WAL.
  const auto baseline = MakeSystem(w, "", segment_bytes, &qid);
  Feed(baseline.get(), w.events, 0, w.events.size());
  baseline->Flush();
  const std::string want = Fingerprint(*baseline, qid);

  size_t crash = (w.events.size() / 2 / kBatch) * kBatch;
  if (c == CrashCase::kMidBatch) crash += 17;  // land inside a batch
  const size_t ckpt_at = (crash / 2 / kBatch) * kBatch;

  bool expect_manifest = false;
  {
    QueryId q2 = 0;
    auto sys = MakeSystem(w, wal_dir, segment_bytes, &q2);
    switch (c) {
      case CrashCase::kBatchBoundary:
      case CrashCase::kTornTail:
        Feed(sys.get(), w.events, 0, crash);
        break;
      case CrashCase::kMidBatch: {
        CrashingSink crasher(sys.get(), crash);
        Feed(&crasher, w.events, 0, w.events.size());
        EXPECT_TRUE(crasher.crashed());
        EXPECT_EQ(crasher.events_lost(), w.events.size() - crash);
        break;
      }
      case CrashCase::kAfterCheckpoint: {
        Feed(sys.get(), w.events, 0, ckpt_at);
        ASSERT_TRUE(sys->Checkpoint(ckpt_dir).ok());
        // The snapshot covers every closed segment; with 2 KiB segments there
        // must have been several to drop.
        EXPECT_GT(sys->wal()->stats().segments_deleted, 0u);
        Feed(sys.get(), w.events, ckpt_at, crash);
        expect_manifest = true;
        break;
      }
      case CrashCase::kMidCheckpointFault: {
        Feed(sys.get(), w.events, 0, ckpt_at);
        FaultPlan plan;
        plan.mode = FaultMode::kFailOpen;
        plan.op = FaultOp::kWrite;
        plan.path_substring = "MANIFEST";
        plan.max_hits = 1;
        FaultInjector::Global().Arm(plan);
        const Status st = sys->Checkpoint(ckpt_dir);
        FaultInjector::Global().Disarm();
        EXPECT_FALSE(st.ok()) << "manifest fault should fail the checkpoint";
        // The failed checkpoint must not have truncated anything.
        EXPECT_EQ(sys->wal()->stats().segments_deleted, 0u);
        Feed(sys.get(), w.events, ckpt_at, crash);
        break;
      }
    }
    // Crash: the system is destroyed without Flush or OnStreamEnd.
  }
  if (c == CrashCase::kTornTail) TearWalTail(wal_dir, 7);

  QueryId q3 = 0;
  auto recovered = MakeSystem(w, wal_dir, segment_bytes, &q3);
  const auto rep = recovered->Recover(
      (c == CrashCase::kAfterCheckpoint || c == CrashCase::kMidCheckpointFault)
          ? ckpt_dir
          : std::string());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->manifest_loaded, expect_manifest);
  EXPECT_EQ(rep->wal.torn_tail, c == CrashCase::kTornTail);

  // Everything the WAL (plus checkpoint) covered is back; the producer
  // re-sends from the first unlogged event.
  const size_t resume = static_cast<size_t>(
      std::max<uint64_t>(rep->checkpoint_seq, rep->wal.next_seq));
  EXPECT_EQ(recovered->engine().events_processed(), resume);
  if (c == CrashCase::kTornTail) {
    EXPECT_LT(resume, crash);  // the torn record's events were lost
    EXPECT_GE(resume, crash - kBatch);
  } else {
    EXPECT_EQ(resume, crash);
  }
  Feed(recovered.get(), w.events, resume, w.events.size());
  recovered->Flush();
  EXPECT_EQ(Fingerprint(*recovered, qid), want);
}

TEST(WalRecoveryTest, HadoopCrashAtBatchBoundary) {
  RunCrashCase(MakeHadoopWorkload(), CrashCase::kBatchBoundary);
}
TEST(WalRecoveryTest, HadoopCrashMidBatch) {
  RunCrashCase(MakeHadoopWorkload(), CrashCase::kMidBatch);
}
TEST(WalRecoveryTest, HadoopCrashAfterCheckpoint) {
  RunCrashCase(MakeHadoopWorkload(), CrashCase::kAfterCheckpoint);
}
TEST(WalRecoveryTest, HadoopTornTail) {
  RunCrashCase(MakeHadoopWorkload(), CrashCase::kTornTail);
}
TEST(WalRecoveryTest, HadoopMidCheckpointFault) {
  RunCrashCase(MakeHadoopWorkload(), CrashCase::kMidCheckpointFault);
}

TEST(WalRecoveryTest, SupplyChainCrashAtBatchBoundary) {
  RunCrashCase(MakeSupplyChainWorkload(), CrashCase::kBatchBoundary);
}
TEST(WalRecoveryTest, SupplyChainCrashMidBatch) {
  RunCrashCase(MakeSupplyChainWorkload(), CrashCase::kMidBatch);
}
TEST(WalRecoveryTest, SupplyChainCrashAfterCheckpoint) {
  RunCrashCase(MakeSupplyChainWorkload(), CrashCase::kAfterCheckpoint);
}
TEST(WalRecoveryTest, SupplyChainTornTail) {
  RunCrashCase(MakeSupplyChainWorkload(), CrashCase::kTornTail);
}
TEST(WalRecoveryTest, SupplyChainMidCheckpointFault) {
  RunCrashCase(MakeSupplyChainWorkload(), CrashCase::kMidCheckpointFault);
}

// Crashing twice must work: the first recovery's replay must NOT re-append
// the replayed batches into the live WAL. Re-appending would (a) duplicate
// the tail into new segments, so a second crash applies the same events
// twice, and (b) run the system's sequence cursor past the live WAL's, so
// every post-recovery append fails "sequence runs backwards" and is silently
// not durable.
void RunDoubleCrashCase(const Workload& w) {
  ASSERT_GE(w.events.size(), 4 * kBatch) << "workload too small to crash";
  const std::string wal_dir = MakeTempDir("wal");
  QueryId qid = 0;
  const auto baseline = MakeSystem(w, "", 4u << 20, &qid);
  Feed(baseline.get(), w.events, 0, w.events.size());
  baseline->Flush();
  const std::string want = Fingerprint(*baseline, qid);

  const size_t crash1 = (w.events.size() / 3 / kBatch) * kBatch;
  const size_t crash2 = (2 * w.events.size() / 3 / kBatch) * kBatch;
  ASSERT_LT(crash1, crash2);
  {
    QueryId q = 0;
    auto sys = MakeSystem(w, wal_dir, 4u << 20, &q);
    Feed(sys.get(), w.events, 0, crash1);
  }  // first crash
  {
    QueryId q = 0;
    auto sys = MakeSystem(w, wal_dir, 4u << 20, &q);
    const auto rep = sys->Recover(std::string());
    ASSERT_TRUE(rep.ok()) << rep.status().ToString();
    EXPECT_EQ(rep->wal.next_seq, crash1);
    Feed(sys.get(), w.events, crash1, crash2);
    sys->Flush();
    // Post-recovery ingest keeps logging — and only logs the new events.
    EXPECT_EQ(sys->fault_stats().wal_append_failures, 0u);
    EXPECT_EQ(sys->wal()->stats().events_appended, crash2 - crash1);
  }  // second crash
  QueryId q = 0;
  auto recovered = MakeSystem(w, wal_dir, 4u << 20, &q);
  const auto rep = recovered->Recover(std::string());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->wal.next_seq, crash2);
  EXPECT_EQ(recovered->engine().events_processed(), crash2);
  Feed(recovered.get(), w.events, crash2, w.events.size());
  recovered->Flush();
  EXPECT_EQ(Fingerprint(*recovered, qid), want);
}

TEST(WalRecoveryTest, HadoopCrashRecoverCrashAgain) {
  RunDoubleCrashCase(MakeHadoopWorkload());
}
TEST(WalRecoveryTest, SupplyChainCrashRecoverCrashAgain) {
  RunDoubleCrashCase(MakeSupplyChainWorkload());
}

// Checkpointing twice into the same directory must never clobber chunk files
// the installed MANIFEST still references: if the second checkpoint dies
// before its manifest rename, the first checkpoint must still restore (the
// WAL was already truncated through it, so it is the only copy). Each
// checkpoint writes an epoch-stamped chunk set; the superseded set is
// reclaimed only after the new manifest lands.
void RunRecheckpointCase(const Workload& w, bool fault_second_manifest) {
  ASSERT_GE(w.events.size(), 4 * kBatch) << "workload too small to crash";
  const std::string wal_dir = MakeTempDir("wal");
  const std::string ckpt_dir = MakeTempDir("ckpt");
  QueryId qid = 0;
  const auto baseline = MakeSystem(w, "", 2048, &qid);
  Feed(baseline.get(), w.events, 0, w.events.size());
  baseline->Flush();
  const std::string want = Fingerprint(*baseline, qid);

  const size_t ckpt1 = (w.events.size() / 4 / kBatch) * kBatch;
  const size_t ckpt2 = (w.events.size() / 2 / kBatch) * kBatch;
  const size_t crash = (3 * w.events.size() / 4 / kBatch) * kBatch;
  ASSERT_LT(ckpt1, ckpt2);
  ASSERT_LT(ckpt2, crash);
  {
    QueryId q = 0;
    auto sys = MakeSystem(w, wal_dir, 2048, &q);
    Feed(sys.get(), w.events, 0, ckpt1);
    ASSERT_TRUE(sys->Checkpoint(ckpt_dir).ok());
    Feed(sys.get(), w.events, ckpt1, ckpt2);
    if (fault_second_manifest) {
      FaultPlan plan;
      plan.mode = FaultMode::kFailOpen;
      plan.op = FaultOp::kWrite;
      plan.path_substring = "MANIFEST";
      plan.max_hits = 1;
      FaultInjector::Global().Arm(plan);
      EXPECT_FALSE(sys->Checkpoint(ckpt_dir).ok());
      FaultInjector::Global().Disarm();
    } else {
      ASSERT_TRUE(sys->Checkpoint(ckpt_dir).ok());
    }
    Feed(sys.get(), w.events, ckpt2, crash);
  }  // crash

  QueryId q = 0;
  auto recovered = MakeSystem(w, wal_dir, 2048, &q);
  const auto rep = recovered->Recover(ckpt_dir);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_TRUE(rep->manifest_loaded);
  EXPECT_EQ(rep->checkpoint_seq, fault_second_manifest ? ckpt1 : ckpt2);
  EXPECT_EQ(recovered->engine().events_processed(), crash);
  Feed(recovered.get(), w.events, crash, w.events.size());
  recovered->Flush();
  EXPECT_EQ(Fingerprint(*recovered, qid), want);

  if (!fault_second_manifest) {
    // The first checkpoint's chunk files are garbage once the second manifest
    // is durably installed: exactly one epoch must remain in the directory.
    const auto files = ListDirFiles(ckpt_dir);
    ASSERT_TRUE(files.ok()) << files.status().ToString();
    std::string epochs;
    for (const std::string& f : *files) {
      if (f.compare(0, 6, "chunk_") != 0) continue;
      const std::string epoch = f.substr(6, f.find('_', 6) - 6);
      if (epochs.find("[" + epoch + "]") == std::string::npos) {
        epochs += "[" + epoch + "]";
      }
    }
    EXPECT_EQ(epochs, "[2]");
  }
}

TEST(WalRecoveryTest, HadoopRecheckpointSameDir) {
  RunRecheckpointCase(MakeHadoopWorkload(), false);
}
TEST(WalRecoveryTest, HadoopCrashMidSecondCheckpoint) {
  RunRecheckpointCase(MakeHadoopWorkload(), true);
}
TEST(WalRecoveryTest, SupplyChainCrashMidSecondCheckpoint) {
  RunRecheckpointCase(MakeSupplyChainWorkload(), true);
}

// The interval flusher fsyncs snapshotted FILE*s with the WAL mutex
// released; Sync() and TruncateThrough must wait out an in-flight pass
// instead of closing a handle the flusher still holds. Racing them against
// rotating appends makes a lost handoff crash under ASan/TSan.
TEST(WalRecoveryTest, FlusherSyncTruncateRace) {
  const Workload w = MakeHadoopWorkload();
  const std::string wal_dir = MakeTempDir("wal");
  WalOptions opts;
  opts.dir = wal_dir;
  opts.segment_bytes = 512;  // rotate on nearly every append
  opts.fsync = WalFsyncPolicy::kInterval;
  opts.fsync_interval_ms = 1;
  auto wal = WriteAheadLog::Open(std::move(opts));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  std::atomic<uint64_t> appended{0};
  std::atomic<bool> done{false};
  std::thread closer([&] {
    while (!done.load()) {
      (void)(*wal)->Sync();
      (void)(*wal)->TruncateThrough(appended.load());
    }
  });
  uint64_t seq = (*wal)->next_seq();
  const size_t limit = std::min<size_t>(w.events.size() - 4, 2000);
  for (size_t i = 0; i < limit; i += 4) {
    const EventBatch b(w.events.begin() + i, w.events.begin() + i + 4);
    ASSERT_TRUE((*wal)->Append(seq, b).ok());
    seq += 4;
    appended.store(seq);
  }
  done.store(true);
  closer.join();
  EXPECT_EQ((*wal)->next_seq(), seq);
}

// Kill point: a crash *during* TruncateThrough while a replication pin holds
// segments. The pin clamps truncation (segments at or past it are the only
// copy a replication resume can serve from), deletion is oldest-first and
// stops on the first failure, so however far the truncation got before dying
// the surviving log is still a contiguous prefix-trimmed stream: recovery
// must replay every sequence from some start <= pin through the end exactly
// once — the pinned tail is neither lost nor double-replayed.
TEST(WalRecoveryTest, TruncateCrashWithReplicationPin) {
  const Workload w = MakeHadoopWorkload();
  const std::string wal_dir = MakeTempDir("wal");
  constexpr uint64_t kPin = 200;
  constexpr size_t kTotal = 400;
  ASSERT_GE(w.events.size(), kTotal);
  {
    WalOptions opts;
    opts.dir = wal_dir;
    opts.segment_bytes = 512;  // many small segments below and above the pin
    opts.fsync = WalFsyncPolicy::kNone;
    auto wal = WriteAheadLog::Open(std::move(opts));
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (size_t i = 0; i < kTotal; i += 4) {
      const EventBatch b(w.events.begin() + i, w.events.begin() + i + 4);
      ASSERT_TRUE((*wal)->Append(i, b).ok());
    }
    (*wal)->SetTruncatePin(kPin);

    // The checkpoint covers everything, but the pin clamps the truncation to
    // kPin — and the unlink of the second disposable segment dies mid-loop.
    FaultPlan plan;
    plan.mode = FaultMode::kFailOpen;
    plan.op = FaultOp::kDelete;
    plan.site = "file-delete";
    plan.path_substring = ".seg";
    plan.skip = 1;  // first segment deletes fine, the second does not
    plan.max_hits = 1;
    FaultInjector::Global().Arm(plan);
    const auto deleted = (*wal)->TruncateThrough(kTotal);
    const size_t hits = FaultInjector::Global().hits();
    FaultInjector::Global().Disarm();
    EXPECT_FALSE(deleted.ok()) << "the injected unlink failure must surface";
    EXPECT_EQ(hits, 1u);
  }  // crash mid-truncation

  // Recovery sees a contiguous stream: each replayed batch continues exactly
  // where the previous one ended (no holes, no repeats), starting at or
  // below the pin and reaching the end of the log.
  uint64_t replay_start = UINT64_MAX;
  uint64_t next = UINT64_MAX;
  const auto stats = WriteAheadLog::ReplayWithSeq(
      wal_dir, 0, [&](uint64_t first_seq, EventBatch batch) {
        if (replay_start == UINT64_MAX) {
          replay_start = first_seq;
        } else {
          EXPECT_EQ(first_seq, next) << "hole or repeat in the recovered WAL";
        }
        next = first_seq + batch.size();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LE(replay_start, kPin) << "the pinned tail lost its head";
  EXPECT_EQ(next, kTotal);
  EXPECT_EQ(stats->next_seq, kTotal);

  // Reopening resumes the sequence, a still-pinned truncation keeps the tail
  // again, and clearing the pin finally reclaims the log.
  WalOptions opts;
  opts.dir = wal_dir;
  opts.segment_bytes = 512;
  opts.fsync = WalFsyncPolicy::kNone;
  auto wal = WriteAheadLog::Open(std::move(opts));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ((*wal)->next_seq(), kTotal);
  (*wal)->SetTruncatePin(kPin);
  ASSERT_TRUE((*wal)->TruncateThrough(kTotal).ok());
  uint64_t pinned_start = UINT64_MAX;
  const auto pinned = WriteAheadLog::ReplayWithSeq(
      wal_dir, 0, [&](uint64_t first_seq, EventBatch) {
        pinned_start = std::min(pinned_start, first_seq);
      });
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_LE(pinned_start, kPin);
  EXPECT_EQ(pinned->next_seq, kTotal);
  (*wal)->ClearTruncatePin();
  ASSERT_TRUE((*wal)->TruncateThrough(kTotal).ok());
  const auto files = ListDirFiles(wal_dir);
  ASSERT_TRUE(files.ok()) << files.status().ToString();
  size_t segs = 0;
  for (const std::string& f : *files) {
    if (f.size() > 4 && f.compare(f.size() - 4, 4, ".seg") == 0) ++segs;
  }
  EXPECT_EQ(segs, 1u) << "an unpinned truncation keeps only the last segment";
}

// Recover must refuse a system that already ingested events, and a system
// whose queries differ from the manifest's.
TEST(WalRecoveryTest, RecoverGuardsFreshnessAndQueryMatch) {
  const Workload w = MakeHadoopWorkload();
  const std::string wal_dir = MakeTempDir("wal");
  const std::string ckpt_dir = MakeTempDir("ckpt");
  QueryId qid = 0;
  {
    auto sys = MakeSystem(w, wal_dir, 4u << 20, &qid);
    Feed(sys.get(), w.events, 0, kBatch);
    ASSERT_TRUE(sys->Checkpoint(ckpt_dir).ok());
  }
  {
    // Not fresh: events already ingested.
    auto sys = MakeSystem(w, "", 4u << 20, &qid);
    Feed(sys.get(), w.events, 0, kBatch);
    sys->Flush();
    EXPECT_FALSE(sys->Recover(ckpt_dir).ok());
  }
  {
    // No queries added: manifest mismatch.
    XStreamConfig cfg;
    XStreamSystem sys(w.registry.get(), cfg);
    EXPECT_FALSE(sys.Recover(ckpt_dir).ok());
  }
}

// Checkpoint round-trip of a tiered archive: resident-sealed chunks rebuild
// their tiers deterministically at restore, spilled chunks reload them from
// the `.tiers` sidecar, and a raw-evicted chunk comes back still evicted —
// coarse scans keep working from tiers while exact scans keep reporting the
// resolution loss instead of silently approximating.
TEST(WalRecoveryTest, CheckpointRestoresTieredAndEvictedChunks) {
  EventTypeRegistry registry;
  ASSERT_TRUE(
      registry.Register(EventSchema("A", {{"x", ValueType::kDouble}})).ok());
  const std::string spill_dir = MakeTempDir("tier_spill");
  const std::string ckpt_dir = MakeTempDir("tier_ckpt");
  ArchiveOptions options;
  options.chunk_capacity = 8;
  options.spill_dir = spill_dir;
  options.max_resident_chunks = 2;
  options.tier_windows = {4};
  options.tier0_retention_chunks = 2;
  EventArchive archive(&registry, options);
  for (Timestamp t = 0; t < 120; ++t) {
    ASSERT_TRUE(
        archive.Append(Event(0, t, {Value(static_cast<double>(t))})).ok());
  }
  ASSERT_GT(archive.tier0_evictions(), 0u);

  BytesWriter snapshot;
  auto epoch = archive.CheckpointTo(ckpt_dir, &snapshot);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  EventArchive restored(&registry, options);
  BytesReader reader(snapshot.str());
  ASSERT_TRUE(restored.RestoreFrom(&reader).ok());
  EXPECT_EQ(restored.TotalEvents(), archive.TotalEvents());
  EXPECT_EQ(restored.NumChunks(0), archive.NumChunks(0));

  // The original and the restored archive degrade identically on exact scans
  // (same chunks evicted) ...
  DegradationReport orig_deg;
  DegradationReport rest_deg;
  auto orig_exact = archive.Scan(0, {0, 119}, &orig_deg);
  auto rest_exact = restored.Scan(0, {0, 119}, &rest_deg);
  ASSERT_TRUE(orig_exact.ok());
  ASSERT_TRUE(rest_exact.ok());
  EXPECT_GT(rest_deg.resolution_degraded, 0u);
  EXPECT_EQ(rest_deg.resolution_degraded, orig_deg.resolution_degraded);
  EXPECT_EQ(rest_deg.events_lost_estimate, orig_deg.events_lost_estimate);
  ASSERT_EQ(rest_exact->size(), orig_exact->size());
  for (size_t i = 0; i < rest_exact->size(); ++i) {
    EXPECT_EQ((*rest_exact)[i].ts, (*orig_exact)[i].ts);
    EXPECT_EQ((*rest_exact)[i].values[0].AsDouble(),
              (*orig_exact)[i].values[0].AsDouble());
  }

  // ... and a resolution-aligned scan over the restored archive still covers
  // every appended row from tiers plus surviving raw chunks, bit-identically
  // to the pre-checkpoint aggregates.
  auto cover = [](const ScanView& view) {
    size_t rows = view.rows();
    double sum = 0.0;
    for (const auto& seg : view.segments) {
      for (size_t i = seg.begin; i < seg.end; ++i) {
        sum += seg.columns->attr(0).nums[i];
      }
    }
    for (const auto& seg : view.tier_segments) {
      for (size_t i = seg.begin; i < seg.end; ++i) {
        rows += seg.tier->attrs[0].count[i];
        sum += seg.tier->attrs[0].sum[i];
      }
    }
    return std::pair<size_t, double>(rows, sum);
  };
  DegradationReport tier_deg;
  auto orig_tiered = archive.ScanColumns(0, {0, 119}, nullptr, nullptr, 4);
  auto rest_tiered = restored.ScanColumns(0, {0, 119}, &tier_deg, nullptr, 4);
  ASSERT_TRUE(orig_tiered.ok());
  ASSERT_TRUE(rest_tiered.ok());
  EXPECT_FALSE(tier_deg.degraded());
  const auto orig_cover = cover(*orig_tiered);
  const auto rest_cover = cover(*rest_tiered);
  EXPECT_EQ(orig_cover.first, 120u);
  EXPECT_EQ(rest_cover.first, 120u);
  EXPECT_EQ(rest_cover.second, orig_cover.second);  // bitwise
}

}  // namespace
}  // namespace exstream
