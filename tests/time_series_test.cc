#include "ts/time_series.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

TimeSeries Make(std::vector<Timestamp> ts, std::vector<double> vs) {
  return TimeSeries(std::move(ts), std::move(vs));
}

TEST(TimeSeriesTest, AppendMaintainsOrder) {
  TimeSeries s;
  EXPECT_TRUE(s.Append(1, 1.0).ok());
  EXPECT_TRUE(s.Append(1, 2.0).ok());  // equal timestamps allowed
  EXPECT_TRUE(s.Append(5, 3.0).ok());
  EXPECT_FALSE(s.Append(4, 4.0).ok());  // out of order rejected
  EXPECT_EQ(s.size(), 3u);
}

TEST(TimeSeriesTest, NaNDropped) {
  TimeSeries s;
  EXPECT_TRUE(s.Append(1, std::nan("")).ok());
  EXPECT_TRUE(s.empty());
}

TEST(TimeSeriesTest, Frequency) {
  const TimeSeries s = Make({0, 10, 20, 30}, {1, 1, 1, 1});
  EXPECT_NEAR(s.Frequency(), 4.0 / 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(Make({5}, {1}).Frequency(), 0.0);
  EXPECT_DOUBLE_EQ(Make({5, 5}, {1, 2}).Frequency(), 0.0);  // zero span
}

TEST(TimeSeriesTest, SliceInclusiveBounds) {
  const TimeSeries s = Make({0, 10, 20, 30, 40}, {0, 1, 2, 3, 4});
  const TimeSeries cut = s.Slice({10, 30});
  ASSERT_EQ(cut.size(), 3u);
  EXPECT_EQ(cut.time(0), 10);
  EXPECT_EQ(cut.time(2), 30);
  EXPECT_DOUBLE_EQ(cut.value(1), 2.0);
}

TEST(TimeSeriesTest, SliceEmptyWhenDisjoint) {
  const TimeSeries s = Make({0, 10}, {0, 1});
  EXPECT_TRUE(s.Slice({100, 200}).empty());
}

TEST(TimeSeriesTest, InterpolateClampsAndInterpolates) {
  const TimeSeries s = Make({0, 10}, {0, 100});
  EXPECT_DOUBLE_EQ(s.InterpolateAt(-5), 0.0);
  EXPECT_DOUBLE_EQ(s.InterpolateAt(15), 100.0);
  EXPECT_DOUBLE_EQ(s.InterpolateAt(5), 50.0);
  EXPECT_DOUBLE_EQ(s.InterpolateAt(10), 100.0);  // exact hit
  EXPECT_DOUBLE_EQ(TimeSeries().InterpolateAt(3), 0.0);
}

TEST(TimeSeriesTest, ResampleEndpointsPreserved) {
  const TimeSeries s = Make({0, 10, 20}, {0, 10, 40});
  const TimeSeries r = s.Resample(5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r.time(0), 0);
  EXPECT_EQ(r.time(4), 20);
  EXPECT_DOUBLE_EQ(r.value(0), 0.0);
  EXPECT_DOUBLE_EQ(r.value(4), 40.0);
  EXPECT_DOUBLE_EQ(r.value(2), 10.0);  // midpoint
}

TEST(TimeSeriesTest, ResampleDegenerateInputs) {
  EXPECT_TRUE(TimeSeries().Resample(4).empty());
  const TimeSeries single = Make({7}, {3.5});
  const TimeSeries r = single.Resample(3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r.value(2), 3.5);
}

TEST(TimeSeriesTest, ZNormalize) {
  const TimeSeries s = Make({0, 1, 2, 3}, {2, 4, 4, 6});
  const auto z = s.ZNormalizedValues();
  double mean = 0;
  for (double v : z) mean += v;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  // Constant series maps to zeros.
  const auto zc = Make({0, 1}, {5, 5}).ZNormalizedValues();
  EXPECT_DOUBLE_EQ(zc[0], 0.0);
  EXPECT_DOUBLE_EQ(zc[1], 0.0);
}

TEST(TimeSeriesTest, ToStringTruncates) {
  TimeSeries s;
  for (int i = 0; i < 20; ++i) (void)s.Append(i, i);
  const std::string str = s.ToString(4);
  EXPECT_NE(str.find("n=20"), std::string::npos);
  EXPECT_NE(str.find("..."), std::string::npos);
}

// Property-style sweep: slicing then re-slicing with the same interval is
// idempotent, and resampled series stay within the original value envelope.
class TimeSeriesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimeSeriesPropertyTest, SliceIdempotentAndResampleBounded) {
  Rng rng(GetParam());
  TimeSeries s;
  Timestamp t = 0;
  for (int i = 0; i < 200; ++i) {
    t += rng.UniformInt(1, 5);
    ASSERT_TRUE(s.Append(t, rng.Gaussian(10, 3)).ok());
  }
  const TimeInterval iv{t / 4, 3 * t / 4};
  const TimeSeries once = s.Slice(iv);
  const TimeSeries twice = once.Slice(iv);
  EXPECT_EQ(once.size(), twice.size());

  const TimeSeries r = s.Resample(64);
  ASSERT_EQ(r.size(), 64u);
  double lo = 1e18;
  double hi = -1e18;
  for (double v : s.values()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : r.values()) {
    EXPECT_GE(v, lo - 1e-9);
    EXPECT_LE(v, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeSeriesPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace exstream
