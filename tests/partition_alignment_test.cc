#include <gtest/gtest.h>

#include "explain/alignment.h"
#include "explain/partition_table.h"

namespace exstream {
namespace {

PartitionRecord Record(const char* partition, Timestamp start, Timestamp end,
                       size_t points,
                       std::map<std::string, std::string> dims = {{"p", "x"}}) {
  PartitionRecord rec;
  rec.query_name = "Q1";
  rec.partition = partition;
  rec.dimensions = std::move(dims);
  rec.start_ts = start;
  rec.end_ts = end;
  rec.num_points = points;
  return rec;
}

TEST(PartitionTableTest, UpsertAndGet) {
  PartitionTable table;
  table.Upsert(Record("j1", 0, 100, 50));
  EXPECT_EQ(table.size(), 1u);
  auto rec = table.Get("Q1", "j1");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->num_points, 50u);
  // Upsert replaces.
  table.Upsert(Record("j1", 0, 100, 60));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Get("Q1", "j1")->num_points, 60u);
  EXPECT_TRUE(table.Get("Q1", "nope").status().IsNotFound());
}

TEST(PartitionTableTest, FindRelatedMatchesDimensions) {
  PartitionTable table;
  table.Upsert(Record("j1", 0, 100, 50));
  table.Upsert(Record("j2", 200, 300, 55));
  table.Upsert(Record("j3", 400, 500, 52, {{"p", "OTHER"}}));  // different dims
  const auto related = table.FindRelated(Record("j1", 0, 100, 50));
  ASSERT_EQ(related.size(), 1u);
  EXPECT_EQ(related[0].partition, "j2");  // j3 excluded, self excluded
}

TEST(PartitionTableTest, DifferentQueryNotRelated) {
  PartitionTable table;
  auto rec = Record("j2", 0, 1, 1);
  rec.query_name = "Q2";
  table.Upsert(rec);
  EXPECT_TRUE(table.FindRelated(Record("j1", 0, 1, 1)).empty());
}

TimeSeries UniformSeries(Timestamp start, Timestamp end, Timestamp step) {
  TimeSeries s;
  for (Timestamp t = start; t <= end; t += step) (void)s.Append(t, 1.0);
  return s;
}

TEST(AlignmentTest, ModeSelectionPaperExample) {
  // "If a related partition has 10% more points, but is 50% longer in time,
  //  point-based alignment is preferred."
  const PartitionRecord annotated = Record("a", 0, 1000, 1000);
  const PartitionRecord related = Record("b", 0, 1500, 1100);
  EXPECT_EQ(ChooseAlignmentMode(annotated, related), AlignmentMode::kPointBased);
  // And vice versa.
  const PartitionRecord related2 = Record("c", 0, 1100, 1500);
  EXPECT_EQ(ChooseAlignmentMode(annotated, related2), AlignmentMode::kTemporal);
}

TEST(AlignmentTest, TemporalMapsFractions) {
  // Annotation covers 31% of the annotated partition: [310, 620] of [0,1000].
  const PartitionRecord annotated = Record("a", 0, 1000, 10);
  const PartitionRecord related = Record("b", 5000, 7000, 500);  // duration 2000
  const TimeSeries a_series = UniformSeries(0, 1000, 100);
  const TimeSeries r_series = UniformSeries(5000, 7000, 4);
  auto aligned =
      AlignAnnotation(annotated, a_series, {310, 620}, related, r_series);
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->mode, AlignmentMode::kTemporal);
  EXPECT_EQ(aligned->range.lower, 5620);
  EXPECT_EQ(aligned->range.upper, 6240);
}

TEST(AlignmentTest, PointBasedMapsPointFractions) {
  // Annotated: 100 points over [0,99]; annotation covers the first 25 points.
  // Related: 100 points over [1000, 1990] (same count, longer duration ->
  // point-based preferred), so the aligned interval covers its first 25
  // points: [1000, 1240].
  const PartitionRecord annotated = Record("a", 0, 99, 100);
  const PartitionRecord related = Record("b", 1000, 1990, 100);
  const TimeSeries a_series = UniformSeries(0, 99, 1);
  const TimeSeries r_series = UniformSeries(1000, 1990, 10);
  auto aligned = AlignAnnotation(annotated, a_series, {0, 24}, related, r_series);
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->mode, AlignmentMode::kPointBased);
  EXPECT_EQ(aligned->range.lower, 1000);
  EXPECT_EQ(aligned->range.upper, 1240);
}

TEST(AlignmentTest, DegenerateInputsRejected) {
  const PartitionRecord empty = Record("a", 5, 5, 0);
  const PartitionRecord ok = Record("b", 0, 10, 5);
  const TimeSeries s = UniformSeries(0, 10, 1);
  EXPECT_FALSE(AlignAnnotation(empty, s, {5, 5}, ok, s).ok());
}

TEST(AlignmentTest, ModeNames) {
  EXPECT_EQ(AlignmentModeToString(AlignmentMode::kTemporal), "temporal");
  EXPECT_EQ(AlignmentModeToString(AlignmentMode::kPointBased), "point-based");
}

}  // namespace
}  // namespace exstream
