#include "ml/mutual_info.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

TEST(MutualInfoTest, PerfectPredictorIsOneBit) {
  // Balanced binary label perfectly predicted by the feature: MI = 1 bit.
  std::vector<int> f;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    f.push_back(i % 2);
    y.push_back(i % 2);
  }
  EXPECT_NEAR(MutualInformation(f, y), 1.0, 1e-9);
}

TEST(MutualInfoTest, IndependentIsNearZero) {
  Rng rng(1);
  std::vector<int> f;
  std::vector<int> y;
  for (int i = 0; i < 5000; ++i) {
    f.push_back(static_cast<int>(rng.UniformInt(0, 7)));
    y.push_back(rng.Chance(0.5) ? 1 : 0);
  }
  EXPECT_LT(MutualInformation(f, y), 0.01);
}

TEST(MutualInfoTest, JointNeverBelowBestSingle) {
  Rng rng(2);
  std::vector<int> a;
  std::vector<int> b;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    const int label = rng.Chance(0.5) ? 1 : 0;
    a.push_back(rng.Chance(0.8) ? label : 1 - label);
    b.push_back(rng.Chance(0.6) ? label : 1 - label);
    y.push_back(label);
  }
  const double single_a = MutualInformation(a, y);
  const double joint = JointMutualInformation({&a, &b}, y);
  EXPECT_GE(joint, single_a - 1e-9);
  EXPECT_LE(joint, 1.0 + 1e-9);  // bounded by H(label)
}

TEST(MutualInfoTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(MutualInformation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JointMutualInformation({}, {0, 1}), 0.0);
}

Dataset CurveData(uint64_t seed) {
  // Two informative features (one strong, one weak) and several noise ones.
  Rng rng(seed);
  Dataset data;
  data.feature_names = {"strong", "weak", "n1", "n2", "n3", "n4"};
  for (int i = 0; i < 300; ++i) {
    const int y = i % 2;
    data.rows.push_back({y == 1 ? rng.Gaussian(4, 1) : rng.Gaussian(-4, 1),
                         y == 1 ? rng.Gaussian(1, 1.5) : rng.Gaussian(-1, 1.5),
                         rng.Gaussian(0, 1), rng.Gaussian(0, 1),
                         rng.Gaussian(0, 1), rng.Gaussian(0, 1)});
    data.labels.push_back(y);
  }
  return data;
}

TEST(MiCurveTest, GreedyPicksStrongFirst) {
  const Dataset data = CurveData(3);
  const MiGainCurve curve =
      ComputeMiGainCurve(data, MiStrategy::kGreedyFirstTie, {8, 6, 7});
  ASSERT_FALSE(curve.order.empty());
  EXPECT_EQ(curve.order[0], "strong");
  // Accumulated MI is non-decreasing.
  for (size_t i = 1; i < curve.accumulated_mi.size(); ++i) {
    EXPECT_GE(curve.accumulated_mi[i], curve.accumulated_mi[i - 1] - 1e-9);
  }
}

TEST(MiCurveTest, GreedyDominatesReverseEarly) {
  const Dataset data = CurveData(4);
  const MiGainCurve greedy =
      ComputeMiGainCurve(data, MiStrategy::kGreedyFirstTie, {8, 3, 7});
  const MiGainCurve reverse =
      ComputeMiGainCurve(data, MiStrategy::kReverseRank, {8, 3, 7});
  ASSERT_GE(greedy.accumulated_mi.size(), 1u);
  ASSERT_GE(reverse.accumulated_mi.size(), 1u);
  EXPECT_GT(greedy.accumulated_mi[0], reverse.accumulated_mi[0]);
}

TEST(MiCurveTest, RandomIsSeededDeterministic) {
  const Dataset data = CurveData(5);
  MiCurveOptions options;
  options.random_seed = 99;
  const auto a = ComputeMiGainCurve(data, MiStrategy::kRandom, options);
  const auto b = ComputeMiGainCurve(data, MiStrategy::kRandom, options);
  EXPECT_EQ(a.order, b.order);
}

TEST(MiCurveTest, MaxFeaturesRespected) {
  const Dataset data = CurveData(6);
  MiCurveOptions options;
  options.max_features = 3;
  const auto curve = ComputeMiGainCurve(data, MiStrategy::kSingleMiRank, options);
  EXPECT_EQ(curve.order.size(), 3u);
}

TEST(MiCurveTest, LevelOffIndex) {
  MiGainCurve curve;
  curve.accumulated_mi = {0.5, 0.9, 1.0, 1.0, 1.0};
  EXPECT_EQ(LevelOffIndex(curve), 3u);  // after index 2 gains vanish
  MiGainCurve rising;
  rising.accumulated_mi = {0.1, 0.2, 0.3};
  EXPECT_EQ(LevelOffIndex(rising), 3u);
  EXPECT_EQ(LevelOffIndex(MiGainCurve{}), 0u);
}

TEST(MiCurveTest, StrategyNames) {
  EXPECT_EQ(MiStrategyToString(MiStrategy::kGreedyFirstTie), "greedy(first-tie)");
  EXPECT_EQ(MiStrategyToString(MiStrategy::kRandom), "random");
}

}  // namespace
}  // namespace exstream
