#include "ml/dataset.h"

#include <gtest/gtest.h>

namespace exstream {
namespace {

Feature MakeFeature(const char* type, const char* attr, std::vector<double> values,
                    Timestamp start = 0) {
  Feature f;
  f.spec.event_type_name = type;
  f.spec.attribute_name = attr;
  f.spec.agg = AggregateKind::kRaw;
  for (size_t i = 0; i < values.size(); ++i) {
    (void)f.series.Append(start + static_cast<Timestamp>(i), values[i]);
  }
  return f;
}

TEST(DatasetTest, BuildBalancedRows) {
  std::vector<Feature> abnormal = {MakeFeature("M", "x", {1, 1, 1, 1})};
  std::vector<Feature> reference = {MakeFeature("M", "x", {9, 9, 9, 9}, 100)};
  auto data = BuildDataset(abnormal, reference, 8);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_rows(), 16u);
  EXPECT_EQ(data->num_features(), 1u);
  size_t positives = 0;
  for (int y : data->labels) positives += static_cast<size_t>(y);
  EXPECT_EQ(positives, 8u);
  EXPECT_EQ(data->feature_names[0], "M.x.raw");
  // Abnormal rows sample the abnormal values.
  EXPECT_DOUBLE_EQ(data->rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(data->rows[8][0], 9.0);
}

TEST(DatasetTest, MismatchedSpecsRejected) {
  std::vector<Feature> abnormal = {MakeFeature("M", "x", {1})};
  std::vector<Feature> reference = {MakeFeature("M", "y", {2})};
  EXPECT_FALSE(BuildDataset(abnormal, reference, 4).ok());
  std::vector<Feature> fewer;
  EXPECT_FALSE(BuildDataset(abnormal, fewer, 4).ok());
}

TEST(DatasetTest, EmptyFeatureContributesZeros) {
  std::vector<Feature> abnormal = {MakeFeature("M", "x", {5, 5}),
                                   MakeFeature("M", "y", {})};
  std::vector<Feature> reference = {MakeFeature("M", "x", {7, 7}, 10),
                                    MakeFeature("M", "y", {}, 10)};
  auto data = BuildDataset(abnormal, reference, 4);
  ASSERT_TRUE(data.ok());
  for (const auto& row : data->rows) EXPECT_DOUBLE_EQ(row[1], 0.0);
}

TEST(DatasetTest, StandardizerZeroMeansUnitVariance) {
  Dataset data;
  data.feature_names = {"a", "b"};
  data.rows = {{1, 100}, {2, 200}, {3, 300}, {4, 400}};
  data.labels = {0, 0, 1, 1};
  Standardizer st;
  st.FitTransform(&data);
  double mean_a = 0;
  for (const auto& row : data.rows) mean_a += row[0];
  EXPECT_NEAR(mean_a / 4.0, 0.0, 1e-12);
  // Transform of a new row uses the fitted parameters.
  const auto transformed = st.TransformRow({2.5, 250});
  EXPECT_NEAR(transformed[0], 0.0, 1e-12);
}

TEST(DatasetTest, StandardizerConstantColumnMapsToZero) {
  Dataset data;
  data.feature_names = {"c"};
  data.rows = {{5}, {5}, {5}};
  data.labels = {0, 1, 0};
  Standardizer st;
  st.FitTransform(&data);
  for (const auto& row : data.rows) EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(DatasetTest, SplitKeepsClassBalanceDeterministically) {
  Dataset data;
  data.feature_names = {"f"};
  for (int i = 0; i < 20; ++i) {
    data.rows.push_back({static_cast<double>(i)});
    data.labels.push_back(i < 10 ? 0 : 1);
  }
  Dataset train;
  Dataset test;
  SplitDataset(data, 5, &train, &test);
  EXPECT_EQ(train.num_rows(), 16u);
  EXPECT_EQ(test.num_rows(), 4u);
  size_t test_pos = 0;
  for (int y : test.labels) test_pos += static_cast<size_t>(y);
  EXPECT_EQ(test_pos, 2u);  // 2 of each class held out
}

}  // namespace
}  // namespace exstream
