#include "io/csv.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace exstream {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Cpu", {{"node", ValueType::kInt64},
                                                  {"usage", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Log", {{"msg", ValueType::kString}}))
                    .ok());
  }

  EventTypeRegistry registry_;
};

TEST_F(CsvTest, ParsesTypedRows) {
  const char* text =
      "Cpu,10,3,55.5\n"
      "Log,11,hello\n"
      "Cpu,12,4,60\n";
  auto parsed = ParseCsvEvents(text, registry_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->events.size(), 3u);
  const Event& cpu = parsed->events[0];
  EXPECT_EQ(cpu.ts, 10);
  EXPECT_EQ(cpu.values[0].AsInt64(), 3);
  EXPECT_DOUBLE_EQ(cpu.values[1].AsDouble(), 55.5);
  EXPECT_EQ(parsed->events[1].values[0].AsString(), "hello");
}

TEST_F(CsvTest, QuotedStringsWithEscapes) {
  const char* text = "Log,5,\"a, \"\"quoted\"\" value\"\n";
  auto parsed = ParseCsvEvents(text, registry_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->events[0].values[0].AsString(), "a, \"quoted\" value");
}

TEST_F(CsvTest, HeaderSkippedWhenConfigured) {
  const char* text =
      "eventType,timestamp,msg\n"
      "Log,1,x\n";
  CsvOptions options;
  options.has_header = true;
  auto parsed = ParseCsvEvents(text, registry_, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->events.size(), 1u);
}

TEST_F(CsvTest, BlankLinesIgnored) {
  auto parsed = ParseCsvEvents("\nLog,1,a\n\n\nLog,2,b\n", registry_);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->events.size(), 2u);
}

TEST_F(CsvTest, ErrorsAreDiagnosedWithLineNumbers) {
  // Unknown type (strict).
  auto unknown = ParseCsvEvents("Nope,1,2\n", registry_);
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("line 1"), std::string::npos);
  // Arity mismatch.
  EXPECT_FALSE(ParseCsvEvents("Cpu,1,2\n", registry_).ok());
  // Bad number.
  EXPECT_FALSE(ParseCsvEvents("Cpu,1,x,2\n", registry_).ok());
  // Bad timestamp.
  EXPECT_FALSE(ParseCsvEvents("Cpu,abc,1,2\n", registry_).ok());
  // Too few columns.
  EXPECT_FALSE(ParseCsvEvents("Cpu\n", registry_).ok());
  // Unterminated quote.
  EXPECT_FALSE(ParseCsvEvents("Log,1,\"oops\n", registry_).ok());
}

TEST_F(CsvTest, NonStrictSkipsUnknownTypes) {
  CsvOptions options;
  options.strict = false;
  auto parsed = ParseCsvEvents("Nope,1,2\nLog,2,ok\n", registry_, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->skipped_rows, 1u);
}

TEST_F(CsvTest, RoundTrip) {
  std::vector<Event> events;
  events.emplace_back(0, 7,
                      std::vector<Value>{Value(int64_t{1}), Value(2.25)});
  events.emplace_back(1, 8, std::vector<Value>{Value("tricky, \"msg\"")});
  const std::string csv = FormatCsvEvents(events, registry_);
  auto parsed = ParseCsvEvents(csv, registry_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->events.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed->events[0].values[1].AsDouble(), 2.25);
  EXPECT_EQ(parsed->events[1].values[0].AsString(), "tricky, \"msg\"");
}

TEST_F(CsvTest, FileRoundTrip) {
  char tmpl[] = "/tmp/exstream_csv_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/events.csv";
  std::vector<Event> events;
  for (Timestamp t = 0; t < 32; ++t) {
    events.emplace_back(0, t,
                        std::vector<Value>{Value(t % 4), Value(t * 1.5)});
  }
  ASSERT_TRUE(WriteCsvEventsFile(path, events, registry_).ok());
  auto parsed = ReadCsvEventsFile(path, registry_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->events.size(), 32u);
  EXPECT_DOUBLE_EQ(parsed->events[31].values[1].AsDouble(), 46.5);
  EXPECT_TRUE(ReadCsvEventsFile("/no/such/file.csv", registry_).status().IsIOError());
}

TEST_F(CsvTest, PermissiveCountsEveryKindOfBadRow) {
  CsvOptions options;
  options.permissive = true;
  const std::string_view text =
      "Cpu,1,3,0.5\n"    // good
      "Cpu,2,3\n"        // wrong arity
      "Cpu,3,x,0.5\n"    // unparsable number
      "Cpu,abc,3,0.5\n"  // bad timestamp
      "Nope,4,7\n"       // unknown type
      "Log,5,ok\n";      // good
  auto parsed = ParseCsvEvents(text, registry_, options);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->events.size(), 2u);
  EXPECT_EQ(parsed->rejected_rows, 4u);
  ASSERT_EQ(parsed->row_errors.size(), 4u);
  // Each error carries the offending line and a parse diagnosis.
  EXPECT_EQ(parsed->row_errors[0].line_no, 2u);
  EXPECT_NE(parsed->row_errors[0].status.ToString().find("attribute columns"),
            std::string::npos);
  EXPECT_EQ(parsed->row_errors[1].line_no, 3u);
  EXPECT_EQ(parsed->row_errors[2].line_no, 4u);
  EXPECT_NE(parsed->row_errors[2].status.ToString().find("timestamp"),
            std::string::npos);
  EXPECT_EQ(parsed->row_errors[3].line_no, 5u);
  EXPECT_NE(parsed->row_errors[3].status.ToString().find("unknown event type"),
            std::string::npos);
  // The good rows parse exactly as they would alone.
  EXPECT_EQ(parsed->events[0].ts, 1);
  EXPECT_EQ(parsed->events[1].values[0].ToString(), "ok");
}

TEST_F(CsvTest, PermissiveCapsStoredRowErrors) {
  CsvOptions options;
  options.permissive = true;
  std::string text;
  for (int i = 0; i < 150; ++i) text += "Cpu,1,bad,0.5\n";
  auto parsed = ParseCsvEvents(text, registry_, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rejected_rows, 150u);  // every row is counted...
  EXPECT_EQ(parsed->row_errors.size(), CsvParseResult::kMaxRowErrors);
}

TEST_F(CsvTest, PermissiveOverridesStrictButLegacyModesUnchanged) {
  // permissive wins over strict.
  CsvOptions options;
  options.permissive = true;
  options.strict = true;
  auto parsed = ParseCsvEvents("Nope,1,2\nLog,2,ok\n", registry_, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(parsed->rejected_rows, 1u);
  EXPECT_EQ(parsed->skipped_rows, 0u);

  // Legacy strict: first bad row fails the parse outright.
  EXPECT_FALSE(ParseCsvEvents("Nope,1,2\nLog,2,ok\n", registry_).ok());

  // Legacy non-strict: unknown types skip, malformed rows still fail.
  CsvOptions lenient;
  lenient.strict = false;
  auto skipped = ParseCsvEvents("Nope,1,2\nLog,2,ok\n", registry_, lenient);
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped->skipped_rows, 1u);
  EXPECT_EQ(skipped->rejected_rows, 0u);
  EXPECT_FALSE(ParseCsvEvents("Cpu,1,x,0.5\n", registry_, lenient).ok());
}

}  // namespace
}  // namespace exstream
