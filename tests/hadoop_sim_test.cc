#include "sim/hadoop_sim.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "common/stats.h"

namespace exstream {
namespace {

class HadoopSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry_).ok());
  }

  HadoopSimConfig SmallConfig() {
    HadoopSimConfig config;
    config.num_nodes = 3;
    config.seed = 11;
    return config;
  }

  HadoopJobConfig Job(const char* id, Timestamp start = 0) {
    HadoopJobConfig job;
    job.job_id = id;
    job.program = "p";
    job.dataset = "d";
    job.start_time = start;
    return job;
  }

  EventTypeRegistry registry_;
};

TEST_F(HadoopSimTest, RegistersAllEventTypes) {
  for (const char* name : {"JobStart", "JobEnd", "DataIO", "MapStart", "MapFinish",
                           "PullStart", "PullFinish", "CpuUsage", "MemUsage",
                           "DiskUsage", "NetUsage"}) {
    EXPECT_TRUE(registry_.Contains(name)) << name;
  }
  // Idempotent.
  EXPECT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry_).ok());
}

TEST_F(HadoopSimTest, EventsAreTimeOrderedAndSchemaValid) {
  HadoopClusterSim sim(SmallConfig(), &registry_);
  sim.AddJob(Job("j1"));
  VectorSink sink;
  auto completions = sim.Run(&sink);
  ASSERT_TRUE(completions.ok());
  ASSERT_FALSE(sink.events().empty());
  Timestamp prev = sink.events().front().ts;
  for (const Event& e : sink.events()) {
    EXPECT_GE(e.ts, prev);
    prev = e.ts;
    ASSERT_LT(e.type, registry_.size());
    EXPECT_TRUE(registry_.schema(e.type).ValidateRow(e.values).ok())
        << registry_.schema(e.type).name();
  }
}

TEST_F(HadoopSimTest, QueuingCurveShape) {
  // Fig. 1(a): the cumulative DataIO sum rises to a peak and returns to ~0.
  HadoopClusterSim sim(SmallConfig(), &registry_);
  sim.AddJob(Job("j1"));
  VectorSink sink;
  ASSERT_TRUE(sim.Run(&sink).ok());

  const EventTypeId data_io = *registry_.IdOf("DataIO");
  const size_t size_idx = *registry_.schema(data_io).AttributeIndex("dataSize");
  double queue = 0;
  double peak = 0;
  for (const Event& e : sink.events()) {
    if (e.type != data_io) continue;
    queue += e.values[size_idx].AsDouble();
    peak = std::max(peak, queue);
  }
  EXPECT_GT(peak, 50.0);          // a real peak forms
  EXPECT_NEAR(queue, 0.0, 1e-6);  // everything produced is consumed
}

TEST_F(HadoopSimTest, AnomalySlowsJobDown) {
  Timestamp normal_end = 0;
  VectorSink normal_sink;
  {
    HadoopClusterSim sim(SmallConfig(), &registry_);
    sim.AddJob(Job("j1"));
    auto completions = sim.Run(&normal_sink);
    ASSERT_TRUE(completions.ok());
    normal_end = (*completions)[0].second;
  }
  VectorSink slow_sink;
  {
    HadoopClusterSim sim(SmallConfig(), &registry_);
    sim.AddJob(Job("j1"));
    AnomalySpec anomaly;
    anomaly.type = AnomalyType::kHighMemory;
    anomaly.start = 60;
    anomaly.end = 360;
    sim.AddAnomaly(anomaly);
    auto completions = sim.Run(&slow_sink);
    ASSERT_TRUE(completions.ok());
    // Fig. 1(b): completion delayed by hundreds of seconds.
    EXPECT_GT((*completions)[0].second, normal_end + 150);
  }
}

TEST_F(HadoopSimTest, HighMemoryShiftsMemoryMetrics) {
  HadoopClusterSim sim(SmallConfig(), &registry_);
  sim.AddJob(Job("j1"));
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 100;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  VectorSink sink;
  ASSERT_TRUE(sim.Run(&sink).ok());

  const EventTypeId mem = *registry_.IdOf("MemUsage");
  const size_t free_idx = *registry_.schema(mem).AttributeIndex("memFree");
  std::vector<double> during;
  std::vector<double> outside;
  for (const Event& e : sink.events()) {
    if (e.type != mem) continue;
    const double v = e.values[free_idx].AsDouble();
    if (e.ts >= 150 && e.ts <= 300) {
      during.push_back(v);
    } else if (e.ts < 100 || e.ts > 450) {
      outside.push_back(v);
    }
  }
  ASSERT_FALSE(during.empty());
  ASSERT_FALSE(outside.empty());
  EXPECT_LT(Mean(during), Mean(outside) * 0.5);  // memory visibly depleted
}

TEST_F(HadoopSimTest, AnomalyShiftRespectsNodeList) {
  HadoopSimConfig config = SmallConfig();
  HadoopClusterSim sim(config, &registry_);
  sim.AddJob(Job("j1"));
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighCpu;
  anomaly.start = 100;
  anomaly.end = 400;
  anomaly.nodes = {0};  // only node 0 affected
  sim.AddAnomaly(anomaly);
  VectorSink sink;
  ASSERT_TRUE(sim.Run(&sink).ok());

  const EventTypeId cpu = *registry_.IdOf("CpuUsage");
  const size_t node_idx = *registry_.schema(cpu).AttributeIndex("clusterNodeNumber");
  const size_t idle_idx = *registry_.schema(cpu).AttributeIndex("cpuIdle");
  std::vector<double> node0;
  std::vector<double> node1;
  for (const Event& e : sink.events()) {
    if (e.type != cpu || e.ts < 150 || e.ts > 400) continue;
    (e.values[node_idx].AsInt64() == 0 ? node0 : node1)
        .push_back(e.values[idle_idx].AsDouble());
  }
  ASSERT_FALSE(node0.empty());
  ASSERT_FALSE(node1.empty());
  EXPECT_LT(Mean(node0), Mean(node1) * 0.6);
}

TEST_F(HadoopSimTest, DeterministicForSameSeed) {
  auto run_once = [&]() {
    HadoopClusterSim sim(SmallConfig(), &registry_);
    sim.AddJob(Job("j1"));
    VectorSink sink;
    EXPECT_TRUE(sim.Run(&sink).ok());
    return sink.TakeEvents();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST_F(HadoopSimTest, GroundTruthSignalsDefined) {
  for (AnomalyType t : {AnomalyType::kHighMemory, AnomalyType::kHighCpu,
                        AnomalyType::kBusyDisk, AnomalyType::kBusyNetwork}) {
    EXPECT_GE(AnomalyGroundTruthSignals(t).size(), 2u);
  }
  EXPECT_TRUE(AnomalyGroundTruthSignals(AnomalyType::kNone).empty());
}

}  // namespace
}  // namespace exstream
