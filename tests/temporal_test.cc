#include "explain/temporal.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

// A noisy step at time `step_at`, sampled every `period` in [0, 1000].
TimeSeries Step(Timestamp step_at, double low, double high, uint64_t seed,
                Timestamp period = 5) {
  Rng rng(seed);
  TimeSeries s;
  for (Timestamp t = 0; t <= 1000; t += period) {
    (void)s.Append(t, (t < step_at ? low : high) + rng.Gaussian(0, 0.05));
  }
  return s;
}

TEST(TemporalTest, ZeroLagCorrelationOfAlignedSteps) {
  const TimeSeries a = Step(500, 0, 10, 1);
  const TimeSeries b = Step(500, 5, 25, 2);
  EXPECT_GT(LaggedCorrelation(a, b, 0), 0.8);
}

TEST(TemporalTest, BestLagRecoversTheShift) {
  // Feature steps at t=400, target at t=460: the feature LEADS by 60, so the
  // best alignment shifts the feature forward (+60).
  const TimeSeries feature = Step(400, 0, 10, 3);
  const TimeSeries target = Step(460, 0, 10, 4);
  TemporalOptions options;
  options.max_lag = 100;
  options.lag_step = 10;
  const LagCorrelation best = BestLag(feature, target, options);
  EXPECT_NEAR(static_cast<double>(best.lag), 60.0, 20.0);
  EXPECT_GT(best.correlation, 0.5);
}

TEST(TemporalTest, LeadScoreSigns) {
  TemporalOptions options;
  options.max_lag = 100;
  options.lag_step = 10;
  const TimeSeries monitored = Step(500, 0, 10, 5);
  const TimeSeries leading = Step(440, 0, 10, 6);   // changes before
  const TimeSeries trailing = Step(560, 0, 10, 7);  // changes after
  EXPECT_GT(LeadScore(leading, monitored, options), 0.1);
  EXPECT_LT(LeadScore(trailing, monitored, options), -0.1);
}

TEST(TemporalTest, UncorrelatedFeatureScoresNearZero) {
  Rng rng(8);
  TimeSeries noise;
  for (Timestamp t = 0; t <= 1000; t += 5) {
    (void)noise.Append(t, rng.Gaussian(0, 1));
  }
  const TimeSeries monitored = Step(500, 0, 10, 9);
  const LagCorrelation best = BestLag(noise, monitored);
  EXPECT_LT(std::fabs(best.correlation), 0.5);
}

TEST(TemporalTest, DegenerateInputs) {
  TimeSeries one;
  (void)one.Append(0, 1.0);
  const TimeSeries ok = Step(500, 0, 1, 10);
  EXPECT_DOUBLE_EQ(LaggedCorrelation(one, ok, 0), 0.0);
  EXPECT_DOUBLE_EQ(LaggedCorrelation(ok, TimeSeries(), 0), 0.0);
  // Disjoint spans.
  TimeSeries late;
  (void)late.Append(5000, 1.0);
  (void)late.Append(6000, 2.0);
  EXPECT_DOUBLE_EQ(LaggedCorrelation(ok, late, 0), 0.0);
}

TEST(TemporalTest, LagSweepCoversConfiguredRange) {
  const TimeSeries a = Step(500, 0, 10, 11);
  TemporalOptions options;
  options.max_lag = 30;
  options.lag_step = 15;
  const auto sweep = LagSweep(a, a, options);
  ASSERT_EQ(sweep.size(), 5u);  // -30, -15, 0, 15, 30
  EXPECT_EQ(sweep.front().lag, -30);
  EXPECT_EQ(sweep.back().lag, 30);
  // Self-correlation at lag 0 is maximal.
  double best = 0;
  Timestamp best_lag = -99;
  for (const auto& lc : sweep) {
    if (lc.correlation > best) {
      best = lc.correlation;
      best_lag = lc.lag;
    }
  }
  EXPECT_EQ(best_lag, 0);
}

TEST(TemporalTest, RankByLeadScoreOrdersLeadersFirst) {
  const TimeSeries monitored = Step(500, 0, 10, 12);
  auto make_feature = [&](const char* name, Timestamp step_at, uint64_t seed) {
    RankedFeature f;
    f.spec.event_type_name = "T";
    f.spec.attribute_name = name;
    f.abnormal_series = Step(step_at, 0, 5, seed);
    return f;
  };
  TemporalOptions options;
  options.max_lag = 100;
  options.lag_step = 10;
  const auto ranked = RankByLeadScore(
      {make_feature("trailer", 560, 13), make_feature("leader", 440, 14)},
      monitored, options);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first.spec.attribute_name, "leader");
  EXPECT_GT(ranked[0].second, ranked[1].second);
}

}  // namespace
}  // namespace exstream
