// Loopback parent/child replication tests: a child XStreamSystem streams its
// durable event stream to a parent XStreamSystem through the
// ReplicationSender -> TCP -> ReplicationReceiver pipeline, and the parent's
// monitoring state (match tables, archive contents, Explain output) must be
// bit-identical to a single-node system fed the same stream — under a clean
// link, under every injected link fault (fail, delay, truncation, corruption,
// reset, refused connects), across a child crash + WAL recovery, across a
// parent crash + WAL recovery, and through a parent outage long enough to
// overflow the child's bounded replication queue (where the loss must be
// counted, pinned out of WAL truncation, and disclosed in the parent's
// DegradationReport instead of silently vanishing).

#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "net/frame.h"
#include "net/replication_receiver.h"
#include "net/socket.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

constexpr size_t kBatch = 64;

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/exstream_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

struct Workload {
  std::unique_ptr<EventTypeRegistry> registry;
  std::vector<Event> events;
};

// One anomalous Hadoop job, so parent-side Explain has something to explain.
Workload MakeWorkload() {
  Workload w;
  w.registry = std::make_unique<EventTypeRegistry>();
  EXPECT_TRUE(HadoopClusterSim::RegisterEventTypes(w.registry.get()).ok());
  HadoopSimConfig cfg;
  cfg.num_nodes = 3;
  cfg.seed = 77;
  HadoopClusterSim sim(cfg, w.registry.get());
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 60;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  VectorSink sink;
  EXPECT_TRUE(sim.Run(&sink).ok());
  w.events = sink.events();
  return w;
}

XStreamConfig BaseConfig() {
  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  return config;
}

// Fast-converging sender knobs for loopback tests.
ReplicationSenderOptions SenderOptions(uint16_t port) {
  ReplicationSenderOptions r;
  r.port = port;
  r.chunk_events = 64;
  r.max_pending_chunks = 512;
  r.connect_timeout_ms = 500;
  r.io_timeout_ms = 500;
  r.idle_poll_ms = 5;
  r.reconnect.base_backoff_ms = 5.0;
  r.reconnect.max_backoff_ms = 100.0;
  return r;
}

std::unique_ptr<XStreamSystem> MakeSystem(
    const Workload& w, QueryId* qid, const std::string& wal_dir = "",
    std::optional<ReplicationSenderOptions> replication = std::nullopt) {
  XStreamConfig cfg = BaseConfig();
  if (!wal_dir.empty()) {
    cfg.durability.wal_dir = wal_dir;
    cfg.durability.fsync = WalFsyncPolicy::kNone;
    cfg.durability.wal_segment_bytes = 64u << 10;
  }
  cfg.replication = std::move(replication);
  auto sys = std::make_unique<XStreamSystem>(w.registry.get(), cfg);
  const auto q = sys->AddQuery(kQ1, "Q1");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  *qid = q.ok() ? *q : 0;
  return sys;
}

ReplicationReceiverOptions ReceiverOptions(uint16_t port,
                                           const std::string& state_path = "") {
  ReplicationReceiverOptions r;
  r.port = port;
  r.io_timeout_ms = 100;  // bounds Stop() latency in tests
  if (!state_path.empty()) r.state_path = state_path;
  return r;
}

void Feed(EventSink* sink, const std::vector<Event>& events, size_t begin,
          size_t end) {
  for (size_t i = begin; i < end;) {
    const size_t n = std::min(kBatch, end - i);
    sink->OnEventBatch(EventBatch(events.begin() + i, events.begin() + i + n));
    i += n;
  }
}

// Everything monitoring-visible: match rows per partition, the engine's event
// counter, and a full archive scan (same shape as wal_recovery_test).
std::string Fingerprint(XStreamSystem& sys, QueryId qid) {
  std::string out;
  const MatchTable& mt = sys.engine().match_table(qid);
  for (const std::string& p : mt.Partitions()) {
    out += "partition " + p + (mt.IsComplete(p) ? " complete\n" : " open\n");
    for (const MatchRow& row : mt.Rows(p)) {
      out += std::to_string(row.ts);
      for (const Value& v : row.values) {
        out += '|';
        out += v.ToString();
      }
      out += '\n';
    }
  }
  out += "events_processed=" +
         std::to_string(sys.engine().events_processed()) + '\n';
  const TimeInterval all{std::numeric_limits<Timestamp>::min(),
                         std::numeric_limits<Timestamp>::max()};
  const auto scans = sys.archive().ScanAll(all);
  EXPECT_TRUE(scans.ok()) << scans.status().ToString();
  if (scans.ok()) {
    for (const auto& ts : *scans) {
      out += "type " + std::to_string(ts.type) + '\n';
      for (const Event& e : ts.events) {
        out += std::to_string(e.ts);
        for (const Value& v : e.values) {
          out += '|';
          out += v.ToString();
        }
        out += '\n';
      }
    }
  }
  return out;
}

Result<ExplanationReport> RunExplain(XStreamSystem& sys, QueryId qid) {
  EXSTREAM_RETURN_NOT_OK(sys.IndexPartitions(qid, {{"program", "p"}}));
  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q1", {60, 300}, "job-x"};
  annotation.reference = {"Q1", {360, 600}, "job-x"};
  return sys.Explain(annotation, qid, "sum_dataSize");
}

// The uncrashed single-node truth every replication topology must reproduce.
struct SingleNodeTruth {
  std::string fingerprint;
  std::vector<std::string> features;
};

SingleNodeTruth MakeTruth(const Workload& w) {
  QueryId qid = 0;
  auto baseline = MakeSystem(w, &qid);
  Feed(baseline.get(), w.events, 0, w.events.size());
  baseline->Flush();
  SingleNodeTruth truth;
  truth.fingerprint = Fingerprint(*baseline, qid);
  auto report = RunExplain(*baseline, qid);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) truth.features = report->SelectedFeatureNames();
  EXPECT_FALSE(truth.features.empty());
  return truth;
}

TEST(ReplicationTest, ParentIsBitIdenticalToSingleNode) {
  const Workload w = MakeWorkload();
  const SingleNodeTruth truth = MakeTruth(w);

  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid);
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0));
  ASSERT_TRUE(receiver.Start().ok());

  QueryId child_qid = 0;
  auto child =
      MakeSystem(w, &child_qid, "", SenderOptions(receiver.port()));
  Feed(child.get(), w.events, 0, w.events.size());
  child->Flush();
  ASSERT_TRUE(child->replication()->WaitForDrain(30000));
  receiver.Stop();
  parent->Flush();

  const auto rstats = receiver.stats();
  EXPECT_GT(rstats.chunks_applied, 0u);
  EXPECT_EQ(rstats.events_applied, w.events.size());
  EXPECT_EQ(rstats.gap_events, 0u);
  EXPECT_EQ(rstats.frame_errors, 0u);
  EXPECT_EQ(receiver.watermark(), w.events.size());

  EXPECT_EQ(Fingerprint(*parent, parent_qid), truth.fingerprint);
  auto report = RunExplain(*parent, parent_qid);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->SelectedFeatureNames(), truth.features);
  EXPECT_FALSE(report->degradation.degraded());
}

// Before a chunk seals, the parent sees the child's unsealed spool via
// WALTAIL frames — a parent-side Explain never waits for a chunk boundary.
TEST(ReplicationTest, WalTailAloneReplicatesEverything) {
  const Workload w = MakeWorkload();
  const SingleNodeTruth truth = MakeTruth(w);

  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid);
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0));
  ASSERT_TRUE(receiver.Start().ok());

  ReplicationSenderOptions opts = SenderOptions(receiver.port());
  opts.chunk_events = w.events.size() + 1;  // never seals a chunk
  QueryId child_qid = 0;
  auto child = MakeSystem(w, &child_qid, "", opts);
  Feed(child.get(), w.events, 0, w.events.size());
  child->Flush();
  ASSERT_TRUE(child->replication()->WaitForDrain(30000));
  receiver.Stop();
  parent->Flush();

  const auto rstats = receiver.stats();
  EXPECT_EQ(rstats.chunks_applied, 0u);
  EXPECT_GT(rstats.tail_frames_applied, 0u);
  EXPECT_EQ(receiver.watermark(), w.events.size());
  EXPECT_EQ(Fingerprint(*parent, parent_qid), truth.fingerprint);
}

// The link-fault matrix: every FaultMode the injector can deliver, on every
// socket seam (connect / send / recv). The injected faults tear sessions mid
// frame; the sender must reconnect, resume from the HELLOACK watermark, and
// converge on the bit-identical parent state with nothing lost or doubled.
struct LinkFaultCase {
  const char* name;
  const char* site;
  FaultOp op;
  FaultMode mode;
  int max_hits;
  int skip;
};

void RunLinkFaultCase(const Workload& w, const SingleNodeTruth& truth,
                      const LinkFaultCase& c) {
  SCOPED_TRACE(c.name);
  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid);
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0));
  ASSERT_TRUE(receiver.Start().ok());

  FaultPlan plan;
  plan.mode = c.mode;
  plan.op = c.op;
  plan.site = c.site;
  plan.skip = c.skip;
  plan.max_hits = c.max_hits;
  plan.delay_ms = 2;
  // Armed before the child exists, so even the first connect is exposed.
  FaultInjector::Global().Arm(plan);

  QueryId child_qid = 0;
  auto child =
      MakeSystem(w, &child_qid, "", SenderOptions(receiver.port()));
  Feed(child.get(), w.events, 0, w.events.size());
  child->Flush();
  const bool drained = child->replication()->WaitForDrain(60000);
  const size_t hits = FaultInjector::Global().hits();
  FaultInjector::Global().Disarm();
  ASSERT_TRUE(drained) << "replication did not converge under " << c.name;
  EXPECT_GT(hits, 0u) << "fault plan never fired; the case tested nothing";

  receiver.Stop();
  parent->Flush();
  const auto rstats = receiver.stats();
  EXPECT_EQ(rstats.gap_events, 0u) << "a link fault must never shed events";
  EXPECT_EQ(receiver.watermark(), w.events.size());
  EXPECT_EQ(Fingerprint(*parent, parent_qid), truth.fingerprint);
  child.reset();
}

TEST(ReplicationTest, SendFaultMatrix) {
  const Workload w = MakeWorkload();
  const SingleNodeTruth truth = MakeTruth(w);
  const LinkFaultCase cases[] = {
      {"send-fail", "repl-send", FaultOp::kSend, FaultMode::kFailOpen, 3, 2},
      {"send-reset", "repl-send", FaultOp::kSend, FaultMode::kReset, 3, 5},
      {"send-truncate", "repl-send", FaultOp::kSend, FaultMode::kTruncate, 3, 1},
      {"send-corrupt", "repl-send", FaultOp::kSend, FaultMode::kCorruptBytes, 3,
       4},
      {"send-delay", "repl-send", FaultOp::kSend, FaultMode::kDelay, 50, 0},
  };
  for (const LinkFaultCase& c : cases) RunLinkFaultCase(w, truth, c);
}

TEST(ReplicationTest, RecvAndConnectFaultMatrix) {
  const Workload w = MakeWorkload();
  const SingleNodeTruth truth = MakeTruth(w);
  const LinkFaultCase cases[] = {
      {"recv-fail", "repl-recv", FaultOp::kRecv, FaultMode::kFailOpen, 3, 2},
      {"recv-reset", "repl-recv", FaultOp::kRecv, FaultMode::kReset, 3, 5},
      {"recv-truncate", "repl-recv", FaultOp::kRecv, FaultMode::kTruncate, 3, 1},
      {"recv-corrupt", "repl-recv", FaultOp::kRecv, FaultMode::kCorruptBytes, 3,
       4},
      {"connect-fail", "repl-connect", FaultOp::kConnect, FaultMode::kFailOpen,
       2, 0},
      {"connect-reset", "repl-connect", FaultOp::kConnect, FaultMode::kReset, 2,
       0},
  };
  for (const LinkFaultCase& c : cases) RunLinkFaultCase(w, truth, c);
}

// Child crash: the child dies mid-stream, a fresh child recovers from its
// WAL (which the replication pin kept intact), rebuilds the sender's spool by
// replaying the log, and resumes. The parent dedupes the resent overlap by
// seq, so nothing applies twice.
TEST(ReplicationTest, ChildCrashRecoverResume) {
  const Workload w = MakeWorkload();
  const SingleNodeTruth truth = MakeTruth(w);
  const std::string wal_dir = MakeTempDir("repl_child_wal");

  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid);
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0));
  ASSERT_TRUE(receiver.Start().ok());
  const uint16_t port = receiver.port();

  const size_t crash = (w.events.size() / 2 / kBatch) * kBatch;
  {
    QueryId child_qid = 0;
    auto child = MakeSystem(w, &child_qid, wal_dir, SenderOptions(port));
    Feed(child.get(), w.events, 0, crash);
    child->Flush();
    // Crash with replication mid-flight: some chunks acked, some not.
  }

  QueryId child_qid = 0;
  auto child = MakeSystem(w, &child_qid, wal_dir, SenderOptions(port));
  const auto rep = child->Recover(std::string());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->wal.next_seq, crash);
  Feed(child.get(), w.events, crash, w.events.size());
  child->Flush();
  ASSERT_TRUE(child->replication()->WaitForDrain(30000));
  receiver.Stop();
  parent->Flush();

  const auto rstats = receiver.stats();
  EXPECT_EQ(rstats.gap_events, 0u);
  EXPECT_EQ(rstats.events_applied, w.events.size());
  EXPECT_EQ(receiver.watermark(), w.events.size());
  EXPECT_EQ(Fingerprint(*parent, parent_qid), truth.fingerprint);
}

// Parent crash: ACKs are durability promises (the parent fsyncs its WAL
// before acking), so a parent that crashes and recovers from its WAL resumes
// with a watermark at or past everything it acked; the child's retransmits
// of the unacked suffix dedupe against it.
TEST(ReplicationTest, ParentCrashRecoverResume) {
  const Workload w = MakeWorkload();
  const SingleNodeTruth truth = MakeTruth(w);
  const std::string parent_wal = MakeTempDir("repl_parent_wal");
  const std::string state_path = MakeTempDir("repl_state") + "/gap.state";

  QueryId child_qid = 0;
  std::unique_ptr<XStreamSystem> child;
  uint16_t port = 0;
  const size_t half = (w.events.size() / 2 / kBatch) * kBatch;
  {
    QueryId parent_qid = 0;
    auto parent = MakeSystem(w, &parent_qid, parent_wal);
    ReplicationReceiver receiver(parent.get(),
                                 ReceiverOptions(0, state_path));
    ASSERT_TRUE(receiver.Start().ok());
    port = receiver.port();

    child = MakeSystem(w, &child_qid, "", SenderOptions(port));
    Feed(child.get(), w.events, 0, half);
    child->Flush();
    ASSERT_TRUE(child->replication()->WaitForDrain(30000));
    receiver.Stop();
    // Parent crash: receiver and system destroyed; only its WAL and the gap
    // state file survive. The child stays up, retrying against a dead port.
  }

  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid, parent_wal);
  const auto rep = parent->Recover(std::string());
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->wal.next_seq, half);
  ReplicationReceiver receiver(parent.get(),
                               ReceiverOptions(port, state_path));
  ASSERT_TRUE(receiver.Start().ok());

  Feed(child.get(), w.events, half, w.events.size());
  child->Flush();
  ASSERT_TRUE(child->replication()->WaitForDrain(30000));
  const auto cstats = child->replication()->stats();
  EXPECT_GE(cstats.reconnects + cstats.connect_failures, 1u)
      << "the child never noticed the parent outage";
  receiver.Stop();
  parent->Flush();

  EXPECT_EQ(receiver.stats().gap_events, 0u);
  EXPECT_EQ(receiver.watermark(), w.events.size());
  EXPECT_EQ(Fingerprint(*parent, parent_qid), truth.fingerprint);
  auto report = RunExplain(*parent, parent_qid);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->SelectedFeatureNames(), truth.features);
}

// A parent outage long enough to overflow the child's bounded replication
// queue: the oldest unacked chunks are shed (bounded memory beats unbounded
// spooling), the loss shows up in the child's fault_stats(), and — once the
// parent is back — the seq gap is detected, persisted, and disclosed in the
// parent's DegradationReport. Lost means *disclosed*, never silent.
TEST(ReplicationTest, ParentOutageShedsAndDisclosesTheGap) {
  const Workload w = MakeWorkload();
  const std::string state_path = MakeTempDir("repl_state") + "/gap.state";

  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid);
  auto receiver = std::make_unique<ReplicationReceiver>(
      parent.get(), ReceiverOptions(0, state_path));
  ASSERT_TRUE(receiver->Start().ok());
  const uint16_t port = receiver->port();

  ReplicationSenderOptions opts = SenderOptions(port);
  opts.chunk_events = 16;
  // Large enough to hold the whole phase-1 workload even if the sender
  // thread drains nothing during the synchronous feed — phase 1 must not
  // shed no matter how the feed races the socket.
  opts.max_pending_chunks = (w.events.size() / opts.chunk_events) + 8;
  QueryId child_qid = 0;
  auto child = MakeSystem(w, &child_qid, "", opts);

  // Phase 1: the real workload replicates cleanly (nothing pending).
  Feed(child.get(), w.events, 0, w.events.size());
  child->Flush();
  ASSERT_TRUE(child->replication()->WaitForDrain(30000));
  ASSERT_EQ(receiver->stats().gap_events, 0u);

  // Phase 2: parent outage. A burst of time-shifted metric events (they touch
  // no pattern matches) overflows the pending queue — the queue is empty
  // after the drain, so the burst must exceed its whole capacity.
  receiver->Stop();
  receiver.reset();
  const auto cpu_type = w.registry->IdOf("CpuUsage");
  ASSERT_TRUE(cpu_type.ok());
  EventBatch burst;
  const size_t burst_target =
      (opts.max_pending_chunks + 64) * opts.chunk_events;
  for (Timestamp shift = 100000; burst.size() < burst_target;
       shift += 100000) {
    for (const Event& e : w.events) {
      if (e.type == *cpu_type) {
        Event shifted = e;
        shifted.ts += shift;
        burst.push_back(std::move(shifted));
      }
    }
  }
  ASSERT_GT(burst.size(), opts.max_pending_chunks * opts.chunk_events);
  Feed(child.get(), burst, 0, burst.size());
  child->Flush();
  const auto mid = child->fault_stats();
  ASSERT_GT(mid.repl_shed_events, 0u);
  ASSERT_GT(mid.repl_shed_chunks, 0u);

  // Phase 3: the parent returns on the same port. The child resumes from its
  // shed floor; the parent sees the seq jump, records the gap, and keeps
  // applying what survived.
  parent->Flush();
  receiver = std::make_unique<ReplicationReceiver>(
      parent.get(), ReceiverOptions(port, state_path));
  ASSERT_TRUE(receiver->Start().ok());
  ASSERT_TRUE(child->replication()->WaitForDrain(30000));
  receiver->Stop();
  parent->Flush();

  const auto cstats = child->replication()->stats();
  const auto rstats = receiver->stats();
  // The parent discloses exactly what it lost. That can be slightly less
  // than the child's shed count: the outage races the in-flight session, so
  // a few "shed" events may already have been applied (but not yet acked)
  // before the link died — applied-then-shed is not a loss. It can never be
  // more.
  EXPECT_GT(rstats.gap_events, 0u);
  EXPECT_LE(rstats.gap_events, cstats.shed_events);
  EXPECT_EQ(receiver->watermark(), w.events.size() + burst.size());
  EXPECT_EQ(parent->engine().events_processed() + rstats.gap_events,
            w.events.size() + burst.size())
      << "every event is either applied by the parent or disclosed as gap";

  // The loss is disclosed: a parent-side Explain is marked degraded with the
  // gap count, exactly like locally shed events.
  auto report = RunExplain(*parent, parent_qid);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->degradation.degraded());
  EXPECT_EQ(report->degradation.events_shed, rstats.gap_events);
}

// The receiver's watermark arithmetic survives a parent restart even though
// the shed events never reached the parent's WAL: the gap total is persisted
// in the EXRG state file and added back to the recovered seq.
TEST(ReplicationTest, GapStateFileSurvivesParentRestart) {
  const Workload w = MakeWorkload();
  const std::string state_path = MakeTempDir("repl_state") + "/gap.state";
  const std::string parent_wal = MakeTempDir("repl_parent_wal");

  uint16_t port = 0;
  uint64_t watermark_before = 0;
  uint64_t gap_before = 0;
  const size_t total = w.events.size();
  {
    QueryId parent_qid = 0;
    auto parent = MakeSystem(w, &parent_qid, parent_wal);
    ReplicationReceiver receiver(parent.get(), ReceiverOptions(0, state_path));
    ASSERT_TRUE(receiver.Start().ok());
    port = receiver.port();

    ReplicationSenderOptions opts = SenderOptions(port);
    opts.chunk_events = 16;
    opts.max_pending_chunks = 2;
    QueryId child_qid = 0;
    auto child = MakeSystem(w, &child_qid, "", opts);
    // Sever the link first (kill every send), then feed: everything sheds
    // past the two pending chunks, guaranteeing a nonzero gap.
    FaultPlan plan;
    plan.mode = FaultMode::kFailOpen;
    plan.op = FaultOp::kSend;
    plan.site = "repl-send";
    FaultInjector::Global().Arm(plan);
    Feed(child.get(), w.events, 0, total / 2);
    child->Flush();
    ASSERT_GT(child->fault_stats().repl_shed_events, 0u);
    FaultInjector::Global().Disarm();
    Feed(child.get(), w.events, total / 2, total);
    child->Flush();
    ASSERT_TRUE(child->replication()->WaitForDrain(30000));
    gap_before = receiver.stats().gap_events;
    ASSERT_GT(gap_before, 0u);
    watermark_before = receiver.watermark();
    EXPECT_EQ(watermark_before, total);
    receiver.Stop();
    // Parent crash.
  }

  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid, parent_wal);
  ASSERT_TRUE(parent->Recover(std::string()).ok());
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(port, state_path));
  ASSERT_TRUE(receiver.Start().ok());
  // recovered seq + persisted gap == the pre-crash watermark: a reconnecting
  // child resumes exactly where it left off instead of re-sending (or worse,
  // re-applying) the gap region.
  EXPECT_EQ(receiver.watermark(), watermark_before);
  receiver.Stop();
}

// Tenant isolation: a child for the wrong tenant is rejected at HELLO and
// applies nothing.
TEST(ReplicationTest, WrongTenantRejected) {
  const Workload w = MakeWorkload();
  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid);
  ReplicationReceiverOptions ropts = ReceiverOptions(0);
  ropts.tenant = "prod";
  ReplicationReceiver receiver(parent.get(), ropts);
  ASSERT_TRUE(receiver.Start().ok());

  ReplicationSenderOptions sopts = SenderOptions(receiver.port());
  sopts.tenant = "staging";
  ReplicationSender sender(sopts);
  sender.Start();
  sender.OnBatch(0, EventBatch(w.events.begin(), w.events.begin() + 8));
  for (int i = 0; i < 200 && sender.stats().hello_rejects == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  sender.Stop();
  receiver.Stop();
  EXPECT_GT(sender.stats().hello_rejects, 0u);
  EXPECT_GT(receiver.stats().hellos_rejected, 0u);
  EXPECT_EQ(receiver.stats().events_applied, 0u);
  EXPECT_EQ(parent->engine().events_processed(), 0u);
}

// Version skew: a HELLO speaking a different protocol version gets a
// HELLOACK rejection naming both versions — never a half-spoken session.
TEST(ReplicationTest, ProtocolVersionSkewRejected) {
  const Workload w = MakeWorkload();
  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid);
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0));
  ASSERT_TRUE(receiver.Start().ok());

  auto sock = TcpSocket::Connect("127.0.0.1", receiver.port(), 1000);
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  HelloFrame hello;
  hello.protocol_version = kReplProtocolVersion + 1;
  hello.tenant = "default";
  hello.node_id = "future-child";
  ASSERT_TRUE(sock->SendAll(EncodeFrame(FrameType::kHello, hello.Encode())).ok());

  FrameDecoder decoder;
  char buf[4096];
  HelloAckFrame ack;
  bool got_ack = false;
  for (int i = 0; i < 100 && !got_ack; ++i) {
    auto n = sock->Recv(buf, sizeof(buf), 100);
    if (!n.ok() || *n == 0) continue;
    decoder.Feed(std::string_view(buf, *n));
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame->has_value()) continue;
    ASSERT_EQ((*frame)->type, FrameType::kHelloAck);
    auto decoded = HelloAckFrame::Decode((*frame)->payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ack = *decoded;
    got_ack = true;
  }
  receiver.Stop();
  ASSERT_TRUE(got_ack);
  EXPECT_FALSE(ack.accepted);
  EXPECT_NE(ack.message.find("version"), std::string::npos) << ack.message;
  EXPECT_GT(receiver.stats().hellos_rejected, 0u);
}

// The replication pin in action: while the parent is unreachable, Checkpoint
// must not truncate WAL segments the parent has not acked — they are the only
// copy a recovering child can resend from. Once the parent catches up, the
// next checkpoint reclaims them.
TEST(ReplicationTest, CheckpointHonorsReplicationPin) {
  const Workload w = MakeWorkload();
  const std::string wal_dir = MakeTempDir("repl_pin_wal");
  const std::string ckpt_dir = MakeTempDir("repl_pin_ckpt");

  // Learn a free port, then leave it dark until phase 2.
  auto probe = TcpListener::Listen(0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const uint16_t port = probe->port();
  probe->Close();

  XStreamConfig cfg = BaseConfig();
  cfg.durability.wal_dir = wal_dir;
  cfg.durability.fsync = WalFsyncPolicy::kNone;
  cfg.durability.wal_segment_bytes = 2048;  // force many segments
  cfg.replication = SenderOptions(port);
  auto child = std::make_unique<XStreamSystem>(w.registry.get(), cfg);
  ASSERT_TRUE(child->AddQuery(kQ1, "Q1").ok());

  Feed(child.get(), w.events, 0, w.events.size());
  child->Flush();
  // Parent dark: nothing acked, so pin_seq() == 0 and the checkpoint may
  // truncate nothing, even though it covers the whole stream locally.
  ASSERT_TRUE(child->Checkpoint(ckpt_dir).ok());
  EXPECT_EQ(child->wal()->stats().segments_deleted, 0u)
      << "checkpoint truncated segments the parent never acked";

  // Parent comes up; the backlog drains; the pin advances with the acks and
  // the next checkpoint finally reclaims the log.
  QueryId parent_qid = 0;
  auto parent = MakeSystem(w, &parent_qid);
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(port));
  ASSERT_TRUE(receiver.Start().ok());
  ASSERT_TRUE(child->replication()->WaitForDrain(30000));
  ASSERT_TRUE(child->Checkpoint(ckpt_dir).ok());
  EXPECT_GT(child->wal()->stats().segments_deleted, 0u);
  receiver.Stop();
}

// CHUNK frames carry v4 (compressed) spill payloads by default. A parent
// whose archive tiers the replicated chunks must (a) reproduce the child's
// stream bit-identically — same fingerprint and Explain output as an
// uncrashed single-node run — and (b) actually build usable tiers over the
// chunks it received off the wire, not just over locally appended ones.
TEST(ReplicationTest, TieredParentRoundTripsV4ChunksBitIdentically) {
  const Workload w = MakeWorkload();
  const SingleNodeTruth truth = MakeTruth(w);

  XStreamConfig parent_cfg = BaseConfig();
  parent_cfg.archive.chunk_capacity = 256;  // force seals → tiers get built
  parent_cfg.archive.tier_windows = {10};   // divides the feature window
  auto parent = std::make_unique<XStreamSystem>(w.registry.get(), parent_cfg);
  const auto parent_q = parent->AddQuery(kQ1, "Q1");
  ASSERT_TRUE(parent_q.ok()) << parent_q.status().ToString();
  ReplicationReceiver receiver(parent.get(), ReceiverOptions(0));
  ASSERT_TRUE(receiver.Start().ok());

  QueryId child_qid = 0;
  auto child = MakeSystem(w, &child_qid, "", SenderOptions(receiver.port()));
  Feed(child.get(), w.events, 0, w.events.size());
  child->Flush();
  ASSERT_TRUE(child->replication()->WaitForDrain(30000));
  receiver.Stop();
  parent->Flush();

  const auto rstats = receiver.stats();
  EXPECT_GT(rstats.chunks_applied, 0u);
  EXPECT_EQ(rstats.events_applied, w.events.size());
  EXPECT_EQ(rstats.frame_errors, 0u);

  // Bit-identical replica despite the compressed wire format.
  EXPECT_EQ(Fingerprint(*parent, *parent_q), truth.fingerprint);
  auto report = RunExplain(*parent, *parent_q);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->SelectedFeatureNames(), truth.features);
  EXPECT_FALSE(report->degradation.degraded());

  // The replicated chunks sealed with tiers: a resolution-aligned scan over
  // the whole stream answers sealed chunks from tier segments instead of raw
  // rows (the raw row count drops below the replicated total).
  const TimeInterval all{std::numeric_limits<Timestamp>::min(),
                         std::numeric_limits<Timestamp>::max()};
  size_t raw_rows = 0;
  bool any_tier_segments = false;
  for (EventTypeId type = 0; type < w.registry->size(); ++type) {
    auto view = parent->archive().ScanColumns(type, all, nullptr, nullptr, 10);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    raw_rows += view->rows();
    any_tier_segments |= !view->tier_segments.empty();
  }
  EXPECT_TRUE(any_tier_segments)
      << "no replicated chunk was answered from a tier";
  EXPECT_LT(raw_rows, w.events.size());
  EXPECT_GT(parent->archive().tier_segments_served(), 0u);
}

}  // namespace
}  // namespace exstream
