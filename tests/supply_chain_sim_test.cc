#include "sim/supply_chain_sim.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace exstream {
namespace {

class SupplyChainSimTest : public ::testing::Test {
 protected:
  SupplyChainConfig SmallConfig() {
    SupplyChainConfig config;
    config.num_sensors = 4;
    config.num_machines = 4;
    config.num_products = 3;
    config.product_duration = 200;
    config.seed = 21;
    return config;
  }
};

TEST_F(SupplyChainSimTest, RegistersPerSensorAndMachineTypes) {
  EventTypeRegistry registry;
  const SupplyChainConfig config = SmallConfig();
  ASSERT_TRUE(SupplyChainSim::RegisterEventTypes(&registry, config).ok());
  EXPECT_TRUE(registry.Contains("ProductStart"));
  EXPECT_TRUE(registry.Contains("ProductEnd"));
  EXPECT_TRUE(registry.Contains("ProductProgress"));
  EXPECT_TRUE(registry.Contains("Sensor00"));
  EXPECT_TRUE(registry.Contains("Sensor03"));
  EXPECT_TRUE(registry.Contains("Material00"));
  EXPECT_TRUE(registry.Contains("Material03"));
  // Idempotent.
  EXPECT_TRUE(SupplyChainSim::RegisterEventTypes(&registry, config).ok());
}

TEST_F(SupplyChainSimTest, ProductWindowsLaidOutSequentially) {
  EventTypeRegistry registry;
  const SupplyChainConfig config = SmallConfig();
  ASSERT_TRUE(SupplyChainSim::RegisterEventTypes(&registry, config).ok());
  SupplyChainSim sim(config, &registry);
  VectorSink sink;
  auto products = sim.Run(&sink);
  ASSERT_TRUE(products.ok());
  ASSERT_EQ(products->size(), 3u);
  for (size_t i = 1; i < products->size(); ++i) {
    EXPECT_GT((*products)[i].start, (*products)[i - 1].end);
  }
}

TEST_F(SupplyChainSimTest, SensorsReportAtFixedRate) {
  EventTypeRegistry registry;
  const SupplyChainConfig config = SmallConfig();
  ASSERT_TRUE(SupplyChainSim::RegisterEventTypes(&registry, config).ok());
  SupplyChainSim sim(config, &registry);
  VectorSink sink;
  ASSERT_TRUE(sim.Run(&sink).ok());

  const EventTypeId sensor0 = *registry.IdOf("Sensor00");
  Timestamp prev = -1;
  for (const Event& e : sink.events()) {
    if (e.type != sensor0) continue;
    if (prev >= 0) {
      EXPECT_EQ(e.ts - prev, config.sensor_period);
    }
    prev = e.ts;
  }
  EXPECT_GE(prev, 0);  // sensor produced events at all
}

TEST_F(SupplyChainSimTest, MissingMonitoringSilencesTargetSensor) {
  EventTypeRegistry registry;
  const SupplyChainConfig config = SmallConfig();
  ASSERT_TRUE(SupplyChainSim::RegisterEventTypes(&registry, config).ok());
  SupplyChainSim sim(config, &registry);
  ScAnomalySpec spec;
  spec.type = ScAnomalyType::kMissingMonitoring;
  spec.product_index = 1;
  spec.targets = {0};
  sim.AddAnomaly(spec);
  VectorSink sink;
  auto products = sim.Run(&sink);
  ASSERT_TRUE(products.ok());

  const ProductWindow& faulty = (*products)[1];
  const EventTypeId sensor0 = *registry.IdOf("Sensor00");
  const EventTypeId sensor1 = *registry.IdOf("Sensor01");
  size_t s0_in_window = 0;
  size_t s1_in_window = 0;
  for (const Event& e : sink.events()) {
    if (e.ts < faulty.start || e.ts > faulty.end) continue;
    if (e.type == sensor0) ++s0_in_window;
    if (e.type == sensor1) ++s1_in_window;
  }
  EXPECT_EQ(s0_in_window, 0u);  // target sensor silent
  EXPECT_GT(s1_in_window, 10u); // others keep reporting
}

TEST_F(SupplyChainSimTest, SubParMaterialDropsQuality) {
  EventTypeRegistry registry;
  const SupplyChainConfig config = SmallConfig();
  ASSERT_TRUE(SupplyChainSim::RegisterEventTypes(&registry, config).ok());
  SupplyChainSim sim(config, &registry);
  ScAnomalySpec spec;
  spec.type = ScAnomalyType::kSubParMaterial;
  spec.product_index = 1;
  spec.targets = {2};
  sim.AddAnomaly(spec);
  VectorSink sink;
  auto products = sim.Run(&sink);
  ASSERT_TRUE(products.ok());

  const EventTypeId machine2 = *registry.IdOf("Material02");
  const size_t quality_idx = *registry.schema(machine2).AttributeIndex("quality");
  std::vector<double> faulty_quality;
  std::vector<double> good_quality;
  const ProductWindow& faulty = (*products)[1];
  for (const Event& e : sink.events()) {
    if (e.type != machine2) continue;
    const double q = e.values[quality_idx].AsDouble();
    if (e.ts >= faulty.start && e.ts <= faulty.end) {
      faulty_quality.push_back(q);
    } else {
      good_quality.push_back(q);
    }
  }
  ASSERT_FALSE(faulty_quality.empty());
  ASSERT_FALSE(good_quality.empty());
  EXPECT_LT(Mean(faulty_quality), config.quality_bar);
  EXPECT_GE(Mean(good_quality), config.quality_bar);
}

TEST_F(SupplyChainSimTest, GroundTruthSignals) {
  ScAnomalySpec missing;
  missing.type = ScAnomalyType::kMissingMonitoring;
  missing.targets = {0, 2};
  const auto signals = ScGroundTruthSignals(missing);
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_EQ(signals[0], "Sensor00.value");
  EXPECT_EQ(signals[1], "Sensor02.value");

  ScAnomalySpec subpar;
  subpar.type = ScAnomalyType::kSubParMaterial;
  subpar.targets = {1};
  EXPECT_EQ(ScGroundTruthSignals(subpar)[0], "Material01.quality");
}

TEST_F(SupplyChainSimTest, ProgressEventsCarryQualityPerProduct) {
  EventTypeRegistry registry;
  const SupplyChainConfig config = SmallConfig();
  ASSERT_TRUE(SupplyChainSim::RegisterEventTypes(&registry, config).ok());
  SupplyChainSim sim(config, &registry);
  VectorSink sink;
  auto products = sim.Run(&sink);
  ASSERT_TRUE(products.ok());

  const EventTypeId progress = *registry.IdOf("ProductProgress");
  size_t count = 0;
  for (const Event& e : sink.events()) {
    if (e.type != progress) continue;
    ++count;
    EXPECT_FALSE(e.values[0].AsString().empty());  // productId
    EXPECT_GT(e.values[1].AsDouble(), 0.0);        // quality
  }
  EXPECT_GT(count, 50u);
}

}  // namespace
}  // namespace exstream
