#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/lexer.h"

namespace exstream {
namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) "
    "WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SEQ(a, b+ )[i] 1..i >= 3.5 != 'str'");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  const std::vector<TokenKind> expected = {
      TokenKind::kIdent, TokenKind::kLParen, TokenKind::kIdent, TokenKind::kComma,
      TokenKind::kIdent, TokenKind::kPlus,   TokenKind::kRParen,
      TokenKind::kLBracket, TokenKind::kIdent, TokenKind::kRBracket,
      TokenKind::kNumber, TokenKind::kDotDot, TokenKind::kIdent,
      TokenKind::kOp,     TokenKind::kNumber, TokenKind::kOp,
      TokenKind::kString, TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, NumberForms) {
  auto tokens = Tokenize("42 3.14 -7 1..i");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "3.14");
  EXPECT_EQ((*tokens)[2].text, "-7");
  EXPECT_EQ((*tokens)[3].text, "1");  // "1..i" does not glue the dot
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kDotDot);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(LexerTest, BangForms) {
  auto tokens = Tokenize("!A a != b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kBang);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kOp);
  EXPECT_EQ((*tokens)[3].text, "!=");
}

TEST(ParserTest, ParsesQ1) {
  auto q = ParseQuery(kQ1, "Q1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name, "Q1");
  ASSERT_EQ(q->components.size(), 3u);
  EXPECT_EQ(q->components[0].event_type, "JobStart");
  EXPECT_EQ(q->components[0].variable, "a");
  EXPECT_FALSE(q->components[0].kleene);
  EXPECT_TRUE(q->components[1].kleene);
  EXPECT_EQ(q->components[1].variable, "b");
  EXPECT_EQ(q->partition_attribute, "jobId");
  ASSERT_EQ(q->return_items.size(), 3u);
  EXPECT_EQ(q->return_items[0].ref.attribute, "timestamp");
  EXPECT_EQ(q->return_items[0].ref.index, KleeneIndex::kCurrent);
  EXPECT_EQ(q->return_items[2].agg, ReturnAgg::kSum);
  EXPECT_EQ(q->return_items[2].ref.index, KleeneIndex::kRange);
  EXPECT_EQ(q->return_items[2].OutputName(), "sum_dataSize");
  ASSERT_TRUE(q->KleeneComponentIndex().has_value());
  EXPECT_EQ(*q->KleeneComponentIndex(), 1u);
}

TEST(ParserTest, RoundTripThroughToString) {
  auto q = ParseQuery(kQ1, "Q1");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(q->ToString(), "Q1");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST(ParserTest, PredicatesWithConstantsAndAttrs) {
  auto q = ParseQuery(
      "PATTERN SEQ(A a, B b) WHERE [k] AND a.x > 3 AND b.y <= 2.5 AND "
      "b.z = a.x AND a.name = 'alpha'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates.size(), 4u);
  EXPECT_EQ(q->predicates[0].op, CompareOp::kGt);
  EXPECT_EQ(q->predicates[0].rhs_constant->AsInt64(), 3);
  EXPECT_EQ(q->predicates[1].rhs_constant->type(), ValueType::kDouble);
  EXPECT_TRUE(q->predicates[2].rhs_attr.has_value());
  EXPECT_EQ(q->predicates[2].rhs_attr->variable, "a");
  EXPECT_EQ(q->predicates[3].rhs_constant->AsString(), "alpha");
}

TEST(ParserTest, KleeneMarkerVariants) {
  // `DataIO+ b[]`, `DataIO+ b`, and `DataIO b[]` all denote a kleene
  // component.
  for (const char* text :
       {"PATTERN SEQ(A a, B+ b[], C c)", "PATTERN SEQ(A a, B+ b, C c)",
        "PATTERN SEQ(A a, B b[], C c)"}) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    EXPECT_TRUE(q->components[1].kleene) << text;
  }
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery("pattern seq(A a) where [k] return (a.x)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->partition_attribute, "k");
}

TEST(ParserTest, TrailingReturnBracketsAccepted) {
  auto q = ParseQuery("PATTERN SEQ(A a) RETURN (a.x)[]");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(ParserTest, AggregateFunctions) {
  auto q = ParseQuery(
      "PATTERN SEQ(A a, B+ b[]) RETURN (sum(b[1..i].x), count(b[1..i].x), "
      "avg(b[1..i].x), min(b[1..i].x), max(b[1..i].x))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->return_items.size(), 5u);
  EXPECT_EQ(q->return_items[0].agg, ReturnAgg::kSum);
  EXPECT_EQ(q->return_items[1].agg, ReturnAgg::kCount);
  EXPECT_EQ(q->return_items[2].agg, ReturnAgg::kAvg);
  EXPECT_EQ(q->return_items[3].agg, ReturnAgg::kMin);
  EXPECT_EQ(q->return_items[4].agg, ReturnAgg::kMax);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ()").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a").ok());
  EXPECT_FALSE(ParseQuery("SEQ(A a)").ok());                    // missing PATTERN
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE").ok());      // dangling WHERE
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) RETURN a.x").ok()); // missing parens
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) trailing").ok());
}

TEST(ParserTest, SemanticErrors) {
  // Duplicate variable.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a, B a)").ok());
  // Two kleene components.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A+ a[], B+ b[])").ok());
  // Duplicate partition attribute.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WHERE [x] AND [y]").ok());
  // Bad kleene index.
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A+ a[]) RETURN (a[j].x)").ok());
}

TEST(ParserTest, QueryToStringIsStable) {
  auto q = ParseQuery(kQ1, "Q1");
  ASSERT_TRUE(q.ok());
  const std::string s = q->ToString();
  EXPECT_NE(s.find("PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c)"),
            std::string::npos);
  EXPECT_NE(s.find("WHERE [jobId]"), std::string::npos);
  EXPECT_NE(s.find("sum(b[1..i].dataSize)"), std::string::npos);
}

}  // namespace
}  // namespace exstream
