#include "explain/explanation.h"

#include <gtest/gtest.h>

#include "explain/predicate_builder.h"
#include "explain/reward.h"

namespace exstream {
namespace {

TEST(RangePredicateTest, EvalSemantics) {
  RangePredicate upper;
  upper.feature = "f";
  upper.has_upper = true;
  upper.upper = 10;
  EXPECT_TRUE(upper.Eval(5));
  EXPECT_TRUE(upper.Eval(10));
  EXPECT_FALSE(upper.Eval(11));

  RangePredicate both;
  both.feature = "f";
  both.has_lower = true;
  both.lower = 3;
  both.has_upper = true;
  both.upper = 7;
  EXPECT_TRUE(both.Eval(5));
  EXPECT_FALSE(both.Eval(2));
  EXPECT_FALSE(both.Eval(8));

  RangePredicate unbounded;  // asserts nothing -> never satisfied
  EXPECT_FALSE(unbounded.Eval(5));
}

TEST(RangePredicateTest, ToStringForms) {
  RangePredicate p;
  p.feature = "Mem.free.raw";
  p.has_upper = true;
  p.upper = 1978482;
  EXPECT_EQ(p.ToString(), "Mem.free.raw <= 1978482");
  p.has_lower = true;
  p.lower = 5;
  EXPECT_NE(p.ToString().find("AND"), std::string::npos);
}

TEST(ExplanationClauseTest, DisjunctionSemantics) {
  // The paper's example: f <= 20 OR (f >= 30 AND f <= 50).
  ExplanationClause clause;
  clause.feature = "f2";
  RangePredicate low;
  low.feature = "f2";
  low.has_upper = true;
  low.upper = 20;
  RangePredicate mid;
  mid.feature = "f2";
  mid.has_lower = true;
  mid.lower = 30;
  mid.has_upper = true;
  mid.upper = 50;
  clause.disjuncts = {low, mid};
  EXPECT_TRUE(clause.Eval(10));
  EXPECT_FALSE(clause.Eval(25));
  EXPECT_TRUE(clause.Eval(40));
  EXPECT_FALSE(clause.Eval(60));
  EXPECT_NE(clause.ToString().find(" OR "), std::string::npos);
}

TEST(ExplanationTest, ConjunctionAcrossFeatures) {
  // Example 2.1: MemFree < c1 AND SwapFree < c2.
  Explanation exp;
  ExplanationClause mem;
  mem.feature = "MemUsage.memFree.mean@10";
  RangePredicate p1;
  p1.feature = mem.feature;
  p1.has_upper = true;
  p1.upper = 1978482;
  mem.disjuncts = {p1};
  ExplanationClause swap;
  swap.feature = "MemUsage.swapFree.mean@10";
  RangePredicate p2;
  p2.feature = swap.feature;
  p2.has_upper = true;
  p2.upper = 361462;
  swap.disjuncts = {p2};
  exp.AddClause(mem);
  exp.AddClause(swap);

  EXPECT_EQ(exp.NumFeatures(), 2u);
  EXPECT_TRUE(exp.Eval({{mem.feature, 1.5e6}, {swap.feature, 3e5}}));
  EXPECT_FALSE(exp.Eval({{mem.feature, 1.5e6}, {swap.feature, 9e5}}));
  // Missing feature makes the clause false.
  EXPECT_FALSE(exp.Eval({{mem.feature, 1.5e6}}));
  const std::string s = exp.ToString();
  EXPECT_NE(s.find(" AND "), std::string::npos);
}

TEST(ExplanationTest, EmptyExplanationNeverFires) {
  Explanation exp;
  EXPECT_TRUE(exp.empty());
  EXPECT_FALSE(exp.Eval({{"f", 1.0}}));
  EXPECT_EQ(exp.ToString(), "(empty explanation)");
}

RankedFeature FeatureWith(std::vector<double> abnormal, std::vector<double> reference,
                          const char* type = "M", const char* attr = "x") {
  RankedFeature f;
  f.spec.event_type_name = type;
  f.spec.attribute_name = attr;
  f.spec.agg = AggregateKind::kRaw;
  for (size_t i = 0; i < abnormal.size(); ++i) {
    (void)f.abnormal_series.Append(static_cast<Timestamp>(i), abnormal[i]);
  }
  for (size_t i = 0; i < reference.size(); ++i) {
    (void)f.reference_series.Append(static_cast<Timestamp>(i), reference[i]);
  }
  f.entropy = ComputeEntropyDistance(abnormal, reference);
  return f;
}

TEST(PredicateBuilderTest, PerfectSeparationOneBoundary) {
  // Sec. 5.4: "if a feature offers perfect separation there is one boundary
  //  and only one predicate is built: e.g. f1 <= 10".
  const RankedFeature f = FeatureWith({1, 2, 3}, {9, 10, 11});
  auto clause = BuildClause(f);
  ASSERT_TRUE(clause.ok());
  ASSERT_EQ(clause->disjuncts.size(), 1u);
  EXPECT_FALSE(clause->disjuncts[0].has_lower);
  EXPECT_TRUE(clause->disjuncts[0].has_upper);
  EXPECT_DOUBLE_EQ(clause->disjuncts[0].upper, 6.0);
  EXPECT_TRUE(clause->Eval(2));
  EXPECT_FALSE(clause->Eval(9));
}

TEST(PredicateBuilderTest, MultipleAbnormalRangesDisjunction) {
  const RankedFeature f = FeatureWith({1, 2, 40, 41}, {10, 11, 12});
  auto clause = BuildClause(f);
  ASSERT_TRUE(clause.ok());
  ASSERT_EQ(clause->disjuncts.size(), 2u);
  EXPECT_TRUE(clause->Eval(0));
  EXPECT_FALSE(clause->Eval(11));
  EXPECT_TRUE(clause->Eval(100));
}

TEST(PredicateBuilderTest, FullyMixedFeatureRejected) {
  const RankedFeature f = FeatureWith({5, 5}, {5, 5});
  EXPECT_FALSE(BuildClause(f).ok());
}

TEST(PredicateBuilderTest, ExplanationSkipsUnusableFeatures) {
  std::vector<RankedFeature> features = {FeatureWith({1, 2}, {9, 10}, "M", "good"),
                                         FeatureWith({5, 5}, {5, 5}, "M", "mixed")};
  auto exp = BuildExplanation(features);
  ASSERT_TRUE(exp.ok());
  EXPECT_EQ(exp->NumFeatures(), 1u);
  EXPECT_EQ(exp->FeatureNames()[0], "M.good.raw");
}

TEST(PredicateBuilderTest, ExplanationClassifiesItsOwnTrainingData) {
  // Property: the built explanation is true on abnormal values and false on
  // reference values of its source feature.
  const RankedFeature f = FeatureWith({1, 2, 3, 4}, {10, 11, 12, 13});
  auto exp = BuildExplanation({f});
  ASSERT_TRUE(exp.ok());
  const std::string name = f.spec.Name();
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    EXPECT_TRUE(exp->Eval({{name, v}}));
  }
  for (double v : {10.0, 11.0, 12.0, 13.0}) {
    EXPECT_FALSE(exp->Eval({{name, v}}));
  }
}

}  // namespace
}  // namespace exstream
