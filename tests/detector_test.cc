#include "detect/detector.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/metrics.h"
#include "sim/workloads.h"

namespace exstream {
namespace {

// --- Synthetic fixture: a family of flat series with one deviating member --

struct SyntheticFamily {
  PartitionTable table;
  std::map<std::string, TimeSeries> series;

  SeriesProvider Provider() {
    auto* series_map = &series;
    return [series_map](const std::string&,
                        const std::string& partition) -> Result<TimeSeries> {
      auto it = series_map->find(partition);
      if (it == series_map->end()) return Status::NotFound("no series");
      return it->second;
    };
  }
};

// Partition `name` covering [start, start+600]; values `level` except an
// optional deviation in the middle third.
void AddPartition(SyntheticFamily* family, const std::string& name, Timestamp start,
                  double level, double deviation, uint64_t seed) {
  Rng rng(seed);
  TimeSeries s;
  for (Timestamp t = 0; t <= 600; t += 5) {
    const bool mid = t >= 200 && t < 400;
    (void)s.Append(start + t,
                   level + (mid ? deviation : 0.0) + rng.Gaussian(0, 0.3));
  }
  PartitionRecord rec;
  rec.query_name = "Q";
  rec.partition = name;
  rec.dimensions = {{"program", "p"}};
  rec.start_ts = start;
  rec.end_ts = start + 600;
  rec.num_points = s.size();
  family->table.Upsert(rec);
  family->series[name] = std::move(s);
}

TEST(DetectorTest, FlagsTheDeviatingPartition) {
  SyntheticFamily family;
  AddPartition(&family, "n1", 0, 10, 0, 1);
  AddPartition(&family, "n2", 1000, 10, 0, 2);
  AddPartition(&family, "n3", 2000, 10, 0, 3);
  AddPartition(&family, "odd", 3000, 10, 40, 4);  // deviates in the middle

  AnomalyDetector detector(&family.table, family.Provider());
  auto seed = family.table.Get("Q", "n1");
  ASSERT_TRUE(seed.ok());
  auto anomalies = detector.Detect(*seed);
  ASSERT_TRUE(anomalies.ok()) << anomalies.status().ToString();
  ASSERT_EQ(anomalies->size(), 1u);
  const DetectedAnomaly& a = (*anomalies)[0];
  EXPECT_EQ(a.partition, "odd");
  EXPECT_GT(a.score, 0.45);
  // Localized roughly to the middle third [3200, 3400].
  EXPECT_NEAR(static_cast<double>(a.abnormal_region.lower), 3200, 80);
  EXPECT_NEAR(static_cast<double>(a.abnormal_region.upper), 3400, 80);
  // Reference is the tail of the same partition.
  EXPECT_EQ(a.reference_partition, "odd");
  EXPECT_GT(a.reference_region.lower, a.abnormal_region.upper);
}

TEST(DetectorTest, AllNormalFamilyYieldsNothing) {
  SyntheticFamily family;
  AddPartition(&family, "n1", 0, 10, 0, 1);
  AddPartition(&family, "n2", 1000, 10, 0, 2);
  AddPartition(&family, "n3", 2000, 10, 0, 3);
  AnomalyDetector detector(&family.table, family.Provider());
  auto anomalies = detector.Detect(*family.table.Get("Q", "n1"));
  ASSERT_TRUE(anomalies.ok());
  EXPECT_TRUE(anomalies->empty());
}

TEST(DetectorTest, TooSmallFamilyRejected) {
  SyntheticFamily family;
  AddPartition(&family, "n1", 0, 10, 0, 1);
  AddPartition(&family, "n2", 1000, 10, 0, 2);
  AnomalyDetector detector(&family.table, family.Provider());
  EXPECT_FALSE(detector.Detect(*family.table.Get("Q", "n1")).ok());
}

TEST(DetectorTest, ScoresOrderedByDeviation) {
  SyntheticFamily family;
  AddPartition(&family, "n1", 0, 10, 0, 1);
  AddPartition(&family, "n2", 1000, 10, 0, 2);
  AddPartition(&family, "n3", 2000, 10, 0, 3);
  AddPartition(&family, "odd", 3000, 10, 40, 4);
  AnomalyDetector detector(&family.table, family.Provider());
  auto scores = detector.Scores(*family.table.Get("Q", "n1"));
  ASSERT_TRUE(scores.ok());
  double odd_score = 0;
  double max_normal = 0;
  for (const auto& [name, score] : *scores) {
    if (name == "odd") {
      odd_score = score;
    } else {
      max_normal = std::max(max_normal, score);
    }
  }
  EXPECT_GT(odd_score, max_normal);
}

TEST(DetectorTest, AnnotationConversion) {
  DetectedAnomaly a;
  a.partition = "p1";
  a.abnormal_region = {10, 20};
  a.reference_partition = "p2";
  a.reference_region = {30, 40};
  const AnomalyAnnotation ann = a.ToAnnotation("Q9");
  EXPECT_EQ(ann.abnormal.query, "Q9");
  EXPECT_EQ(ann.abnormal.partition, "p1");
  EXPECT_EQ(ann.reference.partition, "p2");
  EXPECT_EQ(ann.abnormal.range.lower, 10);
}

// --- End-to-end: detect + explain with zero human input -------------------

TEST(DetectorTest, EndToEndAutoExplainHadoopAnomaly) {
  WorkloadRunOptions options;
  options.num_nodes = 4;
  options.num_normal_jobs = 3;
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  AnomalyDetector detector((*run)->partitions.get(), (*run)->MakeSeriesProvider());
  auto seed = (*run)->partitions->Get("Q1", "job-000");
  ASSERT_TRUE(seed.ok());
  auto anomalies = detector.Detect(*seed);
  ASSERT_TRUE(anomalies.ok()) << anomalies.status().ToString();
  ASSERT_GE(anomalies->size(), 1u);

  // The flagged partitions must be the two anomalous jobs.
  for (const auto& a : *anomalies) {
    EXPECT_TRUE(a.partition == "job-anomaly" || a.partition == "job-anomaly-test")
        << a.partition;
  }

  // Auto-explain the top detection; consistency against ground truth.
  ExplanationEngine engine =
      (*run)->MakeExplanationEngine((*run)->DefaultExplainOptions());
  auto report = engine.Explain((*anomalies)[0].ToAnnotation("Q1"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->final_features.empty());
  bool covers_truth = false;
  for (const auto& name : report->SelectedFeatureNames()) {
    for (const auto& g : (*run)->ground_truth) {
      if (SameUnderlyingSignal(name, g)) covers_truth = true;
    }
  }
  EXPECT_TRUE(covers_truth);
}

}  // namespace
}  // namespace exstream
