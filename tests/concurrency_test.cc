// Concurrency tests: the archive is written by the ingest path while the
// explanation engine scans it from other threads (the Fig. 18 deployment).

#include <atomic>
#include <future>
#include <thread>

#include <gtest/gtest.h>

#include "archive/archive.h"
#include "cep/match_table.h"
#include "explain/partition_table.h"

namespace exstream {
namespace {

TEST(ConcurrencyTest, ArchiveScanDuringAppend) {
  EventTypeRegistry registry;
  ASSERT_TRUE(
      registry.Register(EventSchema("M", {{"v", ValueType::kDouble}})).ok());
  ArchiveOptions options;
  options.chunk_capacity = 64;
  EventArchive archive(&registry, options);

  std::atomic<bool> stop{false};
  std::atomic<size_t> scans{0};
  std::atomic<bool> scan_error{false};

  std::thread reader([&] {
    while (!stop.load()) {
      auto events = archive.Scan(0, {0, 1 << 20});
      if (!events.ok()) {
        scan_error.store(true);
        return;
      }
      // Scanned events must be time-ordered regardless of concurrent appends.
      for (size_t i = 1; i < events->size(); ++i) {
        if ((*events)[i].ts < (*events)[i - 1].ts) {
          scan_error.store(true);
          return;
        }
      }
      scans.fetch_add(1);
    }
  });

  for (Timestamp t = 0; t < 20000; ++t) {
    archive.OnEvent(Event(0, t, {Value(static_cast<double>(t))}));
  }
  // On a loaded (or single-core) machine the writer can finish before the
  // reader completes a single scan; keep the reader running until it has.
  while (scans.load() == 0 && !scan_error.load()) {
    std::this_thread::yield();
  }
  stop.store(true);
  reader.join();

  EXPECT_FALSE(scan_error.load());
  EXPECT_GT(scans.load(), 0u);
  EXPECT_EQ(archive.CountEvents(0), 20000u);
}

// Regression test for the global-archive-mutex design: a scan reading spill
// files from disk must not block concurrent Appends. The spill-read hook
// stalls the scan *inside* its disk-read phase; Append must complete while
// the scan is parked there. Under the old design (spill reads under the
// archive lock) this test deadlocks: Append waits on the scanner's lock, and
// the scanner waits on a release that only happens after Append returns.
TEST(ConcurrencyTest, AppendNotBlockedBySpillFileRead) {
  EventTypeRegistry registry;
  ASSERT_TRUE(
      registry.Register(EventSchema("M", {{"v", ValueType::kDouble}})).ok());
  char tmpl[] = "/tmp/exstream_spill_block_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);

  std::promise<void> scan_in_disk_read;
  std::promise<void> release_scan;
  std::shared_future<void> release = release_scan.get_future().share();
  std::atomic<bool> hook_fired{false};

  ArchiveOptions options;
  options.chunk_capacity = 8;
  options.spill_dir = std::string(tmpl);
  options.max_resident_chunks = 1;
  options.spill_read_hook_for_testing = [&] {
    // Announce once, then park every spill read until the append finished.
    if (!hook_fired.exchange(true)) scan_in_disk_read.set_value();
    release.wait();
  };
  EventArchive archive(&registry, options);

  constexpr Timestamp kPreloaded = 200;
  for (Timestamp t = 0; t < kPreloaded; ++t) {
    ASSERT_TRUE(archive.Append(Event(0, t, {Value(static_cast<double>(t))})).ok());
  }

  std::thread scanner([&] {
    auto events = archive.Scan(0, {0, 1 << 20});
    ASSERT_TRUE(events.ok());
    // The scan snapshot predates the concurrent append, so it sees exactly
    // the preloaded events.
    EXPECT_EQ(events->size(), static_cast<size_t>(kPreloaded));
  });

  // Wait until the scanner is provably inside its spill-file read...
  scan_in_disk_read.get_future().wait();
  // ...then append. If the scan still held any archive lock across disk I/O,
  // this would deadlock (the scanner resumes only after this append returns).
  ASSERT_TRUE(
      archive.Append(Event(0, kPreloaded, {Value(0.0)})).ok());
  release_scan.set_value();
  scanner.join();
  EXPECT_EQ(archive.CountEvents(0), static_cast<size_t>(kPreloaded) + 1);
}

TEST(ConcurrencyTest, PartitionTableConcurrentUpsertAndQuery) {
  PartitionTable table;
  std::atomic<bool> stop{false};
  std::atomic<bool> error{false};

  std::thread reader([&] {
    PartitionRecord probe;
    probe.query_name = "Q";
    probe.partition = "p-0";
    probe.dimensions = {{"d", "x"}};
    while (!stop.load()) {
      const auto related = table.FindRelated(probe);
      for (const auto& rec : related) {
        if (rec.query_name != "Q") error.store(true);
      }
    }
  });

  for (int i = 0; i < 5000; ++i) {
    PartitionRecord rec;
    rec.query_name = "Q";
    rec.partition = "p-" + std::to_string(i % 50);
    rec.dimensions = {{"d", "x"}};
    rec.start_ts = i;
    rec.end_ts = i + 10;
    rec.num_points = 10;
    table.Upsert(std::move(rec));
  }
  stop.store(true);
  reader.join();

  EXPECT_FALSE(error.load());
  EXPECT_EQ(table.size(), 50u);
}

TEST(ConcurrencyTest, MatchTableReadWhileAppending) {
  MatchTable table({"col"});
  std::atomic<bool> stop{false};
  std::atomic<bool> error{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto rows = table.Rows("p");
      for (size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].ts < rows[i - 1].ts) error.store(true);
      }
      auto series = table.ExtractSeries("p", "col");
      (void)series;
    }
  });
  for (Timestamp t = 0; t < 20000; ++t) {
    MatchRow row;
    row.ts = t;
    row.values = {Value(static_cast<double>(t))};
    table.Append("p", std::move(row));
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(error.load());
  EXPECT_EQ(table.NumRows("p"), 20000u);
}

}  // namespace
}  // namespace exstream
