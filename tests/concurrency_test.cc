// Concurrency tests: the archive is written by the ingest path while the
// explanation engine scans it from other threads (the Fig. 18 deployment).

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "archive/archive.h"
#include "cep/match_table.h"
#include "explain/partition_table.h"

namespace exstream {
namespace {

TEST(ConcurrencyTest, ArchiveScanDuringAppend) {
  EventTypeRegistry registry;
  ASSERT_TRUE(
      registry.Register(EventSchema("M", {{"v", ValueType::kDouble}})).ok());
  ArchiveOptions options;
  options.chunk_capacity = 64;
  EventArchive archive(&registry, options);

  std::atomic<bool> stop{false};
  std::atomic<size_t> scans{0};
  std::atomic<bool> scan_error{false};

  std::thread reader([&] {
    while (!stop.load()) {
      auto events = archive.Scan(0, {0, 1 << 20});
      if (!events.ok()) {
        scan_error.store(true);
        return;
      }
      // Scanned events must be time-ordered regardless of concurrent appends.
      for (size_t i = 1; i < events->size(); ++i) {
        if ((*events)[i].ts < (*events)[i - 1].ts) {
          scan_error.store(true);
          return;
        }
      }
      scans.fetch_add(1);
    }
  });

  for (Timestamp t = 0; t < 20000; ++t) {
    archive.OnEvent(Event(0, t, {Value(static_cast<double>(t))}));
  }
  stop.store(true);
  reader.join();

  EXPECT_FALSE(scan_error.load());
  EXPECT_GT(scans.load(), 0u);
  EXPECT_EQ(archive.CountEvents(0), 20000u);
}

TEST(ConcurrencyTest, PartitionTableConcurrentUpsertAndQuery) {
  PartitionTable table;
  std::atomic<bool> stop{false};
  std::atomic<bool> error{false};

  std::thread reader([&] {
    PartitionRecord probe;
    probe.query_name = "Q";
    probe.partition = "p-0";
    probe.dimensions = {{"d", "x"}};
    while (!stop.load()) {
      const auto related = table.FindRelated(probe);
      for (const auto& rec : related) {
        if (rec.query_name != "Q") error.store(true);
      }
    }
  });

  for (int i = 0; i < 5000; ++i) {
    PartitionRecord rec;
    rec.query_name = "Q";
    rec.partition = "p-" + std::to_string(i % 50);
    rec.dimensions = {{"d", "x"}};
    rec.start_ts = i;
    rec.end_ts = i + 10;
    rec.num_points = 10;
    table.Upsert(std::move(rec));
  }
  stop.store(true);
  reader.join();

  EXPECT_FALSE(error.load());
  EXPECT_EQ(table.size(), 50u);
}

TEST(ConcurrencyTest, MatchTableReadWhileAppending) {
  MatchTable table({"col"});
  std::atomic<bool> stop{false};
  std::atomic<bool> error{false};
  std::thread reader([&] {
    while (!stop.load()) {
      auto rows = table.Rows("p");
      for (size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].ts < rows[i - 1].ts) error.store(true);
      }
      auto series = table.ExtractSeries("p", "col");
      (void)series;
    }
  });
  for (Timestamp t = 0; t < 20000; ++t) {
    MatchRow row;
    row.ts = t;
    row.values = {Value(static_cast<double>(t))};
    table.Append("p", std::move(row));
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(error.load());
  EXPECT_EQ(table.NumRows("p"), 20000u);
}

}  // namespace
}  // namespace exstream
