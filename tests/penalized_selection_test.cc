// Verifies the Appendix-A negative result: the penalized optimization of
// Function 8 degenerates into thresholding the per-feature distance.

#include "ml/penalized_selection.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

TEST(PenalizedSelectionTest, ClosedFormIsAThreshold) {
  // d^2 > lambda1 - lambda2 = 0.5: only distances > sqrt(0.5) survive.
  const std::vector<double> d = {0.1, 0.5, 0.71, 0.9, 1.5};
  auto sel = PenalizedSelectionClosedForm(d, 1.0, 0.5);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (std::vector<bool>{false, false, true, true, true}));
}

TEST(PenalizedSelectionTest, BruteForceMatchesClosedForm) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> d;
    const int n = 6 + static_cast<int>(rng.UniformInt(0, 8));
    for (int i = 0; i < n; ++i) d.push_back(rng.Uniform(0, 2));
    const double lambda2 = rng.Uniform(0, 0.5);
    const double lambda1 = lambda2 + rng.Uniform(0.1, 1.5);
    auto closed = PenalizedSelectionClosedForm(d, lambda1, lambda2);
    auto brute = PenalizedSelectionBruteForce(d, lambda1, lambda2);
    ASSERT_TRUE(closed.ok());
    ASSERT_TRUE(brute.ok());
    // The optimum is the threshold rule — the "optimization" adds nothing.
    EXPECT_EQ(*closed, *brute) << "trial " << trial;
  }
}

TEST(PenalizedSelectionTest, ObjectiveIsAdditivePerSelectedFeature) {
  const std::vector<double> d = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(PenalizedObjective(d, {true, false}, 1.0, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(PenalizedObjective(d, {false, true}, 1.0, 0.25), 3.25);
  EXPECT_DOUBLE_EQ(PenalizedObjective(d, {true, true}, 1.0, 0.25), 3.5);
  EXPECT_DOUBLE_EQ(PenalizedObjective(d, {false, false}, 1.0, 0.25), 0.0);
}

TEST(PenalizedSelectionTest, ParameterValidation) {
  const std::vector<double> d = {1.0};
  EXPECT_FALSE(PenalizedSelectionClosedForm(d, 0.5, 0.5).ok());   // l1 == l2
  EXPECT_FALSE(PenalizedSelectionClosedForm(d, 0.5, 0.7).ok());   // l1 < l2
  EXPECT_FALSE(PenalizedSelectionClosedForm(d, 0.5, -0.1).ok());  // l2 < 0
  std::vector<double> too_many(21, 1.0);
  EXPECT_FALSE(PenalizedSelectionBruteForce(too_many, 1.0, 0.5).ok());
}

TEST(PenalizedSelectionTest, ThresholdHasNoConcisenessPressure) {
  // The paper's point: unlike a submodular reward, the threshold rule cannot
  // prefer a small set — every feature above the bar is selected, however
  // many there are.
  std::vector<double> d(15, 1.0);  // 15 identical, redundant features
  auto sel = PenalizedSelectionClosedForm(d, 1.0, 0.5);
  ASSERT_TRUE(sel.ok());
  size_t count = 0;
  for (bool s : *sel) count += s ? 1 : 0;
  EXPECT_EQ(count, 15u);  // all of them — no conciseness
}

}  // namespace
}  // namespace exstream
