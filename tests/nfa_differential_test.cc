// Differential testing of the CEP engine: random event streams are evaluated
// both by the engine and by an independent, straight-line reference matcher
// implementing the documented semantics (single run per partition,
// skip-till-next-match, kleene-plus streaming rows, WITHIN expiry, negation
// guards). Any divergence is a bug in one of them.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "common/rng.h"

namespace exstream {
namespace {

// Symbolic event kinds used by the generator.
enum Kind : int { kA = 0, kB = 1, kC = 2, kD = 3 };

struct SymEvent {
  Kind kind;
  Timestamp ts;
};

// Reference matcher for: PATTERN SEQ(A a, B+ b[], [!D d,] C c) [WITHIN w]
// emitting one row per absorbed B. Written as a direct transcription of the
// documented semantics, independent of the NFA code.
struct ReferenceResult {
  size_t rows = 0;
  size_t completions = 0;
};

ReferenceResult ReferenceMatch(const std::vector<SymEvent>& events, bool negate_d,
                               Timestamp within) {
  ReferenceResult result;
  enum { kIdle, kInKleene } state = kIdle;
  bool started = false;  // A seen, no B yet
  Timestamp start_ts = 0;

  auto reset = [&] {
    state = kIdle;
    started = false;
  };

  for (const SymEvent& e : events) {
    // WITHIN expiry first.
    if (within > 0 && (started || state == kInKleene) && e.ts - start_ts > within) {
      reset();
    }
    // Negation guard: D between the kleene phase and C voids the run.
    if (negate_d && e.kind == kD && state == kInKleene) {
      reset();
      continue;  // a D can never start a run
    }
    switch (e.kind) {
      case kA:
        if (!started && state == kIdle) {
          started = true;
          start_ts = e.ts;
        }
        break;
      case kB:
        if (started || state == kInKleene) {
          state = kInKleene;
          started = true;
          ++result.rows;
        }
        break;
      case kC:
        if (state == kInKleene) {
          ++result.completions;
          reset();
        }
        break;
      case kD:
        break;
    }
  }
  return result;
}

class NfaDifferentialTest
    : public ::testing::TestWithParam<std::tuple<bool, Timestamp, uint64_t>> {};

TEST_P(NfaDifferentialTest, EngineMatchesReference) {
  const auto& [negate_d, within, seed] = GetParam();

  EventTypeRegistry registry;
  ASSERT_TRUE(registry.Register(EventSchema("A", {{"k", ValueType::kString}})).ok());
  ASSERT_TRUE(registry.Register(EventSchema("B", {{"k", ValueType::kString}})).ok());
  ASSERT_TRUE(registry.Register(EventSchema("C", {{"k", ValueType::kString}})).ok());
  ASSERT_TRUE(registry.Register(EventSchema("D", {{"k", ValueType::kString}})).ok());

  std::string text = "PATTERN SEQ(A a, B+ b[], ";
  if (negate_d) text += "!D d, ";
  text += "C c) WHERE [k] ";
  if (within > 0) text += "WITHIN " + std::to_string(within) + " ";
  text += "RETURN (b[i].timestamp, count(b[1..i].k))";

  CepEngine engine(&registry);
  auto qid = engine.AddQueryText(text, "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  size_t completions = 0;
  engine.SetMatchCallback([&](const MatchNotification& n) {
    if (n.complete) ++completions;
  });

  // Random stream over one partition.
  Rng rng(seed);
  std::vector<SymEvent> events;
  Timestamp ts = 0;
  const int n = 200 + static_cast<int>(rng.UniformInt(0, 200));
  for (int i = 0; i < n; ++i) {
    ts += rng.UniformInt(1, 12);
    events.push_back({static_cast<Kind>(rng.UniformInt(0, 3)), ts});
  }

  for (const SymEvent& e : events) {
    engine.OnEvent(Event(static_cast<EventTypeId>(e.kind), e.ts, {Value("p")}));
  }

  const ReferenceResult expected = ReferenceMatch(events, negate_d, within);
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), expected.rows)
      << "query: " << text << " seed " << seed;
  EXPECT_EQ(completions, expected.completions) << "query: " << text;
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, NfaDifferentialTest,
    ::testing::Combine(::testing::Bool(),                       // negation on/off
                       ::testing::Values<Timestamp>(0, 25, 60),  // WITHIN
                       ::testing::Range(uint64_t{1}, uint64_t{9})));

}  // namespace
}  // namespace exstream
