// Differential test of the batched / sharded ingestion path.
//
// Contract under test (see cep/engine.h): for ANY batch split and ANY
// ingest_threads value, OnEventBatch must produce MatchTables and a match
// callback sequence bit-identical to per-event sequential OnEvent. The
// streams include adversarial partition-key skew — one hot key (every event
// in the same partition: zero sharding parallelism inside a query) and
// all-unique keys (every completion is a fresh partition: maximal interner
// churn) — plus the random mixed stream the stress test uses.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cep/engine.h"
#include "common/rng.h"
#include "common/strings.h"

namespace exstream {
namespace {

constexpr char kQuery[] =
    "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
    "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))";

// A deep copy of one MatchNotification, safe to compare after the fact.
struct NoteCopy {
  QueryId query;
  uint32_t partition_id;
  std::string partition;
  Timestamp ts;
  std::vector<Value> values;
  bool complete;

  static NoteCopy From(const MatchNotification& n) {
    return NoteCopy{n.query,  n.partition_id, std::string(n.partition),
                    n.row.ts, n.row.values,   n.complete};
  }
  bool operator==(const NoteCopy& o) const {
    return query == o.query && partition_id == o.partition_id &&
           partition == o.partition && ts == o.ts && values == o.values &&
           complete == o.complete;
  }
};

// Snapshot of one query's match table: partition list order included.
struct TableCopy {
  std::vector<std::string> partitions;
  std::vector<std::vector<MatchRow>> rows;
  std::vector<bool> complete;

  static TableCopy From(const MatchTable& t) {
    TableCopy c;
    c.partitions = t.Partitions();
    for (const std::string& p : c.partitions) {
      c.rows.push_back(t.Rows(p));
      c.complete.push_back(t.IsComplete(p));
    }
    return c;
  }
};

void ExpectTablesEqual(const TableCopy& a, const TableCopy& b,
                       const std::string& label) {
  ASSERT_EQ(a.partitions, b.partitions) << label;
  ASSERT_EQ(a.complete, b.complete) << label;
  for (size_t p = 0; p < a.partitions.size(); ++p) {
    const auto& ra = a.rows[p];
    const auto& rb = b.rows[p];
    ASSERT_EQ(ra.size(), rb.size()) << label << " partition " << a.partitions[p];
    for (size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i].ts, rb[i].ts) << label << " " << a.partitions[p] << "#" << i;
      ASSERT_EQ(ra[i].values, rb[i].values)
          << label << " " << a.partitions[p] << "#" << i;
    }
  }
}

class IngestDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Start", {{"job", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Tick", {{"job", ValueType::kString},
                                                   {"size", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("End", {{"job", ValueType::kString}}))
                    .ok());
  }

  // Random interleaving over `num_jobs` partitions (the stress-test stream).
  std::vector<Event> MixedStream(uint64_t seed, int num_jobs, int num_events) {
    Rng rng(seed);
    std::vector<Event> events;
    Timestamp ts = 0;
    std::vector<int> phase(static_cast<size_t>(num_jobs), 0);
    for (int i = 0; i < num_events; ++i) {
      ts += rng.UniformInt(1, 3);
      const int j = static_cast<int>(rng.UniformInt(0, num_jobs - 1));
      const std::string job = StrFormat("job-%d", j);
      auto& p = phase[static_cast<size_t>(j)];
      const int64_t kind = rng.UniformInt(0, 5);
      if (p == 0 && kind == 0) {
        events.emplace_back(0, ts, MakeValues(job));
        p = 1;
      } else if (p == 1 && kind == 5) {
        events.emplace_back(2, ts, MakeValues(job));
        p = 0;
      } else {
        events.emplace_back(1, ts, MakeValues(job, rng.Gaussian(5, 2)));
      }
    }
    return events;
  }

  // One hot key: every event belongs to the same partition.
  std::vector<Event> HotKeyStream(int num_events) {
    std::vector<Event> events;
    Timestamp ts = 0;
    const std::string job = "the-one-job";
    int phase = 0;
    for (int i = 0; i < num_events; ++i) {
      ++ts;
      if (phase == 0) {
        events.emplace_back(0, ts, MakeValues(job));
        phase = 1;
      } else if (phase > 8) {
        events.emplace_back(2, ts, MakeValues(job));
        phase = 0;
      } else {
        events.emplace_back(1, ts, MakeValues(job, static_cast<double>(i)));
        ++phase;
      }
    }
    return events;
  }

  // All-unique keys: every Start/Tick/End triple is a brand-new partition.
  std::vector<Event> UniqueKeyStream(int num_triples) {
    std::vector<Event> events;
    Timestamp ts = 0;
    for (int i = 0; i < num_triples; ++i) {
      const std::string job = StrFormat("uniq-%d", i);
      events.emplace_back(0, ++ts, MakeValues(job));
      events.emplace_back(1, ++ts, MakeValues(job, static_cast<double>(i)));
      events.emplace_back(2, ++ts, MakeValues(job));
    }
    return events;
  }

  // Runs `num_queries` replicas per-event and returns tables + notes.
  // merge=false is the legacy per-query evaluator — the ground truth every
  // other configuration (merged, batched, sharded) is compared against.
  void RunSequential(const std::vector<Event>& stream, int num_queries, bool merge,
                     std::vector<TableCopy>* tables, std::vector<NoteCopy>* notes) {
    CepEngineOptions options;
    options.enable_query_merge = merge;
    CepEngine engine(&registry_, options);
    std::vector<QueryId> ids;
    for (int q = 0; q < num_queries; ++q) {
      auto qid = engine.AddQueryText(kQuery, StrFormat("Q%d", q));
      ASSERT_TRUE(qid.ok());
      ids.push_back(*qid);
    }
    engine.SetMatchCallback(
        [notes](const MatchNotification& n) { notes->push_back(NoteCopy::From(n)); });
    for (const Event& e : stream) engine.OnEvent(e);
    for (const QueryId id : ids) tables->push_back(TableCopy::From(engine.match_table(id)));
  }

  // Runs the same replicas through OnEventBatch with the given sharding.
  void RunBatched(const std::vector<Event>& stream, int num_queries,
                  size_t ingest_threads, size_t batch_size, bool merge,
                  std::vector<TableCopy>* tables, std::vector<NoteCopy>* notes) {
    CepEngineOptions options;
    options.ingest_threads = ingest_threads;
    options.enable_query_merge = merge;
    CepEngine engine(&registry_, options);
    std::vector<QueryId> ids;
    for (int q = 0; q < num_queries; ++q) {
      auto qid = engine.AddQueryText(kQuery, StrFormat("Q%d", q));
      ASSERT_TRUE(qid.ok());
      ids.push_back(*qid);
    }
    engine.SetMatchCallback(
        [notes](const MatchNotification& n) { notes->push_back(NoteCopy::From(n)); });
    for (size_t i = 0; i < stream.size(); i += batch_size) {
      const size_t end = std::min(stream.size(), i + batch_size);
      engine.OnEventBatch(EventBatch(stream.begin() + static_cast<ptrdiff_t>(i),
                                     stream.begin() + static_cast<ptrdiff_t>(end)));
    }
    EXPECT_EQ(engine.events_processed(), stream.size());
    for (const QueryId id : ids) tables->push_back(TableCopy::From(engine.match_table(id)));
  }

  void CheckDifferential(const std::vector<Event>& stream, int num_queries,
                         const std::string& stream_label) {
    std::vector<TableCopy> ref_tables;
    std::vector<NoteCopy> ref_notes;
    RunSequential(stream, num_queries, /*merge=*/false, &ref_tables, &ref_notes);
    ASSERT_FALSE(ref_notes.empty()) << stream_label << ": stream produced no matches";

    auto compare = [&](const std::vector<TableCopy>& tables,
                       const std::vector<NoteCopy>& notes,
                       const std::string& label) {
      ASSERT_EQ(tables.size(), ref_tables.size()) << label;
      for (size_t q = 0; q < tables.size(); ++q) {
        ExpectTablesEqual(ref_tables[q], tables[q], label);
      }
      ASSERT_EQ(notes.size(), ref_notes.size()) << label;
      for (size_t i = 0; i < notes.size(); ++i) {
        ASSERT_TRUE(notes[i] == ref_notes[i]) << label << " note #" << i;
      }
    };

    // Merged sequential vs the legacy reference: the shared-NFA evaluator
    // alone, no batching in play.
    {
      std::vector<TableCopy> tables;
      std::vector<NoteCopy> notes;
      RunSequential(stream, num_queries, /*merge=*/true, &tables, &notes);
      compare(tables, notes, stream_label + " merged-sequential");
    }

    for (const bool merge : {true, false}) {
      for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        for (const size_t batch : {size_t{1}, size_t{7}, size_t{512}}) {
          // The legacy batched path needs one non-trivial config for
          // coverage; the full grid belongs to the default (merged) mode.
          if (!merge && (threads != 2 || batch != 7)) continue;
          const std::string label =
              StrFormat("%s merge=%d threads=%zu batch=%zu", stream_label.c_str(),
                        merge, threads, batch);
          std::vector<TableCopy> tables;
          std::vector<NoteCopy> notes;
          RunBatched(stream, num_queries, threads, batch, merge, &tables, &notes);
          compare(tables, notes, label);
        }
      }
    }
  }

  EventTypeRegistry registry_;
};

TEST_F(IngestDifferentialTest, MixedStreamBitIdentical) {
  CheckDifferential(MixedStream(7, 20, 6000), 5, "mixed");
}

TEST_F(IngestDifferentialTest, HotKeyBitIdentical) {
  CheckDifferential(HotKeyStream(4000), 5, "hot-key");
}

TEST_F(IngestDifferentialTest, UniqueKeysBitIdentical) {
  CheckDifferential(UniqueKeyStream(1500), 5, "unique-keys");
}

TEST_F(IngestDifferentialTest, SingleQueryMoreShardsThanQueries) {
  // ingest_threads > num_queries: shards beyond the query count must idle
  // harmlessly and the result stays identical.
  CheckDifferential(MixedStream(11, 8, 2000), 1, "single-query");
}

TEST_F(IngestDifferentialTest, UnpartitionedQueryBatched) {
  // A query with no WHERE [key] clause routes through the empty-key path.
  constexpr char kUnpartitioned[] =
      "PATTERN SEQ(Start a, Tick+ b[], End c) "
      "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))";
  const auto stream = HotKeyStream(1200);

  auto run = [&](size_t threads, size_t batch_size, bool batched,
                 bool merge = true) {
    CepEngineOptions options;
    options.ingest_threads = threads;
    options.enable_query_merge = merge;
    CepEngine engine(&registry_, options);
    auto qid = engine.AddQueryText(kUnpartitioned, "U");
    EXPECT_TRUE(qid.ok());
    if (batched) {
      for (size_t i = 0; i < stream.size(); i += batch_size) {
        const size_t end = std::min(stream.size(), i + batch_size);
        engine.OnEventBatch(EventBatch(stream.begin() + static_cast<ptrdiff_t>(i),
                                       stream.begin() + static_cast<ptrdiff_t>(end)));
      }
    } else {
      for (const Event& e : stream) engine.OnEvent(e);
    }
    return TableCopy::From(engine.match_table(*qid));
  };

  const TableCopy ref = run(1, 0, false, /*merge=*/false);  // legacy reference
  ExpectTablesEqual(ref, run(1, 0, false), "unpartitioned merged per-event");
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ExpectTablesEqual(ref, run(threads, 64, true),
                      StrFormat("unpartitioned threads=%zu", threads));
  }
}

}  // namespace
}  // namespace exstream
