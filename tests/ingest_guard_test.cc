// Front-end hardening tests: the ingest guard's per-reason rejection and
// quarantine logs, the lateness watermark, a malformed-producer integration
// run, and bounded-queue overload protection (shedding that never wedges the
// producer and is accounted in fault_stats and explanation degradation).

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "archive/serialization.h"
#include "common/fault_injection.h"
#include "io/file_util.h"
#include "sim/chaos.h"
#include "sim/hadoop_sim.h"
#include "xstream/ingest_guard.h"
#include "xstream/system.h"

namespace exstream {
namespace {

constexpr Timestamp kTsMax = std::numeric_limits<Timestamp>::max();

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/exstream_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

// One type: M(d: double, s: string).
EventTypeRegistry MakeTinyRegistry() {
  EventTypeRegistry registry;
  EXPECT_TRUE(registry
                  .Register(EventSchema("M", {{"d", ValueType::kDouble},
                                              {"s", ValueType::kString}}))
                  .ok());
  return registry;
}

Event Ok(Timestamp ts, double d = 1.0) {
  return Event(0, ts, {Value(d), Value(std::string("s"))});
}

TEST(IngestGuardTest, RejectsEachMalformationKind) {
  const EventTypeRegistry registry = MakeTinyRegistry();
  IngestGuard guard(&registry, {});

  EXPECT_TRUE(guard.AdmitOne(Ok(1)));
  EXPECT_FALSE(guard.AdmitOne(Event(7, 2, {Value(1.0)})));  // unknown type
  EXPECT_FALSE(guard.AdmitOne(Event(0, 3, {Value(1.0)})));  // arity
  EXPECT_FALSE(guard.AdmitOne(
      Event(0, 4, {Value(std::string("x")), Value(std::string("s"))})));
  EXPECT_FALSE(guard.AdmitOne(
      Event(0, 5, {Value(std::nan("")), Value(std::string("s"))})));
  EXPECT_FALSE(guard.AdmitOne(Ok(kTsMax)));
  EXPECT_FALSE(guard.AdmitOne(Ok(std::numeric_limits<Timestamp>::min())));
  // int64 where double is declared passes (mirrors EventSchema::ValidateRow).
  EXPECT_TRUE(
      guard.AdmitOne(Event(0, 6, {Value(int64_t{3}), Value(std::string("s"))})));

  const RejectReport r = guard.report();
  EXPECT_EQ(r.unknown_type, 1u);
  EXPECT_EQ(r.arity_mismatch, 1u);
  EXPECT_EQ(r.value_kind_mismatch, 1u);
  EXPECT_EQ(r.non_finite, 1u);
  EXPECT_EQ(r.invalid_timestamp, 2u);
  EXPECT_EQ(r.late, 0u);
  EXPECT_EQ(r.total(), 6u);
  EXPECT_FALSE(r.ToString().empty());
}

TEST(IngestGuardTest, QuarantineFilesAreReadableAndCapped) {
  const EventTypeRegistry registry = MakeTinyRegistry();
  const std::string dir = MakeTempDir("rejects");
  IngestGuardOptions options;
  options.reject_dir = dir;
  options.reject_file_events = 2;  // cut a file every 2 rejects
  options.max_reject_files = 2;    // keep only the newest 2
  size_t rejected = 0;
  {
    IngestGuard guard(&registry, options);
    for (Timestamp ts = 0; ts < 7; ++ts) {
      EXPECT_FALSE(guard.AdmitOne(Event(9, ts, {})));  // unknown type
      ++rejected;
    }
    const RejectReport r = guard.report();
    EXPECT_EQ(r.unknown_type, rejected);
    // 3 full files cut so far (6 events); the 7th is still buffered.
    EXPECT_EQ(r.reject_files_written, 3u);
    EXPECT_EQ(r.reject_file_evictions, 1u);
    // Destruction flushes the partial buffer as a 4th file.
  }
  const auto files = ListDirFiles(dir);
  ASSERT_TRUE(files.ok());
  ASSERT_EQ(files->size(), 2u) << "cap must hold after the final flush";
  size_t quarantined = 0;
  for (const std::string& f : *files) {
    EXPECT_NE(f.find(".quarantine"), std::string::npos);
    const auto events = ReadEventsFile(dir + "/" + f);
    ASSERT_TRUE(events.ok()) << events.status().ToString();
    quarantined += events->size();
    for (const Event& e : *events) EXPECT_EQ(e.type, 9u);
  }
  // Newest two files hold the last 3 rejects (one full pair + the flush).
  EXPECT_EQ(quarantined, 3u);
}

TEST(IngestGuardTest, LatenessWatermarkReordersAndRejectsLate) {
  const EventTypeRegistry registry = MakeTinyRegistry();
  IngestGuardOptions options;
  options.lateness_slack = 10;
  IngestGuard guard(&registry, options);

  // 95 arrives after 105 but within the slack: held and re-ordered.
  EventBatch released = guard.Admit({Ok(100), Ok(105), Ok(95), Ok(120)});
  std::vector<Timestamp> ts;
  for (const Event& e : released) ts.push_back(e.ts);
  EXPECT_EQ(ts, (std::vector<Timestamp>{95, 100, 105}));
  EXPECT_EQ(guard.buffered(), 1u);  // 120 held back

  // 80 is older than the newest release (105): impossible to emit in order.
  released = guard.Admit({Ok(80), Ok(111)});
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(guard.report().late, 1u);
  EXPECT_EQ(guard.buffered(), 2u);

  released = guard.Drain();
  ts.clear();
  for (const Event& e : released) ts.push_back(e.ts);
  EXPECT_EQ(ts, (std::vector<Timestamp>{111, 120}));
  EXPECT_EQ(guard.buffered(), 0u);
}

TEST(IngestGuardTest, MalformingProducerDoesNotWedgeMonitoring) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  HadoopSimConfig sim_config;
  sim_config.num_nodes = 3;
  sim_config.seed = 5;
  HadoopClusterSim sim(sim_config, &registry);
  HadoopJobConfig job;
  job.job_id = "job-m";
  job.program = "p";
  job.dataset = "d";
  job.num_mappers = 6;
  job.num_reducers = 2;
  sim.AddJob(job);
  VectorSink raw;
  ASSERT_TRUE(sim.Run(&raw).ok());

  XStreamConfig config;
  config.guard.reject_dir = MakeTempDir("malformed");
  XStreamSystem system(&registry, config);
  ASSERT_TRUE(system
                  .AddQuery("PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) "
                            "WHERE [jobId] RETURN (b[i].timestamp, a.jobId, "
                            "sum(b[1..i].dataSize))",
                            "Q1")
                  .ok());

  MalformingSinkOptions chaos;
  chaos.malformed_fraction = 0.05;
  chaos.seed = 9;
  chaos.num_known_types = static_cast<uint32_t>(registry.size());
  MalformingSink producer(&system, chaos);
  VectorEventSource source(raw.events());
  source.ReplayBatched(&producer, 128);

  ASSERT_GT(producer.malformed_emitted(), 10u);
  // Every corrupted event was rejected; every clean one was processed.
  EXPECT_EQ(system.reject_report().total(), producer.malformed_emitted());
  EXPECT_EQ(system.engine().events_processed(),
            raw.events().size() - producer.malformed_emitted());
  EXPECT_EQ(system.fault_stats().rejected_events, producer.malformed_emitted());
  // Monitoring still produced matches for the (clean) job pattern events.
  EXPECT_GT(system.engine().match_table(0).TotalRows(), 0u);
}

// A 10x burst against a bounded queue with ShedOldest: the producer never
// blocks, and every event is either processed or accounted as shed.
TEST(IngestGuardTest, ShedOldestBurstNeverBlocksProducer) {
  const EventTypeRegistry registry = MakeTinyRegistry();
  const std::string spill_dir = MakeTempDir("spill");
  XStreamConfig config;
  config.archive.chunk_capacity = 16;
  config.archive.max_resident_chunks = 0;  // every sealed chunk spills
  config.archive.spill_dir = spill_dir;
  config.overload.queue_capacity = 2;
  config.overload.policy = BackpressurePolicy::kShedOldest;
  XStreamSystem system(&registry, config);

  // Slow the worker down: every spill write sleeps, so the queue stays full
  // while the producer bursts.
  FaultPlan plan;
  plan.mode = FaultMode::kDelay;
  plan.op = FaultOp::kWrite;
  plan.path_substring = spill_dir;
  plan.delay_ms = 3;
  FaultInjector::Global().Arm(plan);

  constexpr size_t kBatches = 100;
  constexpr size_t kPerBatch = 16;
  const auto start = std::chrono::steady_clock::now();
  Timestamp ts = 0;
  for (size_t b = 0; b < kBatches; ++b) {
    EventBatch batch;
    for (size_t i = 0; i < kPerBatch; ++i) batch.push_back(Ok(ts++));
    system.OnEventBatch(std::move(batch));
  }
  const auto produce_elapsed = std::chrono::steady_clock::now() - start;
  system.Flush();
  FaultInjector::Global().Disarm();

  // ShedOldest never waits for space: the burst must go through at memory
  // speed even though the worker is orders of magnitude slower.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(produce_elapsed)
                .count(),
            2000);
  const XStreamSystem::FaultStats stats = system.fault_stats();
  EXPECT_GT(stats.shed_events, 0u);
  EXPECT_GT(stats.shed_batches, 0u);
  EXPECT_EQ(system.shed_events(), stats.shed_events);
  EXPECT_EQ(system.engine().events_processed() + stats.shed_events,
            kBatches * kPerBatch);
}

// Block policy: a full queue stalls the producer at most block_deadline_ms
// per batch, then sheds — overload degrades, never deadlocks.
TEST(IngestGuardTest, BlockPolicyShedsAfterDeadline) {
  const EventTypeRegistry registry = MakeTinyRegistry();
  const std::string spill_dir = MakeTempDir("spill");
  XStreamConfig config;
  config.archive.chunk_capacity = 16;
  config.archive.max_resident_chunks = 0;
  config.archive.spill_dir = spill_dir;
  config.overload.queue_capacity = 1;
  config.overload.policy = BackpressurePolicy::kBlock;
  config.overload.block_deadline_ms = 10;
  XStreamSystem system(&registry, config);

  FaultPlan plan;
  plan.mode = FaultMode::kDelay;
  plan.op = FaultOp::kWrite;
  plan.path_substring = spill_dir;
  plan.delay_ms = 25;  // applying one batch far exceeds the block deadline
  FaultInjector::Global().Arm(plan);

  constexpr size_t kBatches = 10;
  constexpr size_t kPerBatch = 32;
  const auto start = std::chrono::steady_clock::now();
  Timestamp ts = 0;
  for (size_t b = 0; b < kBatches; ++b) {
    EventBatch batch;
    for (size_t i = 0; i < kPerBatch; ++i) batch.push_back(Ok(ts++));
    system.OnEventBatch(std::move(batch));
  }
  const auto produce_elapsed = std::chrono::steady_clock::now() - start;
  system.Flush();
  FaultInjector::Global().Disarm();

  // 10 batches x 10ms deadline plus scheduling slack, not 10 x 50ms of I/O.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(produce_elapsed)
                .count(),
            1500);
  const XStreamSystem::FaultStats stats = system.fault_stats();
  EXPECT_GT(stats.shed_events, 0u);
  EXPECT_EQ(system.engine().events_processed() + stats.shed_events,
            kBatches * kPerBatch);
}

// Shed events surface in the DegradationReport of a later explanation and
// mark it degraded (the analysis ran on incomplete data).
TEST(IngestGuardTest, ShedEventsMarkExplanationsDegraded) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  HadoopSimConfig sim_config;
  sim_config.num_nodes = 3;
  sim_config.seed = 77;
  HadoopClusterSim sim(sim_config, &registry);
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 60;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  VectorSink raw;
  ASSERT_TRUE(sim.Run(&raw).ok());

  const std::string spill_dir = MakeTempDir("spill");
  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.archive.chunk_capacity = 16;
  config.archive.max_resident_chunks = 0;
  config.archive.spill_dir = spill_dir;
  config.overload.queue_capacity = 1;
  config.overload.policy = BackpressurePolicy::kShedOldest;
  XStreamSystem system(&registry, config);
  const auto qid = system.AddQuery(
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))",
      "Q1");
  ASSERT_TRUE(qid.ok());

  // Phase 1: the real workload, unsheddable — the queue is drained after
  // every batch, so the tiny capacity never overflows.
  const std::vector<Event>& events = raw.events();
  for (size_t i = 0; i < events.size(); i += 256) {
    const size_t n = std::min<size_t>(256, events.size() - i);
    system.OnEventBatch(EventBatch(events.begin() + i, events.begin() + i + n));
    system.Flush();
  }
  ASSERT_EQ(system.shed_events(), 0u);

  // Phase 2: a post-workload burst of valid metric events that the slowed
  // worker cannot keep up with — these shed without touching the pattern
  // matches the explanation reads.
  const auto cpu_type = registry.IdOf("CpuUsage");
  ASSERT_TRUE(cpu_type.ok());
  EventBatch tail;
  for (const Event& e : raw.events()) {
    if (e.type == *cpu_type) {
      Event shifted = e;
      shifted.ts += 100000;
      tail.push_back(std::move(shifted));
    }
  }
  ASSERT_GT(tail.size(), 100u);
  FaultPlan plan;
  plan.mode = FaultMode::kDelay;
  plan.op = FaultOp::kWrite;
  plan.path_substring = spill_dir;
  plan.delay_ms = 10;
  FaultInjector::Global().Arm(plan);
  for (size_t i = 0; i < tail.size(); i += 16) {
    const size_t n = std::min<size_t>(16, tail.size() - i);
    system.OnEventBatch(EventBatch(tail.begin() + i, tail.begin() + i + n));
  }
  system.Flush();
  FaultInjector::Global().Disarm();
  ASSERT_GT(system.shed_events(), 0u);

  ASSERT_TRUE(system.IndexPartitions(*qid, {{"program", "p"}}).ok());
  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q1", {60, 300}, "job-x"};
  annotation.reference = {"Q1", {360, 600}, "job-x"};
  const auto report = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->degradation.events_shed, system.shed_events());
  EXPECT_TRUE(report->degradation.degraded());
  EXPECT_NE(report->degradation.ToString().find("shed"), std::string::npos);
}

}  // namespace
}  // namespace exstream
