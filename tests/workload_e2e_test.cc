// End-to-end integration tests: simulate a full workload, monitor it with the
// CEP engine, annotate the anomaly, and verify the produced explanation
// matches the expert ground truth (the headline behaviour of the paper).

#include <gtest/gtest.h>

#include "ml/metrics.h"
#include "sim/workloads.h"

namespace exstream {
namespace {

WorkloadRunOptions FastOptions() {
  WorkloadRunOptions options;
  options.num_nodes = 4;
  options.num_normal_jobs = 2;
  options.sc_num_sensors = 6;
  options.sc_num_machines = 6;
  return options;
}

TEST(WorkloadE2eTest, HighMemoryExplanationMatchesGroundTruth) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());  // W1
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExplanationEngine engine = (*run)->MakeExplanationEngine(
      (*run)->DefaultExplainOptions());
  auto report = engine.Explain((*run)->annotation);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ASSERT_FALSE(report->final_features.empty());
  // Every ground truth signal must be covered by the surviving validated set.
  for (const std::string& signal : (*run)->ground_truth) {
    bool covered = false;
    for (const auto& f : report->after_validation) {
      if (SameUnderlyingSignal(f.spec.Name(), signal)) covered = true;
    }
    EXPECT_TRUE(covered) << signal;
  }
  // The uptime false positive must not survive validation.
  for (const auto& f : report->after_validation) {
    EXPECT_NE(f.spec.attribute_name, "uptime");
  }
  // And the explanation is concise (a handful of clauses at most).
  EXPECT_LE(report->explanation.NumFeatures(), 4u);
}

TEST(WorkloadE2eTest, MonitoredSeriesShowsDelayedJob) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok());
  const MatchTable& table = (*run)->engine->match_table((*run)->monitor_query);
  auto normal = table.ExtractSeries("job-000", (*run)->monitor_column);
  auto abnormal = table.ExtractSeries("job-anomaly", (*run)->monitor_column);
  ASSERT_TRUE(normal.ok());
  ASSERT_TRUE(abnormal.ok());
  const Timestamp normal_len = normal->end_time() - normal->start_time();
  const Timestamp abnormal_len = abnormal->end_time() - abnormal->start_time();
  EXPECT_GT(abnormal_len, normal_len + 150);  // Fig. 1(b): delayed completion
}

TEST(WorkloadE2eTest, PartitionTablePopulated) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok());
  // 2 normal + train + test anomalous jobs.
  EXPECT_EQ((*run)->partitions->size(), 4u);
  auto rec = (*run)->partitions->Get("Q1", "job-anomaly");
  ASSERT_TRUE(rec.ok());
  EXPECT_GT(rec->num_points, 100u);
  EXPECT_EQ((*run)->partitions->FindRelated(*rec).size(), 3u);
}

TEST(WorkloadE2eTest, SeriesProviderServesMonitoredSeries) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok());
  SeriesProvider provider = (*run)->MakeSeriesProvider();
  auto series = provider("Q1", "job-000");
  ASSERT_TRUE(series.ok());
  EXPECT_GT(series->size(), 50u);
  EXPECT_FALSE(provider("OtherQuery", "job-000").ok());
}

TEST(WorkloadE2eTest, SupplyChainSubParMaterialExplained) {
  auto run = BuildWorkloadRun(SupplyChainWorkloads()[3], FastOptions());  // SC4
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExplanationEngine engine =
      (*run)->MakeExplanationEngine((*run)->DefaultExplainOptions());
  auto report = engine.Explain((*run)->annotation);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const double consistency = ExplanationConsistency(
      report->SelectedFeatureNames(), (*run)->ground_truth);
  EXPECT_GE(consistency, 0.99);
}

TEST(WorkloadE2eTest, SupplyChainMissingMonitoringExplained) {
  auto run = BuildWorkloadRun(SupplyChainWorkloads()[1], FastOptions());  // SC2
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExplanationEngine engine =
      (*run)->MakeExplanationEngine((*run)->DefaultExplainOptions());
  auto report = engine.Explain((*run)->annotation);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The silent sensor's frequency feature must be the explanation.
  bool covered = false;
  for (const auto& name : report->SelectedFeatureNames()) {
    if (SameUnderlyingSignal(name, (*run)->ground_truth[0])) covered = true;
  }
  EXPECT_TRUE(covered);
}

TEST(WorkloadE2eTest, WorkloadDefinitionsMatchPaper) {
  const auto hadoop = HadoopWorkloads();
  ASSERT_EQ(hadoop.size(), 8u);  // Fig. 13
  EXPECT_EQ(hadoop[0].hadoop_anomaly, AnomalyType::kHighMemory);
  EXPECT_EQ(hadoop[0].program, "WC-frequent-users");
  EXPECT_EQ(hadoop[7].hadoop_anomaly, AnomalyType::kBusyNetwork);
  EXPECT_EQ(hadoop[7].program, "Twitter-trigram");

  const auto sc = SupplyChainWorkloads();
  ASSERT_EQ(sc.size(), 6u);  // Appendix D.3
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sc[static_cast<size_t>(i)].sc_anomaly,
              ScAnomalyType::kMissingMonitoring);
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(sc[static_cast<size_t>(i)].sc_anomaly, ScAnomalyType::kSubParMaterial);
  }
}

}  // namespace
}  // namespace exstream
