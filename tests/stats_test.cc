#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"

namespace exstream {
namespace {

TEST(StatsTest, MeanStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5, 5, 5}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);  // classic example
  EXPECT_DOUBLE_EQ(StdDev({1}), 0.0);
}

TEST(StatsTest, MinMaxSum) {
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(Sum({1.5, 2.5}), 4.0);
  EXPECT_TRUE(std::isinf(Min({})));
  EXPECT_TRUE(std::isinf(Max({})));
}

TEST(StatsTest, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
  std::vector<double> c = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, c), 0.0);  // zero variance
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {1, 2}), 0.0);  // length mismatch
}

TEST(StatsTest, FMeasure) {
  EXPECT_DOUBLE_EQ(FMeasure(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(FMeasure(0, 0), 0.0);
  EXPECT_NEAR(FMeasure(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(HistogramTest, BasicCounts) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.5);
}

TEST(HistogramTest, FractionAbove) {
  Histogram h(0, 1, 10);
  for (int i = 0; i < 100; ++i) h.Add(i < 25 ? 0.9 : 0.1);
  EXPECT_NEAR(h.FractionAbove(0.5), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(h.FractionAbove(2.0), 0.0);
}

TEST(HistogramTest, OverflowAndUnderflow) {
  Histogram h(0, 1, 4);
  h.Add(-5);
  h.Add(5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -5);
  EXPECT_DOUBLE_EQ(h.max(), 5);
}

TEST(HistogramTest, ApproxPercentileReasonable) {
  Histogram h(0, 100, 100);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform(0, 100));
  EXPECT_NEAR(h.ApproxPercentile(50), 50, 3.0);
  EXPECT_NEAR(h.ApproxPercentile(99), 99, 3.0);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2, 3);
    EXPECT_GE(u, 2);
    EXPECT_LT(u, 3);
    const int64_t n = rng.UniformInt(-2, 2);
    EXPECT_GE(n, -2);
    EXPECT_LE(n, 2);
  }
}

TEST(RngTest, ForkIndependence) {
  Rng a(42);
  Rng fork = a.Fork();
  // The fork's stream must not equal the parent's continued stream.
  bool any_diff = false;
  Rng b(42);
  (void)b.Fork();
  for (int i = 0; i < 8; ++i) {
    if (fork.Uniform(0, 1) != b.Uniform(0, 1)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace exstream
