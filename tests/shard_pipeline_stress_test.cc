// Stress test of the contention-free shard pipelines (meant for TSan).
//
// The merged engine hands WorkBlocks to long-lived shard workers over SPSC
// queues; MatchTables take striped per-bucket locks so readers (an
// explanation analysis walking match rows, a checkpoint serializing tables)
// can run while shard appenders write. This test drives all of it at once:
//  * batched ingestion through the shard pipelines,
//  * concurrent MatchTable readers (the Explain access pattern),
//  * checkpoints taken at batch boundaries mid-stream,
//  * a system-level run with a real ExplainAsync in flight,
// and then proves the SPSC handoff neither dropped nor duplicated work: the
// notification stream and final tables are compared against the legacy
// serial engine's, element by element.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cep/engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

constexpr char kQuery[] =
    "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
    "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))";
constexpr char kVariant[] =
    "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
    "RETURN (b[i].timestamp, a.job, count(b[1..i].size))";

struct NoteCopy {
  QueryId query;
  uint32_t partition_id;
  std::string partition;
  Timestamp ts;
  std::vector<Value> values;
  bool complete;

  static NoteCopy From(const MatchNotification& n) {
    return NoteCopy{n.query,  n.partition_id, std::string(n.partition),
                    n.row.ts, n.row.values,   n.complete};
  }
  bool operator==(const NoteCopy& o) const {
    return query == o.query && partition_id == o.partition_id &&
           partition == o.partition && ts == o.ts && values == o.values &&
           complete == o.complete;
  }
};

class ShardPipelineStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Start", {{"job", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Tick", {{"job", ValueType::kString},
                                                   {"size", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("End", {{"job", ValueType::kString}}))
                    .ok());
  }

  std::vector<Event> RandomStream(uint64_t seed, int num_jobs, int num_events) {
    Rng rng(seed);
    std::vector<Event> events;
    Timestamp ts = 0;
    std::vector<int> phase(static_cast<size_t>(num_jobs), 0);
    for (int i = 0; i < num_events; ++i) {
      ts += rng.UniformInt(1, 3);
      const int j = static_cast<int>(rng.UniformInt(0, num_jobs - 1));
      const std::string job = StrFormat("job-%d", j);
      auto& p = phase[static_cast<size_t>(j)];
      const int64_t kind = rng.UniformInt(0, 5);
      if (p == 0 && kind == 0) {
        events.emplace_back(0, ts, MakeValues(job));
        p = 1;
      } else if (p == 1 && kind == 5) {
        events.emplace_back(2, ts, MakeValues(job));
        p = 0;
      } else {
        events.emplace_back(1, ts, MakeValues(job, rng.Gaussian(5, 2)));
      }
    }
    return events;
  }

  EventTypeRegistry registry_;
};

TEST_F(ShardPipelineStressTest, ReadersAndCheckpointsDuringShardedIngest) {
  const auto stream = RandomStream(13, 24, 30000);
  const int kNumQueries = 12;

  // Legacy serial reference: the notification stream and tables every
  // pipelined configuration must reproduce exactly.
  std::vector<NoteCopy> ref_notes;
  std::vector<size_t> ref_rows;
  {
    CepEngineOptions options;
    options.enable_query_merge = false;
    CepEngine ref(&registry_, options);
    for (int q = 0; q < kNumQueries; ++q) {
      ASSERT_TRUE(
          ref.AddQueryText(q % 3 == 2 ? kVariant : kQuery, StrFormat("Q%d", q))
              .ok());
    }
    ref.SetMatchCallback([&ref_notes](const MatchNotification& n) {
      ref_notes.push_back(NoteCopy::From(n));
    });
    for (const Event& e : stream) ref.OnEvent(e);
    for (int q = 0; q < kNumQueries; ++q) {
      ref_rows.push_back(ref.match_table(static_cast<QueryId>(q)).TotalRows());
    }
  }
  ASSERT_FALSE(ref_notes.empty());

  CepEngineOptions options;
  options.ingest_threads = 4;
  CepEngine engine(&registry_, options);
  for (int q = 0; q < kNumQueries; ++q) {
    ASSERT_TRUE(
        engine.AddQueryText(q % 3 == 2 ? kVariant : kQuery, StrFormat("Q%d", q))
            .ok());
  }
  std::vector<NoteCopy> notes;
  engine.SetMatchCallback([&notes](const MatchNotification& n) {
    notes.push_back(NoteCopy::From(n));
  });

  // Readers hammer the MatchTables with the Explain access pattern
  // (Partitions -> Rows -> IsComplete) while shard appenders write.
  std::atomic<bool> done{false};
  std::atomic<size_t> rows_seen{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&engine, &done, &rows_seen, r] {
      size_t local = 0;
      while (!done.load(std::memory_order_acquire)) {
        const QueryId q = static_cast<QueryId>(r == 0 ? 0 : 2);
        const MatchTable& table = engine.match_table(q);
        for (const std::string& partition : table.Partitions()) {
          local += table.Rows(partition).size();
          (void)table.IsComplete(partition);
        }
        (void)table.TotalRows();
      }
      rows_seen.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Ingest in batches; snapshot the engine at a few batch boundaries (the
  // quiescent points a system checkpoint uses) while the readers keep going.
  std::vector<std::string> snapshots;
  constexpr size_t kBatch = 256;
  size_t batch_index = 0;
  for (size_t i = 0; i < stream.size(); i += kBatch, ++batch_index) {
    const size_t end = std::min(stream.size(), i + kBatch);
    engine.IngestBatch(EventBatch(stream.begin() + static_cast<ptrdiff_t>(i),
                                  stream.begin() + static_cast<ptrdiff_t>(end)));
    if (batch_index % 16 == 5) {
      BytesWriter w;
      engine.SaveState(&w);
      snapshots.push_back(w.Take());
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(rows_seen.load(), 0u);
  EXPECT_GE(snapshots.size(), 2u);

  // No lost, duplicated, or reordered notifications across the SPSC handoff.
  ASSERT_EQ(notes.size(), ref_notes.size());
  for (size_t i = 0; i < notes.size(); ++i) {
    ASSERT_TRUE(notes[i] == ref_notes[i]) << "note #" << i;
  }
  for (int q = 0; q < kNumQueries; ++q) {
    EXPECT_EQ(engine.match_table(static_cast<QueryId>(q)).TotalRows(),
              ref_rows[static_cast<size_t>(q)])
        << "Q" << q;
  }

  // Every mid-stream snapshot must restore into a fresh merged engine.
  for (size_t s = 0; s < snapshots.size(); ++s) {
    CepEngineOptions ropts;
    ropts.ingest_threads = 4;
    CepEngine restored(&registry_, ropts);
    for (int q = 0; q < kNumQueries; ++q) {
      ASSERT_TRUE(restored
                      .AddQueryText(q % 3 == 2 ? kVariant : kQuery,
                                    StrFormat("Q%d", q))
                      .ok());
    }
    BytesReader reader(snapshots[s]);
    const Status st = restored.RestoreState(&reader);
    ASSERT_TRUE(st.ok()) << "snapshot #" << s << ": " << st.ToString();
  }
}

TEST_F(ShardPipelineStressTest, SystemCheckpointAndExplainDuringShardedIngest) {
  // System-level: sharded batched ingestion, an explanation analysis in
  // flight, and a full checkpoint — all against one engine.
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());

  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.explain.num_threads = 2;
  config.ingest.ingest_threads = 4;
  XStreamSystem system(&registry, config);

  constexpr char kQ1[] =
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";
  std::vector<QueryId> ids;
  for (int i = 0; i < 8; ++i) {
    auto qid = system.AddQuery(kQ1, StrFormat("Q%d", i));
    ASSERT_TRUE(qid.ok()) << qid.status().ToString();
    ids.push_back(*qid);
  }

  HadoopSimConfig sim_config;
  sim_config.num_nodes = 3;
  sim_config.seed = 31;
  HadoopClusterSim sim(sim_config, &registry);
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 60;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  ASSERT_TRUE(sim.Run(&system).ok());
  ASSERT_GT(system.engine().match_table(ids[0]).NumRows("job-x"), 50u);
  ASSERT_TRUE(system.IndexPartitions(ids[0], {{"program", "p"}}).ok());

  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q0", {60, 300}, "job-x"};
  annotation.reference = {"Q0", {360, 600}, "job-x"};
  auto future = system.ExplainAsync(annotation, ids[0], "sum_dataSize");

  const EventTypeId cpu = *registry.IdOf("CpuUsage");
  const EventTypeId mem = *registry.IdOf("MemUsage");
  const std::string dir =
      ::testing::TempDir() + "/shard_pipeline_stress_ckpt";
  Timestamp ts = 1000000;
  for (int round = 0; round < 30; ++round) {
    EventBatch batch;
    batch.reserve(100);
    for (int i = 0; i < 50; ++i) {
      batch.emplace_back(cpu, ++ts,
                         MakeValues(int64_t{i % 3}, 50.0, 50.0, 1.0,
                                    static_cast<double>(ts)));
      batch.emplace_back(mem, ++ts,
                         MakeValues(int64_t{i % 3}, 1e6, 1e5, 1e4, 1e6, 2e6, 4e6,
                                    100.0));
    }
    system.OnEventBatch(std::move(batch));
    if (round == 15) {
      // Mid-stream, explanation still in flight: the checkpoint drains the
      // ingest queue and serializes engine + merged-run state.
      const Status st = system.Checkpoint(dir);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  }

  auto report = future.get();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->final_features.empty());
  for (const QueryId id : ids) {
    EXPECT_EQ(system.engine().match_table(id).TotalRows(),
              system.engine().match_table(ids[0]).TotalRows());
  }

  // The checkpoint a concurrent run produced must recover cleanly (same
  // queries added in the same order first, per the Recover contract).
  XStreamSystem recovered(&registry, config);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(recovered.AddQuery(kQ1, StrFormat("Q%d", i)).ok());
  }
  auto recovery = recovered.Recover(dir);
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_TRUE(recovery->manifest_loaded);
  EXPECT_EQ(recovered.engine().match_table(ids[0]).NumRows("job-x"),
            system.engine().match_table(ids[0]).NumRows("job-x"));
}

}  // namespace
}  // namespace exstream
