// Unit tests for the EXRP replication wire protocol (net/frame.h): every
// typed frame round-trips through Encode/EncodeFrame/FrameDecoder/Decode,
// the incremental decoder survives arbitrary Feed() slicing, and every
// framing violation — bad magic, unknown type, oversized length, CRC
// mismatch — poisons the decoder permanently instead of resynchronizing on
// a stream that lied once. Typed payload decoders reject both truncation
// and trailing garbage.

#include "net/frame.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace exstream {
namespace {

HelloFrame TestHello() {
  HelloFrame f;
  f.tenant = "tenant-a";
  f.node_id = "child-7";
  f.floor_seq = 123456789;
  return f;
}

HelloAckFrame TestHelloAck() {
  HelloAckFrame f;
  f.accepted = true;
  f.resume_seq = 42;
  f.message = "";
  return f;
}

ChunkFrame TestChunk() {
  ChunkFrame f;
  f.chunk_id = 9;
  f.first_seq = 1024;
  f.event_count = 3;
  f.events = std::string("\x01\x02\x03payload-bytes\x00\xff", 18);
  return f;
}

WalTailFrame TestTail() {
  WalTailFrame f;
  f.first_seq = 2048;
  f.event_count = 1;
  f.events = "tail";
  return f;
}

AckFrame TestAck() {
  AckFrame f;
  f.ack_seq = 777;
  f.chunk_id = 8;
  return f;
}

// Pulls the next complete frame out of the decoder, failing the test on a
// decode error or an incomplete frame.
Frame MustNext(FrameDecoder* decoder) {
  auto frame = decoder->Next();
  EXPECT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(frame.ok() && frame->has_value()) << "expected a complete frame";
  return frame.ok() && frame->has_value() ? std::move(**frame) : Frame{};
}

TEST(ReplFrameTest, RoundTripAllFrameTypes) {
  std::string wire;
  wire += EncodeFrame(FrameType::kHello, TestHello().Encode());
  wire += EncodeFrame(FrameType::kHelloAck, TestHelloAck().Encode());
  wire += EncodeFrame(FrameType::kChunk, TestChunk().Encode());
  wire += EncodeFrame(FrameType::kWalTail, TestTail().Encode());
  wire += EncodeFrame(FrameType::kAck, TestAck().Encode());

  FrameDecoder decoder;
  decoder.Feed(wire);

  Frame f = MustNext(&decoder);
  ASSERT_EQ(f.type, FrameType::kHello);
  auto hello = HelloFrame::Decode(f.payload);
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello->protocol_version, kReplProtocolVersion);
  EXPECT_EQ(hello->tenant, "tenant-a");
  EXPECT_EQ(hello->node_id, "child-7");
  EXPECT_EQ(hello->floor_seq, 123456789u);

  f = MustNext(&decoder);
  ASSERT_EQ(f.type, FrameType::kHelloAck);
  auto hello_ack = HelloAckFrame::Decode(f.payload);
  ASSERT_TRUE(hello_ack.ok()) << hello_ack.status().ToString();
  EXPECT_TRUE(hello_ack->accepted);
  EXPECT_EQ(hello_ack->resume_seq, 42u);
  EXPECT_TRUE(hello_ack->message.empty());

  f = MustNext(&decoder);
  ASSERT_EQ(f.type, FrameType::kChunk);
  auto chunk = ChunkFrame::Decode(f.payload);
  ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
  EXPECT_EQ(chunk->chunk_id, 9u);
  EXPECT_EQ(chunk->first_seq, 1024u);
  EXPECT_EQ(chunk->event_count, 3u);
  EXPECT_EQ(chunk->events, TestChunk().events);

  f = MustNext(&decoder);
  ASSERT_EQ(f.type, FrameType::kWalTail);
  auto tail = WalTailFrame::Decode(f.payload);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_EQ(tail->first_seq, 2048u);
  EXPECT_EQ(tail->event_count, 1u);
  EXPECT_EQ(tail->events, "tail");

  f = MustNext(&decoder);
  ASSERT_EQ(f.type, FrameType::kAck);
  auto ack = AckFrame::Decode(f.payload);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->ack_seq, 777u);
  EXPECT_EQ(ack->chunk_id, 8u);

  // Stream fully consumed: no more frames, nothing buffered.
  auto done = decoder.Next();
  ASSERT_TRUE(done.ok()) << done.status().ToString();
  EXPECT_FALSE(done->has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_FALSE(decoder.poisoned());
}

TEST(ReplFrameTest, ByteByByteFeedYieldsTheFrameOnlyWhenComplete) {
  const std::string wire = EncodeFrame(FrameType::kChunk, TestChunk().Encode());
  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(std::string_view(wire).substr(i, 1));
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << "at byte " << i << ": "
                            << frame.status().ToString();
    EXPECT_FALSE(frame->has_value()) << "frame completed early at byte " << i;
  }
  decoder.Feed(std::string_view(wire).substr(wire.size() - 1));
  Frame f = MustNext(&decoder);
  EXPECT_EQ(f.type, FrameType::kChunk);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(ReplFrameTest, FramesStraddlingFeedBoundaries) {
  // Many frames, fed in slices that never line up with frame boundaries —
  // exercises the decoder's lazy compaction as well.
  std::string wire;
  for (int i = 0; i < 50; ++i) {
    AckFrame ack;
    ack.ack_seq = static_cast<uint64_t>(i);
    ack.chunk_id = static_cast<uint64_t>(i * 2);
    wire += EncodeFrame(FrameType::kAck, ack.Encode());
  }
  FrameDecoder decoder;
  int decoded = 0;
  size_t pos = 0;
  size_t slice = 1;
  while (pos < wire.size()) {
    const size_t n = std::min(slice, wire.size() - pos);
    decoder.Feed(std::string_view(wire).substr(pos, n));
    pos += n;
    slice = slice % 7 + 1;  // 1..7 byte slices
    for (;;) {
      auto frame = decoder.Next();
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      if (!frame->has_value()) break;
      auto ack = AckFrame::Decode((*frame)->payload);
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
      EXPECT_EQ(ack->ack_seq, static_cast<uint64_t>(decoded));
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 50);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(ReplFrameTest, BadMagicPoisons) {
  std::string wire = EncodeFrame(FrameType::kAck, TestAck().Encode());
  wire[0] ^= 0x01;
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption()) << frame.status().ToString();
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ReplFrameTest, UnknownFrameTypePoisons) {
  std::string wire = EncodeFrame(FrameType::kAck, TestAck().Encode());
  wire[4] = 9;  // type byte past kAck
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption()) << frame.status().ToString();
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ReplFrameTest, OversizedLengthPoisonsWithoutAllocating) {
  std::string wire = EncodeFrame(FrameType::kAck, TestAck().Encode());
  const uint32_t huge = kReplMaxPayloadBytes + 1;
  std::memcpy(&wire[5], &huge, sizeof(huge));  // length field
  FrameDecoder decoder;
  decoder.Feed(wire);
  // The declared length alone is Corruption — the decoder must not wait for
  // (or try to buffer) 64 MiB that will never arrive.
  auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption()) << frame.status().ToString();
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ReplFrameTest, CrcMismatchPoisons) {
  std::string wire = EncodeFrame(FrameType::kChunk, TestChunk().Encode());
  wire.back() ^= 0x40;  // flip a payload bit; the stored CRC no longer matches
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsCorruption()) << frame.status().ToString();
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ReplFrameTest, PoisonIsPermanent) {
  std::string bad = EncodeFrame(FrameType::kAck, TestAck().Encode());
  bad[0] ^= 0x01;
  FrameDecoder decoder;
  decoder.Feed(bad);
  ASSERT_FALSE(decoder.Next().ok());
  // Even a pristine frame after the violation must not decode: the stream
  // cannot be trusted to have re-synchronized.
  decoder.Feed(EncodeFrame(FrameType::kAck, TestAck().Encode()));
  auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ReplFrameTest, TruncatedFrameIsNeedMoreNotError) {
  const std::string wire = EncodeFrame(FrameType::kChunk, TestChunk().Encode());
  // Every proper prefix is "need more bytes", never an error: a slow link is
  // not a corrupt link.
  for (size_t len : {size_t{0}, size_t{3}, kReplFrameHeaderBytes - 1,
                     kReplFrameHeaderBytes, wire.size() - 1}) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire).substr(0, len));
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << "prefix " << len << ": "
                            << frame.status().ToString();
    EXPECT_FALSE(frame->has_value()) << "prefix " << len;
    EXPECT_FALSE(decoder.poisoned());
  }
}

TEST(ReplFrameTest, TypedDecodersRejectTruncationAndTrailingGarbage) {
  const std::vector<std::string> payloads = {
      TestHello().Encode(), TestHelloAck().Encode(), TestChunk().Encode(),
      TestTail().Encode(), TestAck().Encode()};
  int i = 0;
  for (const std::string& payload : payloads) {
    SCOPED_TRACE("payload " + std::to_string(i++));
    const std::string truncated = payload.substr(0, payload.size() - 1);
    const std::string padded = payload + '\0';
    switch (i - 1) {
      case 0:
        EXPECT_FALSE(HelloFrame::Decode(truncated).ok());
        EXPECT_FALSE(HelloFrame::Decode(padded).ok());
        EXPECT_TRUE(HelloFrame::Decode(payload).ok());
        break;
      case 1:
        EXPECT_FALSE(HelloAckFrame::Decode(truncated).ok());
        EXPECT_FALSE(HelloAckFrame::Decode(padded).ok());
        EXPECT_TRUE(HelloAckFrame::Decode(payload).ok());
        break;
      case 2:
        EXPECT_FALSE(ChunkFrame::Decode(truncated).ok());
        EXPECT_FALSE(ChunkFrame::Decode(padded).ok());
        EXPECT_TRUE(ChunkFrame::Decode(payload).ok());
        break;
      case 3:
        EXPECT_FALSE(WalTailFrame::Decode(truncated).ok());
        EXPECT_FALSE(WalTailFrame::Decode(padded).ok());
        EXPECT_TRUE(WalTailFrame::Decode(payload).ok());
        break;
      case 4:
        EXPECT_FALSE(AckFrame::Decode(truncated).ok());
        EXPECT_FALSE(AckFrame::Decode(padded).ok());
        EXPECT_TRUE(AckFrame::Decode(payload).ok());
        break;
    }
  }
}

TEST(ReplFrameTest, HelloAckAcceptedByteMustBeZeroOrOne) {
  std::string payload = TestHelloAck().Encode();
  payload[4] = 2;  // the accepted byte follows the u32 protocol version
  auto decoded = HelloAckFrame::Decode(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status().ToString();
}

TEST(ReplFrameTest, EmptyPayloadFrameRoundTrips) {
  // A zero-length payload is legal framing (CRC of "" matches); only the
  // typed decoders reject it as too short.
  const std::string wire = EncodeFrame(FrameType::kAck, "");
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame f = MustNext(&decoder);
  EXPECT_EQ(f.type, FrameType::kAck);
  EXPECT_TRUE(f.payload.empty());
  EXPECT_FALSE(AckFrame::Decode(f.payload).ok());
}

}  // namespace
}  // namespace exstream
