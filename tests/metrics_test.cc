#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace exstream {
namespace {

TEST(ConfusionTest, CountsAndDerivedMetrics) {
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0, 0, 1};
  const std::vector<int> preds = {1, 1, 0, 0, 0, 1, 0, 1};
  const ConfusionCounts c = EvaluatePredictions(labels, preds);
  EXPECT_EQ(c.tp, 3u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 3u);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.75);
  EXPECT_DOUBLE_EQ(c.F1(), 0.75);
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.75);
}

TEST(ConfusionTest, DegenerateCases) {
  const ConfusionCounts empty = EvaluatePredictions({}, {});
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
  // All-negative predictions: precision undefined -> 0.
  const ConfusionCounts none = EvaluatePredictions({1, 1}, {0, 0});
  EXPECT_DOUBLE_EQ(none.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(none.Recall(), 0.0);
}

TEST(SignalTest, SameUnderlyingSignal) {
  EXPECT_TRUE(SameUnderlyingSignal("MemUsage.memFree.mean@10",
                                   "MemUsage.memFree.raw"));
  EXPECT_TRUE(SameUnderlyingSignal("MemUsage.memFree.mean@10",
                                   "MemUsage.memFree"));  // prefix form
  EXPECT_FALSE(SameUnderlyingSignal("MemUsage.memFree.raw",
                                    "MemUsage.swapFree.raw"));
  EXPECT_FALSE(SameUnderlyingSignal("CpuUsage.load.raw", "MemUsage.load.raw"));
}

TEST(ConsistencyTest, PerfectSelection) {
  const double f = ExplanationConsistency({"Mem.free.mean@10", "Mem.swap.raw"},
                                          {"Mem.free", "Mem.swap"});
  EXPECT_DOUBLE_EQ(f, 1.0);
}

TEST(ConsistencyTest, ExtraSelectionsLowerPrecision) {
  const double f = ExplanationConsistency(
      {"Mem.free.raw", "Cpu.idle.raw", "Net.in.raw", "Disk.io.raw"},
      {"Mem.free"});
  // precision 1/4, recall 1 -> F = 0.4.
  EXPECT_NEAR(f, 0.4, 1e-12);
}

TEST(ConsistencyTest, MissingTruthLowersRecall) {
  const double f = ExplanationConsistency({"Mem.free.raw"},
                                          {"Mem.free", "Mem.swap"});
  // precision 1, recall 0.5 -> F = 2/3.
  EXPECT_NEAR(f, 2.0 / 3.0, 1e-12);
}

TEST(ConsistencyTest, EmptyCases) {
  EXPECT_DOUBLE_EQ(ExplanationConsistency({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(ExplanationConsistency({}, {"Mem.free"}), 0.0);
  EXPECT_DOUBLE_EQ(ExplanationConsistency({"Mem.free.raw"}, {}), 0.0);
}

TEST(ConsistencyTest, MultipleAggregatesOfSameSignalCountOnce) {
  // Selecting 3 smoothings of the same true signal: recall is full and every
  // selected feature matches, so F stays 1.
  const double f = ExplanationConsistency(
      {"Mem.free.raw", "Mem.free.mean@10", "Mem.free.mean@30"}, {"Mem.free"});
  EXPECT_DOUBLE_EQ(f, 1.0);
}

}  // namespace
}  // namespace exstream
