#include "cep/engine.h"

#include <gtest/gtest.h>

#include "query/parser.h"

namespace exstream {
namespace {

class CepEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("JobStart", {{"jobId", ValueType::kString},
                                                       {"node", ValueType::kInt64}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("DataIO", {{"jobId", ValueType::kString},
                                                     {"size", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("JobEnd", {{"jobId", ValueType::kString}}))
                    .ok());
  }

  Event Start(Timestamp ts, const char* job, int64_t node = 0) {
    return Event(0, ts, {Value(job), Value(node)});
  }
  Event Io(Timestamp ts, const char* job, double size) {
    return Event(1, ts, {Value(job), Value(size)});
  }
  Event End(Timestamp ts, const char* job) { return Event(2, ts, {Value(job)}); }

  EventTypeRegistry registry_;
};

constexpr char kQueueQuery[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].size))";

TEST_F(CepEngineTest, RunningSumPerKleeneEvent) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(kQueueQuery, "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();

  engine.OnEvent(Start(0, "j1"));
  engine.OnEvent(Io(1, "j1", 10));
  engine.OnEvent(Io(2, "j1", 5));
  engine.OnEvent(Io(3, "j1", -8));
  engine.OnEvent(End(4, "j1"));

  const MatchTable& table = engine.match_table(*qid);
  auto rows = table.Rows("j1");
  ASSERT_EQ(rows.size(), 3u);  // one row per DataIO event
  EXPECT_DOUBLE_EQ(rows[0].values[2].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(rows[1].values[2].AsDouble(), 15.0);
  EXPECT_DOUBLE_EQ(rows[2].values[2].AsDouble(), 7.0);
  EXPECT_TRUE(table.IsComplete("j1"));
}

TEST_F(CepEngineTest, PartitionsIsolated) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(kQueueQuery, "Q");
  ASSERT_TRUE(qid.ok());

  engine.OnEvent(Start(0, "j1"));
  engine.OnEvent(Start(0, "j2"));
  engine.OnEvent(Io(1, "j1", 10));
  engine.OnEvent(Io(1, "j2", 99));
  engine.OnEvent(End(2, "j1"));

  const MatchTable& table = engine.match_table(*qid);
  ASSERT_EQ(table.Rows("j1").size(), 1u);
  ASSERT_EQ(table.Rows("j2").size(), 1u);
  EXPECT_DOUBLE_EQ(table.Rows("j2")[0].values[2].AsDouble(), 99.0);
  EXPECT_TRUE(table.IsComplete("j1"));
  EXPECT_FALSE(table.IsComplete("j2"));
}

TEST_F(CepEngineTest, KleeneRequiresAtLeastOneEvent) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(kQueueQuery, "Q");
  ASSERT_TRUE(qid.ok());
  // JobEnd directly after JobStart: the kleene-plus is unsatisfied, so the
  // pattern must not complete.
  engine.OnEvent(Start(0, "j1"));
  engine.OnEvent(End(1, "j1"));
  EXPECT_FALSE(engine.match_table(*qid).IsComplete("j1"));
  // A full match afterwards still works (run was not corrupted).
  engine.OnEvent(Io(2, "j1", 1));
  engine.OnEvent(End(3, "j1"));
  EXPECT_TRUE(engine.match_table(*qid).IsComplete("j1"));
}

TEST_F(CepEngineTest, SkipTillNextMatchIgnoresIrrelevantEvents) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(kQueueQuery, "Q");
  ASSERT_TRUE(qid.ok());
  // A second JobStart mid-pattern is ignored (skip-till-next-match).
  engine.OnEvent(Start(0, "j1"));
  engine.OnEvent(Io(1, "j1", 3));
  engine.OnEvent(Start(2, "j1"));
  engine.OnEvent(Io(3, "j1", 4));
  engine.OnEvent(End(4, "j1"));
  auto rows = engine.match_table(*qid).Rows("j1");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[1].values[2].AsDouble(), 7.0);
}

TEST_F(CepEngineTest, ConstantPredicateFiltersKleeneEvents) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] AND "
      "b.size > 0 RETURN (b[i].timestamp, sum(b[1..i].size))",
      "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(Start(0, "j1"));
  engine.OnEvent(Io(1, "j1", 10));
  engine.OnEvent(Io(2, "j1", -5));  // filtered out
  engine.OnEvent(Io(3, "j1", 2));
  engine.OnEvent(End(4, "j1"));
  auto rows = engine.match_table(*qid).Rows("j1");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[1].values[1].AsDouble(), 12.0);
}

TEST_F(CepEngineTest, AttrToAttrPredicate) {
  CepEngine engine(&registry_);
  // Only accept DataIO whose size is greater than the start node id.
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] AND "
      "b.size > a.node RETURN (b[i].timestamp, count(b[1..i].size))",
      "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(Start(0, "j1", 5));
  engine.OnEvent(Io(1, "j1", 3));   // 3 <= 5 -> rejected
  engine.OnEvent(Io(2, "j1", 8));   // accepted
  engine.OnEvent(End(3, "j1"));
  auto rows = engine.match_table(*qid).Rows("j1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values[1].AsInt64(), 1);
}

TEST_F(CepEngineTest, AggregateKinds) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] RETURN "
      "(b[i].timestamp, sum(b[1..i].size), count(b[1..i].size), "
      "avg(b[1..i].size), min(b[1..i].size), max(b[1..i].size))",
      "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(Start(0, "j1"));
  engine.OnEvent(Io(1, "j1", 4));
  engine.OnEvent(Io(2, "j1", -2));
  engine.OnEvent(Io(3, "j1", 10));
  engine.OnEvent(End(4, "j1"));
  auto rows = engine.match_table(*qid).Rows("j1");
  ASSERT_EQ(rows.size(), 3u);
  const MatchRow& last = rows[2];
  EXPECT_DOUBLE_EQ(last.values[1].AsDouble(), 12.0);  // sum
  EXPECT_EQ(last.values[2].AsInt64(), 3);             // count
  EXPECT_DOUBLE_EQ(last.values[3].AsDouble(), 4.0);   // avg
  EXPECT_DOUBLE_EQ(last.values[4].AsDouble(), -2.0);  // min
  EXPECT_DOUBLE_EQ(last.values[5].AsDouble(), 10.0);  // max
}

TEST_F(CepEngineTest, SingleEventPatternEmitsOnCompletion) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(JobStart a, JobEnd b) WHERE [jobId] RETURN (a.jobId)", "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(Start(0, "j1"));
  engine.OnEvent(End(5, "j1"));
  auto rows = engine.match_table(*qid).Rows("j1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].ts, 5);
  EXPECT_EQ(rows[0].values[0].AsString(), "j1");
}

TEST_F(CepEngineTest, MatchCallbackInvoked) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(kQueueQuery, "Q");
  ASSERT_TRUE(qid.ok());
  std::vector<MatchNotification> notifications;
  engine.SetMatchCallback(
      [&](const MatchNotification& n) { notifications.push_back(n); });
  engine.OnEvent(Start(0, "j1"));
  engine.OnEvent(Io(1, "j1", 1));
  engine.OnEvent(End(2, "j1"));
  ASSERT_EQ(notifications.size(), 2u);  // one row + one completion signal
  EXPECT_FALSE(notifications[0].complete);
  EXPECT_TRUE(notifications[1].complete);
  EXPECT_EQ(notifications[0].partition, "j1");
}

TEST_F(CepEngineTest, CompileErrors) {
  CepEngine engine(&registry_);
  // Unknown event type.
  EXPECT_FALSE(engine.AddQueryText("PATTERN SEQ(Nope a)", "Q").ok());
  // Unknown attribute.
  EXPECT_FALSE(
      engine.AddQueryText("PATTERN SEQ(JobStart a) RETURN (a.nope)", "Q").ok());
  // Partition attribute missing from a component's schema.
  EXPECT_FALSE(
      engine.AddQueryText("PATTERN SEQ(JobStart a, JobEnd b) WHERE [node]", "Q")
          .ok());
  // Aggregate over a non-kleene variable.
  EXPECT_FALSE(engine
                   .AddQueryText(
                       "PATTERN SEQ(JobStart a, JobEnd b) RETURN (sum(a.node))", "Q")
                   .ok());
  // rhs referencing a later variable.
  EXPECT_FALSE(engine
                   .AddQueryText(
                       "PATTERN SEQ(JobStart a, JobEnd b) WHERE a.jobId = b.jobId",
                       "Q")
                   .ok());
}

TEST_F(CepEngineTest, QueryIdByName) {
  CepEngine engine(&registry_);
  ASSERT_TRUE(engine.AddQueryText(kQueueQuery, "alpha").ok());
  ASSERT_TRUE(engine.AddQueryText(kQueueQuery, "beta").ok());
  EXPECT_EQ(*engine.QueryIdByName("beta"), 1u);
  EXPECT_TRUE(engine.QueryIdByName("gamma").status().IsNotFound());
  EXPECT_EQ(engine.num_queries(), 2u);
}

TEST_F(CepEngineTest, MatchTableSeriesExtraction) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(kQueueQuery, "Q");
  ASSERT_TRUE(qid.ok());
  engine.OnEvent(Start(0, "j1"));
  for (Timestamp t = 1; t <= 5; ++t) engine.OnEvent(Io(t, "j1", 2));
  engine.OnEvent(End(6, "j1"));
  auto series = engine.match_table(*qid).ExtractSeries("j1", "sum_size");
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  ASSERT_EQ(series->size(), 5u);
  EXPECT_DOUBLE_EQ(series->value(4), 10.0);
  EXPECT_FALSE(engine.match_table(*qid).ExtractSeries("j1", "nope").ok());
  EXPECT_FALSE(engine.match_table(*qid).ExtractSeries("nope", "sum_size").ok());
}

}  // namespace
}  // namespace exstream
