// Stress and consistency tests of the CEP engine: many concurrent queries,
// many interleaved partitions, and agreement between replicated queries.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "common/rng.h"
#include "common/strings.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

class EngineStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Start", {{"job", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Tick", {{"job", ValueType::kString},
                                                   {"size", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("End", {{"job", ValueType::kString}}))
                    .ok());
  }

  std::vector<Event> RandomStream(uint64_t seed, int num_jobs, int num_events) {
    Rng rng(seed);
    std::vector<Event> events;
    Timestamp ts = 0;
    std::vector<int> phase(static_cast<size_t>(num_jobs), 0);  // 0 idle, 1 running
    for (int i = 0; i < num_events; ++i) {
      ts += rng.UniformInt(1, 3);
      const int j = static_cast<int>(rng.UniformInt(0, num_jobs - 1));
      const std::string job = StrFormat("job-%d", j);
      auto& p = phase[static_cast<size_t>(j)];
      const int64_t kind = rng.UniformInt(0, 5);
      if (p == 0 && kind == 0) {
        events.emplace_back(0, ts, std::vector<Value>{Value(job)});
        p = 1;
      } else if (p == 1 && kind == 5) {
        events.emplace_back(2, ts, std::vector<Value>{Value(job)});
        p = 0;
      } else {
        events.emplace_back(
            1, ts, std::vector<Value>{Value(job), Value(rng.Gaussian(5, 2))});
      }
    }
    return events;
  }

  EventTypeRegistry registry_;
};

constexpr char kQuery[] =
    "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
    "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))";

TEST_F(EngineStressTest, ManyInterleavedPartitions) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(kQuery, "Q");
  ASSERT_TRUE(qid.ok());
  const auto stream = RandomStream(1, 50, 20000);
  for (const Event& e : stream) engine.OnEvent(e);

  const MatchTable& table = engine.match_table(*qid);
  EXPECT_GT(table.TotalRows(), 1000u);
  // Per partition, the running sum must be consistent: the last row's sum
  // equals the sum of all size values of rows in that partition's last run.
  // Weaker invariant checked here: sums change monotonically in count.
  for (const std::string& partition : table.Partitions()) {
    const auto rows = table.Rows(partition);
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_GE(rows[i].ts, rows[i - 1].ts) << partition;
    }
  }
}

TEST_F(EngineStressTest, ReplicatedQueriesAgree) {
  // 64 replicas of the same query must produce identical match tables.
  CepEngine engine(&registry_);
  std::vector<QueryId> ids;
  for (int i = 0; i < 64; ++i) {
    auto qid = engine.AddQueryText(kQuery, StrFormat("Q%d", i));
    ASSERT_TRUE(qid.ok());
    ids.push_back(*qid);
  }
  const auto stream = RandomStream(2, 10, 5000);
  for (const Event& e : stream) engine.OnEvent(e);

  const MatchTable& reference = engine.match_table(ids[0]);
  for (size_t q = 1; q < ids.size(); ++q) {
    const MatchTable& other = engine.match_table(ids[q]);
    ASSERT_EQ(other.TotalRows(), reference.TotalRows());
    for (const std::string& partition : reference.Partitions()) {
      const auto a = reference.Rows(partition);
      const auto b = other.Rows(partition);
      ASSERT_EQ(a.size(), b.size()) << partition;
      for (size_t i = 0; i < a.size(); i += 37) {  // spot check
        EXPECT_EQ(a[i].ts, b[i].ts);
        EXPECT_DOUBLE_EQ(a[i].values[2].AsDouble(), b[i].values[2].AsDouble());
      }
    }
  }
}

TEST_F(EngineStressTest, EventCountingAndRelevance) {
  CepEngine engine(&registry_);
  ASSERT_TRUE(engine.AddQueryText(kQuery, "Q").ok());
  const auto stream = RandomStream(3, 5, 1000);
  for (const Event& e : stream) engine.OnEvent(e);
  EXPECT_EQ(engine.events_processed(), 1000u);
}

TEST_F(EngineStressTest, BatchedIngestManyQueriesMatchesSequential) {
  // 64 replicas sharded over 4 ingest threads must agree with the serial
  // per-event engine — the sharded flavor of ReplicatedQueriesAgree.
  const auto stream = RandomStream(5, 10, 5000);

  CepEngine serial(&registry_);
  ASSERT_TRUE(serial.AddQueryText(kQuery, "ref").ok());
  for (const Event& e : stream) serial.OnEvent(e);
  const MatchTable& reference = serial.match_table(0);

  CepEngineOptions options;
  options.ingest_threads = 4;
  CepEngine engine(&registry_, options);
  std::vector<QueryId> ids;
  for (int i = 0; i < 64; ++i) {
    auto qid = engine.AddQueryText(kQuery, StrFormat("Q%d", i));
    ASSERT_TRUE(qid.ok());
    ids.push_back(*qid);
  }
  for (size_t i = 0; i < stream.size(); i += 256) {
    engine.OnEventBatch(EventBatch(
        stream.begin() + static_cast<ptrdiff_t>(i),
        stream.begin() + static_cast<ptrdiff_t>(std::min(stream.size(), i + 256))));
  }

  for (const QueryId id : ids) {
    const MatchTable& other = engine.match_table(id);
    ASSERT_EQ(other.TotalRows(), reference.TotalRows());
    ASSERT_EQ(other.Partitions(), reference.Partitions());
    for (const std::string& partition : reference.Partitions()) {
      const auto a = reference.Rows(partition);
      const auto b = other.Rows(partition);
      ASSERT_EQ(a.size(), b.size()) << partition;
      for (size_t i = 0; i < a.size(); i += 41) {  // spot check
        EXPECT_EQ(a[i].ts, b[i].ts);
        EXPECT_DOUBLE_EQ(a[i].values[2].AsDouble(), b[i].values[2].AsDouble());
      }
    }
  }
}

TEST(SystemStressTest, BatchedIngestWhileExplanationInFlight) {
  // End-to-end race test (meant for TSan): sharded batched ingestion keeps
  // feeding the system while an explanation analysis scans the archive.
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());

  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.explain.num_threads = 2;
  config.ingest.ingest_threads = 4;
  XStreamSystem system(&registry, config);

  constexpr char kQ1[] =
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";
  std::vector<QueryId> ids;
  for (int i = 0; i < 8; ++i) {
    auto qid = system.AddQuery(kQ1, StrFormat("Q%d", i));
    ASSERT_TRUE(qid.ok()) << qid.status().ToString();
    ids.push_back(*qid);
  }

  HadoopSimConfig sim_config;
  sim_config.num_nodes = 3;
  sim_config.seed = 77;
  HadoopClusterSim sim(sim_config, &registry);
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 60;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  ASSERT_TRUE(sim.Run(&system).ok());  // ReplayMove: batched + sharded ingest
  ASSERT_GT(system.engine().match_table(ids[0]).NumRows("job-x"), 50u);
  ASSERT_TRUE(system.IndexPartitions(ids[0], {{"program", "p"}}).ok());

  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q0", {60, 300}, "job-x"};
  annotation.reference = {"Q0", {360, 600}, "job-x"};
  auto future = system.ExplainAsync(annotation, ids[0], "sum_dataSize");

  // Keep the monitoring side hot while the analysis runs: batches of fresh
  // metric events (ts past the simulated horizon, so archive order holds).
  const EventTypeId cpu = *registry.IdOf("CpuUsage");
  const EventTypeId mem = *registry.IdOf("MemUsage");
  Timestamp ts = 1000000;
  for (int round = 0; round < 40; ++round) {
    EventBatch batch;
    batch.reserve(100);
    for (int i = 0; i < 50; ++i) {
      batch.emplace_back(cpu, ++ts,
                         MakeValues(int64_t{i % 3}, 50.0, 50.0, 1.0,
                                    static_cast<double>(ts)));
      batch.emplace_back(mem, ++ts,
                         MakeValues(int64_t{i % 3}, 1e6, 1e5, 1e4, 1e6, 2e6, 4e6,
                                    100.0));
    }
    system.OnEventBatch(std::move(batch));
  }

  auto report = future.get();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->final_features.empty());
  EXPECT_FALSE(system.explanation_active());
  // All 8 replicas saw the identical stream.
  for (const QueryId id : ids) {
    EXPECT_EQ(system.engine().match_table(id).TotalRows(),
              system.engine().match_table(ids[0]).TotalRows());
  }
}

TEST_F(EngineStressTest, DeterministicAcrossRuns) {
  auto run_once = [&] {
    CepEngine engine(&registry_);
    auto qid = engine.AddQueryText(kQuery, "Q");
    EXPECT_TRUE(qid.ok());
    const auto stream = RandomStream(4, 20, 8000);
    for (const Event& e : stream) engine.OnEvent(e);
    return engine.match_table(*qid).TotalRows();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace exstream
