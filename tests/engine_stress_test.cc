// Stress and consistency tests of the CEP engine: many concurrent queries,
// many interleaved partitions, and agreement between replicated queries.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "common/rng.h"
#include "common/strings.h"

namespace exstream {
namespace {

class EngineStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Start", {{"job", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Tick", {{"job", ValueType::kString},
                                                   {"size", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("End", {{"job", ValueType::kString}}))
                    .ok());
  }

  std::vector<Event> RandomStream(uint64_t seed, int num_jobs, int num_events) {
    Rng rng(seed);
    std::vector<Event> events;
    Timestamp ts = 0;
    std::vector<int> phase(static_cast<size_t>(num_jobs), 0);  // 0 idle, 1 running
    for (int i = 0; i < num_events; ++i) {
      ts += rng.UniformInt(1, 3);
      const int j = static_cast<int>(rng.UniformInt(0, num_jobs - 1));
      const std::string job = StrFormat("job-%d", j);
      auto& p = phase[static_cast<size_t>(j)];
      const int64_t kind = rng.UniformInt(0, 5);
      if (p == 0 && kind == 0) {
        events.emplace_back(0, ts, std::vector<Value>{Value(job)});
        p = 1;
      } else if (p == 1 && kind == 5) {
        events.emplace_back(2, ts, std::vector<Value>{Value(job)});
        p = 0;
      } else {
        events.emplace_back(
            1, ts, std::vector<Value>{Value(job), Value(rng.Gaussian(5, 2))});
      }
    }
    return events;
  }

  EventTypeRegistry registry_;
};

constexpr char kQuery[] =
    "PATTERN SEQ(Start a, Tick+ b[], End c) WHERE [job] "
    "RETURN (b[i].timestamp, a.job, sum(b[1..i].size))";

TEST_F(EngineStressTest, ManyInterleavedPartitions) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(kQuery, "Q");
  ASSERT_TRUE(qid.ok());
  const auto stream = RandomStream(1, 50, 20000);
  for (const Event& e : stream) engine.OnEvent(e);

  const MatchTable& table = engine.match_table(*qid);
  EXPECT_GT(table.TotalRows(), 1000u);
  // Per partition, the running sum must be consistent: the last row's sum
  // equals the sum of all size values of rows in that partition's last run.
  // Weaker invariant checked here: sums change monotonically in count.
  for (const std::string& partition : table.Partitions()) {
    const auto rows = table.Rows(partition);
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_GE(rows[i].ts, rows[i - 1].ts) << partition;
    }
  }
}

TEST_F(EngineStressTest, ReplicatedQueriesAgree) {
  // 64 replicas of the same query must produce identical match tables.
  CepEngine engine(&registry_);
  std::vector<QueryId> ids;
  for (int i = 0; i < 64; ++i) {
    auto qid = engine.AddQueryText(kQuery, StrFormat("Q%d", i));
    ASSERT_TRUE(qid.ok());
    ids.push_back(*qid);
  }
  const auto stream = RandomStream(2, 10, 5000);
  for (const Event& e : stream) engine.OnEvent(e);

  const MatchTable& reference = engine.match_table(ids[0]);
  for (size_t q = 1; q < ids.size(); ++q) {
    const MatchTable& other = engine.match_table(ids[q]);
    ASSERT_EQ(other.TotalRows(), reference.TotalRows());
    for (const std::string& partition : reference.Partitions()) {
      const auto a = reference.Rows(partition);
      const auto b = other.Rows(partition);
      ASSERT_EQ(a.size(), b.size()) << partition;
      for (size_t i = 0; i < a.size(); i += 37) {  // spot check
        EXPECT_EQ(a[i].ts, b[i].ts);
        EXPECT_DOUBLE_EQ(a[i].values[2].AsDouble(), b[i].values[2].AsDouble());
      }
    }
  }
}

TEST_F(EngineStressTest, EventCountingAndRelevance) {
  CepEngine engine(&registry_);
  ASSERT_TRUE(engine.AddQueryText(kQuery, "Q").ok());
  const auto stream = RandomStream(3, 5, 1000);
  for (const Event& e : stream) engine.OnEvent(e);
  EXPECT_EQ(engine.events_processed(), 1000u);
}

TEST_F(EngineStressTest, DeterministicAcrossRuns) {
  auto run_once = [&] {
    CepEngine engine(&registry_);
    auto qid = engine.AddQueryText(kQuery, "Q");
    EXPECT_TRUE(qid.ok());
    const auto stream = RandomStream(4, 20, 8000);
    for (const Event& e : stream) engine.OnEvent(e);
    return engine.match_table(*qid).TotalRows();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace exstream
