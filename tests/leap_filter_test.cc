#include "explain/leap_filter.h"

#include <gtest/gtest.h>

namespace exstream {
namespace {

RankedFeature WithReward(double reward, const char* name = "T.a") {
  RankedFeature f;
  f.spec.event_type_name = "T";
  f.spec.attribute_name = name;
  // Synthesize an entropy result with the desired distance.
  f.entropy.distance = reward;
  return f;
}

std::vector<RankedFeature> Ranking(std::initializer_list<double> rewards) {
  std::vector<RankedFeature> out;
  for (double r : rewards) out.push_back(WithReward(r));
  return out;
}

TEST(LeapFilterTest, CutsAtSharpDrop) {
  // 1.0, 0.95, 0.9 | 0.3 ... : the 0.9 -> 0.3 drop is the leap.
  const auto kept = RewardLeapFilter(Ranking({1.0, 0.95, 0.9, 0.3, 0.29}));
  EXPECT_EQ(kept.size(), 3u);
}

TEST(LeapFilterTest, AbsoluteFloorApplies) {
  // Gentle decline but below min_reward at 0.45.
  const auto kept = RewardLeapFilter(Ranking({0.9, 0.8, 0.72, 0.65, 0.45, 0.4}));
  EXPECT_EQ(kept.size(), 4u);
}

TEST(LeapFilterTest, MaxKeepCaps) {
  std::vector<double> rewards(100, 1.0);
  std::vector<RankedFeature> ranking;
  for (double r : rewards) ranking.push_back(WithReward(r));
  LeapFilterOptions options;
  options.max_keep = 10;
  EXPECT_EQ(RewardLeapFilter(ranking, options).size(), 10u);
}

TEST(LeapFilterTest, AllBelowFloorYieldsEmpty) {
  EXPECT_TRUE(RewardLeapFilter(Ranking({0.4, 0.3, 0.2})).empty());
}

TEST(LeapFilterTest, EmptyInput) {
  EXPECT_TRUE(RewardLeapFilter({}).empty());
}

TEST(LeapFilterTest, NoLeapKeepsAllAboveFloor) {
  const auto kept = RewardLeapFilter(Ranking({1.0, 0.95, 0.9, 0.86, 0.82}));
  EXPECT_EQ(kept.size(), 5u);
}

TEST(LeapFilterTest, KeepRatioConfigurable) {
  LeapFilterOptions strict;
  strict.keep_ratio = 0.97;  // even a 4% drop is a leap
  const auto kept = RewardLeapFilter(Ranking({1.0, 0.95, 0.9}), strict);
  EXPECT_EQ(kept.size(), 1u);
}

}  // namespace
}  // namespace exstream
