#include "explain/explain_cache.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/hadoop_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

ExplanationReport MakeReport(const std::string& tag) {
  ExplanationReport report;
  report.annotation.abnormal.partition = tag;
  return report;
}

TEST(ExplainCacheTest, HitReturnsSameObject) {
  ExplainResultCache cache(4);
  int computed = 0;
  auto compute = [&]() -> Result<ExplanationReport> {
    ++computed;
    return MakeReport("a");
  };
  auto first = cache.GetOrCompute("k", compute);
  auto second = cache.GetOrCompute("k", compute);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(first.get(), second.get());  // shared, not copied
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ExplainCacheTest, LruEvictsOldest) {
  ExplainResultCache cache(2);
  auto make = [](const std::string& tag) {
    return [tag]() -> Result<ExplanationReport> { return MakeReport(tag); };
  };
  cache.GetOrCompute("a", make("a"));
  cache.GetOrCompute("b", make("b"));
  cache.GetOrCompute("a", make("a"));  // refresh a
  cache.GetOrCompute("c", make("c"));  // evicts b, the least recent
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ExplainCacheTest, ErrorsDeliveredButNotCached) {
  ExplainResultCache cache(4);
  int calls = 0;
  auto failing = [&]() -> Result<ExplanationReport> {
    ++calls;
    return Status::IOError("transient");
  };
  auto r1 = cache.GetOrCompute("k", failing);
  ASSERT_FALSE(r1->ok());
  // A transient failure must not poison the key: the next call recomputes.
  auto r2 = cache.GetOrCompute(
      "k", [&]() -> Result<ExplanationReport> { return MakeReport("ok"); });
  EXPECT_TRUE(r2->ok());
  EXPECT_EQ(calls, 1);
}

TEST(ExplainCacheTest, SingleFlightDedupesConcurrentCallers) {
  ExplainResultCache cache(4);
  std::atomic<int> computed{0};
  std::atomic<bool> release{false};
  auto slow = [&]() -> Result<ExplanationReport> {
    computed.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    return MakeReport("slow");
  };
  std::vector<std::thread> threads;
  std::vector<ExplainResultCache::ResultPtr> results(4);
  for (size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] { results[t] = cache.GetOrCompute("k", slow); });
  }
  while (computed.load() == 0) std::this_thread::yield();
  release.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(computed.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->ok());
  }
  EXPECT_EQ(cache.stats().computations, 1u);
  EXPECT_EQ(cache.stats().single_flight_waits, 3u);
}

TEST(ExplainCacheTest, ClearDropsEntries) {
  ExplainResultCache cache(4);
  cache.GetOrCompute("k",
                     []() -> Result<ExplanationReport> { return MakeReport("a"); });
  cache.Clear();
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ExplainCacheKeyTest, OptionsFingerprintIgnoresExecutionKnobs) {
  ExplainOptions a;
  ExplainOptions b = a;
  b.num_threads = 8;        // bit-identical results by contract
  b.deadline_ms = 1000.0;   // changes existence, not value
  EXPECT_EQ(FingerprintExplainOptions(a), FingerprintExplainOptions(b));

  ExplainOptions c = a;
  c.tiered_reference_scans = true;  // changes reference aggregates
  EXPECT_NE(FingerprintExplainOptions(a), FingerprintExplainOptions(c));
  ExplainOptions d = a;
  d.feature_space.windows.push_back(60);
  EXPECT_NE(FingerprintExplainOptions(a), FingerprintExplainOptions(d));
}

TEST(ExplainCacheKeyTest, KeySeparatesEveryDimension) {
  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q", {60, 300}, "p1"};
  annotation.reference = {"Q", {360, 600}, "p1"};
  const ExplainOptions options;
  const std::string base = ExplainCacheKey(annotation, 0, "col", options, 7, 0);
  EXPECT_EQ(base, ExplainCacheKey(annotation, 0, "col", options, 7, 0));

  AnomalyAnnotation shifted = annotation;
  shifted.abnormal.range.upper = 301;
  EXPECT_NE(base, ExplainCacheKey(shifted, 0, "col", options, 7, 0));
  EXPECT_NE(base, ExplainCacheKey(annotation, 1, "col", options, 7, 0));
  EXPECT_NE(base, ExplainCacheKey(annotation, 0, "col2", options, 7, 0));
  EXPECT_NE(base, ExplainCacheKey(annotation, 0, "col", options, 8, 0));
  EXPECT_NE(base, ExplainCacheKey(annotation, 0, "col", options, 7, 1));
}

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/exstream_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

class ServingCacheSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry_).ok());
  }

  void StreamWorkload(XStreamSystem* system, uint64_t seed = 77) {
    HadoopSimConfig config;
    config.num_nodes = 3;
    config.seed = seed;
    HadoopClusterSim sim(config, &registry_);
    HadoopJobConfig job;
    job.job_id = "job-x";
    job.program = "p";
    job.dataset = "d";
    sim.AddJob(job);
    AnomalySpec anomaly;
    anomaly.type = AnomalyType::kHighMemory;
    anomaly.start = 60;
    anomaly.end = 300;
    sim.AddAnomaly(anomaly);
    ASSERT_TRUE(sim.Run(system).ok());
  }

  static AnomalyAnnotation Annotation() {
    AnomalyAnnotation annotation;
    annotation.abnormal = {"Q1", {60, 300}, "job-x"};
    annotation.reference = {"Q1", {360, 600}, "job-x"};
    return annotation;
  }

  EventTypeRegistry registry_;
};

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

TEST_F(ServingCacheSystemTest, RepeatHitsAndWatermarkInvalidation) {
  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.serving.explain_cache_capacity = 8;
  XStreamSystem system(&registry_, config);
  auto qid = system.AddQuery(kQ1, "Q1");
  ASSERT_TRUE(qid.ok());
  StreamWorkload(&system);
  ASSERT_TRUE(system.IndexPartitions(*qid, {{"program", "p"}}).ok());

  const AnomalyAnnotation annotation = Annotation();
  auto first = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(first.ok());
  auto repeat = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(system.explain_cache()->stats().hits, 1u);
  EXPECT_EQ(system.explain_cache()->stats().computations, 1u);
  EXPECT_EQ(first->explanation.ToString(), repeat->explanation.ToString());

  // New data advances the watermark: the same request must recompute (the
  // cached answer no longer describes the current stream).
  const uint64_t before = system.data_watermark();
  Event probe(*registry_.IdOf("CpuUsage"), 10000,
              {Value(int64_t{0}), Value(1.0), Value(1.0), Value(1.0), Value(1.0)});
  system.OnEvent(probe);
  ASSERT_GT(system.data_watermark(), before);
  auto after = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(system.explain_cache()->stats().computations, 2u);
}

TEST_F(ServingCacheSystemTest, DifferentOptionsFingerprintsGetSeparateEntries) {
  // tiered_reference_scans changes reference-side aggregates, so the two
  // variants must never share a cache entry even for one annotation.
  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.archive.tier_windows = {10};
  config.serving.explain_cache_capacity = 8;
  XStreamSystem system(&registry_, config);
  auto qid = system.AddQuery(kQ1, "Q1");
  ASSERT_TRUE(qid.ok());
  StreamWorkload(&system);
  ASSERT_TRUE(system.IndexPartitions(*qid, {{"program", "p"}}).ok());

  const AnomalyAnnotation annotation = Annotation();
  const uint64_t watermark = system.data_watermark();
  ExplainOptions exact = config.explain;
  ExplainOptions tiered = config.explain;
  tiered.tiered_reference_scans = true;
  EXPECT_NE(ExplainCacheKey(annotation, *qid, "sum_dataSize", exact, watermark, 0),
            ExplainCacheKey(annotation, *qid, "sum_dataSize", tiered, watermark, 0));
}

TEST_F(ServingCacheSystemTest, DegradationStateChangesTheKey) {
  // Tier-0 eviction (forgetting raw rows for old chunks) changes what a scan
  // can answer — a report computed before the eviction must not serve a
  // request made after it. Regression for the resolution/degradation key
  // dimension: with the archive under a tier-0 retention cap, evictions bump
  // the degradation fingerprint and the cache recomputes.
  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.archive.chunk_capacity = 64;
  config.archive.tier_windows = {10};
  // Eviction only applies to spilled chunks, so force sealed chunks out to
  // disk immediately.
  config.archive.spill_dir = MakeTempDir("cache_deg");
  config.archive.max_resident_chunks = 1;
  config.archive.tier0_retention_chunks = 2;
  config.serving.explain_cache_capacity = 8;
  XStreamSystem system(&registry_, config);
  auto qid = system.AddQuery(kQ1, "Q1");
  ASSERT_TRUE(qid.ok());
  StreamWorkload(&system);
  ASSERT_TRUE(system.IndexPartitions(*qid, {{"program", "p"}}).ok());
  ASSERT_GT(system.archive().tier0_evictions(), 0u)
      << "retention cap never evicted — the regression test is vacuous";

  // Keys computed before vs after an eviction batch must differ even at one
  // watermark. (Evictions happen during ingest here, so compare fingerprints
  // around a forced additional eviction via more ingest.)
  const AnomalyAnnotation annotation = Annotation();
  auto first = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(first.ok());
  const auto stats_before = system.explain_cache()->stats();
  auto repeat = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(system.explain_cache()->stats().hits, stats_before.hits + 1);

  // Seal more chunks: the retention cap evicts more tier-0 rows, and BOTH
  // the watermark and the degradation fingerprint move — the old entry must
  // not be served.
  const size_t evictions_before = system.archive().tier0_evictions();
  const EventTypeId cpu = *registry_.IdOf("CpuUsage");
  for (Timestamp t = 0; t < 200; ++t) {
    Event probe(cpu, 10000 + t,
                {Value(int64_t{0}), Value(1.0), Value(1.0), Value(1.0), Value(1.0)});
    system.OnEvent(probe);
  }
  ASSERT_GT(system.archive().tier0_evictions(), evictions_before);
  auto after = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(system.explain_cache()->stats().computations,
            stats_before.computations + 1);
}

}  // namespace
}  // namespace exstream
