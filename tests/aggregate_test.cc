#include "ts/aggregate.h"

#include <gtest/gtest.h>

namespace exstream {
namespace {

TimeSeries Ramp(Timestamp start, Timestamp end, Timestamp step = 1) {
  TimeSeries s;
  for (Timestamp t = start; t < end; t += step) {
    (void)s.Append(t, static_cast<double>(t));
  }
  return s;
}

TEST(AggregateTest, KindStringsRoundTrip) {
  for (AggregateKind k : {AggregateKind::kRaw, AggregateKind::kMean,
                          AggregateKind::kSum, AggregateKind::kCount,
                          AggregateKind::kMin, AggregateKind::kMax,
                          AggregateKind::kStdDev}) {
    auto parsed = AggregateKindFromString(AggregateKindToString(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(AggregateKindFromString("bogus").ok());
}

TEST(AggregateTest, RawIsIdentity) {
  const TimeSeries s = Ramp(0, 5);
  auto out = ApplyWindowAggregate(s, AggregateKind::kRaw, 10);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), s.size());
}

TEST(AggregateTest, TumblingMean) {
  // Values 0..9 at t=0..9; window 5 -> [0,5): mean 2, [5,10): mean 7.
  const TimeSeries s = Ramp(0, 10);
  auto out = ApplyWindowAggregate(s, AggregateKind::kMean, 5);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  EXPECT_DOUBLE_EQ(out->value(0), 2.0);
  EXPECT_DOUBLE_EQ(out->value(1), 7.0);
  EXPECT_EQ(out->time(0), 5);   // stamped with window end
  EXPECT_EQ(out->time(1), 10);
}

TEST(AggregateTest, CountAndSum) {
  const TimeSeries s = Ramp(0, 10);
  auto count = ApplyWindowAggregate(s, AggregateKind::kCount, 5);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->value(0), 5.0);
  auto sum = ApplyWindowAggregate(s, AggregateKind::kSum, 5);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->value(0), 0 + 1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(sum->value(1), 5 + 6 + 7 + 8 + 9);
}

TEST(AggregateTest, MinMaxStdDev) {
  TimeSeries s;
  for (Timestamp t = 0; t < 4; ++t) (void)s.Append(t, t == 2 ? -5.0 : 3.0);
  auto mn = ApplyWindowAggregate(s, AggregateKind::kMin, 10);
  auto mx = ApplyWindowAggregate(s, AggregateKind::kMax, 10);
  ASSERT_TRUE(mn.ok());
  ASSERT_TRUE(mx.ok());
  EXPECT_DOUBLE_EQ(mn->value(0), -5.0);
  EXPECT_DOUBLE_EQ(mx->value(0), 3.0);
  auto sd = ApplyWindowAggregate(s, AggregateKind::kStdDev, 10);
  ASSERT_TRUE(sd.ok());
  EXPECT_GT(sd->value(0), 0.0);
}

TEST(AggregateTest, SlidingWindowsOverlap) {
  // Window 4, slide 2 over t=0..7 -> windows [0,4),[2,6),[4,8),[6,10) ...
  const TimeSeries s = Ramp(0, 8);
  auto out = ApplyWindowAggregate(s, AggregateKind::kCount, 4, 2);
  ASSERT_TRUE(out.ok());
  ASSERT_GE(out->size(), 3u);
  EXPECT_DOUBLE_EQ(out->value(0), 4.0);
  EXPECT_DOUBLE_EQ(out->value(1), 4.0);
}

TEST(AggregateTest, SparseInputSkipsEmptyWindowsExceptCount) {
  TimeSeries s;
  (void)s.Append(0, 1.0);
  (void)s.Append(100, 2.0);
  auto mean = ApplyWindowAggregate(s, AggregateKind::kMean, 10);
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(mean->size(), 2u);  // only the two non-empty windows
  auto count = ApplyWindowAggregate(s, AggregateKind::kCount, 10);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(count->size(), 2u);  // zero-count windows included
  EXPECT_DOUBLE_EQ(count->value(1), 0.0);
}

TEST(AggregateTest, InvalidWindowRejected) {
  const TimeSeries s = Ramp(0, 4);
  EXPECT_FALSE(ApplyWindowAggregate(s, AggregateKind::kMean, 0).ok());
  EXPECT_FALSE(ApplyWindowAggregate(s, AggregateKind::kMean, 5, -1).ok());
}

TEST(AggregateTest, EmptyInputYieldsEmptyOutput) {
  auto out = ApplyWindowAggregate(TimeSeries(), AggregateKind::kMean, 5);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

// Parameterized: for every aggregate kind, a constant series aggregates to
// predictable values in every window.
class AggregateKindTest : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(AggregateKindTest, ConstantSeries) {
  TimeSeries s;
  for (Timestamp t = 0; t < 20; ++t) (void)s.Append(t, 7.0);
  auto out = ApplyWindowAggregate(s, GetParam(), 5);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 4u);
  for (size_t i = 0; i < out->size(); ++i) {
    switch (GetParam()) {
      case AggregateKind::kMean:
      case AggregateKind::kMin:
      case AggregateKind::kMax:
        EXPECT_DOUBLE_EQ(out->value(i), 7.0);
        break;
      case AggregateKind::kSum:
        EXPECT_DOUBLE_EQ(out->value(i), 35.0);
        break;
      case AggregateKind::kCount:
        EXPECT_DOUBLE_EQ(out->value(i), 5.0);
        break;
      case AggregateKind::kStdDev:
        EXPECT_DOUBLE_EQ(out->value(i), 0.0);
        break;
      case AggregateKind::kRaw:
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggregateKindTest,
                         ::testing::Values(AggregateKind::kMean, AggregateKind::kSum,
                                           AggregateKind::kCount, AggregateKind::kMin,
                                           AggregateKind::kMax,
                                           AggregateKind::kStdDev));

}  // namespace
}  // namespace exstream
