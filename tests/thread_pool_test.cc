#include "common/thread_pool.h"

#include <atomic>

#include <gtest/gtest.h>

namespace exstream {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins workers after the queue drains
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.Submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int prev = max_in_flight.load();
      while (prev < now && !max_in_flight.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      in_flight.fetch_sub(1);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(max_in_flight.load(), 2);
}

}  // namespace
}  // namespace exstream
