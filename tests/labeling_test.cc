#include "explain/labeling.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

// Series with samples every `step` around the given level.
TimeSeries Level(double level, Timestamp start, Timestamp end, Timestamp step,
                 uint64_t seed = 1) {
  Rng rng(seed);
  TimeSeries s;
  for (Timestamp t = start; t <= end; t += step) {
    (void)s.Append(t, level + rng.Gaussian(0, 0.05));
  }
  return s;
}

CandidateInterval Candidate(const char* partition, TimeSeries series) {
  CandidateInterval c;
  c.partition = partition;
  c.range = {series.empty() ? 0 : series.start_time(),
             series.empty() ? 0 : series.end_time()};
  c.series = std::move(series);
  return c;
}

TEST(IntervalDistanceTest, SimilarIntervalsClose) {
  const TimeSeries a = Level(10, 0, 100, 2, 1);
  const TimeSeries b = Level(10, 200, 300, 2, 2);
  EXPECT_LT(IntervalDistance(a, b), 0.45);
}

TEST(IntervalDistanceTest, DifferentValuesFar) {
  const TimeSeries a = Level(10, 0, 100, 2, 1);
  const TimeSeries b = Level(50, 200, 300, 2, 2);
  EXPECT_GT(IntervalDistance(a, b), 0.45);
}

TEST(IntervalDistanceTest, FrequencyDifferenceCounts) {
  // Same values, very different sampling rates (the paper's 3.7 vs 50.1).
  const TimeSeries dense = Level(10, 0, 100, 1, 1);
  const TimeSeries sparse = Level(10, 0, 100, 20, 2);
  LabelingOptions options;
  options.entropy_weight = 0.0;
  options.frequency_weight = 1.0;
  EXPECT_GT(IntervalDistance(dense, sparse, options), 0.8);
}

TEST(IntervalDistanceTest, EmptySeriesMaximallyFar) {
  EXPECT_DOUBLE_EQ(IntervalDistance(TimeSeries(), Level(1, 0, 10, 1)), 1.0);
}

TEST(LabelingTest, CandidatesInheritNearestAnnotationLabel) {
  // Annotated abnormal: low values sampled sparsely. Annotated reference:
  // high values sampled densely. Candidates resembling each get the matching
  // label.
  const CandidateInterval abnormal = Candidate("pA", Level(2, 0, 100, 10, 1));
  const CandidateInterval reference = Candidate("pA", Level(50, 100, 200, 2, 2));
  std::vector<CandidateInterval> candidates = {
      Candidate("p1", Level(2.1, 0, 100, 10, 3)),   // like the anomaly
      Candidate("p2", Level(49, 300, 400, 2, 4)),   // like the reference
  };
  auto labeled = LabelIntervals(abnormal, reference, candidates);
  ASSERT_TRUE(labeled.ok());
  ASSERT_EQ(labeled->size(), 2u);
  EXPECT_EQ((*labeled)[0].label, IntervalLabel::kAbnormal);
  EXPECT_EQ((*labeled)[1].label, IntervalLabel::kReference);
}

TEST(LabelingTest, IndistinguishableAnnotationsDiscardEverything) {
  // If the annotated abnormal and reference look the same, no candidate can
  // be labeled with certainty.
  const CandidateInterval abnormal = Candidate("pA", Level(10, 0, 100, 2, 1));
  const CandidateInterval reference = Candidate("pA", Level(10, 100, 200, 2, 2));
  std::vector<CandidateInterval> candidates = {
      Candidate("p1", Level(10, 300, 400, 2, 3))};
  auto labeled = LabelIntervals(abnormal, reference, candidates);
  ASSERT_TRUE(labeled.ok());
  EXPECT_EQ((*labeled)[0].label, IntervalLabel::kDiscarded);
}

TEST(LabelingTest, FarFromBothIsResolvedByRelativeDistance) {
  const CandidateInterval abnormal = Candidate("pA", Level(2, 0, 100, 2, 1));
  const CandidateInterval reference = Candidate("pA", Level(50, 100, 200, 2, 2));
  // A candidate at value 40: its own cluster, but clearly closer to the
  // reference side.
  std::vector<CandidateInterval> candidates = {
      Candidate("p1", Level(40, 300, 400, 2, 3))};
  LabelingOptions options;
  options.cut_threshold = 0.2;  // force separate clusters
  auto labeled = LabelIntervals(abnormal, reference, candidates, options);
  ASSERT_TRUE(labeled.ok());
  EXPECT_NE((*labeled)[0].label, IntervalLabel::kAbnormal);
}

TEST(LabelingTest, NoCandidates) {
  const CandidateInterval abnormal = Candidate("pA", Level(2, 0, 100, 2, 1));
  const CandidateInterval reference = Candidate("pA", Level(50, 100, 200, 2, 2));
  auto labeled = LabelIntervals(abnormal, reference, {});
  ASSERT_TRUE(labeled.ok());
  EXPECT_TRUE(labeled->empty());
}

TEST(LabelingTest, LabelNames) {
  EXPECT_EQ(IntervalLabelToString(IntervalLabel::kAbnormal), "abnormal");
  EXPECT_EQ(IntervalLabelToString(IntervalLabel::kReference), "reference");
  EXPECT_EQ(IntervalLabelToString(IntervalLabel::kDiscarded), "discarded");
}

}  // namespace
}  // namespace exstream
