// End-to-end resilience of the explanation pipeline: a corrupt spill chunk
// degrades (not fails) Explain and the DegradationReport reaches the
// Explanation; an expired deadline returns DeadlineExceeded without
// deadlocking the worker pool.

#include <unistd.h>

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "explain/engine.h"

namespace exstream {
namespace {

bool FileExists(const std::string& path) { return access(path.c_str(), F_OK) == 0; }

class ExplainResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Metric", {{"shifted", ValueType::kDouble},
                                                     {"stable", ValueType::kDouble}}))
                    .ok());
    char tmpl[] = "/tmp/exstream_resil_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;

    ArchiveOptions options;
    options.chunk_capacity = 32;
    options.spill_dir = dir_;
    options.max_resident_chunks = 2;
    options.spill_retry.base_backoff_ms = 0.1;
    options.spill_retry.max_backoff_ms = 0.5;
    archive_ = std::make_unique<EventArchive>(&registry_, options);

    // Anomaly during [100, 200): `shifted` drops from ~50 to ~10.
    Rng rng(33);
    for (Timestamp t = 0; t < 400; ++t) {
      const bool anomalous = t >= 100 && t < 200;
      ASSERT_TRUE(archive_
                      ->Append(Event(0, t,
                                     {Value((anomalous ? 10.0 : 50.0) +
                                            rng.Gaussian(0, 1)),
                                      Value(5.0 + rng.Gaussian(0, 0.5))}))
                      .ok());
    }
  }
  void TearDown() override { FaultInjector::Global().Disarm(); }

  ExplainOptions Options() {
    ExplainOptions options;
    options.feature_space.windows = {10};
    options.enable_validation = false;  // no partitions in this fixture
    return options;
  }

  AnomalyAnnotation Annotation() {
    AnomalyAnnotation a;
    a.abnormal = {"Q", {100, 199}, "p"};
    a.reference = {"Q", {200, 399}, "p"};
    return a;
  }

  EventTypeRegistry registry_;
  std::string dir_;
  std::unique_ptr<EventArchive> archive_;
};

TEST_F(ExplainResilienceTest, CorruptSpillYieldsDegradedExplanation) {
  // Rot one spill file that overlaps the abnormal interval: with
  // chunk_capacity 32, chunk 3 holds ts 96..127.
  FaultPlan plan;
  plan.mode = FaultMode::kCorruptBytes;
  plan.op = FaultOp::kRead;
  plan.path_substring = "type0_chunk3_";
  ScopedFaultInjection fault(plan);

  ExplanationEngine engine(archive_.get(), nullptr, nullptr, Options());
  auto report = engine.Explain(Annotation());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // The pipeline kept going on the healthy chunks and still explains the
  // anomaly, but the loss is fully accounted for.
  EXPECT_FALSE(report->explanation.empty());
  ASSERT_TRUE(report->degradation.degraded());
  ASSERT_EQ(report->degradation.chunks_skipped(), 1u);
  const auto& skipped = report->degradation.skipped[0];
  EXPECT_NE(skipped.spill_path.find("type0_chunk3_"), std::string::npos);
  EXPECT_EQ(skipped.events_lost, 32u);
  EXPECT_TRUE(FileExists(skipped.spill_path + ".quarantine"));
  EXPECT_FALSE(FileExists(skipped.spill_path));

  // ...and the flag rides all the way into the Explanation itself.
  EXPECT_TRUE(report->explanation.degraded());
  EXPECT_NE(report->explanation.degradation_note().find("1 chunk"),
            std::string::npos)
      << report->explanation.degradation_note();
  EXPECT_EQ(archive_->quarantined_chunks(), 1u);
}

TEST_F(ExplainResilienceTest, HealthyArchiveIsNotDegraded) {
  ExplanationEngine engine(archive_.get(), nullptr, nullptr, Options());
  auto report = engine.Explain(Annotation());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->degradation.degraded());
  EXPECT_FALSE(report->explanation.degraded());
}

TEST_F(ExplainResilienceTest, DeadlineExceededWithoutDeadlock) {
  // Slow every spill read so a 1 ms budget reliably expires mid-pipeline.
  FaultPlan plan;
  plan.mode = FaultMode::kDelay;
  plan.op = FaultOp::kRead;
  plan.path_substring = dir_;
  plan.delay_ms = 20;
  ScopedFaultInjection fault(plan);

  ExplainOptions options = Options();
  options.deadline_ms = 1.0;
  options.num_threads = 2;
  ExplanationEngine bounded(archive_.get(), nullptr, nullptr, options);
  auto report = bounded.Explain(Annotation());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsDeadlineExceeded()) << report.status().ToString();

  // The pool survived the abort: the same engine answers again (still over
  // budget, but it returns instead of hanging)...
  auto again = bounded.Explain(Annotation());
  EXPECT_TRUE(!again.ok() && again.status().IsDeadlineExceeded())
      << (again.ok() ? "ok" : again.status().ToString());

  // ...and with the fault gone and no deadline, the full pipeline completes.
  FaultInjector::Global().Disarm();
  ExplainOptions unbounded = Options();
  unbounded.num_threads = 2;
  ExplanationEngine free_engine(archive_.get(), nullptr, nullptr, unbounded);
  auto ok_report = free_engine.Explain(Annotation());
  ASSERT_TRUE(ok_report.ok()) << ok_report.status().ToString();
  EXPECT_FALSE(ok_report->explanation.empty());
}

}  // namespace
}  // namespace exstream
