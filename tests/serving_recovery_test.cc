// Continuous serving across Checkpoint/Recover: the incremental feature
// tails and the Explain result cache must survive a crash correctly — tails
// reset and conservatively re-floor above the restored archive (equal
// timestamps can split across a checkpoint), the cache drops every pre-crash
// entry, and the post-recovery explanation is bit-identical to the uncrashed
// system's and to a plain archive-scan engine over the recovered archive.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/hadoop_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

constexpr char kQueryText[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) "
    "WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";
constexpr size_t kBatch = 64;

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/exstream_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  EXPECT_NE(mkdtemp(buf.data()), nullptr);
  return std::string(buf.data());
}

class ServingRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry_).ok());
    HadoopSimConfig cfg;
    cfg.num_nodes = 3;
    cfg.seed = 77;
    HadoopClusterSim sim(cfg, &registry_);
    HadoopJobConfig job;
    job.job_id = "job-x";
    job.program = "p";
    job.dataset = "d";
    sim.AddJob(job);
    AnomalySpec anomaly;
    anomaly.type = AnomalyType::kHighMemory;
    anomaly.start = 60;
    anomaly.end = 300;
    sim.AddAnomaly(anomaly);
    VectorSink sink;
    ASSERT_TRUE(sim.Run(&sink).ok());
    events_ = sink.events();
    ASSERT_GT(events_.size(), 1000u);
  }

  XStreamConfig ServingConfig(const std::string& wal_dir) const {
    XStreamConfig cfg;
    cfg.explain.feature_space.windows = {10};
    cfg.durability.wal_dir = wal_dir;
    cfg.durability.fsync = WalFsyncPolicy::kNone;
    cfg.serving.incremental_features = true;
    cfg.serving.explain_cache_capacity = 8;
    return cfg;
  }

  std::unique_ptr<XStreamSystem> MakeSystem(const XStreamConfig& cfg,
                                            QueryId* qid) {
    auto sys = std::make_unique<XStreamSystem>(&registry_, cfg);
    const auto q = sys->AddQuery(kQueryText, "Q1");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    *qid = q.ok() ? *q : 0;
    return sys;
  }

  void Feed(XStreamSystem* sys, size_t begin, size_t end) {
    for (size_t i = begin; i < end;) {
      const size_t n = std::min(kBatch, end - i);
      sys->OnEventBatch(EventBatch(events_.begin() + static_cast<ptrdiff_t>(i),
                                   events_.begin() + static_cast<ptrdiff_t>(i + n)));
      i += n;
    }
    sys->Flush();
  }

  static AnomalyAnnotation Annotation() {
    AnomalyAnnotation annotation;
    annotation.abnormal = {"Q1", {60, 300}, "job-x"};
    annotation.reference = {"Q1", {360, 600}, "job-x"};
    return annotation;
  }

  static void ExpectReportsIdentical(const ExplanationReport& a,
                                     const ExplanationReport& b) {
    EXPECT_EQ(a.explanation.ToString(), b.explanation.ToString());
    ASSERT_EQ(a.ranked.size(), b.ranked.size());
    for (size_t i = 0; i < a.ranked.size(); ++i) {
      EXPECT_EQ(a.ranked[i].spec.Name(), b.ranked[i].spec.Name());
      EXPECT_EQ(a.ranked[i].abnormal_series.times(),
                b.ranked[i].abnormal_series.times());
      EXPECT_EQ(a.ranked[i].abnormal_series.values(),
                b.ranked[i].abnormal_series.values());
      EXPECT_EQ(a.ranked[i].reference_series.times(),
                b.ranked[i].reference_series.times());
      EXPECT_EQ(a.ranked[i].reference_series.values(),
                b.ranked[i].reference_series.values());
    }
  }

  EventTypeRegistry registry_;
  std::vector<Event> events_;
};

TEST_F(ServingRecoveryTest, PostRecoveryExplainBitIdentical) {
  const std::string wal_dir = MakeTempDir("srv_wal");
  const std::string ckpt_dir = MakeTempDir("srv_ckpt");
  const size_t half = events_.size() / 2;
  const AnomalyAnnotation annotation = Annotation();

  // Uncrashed reference system: everything in one life.
  QueryId ref_qid = 0;
  XStreamConfig ref_cfg = ServingConfig(MakeTempDir("srv_refwal"));
  auto reference = MakeSystem(ref_cfg, &ref_qid);
  Feed(reference.get(), 0, events_.size());
  ASSERT_TRUE(reference->IndexPartitions(ref_qid, {{"program", "p"}}).ok());
  auto ref_report = reference->Explain(annotation, ref_qid, "sum_dataSize");
  ASSERT_TRUE(ref_report.ok()) << ref_report.status().ToString();

  // Crashing system: checkpoint at the midpoint, then the second half lands
  // only in the WAL before the "crash" (destruction without checkpoint).
  {
    QueryId qid = 0;
    auto sys = MakeSystem(ServingConfig(wal_dir), &qid);
    Feed(sys.get(), 0, half);
    ASSERT_TRUE(sys->Checkpoint(ckpt_dir).ok());
    Feed(sys.get(), half, events_.size());
    // A pre-crash explanation populates the cache; nothing of it may
    // survive into the recovered system.
    ASSERT_TRUE(sys->IndexPartitions(qid, {{"program", "p"}}).ok());
    ASSERT_TRUE(sys->Explain(annotation, qid, "sum_dataSize").ok());
  }

  // Recovered system: checkpoint + WAL tail.
  QueryId qid = 0;
  auto recovered = MakeSystem(ServingConfig(wal_dir), &qid);
  auto rep = recovered->Recover(ckpt_dir);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_TRUE(rep->manifest_loaded);
  EXPECT_GT(rep->wal.events_applied, 0u);
  EXPECT_EQ(recovered->data_watermark(), reference->data_watermark());

  // No stale cache entries: the recovered cache starts cold.
  EXPECT_EQ(recovered->explain_cache()->stats().entries, 0u);

  ASSERT_TRUE(recovered->IndexPartitions(qid, {{"program", "p"}}).ok());
  auto rec_report = recovered->Explain(annotation, qid, "sum_dataSize");
  ASSERT_TRUE(rec_report.ok()) << rec_report.status().ToString();
  ExpectReportsIdentical(*ref_report, *rec_report);

  // The recovered tails hold only the WAL tail; the checkpointed prefix
  // backfills from the archive. The explanation must still match a plain
  // scan engine over the recovered archive bit for bit.
  const auto tails = recovered->incremental()->stats();
  EXPECT_GT(tails.full_hits + tails.partial_hits + tails.misses, 0u);
  const ExplanationEngine scan_engine(
      &recovered->archive(), &recovered->partitions(),
      recovered->MakeSeriesProvider(qid, "sum_dataSize"), ref_cfg.explain);
  auto scan_report = scan_engine.Explain(annotation);
  ASSERT_TRUE(scan_report.ok());
  ExpectReportsIdentical(*scan_report, *rec_report);

  // Cached repeat on the recovered system: one computation, shared result.
  auto repeat = recovered->Explain(annotation, qid, "sum_dataSize");
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(recovered->explain_cache()->stats().hits, 1u);
  ExpectReportsIdentical(*rec_report, *repeat);

  // New post-recovery data must invalidate (watermark advances).
  Event probe(*registry_.IdOf("CpuUsage"), 100000,
              {Value(int64_t{0}), Value(1.0), Value(1.0), Value(1.0), Value(1.0)});
  recovered->OnEvent(probe);
  auto fresh = recovered->Explain(annotation, qid, "sum_dataSize");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(recovered->explain_cache()->stats().computations, 2u);
}

TEST_F(ServingRecoveryTest, WalOnlyRecoveryKeepsTailsConsistent) {
  const std::string wal_dir = MakeTempDir("srv_walonly");
  const AnomalyAnnotation annotation = Annotation();
  {
    QueryId qid = 0;
    auto sys = MakeSystem(ServingConfig(wal_dir), &qid);
    Feed(sys.get(), 0, events_.size());
  }
  QueryId qid = 0;
  auto recovered = MakeSystem(ServingConfig(wal_dir), &qid);
  auto rep = recovered->Recover("");
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_FALSE(rep->manifest_loaded);
  ASSERT_TRUE(recovered->IndexPartitions(qid, {{"program", "p"}}).ok());

  // Without a checkpoint the whole stream replays through ApplyBatch, so the
  // tails see everything — the explanation must equal the plain scan path.
  auto served = recovered->Explain(annotation, qid, "sum_dataSize");
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  const auto tails = recovered->incremental()->stats();
  EXPECT_GT(tails.full_hits + tails.partial_hits, 0u);
  XStreamConfig plain_cfg = ServingConfig(wal_dir);
  const ExplanationEngine scan_engine(
      &recovered->archive(), &recovered->partitions(),
      recovered->MakeSeriesProvider(qid, "sum_dataSize"), plain_cfg.explain);
  auto scan_report = scan_engine.Explain(annotation);
  ASSERT_TRUE(scan_report.ok());
  ExpectReportsIdentical(*scan_report, *served);
}

}  // namespace
}  // namespace exstream
