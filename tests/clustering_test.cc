#include "ts/clustering.h"

#include <gtest/gtest.h>

#include "ts/correlation.h"
#include "ts/time_series.h"

namespace exstream {
namespace {

std::vector<std::vector<double>> MatrixOf(std::initializer_list<std::vector<double>> rows) {
  return {rows};
}

TEST(ClusteringTest, TwoObviousClusters) {
  // Items 0,1 close; items 2,3 close; the pairs far apart.
  const auto dist = MatrixOf({{0.0, 0.1, 0.9, 0.95},
                              {0.1, 0.0, 0.92, 0.9},
                              {0.9, 0.92, 0.0, 0.05},
                              {0.95, 0.9, 0.05, 0.0}});
  auto result = AgglomerativeCluster(dist, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 2);
  EXPECT_EQ(result->labels[0], result->labels[1]);
  EXPECT_EQ(result->labels[2], result->labels[3]);
  EXPECT_NE(result->labels[0], result->labels[2]);
}

TEST(ClusteringTest, ThresholdZeroKeepsSingletons) {
  const auto dist = MatrixOf({{0.0, 0.2}, {0.2, 0.0}});
  auto result = AgglomerativeCluster(dist, 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 2);
}

TEST(ClusteringTest, LargeThresholdMergesAll) {
  const auto dist = MatrixOf({{0.0, 0.4, 0.8}, {0.4, 0.0, 0.6}, {0.8, 0.6, 0.0}});
  auto result = AgglomerativeCluster(dist, 10.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1);
}

TEST(ClusteringTest, LinkageMatters) {
  // A chain 0-1-2: single linkage merges everything at 0.3; complete linkage
  // keeps 0 and 2 apart (their distance is 0.9 > cut).
  const auto dist = MatrixOf({{0.0, 0.3, 0.9}, {0.3, 0.0, 0.3}, {0.9, 0.3, 0.0}});
  auto single = AgglomerativeCluster(dist, 0.5, Linkage::kSingle);
  auto complete = AgglomerativeCluster(dist, 0.5, Linkage::kComplete);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(complete.ok());
  EXPECT_EQ(single->num_clusters, 1);
  EXPECT_EQ(complete->num_clusters, 2);
}

TEST(ClusteringTest, EmptyAndSingleton) {
  auto empty = AgglomerativeCluster({}, 0.5);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_clusters, 0);
  auto one = AgglomerativeCluster(MatrixOf({{0.0}}), 0.5);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->num_clusters, 1);
}

TEST(ClusteringTest, NonSquareRejected) {
  std::vector<std::vector<double>> bad = {{0.0, 1.0}, {1.0}};
  EXPECT_FALSE(AgglomerativeCluster(bad, 0.5).ok());
}

TEST(ConnectedComponentsTest, Basics) {
  // 0-1, 1-2 chain; 3 isolated.
  const auto result = ConnectedComponents(4, {{0, 1}, {1, 2}});
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[1], result.labels[2]);
  EXPECT_NE(result.labels[3], result.labels[0]);
}

TEST(ConnectedComponentsTest, NoEdges) {
  const auto result = ConnectedComponents(3, {});
  EXPECT_EQ(result.num_clusters, 3);
}

TEST(ConnectedComponentsTest, OutOfRangeEdgesIgnored) {
  const auto result = ConnectedComponents(2, {{0, 5}, {0, 1}});
  EXPECT_EQ(result.num_clusters, 1);
}

TEST(CorrelationTest, AlignedCorrelationOnMatchingShapes) {
  TimeSeries a;
  TimeSeries b;
  for (Timestamp t = 0; t < 50; ++t) {
    (void)a.Append(t, static_cast<double>(t));
    // Same shape on a different time base and scale.
    (void)b.Append(t * 10, static_cast<double>(t) * 3 + 7);
  }
  EXPECT_NEAR(AlignedCorrelation(a, b), 1.0, 1e-3);
}

TEST(CorrelationTest, AntiCorrelated) {
  TimeSeries a;
  TimeSeries b;
  for (Timestamp t = 0; t < 50; ++t) {
    (void)a.Append(t, static_cast<double>(t));
    (void)b.Append(t, -static_cast<double>(t));
  }
  EXPECT_NEAR(AlignedCorrelation(a, b), -1.0, 1e-6);
}

TEST(CorrelationTest, DegenerateInputs) {
  TimeSeries a;
  (void)a.Append(0, 1.0);
  TimeSeries b;
  for (Timestamp t = 0; t < 10; ++t) (void)b.Append(t, t);
  EXPECT_DOUBLE_EQ(AlignedCorrelation(a, b), 0.0);  // too short
  EXPECT_DOUBLE_EQ(AlignedCorrelation(TimeSeries(), b), 0.0);
}

}  // namespace
}  // namespace exstream
