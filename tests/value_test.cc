#include "common/value.h"

#include <cmath>

#include <gtest/gtest.h>

namespace exstream {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value().type(), ValueType::kInt64);  // default is int64 0

  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value(3.9).AsInt64(), 3);  // truncation
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, StringAsDoubleIsNaN) {
  EXPECT_TRUE(std::isnan(Value("oops").AsDouble()));
}

TEST(ValueTest, NumericCompareCrossType) {
  auto c = Value(int64_t{2}).Compare(Value(2.0));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 0);
  EXPECT_EQ(*Value(int64_t{1}).Compare(Value(2.5)), -1);
  EXPECT_EQ(*Value(3.5).Compare(Value(int64_t{2})), 1);
}

TEST(ValueTest, StringCompare) {
  EXPECT_EQ(*Value("abc").Compare(Value("abd")), -1);
  EXPECT_EQ(*Value("b").Compare(Value("a")), 1);
  EXPECT_EQ(*Value("x").Compare(Value("x")), 0);
}

TEST(ValueTest, MixedCompareErrors) {
  EXPECT_FALSE(Value("abc").Compare(Value(1.0)).ok());
  EXPECT_FALSE(Value(int64_t{1}).Compare(Value("abc")).ok());
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{5}), Value(5.0));
  EXPECT_EQ(Value("s"), Value(std::string("s")));
  EXPECT_FALSE(Value(1.0) == Value(2.0));
  EXPECT_FALSE(Value("1") == Value(1.0));  // mismatched types are not equal
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("text").ToString(), "text");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, ValueTypeNames) {
  EXPECT_EQ(ValueTypeToString(ValueType::kInt64), "int64");
  EXPECT_EQ(ValueTypeToString(ValueType::kDouble), "double");
  EXPECT_EQ(ValueTypeToString(ValueType::kString), "string");
}

}  // namespace
}  // namespace exstream
