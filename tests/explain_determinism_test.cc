// Determinism of the parallel explanation pipeline: Explain() must return an
// identical ExplanationReport — same ranking, same rewards, same final CNF —
// for any num_threads. Every parallel stage is index-addressed and merged in
// deterministic order, so this holds bit-for-bit, not just approximately.

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include <gtest/gtest.h>

#include "features/builder.h"
#include "sim/workloads.h"

namespace exstream {
namespace {

WorkloadRunOptions FastOptions() {
  WorkloadRunOptions options;
  options.num_nodes = 4;
  options.num_normal_jobs = 2;
  options.sc_num_sensors = 6;
  options.sc_num_machines = 6;
  return options;
}

ExplanationReport ExplainWithThreads(const WorkloadRun& run, size_t num_threads,
                                     bool use_legacy_row_scan = false) {
  ExplainOptions options = run.DefaultExplainOptions();
  options.num_threads = num_threads;
  options.use_legacy_row_scan = use_legacy_row_scan;
  ExplanationEngine engine = run.MakeExplanationEngine(std::move(options));
  auto report = engine.Explain(run.annotation);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).MoveValue();
}

// Bitwise equality everywhere: the parallel run must not merely be close, it
// must execute the same floating-point operations per feature.
void ExpectIdenticalReports(const ExplanationReport& a, const ExplanationReport& b,
                            size_t num_threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(num_threads));

  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].spec.Name(), b.ranked[i].spec.Name()) << i;
    EXPECT_EQ(a.ranked[i].reward(), b.ranked[i].reward()) << i;
    EXPECT_EQ(a.ranked[i].entropy.regularized_entropy,
              b.ranked[i].entropy.regularized_entropy)
        << i;
    EXPECT_EQ(a.ranked[i].abnormal_series.size(), b.ranked[i].abnormal_series.size());
    EXPECT_EQ(a.ranked[i].reference_series.size(),
              b.ranked[i].reference_series.size());
  }

  ASSERT_EQ(a.after_leap.size(), b.after_leap.size());
  for (size_t i = 0; i < a.after_leap.size(); ++i) {
    EXPECT_EQ(a.after_leap[i].spec.Name(), b.after_leap[i].spec.Name()) << i;
  }

  EXPECT_EQ(a.num_related_partitions, b.num_related_partitions);
  EXPECT_EQ(a.num_labeled_abnormal, b.num_labeled_abnormal);
  EXPECT_EQ(a.num_labeled_reference, b.num_labeled_reference);
  EXPECT_EQ(a.num_discarded, b.num_discarded);

  ASSERT_EQ(a.validation.size(), b.validation.size());
  for (size_t i = 0; i < a.validation.size(); ++i) {
    EXPECT_EQ(a.validation[i].feature.spec.Name(), b.validation[i].feature.spec.Name());
    EXPECT_EQ(a.validation[i].annotated_reward, b.validation[i].annotated_reward) << i;
    EXPECT_EQ(a.validation[i].validated_reward, b.validation[i].validated_reward) << i;
    EXPECT_EQ(a.validation[i].kept, b.validation[i].kept) << i;
  }

  EXPECT_EQ(a.SelectedFeatureNames(), b.SelectedFeatureNames());
  EXPECT_EQ(a.explanation.ToString(), b.explanation.ToString());
}

TEST(ExplainDeterminismTest, HadoopReportIdenticalAcrossThreadCounts) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport serial = ExplainWithThreads(**run, 1);
  ASSERT_FALSE(serial.ranked.empty());
  for (const size_t num_threads : {size_t{2}, size_t{8}}) {
    const ExplanationReport parallel = ExplainWithThreads(**run, num_threads);
    ExpectIdenticalReports(serial, parallel, num_threads);
  }
}

TEST(ExplainDeterminismTest, SupplyChainReportIdenticalAcrossThreadCounts) {
  auto run = BuildWorkloadRun(SupplyChainWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport serial = ExplainWithThreads(**run, 1);
  ASSERT_FALSE(serial.ranked.empty());
  for (const size_t num_threads : {size_t{2}, size_t{8}}) {
    const ExplanationReport parallel = ExplainWithThreads(**run, num_threads);
    ExpectIdenticalReports(serial, parallel, num_threads);
  }
}

// The columnar ScanView hot path and the legacy row-materializing Scan path
// must execute the same per-sample arithmetic: identical reports, bit for
// bit, on both simulators — the storage layout is an implementation detail.
TEST(ExplainDeterminismTest, ScanViewMatchesLegacyRowScanHadoop) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport view = ExplainWithThreads(**run, 1, false);
  ASSERT_FALSE(view.ranked.empty());
  const ExplanationReport legacy = ExplainWithThreads(**run, 1, true);
  ExpectIdenticalReports(view, legacy, 1);
  // The equivalence must also hold when both paths run parallel.
  const ExplanationReport view_mt = ExplainWithThreads(**run, 8, false);
  const ExplanationReport legacy_mt = ExplainWithThreads(**run, 8, true);
  ExpectIdenticalReports(view_mt, legacy_mt, 8);
}

TEST(ExplainDeterminismTest, ScanViewMatchesLegacyRowScanSupplyChain) {
  auto run = BuildWorkloadRun(SupplyChainWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport view = ExplainWithThreads(**run, 1, false);
  ASSERT_FALSE(view.ranked.empty());
  const ExplanationReport legacy = ExplainWithThreads(**run, 1, true);
  ExpectIdenticalReports(view, legacy, 1);
}

TEST(ExplainDeterminismTest, RepeatedParallelRunsAreStable) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[3], FastOptions());  // W4 HighCpu
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport first = ExplainWithThreads(**run, 8);
  const ExplanationReport second = ExplainWithThreads(**run, 8);
  ExpectIdenticalReports(first, second, 8);
}

// Rebuilds the run's archive with tier windows aligned to its feature
// windows, so resolution-aware scans can actually be answered from tiers.
std::unique_ptr<EventArchive> TieredReplica(const WorkloadRun& run) {
  Timestamp tier_window = 0;
  for (const Timestamp w : run.FeatureSpace().windows) {
    tier_window = std::gcd(tier_window, w);
  }
  EXPECT_GT(tier_window, 0);
  ArchiveOptions options;
  options.tier_windows = {tier_window};
  // Tiers are built at seal time and served only from sealed chunks; the
  // workload's per-type event counts sit below the default capacity, so
  // shrink chunks or nothing ever seals and the tier path stays unreachable.
  options.chunk_capacity = 256;
  auto archive = std::make_unique<EventArchive>(run.registry.get(), options);
  const TimeInterval everything{0, std::numeric_limits<Timestamp>::max() / 2};
  auto scans = run.archive->ScanAll(everything);
  EXPECT_TRUE(scans.ok()) << scans.status().ToString();
  for (const auto& scan : *scans) {
    for (const Event& e : scan.events) {
      EXPECT_TRUE(archive->Append(e).ok());
    }
  }
  return archive;
}

// Tiered reference scans may change reference-side aggregates (absolute-
// instead of series-anchored windows — the resolution the caller opted
// into), but the abnormal interval must stay on exact raw rows: every
// abnormal-interval series bit-identical to the fully exact run.
TEST(ExplainDeterminismTest, TieredReferenceKeepsAbnormalSeriesBitIdentical) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::unique_ptr<EventArchive> archive = TieredReplica(**run);

  ExplainOptions exact_options = (*run)->DefaultExplainOptions();
  ExplainOptions tiered_options = (*run)->DefaultExplainOptions();
  tiered_options.tiered_reference_scans = true;
  const ExplanationEngine exact_engine(archive.get(), (*run)->partitions.get(),
                                       (*run)->MakeSeriesProvider(),
                                       std::move(exact_options));
  const ExplanationEngine tiered_engine(archive.get(), (*run)->partitions.get(),
                                        (*run)->MakeSeriesProvider(),
                                        std::move(tiered_options));
  auto exact = exact_engine.Explain((*run)->annotation);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  const size_t before = archive->tier_segments_served();
  auto tiered = tiered_engine.Explain((*run)->annotation);
  ASSERT_TRUE(tiered.ok()) << tiered.status().ToString();
  ASSERT_GT(archive->tier_segments_served(), before)
      << "tiered explain never reached the tier path";

  ASSERT_EQ(exact->ranked.size(), tiered->ranked.size());
  std::map<std::string, const RankedFeature*> exact_by_name;
  for (const RankedFeature& f : exact->ranked) {
    exact_by_name[f.spec.Name()] = &f;
  }
  for (const RankedFeature& f : tiered->ranked) {
    auto it = exact_by_name.find(f.spec.Name());
    ASSERT_NE(it, exact_by_name.end()) << f.spec.Name();
    EXPECT_EQ(it->second->abnormal_series.times(), f.abnormal_series.times())
        << f.spec.Name();
    EXPECT_EQ(it->second->abnormal_series.values(), f.abnormal_series.values())
        << f.spec.Name();
  }
}

// Tier-selection correctness at the feature-build level: a tiered build's
// windowed aggregates must equal a manual fold of the raw rows into
// absolute-aligned windows — the tier path changes where the numbers come
// from, never what they are.
TEST(ExplainDeterminismTest, TieredAggregatesMatchAbsoluteWindowOracle) {
  EventTypeRegistry registry;
  ASSERT_TRUE(registry.Register(EventSchema("M", {{"x", ValueType::kDouble}})).ok());
  ArchiveOptions options;
  // Capacity not a multiple of the window: aggregation windows straddle chunk
  // boundaries, so the fold must merge partials across tier segments.
  options.chunk_capacity = 10;
  options.tier_windows = {4};
  EventArchive archive(&registry, options);
  std::vector<double> xs;
  for (Timestamp t = 0; t < 37; ++t) {
    const double x = 0.5 * static_cast<double>(t * t % 17);
    xs.push_back(x);
    ASSERT_TRUE(archive.Append(Event(0, t, {Value(x)})).ok());
  }
  const TimeInterval interval{0, 36};
  const Timestamp window = 4;
  std::vector<FeatureSpec> specs;
  for (const AggregateKind agg :
       {AggregateKind::kMean, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kStdDev, AggregateKind::kCount}) {
    FeatureSpec spec;
    spec.type = 0;
    spec.attr_index = 0;
    spec.event_type_name = "M";
    spec.attribute_name = "x";
    spec.agg = agg;
    spec.window = window;
    specs.push_back(spec);
  }
  const FeatureBuilder builder(&archive);
  auto feats = builder.Build(specs, interval, nullptr, nullptr, nullptr,
                             /*allow_tiers=*/true);
  ASSERT_TRUE(feats.ok()) << feats.status().ToString();
  ASSERT_GT(archive.tier_segments_served(), 0u)
      << "tiered build never reached the tier path";
  for (const Feature& f : *feats) {
    SCOPED_TRACE(f.spec.Name());
    size_t slot = 0;
    for (Timestamp wend = window; wend - window <= interval.upper;
         wend += window) {
      double sum = 0.0, sumsq = 0.0, mn = 0.0, mx = 0.0;
      size_t n = 0;
      for (Timestamp t = wend - window; t < wend && t <= interval.upper; ++t) {
        const double x = xs[static_cast<size_t>(t)];
        if (n == 0) { mn = mx = x; }
        mn = std::min(mn, x);
        mx = std::max(mx, x);
        sum += x;
        sumsq += x * x;
        ++n;
      }
      double expected = 0.0;
      switch (f.spec.agg) {
        case AggregateKind::kMean: expected = sum / static_cast<double>(n); break;
        case AggregateKind::kSum: expected = sum; break;
        case AggregateKind::kMin: expected = mn; break;
        case AggregateKind::kMax: expected = mx; break;
        case AggregateKind::kStdDev: {
          const double m = sum / static_cast<double>(n);
          expected = n < 2 ? 0.0
                           : std::sqrt(std::max(
                                 0.0, sumsq / static_cast<double>(n) - m * m));
          break;
        }
        case AggregateKind::kCount: expected = static_cast<double>(n); break;
        default: FAIL();
      }
      ASSERT_LT(slot, f.series.size());
      EXPECT_EQ(f.series.times()[slot], wend);
      EXPECT_NEAR(f.series.values()[slot], expected, 1e-9) << "wend=" << wend;
      ++slot;
    }
    EXPECT_EQ(slot, f.series.size());
  }
}

}  // namespace
}  // namespace exstream
