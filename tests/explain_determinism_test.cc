// Determinism of the parallel explanation pipeline: Explain() must return an
// identical ExplanationReport — same ranking, same rewards, same final CNF —
// for any num_threads. Every parallel stage is index-addressed and merged in
// deterministic order, so this holds bit-for-bit, not just approximately.

#include <gtest/gtest.h>

#include "sim/workloads.h"

namespace exstream {
namespace {

WorkloadRunOptions FastOptions() {
  WorkloadRunOptions options;
  options.num_nodes = 4;
  options.num_normal_jobs = 2;
  options.sc_num_sensors = 6;
  options.sc_num_machines = 6;
  return options;
}

ExplanationReport ExplainWithThreads(const WorkloadRun& run, size_t num_threads,
                                     bool use_legacy_row_scan = false) {
  ExplainOptions options = run.DefaultExplainOptions();
  options.num_threads = num_threads;
  options.use_legacy_row_scan = use_legacy_row_scan;
  ExplanationEngine engine = run.MakeExplanationEngine(std::move(options));
  auto report = engine.Explain(run.annotation);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).MoveValue();
}

// Bitwise equality everywhere: the parallel run must not merely be close, it
// must execute the same floating-point operations per feature.
void ExpectIdenticalReports(const ExplanationReport& a, const ExplanationReport& b,
                            size_t num_threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(num_threads));

  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].spec.Name(), b.ranked[i].spec.Name()) << i;
    EXPECT_EQ(a.ranked[i].reward(), b.ranked[i].reward()) << i;
    EXPECT_EQ(a.ranked[i].entropy.regularized_entropy,
              b.ranked[i].entropy.regularized_entropy)
        << i;
    EXPECT_EQ(a.ranked[i].abnormal_series.size(), b.ranked[i].abnormal_series.size());
    EXPECT_EQ(a.ranked[i].reference_series.size(),
              b.ranked[i].reference_series.size());
  }

  ASSERT_EQ(a.after_leap.size(), b.after_leap.size());
  for (size_t i = 0; i < a.after_leap.size(); ++i) {
    EXPECT_EQ(a.after_leap[i].spec.Name(), b.after_leap[i].spec.Name()) << i;
  }

  EXPECT_EQ(a.num_related_partitions, b.num_related_partitions);
  EXPECT_EQ(a.num_labeled_abnormal, b.num_labeled_abnormal);
  EXPECT_EQ(a.num_labeled_reference, b.num_labeled_reference);
  EXPECT_EQ(a.num_discarded, b.num_discarded);

  ASSERT_EQ(a.validation.size(), b.validation.size());
  for (size_t i = 0; i < a.validation.size(); ++i) {
    EXPECT_EQ(a.validation[i].feature.spec.Name(), b.validation[i].feature.spec.Name());
    EXPECT_EQ(a.validation[i].annotated_reward, b.validation[i].annotated_reward) << i;
    EXPECT_EQ(a.validation[i].validated_reward, b.validation[i].validated_reward) << i;
    EXPECT_EQ(a.validation[i].kept, b.validation[i].kept) << i;
  }

  EXPECT_EQ(a.SelectedFeatureNames(), b.SelectedFeatureNames());
  EXPECT_EQ(a.explanation.ToString(), b.explanation.ToString());
}

TEST(ExplainDeterminismTest, HadoopReportIdenticalAcrossThreadCounts) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport serial = ExplainWithThreads(**run, 1);
  ASSERT_FALSE(serial.ranked.empty());
  for (const size_t num_threads : {size_t{2}, size_t{8}}) {
    const ExplanationReport parallel = ExplainWithThreads(**run, num_threads);
    ExpectIdenticalReports(serial, parallel, num_threads);
  }
}

TEST(ExplainDeterminismTest, SupplyChainReportIdenticalAcrossThreadCounts) {
  auto run = BuildWorkloadRun(SupplyChainWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport serial = ExplainWithThreads(**run, 1);
  ASSERT_FALSE(serial.ranked.empty());
  for (const size_t num_threads : {size_t{2}, size_t{8}}) {
    const ExplanationReport parallel = ExplainWithThreads(**run, num_threads);
    ExpectIdenticalReports(serial, parallel, num_threads);
  }
}

// The columnar ScanView hot path and the legacy row-materializing Scan path
// must execute the same per-sample arithmetic: identical reports, bit for
// bit, on both simulators — the storage layout is an implementation detail.
TEST(ExplainDeterminismTest, ScanViewMatchesLegacyRowScanHadoop) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport view = ExplainWithThreads(**run, 1, false);
  ASSERT_FALSE(view.ranked.empty());
  const ExplanationReport legacy = ExplainWithThreads(**run, 1, true);
  ExpectIdenticalReports(view, legacy, 1);
  // The equivalence must also hold when both paths run parallel.
  const ExplanationReport view_mt = ExplainWithThreads(**run, 8, false);
  const ExplanationReport legacy_mt = ExplainWithThreads(**run, 8, true);
  ExpectIdenticalReports(view_mt, legacy_mt, 8);
}

TEST(ExplainDeterminismTest, ScanViewMatchesLegacyRowScanSupplyChain) {
  auto run = BuildWorkloadRun(SupplyChainWorkloads()[0], FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport view = ExplainWithThreads(**run, 1, false);
  ASSERT_FALSE(view.ranked.empty());
  const ExplanationReport legacy = ExplainWithThreads(**run, 1, true);
  ExpectIdenticalReports(view, legacy, 1);
}

TEST(ExplainDeterminismTest, RepeatedParallelRunsAreStable) {
  auto run = BuildWorkloadRun(HadoopWorkloads()[3], FastOptions());  // W4 HighCpu
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExplanationReport first = ExplainWithThreads(**run, 8);
  const ExplanationReport second = ExplainWithThreads(**run, 8);
  ExpectIdenticalReports(first, second, 8);
}

}  // namespace
}  // namespace exstream
