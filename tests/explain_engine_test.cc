// Unit tests of the ExplanationEngine on a small synthetic archive (no
// simulator): one shifted metric, one stable metric, one monotone
// false-positive metric.

#include "explain/engine.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

class ExplainEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Metric", {{"shifted", ValueType::kDouble},
                                                     {"stable", ValueType::kDouble},
                                                     {"monotone", ValueType::kDouble}}))
                    .ok());
    archive_ = std::make_unique<EventArchive>(&registry_);
    // t in [0, 400): anomaly during [100, 200): `shifted` drops from ~50 to
    // ~10; `stable` hovers at 5; `monotone` is t itself.
    Rng rng(33);
    for (Timestamp t = 0; t < 400; ++t) {
      const bool anomalous = t >= 100 && t < 200;
      ASSERT_TRUE(archive_
                      ->Append(Event(0, t,
                                     {Value((anomalous ? 10.0 : 50.0) +
                                            rng.Gaussian(0, 1)),
                                      Value(5.0 + rng.Gaussian(0, 0.5)),
                                      Value(static_cast<double>(t))}))
                      .ok());
    }
  }

  ExplainOptions Options(bool clustering = true) {
    ExplainOptions options;
    options.feature_space.windows = {10};
    options.enable_validation = false;  // no partitions in this fixture
    options.enable_clustering = clustering;
    return options;
  }

  AnomalyAnnotation Annotation() {
    AnomalyAnnotation a;
    a.abnormal = {"Q", {100, 199}, "p"};
    a.reference = {"Q", {200, 399}, "p"};
    return a;
  }

  EventTypeRegistry registry_;
  std::unique_ptr<EventArchive> archive_;
};

TEST_F(ExplainEngineTest, FindsTheShiftedMetric) {
  ExplanationEngine engine(archive_.get(), nullptr, nullptr, Options());
  auto report = engine.Explain(Annotation());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->final_features.empty());
  bool found_shifted = false;
  for (const auto& f : report->final_features) {
    if (f.spec.attribute_name == "shifted") found_shifted = true;
    EXPECT_NE(f.spec.attribute_name, "stable");  // no reward, never selected
  }
  EXPECT_TRUE(found_shifted);
  EXPECT_FALSE(report->explanation.empty());
}

TEST_F(ExplainEngineTest, ExplanationPredictsItsOwnIntervals) {
  ExplanationEngine engine(archive_.get(), nullptr, nullptr, Options());
  auto report = engine.Explain(Annotation());
  ASSERT_TRUE(report.ok());
  // Evaluate on representative values: shifted=10 abnormal, 50 normal. The
  // explanation references some subset of features; provide all plausible
  // names.
  std::map<std::string, double> abnormal_row;
  std::map<std::string, double> normal_row;
  for (const auto& f : report->final_features) {
    const std::string name = f.spec.Name();
    if (f.spec.attribute_name == "shifted") {
      abnormal_row[name] = 10.0;
      normal_row[name] = 50.0;
    } else if (f.spec.attribute_name == "monotone") {
      abnormal_row[name] = 150.0;
      normal_row[name] = 300.0;
    }
  }
  EXPECT_TRUE(report->explanation.Eval(abnormal_row));
  EXPECT_FALSE(report->explanation.Eval(normal_row));
}

TEST_F(ExplainEngineTest, WithoutValidationMonotoneFeatureSurvives) {
  // The monotone metric perfectly separates the two intervals of one
  // partition; with Step 2 disabled nothing can remove it.
  ExplanationEngine engine(archive_.get(), nullptr, nullptr, Options(false));
  auto report = engine.Explain(Annotation());
  ASSERT_TRUE(report.ok());
  bool monotone_present = false;
  for (const auto& f : report->after_validation) {
    if (f.spec.attribute_name == "monotone") monotone_present = true;
  }
  EXPECT_TRUE(monotone_present);
}

TEST_F(ExplainEngineTest, ClusteringReducesFeatureCount) {
  ExplanationEngine with(archive_.get(), nullptr, nullptr, Options(true));
  ExplanationEngine without(archive_.get(), nullptr, nullptr, Options(false));
  auto r_with = with.Explain(Annotation());
  auto r_without = without.Explain(Annotation());
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  EXPECT_LE(r_with->final_features.size(), r_without->final_features.size());
}

TEST_F(ExplainEngineTest, ReportStagesAreOrderedSubsets) {
  ExplanationEngine engine(archive_.get(), nullptr, nullptr, Options());
  auto report = engine.Explain(Annotation());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->ranked.size(), report->after_leap.size());
  EXPECT_GE(report->after_leap.size(), report->after_validation.size());
  EXPECT_GE(report->after_validation.size(), report->final_features.size());
  // Ranked output is sorted by reward descending.
  for (size_t i = 1; i < report->ranked.size(); ++i) {
    EXPECT_GE(report->ranked[i - 1].reward(), report->ranked[i].reward());
  }
  EXPECT_GE(report->duration_seconds, 0.0);
}

TEST_F(ExplainEngineTest, MinSupportZeroesOutSparseFeatures) {
  ExplainOptions options = Options();
  options.min_support = 1000000;  // nothing has this much support
  ExplanationEngine engine(archive_.get(), nullptr, nullptr, options);
  auto report = engine.Explain(Annotation());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->after_leap.empty());
  EXPECT_TRUE(report->explanation.empty());
}

TEST_F(ExplainEngineTest, SelectedFeatureNames) {
  ExplanationEngine engine(archive_.get(), nullptr, nullptr, Options());
  auto report = engine.Explain(Annotation());
  ASSERT_TRUE(report.ok());
  const auto names = report->SelectedFeatureNames();
  EXPECT_EQ(names.size(), report->final_features.size());
}

}  // namespace
}  // namespace exstream
