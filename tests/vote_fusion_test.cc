#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/data_fusion.h"
#include "ml/majority_vote.h"
#include "ml/metrics.h"
#include "ml/stump.h"

namespace exstream {
namespace {

// One informative feature plus `noise_features` coin-flip features.
Dataset NoisyData(uint64_t seed, int noise_features, size_t n = 200) {
  Rng rng(seed);
  Dataset data;
  data.feature_names = {"signal"};
  for (int f = 0; f < noise_features; ++f) {
    data.feature_names.push_back("noise" + std::to_string(f));
  }
  for (size_t i = 0; i < n; ++i) {
    const int y = i % 2 == 0 ? 1 : 0;
    std::vector<double> row = {y == 1 ? rng.Gaussian(4, 1) : rng.Gaussian(-4, 1)};
    for (int f = 0; f < noise_features; ++f) row.push_back(rng.Gaussian(0, 1));
    data.rows.push_back(std::move(row));
    data.labels.push_back(y);
  }
  return data;
}

TEST(StumpTest, FindsBestThresholdAndPolarity) {
  Dataset data;
  data.feature_names = {"x"};
  for (int i = 0; i < 20; ++i) {
    data.rows.push_back({static_cast<double>(i)});
    data.labels.push_back(i < 10 ? 1 : 0);  // LOW values are abnormal
  }
  const DecisionStump stump = FitStump(data, 0);
  EXPECT_EQ(stump.polarity, -1);
  EXPECT_NEAR(stump.threshold, 9.5, 1e-9);
  EXPECT_DOUBLE_EQ(stump.train_accuracy, 1.0);
  EXPECT_EQ(stump.PredictRow({3.0}), 1);
  EXPECT_EQ(stump.PredictRow({15.0}), 0);
}

TEST(StumpTest, ConstantFeatureFallsBackToMajority) {
  Dataset data;
  data.feature_names = {"c"};
  for (int i = 0; i < 10; ++i) {
    data.rows.push_back({1.0});
    data.labels.push_back(i < 7 ? 0 : 1);
  }
  const DecisionStump stump = FitStump(data, 0);
  EXPECT_NEAR(stump.train_accuracy, 0.7, 1e-9);
}

TEST(MajorityVoteTest, WorksWhenMostFeaturesInformative) {
  Rng rng(5);
  Dataset data;
  data.feature_names = {"a", "b", "c"};
  for (size_t i = 0; i < 100; ++i) {
    const int y = i % 2 == 0 ? 1 : 0;
    const double base = y == 1 ? 3.0 : -3.0;
    data.rows.push_back({base + rng.Gaussian(0, 1), base + rng.Gaussian(0, 1),
                         base + rng.Gaussian(0, 1)});
    data.labels.push_back(y);
  }
  auto model = MajorityVote::Fit(data);
  ASSERT_TRUE(model.ok());
  const auto preds = model->Predict(data);
  EXPECT_GE(EvaluatePredictions(data.labels, preds).F1(), 0.95);
  EXPECT_EQ(model->SelectedFeatures().size(), 3u);  // never selects
}

TEST(MajorityVoteTest, DrownedByNoiseFeatures) {
  // With 1 informative and 30 noise features, the unweighted majority is
  // noticeably worse than the weighted fusion — the paper's Fig. 16 gap.
  const Dataset data = NoisyData(6, 30);
  auto vote = MajorityVote::Fit(data);
  auto fusion = DataFusion::Fit(data);
  ASSERT_TRUE(vote.ok());
  ASSERT_TRUE(fusion.ok());
  const double vote_f1 =
      EvaluatePredictions(data.labels, vote->Predict(data)).F1();
  const double fusion_f1 =
      EvaluatePredictions(data.labels, fusion->Predict(data)).F1();
  EXPECT_GT(fusion_f1, vote_f1);
  EXPECT_GE(fusion_f1, 0.95);
}

TEST(DataFusionTest, CorrelatedSourcesDiscounted) {
  // Three identical copies of a weak feature + one independent strong
  // feature: correlation discounting keeps the copies from out-voting the
  // strong source.
  Rng rng(7);
  Dataset data;
  data.feature_names = {"weak1", "weak2", "weak3", "strong"};
  for (size_t i = 0; i < 300; ++i) {
    const int y = i % 2 == 0 ? 1 : 0;
    const double weak =
        (rng.Chance(0.65) ? y : 1 - y) == 1 ? 1.0 : 0.0;  // 65% accurate
    const double strong = y == 1 ? rng.Gaussian(4, 1) : rng.Gaussian(-4, 1);
    data.rows.push_back({weak, weak, weak, strong});
    data.labels.push_back(y);
  }
  auto model = DataFusion::Fit(data);
  ASSERT_TRUE(model.ok());
  const auto preds = model->Predict(data);
  EXPECT_GE(EvaluatePredictions(data.labels, preds).F1(), 0.9);
  // The three weak clones share a cluster: each weight is ~1/3 of a lone
  // source's weight, so their combined pull equals one source.
  EXPECT_NEAR(model->vote_weights()[0], model->vote_weights()[1], 1e-9);
  EXPECT_GT(model->vote_weights()[3], model->vote_weights()[0]);
}

TEST(DataFusionTest, EmptyDataRejected) {
  Dataset empty;
  EXPECT_FALSE(DataFusion::Fit(empty).ok());
  EXPECT_FALSE(MajorityVote::Fit(empty).ok());
}

}  // namespace
}  // namespace exstream
