#include "explain/correlation_filter.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

// A ranked feature whose series follow the given generator.
RankedFeature MakeFeature(const char* attr, double scale, double offset,
                          double noise_sd, uint64_t seed, size_t support = 40) {
  Rng rng(seed);
  RankedFeature f;
  f.spec.event_type_name = "T";
  f.spec.attribute_name = attr;
  f.spec.agg = AggregateKind::kRaw;
  std::vector<double> av;
  std::vector<double> rv;
  for (size_t i = 0; i < support; ++i) {
    // Abnormal: rising ramp; reference: flat. Shared shape across features up
    // to scale/offset/noise.
    const double a = scale * static_cast<double>(i) + offset + rng.Gaussian(0, noise_sd);
    const double r = offset + 100 * scale + rng.Gaussian(0, noise_sd);
    (void)f.abnormal_series.Append(static_cast<Timestamp>(i), a);
    (void)f.reference_series.Append(static_cast<Timestamp>(i), r);
    av.push_back(a);
    rv.push_back(r);
  }
  f.entropy = ComputeEntropyDistance(av, rv);
  return f;
}

// A feature with an independent random walk (uncorrelated with the ramps).
RankedFeature NoiseFeature(const char* attr, uint64_t seed) {
  Rng rng(seed);
  RankedFeature f;
  f.spec.event_type_name = "T";
  f.spec.attribute_name = attr;
  std::vector<double> av;
  std::vector<double> rv;
  double v = 0;
  for (size_t i = 0; i < 40; ++i) {
    v += rng.Gaussian(0, 1);
    (void)f.abnormal_series.Append(static_cast<Timestamp>(i), v);
    av.push_back(v);
    const double r = rng.Gaussian(0, 1);
    (void)f.reference_series.Append(static_cast<Timestamp>(i), r);
    rv.push_back(r);
  }
  f.entropy = ComputeEntropyDistance(av, rv);
  return f;
}

TEST(CorrelationFilterTest, CorrelatedFeaturesCollapse) {
  std::vector<RankedFeature> features = {
      MakeFeature("a", 1.0, 0.0, 0.1, 1),
      MakeFeature("b", 2.0, 5.0, 0.1, 2),   // scaled copy: correlated
      NoiseFeature("c", 3),
  };
  const auto result = CorrelationClusterFilter(features);
  EXPECT_EQ(result.num_clusters, 2);
  EXPECT_EQ(result.representatives.size(), 2u);
  EXPECT_EQ(result.cluster_labels[0], result.cluster_labels[1]);
  EXPECT_NE(result.cluster_labels[0], result.cluster_labels[2]);
}

TEST(CorrelationFilterTest, RepresentativeHasHighestReward) {
  RankedFeature strong = MakeFeature("strong", 1.0, 0.0, 0.01, 4);
  RankedFeature weak = MakeFeature("weak", 1.0, 0.0, 0.01, 5);
  weak.entropy.distance = strong.entropy.distance * 0.5;  // force lower reward
  const auto result = CorrelationClusterFilter({weak, strong});
  ASSERT_EQ(result.representatives.size(), 1u);
  EXPECT_EQ(result.representatives[0].spec.attribute_name, "strong");
}

TEST(CorrelationFilterTest, RewardTieBreaksOnSupport) {
  RankedFeature small = MakeFeature("small", 1.0, 0.0, 0.01, 6, /*support=*/10);
  RankedFeature big = MakeFeature("big", 1.0, 0.0, 0.01, 7, /*support=*/80);
  small.entropy.distance = 1.0;
  big.entropy.distance = 1.0;
  const auto result = CorrelationClusterFilter({small, big});
  ASSERT_EQ(result.representatives.size(), 1u);
  EXPECT_EQ(result.representatives[0].spec.attribute_name, "big");
}

TEST(CorrelationFilterTest, ThresholdControlsMerging) {
  std::vector<RankedFeature> features = {MakeFeature("a", 1.0, 0.0, 2.0, 8),
                                         MakeFeature("b", 1.0, 0.0, 2.0, 9)};
  CorrelationFilterOptions loose;
  loose.threshold = 0.5;
  CorrelationFilterOptions strict;
  strict.threshold = 0.9999;
  EXPECT_LE(CorrelationClusterFilter(features, loose).num_clusters, 2);
  EXPECT_EQ(CorrelationClusterFilter(features, strict).num_clusters, 2);
}

TEST(CorrelationFilterTest, EmptyInput) {
  const auto result = CorrelationClusterFilter({});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.representatives.empty());
}

TEST(CorrelationFilterTest, SingleFeatureSingleton) {
  const auto result = CorrelationClusterFilter({MakeFeature("a", 1.0, 0.0, 0.1, 10)});
  EXPECT_EQ(result.num_clusters, 1);
  ASSERT_EQ(result.representatives.size(), 1u);
}

}  // namespace
}  // namespace exstream
