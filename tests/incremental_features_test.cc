#include "features/incremental.h"

#include <gtest/gtest.h>

#include "features/builder.h"
#include "features/feature_space.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"

namespace exstream {
namespace {

class IncrementalFeatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        registry_.Register(EventSchema("A", {{"x", ValueType::kDouble}})).ok());
    ASSERT_TRUE(
        registry_.Register(EventSchema("B", {{"y", ValueType::kInt64}})).ok());
  }

  Event MakeA(Timestamp ts, double x) { return Event(0, ts, {Value(x)}); }
  Event MakeB(Timestamp ts, int64_t y) { return Event(1, ts, {Value(y)}); }

  // Feeds the same events to the archive and the incremental state — the
  // invariant XStreamSystem::ApplyBatch maintains.
  void Feed(EventArchive* archive, IncrementalFeatureState* state,
            const Event& e) {
    ASSERT_TRUE(archive->Append(e).ok());
    state->OnEvent(e);
  }

  // Collects (ts, value-tag) rows from a view in segment order.
  static std::vector<std::pair<Timestamp, double>> Rows(const ScanView& view) {
    std::vector<std::pair<Timestamp, double>> out;
    for (const auto& seg : view.segments) {
      for (size_t i = seg.begin; i < seg.end; ++i) {
        const auto& col = seg.columns->attrs()[0];
        out.emplace_back(seg.columns->ts()[i], col.nums[i]);
      }
    }
    return out;
  }

  EventTypeRegistry registry_;
};

TEST_F(IncrementalFeatureTest, FullHitMatchesArchiveScan) {
  EventArchive archive(&registry_);
  IncrementalFeatureState state(&registry_);
  for (Timestamp t = 0; t < 200; ++t) Feed(&archive, &state, MakeA(t, t * 0.5));

  const TimeInterval interval{50, 149};
  auto tail = state.ScanWithBackfill(archive, 0, interval);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  auto scan = archive.ScanColumns(0, interval);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(Rows(*tail), Rows(*scan));
  EXPECT_EQ(state.stats().full_hits, 1u);
  EXPECT_EQ(state.stats().misses, 0u);
}

TEST_F(IncrementalFeatureTest, RetentionEvictsAndBackfills) {
  ArchiveOptions aopts;
  aopts.chunk_capacity = 32;
  EventArchive archive(&registry_, aopts);
  IncrementalFeatureState state(&registry_, /*retention=*/50);
  for (Timestamp t = 0; t < 300; ++t) Feed(&archive, &state, MakeA(t, t * 1.0));
  EXPECT_GT(state.stats().events_evicted, 0u);

  // Reaches below the coverage floor: cold prefix from the archive, tail for
  // the rest; rows must equal the pure archive scan exactly.
  const TimeInterval wide{0, 299};
  auto mixed = state.ScanWithBackfill(archive, 0, wide);
  ASSERT_TRUE(mixed.ok());
  auto scan = archive.ScanColumns(0, wide);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(Rows(*mixed), Rows(*scan));
  EXPECT_EQ(state.stats().partial_hits, 1u);

  // Fully inside the retained window: no archive involved.
  const TimeInterval recent{280, 299};
  auto tail = state.ScanWithBackfill(archive, 0, recent);
  ASSERT_TRUE(tail.ok());
  auto recent_scan = archive.ScanColumns(0, recent);
  ASSERT_TRUE(recent_scan.ok());
  EXPECT_EQ(Rows(*tail), Rows(*recent_scan));
  EXPECT_EQ(state.stats().full_hits, 1u);
}

TEST_F(IncrementalFeatureTest, OutOfOrderPoisonsTail) {
  // The archive rejects within-chunk disorder but a freshly sealed chunk's
  // first append is unchecked — the tail must never serve rows it can no
  // longer prove complete.
  ArchiveOptions aopts;
  aopts.chunk_capacity = 4;
  EventArchive archive(&registry_, aopts);
  IncrementalFeatureState state(&registry_);
  for (Timestamp t = 0; t < 8; ++t) Feed(&archive, &state, MakeA(t, 1.0));
  // ts 5 lands at a chunk boundary: archive accepts it out of order.
  ASSERT_TRUE(archive.Append(MakeA(5, 2.0)).ok());
  state.OnEvent(MakeA(5, 2.0));
  EXPECT_EQ(state.stats().disorder_resets, 1u);
  for (Timestamp t = 8; t < 20; ++t) Feed(&archive, &state, MakeA(t, 1.0));

  // Anything overlapping the poisoned span must fall back to the archive and
  // still match it bit for bit.
  const TimeInterval span{0, 19};
  auto view = state.ScanWithBackfill(archive, 0, span);
  ASSERT_TRUE(view.ok());
  auto scan = archive.ScanColumns(0, span);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(Rows(*view), Rows(*scan));
}

TEST_F(IncrementalFeatureTest, BuilderDifferentialAcrossPaths) {
  ArchiveOptions aopts;
  aopts.chunk_capacity = 64;
  EventArchive archive(&registry_, aopts);
  IncrementalFeatureState state(&registry_, /*retention=*/120);
  for (Timestamp t = 0; t < 400; ++t) {
    Feed(&archive, &state, MakeA(t, (t % 17) * 0.25));
    if (t % 3 == 0) Feed(&archive, &state, MakeB(t, t % 5));
  }

  FeatureSpaceOptions space;
  space.windows = {10};
  const std::vector<FeatureSpec> specs = GenerateFeatureSpecs(registry_, space);
  ASSERT_FALSE(specs.empty());
  const FeatureBuilder plain(&archive);
  const FeatureBuilder legacy(&archive, /*use_legacy_row_scan=*/true);
  const FeatureBuilder incremental(&archive, false, &state);

  for (const TimeInterval interval :
       {TimeInterval{350, 399}, TimeInterval{0, 399}, TimeInterval{100, 250}}) {
    auto a = plain.Build(specs, interval);
    auto b = legacy.Build(specs, interval);
    auto c = incremental.Build(specs, interval);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    ASSERT_EQ(a->size(), c->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].series.times(), (*c)[i].series.times())
          << (*a)[i].spec.Name();
      EXPECT_EQ((*a)[i].series.values(), (*c)[i].series.values())
          << (*a)[i].spec.Name();
      EXPECT_EQ((*b)[i].series.times(), (*c)[i].series.times());
      EXPECT_EQ((*b)[i].series.values(), (*c)[i].series.values());
    }
  }
  const auto stats = state.stats();
  EXPECT_GT(stats.full_hits + stats.partial_hits, 0u);
}

// End-to-end: a serving-enabled system explains a simulated anomaly with
// features from the tails; a plain engine over the same archive must produce
// the identical explanation.
TEST(IncrementalSystemTest, SystemExplainBitIdentical) {
  EventTypeRegistry registry;
  ASSERT_TRUE(HadoopClusterSim::RegisterEventTypes(&registry).ok());
  constexpr char kQ[] =
      "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
      "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

  XStreamConfig config;
  config.explain.feature_space.windows = {10};
  config.serving.incremental_features = true;
  XStreamSystem system(&registry, config);
  auto qid = system.AddQuery(kQ, "Q1");
  ASSERT_TRUE(qid.ok());

  HadoopSimConfig sim_config;
  sim_config.num_nodes = 3;
  sim_config.seed = 77;
  HadoopClusterSim sim(sim_config, &registry);
  HadoopJobConfig job;
  job.job_id = "job-x";
  job.program = "p";
  job.dataset = "d";
  sim.AddJob(job);
  AnomalySpec anomaly;
  anomaly.type = AnomalyType::kHighMemory;
  anomaly.start = 60;
  anomaly.end = 300;
  sim.AddAnomaly(anomaly);
  ASSERT_TRUE(sim.Run(&system).ok());
  ASSERT_TRUE(system.IndexPartitions(*qid, {{"program", "p"}}).ok());

  AnomalyAnnotation annotation;
  annotation.abnormal = {"Q1", {60, 300}, "job-x"};
  annotation.reference = {"Q1", {360, 600}, "job-x"};
  auto served = system.Explain(annotation, *qid, "sum_dataSize");
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  const auto stats = system.incremental()->stats();
  EXPECT_GT(stats.full_hits + stats.partial_hits, 0u);

  const ExplanationEngine plain(&system.archive(), &system.partitions(),
                                system.MakeSeriesProvider(*qid, "sum_dataSize"),
                                config.explain);
  auto scanned = plain.Explain(annotation);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(served->explanation.ToString(), scanned->explanation.ToString());
  ASSERT_EQ(served->ranked.size(), scanned->ranked.size());
  for (size_t i = 0; i < served->ranked.size(); ++i) {
    EXPECT_EQ(served->ranked[i].abnormal_series.values(),
              scanned->ranked[i].abnormal_series.values());
    EXPECT_EQ(served->ranked[i].reference_series.values(),
              scanned->ranked[i].reference_series.values());
  }
}

}  // namespace
}  // namespace exstream
