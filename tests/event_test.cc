#include "event/event.h"

#include <gtest/gtest.h>

#include "event/registry.h"
#include "event/schema.h"
#include "event/stream.h"

namespace exstream {
namespace {

EventSchema CpuSchema() {
  return EventSchema("CpuUsage", {{"node", ValueType::kInt64},
                                  {"usage", ValueType::kDouble}});
}

TEST(SchemaTest, AttributeLookup) {
  const EventSchema schema = CpuSchema();
  EXPECT_EQ(schema.name(), "CpuUsage");
  EXPECT_EQ(schema.num_attributes(), 2u);
  ASSERT_TRUE(schema.AttributeIndex("usage").ok());
  EXPECT_EQ(*schema.AttributeIndex("usage"), 1u);
  EXPECT_TRUE(schema.HasAttribute("node"));
  EXPECT_FALSE(schema.HasAttribute("nonexistent"));
  EXPECT_TRUE(schema.AttributeIndex("nonexistent").status().IsNotFound());
}

TEST(SchemaTest, ValidateRow) {
  const EventSchema schema = CpuSchema();
  EXPECT_TRUE(schema.ValidateRow({Value(int64_t{1}), Value(0.5)}).ok());
  // int64 accepted where double declared.
  EXPECT_TRUE(schema.ValidateRow({Value(int64_t{1}), Value(int64_t{1})}).ok());
  // Wrong arity.
  EXPECT_FALSE(schema.ValidateRow({Value(int64_t{1})}).ok());
  // Wrong type.
  EXPECT_FALSE(schema.ValidateRow({Value("x"), Value(0.5)}).ok());
}

TEST(SchemaTest, ToStringListsAttributes) {
  EXPECT_EQ(CpuSchema().ToString(), "CpuUsage(timestamp, node:int64, usage:double)");
}

TEST(RegistryTest, RegisterAndLookup) {
  EventTypeRegistry registry;
  auto id = registry.Register(CpuSchema());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_TRUE(registry.Contains("CpuUsage"));
  EXPECT_EQ(*registry.IdOf("CpuUsage"), 0u);
  EXPECT_EQ(registry.schema(0).name(), "CpuUsage");
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryTest, DuplicateRejected) {
  EventTypeRegistry registry;
  ASSERT_TRUE(registry.Register(CpuSchema()).ok());
  EXPECT_EQ(registry.Register(CpuSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, UnknownLookupFails) {
  EventTypeRegistry registry;
  EXPECT_TRUE(registry.IdOf("Nope").status().IsNotFound());
  EXPECT_FALSE(registry.Contains("Nope"));
}

TEST(RegistryTest, DenseIds) {
  EventTypeRegistry registry;
  EXPECT_EQ(*registry.Register(EventSchema("A", {})), 0u);
  EXPECT_EQ(*registry.Register(EventSchema("B", {})), 1u);
  EXPECT_EQ(*registry.Register(EventSchema("C", {})), 2u);
}

TEST(TimeIntervalTest, ContainsAndLength) {
  const TimeInterval iv{10, 20};
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(20));
  EXPECT_TRUE(iv.Contains(15));
  EXPECT_FALSE(iv.Contains(9));
  EXPECT_FALSE(iv.Contains(21));
  EXPECT_EQ(iv.Length(), 10);
}

TEST(StreamTest, FanOutDeliversToAllSinks) {
  VectorSink a;
  VectorSink b;
  FanOutSink fan;
  fan.Attach(&a);
  fan.Attach(&b);
  fan.OnEvent(Event(0, 1, {Value(int64_t{1})}));
  fan.OnEvent(Event(0, 2, {Value(int64_t{2})}));
  EXPECT_EQ(a.events().size(), 2u);
  EXPECT_EQ(b.events().size(), 2u);
  EXPECT_EQ(b.events()[1].ts, 2);
}

TEST(StreamTest, CallbackSink) {
  int count = 0;
  CallbackSink sink([&count](const Event&) { ++count; });
  sink.OnEvent(Event(0, 1, {}));
  sink.OnEvent(Event(0, 2, {}));
  EXPECT_EQ(count, 2);
}

TEST(StreamTest, VectorSourceSortsAndReplays) {
  std::vector<Event> events;
  events.emplace_back(0, 30, std::vector<Value>{});
  events.emplace_back(1, 10, std::vector<Value>{});
  events.emplace_back(0, 20, std::vector<Value>{});
  VectorEventSource source(std::move(events));
  source.SortByTime();
  VectorSink sink;
  source.Replay(&sink);
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[0].ts, 10);
  EXPECT_EQ(sink.events()[1].ts, 20);
  EXPECT_EQ(sink.events()[2].ts, 30);
}

TEST(StreamTest, StableSortKeepsGenerationOrderForTies) {
  std::vector<Event> events;
  events.emplace_back(0, 5, std::vector<Value>{Value(int64_t{1})});
  events.emplace_back(1, 5, std::vector<Value>{Value(int64_t{2})});
  VectorEventSource source(std::move(events));
  source.SortByTime();
  EXPECT_EQ(source.events()[0].values[0].AsInt64(), 1);
  EXPECT_EQ(source.events()[1].values[0].AsInt64(), 2);
}

}  // namespace
}  // namespace exstream
