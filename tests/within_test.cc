// Tests of the WITHIN clause: time-bounded pattern matching.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "query/parser.h"

namespace exstream {
namespace {

class WithinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("A", {{"k", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("B", {{"k", ValueType::kString},
                                                {"v", ValueType::kDouble}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("C", {{"k", ValueType::kString}}))
                    .ok());
  }

  Event A(Timestamp ts) { return Event(0, ts, {Value("p")}); }
  Event B(Timestamp ts, double v = 1.0) { return Event(1, ts, {Value("p"), Value(v)}); }
  Event C(Timestamp ts) { return Event(2, ts, {Value("p")}); }

  EventTypeRegistry registry_;
};

TEST_F(WithinTest, ParserAcceptsWithin) {
  auto q = ParseQuery("PATTERN SEQ(A a, C c) WHERE [k] WITHIN 100 RETURN (a.k)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->within, 100);
  // Round trip.
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->within, 100);
}

TEST_F(WithinTest, ParserRejectsBadDurations) {
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN 0").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN 1.5").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a) WITHIN x").ok());
}

TEST_F(WithinTest, WithinWithoutWhereAccepted) {
  auto q = ParseQuery("PATTERN SEQ(A a, C c) WITHIN 10 RETURN (a.timestamp)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->within, 10);
}

TEST_F(WithinTest, MatchWithinBudgetCompletes) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, C c) WHERE [k] WITHIN 100 RETURN (a.k)", "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(A(0));
  engine.OnEvent(C(50));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

TEST_F(WithinTest, ExpiredRunDiscarded) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, C c) WHERE [k] WITHIN 100 RETURN (a.k)", "Q");
  ASSERT_TRUE(qid.ok());
  engine.OnEvent(A(0));
  engine.OnEvent(C(200));  // too late: run expired, C cannot start a pattern
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 0u);
  // A fresh A then C within budget still matches.
  engine.OnEvent(A(300));
  engine.OnEvent(C(350));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

TEST_F(WithinTest, ExpiryEventCanStartNewRun) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, A2 b)", "Q");
  // Self-restarting is clearer with a two-A pattern; register A2 = reuse C.
  ASSERT_FALSE(qid.ok());  // A2 does not exist; documents the negative path
  qid = engine.AddQueryText("PATTERN SEQ(A a, C c) WITHIN 100 RETURN (c.k)", "Q");
  ASSERT_TRUE(qid.ok());
  engine.OnEvent(A(0));
  engine.OnEvent(A(500));  // first run expired; this A starts a new run
  engine.OnEvent(C(550));
  // This query has no [partition] attribute, so rows land in the global ("")
  // partition.
  EXPECT_EQ(engine.match_table(*qid).NumRows(""), 1u);
}

TEST_F(WithinTest, KleeneRunExpires) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText(
      "PATTERN SEQ(A a, B+ b[], C c) WHERE [k] WITHIN 100 "
      "RETURN (b[i].timestamp, sum(b[1..i].v))",
      "Q");
  ASSERT_TRUE(qid.ok()) << qid.status().ToString();
  engine.OnEvent(A(0));
  engine.OnEvent(B(10, 1));
  engine.OnEvent(B(20, 2));
  engine.OnEvent(B(150, 3));  // beyond WITHIN: run dies, B cannot restart
  engine.OnEvent(C(160));
  EXPECT_FALSE(engine.match_table(*qid).IsComplete("p"));
  // Rows emitted before expiry remain (streamed results are already out).
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 2u);
}

TEST_F(WithinTest, UnboundedByDefault) {
  CepEngine engine(&registry_);
  auto qid = engine.AddQueryText("PATTERN SEQ(A a, C c) WHERE [k] RETURN (a.k)", "Q");
  ASSERT_TRUE(qid.ok());
  engine.OnEvent(A(0));
  engine.OnEvent(C(1000000));
  EXPECT_EQ(engine.match_table(*qid).NumRows("p"), 1u);
}

}  // namespace
}  // namespace exstream
