#include "features/feature_space.h"

#include <gtest/gtest.h>

#include "archive/archive.h"
#include "features/builder.h"

namespace exstream {
namespace {

class FeatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Mem", {{"eventId", ValueType::kInt64},
                                                  {"free", ValueType::kDouble},
                                                  {"host", ValueType::kString}}))
                    .ok());
    ASSERT_TRUE(registry_
                    .Register(EventSchema("Cpu", {{"idle", ValueType::kDouble}}))
                    .ok());
  }

  EventTypeRegistry registry_;
};

TEST_F(FeatureTest, SpecNames) {
  FeatureSpec raw;
  raw.event_type_name = "Mem";
  raw.attribute_name = "free";
  raw.agg = AggregateKind::kRaw;
  EXPECT_EQ(raw.Name(), "Mem.free.raw");

  FeatureSpec mean = raw;
  mean.agg = AggregateKind::kMean;
  mean.window = 10;
  EXPECT_EQ(mean.Name(), "Mem.free.mean@10");
}

TEST_F(FeatureTest, GenerateSpecsSkipsStringsAndExclusions) {
  FeatureSpaceOptions options;
  options.windows = {10};
  options.aggregates = {AggregateKind::kMean};
  const auto specs = GenerateFeatureSpecs(registry_, options);
  // Mem: eventId excluded by default, host is a string -> only `free`.
  // Cpu: idle. Each contributes raw + mean@10.
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].Name(), "Mem.free.raw");
  EXPECT_EQ(specs[1].Name(), "Mem.free.mean@10");
  EXPECT_EQ(specs[2].Name(), "Cpu.idle.raw");
  EXPECT_EQ(specs[3].Name(), "Cpu.idle.mean@10");
}

TEST_F(FeatureTest, ExcludeEventTypes) {
  FeatureSpaceOptions options;
  options.windows = {10};
  options.aggregates = {AggregateKind::kMean};
  options.exclude_event_types = {"Cpu"};
  const auto specs = GenerateFeatureSpecs(registry_, options);
  for (const auto& s : specs) EXPECT_NE(s.event_type_name, "Cpu");
}

TEST_F(FeatureTest, FindSpecByName) {
  const auto specs = GenerateFeatureSpecs(registry_);
  EXPECT_TRUE(FindSpecByName(specs, "Mem.free.raw").ok());
  EXPECT_TRUE(FindSpecByName(specs, "Nope.x.raw").status().IsNotFound());
}

TEST_F(FeatureTest, BuilderRawAndSmoothed) {
  EventArchive archive(&registry_);
  for (Timestamp t = 0; t < 40; ++t) {
    ASSERT_TRUE(archive
                    .Append(Event(0, t, {Value(int64_t{t}), Value(t * 1.0),
                                         Value("h")}))
                    .ok());
  }
  FeatureBuilder builder(&archive);
  FeatureSpaceOptions options;
  options.windows = {10};
  options.aggregates = {AggregateKind::kMean};
  const auto specs = GenerateFeatureSpecs(registry_, options);

  auto features = builder.Build(specs, {0, 39});
  ASSERT_TRUE(features.ok());
  // Mem.free.raw has all 40 points; mean@10 has 4 windows.
  const Feature& raw = (*features)[0];
  const Feature& mean = (*features)[1];
  EXPECT_EQ(raw.series.size(), 40u);
  EXPECT_EQ(mean.series.size(), 4u);
  EXPECT_DOUBLE_EQ(mean.series.value(0), 4.5);  // mean of 0..9
  // Cpu has no events: empty series, not an error.
  EXPECT_TRUE((*features)[2].series.empty());
}

TEST_F(FeatureTest, BuilderSliceRespectsInterval) {
  EventArchive archive(&registry_);
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(
        archive.Append(Event(0, t, {Value(int64_t{t}), Value(t * 1.0), Value("h")}))
            .ok());
  }
  FeatureBuilder builder(&archive);
  FeatureSpec spec;
  spec.type = 0;
  spec.attr_index = 1;
  spec.event_type_name = "Mem";
  spec.attribute_name = "free";
  spec.agg = AggregateKind::kRaw;
  auto feature = builder.BuildOne(spec, {20, 29});
  ASSERT_TRUE(feature.ok());
  EXPECT_EQ(feature->series.size(), 10u);
  EXPECT_DOUBLE_EQ(feature->series.value(0), 20.0);
}

TEST_F(FeatureTest, CountFeatureCoversSilentInterval) {
  // The "missing monitoring" case: no events at all in the queried interval
  // must still yield zero-count windows (not an empty series).
  EventArchive archive(&registry_);
  for (Timestamp t = 0; t < 10; ++t) {
    ASSERT_TRUE(
        archive.Append(Event(1, t, {Value(t * 1.0)})).ok());  // Cpu events early
  }
  FeatureBuilder builder(&archive);
  FeatureSpec spec;
  spec.type = 1;
  spec.attr_index = 0;
  spec.event_type_name = "Cpu";
  spec.attribute_name = "idle";
  spec.agg = AggregateKind::kCount;
  spec.window = 10;
  auto feature = builder.BuildOne(spec, {100, 149});  // silent interval
  ASSERT_TRUE(feature.ok());
  ASSERT_EQ(feature->series.size(), 5u);
  for (size_t i = 0; i < feature->series.size(); ++i) {
    EXPECT_DOUBLE_EQ(feature->series.value(i), 0.0);
  }
}

TEST_F(FeatureTest, CountFeatureCountsPerWindow) {
  EventArchive archive(&registry_);
  // 2 events in [0,10), none in [10,20), 1 in [20,30).
  ASSERT_TRUE(archive.Append(Event(1, 1, {Value(1.0)})).ok());
  ASSERT_TRUE(archive.Append(Event(1, 5, {Value(1.0)})).ok());
  ASSERT_TRUE(archive.Append(Event(1, 25, {Value(1.0)})).ok());
  FeatureBuilder builder(&archive);
  FeatureSpec spec;
  spec.type = 1;
  spec.attr_index = 0;
  spec.event_type_name = "Cpu";
  spec.attribute_name = "idle";
  spec.agg = AggregateKind::kCount;
  spec.window = 10;
  auto feature = builder.BuildOne(spec, {0, 29});
  ASSERT_TRUE(feature.ok());
  ASSERT_EQ(feature->series.size(), 3u);
  EXPECT_DOUBLE_EQ(feature->series.value(0), 2.0);
  EXPECT_DOUBLE_EQ(feature->series.value(1), 0.0);
  EXPECT_DOUBLE_EQ(feature->series.value(2), 1.0);
}

}  // namespace
}  // namespace exstream
