#include "viz/ascii_chart.h"

#include <gtest/gtest.h>

namespace exstream {
namespace {

TimeSeries Ramp(size_t n) {
  TimeSeries s;
  for (size_t i = 0; i < n; ++i) {
    (void)s.Append(static_cast<Timestamp>(i * 10), static_cast<double>(i));
  }
  return s;
}

TEST(AsciiChartTest, RendersFrameAndLabels) {
  ChartOptions options;
  options.width = 20;
  options.height = 5;
  const std::string chart = RenderSeries(Ramp(50), options);
  // Max label on the first line, min on the last value line.
  EXPECT_NE(chart.find("49"), std::string::npos);
  EXPECT_NE(chart.find("0"), std::string::npos);
  EXPECT_NE(chart.find("t: [0 .. 490]"), std::string::npos);
  // Ramp: the first column's mark is at the bottom row, the last at the top.
  const size_t first_line_end = chart.find('\n');
  const std::string top = chart.substr(0, first_line_end);
  EXPECT_EQ(top.back(), '*');  // top-right: maximum of an increasing ramp
}

TEST(AsciiChartTest, EmptySeriesRendersEmptyFrame) {
  const std::string chart = RenderSeries(TimeSeries());
  EXPECT_FALSE(chart.empty());
  EXPECT_EQ(chart.find('*'), std::string::npos);
}

TEST(AsciiChartTest, ConstantSeriesCentersPoints) {
  TimeSeries s;
  for (int i = 0; i < 10; ++i) (void)s.Append(i, 5.0);
  ChartOptions options;
  options.width = 10;
  options.height = 5;
  options.show_axes = false;
  const std::string chart = RenderSeries(s, options);
  // All marks on one (middle) row.
  size_t rows_with_marks = 0;
  size_t pos = 0;
  for (size_t line = 0; line < 5; ++line) {
    const size_t end = chart.find('\n', pos);
    if (chart.substr(pos, end - pos).find('*') != std::string::npos) {
      ++rows_with_marks;
    }
    pos = end + 1;
  }
  EXPECT_EQ(rows_with_marks, 1u);
}

TEST(AsciiChartTest, AnnotationHighlightsColumns) {
  ChartOptions options;
  options.width = 20;
  options.height = 4;
  const std::string chart =
      RenderAnnotatedSeries(Ramp(50), {{100, 200}}, options, '#');
  EXPECT_NE(chart.find('#'), std::string::npos);
  // The highlight covers roughly (200-100)/490 of 20 columns ~ 4-5 cells.
  const size_t count = static_cast<size_t>(
      std::count(chart.begin(), chart.end(), '#'));
  EXPECT_GE(count, 3u);
  EXPECT_LE(count, 7u);
}

TEST(AsciiChartTest, SparklineLevels) {
  const std::string spark = RenderSparkline(Ramp(100), 8);
  EXPECT_FALSE(spark.empty());
  // Starts at the lowest glyph and ends at the highest.
  EXPECT_EQ(spark.substr(0, 3), "▁");
  EXPECT_EQ(spark.substr(spark.size() - 3), "█");
  EXPECT_TRUE(RenderSparkline(TimeSeries(), 8).empty());
}

TEST(AsciiChartTest, MinimumDimensionsClamped) {
  ChartOptions options;
  options.width = 1;
  options.height = 1;
  const std::string chart = RenderSeries(Ramp(5), options);
  EXPECT_FALSE(chart.empty());  // clamped to a sane minimum, no crash
}

}  // namespace
}  // namespace exstream
