#include "ts/entropy_distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace exstream {
namespace {

TEST(EntropyDistanceTest, PerfectSeparationScoresOne) {
  // All abnormal values strictly below all reference values (Fig. 10's first
  // two features).
  const auto res = ComputeEntropyDistance({1, 2, 3}, {10, 11, 12});
  EXPECT_DOUBLE_EQ(res.distance, 1.0);
  EXPECT_TRUE(res.PerfectSeparation());
  ASSERT_EQ(res.segments.size(), 2u);
  EXPECT_EQ(res.segments[0].cls, SegmentClass::kAbnormalOnly);
  EXPECT_EQ(res.segments[1].cls, SegmentClass::kReferenceOnly);
}

TEST(EntropyDistanceTest, EmptySideScoresZero) {
  EXPECT_DOUBLE_EQ(ComputeEntropyDistance({}, {1, 2}).distance, 0.0);
  EXPECT_DOUBLE_EQ(ComputeEntropyDistance({1, 2}, {}).distance, 0.0);
  EXPECT_DOUBLE_EQ(
      ComputeEntropyDistance(std::vector<double>{}, std::vector<double>{}).distance,
      0.0);
}

TEST(EntropyDistanceTest, ClassEntropyBalanced) {
  // Balanced classes -> H_class = 1 bit.
  const auto res = ComputeEntropyDistance({1, 2}, {3, 4});
  EXPECT_NEAR(res.class_entropy, 1.0, 1e-12);
}

TEST(EntropyDistanceTest, ClassEntropySkewed) {
  // 1 abnormal of 5 -> H = 0.2*log2(5) + 0.8*log2(1.25).
  const auto res = ComputeEntropyDistance({1}, {2, 3, 4, 5});
  const double expected = 0.2 * std::log2(5.0) + 0.8 * std::log2(1.25);
  EXPECT_NEAR(res.class_entropy, expected, 1e-12);
}

TEST(EntropyDistanceTest, IdenticalValuesFormSingleMixedSegment) {
  // Every point shares one value: the worst separation. One mixed segment,
  // zero segmentation entropy, positive penalty -> small distance.
  const auto res = ComputeEntropyDistance({5, 5, 5}, {5, 5, 5});
  ASSERT_EQ(res.segments.size(), 1u);
  EXPECT_EQ(res.segments[0].cls, SegmentClass::kMixed);
  EXPECT_DOUBLE_EQ(res.segmentation_entropy, 0.0);
  EXPECT_GT(res.regularized_entropy, 0.0);
  // Worst-case interleaving of 3+3 identical points: 6 singleton segments
  // -> penalty = log2(6); D = 1 / log2(6).
  EXPECT_NEAR(res.distance, 1.0 / std::log2(6.0), 1e-9);
}

TEST(EntropyDistanceTest, WorstCasePenaltyPaperExample) {
  // Paper Sec. 4.3: a mixed segment with 3 N and 2 A distributes uniformly
  // as (N,A,N,A,N): 5 unit segments. With only this segment in the feature,
  // H+ = 5 * (1/5) log2(5) = log2(5).
  const auto res = ComputeEntropyDistance({7, 7}, {7, 7, 7});
  ASSERT_EQ(res.segments.size(), 1u);
  EXPECT_NEAR(res.regularized_entropy, std::log2(5.0), 1e-9);
}

TEST(EntropyDistanceTest, InterleavedDistinctValuesScoreLow) {
  // Alternating distinct values: many segments, low reward.
  const auto interleaved = ComputeEntropyDistance({1, 3, 5, 7}, {2, 4, 6, 8});
  const auto separated = ComputeEntropyDistance({1, 2, 3, 4}, {5, 6, 7, 8});
  EXPECT_LT(interleaved.distance, separated.distance);
  EXPECT_LT(interleaved.distance, 0.5);
  EXPECT_DOUBLE_EQ(separated.distance, 1.0);
}

TEST(EntropyDistanceTest, PartialMixingIntermediate) {
  // Mostly separated with one shared value: between the extremes.
  const auto res = ComputeEntropyDistance({1, 2, 3, 5}, {5, 8, 9, 10});
  EXPECT_GT(res.distance, 0.3);
  EXPECT_LT(res.distance, 1.0);
}

TEST(EntropyDistanceTest, OrderInvariance) {
  // Set-based measure: shuffling sample order cannot change the result.
  const auto a = ComputeEntropyDistance({3, 1, 2}, {9, 7, 8});
  const auto b = ComputeEntropyDistance({1, 2, 3}, {7, 8, 9});
  EXPECT_DOUBLE_EQ(a.distance, b.distance);
}

TEST(EntropyDistanceTest, PaperLockStepCounterexample) {
  // Sec. 4.2: TS1=(1,1,1) vs TS2=(0,0,0) should be farther apart than
  // TS3=(1,0,1) vs TS4=(0,1,0); lock-step measures see them as equal, the
  // entropy distance does not.
  const auto d12 = ComputeEntropyDistance({1, 1, 1}, {0, 0, 0});
  const auto d34 = ComputeEntropyDistance({1, 0, 1}, {0, 1, 0});
  EXPECT_GT(d12.distance, d34.distance);
  EXPECT_DOUBLE_EQ(d12.distance, 1.0);
}

TEST(EntropyDistanceTest, SymmetryUnderClassSwapWithEqualSizes) {
  const auto ab = ComputeEntropyDistance({1, 2, 5}, {4, 8, 9});
  const auto ba = ComputeEntropyDistance({4, 8, 9}, {1, 2, 5});
  EXPECT_DOUBLE_EQ(ab.distance, ba.distance);
}

TEST(EntropyDistanceTest, TimeSeriesOverloadMatchesVectors) {
  TimeSeries a;
  TimeSeries r;
  for (int i = 0; i < 5; ++i) {
    (void)a.Append(i, i);
    (void)r.Append(i, i + 10);
  }
  EXPECT_DOUBLE_EQ(ComputeEntropyDistance(a, r).distance, 1.0);
}

TEST(AbnormalRangesTest, SingleBoundaryPerfectSeparation) {
  // Abnormal low, reference high: one predicate `f <= midpoint` (Sec. 5.4).
  const auto res = ComputeEntropyDistance({1, 2, 3}, {9, 10});
  const auto ranges = ExtractAbnormalRanges(res);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_FALSE(ranges[0].has_lower);
  ASSERT_TRUE(ranges[0].has_upper);
  EXPECT_DOUBLE_EQ(ranges[0].upper, 6.0);  // midpoint of 3 and 9
}

TEST(AbnormalRangesTest, AbnormalAboveYieldsLowerBound) {
  const auto res = ComputeEntropyDistance({9, 10}, {1, 2, 3});
  const auto ranges = ExtractAbnormalRanges(res);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_TRUE(ranges[0].has_lower);
  EXPECT_FALSE(ranges[0].has_upper);
  EXPECT_DOUBLE_EQ(ranges[0].lower, 6.0);
}

TEST(AbnormalRangesTest, MultipleAbnormalIntervals) {
  // Abnormal at both extremes, reference in the middle: two ranges -> the
  // paper's disjunctive clause f <= c1 OR (f >= c2).
  const auto res = ComputeEntropyDistance({1, 2, 20, 21}, {10, 11, 12});
  const auto ranges = ExtractAbnormalRanges(res);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_FALSE(ranges[0].has_lower);
  EXPECT_TRUE(ranges[0].has_upper);
  EXPECT_TRUE(ranges[1].has_lower);
  EXPECT_FALSE(ranges[1].has_upper);
}

TEST(AbnormalRangesTest, FullyMixedYieldsNoRanges) {
  const auto res = ComputeEntropyDistance({5, 5}, {5, 5});
  EXPECT_TRUE(ExtractAbnormalRanges(res).empty());
}

TEST(SegmentClassTest, Names) {
  EXPECT_EQ(SegmentClassToString(SegmentClass::kAbnormalOnly), "abnormal");
  EXPECT_EQ(SegmentClassToString(SegmentClass::kReferenceOnly), "reference");
  EXPECT_EQ(SegmentClassToString(SegmentClass::kMixed), "mixed");
}

// Property sweep: for random inputs, D in [0,1]; H+ >= H_seg; segment point
// counts sum to the input size; monotone response to separation shift.
class EntropyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EntropyPropertyTest, Invariants) {
  Rng rng(GetParam());
  std::vector<double> a;
  std::vector<double> r;
  const int n = 30 + static_cast<int>(rng.UniformInt(0, 50));
  for (int i = 0; i < n; ++i) {
    a.push_back(std::round(rng.Gaussian(0, 2)));
    r.push_back(std::round(rng.Gaussian(1, 2)));
  }
  const auto res = ComputeEntropyDistance(a, r);
  EXPECT_GE(res.distance, 0.0);
  EXPECT_LE(res.distance, 1.0);
  EXPECT_GE(res.regularized_entropy, res.segmentation_entropy - 1e-12);
  size_t points = 0;
  for (const Segment& s : res.segments) points += s.TotalPoints();
  EXPECT_EQ(points, a.size() + r.size());

  // Shifting the reference away increases (or keeps) the reward.
  std::vector<double> far = r;
  for (double& v : far) v += 100.0;
  EXPECT_GE(ComputeEntropyDistance(a, far).distance, res.distance - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropyPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace exstream
