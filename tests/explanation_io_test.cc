#include "explain/explanation_io.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace exstream {
namespace {

RangePredicate Upper(const char* f, double c) {
  RangePredicate p;
  p.feature = f;
  p.has_upper = true;
  p.upper = c;
  return p;
}

RangePredicate Lower(const char* f, double c) {
  RangePredicate p;
  p.feature = f;
  p.has_lower = true;
  p.lower = c;
  return p;
}

RangePredicate Both(const char* f, double lo, double hi) {
  RangePredicate p;
  p.feature = f;
  p.has_lower = true;
  p.lower = lo;
  p.has_upper = true;
  p.upper = hi;
  return p;
}

Explanation Example21() {
  // Example 2.1: MemFreeMean < c1 AND SwapFreeMean < c2.
  Explanation exp;
  ExplanationClause mem;
  mem.feature = "MemUsage.memFree.mean@10";
  mem.disjuncts = {Upper("MemUsage.memFree.mean@10", 1978482)};
  ExplanationClause swap;
  swap.feature = "MemUsage.swapFree.mean@10";
  swap.disjuncts = {Upper("MemUsage.swapFree.mean@10", 361462)};
  exp.AddClause(mem);
  exp.AddClause(swap);
  return exp;
}

// Round-trip equality via behavioral checks (predicate structure).
void ExpectSameStructure(const Explanation& a, const Explanation& b) {
  ASSERT_EQ(a.clauses().size(), b.clauses().size());
  for (size_t c = 0; c < a.clauses().size(); ++c) {
    const auto& ca = a.clauses()[c];
    const auto& cb = b.clauses()[c];
    EXPECT_EQ(ca.feature, cb.feature);
    ASSERT_EQ(ca.disjuncts.size(), cb.disjuncts.size());
    for (size_t d = 0; d < ca.disjuncts.size(); ++d) {
      EXPECT_EQ(ca.disjuncts[d].has_lower, cb.disjuncts[d].has_lower);
      EXPECT_EQ(ca.disjuncts[d].has_upper, cb.disjuncts[d].has_upper);
      if (ca.disjuncts[d].has_lower) {
        EXPECT_NEAR(ca.disjuncts[d].lower, cb.disjuncts[d].lower,
                    1e-6 * std::abs(ca.disjuncts[d].lower) + 1e-9);
      }
      if (ca.disjuncts[d].has_upper) {
        EXPECT_NEAR(ca.disjuncts[d].upper, cb.disjuncts[d].upper,
                    1e-6 * std::abs(ca.disjuncts[d].upper) + 1e-9);
      }
    }
  }
}

TEST(ExplanationIoTest, RoundTripsExample21) {
  const Explanation original = Example21();
  auto parsed = ParseExplanation(original.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameStructure(original, *parsed);
}

TEST(ExplanationIoTest, RoundTripsDisjunctionsAndBoundedRanges) {
  // The paper's multi-range form: f2 <= 20 OR (f2 >= 30 AND f2 <= 50),
  // conjoined with a lone bounded range and a lower bound.
  Explanation original;
  ExplanationClause multi;
  multi.feature = "f2";
  multi.disjuncts = {Upper("f2", 20), Both("f2", 30, 50)};
  ExplanationClause bounded;
  bounded.feature = "g";
  bounded.disjuncts = {Both("g", 1.5, 2.5)};
  ExplanationClause low;
  low.feature = "h";
  low.disjuncts = {Lower("h", -3.25)};
  original.AddClause(multi);
  original.AddClause(bounded);
  original.AddClause(low);

  auto parsed = ParseExplanation(original.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString()
                           << "\ntext: " << original.ToString();
  ExpectSameStructure(original, *parsed);
  // Behavior preserved too.
  for (double v : {10.0, 25.0, 40.0, 60.0}) {
    EXPECT_EQ(original.clauses()[0].Eval(v), parsed->clauses()[0].Eval(v)) << v;
  }
}

TEST(ExplanationIoTest, EmptyForms) {
  auto empty = ParseExplanation("(empty explanation)");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto blank = ParseExplanation("   \n");
  ASSERT_TRUE(blank.ok());
  EXPECT_TRUE(blank->empty());
}

TEST(ExplanationIoTest, ParseErrors) {
  EXPECT_FALSE(ParseExplanation("f <=").ok());               // missing number
  EXPECT_FALSE(ParseExplanation("f == 3").ok());             // bad operator
  EXPECT_FALSE(ParseExplanation("(f >= 1 AND g <= 2)").ok());  // mixed features
  EXPECT_FALSE(ParseExplanation("(f <= 1 OR g <= 2)").ok());   // mixed disjuncts
  EXPECT_FALSE(ParseExplanation("(f <= 1").ok());            // unbalanced paren
  EXPECT_FALSE(ParseExplanation("f <= 1 AND").ok());         // dangling AND
  EXPECT_FALSE(ParseExplanation("(f >= 1 AND f >= 2)").ok());  // two lower bounds
}

TEST(ExplanationIoTest, FileRoundTrip) {
  char tmpl[] = "/tmp/exstream_rule_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string path = std::string(tmpl) + "/rule.cnf";
  const Explanation original = Example21();
  ASSERT_TRUE(SaveExplanationFile(path, original).ok());
  auto loaded = LoadExplanationFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameStructure(original, *loaded);
  EXPECT_TRUE(LoadExplanationFile("/no/such/rule.cnf").status().IsIOError());
}

}  // namespace
}  // namespace exstream
