// Quickstart: the full EXstream loop on the paper's running example.
//
//  1. Simulate a Hadoop cluster running several jobs, one of which suffers a
//     high-memory interference anomaly (Fig. 1b).
//  2. Monitor data queuing with the SASE query Q1 (Fig. 3).
//  3. Annotate the anomalous interval and a reference interval (Fig. 4).
//  4. Ask the explanation engine for an optimal explanation and print it
//     (expected: low free memory and low free swap — Example 2.1).

#include <cstdio>

#include "sim/workloads.h"

using namespace exstream;

int main() {
  // Workload 1 of Fig. 13: high memory usage during WC-frequent-users.
  const WorkloadDef def = HadoopWorkloads()[0];
  auto run_result = BuildWorkloadRun(def);
  if (!run_result.ok()) {
    fprintf(stderr, "workload build failed: %s\n",
            run_result.status().ToString().c_str());
    return 1;
  }
  const WorkloadRun& run = **run_result;

  printf("== EXstream quickstart ==\n");
  printf("workload        : %s\n", def.name.c_str());
  printf("archived events : %zu\n", run.archive->TotalEvents());
  printf("monitoring query:\n%s\n\n",
         run.engine->compiled(run.monitor_query).query().ToString().c_str());

  // The monitored visualization (Fig. 1b): queuing size of the anomalous job.
  auto series = run.engine->match_table(run.monitor_query)
                    .ExtractSeries(run.annotation.abnormal.partition,
                                   run.monitor_column);
  if (series.ok()) {
    printf("queuing-size series of %s: %zu points, peak %.1f MB\n",
           run.annotation.abnormal.partition.c_str(), series->size(),
           *std::max_element(series->values().begin(), series->values().end()));
  }
  printf("annotation      : %s\n\n", run.annotation.ToString().c_str());

  // Explain.
  ExplanationEngine engine = run.MakeExplanationEngine(run.DefaultExplainOptions());
  auto report_result = engine.Explain(run.annotation);
  if (!report_result.ok()) {
    fprintf(stderr, "explanation failed: %s\n",
            report_result.status().ToString().c_str());
    return 1;
  }
  const ExplanationReport& report = *report_result;

  printf("feature space   : %zu features\n", report.ranked.size());
  printf("after Step 1    : %zu features (reward-leap filter)\n",
         report.after_leap.size());
  printf("after Step 2    : %zu features (false-positive filter, %zu related "
         "partitions)\n",
         report.after_validation.size(), report.num_related_partitions);
  printf("after Step 3    : %zu features (correlation clustering)\n",
         report.final_features.size());
  printf("elapsed         : %.2f s\n\n", report.duration_seconds);

  printf("EXPLANATION:\n  %s\n\n", report.explanation.ToString().c_str());
  printf("expert ground truth signals:");
  for (const auto& g : run.ground_truth) printf(" %s", g.c_str());
  printf("\n");
  return 0;
}
