// exstream_cli: a command-line driver for the full system over user data.
//
//   exstream_cli --demo
//       writes a demo schema + CSV event log (from the Hadoop simulator) to
//       /tmp and runs the complete monitor -> annotate -> explain flow on it.
//
//   exstream_cli --schema schema.txt --events events.csv --query query.sase
//                [--column NAME] [--list-partitions]
//                [--chart PARTITION] [--threads N] [--deadline-ms MS]
//                [--explain PARTITION:LO:HI --reference PARTITION:LO:HI]
//
// --threads N runs the explanation analysis on N worker threads (default 1;
// 0 = one per hardware thread). The explanation itself is identical for any
// thread count.
//
// --ingest-threads N shards batched CEP ingestion over N worker threads
// (default 1 = serial batched; 0 = one per hardware thread); match tables and
// notifications are bit-identical for any value. --batch-size B sets the
// replay batch size (default 512).
//
// --deadline-ms MS bounds one Explain call to MS milliseconds of wall clock;
// on expiry the CLI reports how far the pipeline got and exits with status 3.
// If the archive had to skip unreadable (quarantined) spill chunks, the
// explanation is still produced and a DEGRADED warning describes the gap.
//
// Durability & overload flags:
//   --wal-dir DIR          write-ahead-log every ingested batch into DIR
//   --fsync POLICY         none | interval | every_batch  (default interval)
//   --checkpoint DIR       snapshot the system state into DIR after ingest
//   --recover DIR          restore a checkpoint (and replay the WAL tail)
//                          before ingesting; with --recover, --events is
//                          optional
//   --queue-capacity N     bounded ingest queue of N batches (0 = synchronous)
//   --backpressure POLICY  block | shed-oldest | shed-newest  (full-queue
//                          behavior; implies --queue-capacity 64 if unset)
//
// Continuous serving (see DESIGN.md §10):
//   --detect [--detect-threshold X]  after ingest, run the batch anomaly
//                          detector over the monitor query's partition family
//                          and Explain every detected anomaly automatically
//   --auto-explain [--z-threshold Z] stream-detect anomalies online (z-score
//                          over the monitored series) and auto-run Explain on
//                          each as it finalizes; results print after ingest
//   --explain-cache N      keep up to N completed Explain reports in a keyed
//                          LRU cache (repeat annotations are served instantly;
//                          ingest invalidates by advancing the data watermark)
//   --incremental-retention S  maintain in-memory per-type tails of the last
//                          S seconds (0 = unbounded) so recent-interval
//                          feature scans skip the archive
//
// Replication (multi-process parent/children, see DESIGN.md §8):
//   --replicate-to HOST:PORT  child mode: stream every ingested batch to the
//                             parent node at HOST:PORT; after ingest, wait
//                             (up to --drain-ms, default 15000) for the
//                             parent to ack everything
//   --tenant NAME             child mode: the tenant this child's stream
//                             belongs to (default "default")
//   --node-id NAME            child mode: this child's stable identity; each
//                             (tenant, node-id) owns its own seq space and
//                             resume watermark at the parent (default "child")
//   --listen PORT             parent mode: accept child replication streams
//                             on 127.0.0.1:PORT (0 = ephemeral; the chosen
//                             port prints to stderr). Runs until
//                             --expect-events events have arrived or
//                             --listen-for-ms (default 30000) passes, then
//                             continues to --chart/--explain over the
//                             replicated data. --events is optional.
//   --tenants A,B,...         parent mode: serve several tenants at once —
//                             one isolated XStreamSystem per tenant (own
//                             match tables, archive, WAL subdir, Explain),
//                             any number of children per tenant. Prints a
//                             per-tenant summary (and per-tenant explanation
//                             with --explain) instead of the single-tenant
//                             flow.
//   --quota-bytes-per-sec N   parent mode: per-tenant ingest quota (token
//                             bucket; 0 = unlimited). Over-quota frames are
//                             shed at the parent and disclosed only in the
//                             owning tenant's summary/DegradationReport.
//   --quota-burst-bytes N     parent mode: token-bucket burst (default 4x
//                             the per-second rate)
//   --expect-events N         parent mode: stop listening once the resume
//                             watermark (summed across tenants and children)
//                             reaches N events
//   --repl-state PATH         parent mode: persist the per-(tenant, child)
//                             replication gap state here so resume watermarks
//                             survive restarts
//
// Schema file: one event type per line, `TypeName attr:type attr:type ...`
// where type is int64|double|string. Event CSV: see src/io/csv.h.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "detect/detector.h"
#include "explain/engine.h"
#include "explain/explanation_io.h"
#include "io/csv.h"
#include "net/replication_receiver.h"
#include "sim/workloads.h"
#include "viz/ascii_chart.h"
#include "xstream/system.h"
#include "xstream/tenant_hub.h"

using namespace exstream;

namespace {

Result<EventTypeRegistry> LoadSchemaFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open schema file " + path);
  std::string text;
  char buf[1 << 14];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  fclose(f);

  EventTypeRegistry registry;
  for (const std::string& raw_line : SplitAndTrim(text, '\n')) {
    const std::string line(TrimWhitespace(raw_line));
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> parts = SplitAndTrim(line, ' ');
    std::vector<AttributeDef> attrs;
    for (size_t i = 1; i < parts.size(); ++i) {
      if (parts[i].empty()) continue;
      const auto kv = SplitAndTrim(parts[i], ':');
      if (kv.size() != 2) {
        return Status::ParseError("bad attribute spec '" + parts[i] + "'");
      }
      AttributeDef attr;
      attr.name = kv[0];
      if (kv[1] == "int64") {
        attr.type = ValueType::kInt64;
      } else if (kv[1] == "double") {
        attr.type = ValueType::kDouble;
      } else if (kv[1] == "string") {
        attr.type = ValueType::kString;
      } else {
        return Status::ParseError("unknown type '" + kv[1] + "'");
      }
      attrs.push_back(std::move(attr));
    }
    EXSTREAM_RETURN_NOT_OK(registry.Register(EventSchema(parts[0], attrs)).status());
  }
  return registry;
}

Result<std::string> ReadTextFile(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string text;
  char buf[1 << 14];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  fclose(f);
  return text;
}

// "partition:lo:hi" -> IntervalRef.
Result<IntervalRef> ParseIntervalArg(const std::string& arg,
                                     const std::string& query_name) {
  const auto parts = SplitAndTrim(arg, ':');
  if (parts.size() != 3) {
    return Status::InvalidArgument("expected PARTITION:LO:HI, got '" + arg + "'");
  }
  IntervalRef ref;
  ref.query = query_name;
  ref.partition = parts[0];
  ref.range.lower = static_cast<Timestamp>(strtoll(parts[1].c_str(), nullptr, 10));
  ref.range.upper = static_cast<Timestamp>(strtoll(parts[2].c_str(), nullptr, 10));
  if (ref.range.upper <= ref.range.lower) {
    return Status::InvalidArgument("empty interval in '" + arg + "'");
  }
  return ref;
}

// Writes the demo schema/events/query trio and returns their paths.
Result<std::array<std::string, 3>> WriteDemoFiles() {
  auto run_result = BuildWorkloadRun(HadoopWorkloads()[0]);
  EXSTREAM_RETURN_NOT_OK(run_result.status());
  const WorkloadRun& run = **run_result;

  // Schema file.
  std::string schema_text;
  for (const EventSchema& schema : run.registry->schemas()) {
    schema_text += schema.name();
    for (const AttributeDef& attr : schema.attributes()) {
      schema_text += " " + attr.name + ":" +
                     std::string(ValueTypeToString(attr.type));
    }
    schema_text += "\n";
  }
  const std::string schema_path = "/tmp/exstream_demo_schema.txt";
  FILE* sf = fopen(schema_path.c_str(), "wb");
  if (sf == nullptr) return Status::IOError("cannot write " + schema_path);
  fwrite(schema_text.data(), 1, schema_text.size(), sf);
  fclose(sf);

  // Event CSV from the archive.
  EXSTREAM_ASSIGN_OR_RETURN(
      auto grouped, run.archive->ScanAll(TimeInterval{0, Timestamp{1} << 62}));
  std::vector<Event> events;
  for (auto& per_type : grouped) {
    events.insert(events.end(), per_type.events.begin(), per_type.events.end());
  }
  VectorEventSource source(std::move(events));
  source.SortByTime();
  const std::string events_path = "/tmp/exstream_demo_events.csv";
  EXSTREAM_RETURN_NOT_OK(
      WriteCsvEventsFile(events_path, source.events(), *run.registry));

  // Query file.
  const std::string query_path = "/tmp/exstream_demo_query.sase";
  const std::string query_text =
      run.engine->compiled(run.monitor_query).query().ToString() + "\n";
  FILE* qf = fopen(query_path.c_str(), "wb");
  if (qf == nullptr) return Status::IOError("cannot write " + query_path);
  fwrite(query_text.data(), 1, query_text.size(), qf);
  fclose(qf);

  fprintf(stderr, "demo files written:\n  %s\n  %s\n  %s\n", schema_path.c_str(),
          events_path.c_str(), query_path.c_str());
  return std::array<std::string, 3>{schema_path, events_path, query_path};
}

// Parent mode with --tenants: one isolated XStreamSystem per tenant behind a
// single fan-in receiver. Every tenant gets the same query; its children
// address it by tenant name in their HELLO. Summaries, shed disclosure, and
// --explain all run per tenant — one tenant's degradation never shows up in
// another's output.
int RunMultiTenantParent(std::map<std::string, std::string>& args,
                         const XStreamConfig& base_config,
                         const EventTypeRegistry& registry,
                         const std::string& query_text) {
  const std::vector<std::string> tenant_names =
      SplitAndTrim(args["tenants"], ',');
  if (tenant_names.empty()) {
    fprintf(stderr, "--tenants expects a non-empty list\n");
    return 2;
  }

  TenantQuota quota;
  if (args.count("quota-bytes-per-sec")) {
    quota.bytes_per_sec =
        strtoull(args["quota-bytes-per-sec"].c_str(), nullptr, 10);
    quota.burst_bytes = args.count("quota-burst-bytes")
                            ? strtoull(args["quota-burst-bytes"].c_str(),
                                       nullptr, 10)
                            : quota.bytes_per_sec * 4;
  }

  TenantHub hub;
  std::vector<std::unique_ptr<XStreamSystem>> systems;
  std::vector<QueryId> qids;
  for (const std::string& tenant : tenant_names) {
    XStreamConfig config = base_config;
    if (config.durability.wal_dir.has_value()) {
      // Each tenant journals into its own subdirectory; a hostile tenant
      // name must not escape it.
      config.durability.wal_dir = *config.durability.wal_dir + "/" +
                                  TenantHub::SanitizeTenantForPath(tenant);
    }
    systems.push_back(std::make_unique<XStreamSystem>(&registry, config));
    auto qid = systems.back()->AddQuery(query_text, "Q");
    if (!qid.ok()) {
      fprintf(stderr, "query error: %s\n", qid.status().ToString().c_str());
      return 1;
    }
    qids.push_back(*qid);
    if (args.count("recover")) {
      auto recovered = systems.back()->Recover(
          args["recover"] + "/" + TenantHub::SanitizeTenantForPath(tenant));
      if (!recovered.ok()) {
        fprintf(stderr, "recover error (tenant %s): %s\n", tenant.c_str(),
                recovered.status().ToString().c_str());
        return 1;
      }
    }
    const Status added = hub.AddTenant(tenant, systems.back().get(), quota);
    if (!added.ok()) {
      fprintf(stderr, "%s\n", added.ToString().c_str());
      return 2;
    }
  }

  ReplicationReceiverOptions ropts;
  ropts.port =
      static_cast<uint16_t>(strtoul(args["listen"].c_str(), nullptr, 10));
  if (args.count("repl-state")) ropts.state_path = args["repl-state"];
  ReplicationReceiver receiver(&hub, ropts);
  const Status st = receiver.Start();
  if (!st.ok()) {
    fprintf(stderr, "listen error: %s\n", st.ToString().c_str());
    return 1;
  }
  fprintf(stderr, "listening for replication on 127.0.0.1:%u (%zu tenants)\n",
          unsigned{receiver.port()}, tenant_names.size());

  const int64_t listen_for_ms = args.count("listen-for-ms")
                                    ? atoll(args["listen-for-ms"].c_str())
                                    : 30000;
  const uint64_t expect =
      args.count("expect-events")
          ? strtoull(args["expect-events"].c_str(), nullptr, 10)
          : 0;
  Stopwatch wait_timer;
  while (wait_timer.ElapsedSeconds() * 1000.0 <
         static_cast<double>(listen_for_ms)) {
    if (expect > 0 && receiver.watermark() >= expect) break;
    usleep(50 * 1000);
  }
  receiver.Stop();

  const ReplicationReceiver::Stats rs = receiver.stats();
  printf("replicated: %llu events applied (%llu deduped, %llu lost to "
         "child-side shedding, %llu over quota) over %llu sessions\n",
         static_cast<unsigned long long>(rs.events_applied),
         static_cast<unsigned long long>(rs.events_deduped),
         static_cast<unsigned long long>(rs.gap_events),
         static_cast<unsigned long long>(rs.quota_shed_events),
         static_cast<unsigned long long>(rs.sessions));
  for (const ReplicationReceiver::SessionInfo& info : receiver.sessions()) {
    printf("  child (%s, %s): watermark %llu%s\n", info.tenant.c_str(),
           info.child.c_str(), static_cast<unsigned long long>(info.watermark),
           info.live ? " (live)" : "");
  }

  for (size_t t = 0; t < tenant_names.size(); ++t) {
    const std::string& tenant = tenant_names[t];
    XStreamSystem& system = *systems[t];
    system.Flush();
    const MatchTable& matches = system.engine().match_table(qids[t]);
    const auto tstats = hub.tenant_stats(tenant);
    printf("\ntenant %s: %zu events, %zu match rows, %zu events shed "
           "(%llu over quota, %llu over queue share)\n",
           tenant.c_str(), system.engine().events_processed(),
           matches.TotalRows(), system.shed_events(),
           static_cast<unsigned long long>(tstats.quota_shed_events),
           static_cast<unsigned long long>(tstats.queue_shed_events));
    auto partitions = hub.QualifiedPartitions(tenant, qids[t]);
    if (partitions.ok()) {
      for (const std::string& p : *partitions) {
        printf("  %s\n", p.c_str());
      }
    }

    if (args.count("explain")) {
      if (args.count("reference") == 0) {
        fprintf(stderr, "--explain needs --reference\n");
        return 2;
      }
      AnomalyAnnotation annotation;
      auto abnormal = ParseIntervalArg(args["explain"], "Q");
      auto reference = ParseIntervalArg(args["reference"], "Q");
      if (!abnormal.ok() || !reference.ok()) {
        fprintf(stderr, "bad interval argument\n");
        return 2;
      }
      annotation.abnormal = *abnormal;
      annotation.reference = *reference;
      const std::string column = args.count("column")
                                     ? args["column"]
                                     : matches.column_names().back();
      auto report = hub.Explain(tenant, annotation, qids[t], column);
      if (!report.ok()) {
        fprintf(stderr, "  explain error (tenant %s): %s\n", tenant.c_str(),
                report.status().ToString().c_str());
        continue;
      }
      printf("  EXPLANATION (%zu of %zu features, %.2f s):\n    %s\n",
             report->final_features.size(), report->ranked.size(),
             report->duration_seconds, report->explanation.ToString().c_str());
      if (report->degradation.degraded()) {
        fprintf(stderr, "  WARNING: DEGRADED explanation (tenant %s) — %s\n",
                tenant.c_str(), report->degradation.ToString().c_str());
      }
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool demo = argc <= 1;  // bare invocation runs the self-contained demo
  bool list_partitions = false;
  bool query_merge = true;
  bool detect = false;
  bool auto_explain = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--list-partitions") {
      list_partitions = true;
    } else if (arg == "--detect") {
      detect = true;
    } else if (arg == "--auto-explain") {
      auto_explain = true;
    } else if (arg == "--no-query-merge") {
      // Escape hatch: evaluate every query on its own automaton (the legacy
      // per-query path) instead of merging equivalent queries.
      query_merge = false;
    } else if (StartsWith(arg, "--") && i + 1 < argc) {
      args[arg.substr(2)] = argv[++i];
    } else {
      fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (demo) {
    auto paths = WriteDemoFiles();
    if (!paths.ok()) {
      fprintf(stderr, "%s\n", paths.status().ToString().c_str());
      return 1;
    }
    args["schema"] = (*paths)[0];
    // With --recover the checkpoint/WAL already hold the demo stream;
    // re-ingesting it would append the same events on top of recovered state.
    if (args.count("recover") == 0) args["events"] = (*paths)[1];
    args["query"] = (*paths)[2];
    if (args.count("explain") == 0) {
      args["explain"] = "job-anomaly:3060:3360";
      args["reference"] = "job-anomaly:3420:3641";
      args["chart"] = "job-anomaly";
    }
  }
  const bool have_inputs = args.count("schema") && args.count("query") &&
                           (args.count("events") || args.count("recover") ||
                            args.count("listen"));
  if (!have_inputs) {
    fprintf(stderr,
            "usage: exstream_cli --demo | --schema F --events F --query F\n"
            "       [--column NAME] [--list-partitions] [--chart PARTITION]\n"
            "       [--threads N] [--ingest-threads N] [--batch-size B]\n"
            "       [--no-query-merge]\n"
            "       [--deadline-ms MS]\n"
            "       [--wal-dir DIR] [--fsync none|interval|every_batch]\n"
            "       [--checkpoint DIR] [--recover DIR]\n"
            "       [--queue-capacity N]\n"
            "       [--backpressure block|shed-oldest|shed-newest]\n"
            "       [--tier0-retention N] [--tier-windows W1,W2,...]\n"
            "       [--tiered-reference on|off]\n"
            "       [--detect [--detect-threshold X]]\n"
            "       [--auto-explain [--z-threshold Z]]\n"
            "       [--explain-cache N] [--incremental-retention S]\n"
            "       [--replicate-to HOST:PORT [--drain-ms MS]\n"
            "        [--tenant NAME] [--node-id NAME]]\n"
            "       [--listen PORT [--expect-events N] [--listen-for-ms MS]\n"
            "        [--repl-state PATH] [--tenants A,B,...]\n"
            "        [--quota-bytes-per-sec N] [--quota-burst-bytes N]]\n"
            "       [--explain P:LO:HI --reference P:LO:HI]\n");
    return 2;
  }

  auto registry = LoadSchemaFile(args["schema"]);
  if (!registry.ok()) {
    fprintf(stderr, "%s\n", registry.status().ToString().c_str());
    return 1;
  }
  auto query_text = ReadTextFile(args["query"]);
  if (!query_text.ok()) {
    fprintf(stderr, "%s\n", query_text.status().ToString().c_str());
    return 1;
  }

  XStreamConfig config;
  if (args.count("threads")) {
    config.explain.num_threads =
        static_cast<size_t>(strtoull(args["threads"].c_str(), nullptr, 10));
  }
  if (args.count("deadline-ms")) {
    config.explain.deadline_ms = strtod(args["deadline-ms"].c_str(), nullptr);
  }
  if (args.count("ingest-threads")) {
    config.ingest.ingest_threads =
        static_cast<size_t>(strtoull(args["ingest-threads"].c_str(), nullptr, 10));
  }
  config.ingest.enable_query_merge = query_merge;
  size_t batch_size = kDefaultIngestBatchSize;
  if (args.count("batch-size")) {
    batch_size = static_cast<size_t>(strtoull(args["batch-size"].c_str(), nullptr, 10));
    if (batch_size == 0) batch_size = 1;
  }
  if (args.count("wal-dir")) config.durability.wal_dir = args["wal-dir"];
  if (args.count("fsync")) {
    const std::string& policy = args["fsync"];
    if (policy == "none") {
      config.durability.fsync = WalFsyncPolicy::kNone;
    } else if (policy == "interval") {
      config.durability.fsync = WalFsyncPolicy::kInterval;
    } else if (policy == "every_batch") {
      config.durability.fsync = WalFsyncPolicy::kEveryBatch;
    } else {
      fprintf(stderr, "unknown --fsync policy '%s'\n", policy.c_str());
      return 2;
    }
  }
  if (args.count("queue-capacity")) {
    config.overload.queue_capacity =
        static_cast<size_t>(strtoull(args["queue-capacity"].c_str(), nullptr, 10));
  }
  if (args.count("tier0-retention")) {
    config.archive.tier0_retention_chunks = static_cast<size_t>(
        strtoull(args["tier0-retention"].c_str(), nullptr, 10));
  }
  if (args.count("tier-windows")) {
    config.archive.tier_windows.clear();
    for (const std::string& w : SplitAndTrim(args["tier-windows"], ',')) {
      const long long secs = strtoll(w.c_str(), nullptr, 10);
      if (secs <= 0) {
        fprintf(stderr, "--tier-windows expects positive seconds, got '%s'\n",
                w.c_str());
        return 2;
      }
      config.archive.tier_windows.push_back(static_cast<Timestamp>(secs));
    }
  }
  if (args.count("tiered-reference")) {
    const std::string& mode = args["tiered-reference"];
    if (mode == "on") {
      config.explain.tiered_reference_scans = true;
    } else if (mode == "off") {
      config.explain.tiered_reference_scans = false;
    } else {
      fprintf(stderr, "--tiered-reference expects on|off, got '%s'\n",
              mode.c_str());
      return 2;
    }
  }
  if (args.count("backpressure")) {
    const std::string& policy = args["backpressure"];
    if (policy == "block") {
      config.overload.policy = BackpressurePolicy::kBlock;
    } else if (policy == "shed-oldest") {
      config.overload.policy = BackpressurePolicy::kShedOldest;
    } else if (policy == "shed-newest") {
      config.overload.policy = BackpressurePolicy::kShedNewest;
    } else {
      fprintf(stderr, "unknown --backpressure policy '%s'\n", policy.c_str());
      return 2;
    }
    if (config.overload.queue_capacity == 0) config.overload.queue_capacity = 64;
  }
  if (args.count("explain-cache")) {
    config.serving.explain_cache_capacity =
        static_cast<size_t>(strtoull(args["explain-cache"].c_str(), nullptr, 10));
  }
  if (args.count("incremental-retention")) {
    config.serving.incremental_features = true;
    config.serving.incremental_retention = static_cast<Timestamp>(
        strtoll(args["incremental-retention"].c_str(), nullptr, 10));
  }
  if (auto_explain) {
    StreamingDetectorOptions sdopts;
    if (args.count("z-threshold")) {
      sdopts.z_threshold = strtod(args["z-threshold"].c_str(), nullptr);
    }
    config.serving.detector = sdopts;
    config.serving.auto_explain = true;
    if (args.count("column")) config.serving.detect_column = args["column"];
  }
  if (args.count("replicate-to")) {
    const auto parts = SplitAndTrim(args["replicate-to"], ':');
    if (parts.size() != 2) {
      fprintf(stderr, "--replicate-to expects HOST:PORT, got '%s'\n",
              args["replicate-to"].c_str());
      return 2;
    }
    ReplicationSenderOptions repl;
    repl.host = parts[0];
    repl.port = static_cast<uint16_t>(strtoul(parts[1].c_str(), nullptr, 10));
    if (args.count("tenant")) repl.tenant = args["tenant"];
    if (args.count("node-id")) repl.node_id = args["node-id"];
    config.replication = std::move(repl);
  }

  if (args.count("tenants")) {
    if (args.count("listen") == 0) {
      fprintf(stderr, "--tenants requires --listen (parent mode)\n");
      return 2;
    }
    return RunMultiTenantParent(args, config, *registry, *query_text);
  }

  XStreamSystem system(&*registry, config);
  auto qid = system.AddQuery(*query_text, "Q");
  if (!qid.ok()) {
    fprintf(stderr, "query error: %s\n", qid.status().ToString().c_str());
    return 1;
  }

  if (args.count("recover")) {
    auto recovered = system.Recover(args["recover"]);
    if (!recovered.ok()) {
      fprintf(stderr, "recover error: %s\n",
              recovered.status().ToString().c_str());
      return 1;
    }
    printf("recovered: checkpoint %s (seq %llu), WAL replayed %zu events in "
           "%zu records%s\n",
           recovered->manifest_loaded ? "loaded" : "absent",
           static_cast<unsigned long long>(recovered->checkpoint_seq),
           recovered->wal.events_applied, recovered->wal.records,
           recovered->wal.torn_tail ? " (torn tail discarded)" : "");
  }

  std::unique_ptr<ReplicationReceiver> receiver;
  if (args.count("listen")) {
    ReplicationReceiverOptions ropts;
    ropts.port = static_cast<uint16_t>(strtoul(args["listen"].c_str(), nullptr, 10));
    if (args.count("repl-state")) ropts.state_path = args["repl-state"];
    receiver = std::make_unique<ReplicationReceiver>(&system, ropts);
    const Status st = receiver->Start();
    if (!st.ok()) {
      fprintf(stderr, "listen error: %s\n", st.ToString().c_str());
      return 1;
    }
    fprintf(stderr, "listening for replication on 127.0.0.1:%u\n",
            unsigned{receiver->port()});
  }

  if (args.count("events")) {
    auto parsed = ReadCsvEventsFile(args["events"], *registry);
    if (!parsed.ok()) {
      fprintf(stderr, "event load error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    VectorEventSource source(std::move(parsed->events));
    source.SortByTime();
    const size_t num_events = source.size();  // ReplayMove drains the source
    Stopwatch ingest_timer;
    source.ReplayMove(&system, batch_size);
    const double ingest_secs = ingest_timer.ElapsedSeconds();
    printf("ingested %zu events; %zu match rows\n", num_events,
           system.engine().match_table(*qid).TotalRows());
    if (ingest_secs > 0.0) {
      // stderr: a measured rate varies run to run, and stdout is expected to be
      // byte-identical across thread counts (the determinism contract).
      fprintf(stderr,
              "ingest throughput: %.0f events/sec (batch %zu, ingest threads %zu)\n",
              static_cast<double>(num_events) / ingest_secs, batch_size,
              config.ingest.ingest_threads);
    }
  } else if (args.count("listen") == 0) {
    printf("recovered state: %zu match rows\n",
           system.engine().match_table(*qid).TotalRows());
  }

  if (system.replication() != nullptr) {
    // Child mode: give the parent a chance to ack everything before the
    // process (and its spool) goes away. Unacked data still survives in the
    // WAL via the truncate pin.
    const int drain_ms = args.count("drain-ms")
                             ? atoi(args["drain-ms"].c_str())
                             : 15000;
    const bool drained = system.replication()->WaitForDrain(drain_ms);
    const ReplicationSender::Stats rs = system.replication()->stats();
    fprintf(stderr,
            "replication: %s (acked seq %llu, %llu chunks sealed, "
            "%llu shed, %llu reconnects)\n",
            drained ? "drained" : "NOT drained",
            static_cast<unsigned long long>(rs.acked_seq),
            static_cast<unsigned long long>(rs.chunks_sealed),
            static_cast<unsigned long long>(rs.shed_chunks),
            static_cast<unsigned long long>(rs.reconnects));
  }

  if (receiver != nullptr) {
    // Parent mode: wait for the child's stream, then continue to the normal
    // chart/explain flow over the replicated data.
    const int64_t listen_for_ms = args.count("listen-for-ms")
                                      ? atoll(args["listen-for-ms"].c_str())
                                      : 30000;
    const uint64_t expect = args.count("expect-events")
                                ? strtoull(args["expect-events"].c_str(), nullptr, 10)
                                : 0;
    Stopwatch wait_timer;
    while (wait_timer.ElapsedSeconds() * 1000.0 < static_cast<double>(listen_for_ms)) {
      if (expect > 0 && receiver->watermark() >= expect) break;
      usleep(50 * 1000);
    }
    receiver->Stop();
    const ReplicationReceiver::Stats rs = receiver->stats();
    printf("replicated: %llu events applied (%llu deduped, %llu lost to "
           "child-side shedding) over %llu sessions; %zu match rows\n",
           static_cast<unsigned long long>(rs.events_applied),
           static_cast<unsigned long long>(rs.events_deduped),
           static_cast<unsigned long long>(rs.gap_events),
           static_cast<unsigned long long>(rs.sessions),
           system.engine().match_table(*qid).TotalRows());
    system.Flush();
  }

  const RejectReport rejects = system.reject_report();
  if (rejects.total() > 0 || system.shed_events() > 0) {
    fprintf(stderr, "ingest health: %s; %zu events shed by backpressure\n",
            rejects.ToString().c_str(), system.shed_events());
  }

  if (args.count("checkpoint")) {
    const Status st = system.Checkpoint(args["checkpoint"]);
    if (!st.ok()) {
      fprintf(stderr, "checkpoint error: %s\n", st.ToString().c_str());
      return 1;
    }
    printf("checkpoint written to %s\n", args["checkpoint"].c_str());
  }

  const MatchTable& matches = system.engine().match_table(*qid);
  const std::string column =
      args.count("column") ? args["column"] : matches.column_names().back();

  if (auto_explain) {
    // Let the streaming detector see the full stream, force-close any
    // excursion still elevated at end-of-input, then wait for the background
    // worker to finish explaining every finalized anomaly.
    system.Flush();
    const size_t finalized = system.FinalizeDetector();
    system.DrainAutoExplains();
    const auto autos = system.TakeAutoExplanations();
    const auto dstats = system.detector()->stats();
    printf("\ndetector: %llu samples over %llu partitions, %llu excursions "
           "(%llu discarded, %zu open at end-of-stream)\n",
           static_cast<unsigned long long>(dstats.samples),
           static_cast<unsigned long long>(dstats.partitions_tracked),
           static_cast<unsigned long long>(dstats.excursions_opened),
           static_cast<unsigned long long>(dstats.anomalies_dropped),
           finalized);
    printf("auto-explained %zu streaming anomalies (%zu dropped):\n",
           autos.size(), system.auto_anomalies_dropped());
    for (const auto& ae : autos) {
      const TimeInterval& abn = ae.anomaly.annotation.abnormal.range;
      printf("  %s peak-z %.1f abnormal [%lld, %lld]\n",
             ae.anomaly.partition.c_str(), ae.anomaly.peak_z,
             static_cast<long long>(abn.lower), static_cast<long long>(abn.upper));
      if (ae.report->ok()) {
        printf("    -> %s\n", (**ae.report).explanation.ToString().c_str());
      } else {
        printf("    -> explain error: %s\n",
               ae.report->status().ToString().c_str());
      }
    }
  }

  if (list_partitions || args.count("chart") || args.count("explain") || detect) {
    if (system.IndexPartitions(*qid, {{"source", args["events"]}}).ok() &&
        list_partitions) {
      printf("\npartitions:\n");
      for (const std::string& p : matches.Partitions()) {
        printf("  %-24s %6zu rows%s\n", p.c_str(), matches.NumRows(p),
               matches.IsComplete(p) ? "  (complete)" : "");
      }
    }
  }

  if (detect) {
    DetectorOptions dopts;
    if (args.count("detect-threshold")) {
      dopts.outlier_threshold = strtod(args["detect-threshold"].c_str(), nullptr);
    }
    AnomalyDetector detector(&system.partitions(),
                             system.MakeSeriesProvider(*qid, column), dopts);
    const std::vector<std::string> parts = matches.Partitions();
    if (parts.empty()) {
      fprintf(stderr, "--detect: no partitions to score\n");
      return 1;
    }
    auto seed = system.partitions().Get("Q", parts.front());
    if (!seed.ok()) {
      fprintf(stderr, "--detect: %s\n", seed.status().ToString().c_str());
      return 1;
    }
    auto found = detector.Detect(*seed);
    if (!found.ok()) {
      fprintf(stderr, "detect error: %s\n", found.status().ToString().c_str());
      return 1;
    }
    printf("\ndetected %zu anomalous partition(s):\n", found->size());
    for (const DetectedAnomaly& a : *found) {
      printf("  %s score %.3f abnormal [%lld, %lld] vs %s [%lld, %lld]\n",
             a.partition.c_str(), a.score,
             static_cast<long long>(a.abnormal_region.lower),
             static_cast<long long>(a.abnormal_region.upper),
             a.reference_partition.c_str(),
             static_cast<long long>(a.reference_region.lower),
             static_cast<long long>(a.reference_region.upper));
      auto report = system.Explain(a.ToAnnotation("Q"), *qid, column);
      if (report.ok()) {
        printf("    -> %s\n", report->explanation.ToString().c_str());
      } else {
        fprintf(stderr, "    -> explain error: %s\n",
                report.status().ToString().c_str());
      }
    }
  }

  if (args.count("chart")) {
    auto series = matches.ExtractSeries(args["chart"], column);
    if (!series.ok()) {
      fprintf(stderr, "%s\n", series.status().ToString().c_str());
      return 1;
    }
    printf("\n%s / %s:\n%s", args["chart"].c_str(), column.c_str(),
           RenderSeries(*series).c_str());
  }

  if (args.count("explain")) {
    if (args.count("reference") == 0) {
      fprintf(stderr, "--explain needs --reference\n");
      return 2;
    }
    AnomalyAnnotation annotation;
    auto abnormal = ParseIntervalArg(args["explain"], "Q");
    auto reference = ParseIntervalArg(args["reference"], "Q");
    if (!abnormal.ok() || !reference.ok()) {
      fprintf(stderr, "bad interval argument\n");
      return 2;
    }
    annotation.abnormal = *abnormal;
    annotation.reference = *reference;
    auto report = system.Explain(annotation, *qid, column);
    if (!report.ok()) {
      if (report.status().IsDeadlineExceeded()) {
        fprintf(stderr, "explain deadline exceeded (--deadline-ms %s): %s\n",
                args["deadline-ms"].c_str(),
                report.status().ToString().c_str());
        return 3;
      }
      fprintf(stderr, "explain error: %s\n", report.status().ToString().c_str());
      return 1;
    }
    printf("\nEXPLANATION (%zu of %zu features, %.2f s):\n  %s\n",
           report->final_features.size(), report->ranked.size(),
           report->duration_seconds, report->explanation.ToString().c_str());
    if (report->degradation.degraded()) {
      fprintf(stderr, "WARNING: DEGRADED explanation — %s\n",
              report->degradation.ToString().c_str());
    }
    if (args.count("save-rule")) {
      const Status saved =
          SaveExplanationFile(args["save-rule"], report->explanation);
      if (!saved.ok()) {
        fprintf(stderr, "%s\n", saved.ToString().c_str());
        return 1;
      }
      printf("rule saved to %s (reload with LoadExplanationFile)\n",
             args["save-rule"].c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
