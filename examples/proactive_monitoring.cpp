// Proactive monitoring (paper Sec. 1: "based on the explanation enable a user
// action to prevent or remedy the effect of an anomaly" — "the explanation
// can be encoded into the system for proactive monitoring for similar
// anomalies in the future").
//
// Steps:
//  1. Learn an explanation from an annotated high-memory anomaly.
//  2. Encode the explanation's CNF as a live detector over windowed features.
//  3. Replay a fresh cluster run containing another high-memory interference
//     and show the detector raising an alarm while the anomaly is active.

#include <algorithm>
#include <cstdio>
#include <map>

#include "features/builder.h"
#include "sim/workloads.h"

using namespace exstream;

int main() {
  // 1. Learn the explanation from workload W1's annotation.
  auto run_result = BuildWorkloadRun(HadoopWorkloads()[0]);
  if (!run_result.ok()) {
    fprintf(stderr, "build failed: %s\n", run_result.status().ToString().c_str());
    return 1;
  }
  const WorkloadRun& run = **run_result;
  ExplanationEngine engine = run.MakeExplanationEngine(run.DefaultExplainOptions());
  auto report = engine.Explain(run.annotation);
  if (!report.ok() || report->explanation.empty()) {
    fprintf(stderr, "no explanation learned\n");
    return 1;
  }
  const Explanation& rule = report->explanation;
  printf("learned rule: %s\n\n", rule.ToString().c_str());

  // 2.+3. Replay the *test* job (a second, unseen anomaly of the same type)
  // and evaluate the rule over a sliding window of features.
  const auto& test = run.test_annotation;
  FeatureBuilder builder(run.archive.get());

  // The features the rule references.
  std::vector<FeatureSpec> specs;
  const auto all_specs = GenerateFeatureSpecs(*run.registry, run.FeatureSpace());
  for (const std::string& name : rule.FeatureNames()) {
    auto spec = FindSpecByName(all_specs, name);
    if (spec.ok()) specs.push_back(*spec);
  }

  const Timestamp job_start = test.abnormal.range.lower - 60;
  const Timestamp job_end = test.reference.range.upper;
  const Timestamp window = 30;

  printf("%10s %10s   %s\n", "t", "alarm", "(anomaly truly active in [60, 360])");
  int alarms_during = 0;
  int alarms_outside = 0;
  for (Timestamp t = job_start + window; t <= job_end; t += window) {
    auto features = builder.Build(specs, {t - window, t});
    if (!features.ok()) continue;
    std::map<std::string, double> values;
    for (const Feature& f : *features) {
      if (f.series.empty()) continue;
      double mean = 0;
      for (double v : f.series.values()) mean += v;
      values[f.spec.Name()] = mean / static_cast<double>(f.series.size());
    }
    const bool alarm = rule.Eval(values);
    const bool truly_anomalous =
        t > test.abnormal.range.lower && t <= test.abnormal.range.upper + window;
    if (alarm && truly_anomalous) ++alarms_during;
    if (alarm && !truly_anomalous) ++alarms_outside;
    printf("%10lld %10s   %s\n", static_cast<long long>(t - job_start),
           alarm ? "ALARM" : "-", truly_anomalous ? "<- anomaly window" : "");
  }
  printf("\nalarms during the unseen anomaly : %d\n", alarms_during);
  printf("false alarms outside              : %d\n", alarms_outside);
  if (alarms_during == 0) {
    fprintf(stderr, "proactive rule failed to fire\n");
    return 1;
  }
  printf("\nThe explanation generalizes: it detects the *next* occurrence of the\n"
         "same anomaly type without any new annotation (proactive monitoring).\n");
  return 0;
}
