// Tour of the SASE query language support (paper Sec. 2.1, Fig. 3) and the
// CEP engine: several monitoring queries from the paper's motivation — job
// progress, data queuing, shuffle statistics — running over one simulated
// cluster stream.

#include <cstdio>

#include "cep/engine.h"
#include "query/parser.h"
#include "sim/hadoop_sim.h"

using namespace exstream;

int main() {
  EventTypeRegistry registry;
  if (!HadoopClusterSim::RegisterEventTypes(&registry).ok()) return 1;

  CepEngine engine(&registry);
  struct NamedQuery {
    const char* name;
    const char* text;
    const char* purpose;
  };
  const NamedQuery queries[] = {
      {"Q1",
       "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
       "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))",
       "data queuing size (Example 1.1)"},
      {"Q_progress",
       "PATTERN SEQ(JobStart a, MapFinish+ b[], JobEnd c) WHERE [jobId] "
       "RETURN (b[i].timestamp, a.jobId, count(b[1..i].taskId))",
       "job progress: completed mappers over time"},
      {"Q_shuffle",
       "PATTERN SEQ(JobStart a, PullFinish+ b[], JobEnd c) WHERE [jobId] "
       "RETURN (b[i].timestamp, a.jobId, count(b[1..i].taskId), "
       "avg(b[1..i].clusterNodeNumber))",
       "data pull statistics per job"},
      {"Q_lifetime",
       "PATTERN SEQ(MapStart a, MapFinish b) WHERE [jobId] "
       "RETURN (a.jobId, a.timestamp, b.timestamp)",
       "mapper lifetime samples"},
  };

  for (const NamedQuery& q : queries) {
    auto parsed = ParseQuery(q.text, q.name);
    if (!parsed.ok()) {
      fprintf(stderr, "parse error in %s: %s\n", q.name,
              parsed.status().ToString().c_str());
      return 1;
    }
    printf("-- %s: %s\n%s\n\n", q.name, q.purpose, parsed->ToString().c_str());
    auto id = engine.AddQuery(*parsed);
    if (!id.ok()) {
      fprintf(stderr, "compile error in %s: %s\n", q.name,
              id.status().ToString().c_str());
      return 1;
    }
  }

  // One normal job feeding all four queries.
  HadoopSimConfig config;
  config.num_nodes = 4;
  config.seed = 123;
  HadoopClusterSim sim(config, &registry);
  HadoopJobConfig job;
  job.job_id = "job-demo";
  job.program = "WC-sessions";
  job.dataset = "worldcup";
  sim.AddJob(job);
  if (!sim.Run(&engine).ok()) return 1;

  printf("results over one simulated job (%llu events processed):\n",
         static_cast<unsigned long long>(engine.events_processed()));
  for (QueryId q = 0; q < engine.num_queries(); ++q) {
    const MatchTable& table = engine.match_table(q);
    const std::string& name = engine.compiled(q).query().name;
    printf("  %-11s -> %4zu match rows", name.c_str(), table.TotalRows());
    for (const std::string& partition : table.Partitions()) {
      printf("  [%s%s]", partition.c_str(),
             table.IsComplete(partition) ? ", complete" : "");
    }
    printf("\n");
  }

  // Peek at the shuffle query output columns.
  const QueryId shuffle = *engine.QueryIdByName("Q_shuffle");
  auto rows = engine.match_table(shuffle).Rows("job-demo");
  if (!rows.empty()) {
    const MatchRow& last = rows.back();
    // Columns: [0]=b[i].timestamp, [1]=jobId, [2]=count, [3]=avg.
    printf("\nQ_shuffle final row: t=%lld pulls=%lld avg_node=%.2f\n",
           static_cast<long long>(last.ts),
           static_cast<long long>(last.values[2].AsInt64()),
           last.values[3].AsDouble());
  }
  return 0;
}
