// Supply-chain management scenario (paper Sec. 1.1 and Appendix D).
//
// A manufacturing line produces a series of products while environmental
// sensors and material-quality records stream into the monitoring system.
// A customer complains about one product; the analyst annotates its
// manufacturing window against a known-good product and asks EXstream for an
// explanation. Two defect types are demonstrated: a sub-par material batch
// and a set of sensors that silently stopped reporting.

#include <cstdio>

#include "ml/metrics.h"
#include "sim/workloads.h"

using namespace exstream;

namespace {

int RunScenario(const WorkloadDef& def) {
  auto run_result = BuildWorkloadRun(def);
  if (!run_result.ok()) {
    fprintf(stderr, "build failed: %s\n", run_result.status().ToString().c_str());
    return 1;
  }
  const WorkloadRun& run = **run_result;

  printf("==== %s ====\n", def.name.c_str());
  printf("claimed product : %s (window [%lld, %lld])\n",
         run.annotation.abnormal.partition.c_str(),
         static_cast<long long>(run.annotation.abnormal.range.lower),
         static_cast<long long>(run.annotation.abnormal.range.upper));
  printf("good product    : %s\n\n", run.annotation.reference.partition.c_str());

  // The monitored per-product quality curve the analyst looks at first.
  auto series = run.engine->match_table(run.monitor_query)
                    .ExtractSeries(run.annotation.abnormal.partition,
                                   run.monitor_column);
  if (series.ok() && !series->empty()) {
    double mean = 0;
    for (double v : series->values()) mean += v;
    mean /= static_cast<double>(series->size());
    printf("monitored avg material quality of the claimed product: %.1f "
           "(%zu progress events)\n",
           mean, series->size());
  }

  ExplanationEngine engine = run.MakeExplanationEngine(run.DefaultExplainOptions());
  auto report = engine.Explain(run.annotation);
  if (!report.ok()) {
    fprintf(stderr, "explain failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  printf("\nEXPLANATION (%zu of %zu features):\n  %s\n",
         report->final_features.size(), report->ranked.size(),
         report->explanation.ToString().c_str());
  printf("ground truth   :");
  for (const auto& g : run.ground_truth) printf(" %s", g.c_str());
  printf("\nconsistency    : %.3f\n\n",
         ExplanationConsistency(report->SelectedFeatureNames(), run.ground_truth));
  return 0;
}

}  // namespace

int main() {
  const auto workloads = SupplyChainWorkloads();
  // One sub-par-material case and one missing-monitoring case.
  if (RunScenario(workloads[3]) != 0) return 1;  // SC4: sub-par material
  if (RunScenario(workloads[0]) != 0) return 1;  // SC1: missing monitoring
  return 0;
}
