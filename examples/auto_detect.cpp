// Fully proactive monitoring: automatic anomaly recognition + explanation,
// with zero human annotation (the paper's Sec. 8 future work, implemented).
//
// The detector scores every job of the monitored family against its peers,
// flags outliers, localizes the deviating region, synthesizes the I_A / I_R
// annotation, and hands it to the explanation engine.

#include <cstdio>

#include "detect/detector.h"
#include "sim/workloads.h"

using namespace exstream;

int main() {
  WorkloadRunOptions options;
  options.num_normal_jobs = 3;
  auto run_result = BuildWorkloadRun(HadoopWorkloads()[0], options);
  if (!run_result.ok()) {
    fprintf(stderr, "build failed: %s\n", run_result.status().ToString().c_str());
    return 1;
  }
  const WorkloadRun& run = **run_result;

  AnomalyDetector detector(run.partitions.get(), run.MakeSeriesProvider());
  auto seed = run.partitions->Get("Q1", "job-000");
  if (!seed.ok()) return 1;

  auto scores = detector.Scores(*seed);
  if (!scores.ok()) {
    fprintf(stderr, "scoring failed: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  printf("per-partition deviation scores:\n");
  for (const auto& [partition, score] : *scores) {
    printf("  %-18s %.3f\n", partition.c_str(), score);
  }

  auto anomalies = detector.Detect(*seed);
  if (!anomalies.ok()) {
    fprintf(stderr, "detection failed: %s\n", anomalies.status().ToString().c_str());
    return 1;
  }
  printf("\ndetected anomalies: %zu\n", anomalies->size());
  for (const DetectedAnomaly& a : *anomalies) {
    printf("  %-18s score=%.3f abnormal=[%lld, %lld] reference=%s[%lld, %lld]\n",
           a.partition.c_str(), a.score,
           static_cast<long long>(a.abnormal_region.lower),
           static_cast<long long>(a.abnormal_region.upper),
           a.reference_partition.c_str(),
           static_cast<long long>(a.reference_region.lower),
           static_cast<long long>(a.reference_region.upper));
  }
  if (anomalies->empty()) return 0;

  ExplanationEngine engine = run.MakeExplanationEngine(run.DefaultExplainOptions());
  auto report = engine.Explain((*anomalies)[0].ToAnnotation("Q1"));
  if (!report.ok()) {
    fprintf(stderr, "explain failed: %s\n", report.status().ToString().c_str());
    return 1;
  }
  printf("\nvalidation: related=%zu labeled abnormal=%zu reference=%zu "
         "discarded=%zu; %zu -> %zu features\n",
         report->num_related_partitions, report->num_labeled_abnormal,
         report->num_labeled_reference, report->num_discarded,
         report->after_leap.size(), report->after_validation.size());
  printf("\nAUTO-EXPLANATION for %s:\n  %s\n", (*anomalies)[0].partition.c_str(),
         report->explanation.ToString().c_str());
  printf("expert ground truth:");
  for (const auto& g : run.ground_truth) printf(" %s", g.c_str());
  printf("\n");
  return 0;
}
