// Pipeline inspector: prints every stage of the explanation pipeline for one
// workload — the ranked rewards, the Step-1 cut, the Step-2 validation table
// (paper Fig. 12), the Step-3 clusters, and the final CNF.
//
// Usage: inspect_pipeline [workload-id 1..8] [--sc]

#include <cstdio>
#include <cstring>
#include <string>

#include "explain/temporal.h"
#include "sim/workloads.h"

using namespace exstream;

int main(int argc, char** argv) {
  int workload_id = 1;
  bool supply_chain = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--sc") == 0) {
      supply_chain = true;
    } else {
      workload_id = atoi(argv[i]);
    }
  }
  const auto defs = supply_chain ? SupplyChainWorkloads() : HadoopWorkloads();
  if (workload_id < 1 || workload_id > static_cast<int>(defs.size())) {
    fprintf(stderr, "workload id out of range\n");
    return 1;
  }
  const WorkloadDef def = defs[static_cast<size_t>(workload_id - 1)];

  auto run_result = BuildWorkloadRun(def);
  if (!run_result.ok()) {
    fprintf(stderr, "build failed: %s\n", run_result.status().ToString().c_str());
    return 1;
  }
  const WorkloadRun& run = **run_result;
  ExplanationEngine engine = run.MakeExplanationEngine(run.DefaultExplainOptions());
  auto report_result = engine.Explain(run.annotation);
  if (!report_result.ok()) {
    fprintf(stderr, "explain failed: %s\n", report_result.status().ToString().c_str());
    return 1;
  }
  const ExplanationReport& r = *report_result;

  printf("== %s ==\n", def.name.c_str());
  printf("annotation: %s\n", r.annotation.ToString().c_str());
  printf("ground truth:");
  for (const auto& g : run.ground_truth) printf(" %s", g.c_str());
  printf("\n\n-- ranked rewards (top 40 of %zu) --\n", r.ranked.size());
  for (size_t i = 0; i < r.ranked.size() && i < 40; ++i) {
    printf("  %2zu. %-40s %.4f\n", i + 1, r.ranked[i].spec.Name().c_str(),
           r.ranked[i].reward());
  }

  printf("\n-- Step 2 validation (Fig. 12 style) --\n");
  printf("related=%zu labeled: abnormal=%zu reference=%zu discarded=%zu\n",
         r.num_related_partitions, r.num_labeled_abnormal, r.num_labeled_reference,
         r.num_discarded);
  printf("  %-44s %9s %9s %s\n", "feature", "annotated", "all", "kept");
  for (const ValidatedFeature& v : r.validation) {
    printf("  %-44s %9.4f %9.4f %s\n", v.feature.spec.Name().c_str(),
           v.annotated_reward, v.validated_reward, v.kept ? "yes" : "no");
  }

  printf("\n-- Step 3 clusters (%d) --\n", r.clustering.num_clusters);
  for (size_t i = 0; i < r.after_validation.size(); ++i) {
    printf("  cluster %2d: %s\n", r.clustering.cluster_labels[i],
           r.after_validation[i].spec.Name().c_str());
  }

  printf("\nEXPLANATION: %s\n", r.explanation.ToString().c_str());

  // Temporal-correlation analysis (the future-work extension): do the final
  // features LEAD the monitored series' change, or merely trail it?
  auto monitored = run.MakeSeriesProvider()(run.monitor_query_name,
                                            run.annotation.abnormal.partition);
  if (monitored.ok() && !r.final_features.empty()) {
    printf("\n-- temporal lead analysis (positive = feature leads the anomaly) --\n");
    for (const auto& [feature, score] :
         RankByLeadScore(r.final_features, *monitored)) {
      printf("  %-44s lead score %+0.3f\n", feature.spec.Name().c_str(), score);
    }
  }
  return 0;
}
