// WAL overhead: batched ingest throughput through XStreamSystem with no WAL
// vs a WAL at each fsync policy (none / interval / every_batch), on the
// Hadoop monitoring stream across the Fig. 20 concurrent-query tiers
// (10 / 100 / 1000 replicas, as in bench_ingest_throughput).
//
// All modes ingest through the bounded queue (sized so nothing sheds), the
// production pipeline shape: the worker thread runs the WAL append — a
// serialize, a CRC32, two fwrites — immediately before the engine sees each
// batch, while the producer validates the next one. fsync=interval
// group-commits on a background flusher thread, so neither pipeline thread
// blocks on the disk. The interesting number is how much of the no-WAL
// throughput survives; the log's cost is fixed per byte, so the relative
// overhead shrinks as per-event engine work grows — the per-tier table shows
// that directly. Emits BENCH_wal_overhead.json. --smoke runs a seconds-scale
// subset for CI. Acceptance gate: fsync=interval must retain >= 0.85x the
// no-WAL events/sec on the 1000-query tier — the same workload
// bench_ingest_throughput gates on (checked by the full run; reported either
// way — every_batch pays a real fsync per append and is exempt).
//
// Each configuration is measured --reps times and the best (fastest) rep is
// reported (minimum-time estimator; see bench_ingest_throughput).
//
//   bench_wal_overhead [--smoke] [--out PATH] [--reps N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "io/file_util.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"

using namespace exstream;
using bench::CheckOk;
using bench::JsonWriter;

namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

std::vector<Event> BuildStream(const EventTypeRegistry& registry, int num_nodes,
                               int num_jobs, Timestamp duration) {
  HadoopSimConfig config;
  config.num_nodes = num_nodes;
  config.seed = 20170321;  // EDBT'17
  HadoopClusterSim sim(config, &registry);
  for (int j = 0; j < num_jobs; ++j) {
    HadoopJobConfig job;
    job.job_id = StrFormat("job-%03d", j);
    job.program = "wordcount";
    job.dataset = "ds";
    job.start_time = (duration * j) / num_jobs;
    sim.AddJob(job);
  }
  VectorSink sink;
  CheckOk(sim.Run(&sink).status(), "hadoop sim");
  return sink.TakeEvents();
}

struct Measurement {
  std::string mode;  // "no-wal", "none", "interval", "every_batch"
  size_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  size_t match_rows = 0;      // cross-checks all configs did the same work
  uint64_t wal_bytes = 0;     // bytes appended per rep (0 for no-wal)
  uint64_t wal_syncs = 0;
};

void WipeDir(const std::string& dir) {
  const auto files = ListDirFiles(dir);
  if (!files.ok()) return;
  for (const std::string& f : *files) {
    CheckOk(RemoveFileIfExists(dir + "/" + f), "wipe wal dir");
  }
}

Measurement Run(const EventTypeRegistry& registry,
                const std::vector<EventBatch>& slices, size_t total_events,
                const std::string& mode, const std::string& wal_dir,
                size_t reps, int num_queries) {
  Measurement m;
  m.mode = mode;
  m.events = total_events;
  for (size_t rep = 0; rep < reps; ++rep) {
    XStreamConfig config;
    // Pipelined ingest: WAL on the producer thread, engine on the worker.
    // Capacity exceeds the batch count so backpressure can never shed (the
    // match-row cross-check below depends on every mode doing all the work).
    config.overload.queue_capacity = slices.size() + 1;
    if (mode != "no-wal") {
      WipeDir(wal_dir);  // each rep logs from scratch
      config.durability.wal_dir = wal_dir;
      if (mode == "none") config.durability.fsync = WalFsyncPolicy::kNone;
      if (mode == "interval") config.durability.fsync = WalFsyncPolicy::kInterval;
      if (mode == "every_batch") {
        config.durability.fsync = WalFsyncPolicy::kEveryBatch;
      }
    }
    XStreamSystem system(&registry, config);
    for (int q = 0; q < num_queries; ++q) {
      CheckOk(system.AddQuery(kQ1, StrFormat("Q1-%02d", q)).status(),
              "AddQuery");
    }
    Stopwatch timer;
    for (const EventBatch& slice : slices) system.OnEventBatch(slice);
    system.Flush();
    const double secs = timer.ElapsedSeconds();
    if (rep == 0 || secs < m.seconds) m.seconds = secs;
    m.match_rows = system.engine().match_table(0).TotalRows();
    if (system.wal() != nullptr) {
      m.wal_bytes = system.wal()->stats().bytes_appended;
      m.wal_syncs = system.wal()->stats().syncs;
    }
  }
  m.events_per_sec = static_cast<double>(m.events) / m.seconds;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t reps = 0;  // 0 = default per mode (full: 5, smoke: 1)
  std::string out_path = "BENCH_wal_overhead.json";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = strtoull(argv[++i], nullptr, 10);
    } else {
      fprintf(stderr,
              "usage: bench_wal_overhead [--smoke] [--out PATH] [--reps N]\n");
      return 2;
    }
  }
  if (reps == 0) reps = smoke ? 1 : 5;

  EventTypeRegistry registry;
  CheckOk(HadoopClusterSim::RegisterEventTypes(&registry), "RegisterEventTypes");

  const int num_nodes = smoke ? 2 : 30;
  const Timestamp duration = smoke ? 300 : 3600;
  // The Fig. 20 concurrent-query tiers (see bench_ingest_throughput). The
  // last tier is the gate workload: a production-scale deployment where
  // engine work per event is representative.
  const std::vector<int> tiers = smoke ? std::vector<int>{10}
                                       : std::vector<int>{10, 100, 1000};
  const size_t batch_size = 512;
  const std::vector<Event> stream = BuildStream(registry, num_nodes, 3, duration);
  std::vector<EventBatch> slices;
  for (size_t i = 0; i < stream.size(); i += batch_size) {
    const size_t end = std::min(stream.size(), i + batch_size);
    slices.emplace_back(stream.begin() + static_cast<ptrdiff_t>(i),
                        stream.begin() + static_cast<ptrdiff_t>(end));
  }
  fprintf(stderr, "[bench] stream: %zu events in %zu batches\n", stream.size(),
          slices.size());

  char wal_tmpl[] = "/tmp/exstream_walbench_XXXXXX";
  if (mkdtemp(wal_tmpl) == nullptr) {
    fprintf(stderr, "FAIL: cannot create WAL dir\n");
    return 1;
  }
  const std::string wal_dir = wal_tmpl;

  struct TierResult {
    int num_queries = 0;
    std::vector<Measurement> results;
  };
  std::vector<TierResult> tier_results;
  for (const int num_queries : tiers) {
    TierResult tier;
    tier.num_queries = num_queries;
    for (const char* mode : {"no-wal", "none", "interval", "every_batch"}) {
      fprintf(stderr, "[bench] %d queries, mode %s ...\n", num_queries, mode);
      tier.results.push_back(
          Run(registry, slices, stream.size(), mode, wal_dir, reps, num_queries));
      if (tier.results.back().match_rows != tier.results.front().match_rows) {
        fprintf(stderr, "FAIL: mode %s produced %zu match rows, no-wal %zu\n",
                mode, tier.results.back().match_rows,
                tier.results.front().match_rows);
        return 1;
      }
    }
    tier_results.push_back(std::move(tier));
  }
  WipeDir(wal_dir);

  double gate_ratio = 0;  // fsync=interval vs no-WAL, last (gate) tier
  for (const TierResult& tier : tier_results) {
    const double base_eps = tier.results.front().events_per_sec;
    printf("\nWAL overhead (events/sec), %zu events/batch, %d queries\n",
           batch_size, tier.num_queries);
    printf("%12s %14s %8s %12s %8s\n", "mode", "events/sec", "ratio", "wal MB",
           "syncs");
    for (const Measurement& m : tier.results) {
      const double ratio = m.events_per_sec / base_eps;
      printf("%12s %14.0f %7.2fx %12.1f %8llu\n", m.mode.c_str(),
             m.events_per_sec, ratio,
             static_cast<double>(m.wal_bytes) / (1024.0 * 1024.0),
             static_cast<unsigned long long>(m.wal_syncs));
      if (m.mode == "interval" && &tier == &tier_results.back()) {
        gate_ratio = ratio;
      }
    }
  }
  printf("\nacceptance: fsync=interval = %.2fx no-WAL baseline at %d queries %s\n",
         gate_ratio, tier_results.back().num_queries,
         smoke ? "(smoke run; gate applies to the full run)"
               : (gate_ratio >= 0.85 ? "(PASS, >= 0.85x)" : "(FAIL, < 0.85x)"));

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("wal_overhead");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("batch_size");
  json.UInt(batch_size);
  json.Key("gate_num_queries");
  json.UInt(static_cast<size_t>(tier_results.back().num_queries));
  json.Key("reps");
  json.UInt(reps);
  json.Key("stream_events");
  json.UInt(stream.size());
  json.Key("gate_interval_vs_no_wal");
  json.Double(gate_ratio);
  json.Key("tiers");
  json.BeginArray();
  for (const TierResult& tier : tier_results) {
    const double base_eps = tier.results.front().events_per_sec;
    json.BeginObject();
    json.Key("num_queries");
    json.UInt(static_cast<size_t>(tier.num_queries));
    json.Key("results");
    json.BeginArray();
    for (const Measurement& m : tier.results) {
      json.BeginObject();
      json.Key("mode");
      json.String(m.mode);
      json.Key("events");
      json.UInt(m.events);
      json.Key("seconds");
      json.Double(m.seconds);
      json.Key("events_per_sec");
      json.Double(m.events_per_sec);
      json.Key("ratio_vs_no_wal");
      json.Double(m.events_per_sec / base_eps);
      json.Key("match_rows");
      json.UInt(m.match_rows);
      json.Key("wal_bytes");
      json.UInt(m.wal_bytes);
      json.Key("wal_syncs");
      json.UInt(m.wal_syncs);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.MemoryObject(bench::SampleMemoryStats());
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());

  if (!smoke && gate_ratio < 0.85) return 1;
  return 0;
}
