// Scan + feature-build throughput: columnar ScanView path vs the legacy
// row-materializing Scan path, over the Hadoop-sim workload's annotated
// intervals (the exact access pattern of the explanation hot path).
//
// The two paths must be perf-different but result-identical, so this bench is
// also a correctness harness: it verifies bit-identical Feature series and a
// bit-identical Explanation report across modes before timing anything.
//
// Emits BENCH_scan_view.json (with memory counters). Acceptance gate, full
// mode only: view-path throughput >= 2x the row baseline (exit 1 otherwise).
// --smoke shrinks the workload for CI; the gate then only prints.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"

#include "archive/archive.h"
#include "common/stopwatch.h"
#include "features/builder.h"
#include "features/feature_space.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

struct Measurement {
  double seconds_per_pass = 0.0;  ///< best-of-reps, one pass = both intervals
  double events_per_sec = 0.0;
  size_t iters = 0;
};

// Events the feature build actually reads per pass: in-range rows of every
// referenced type, across both annotation intervals.
size_t EventsPerPass(const WorkloadRun& run, const std::vector<FeatureSpec>& specs) {
  std::vector<EventTypeId> types;
  for (const FeatureSpec& s : specs) {
    if (std::find(types.begin(), types.end(), s.type) == types.end()) {
      types.push_back(s.type);
    }
  }
  size_t events = 0;
  for (const TimeInterval& interval :
       {run.annotation.abnormal.range, run.annotation.reference.range}) {
    for (const EventTypeId t : types) {
      events += CheckResult(run.archive->ScanColumns(t, interval), "count scan").rows();
    }
  }
  return events;
}

// One pass: materialize the full feature space over both annotated intervals.
void BuildPass(const FeatureBuilder& builder, const std::vector<FeatureSpec>& specs,
               const WorkloadRun& run, std::vector<Feature>* sink) {
  for (const TimeInterval& interval :
       {run.annotation.abnormal.range, run.annotation.reference.range}) {
    std::vector<Feature> feats =
        CheckResult(builder.Build(specs, interval), "feature build");
    if (sink != nullptr) {
      sink->insert(sink->end(), std::make_move_iterator(feats.begin()),
                   std::make_move_iterator(feats.end()));
    }
  }
}

Measurement TimePasses(const FeatureBuilder& builder,
                       const std::vector<FeatureSpec>& specs, const WorkloadRun& run,
                       size_t events_per_pass, size_t iters, size_t reps) {
  Measurement m;
  m.iters = iters;
  double best = 1e30;
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    for (size_t i = 0; i < iters; ++i) BuildPass(builder, specs, run, nullptr);
    best = std::min(best, timer.ElapsedSeconds() / static_cast<double>(iters));
  }
  m.seconds_per_pass = best;
  m.events_per_sec = static_cast<double>(events_per_pass) / best;
  return m;
}

bool IdenticalFeatures(const std::vector<Feature>& a, const std::vector<Feature>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].spec.Name() != b[i].spec.Name()) return false;
    if (a[i].series.times() != b[i].series.times()) return false;
    if (a[i].series.values() != b[i].series.values()) return false;  // bitwise
  }
  return true;
}

// Full-pipeline equivalence: the Explanation must not depend on the storage
// layout behind the scans.
bool IdenticalExplanations(const WorkloadRun& run, std::string* out_cnf) {
  ExplainOptions view_options = run.DefaultExplainOptions();
  view_options.use_legacy_row_scan = false;
  ExplainOptions row_options = run.DefaultExplainOptions();
  row_options.use_legacy_row_scan = true;
  const ExplanationReport view = CheckResult(
      run.MakeExplanationEngine(std::move(view_options)).Explain(run.annotation),
      "view explain");
  const ExplanationReport row = CheckResult(
      run.MakeExplanationEngine(std::move(row_options)).Explain(run.annotation),
      "row explain");
  *out_cnf = view.explanation.ToString();
  if (view.explanation.ToString() != row.explanation.ToString()) return false;
  if (view.ranked.size() != row.ranked.size()) return false;
  for (size_t i = 0; i < view.ranked.size(); ++i) {
    if (view.ranked[i].spec.Name() != row.ranked[i].spec.Name()) return false;
    if (view.ranked[i].reward() != row.ranked[i].reward()) return false;  // bitwise
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t reps = 0;  // 0 = default per mode (full: 5, smoke: 2)
  std::string out_path = "BENCH_scan_view.json";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = strtoull(argv[++i], nullptr, 10);
    } else {
      fprintf(stderr, "usage: bench_scan_view [--smoke] [--out PATH] [--reps N]\n");
      return 2;
    }
  }
  if (reps == 0) reps = smoke ? 2 : 5;

  // The paper's Hadoop scenario; more nodes = more archived metric streams =
  // more rows behind every scan, which is the quantity under test.
  WorkloadRunOptions options;
  options.num_nodes = smoke ? 4 : 16;
  options.num_normal_jobs = smoke ? 2 : 4;
  const WorkloadDef def = HadoopWorkloads()[0];
  fprintf(stderr, "[bench] building %s (%d nodes) ...\n", def.name.c_str(),
          options.num_nodes);
  auto run = BuildRun(def, options);

  const std::vector<FeatureSpec> specs =
      GenerateFeatureSpecs(*run->registry, run->FeatureSpace());
  const size_t events_per_pass = EventsPerPass(*run, specs);
  fprintf(stderr, "[bench] %zu specs, %zu in-range events per pass\n", specs.size(),
          events_per_pass);

  const FeatureBuilder view_builder(run->archive.get(), /*use_legacy_row_scan=*/false);
  const FeatureBuilder row_builder(run->archive.get(), /*use_legacy_row_scan=*/true);

  // Correctness first: identical Features, then an identical end-to-end
  // Explanation. A perf win that changes results would be a bug, not a win.
  std::vector<Feature> view_feats;
  std::vector<Feature> row_feats;
  BuildPass(view_builder, specs, *run, &view_feats);
  BuildPass(row_builder, specs, *run, &row_feats);
  const bool features_identical = IdenticalFeatures(view_feats, row_feats);
  std::string cnf;
  const bool explanations_identical = IdenticalExplanations(*run, &cnf);
  if (!features_identical || !explanations_identical) {
    fprintf(stderr, "FAIL: view path diverged from row path (features %s, "
            "explanations %s)\n", features_identical ? "ok" : "DIFFER",
            explanations_identical ? "ok" : "DIFFER");
    return 1;
  }
  view_feats.clear();
  row_feats.clear();

  // Calibrate the inner iteration count off the row baseline so each timed
  // rep runs long enough to shed scheduler noise.
  Stopwatch calibrate;
  BuildPass(row_builder, specs, *run, nullptr);
  const double single = calibrate.ElapsedSeconds();
  const double target = smoke ? 0.2 : 1.0;  // seconds per timed rep
  const size_t iters =
      std::clamp<size_t>(static_cast<size_t>(target / std::max(single, 1e-6)), 1, 512);

  fprintf(stderr, "[bench] timing row baseline (%zu iters x %zu reps) ...\n", iters,
          reps);
  const Measurement row = TimePasses(row_builder, specs, *run, events_per_pass,
                                     iters, reps);
  fprintf(stderr, "[bench] timing columnar view ...\n");
  const Measurement view = TimePasses(view_builder, specs, *run, events_per_pass,
                                      iters, reps);
  const double speedup = view.events_per_sec / std::max(row.events_per_sec, 1e-12);

  printf("\nScan + FeatureBuilder throughput, %s (%zu specs, %zu events/pass)\n",
         def.name.c_str(), specs.size(), events_per_pass);
  printf("%-22s %14s %16s\n", "mode", "s/pass", "events/sec");
  printf("%-22s %14.5f %16.0f\n", "row (legacy Scan)", row.seconds_per_pass,
         row.events_per_sec);
  printf("%-22s %14.5f %16.0f\n", "columnar (ScanView)", view.seconds_per_pass,
         view.events_per_sec);
  printf("\nresults: features identical, explanation identical (%s)\n", cnf.c_str());
  printf("acceptance: view = %.2fx row baseline %s\n", speedup,
         smoke ? "(smoke run; gate applies to the full run)"
               : (speedup >= 2.0 ? "(PASS, >= 2x)" : "(FAIL, < 2x)"));

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("scan_view");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("workload");
  json.String(def.name);
  json.Key("num_nodes");
  json.UInt(static_cast<size_t>(options.num_nodes));
  json.Key("num_specs");
  json.UInt(specs.size());
  json.Key("events_per_pass");
  json.UInt(events_per_pass);
  json.Key("iters");
  json.UInt(iters);
  json.Key("reps");
  json.UInt(reps);
  json.Key("row_s_per_pass");
  json.Double(row.seconds_per_pass);
  json.Key("row_events_per_sec");
  json.Double(row.events_per_sec);
  json.Key("view_s_per_pass");
  json.Double(view.seconds_per_pass);
  json.Key("view_events_per_sec");
  json.Double(view.events_per_sec);
  json.Key("speedup");
  json.Double(speedup);
  json.Key("features_identical");
  json.Bool(features_identical);
  json.Key("explanations_identical");
  json.Bool(explanations_identical);
  json.MemoryObject(SampleMemoryStats());
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());

  if (!smoke && speedup < 2.0) return 1;
  return 0;
}
