// Reproduces Appendix A's negative result on real workload data: the
// penalized-optimization formulation (Function 8) of minimum-explanation
// finding degenerates to thresholding the per-feature distance, so it can
// neither enforce conciseness nor avoid redundant correlated features —
// "those optimizations either cannot find optimal solution or the results
// are equal to uninteresting thresholds."

#include "bench_util.h"

#include "explain/reward.h"
#include "features/builder.h"
#include "ml/metrics.h"
#include "ml/penalized_selection.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  auto run = BuildRun(HadoopWorkloads()[0]);  // W1: high memory
  const auto specs = GenerateFeatureSpecs(*run->registry, run->FeatureSpace());
  FeatureBuilder builder(run->archive.get());
  auto ranked =
      CheckResult(ComputeFeatureRewards(builder, specs, run->annotation.abnormal.range,
                                        run->annotation.reference.range),
                  "rewards");

  std::vector<double> distances;
  std::vector<std::string> names;
  for (const RankedFeature& f : ranked) {
    distances.push_back(f.reward());
    names.push_back(f.spec.Name());
  }

  printf("Appendix A reproduction: penalized optimization (Function 8) on the\n"
         "entropy distances of workload W1 (%zu features)\n\n",
         distances.size());
  printf("%8s %8s %12s %12s %14s\n", "lambda1", "lambda2", "threshold",
         "#selected", "consistency");
  for (const auto& [l1, l2] : std::vector<std::pair<double, double>>{
           {0.2, 0.1}, {0.5, 0.25}, {0.81, 0.3}, {0.95, 0.05}, {1.2, 0.25}}) {
    auto sel = CheckResult(PenalizedSelectionClosedForm(distances, l1, l2),
                           "closed form");
    std::vector<std::string> selected;
    for (size_t i = 0; i < sel.size(); ++i) {
      if (sel[i]) selected.push_back(names[i]);
    }
    printf("%8.2f %8.2f %12.3f %12zu %14.3f\n", l1, l2, std::sqrt(l1 - l2),
           selected.size(),
           ExplanationConsistency(selected, run->ground_truth));
  }

  printf("\nWhatever the lambdas, the 'optimal' selection is exactly\n"
         "{ f : D(f) > sqrt(lambda1 - lambda2) } — a plain threshold with no\n"
         "conciseness pressure and no handling of correlated features, which is\n"
         "why the paper develops the Sec. 5 heuristic pipeline instead.\n");

  // Sanity: brute force on the top 16 features agrees with the closed form.
  std::vector<double> top(distances.begin(),
                          distances.begin() + std::min<size_t>(16, distances.size()));
  auto closed = CheckResult(PenalizedSelectionClosedForm(top, 0.81, 0.3), "closed");
  auto brute = CheckResult(PenalizedSelectionBruteForce(top, 0.81, 0.3), "brute");
  printf("\nbrute-force optimum == closed form on top-16 features: %s\n",
         closed == brute ? "yes" : "NO (bug!)");
  return 0;
}
