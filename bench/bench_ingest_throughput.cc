// Ingestion throughput: per-event OnEvent vs batched OnEventBatch, across
// ingest-thread counts and concurrent-query counts (the Fig. 20 axis), with
// and without multi-query merging.
//
// The batched path amortizes the per-event costs that dominate at high query
// counts: partition keys are extracted and hashed once per event instead of
// once per query per event, and match rows flush in bulk. Multi-query merging
// (the default engine mode) collapses structurally equivalent queries into
// shared automata, so 1000 replicated monitoring queries cost one automaton
// traversal per event instead of 1000; the --no-merge baseline column
// measures the legacy per-query evaluator for comparison.
//
// Emits BENCH_ingest_throughput.json. --smoke runs a seconds-scale subset for
// CI (the bench-smoke workflow gates on regressions against the committed
// smoke baseline). Acceptance gates, checked on the full run:
//   * merged batched single-thread >= 4x the no-merge batched single-thread
//     at the top query count (query-sharing win), and
//   * merged batched at the top thread count >= 3x merged single-thread on
//     top of that (shard-pipeline scaling) — enforced only when the host
//     actually has that many cores; reported as not-measurable otherwise.
//
// Each configuration is measured --reps times and the best (fastest) rep is
// reported: the bench often shares its host with noisy neighbors, and the
// minimum-time rep is the standard estimator of the undisturbed cost.
//
//   bench_ingest_throughput [--smoke] [--out PATH] [--reps N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cep/engine.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "sim/hadoop_sim.h"

using namespace exstream;
using bench::CheckOk;
using bench::CheckResult;
using bench::JsonWriter;

namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

// A multi-job Hadoop cluster stream: mostly metric events (irrelevant to the
// Q1 replicas), plus job/IO events spread over `num_jobs` partitions.
std::vector<Event> BuildStream(const EventTypeRegistry& registry, int num_nodes,
                               int num_jobs, Timestamp duration) {
  HadoopSimConfig config;
  config.num_nodes = num_nodes;
  config.seed = 20170321;  // EDBT'17
  HadoopClusterSim sim(config, &registry);
  for (int j = 0; j < num_jobs; ++j) {
    HadoopJobConfig job;
    job.job_id = StrFormat("job-%03d", j);
    job.program = "wordcount";
    job.dataset = "ds";
    job.start_time = (duration * j) / num_jobs;
    sim.AddJob(job);
  }
  VectorSink sink;
  CheckOk(sim.Run(&sink).status(), "hadoop sim");
  return sink.TakeEvents();
}

std::unique_ptr<CepEngine> MakeEngine(const EventTypeRegistry& registry,
                                      size_t num_queries, size_t ingest_threads,
                                      bool merge) {
  CepEngineOptions options;
  options.ingest_threads = ingest_threads;
  options.enable_query_merge = merge;
  auto engine = std::make_unique<CepEngine>(&registry, options);
  for (size_t q = 0; q < num_queries; ++q) {
    CheckOk(engine->AddQueryText(kQ1, StrFormat("Q%zu", q)).status(), "AddQuery");
  }
  return engine;
}

struct Measurement {
  size_t queries = 0;
  size_t threads = 0;
  bool batched = false;
  bool merged = true;
  size_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  size_t match_rows = 0;  // cross-checks that all configs did the same work
  size_t merge_groups = 0;
  double merge_compression = 1.0;
  double scaling_efficiency = 0;  // (eps / 1-thread eps) / threads, merged only
};

void RecordMergeStats(const CepEngine& engine, Measurement* m) {
  const MergePlanStats& stats = engine.merge_stats();
  m->merge_groups = stats.groups;
  m->merge_compression = stats.compression();
}

Measurement RunPerEvent(const EventTypeRegistry& registry,
                        const std::vector<Event>& stream, size_t num_queries,
                        size_t reps) {
  Measurement m;
  m.queries = num_queries;
  m.threads = 1;
  m.batched = false;
  m.events = stream.size();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto engine = MakeEngine(registry, num_queries, 1, /*merge=*/true);
    Stopwatch timer;
    for (const Event& e : stream) engine->OnEvent(e);
    const double secs = timer.ElapsedSeconds();
    if (rep == 0 || secs < m.seconds) m.seconds = secs;
    m.match_rows = engine->match_table(0).TotalRows();
    RecordMergeStats(*engine, &m);
  }
  m.events_per_sec = static_cast<double>(m.events) / m.seconds;
  return m;
}

Measurement RunBatched(const EventTypeRegistry& registry,
                       const std::vector<Event>& stream, size_t num_queries,
                       size_t ingest_threads, size_t reps, size_t batch_size,
                       bool merge) {
  // Pre-slice outside the timed region: a live source hands the engine ready
  // buffers, so slicing cost is the producer's, not the ingest path's.
  std::vector<EventBatch> slices;
  for (size_t i = 0; i < stream.size(); i += batch_size) {
    const size_t end = std::min(stream.size(), i + batch_size);
    slices.emplace_back(stream.begin() + static_cast<ptrdiff_t>(i),
                        stream.begin() + static_cast<ptrdiff_t>(end));
  }
  Measurement m;
  m.queries = num_queries;
  m.threads = ingest_threads;
  m.batched = true;
  m.merged = merge;
  m.events = stream.size();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto engine = MakeEngine(registry, num_queries, ingest_threads, merge);
    Stopwatch timer;
    for (const EventBatch& slice : slices) engine->IngestBatch(slice);
    const double secs = timer.ElapsedSeconds();
    if (rep == 0 || secs < m.seconds) m.seconds = secs;
    m.match_rows = engine->match_table(0).TotalRows();
    RecordMergeStats(*engine, &m);
  }
  m.events_per_sec = static_cast<double>(m.events) / m.seconds;
  return m;
}

const char* ModeName(const Measurement& m) {
  if (!m.batched) return "per-event";
  return m.merged ? "batched" : "no-merge";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t reps = 0;  // 0 = default per mode (full: 5, smoke: 1)
  std::string out_path = "BENCH_ingest_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = strtoull(argv[++i], nullptr, 10);
    } else {
      fprintf(stderr,
              "usage: bench_ingest_throughput [--smoke] [--out PATH] [--reps N]\n");
      return 2;
    }
  }
  if (reps == 0) reps = smoke ? 1 : 5;

  EventTypeRegistry registry;
  CheckOk(HadoopClusterSim::RegisterEventTypes(&registry), "RegisterEventTypes");

  // The paper's monitoring shape: per-node metric streams at 1 Hz dominate
  // the event volume, with a handful of concurrently running jobs supplying
  // the query-relevant JobStart/DataIO/JobEnd events. 30 nodes matches the
  // paper's evaluation cluster (a 30-node Hadoop cluster + Ganglia metrics).
  const int num_nodes = smoke ? 2 : 30;
  // Few jobs relative to the metric volume, as in the paper's case studies
  // (Hadoop jobs replayed against cluster-wide Ganglia streams).
  const int num_jobs = 3;
  // Full runs replay in archive-chunk-sized batches (the natural granularity
  // of backlog replay); smoke stays at the small default to exercise slicing.
  const size_t batch_size = smoke ? kDefaultIngestBatchSize : 4096;
  const Timestamp duration = smoke ? 300 : 3600;
  // Smoke keeps the 1000-query point: the CI regression gate
  // (scripts/check_ingest_regression.py) compares it against the committed
  // baseline, and it is cheap on the short smoke stream.
  const std::vector<size_t> query_counts =
      smoke ? std::vector<size_t>{10, 1000} : std::vector<size_t>{10, 100, 1000};
  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  const size_t hw_threads =
      std::max<size_t>(1, std::thread::hardware_concurrency());

  const std::vector<Event> stream =
      BuildStream(registry, num_nodes, num_jobs, duration);
  fprintf(stderr, "[bench] stream: %zu events, %d jobs, %zu hw threads\n",
          stream.size(), num_jobs, hw_threads);

  std::vector<Measurement> results;
  for (const size_t nq : query_counts) {
    fprintf(stderr, "[bench] %zu queries: per-event ...\n", nq);
    results.push_back(RunPerEvent(registry, stream, nq, reps));
    const Measurement base = results.back();  // copy: push_back reallocates
    fprintf(stderr, "[bench] %zu queries: batched no-merge x1 ...\n", nq);
    results.push_back(RunBatched(registry, stream, nq, 1, reps, batch_size,
                                 /*merge=*/false));
    if (results.back().match_rows != base.match_rows) {
      fprintf(stderr, "FAIL: no-merge produced %zu rows, per-event %zu\n",
              results.back().match_rows, base.match_rows);
      return 1;
    }
    double merged_1t_eps = 0;
    for (const size_t nt : thread_counts) {
      fprintf(stderr, "[bench] %zu queries: batched merged x%zu ...\n", nq, nt);
      results.push_back(RunBatched(registry, stream, nq, nt, reps, batch_size,
                                   /*merge=*/true));
      Measurement& m = results.back();
      if (m.match_rows != base.match_rows) {
        fprintf(stderr, "FAIL: batched x%zu produced %zu rows, per-event %zu\n",
                nt, m.match_rows, base.match_rows);
        return 1;
      }
      if (nt == 1) merged_1t_eps = m.events_per_sec;
      if (merged_1t_eps > 0) {
        m.scaling_efficiency = m.events_per_sec / merged_1t_eps /
                               static_cast<double>(nt);
      }
    }
  }

  printf("\nIngestion throughput (events/sec), %zu events/batch\n", batch_size);
  printf("%8s %8s %10s %14s %10s %8s %8s\n", "queries", "threads", "mode",
         "events/sec", "speedup", "scaleff", "groups");
  // Gates at the top query count: merged-vs-no-merge at 1 thread, and
  // top-thread-count-vs-1-thread within merged mode.
  double gate_merge = 0;
  double gate_scaling = 0;
  double gate_speedup = 0;  // legacy: merged top-threads vs per-event x1
  for (const Measurement& m : results) {
    double base_eps = 0;
    double nomerge_eps = 0;
    double merged_1t_eps = 0;
    for (const Measurement& b : results) {
      if (b.queries != m.queries) continue;
      if (!b.batched) base_eps = b.events_per_sec;
      if (b.batched && !b.merged) nomerge_eps = b.events_per_sec;
      if (b.batched && b.merged && b.threads == 1) merged_1t_eps = b.events_per_sec;
    }
    const double speedup = m.events_per_sec / base_eps;
    printf("%8zu %8zu %10s %14.0f %9.2fx %8.2f %8zu\n", m.queries, m.threads,
           ModeName(m), m.events_per_sec, speedup,
           m.batched && m.merged ? m.scaling_efficiency : 0.0, m.merge_groups);
    if (m.queries == query_counts.back() && m.batched && m.merged) {
      if (m.threads == 1 && nomerge_eps > 0) {
        gate_merge = m.events_per_sec / nomerge_eps;
      }
      if (m.threads == thread_counts.back()) {
        gate_speedup = speedup;
        if (merged_1t_eps > 0) gate_scaling = m.events_per_sec / merged_1t_eps;
      }
    }
  }
  const bool scaling_measurable = hw_threads >= thread_counts.back();
  printf("\nacceptance @ %zu queries:\n", query_counts.back());
  printf("  merged x1 vs no-merge x1      = %.2fx %s\n", gate_merge,
         smoke ? "(smoke run; gate applies to the full run)"
               : (gate_merge >= 4.0 ? "(PASS, >= 4x)" : "(FAIL, < 4x)"));
  printf("  merged x%zu vs merged x1       = %.2fx %s\n", thread_counts.back(),
         gate_scaling,
         smoke ? "(smoke run; gate applies to the full run)"
         : !scaling_measurable
             ? StrFormat("(not measurable: host has %zu hw threads)", hw_threads)
                   .c_str()
             : (gate_scaling >= 3.0 ? "(PASS, >= 3x)" : "(FAIL, < 3x)"));

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("ingest_throughput");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("batch_size");
  json.UInt(batch_size);
  json.Key("reps");
  json.UInt(reps);
  json.Key("stream_events");
  json.UInt(stream.size());
  json.Key("hardware_concurrency");
  json.UInt(hw_threads);
  json.Key("gate_merge_speedup_1t");
  json.Double(gate_merge);
  json.Key("gate_scaling_top_threads");
  json.Double(gate_scaling);
  json.Key("scaling_measurable");
  json.Bool(scaling_measurable);
  json.Key("gate_speedup_8t_vs_per_event");
  json.Double(gate_speedup);
  json.Key("results");
  json.BeginArray();
  for (const Measurement& m : results) {
    json.BeginObject();
    json.Key("queries");
    json.UInt(m.queries);
    json.Key("threads");
    json.UInt(m.threads);
    json.Key("mode");
    json.String(ModeName(m));
    json.Key("events");
    json.UInt(m.events);
    json.Key("seconds");
    json.Double(m.seconds);
    json.Key("events_per_sec");
    json.Double(m.events_per_sec);
    json.Key("match_rows");
    json.UInt(m.match_rows);
    json.Key("merge_groups");
    json.UInt(m.merge_groups);
    json.Key("merge_compression");
    json.Double(m.merge_compression);
    json.Key("scaling_efficiency");
    json.Double(m.scaling_efficiency);
    json.EndObject();
  }
  json.EndArray();
  json.MemoryObject(bench::SampleMemoryStats());
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());

  if (!smoke) {
    if (gate_merge < 4.0) return 1;
    if (scaling_measurable && gate_scaling < 3.0) return 1;
  }
  return 0;
}
