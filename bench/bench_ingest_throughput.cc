// Ingestion throughput: per-event OnEvent vs batched OnEventBatch, across
// ingest-thread counts and concurrent-query counts (the Fig. 20 axis).
//
// The batched path amortizes the per-event costs that dominate at high query
// counts: partition keys are extracted and hashed once per event instead of
// once per query per event, queries iterate the batch query-major (one query's
// runs stay hot in cache across 512 events instead of 1000 query states being
// touched per event), and match rows flush under one lock per query per batch.
//
// Emits BENCH_ingest_throughput.json. --smoke runs a seconds-scale subset for
// CI. Acceptance gate: batched ingest at 8 shards must reach >= 3x the
// events/sec of single-thread per-event ingest on the 1000-query workload
// (checked by the full run; reported either way).
//
// Each configuration is measured --reps times and the best (fastest) rep is
// reported: the bench often shares its host with noisy neighbors, and the
// minimum-time rep is the standard estimator of the undisturbed cost.
//
//   bench_ingest_throughput [--smoke] [--out PATH] [--reps N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "cep/engine.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "sim/hadoop_sim.h"

using namespace exstream;
using bench::CheckOk;
using bench::CheckResult;
using bench::JsonWriter;

namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

// A multi-job Hadoop cluster stream: mostly metric events (irrelevant to the
// Q1 replicas), plus job/IO events spread over `num_jobs` partitions.
std::vector<Event> BuildStream(const EventTypeRegistry& registry, int num_nodes,
                               int num_jobs, Timestamp duration) {
  HadoopSimConfig config;
  config.num_nodes = num_nodes;
  config.seed = 20170321;  // EDBT'17
  HadoopClusterSim sim(config, &registry);
  for (int j = 0; j < num_jobs; ++j) {
    HadoopJobConfig job;
    job.job_id = StrFormat("job-%03d", j);
    job.program = "wordcount";
    job.dataset = "ds";
    job.start_time = (duration * j) / num_jobs;
    sim.AddJob(job);
  }
  VectorSink sink;
  CheckOk(sim.Run(&sink).status(), "hadoop sim");
  return sink.TakeEvents();
}

CepEngine MakeEngine(const EventTypeRegistry& registry, size_t num_queries,
                     size_t ingest_threads) {
  CepEngineOptions options;
  options.ingest_threads = ingest_threads;
  CepEngine engine(&registry, options);
  for (size_t q = 0; q < num_queries; ++q) {
    CheckOk(engine.AddQueryText(kQ1, StrFormat("Q%zu", q)).status(), "AddQuery");
  }
  return engine;
}

struct Measurement {
  size_t queries = 0;
  size_t threads = 0;
  bool batched = false;
  size_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
  size_t match_rows = 0;  // cross-checks that all configs did the same work
};

Measurement RunPerEvent(const EventTypeRegistry& registry,
                        const std::vector<Event>& stream, size_t num_queries,
                        size_t reps) {
  Measurement m;
  m.queries = num_queries;
  m.threads = 1;
  m.batched = false;
  m.events = stream.size();
  for (size_t rep = 0; rep < reps; ++rep) {
    CepEngine engine = MakeEngine(registry, num_queries, 1);
    Stopwatch timer;
    for (const Event& e : stream) engine.OnEvent(e);
    const double secs = timer.ElapsedSeconds();
    if (rep == 0 || secs < m.seconds) m.seconds = secs;
    m.match_rows = engine.match_table(0).TotalRows();
  }
  m.events_per_sec = static_cast<double>(m.events) / m.seconds;
  return m;
}

Measurement RunBatched(const EventTypeRegistry& registry,
                       const std::vector<Event>& stream, size_t num_queries,
                       size_t ingest_threads, size_t reps, size_t batch_size) {
  // Pre-slice outside the timed region: a live source hands the engine ready
  // buffers, so slicing cost is the producer's, not the ingest path's.
  std::vector<EventBatch> slices;
  for (size_t i = 0; i < stream.size(); i += batch_size) {
    const size_t end = std::min(stream.size(), i + batch_size);
    slices.emplace_back(stream.begin() + static_cast<ptrdiff_t>(i),
                        stream.begin() + static_cast<ptrdiff_t>(end));
  }
  Measurement m;
  m.queries = num_queries;
  m.threads = ingest_threads;
  m.batched = true;
  m.events = stream.size();
  for (size_t rep = 0; rep < reps; ++rep) {
    CepEngine engine = MakeEngine(registry, num_queries, ingest_threads);
    Stopwatch timer;
    for (const EventBatch& slice : slices) engine.IngestBatch(slice);
    const double secs = timer.ElapsedSeconds();
    if (rep == 0 || secs < m.seconds) m.seconds = secs;
    m.match_rows = engine.match_table(0).TotalRows();
  }
  m.events_per_sec = static_cast<double>(m.events) / m.seconds;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t reps = 0;  // 0 = default per mode (full: 5, smoke: 1)
  std::string out_path = "BENCH_ingest_throughput.json";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = strtoull(argv[++i], nullptr, 10);
    } else {
      fprintf(stderr,
              "usage: bench_ingest_throughput [--smoke] [--out PATH] [--reps N]\n");
      return 2;
    }
  }
  if (reps == 0) reps = smoke ? 1 : 5;

  EventTypeRegistry registry;
  CheckOk(HadoopClusterSim::RegisterEventTypes(&registry), "RegisterEventTypes");

  // The paper's monitoring shape: per-node metric streams at 1 Hz dominate
  // the event volume, with a handful of concurrently running jobs supplying
  // the query-relevant JobStart/DataIO/JobEnd events. 30 nodes matches the
  // paper's evaluation cluster (a 30-node Hadoop cluster + Ganglia metrics).
  const int num_nodes = smoke ? 2 : 30;
  // Few jobs relative to the metric volume, as in the paper's case studies
  // (Hadoop jobs replayed against cluster-wide Ganglia streams).
  const int num_jobs = 3;
  // Full runs replay in archive-chunk-sized batches (the natural granularity
  // of backlog replay); smoke stays at the small default to exercise slicing.
  const size_t batch_size = smoke ? kDefaultIngestBatchSize : 4096;
  const Timestamp duration = smoke ? 300 : 3600;
  const std::vector<size_t> query_counts =
      smoke ? std::vector<size_t>{10} : std::vector<size_t>{10, 100, 1000};
  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};

  const std::vector<Event> stream =
      BuildStream(registry, num_nodes, num_jobs, duration);
  fprintf(stderr, "[bench] stream: %zu events, %d jobs\n", stream.size(), num_jobs);

  std::vector<Measurement> results;
  for (const size_t nq : query_counts) {
    fprintf(stderr, "[bench] %zu queries: per-event ...\n", nq);
    results.push_back(RunPerEvent(registry, stream, nq, reps));
    const Measurement base = results.back();  // copy: push_back reallocates
    for (const size_t nt : thread_counts) {
      fprintf(stderr, "[bench] %zu queries: batched x%zu ...\n", nq, nt);
      results.push_back(RunBatched(registry, stream, nq, nt, reps, batch_size));
      if (results.back().match_rows != base.match_rows) {
        fprintf(stderr, "FAIL: batched x%zu produced %zu rows, per-event %zu\n", nt,
                results.back().match_rows, base.match_rows);
        return 1;
      }
    }
  }

  printf("\nIngestion throughput (events/sec), %zu events/batch\n", batch_size);
  printf("%8s %8s %10s %14s %10s\n", "queries", "threads", "mode", "events/sec",
         "speedup");
  double gate_speedup = 0;  // batched x8 vs per-event x1 at the top query count
  for (const Measurement& m : results) {
    double base_eps = 0;
    for (const Measurement& b : results) {
      if (b.queries == m.queries && !b.batched) base_eps = b.events_per_sec;
    }
    const double speedup = m.events_per_sec / base_eps;
    printf("%8zu %8zu %10s %14.0f %9.2fx\n", m.queries, m.threads,
           m.batched ? "batched" : "per-event", m.events_per_sec, speedup);
    if (m.batched && m.queries == query_counts.back() &&
        m.threads == thread_counts.back()) {
      gate_speedup = speedup;
    }
  }
  printf("\nacceptance: batched x%zu @ %zu queries = %.2fx per-event baseline %s\n",
         thread_counts.back(), query_counts.back(), gate_speedup,
         smoke ? "(smoke run; gate applies to the full run)"
               : (gate_speedup >= 3.0 ? "(PASS, >= 3x)" : "(FAIL, < 3x)"));

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("ingest_throughput");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("batch_size");
  json.UInt(batch_size);
  json.Key("reps");
  json.UInt(reps);
  json.Key("stream_events");
  json.UInt(stream.size());
  json.Key("gate_speedup_8t_vs_per_event");
  json.Double(gate_speedup);
  json.Key("results");
  json.BeginArray();
  for (const Measurement& m : results) {
    json.BeginObject();
    json.Key("queries");
    json.UInt(m.queries);
    json.Key("threads");
    json.UInt(m.threads);
    json.Key("mode");
    json.String(m.batched ? "batched" : "per-event");
    json.Key("events");
    json.UInt(m.events);
    json.Key("seconds");
    json.Double(m.seconds);
    json.Key("events_per_sec");
    json.Double(m.events_per_sec);
    json.Key("match_rows");
    json.UInt(m.match_rows);
    json.EndObject();
  }
  json.EndArray();
  json.MemoryObject(bench::SampleMemoryStats());
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());

  if (!smoke && gate_speedup < 3.0) return 1;
  return 0;
}
