// Microbenchmarks (google-benchmark) for the performance-critical substrate:
// CEP event processing with growing query counts, archive append/scan,
// sliding-window aggregation, the entropy distance, and end-to-end feature
// reward computation.

#include <benchmark/benchmark.h>

#include "archive/archive.h"
#include "cep/engine.h"
#include "common/rng.h"
#include "explain/reward.h"
#include "features/builder.h"
#include "features/feature_space.h"
#include "sim/hadoop_sim.h"
#include "ts/aggregate.h"
#include "ts/entropy_distance.h"

namespace exstream {
namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

// Shared simulated stream, built once.
struct SharedStream {
  EventTypeRegistry registry;
  std::vector<Event> events;

  SharedStream() {
    (void)HadoopClusterSim::RegisterEventTypes(&registry);
    HadoopSimConfig config;
    config.num_nodes = 4;
    config.seed = 7;
    HadoopClusterSim sim(config, &registry);
    HadoopJobConfig job;
    job.job_id = "job-0";
    job.program = "bench";
    job.dataset = "bench";
    sim.AddJob(job);
    VectorSink sink;
    (void)sim.Run(&sink);
    events = sink.TakeEvents();
  }
};

SharedStream& Stream() {
  static SharedStream* stream = new SharedStream();
  return *stream;
}

void BM_CepEngineThroughput(benchmark::State& state) {
  SharedStream& s = Stream();
  CepEngine engine(&s.registry);
  for (int64_t q = 0; q < state.range(0); ++q) {
    (void)engine.AddQueryText(kQ1, "q" + std::to_string(q));
  }
  for (auto _ : state) {
    for (const Event& e : s.events) engine.OnEvent(e);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.events.size()));
}
BENCHMARK(BM_CepEngineThroughput)->Arg(1)->Arg(16)->Arg(256)->Arg(2000);

void BM_ArchiveAppend(benchmark::State& state) {
  SharedStream& s = Stream();
  for (auto _ : state) {
    EventArchive archive(&s.registry);
    for (const Event& e : s.events) archive.OnEvent(e);
    benchmark::DoNotOptimize(archive.TotalEvents());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.events.size()));
}
BENCHMARK(BM_ArchiveAppend);

void BM_ArchiveScan(benchmark::State& state) {
  SharedStream& s = Stream();
  EventArchive archive(&s.registry);
  for (const Event& e : s.events) archive.OnEvent(e);
  const EventTypeId mem = s.registry.IdOf("MemUsage").ValueOrDie();
  for (auto _ : state) {
    auto result = archive.Scan(mem, TimeInterval{100, 400});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ArchiveScan);

void BM_WindowAggregate(benchmark::State& state) {
  Rng rng(3);
  TimeSeries series;
  for (Timestamp t = 0; t < state.range(0); ++t) {
    (void)series.Append(t, rng.Gaussian(0, 1));
  }
  for (auto _ : state) {
    auto result = ApplyWindowAggregate(series, AggregateKind::kMean, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WindowAggregate)->Arg(1000)->Arg(100000);

void BM_EntropyDistance(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> abnormal;
  std::vector<double> reference;
  for (int64_t i = 0; i < state.range(0); ++i) {
    abnormal.push_back(rng.Gaussian(0, 1));
    reference.push_back(rng.Gaussian(1.5, 1));
  }
  for (auto _ : state) {
    auto result = ComputeEntropyDistance(abnormal, reference);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          2 * state.range(0));
}
BENCHMARK(BM_EntropyDistance)->Arg(100)->Arg(1000)->Arg(10000);

void BM_FeatureRewards(benchmark::State& state) {
  SharedStream& s = Stream();
  EventArchive archive(&s.registry);
  for (const Event& e : s.events) archive.OnEvent(e);
  FeatureBuilder builder(&archive);
  const auto specs = GenerateFeatureSpecs(s.registry);
  for (auto _ : state) {
    auto ranked = ComputeFeatureRewards(builder, specs, TimeInterval{60, 300},
                                        TimeInterval{300, 480});
    benchmark::DoNotOptimize(ranked);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(specs.size()));
}
BENCHMARK(BM_FeatureRewards);

}  // namespace
}  // namespace exstream

BENCHMARK_MAIN();
