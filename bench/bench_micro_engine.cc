// Microbenchmarks (google-benchmark) for the performance-critical substrate:
// CEP event processing with growing query counts, archive append/scan,
// sliding-window aggregation, the entropy distance, and end-to-end feature
// reward computation.

#include <algorithm>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_json.h"

#include "archive/archive.h"
#include "archive/serialization.h"
#include "cep/engine.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "explain/reward.h"
#include "features/builder.h"
#include "features/feature_space.h"
#include "sim/hadoop_sim.h"
#include "ts/aggregate.h"
#include "ts/entropy_distance.h"

namespace exstream {
namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

// Shared simulated stream, built once.
struct SharedStream {
  EventTypeRegistry registry;
  std::vector<Event> events;

  SharedStream() {
    (void)HadoopClusterSim::RegisterEventTypes(&registry);
    HadoopSimConfig config;
    config.num_nodes = 4;
    config.seed = 7;
    HadoopClusterSim sim(config, &registry);
    HadoopJobConfig job;
    job.job_id = "job-0";
    job.program = "bench";
    job.dataset = "bench";
    sim.AddJob(job);
    VectorSink sink;
    (void)sim.Run(&sink);
    events = sink.TakeEvents();
  }
};

SharedStream& Stream() {
  static SharedStream* stream = new SharedStream();
  return *stream;
}

void BM_CepEngineThroughput(benchmark::State& state) {
  SharedStream& s = Stream();
  CepEngine engine(&s.registry);
  for (int64_t q = 0; q < state.range(0); ++q) {
    (void)engine.AddQueryText(kQ1, "q" + std::to_string(q));
  }
  for (auto _ : state) {
    for (const Event& e : s.events) engine.OnEvent(e);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.events.size()));
}
BENCHMARK(BM_CepEngineThroughput)->Arg(1)->Arg(16)->Arg(256)->Arg(2000);

void BM_ArchiveAppend(benchmark::State& state) {
  SharedStream& s = Stream();
  for (auto _ : state) {
    EventArchive archive(&s.registry);
    for (const Event& e : s.events) archive.OnEvent(e);
    benchmark::DoNotOptimize(archive.TotalEvents());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(s.events.size()));
}
BENCHMARK(BM_ArchiveAppend);

void BM_ArchiveScan(benchmark::State& state) {
  SharedStream& s = Stream();
  EventArchive archive(&s.registry);
  for (const Event& e : s.events) archive.OnEvent(e);
  const EventTypeId mem = s.registry.IdOf("MemUsage").ValueOrDie();
  for (auto _ : state) {
    auto result = archive.Scan(mem, TimeInterval{100, 400});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ArchiveScan);

void BM_WindowAggregate(benchmark::State& state) {
  Rng rng(3);
  TimeSeries series;
  for (Timestamp t = 0; t < state.range(0); ++t) {
    (void)series.Append(t, rng.Gaussian(0, 1));
  }
  for (auto _ : state) {
    auto result = ApplyWindowAggregate(series, AggregateKind::kMean, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_WindowAggregate)->Arg(1000)->Arg(100000);

void BM_EntropyDistance(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> abnormal;
  std::vector<double> reference;
  for (int64_t i = 0; i < state.range(0); ++i) {
    abnormal.push_back(rng.Gaussian(0, 1));
    reference.push_back(rng.Gaussian(1.5, 1));
  }
  for (auto _ : state) {
    auto result = ComputeEntropyDistance(abnormal, reference);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          2 * state.range(0));
}
BENCHMARK(BM_EntropyDistance)->Arg(100)->Arg(1000)->Arg(10000);

// range(0) = worker threads; 1 runs the serial path (no pool).
void BM_FeatureRewards(benchmark::State& state) {
  SharedStream& s = Stream();
  EventArchive archive(&s.registry);
  for (const Event& e : s.events) archive.OnEvent(e);
  FeatureBuilder builder(&archive);
  const auto specs = GenerateFeatureSpecs(s.registry);
  const auto num_threads = static_cast<size_t>(state.range(0));
  std::unique_ptr<ThreadPool> pool;
  if (num_threads != 1) pool = std::make_unique<ThreadPool>(num_threads);
  for (auto _ : state) {
    auto ranked = ComputeFeatureRewards(builder, specs, TimeInterval{60, 300},
                                        TimeInterval{300, 480}, 5, pool.get());
    benchmark::DoNotOptimize(ranked);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(specs.size()));
}
BENCHMARK(BM_FeatureRewards)->Arg(1)->Arg(2)->Arg(0);  // 0 = hardware threads

// Serial-vs-parallel reward sweep written to BENCH_explain_micro.json so the
// perf trajectory of the hottest analysis loop is machine-readable.
void WriteRewardComparisonJson() {
  SharedStream& s = Stream();
  EventArchive archive(&s.registry);
  for (const Event& e : s.events) archive.OnEvent(e);
  FeatureBuilder builder(&archive);
  const auto specs = GenerateFeatureSpecs(s.registry);
  ThreadPool pool(0);
  auto time_best = [&](ThreadPool* p) {
    double best = 1e30;
    for (int r = 0; r < 5; ++r) {
      Stopwatch timer;
      auto ranked = ComputeFeatureRewards(builder, specs, TimeInterval{60, 300},
                                          TimeInterval{300, 480}, 5, p);
      benchmark::DoNotOptimize(ranked);
      best = std::min(best, timer.ElapsedSeconds());
    }
    return best;
  };
  const double serial = time_best(nullptr);
  const double parallel = time_best(&pool);

  exstream::bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("micro_engine");
  json.Key("feature_rewards");
  json.BeginObject();
  json.Key("num_specs");
  json.UInt(specs.size());
  json.Key("num_threads");
  json.UInt(pool.num_threads());
  json.Key("serial_s");
  json.Double(serial);
  json.Key("parallel_s");
  json.Double(parallel);
  json.Key("speedup");
  json.Double(serial / std::max(parallel, 1e-12));
  json.EndObject();
  json.MemoryObject(exstream::bench::SampleMemoryStats());
  json.EndObject();
  if (json.WriteFile("BENCH_explain_micro.json")) {
    fprintf(stderr, "[bench] wrote BENCH_explain_micro.json\n");
  }
}

// v1 (no checksum) vs v2 (CRC32) spill round-trip throughput, written to
// BENCH_fault_overhead.json. Guards the resilience layer's perf budget: the
// acceptance bound is overhead_pct < 10 for the checksummed format.
void WriteFaultOverheadJson() {
  SharedStream& s = Stream();
  auto time_best = [&](SpillFormat format, const char* path) {
    double best = 1e30;
    for (int r = 0; r < 5; ++r) {
      Stopwatch timer;
      (void)WriteEventsFile(path, s.events, format);
      auto read = ReadEventsFile(path);
      benchmark::DoNotOptimize(read);
      best = std::min(best, timer.ElapsedSeconds());
    }
    std::remove(path);
    return best;
  };
  const double v1 = time_best(SpillFormat::kV1, "/tmp/exstream_bench_spill_v1");
  const double v2 = time_best(SpillFormat::kV2, "/tmp/exstream_bench_spill_v2");

  exstream::bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("fault_overhead");
  json.Key("spill_roundtrip");
  json.BeginObject();
  json.Key("num_events");
  json.UInt(s.events.size());
  json.Key("v1_s");
  json.Double(v1);
  json.Key("v2_s");
  json.Double(v2);
  json.Key("overhead_pct");
  json.Double((v2 / std::max(v1, 1e-12) - 1.0) * 100.0);
  json.EndObject();
  json.MemoryObject(exstream::bench::SampleMemoryStats());
  json.EndObject();
  if (json.WriteFile("BENCH_fault_overhead.json")) {
    fprintf(stderr, "[bench] wrote BENCH_fault_overhead.json\n");
  }
}

}  // namespace
}  // namespace exstream

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  exstream::WriteRewardComparisonJson();
  exstream::WriteFaultOverheadJson();
  return 0;
}
