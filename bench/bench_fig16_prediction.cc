// Reproduces Fig. 16: prediction power comparison on the 8 Hadoop workloads.
//
// Each method is trained on the annotated anomaly and evaluated (F-measure)
// on a held-out anomalous job of the same type. Expected shape: XStream,
// logistic regression, and decision tree all high (mostly > 0.9); XStream
// within a few percent of the best.

#include "bench_util.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  const std::vector<WorkloadDef> defs = HadoopWorkloads();
  const std::vector<MethodComparison> comparisons = CompareAll(defs);

  PrintMethodTable("Figure 16: prediction power (F-measure on held-out data)",
                   "%18.3f", defs, comparisons,
                   [](const MethodResult& r) { return r.prediction_f1; });

  const std::vector<std::string> methods = {
      kMethodXStream, kMethodXStreamCluster, kMethodLogReg,
      kMethodDTree,   kMethodVote,           kMethodFusion};
  printf("\nmean prediction F-measure per method:\n");
  for (const auto& m : methods) {
    double mean = 0.0;
    for (const auto& cmp : comparisons) mean += FindMethod(cmp, m).prediction_f1;
    printf("  %-20s %.3f\n", m.c_str(),
           mean / static_cast<double>(comparisons.size()));
  }
  return 0;
}
