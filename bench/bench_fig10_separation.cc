// Reproduces Fig. 10: the separating-power visualization behind the entropy
// distance. Four features of the W1 (high-memory) anomaly are shown as their
// sorted-value segmentations — from perfect separation (reward 1) to heavy
// mixing (reward near 0) — together with their rewards.
//
// Paper's four features: (1) free memory size, (2) idle CPU percentage,
// (3) CPU percentage used by IO, (4) system load, with rewards
// 1, 1, 0.31, 0.18. Under a high-memory anomaly our analogous set is the two
// memory signals (affected -> reward 1) and two CPU-side signals
// (unaffected -> low rewards).

#include "bench_util.h"

#include "features/builder.h"
#include "ts/entropy_distance.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  auto run = BuildRun(HadoopWorkloads()[0]);  // W1: high memory
  FeatureBuilder builder(run->archive.get());
  const auto specs = GenerateFeatureSpecs(*run->registry, run->FeatureSpace());

  const std::vector<std::string> picks = {
      "MemUsage.memFree.mean@10", "MemUsage.swapFree.mean@10",
      "CpuUsage.cpuUsage.mean@10", "CpuUsage.load.mean@10"};

  printf("Figure 10 reproduction: separating power of four features\n");
  for (size_t i = 0; i < picks.size(); ++i) {
    auto spec = CheckResult(FindSpecByName(specs, picks[i]), picks[i].c_str());
    auto fa = CheckResult(builder.BuildOne(spec, run->annotation.abnormal.range),
                          "build abnormal");
    auto fr = CheckResult(builder.BuildOne(spec, run->annotation.reference.range),
                          "build reference");
    const EntropyDistanceResult res =
        ComputeEntropyDistance(fa.series, fr.series);

    printf("\nfeature %zu: %s   reward D(f) = %.3f\n", i + 1, picks[i].c_str(),
           res.distance);
    printf("  class entropy=%.4f  segmentation=%.4f  regularized=%.4f\n",
           res.class_entropy, res.segmentation_entropy, res.regularized_entropy);
    printf("  sorted-value segments (class: value range, #points):\n");
    for (const Segment& s : res.segments) {
      printf("    %-9s [%12.4g, %12.4g]  A=%zu R=%zu\n",
             std::string(SegmentClassToString(s.cls)).c_str(), s.min_value,
             s.max_value, s.abnormal_points, s.reference_points);
    }
  }
  return 0;
}
