// Tiered-archive bench: on-disk compression of the v4 spill format vs the
// uncompressed v3 columnar layout, and wide-interval feature-build + Explain
// latency answered from downsampled aggregate tiers vs exact raw rows.
//
// Correctness is checked before timing: the tiered Explain must keep every
// abnormal-interval feature series bitwise identical to the exact run (tiers
// only ever answer reference-side scans), and the tiered pass must actually
// serve tier segments (otherwise the timing compares identical code paths).
//
// Emits BENCH_archive_tiers.json. Acceptance gates, full mode only:
//   - v4 spill bytes at least 5x smaller than v3 across the simulator archive
//   - tiered wide-interval Explain no slower than the exact one
// --smoke shrinks the workload for CI; gates then only print (the
// machine-independent subset is re-checked by scripts/check_archive_tiers.py).

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"

#include "archive/archive.h"
#include "archive/serialization.h"
#include "common/stopwatch.h"
#include "explain/engine.h"
#include "features/builder.h"
#include "features/feature_space.h"
#include "io/file_util.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

struct SpillSizes {
  size_t v1 = 0;
  size_t v3 = 0;
  size_t v4 = 0;
  size_t events = 0;
};

// Serializes every archived event through each spill format and totals the
// byte counts — exactly what SpillTo would write per format.
SpillSizes MeasureSpillSizes(const std::vector<EventArchive::TypeScan>& scans) {
  SpillSizes sizes;
  for (const auto& scan : scans) {
    sizes.events += scan.events.size();
    sizes.v1 += SerializeEvents(scan.events, SpillFormat::kV1).size();
    sizes.v3 += SerializeEvents(scan.events, SpillFormat::kV3).size();
    sizes.v4 += SerializeEvents(scan.events, SpillFormat::kV4).size();
  }
  return sizes;
}

double Seconds(Stopwatch& timer) { return timer.ElapsedSeconds(); }

// Best-of-reps wall time of one thunk.
template <typename Fn>
double TimeBest(size_t reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    best = std::min(best, Seconds(timer));
  }
  return best;
}

// Bitwise comparison of the abnormal-interval series of two reports, keyed by
// feature name (reference-side rewards differ under tiering, so the ranked
// order may legitimately differ).
bool AbnormalSeriesIdentical(const ExplanationReport& a, const ExplanationReport& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  std::map<std::string, const RankedFeature*> by_name;
  for (const RankedFeature& f : a.ranked) by_name[f.spec.Name()] = &f;
  for (const RankedFeature& f : b.ranked) {
    auto it = by_name.find(f.spec.Name());
    if (it == by_name.end()) return false;
    if (it->second->abnormal_series.times() != f.abnormal_series.times()) return false;
    if (it->second->abnormal_series.values() != f.abnormal_series.values()) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t reps = 0;  // 0 = default per mode (full: 5, smoke: 2)
  std::string out_path = "BENCH_archive_tiers.json";
  std::string spill_dir = "/tmp/exstream_bench_tiers";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      spill_dir = argv[++i];
    } else {
      fprintf(stderr,
              "usage: bench_archive_tiers [--smoke] [--out PATH] [--reps N] "
              "[--spill-dir DIR]\n");
      return 2;
    }
  }
  if (reps == 0) reps = smoke ? 2 : 5;

  WorkloadRunOptions options;
  options.num_nodes = smoke ? 4 : 16;
  options.num_normal_jobs = smoke ? 2 : 4;
  const WorkloadDef def = HadoopWorkloads()[0];
  fprintf(stderr, "[bench] building %s (%d nodes) ...\n", def.name.c_str(),
          options.num_nodes);
  auto run = BuildRun(def, options);

  // Pull the full simulated archive out as rows; they feed both the
  // format-size measurement and the tiered replica archive.
  const TimeInterval everything{std::numeric_limits<Timestamp>::min() / 2,
                                std::numeric_limits<Timestamp>::max() / 2};
  const auto scans =
      CheckResult(run->archive->ScanAll(everything), "full archive scan");
  Timestamp first_ts = std::numeric_limits<Timestamp>::max();
  Timestamp last_ts = std::numeric_limits<Timestamp>::min();
  for (const auto& scan : scans) {
    if (scan.events.empty()) continue;
    first_ts = std::min(first_ts, scan.events.front().ts);
    last_ts = std::max(last_ts, scan.events.back().ts);
  }

  fprintf(stderr, "[bench] measuring spill format sizes ...\n");
  const SpillSizes sizes = MeasureSpillSizes(scans);
  const double ratio_v3_v4 =
      static_cast<double>(sizes.v3) / std::max<size_t>(sizes.v4, 1);
  const double ratio_v1_v4 =
      static_cast<double>(sizes.v1) / std::max<size_t>(sizes.v4, 1);

  // Replica archive tuned for tiering: every sealed chunk spills (cold reads
  // are the quantity under test) and carries one aggregate tier whose window
  // is the gcd of the workload's feature windows, so every windowed feature
  // spec can be answered from the tier.
  const FeatureSpaceOptions space = run->FeatureSpace();
  Timestamp tier_window = 0;
  for (const Timestamp w : space.windows) tier_window = std::gcd(tier_window, w);
  if (tier_window <= 0) tier_window = 10;
  CheckOk(EnsureDir(spill_dir), "spill dir");
  ArchiveOptions aopts;
  aopts.spill_dir = spill_dir;
  aopts.chunk_capacity = 512;  // chunks must seal for tiers to exist
  aopts.max_resident_chunks = 1;
  aopts.tier_windows = {tier_window, tier_window * 6};
  EventArchive tiered_archive(run->registry.get(), aopts);
  for (const auto& scan : scans) {
    for (const Event& e : scan.events) {
      CheckOk(tiered_archive.Append(e), "replica append");
    }
  }

  // Wide reference interval: everything before the anomaly — "compare the
  // anomaly against all archived history", the access pattern tiering exists
  // to make cheap.
  AnomalyAnnotation wide = run->annotation;
  wide.reference.range =
      TimeInterval{first_ts, run->annotation.abnormal.range.lower - 1};
  const std::vector<FeatureSpec> specs =
      GenerateFeatureSpecs(*run->registry, space);

  // Correctness + counter check before timing.
  const FeatureBuilder builder(&tiered_archive);
  const auto build_exact = CheckResult(
      builder.Build(specs, wide.reference.range), "exact build");
  const size_t tier_served_before = tiered_archive.tier_segments_served();
  const auto build_tiered = CheckResult(
      builder.Build(specs, wide.reference.range, nullptr, nullptr, nullptr,
                    /*allow_tiers=*/true),
      "tiered build");
  const size_t tier_segments =
      tiered_archive.tier_segments_served() - tier_served_before;
  if (tier_segments == 0) {
    fprintf(stderr, "FAIL: tiered build served no tier segments (tier window "
            "%lld)\n", static_cast<long long>(tier_window));
    return 1;
  }
  if (build_exact.size() != build_tiered.size()) {
    fprintf(stderr, "FAIL: tiered build feature count diverged\n");
    return 1;
  }

  ExplainOptions exact_opts = run->DefaultExplainOptions();
  exact_opts.tiered_reference_scans = false;
  ExplainOptions tiered_opts = run->DefaultExplainOptions();
  tiered_opts.tiered_reference_scans = true;
  const ExplanationEngine exact_engine(&tiered_archive, run->partitions.get(),
                                       run->MakeSeriesProvider(), exact_opts);
  const ExplanationEngine tiered_engine(&tiered_archive, run->partitions.get(),
                                        run->MakeSeriesProvider(), tiered_opts);
  const ExplanationReport exact_report =
      CheckResult(exact_engine.Explain(wide), "exact explain");
  const ExplanationReport tiered_report =
      CheckResult(tiered_engine.Explain(wide), "tiered explain");
  const bool abnormal_identical =
      AbnormalSeriesIdentical(exact_report, tiered_report);
  if (!abnormal_identical) {
    fprintf(stderr, "FAIL: tiered Explain changed abnormal-interval series\n");
    return 1;
  }

  // Timing uses the windowed-only feature space: tiering accelerates the
  // smoothed aggregates (the paper's generated features — means and
  // frequencies); raw-series specs read exact rows in BOTH paths by design,
  // so including them only adds an identical constant to each side. The
  // correctness pass above keeps raw specs in, which is the stronger check.
  FeatureSpaceOptions timing_space = space;
  timing_space.include_raw = false;
  const std::vector<FeatureSpec> timing_specs =
      GenerateFeatureSpecs(*run->registry, timing_space);
  ExplainOptions exact_timing_opts = exact_opts;
  exact_timing_opts.feature_space = timing_space;
  ExplainOptions tiered_timing_opts = tiered_opts;
  tiered_timing_opts.feature_space = timing_space;
  const ExplanationEngine exact_timing_engine(
      &tiered_archive, run->partitions.get(), run->MakeSeriesProvider(),
      exact_timing_opts);
  const ExplanationEngine tiered_timing_engine(
      &tiered_archive, run->partitions.get(), run->MakeSeriesProvider(),
      tiered_timing_opts);

  fprintf(stderr, "[bench] timing wide-interval feature build ...\n");
  const double build_exact_s = TimeBest(reps, [&] {
    CheckResult(builder.Build(timing_specs, wide.reference.range),
                "exact build");
  });
  const double build_tiered_s = TimeBest(reps, [&] {
    CheckResult(builder.Build(timing_specs, wide.reference.range, nullptr,
                              nullptr, nullptr, /*allow_tiers=*/true),
                "tiered build");
  });
  fprintf(stderr, "[bench] timing wide-interval Explain ...\n");
  const double explain_exact_s = TimeBest(reps, [&] {
    CheckResult(exact_timing_engine.Explain(wide), "exact explain");
  });
  const double explain_tiered_s = TimeBest(reps, [&] {
    CheckResult(tiered_timing_engine.Explain(wide), "tiered explain");
  });
  const double build_speedup = build_exact_s / std::max(build_tiered_s, 1e-12);
  const double explain_speedup =
      explain_exact_s / std::max(explain_tiered_s, 1e-12);

  printf("\nArchive tiering & compression, %s (%zu events, %zu specs)\n",
         def.name.c_str(), sizes.events, specs.size());
  printf("%-28s %14s\n", "spill format", "bytes");
  printf("%-28s %14zu\n", "v1 (rows)", sizes.v1);
  printf("%-28s %14zu\n", "v3 (columnar)", sizes.v3);
  printf("%-28s %14zu\n", "v4 (compressed columnar)", sizes.v4);
  printf("compression: v4 = %.2fx smaller than v3, %.2fx smaller than v1\n",
         ratio_v3_v4, ratio_v1_v4);
  printf("\n%-28s %14s %14s\n", "wide-interval latency", "exact s", "tiered s");
  printf("%-28s %14.5f %14.5f  (%.2fx)\n", "feature build", build_exact_s,
         build_tiered_s, build_speedup);
  printf("%-28s %14.5f %14.5f  (%.2fx)\n", "Explain", explain_exact_s,
         explain_tiered_s, explain_speedup);
  printf("tier segments served per build: %zu; abnormal series bit-identical\n",
         tier_segments);
  printf("acceptance: compression %.2fx %s, tiered Explain %.2fx %s\n",
         ratio_v3_v4,
         smoke ? "(smoke; gate applies to the full run)"
               : (ratio_v3_v4 >= 5.0 ? "(PASS, >= 5x)" : "(FAIL, < 5x)"),
         explain_speedup,
         smoke ? "(smoke; gate applies to the full run)"
               : (explain_speedup >= 1.0 ? "(PASS, >= 1x)" : "(FAIL, < 1x)"));

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("archive_tiers");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("workload");
  json.String(def.name);
  json.Key("num_nodes");
  json.UInt(static_cast<size_t>(options.num_nodes));
  json.Key("events_total");
  json.UInt(sizes.events);
  json.Key("num_specs");
  json.UInt(specs.size());
  json.Key("tier_window");
  json.UInt(static_cast<size_t>(tier_window));
  json.Key("v1_bytes");
  json.UInt(sizes.v1);
  json.Key("v3_bytes");
  json.UInt(sizes.v3);
  json.Key("v4_bytes");
  json.UInt(sizes.v4);
  json.Key("compression_ratio_v3_over_v4");
  json.Double(ratio_v3_v4);
  json.Key("compression_ratio_v1_over_v4");
  json.Double(ratio_v1_v4);
  json.Key("build_exact_s");
  json.Double(build_exact_s);
  json.Key("build_tiered_s");
  json.Double(build_tiered_s);
  json.Key("build_speedup");
  json.Double(build_speedup);
  json.Key("explain_exact_s");
  json.Double(explain_exact_s);
  json.Key("explain_tiered_s");
  json.Double(explain_tiered_s);
  json.Key("explain_speedup");
  json.Double(explain_speedup);
  json.Key("tier_segments_served");
  json.UInt(tier_segments);
  json.Key("abnormal_series_identical");
  json.Bool(abnormal_identical);
  json.MemoryObject(SampleMemoryStats());
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());

  if (!smoke && (ratio_v3_v4 < 5.0 || explain_speedup < 1.0)) return 1;
  return 0;
}
