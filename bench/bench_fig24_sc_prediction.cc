// Reproduces Fig. 24: supply-chain use case, prediction power comparison.
//
// Expected shape: XStream's explanations predict held-out faulty products as
// well as the state-of-the-art prediction techniques.

#include "bench_util.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  const std::vector<WorkloadDef> defs = SupplyChainWorkloads();
  const std::vector<MethodComparison> comparisons = CompareAll(defs);
  PrintMethodTable(
      "Figure 24: supply chain prediction power (F-measure on held-out data)",
      "%18.3f", defs, comparisons,
      [](const MethodResult& r) { return r.prediction_f1; });
  return 0;
}
