// Reproduces Fig. 1(a)/1(b) and Fig. 4: the data-queuing-size visualization
// of query Q1 for a normal job and for a job suffering high-memory
// interference, plus the annotated intervals.
//
// Expected shape: the normal job's queue rises to an early peak, declines /
// stabilizes, and drops to zero; the anomalous job shows a long initial
// period of slow growth and a completion delayed by hundreds of seconds.

#include <algorithm>

#include "bench_util.h"

#include "viz/ascii_chart.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

void PrintSeries(const char* title, const TimeSeries& series, Timestamp origin) {
  printf("\n%s (%zu points; time is seconds since job start)\n", title,
         series.size());
  printf("%10s %14s\n", "t", "queued MB");
  const size_t step = std::max<size_t>(1, series.size() / 24);
  for (size_t i = 0; i < series.size(); i += step) {
    printf("%10lld %14.1f\n", static_cast<long long>(series.time(i) - origin),
           series.value(i));
  }
  printf("%10lld %14.1f\n",
         static_cast<long long>(series.end_time() - origin),
         series.values().back());
}

}  // namespace

int main() {
  auto run = BuildRun(HadoopWorkloads()[0]);  // W1: high memory
  const MatchTable& matches = run->engine->match_table(run->monitor_query);

  auto normal = CheckResult(matches.ExtractSeries("job-000", run->monitor_column),
                            "normal series");
  auto abnormal = CheckResult(
      matches.ExtractSeries(run->annotation.abnormal.partition, run->monitor_column),
      "abnormal series");

  printf("Figure 1 reproduction: data queuing size under query Q1\n");
  PrintSeries("Fig 1(a): normal job (job-000)", normal, normal.start_time());
  PrintSeries("Fig 1(b): abnormal job (job-anomaly, high-memory interference)",
              abnormal, abnormal.start_time());

  printf("\nFig 1(a) rendered (y: queued MB, x: time):\n%s",
         RenderSeries(normal).c_str());
  printf("\nFig 1(b) rendered, with the Fig. 4 annotations marked (# = I_A/I_R):\n%s",
         RenderAnnotatedSeries(abnormal,
                               {run->annotation.abnormal.range,
                                run->annotation.reference.range})
             .c_str());

  const Timestamp normal_len = normal.end_time() - normal.start_time();
  const Timestamp abnormal_len = abnormal.end_time() - abnormal.start_time();
  printf("\njob duration: normal %lld s, abnormal %lld s (delayed by %lld s)\n",
         static_cast<long long>(normal_len), static_cast<long long>(abnormal_len),
         static_cast<long long>(abnormal_len - normal_len));

  const Timestamp origin = abnormal.start_time();
  printf("\nFig 4 annotations (relative to job start):\n");
  printf("  I_A = [%lld, %lld]   I_R = [%lld, %lld]\n",
         static_cast<long long>(run->annotation.abnormal.range.lower - origin),
         static_cast<long long>(run->annotation.abnormal.range.upper - origin),
         static_cast<long long>(run->annotation.reference.range.lower - origin),
         static_cast<long long>(run->annotation.reference.range.upper - origin));
  return 0;
}
