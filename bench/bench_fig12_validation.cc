// Reproduces Fig. 12: the validated features after false-positive removal,
// showing each surviving feature's reward on the annotated partition versus
// on the full augmented (auto-labeled) partition set.
//
// Expected shape: memory-related features keep high rewards in both columns;
// coincidental separators (uptime, task counters) collapse in the "all"
// column and are removed.

#include "bench_util.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  auto run = BuildRun(HadoopWorkloads()[0]);  // W1: high memory
  ExplanationEngine engine = run->MakeExplanationEngine(run->DefaultExplainOptions());
  auto report = CheckResult(engine.Explain(run->annotation), "explain");

  printf("Figure 12 reproduction: feature validation on related partitions\n\n");
  printf("related partitions=%zu; auto-labeled intervals: abnormal=%zu "
         "reference=%zu discarded=%zu\n\n",
         report.num_related_partitions, report.num_labeled_abnormal,
         report.num_labeled_reference, report.num_discarded);

  printf("-- validated features (kept) --\n");
  printf("%-44s %18s %14s\n", "Feature", "Reward (annotated)", "Reward (all)");
  for (const ValidatedFeature& v : report.validation) {
    if (!v.kept) continue;
    printf("%-44s %18.2f %14.2f\n", v.feature.spec.Name().c_str(),
           v.annotated_reward, v.validated_reward);
  }

  printf("\n-- removed false positives --\n");
  printf("%-44s %18s %14s\n", "Feature", "Reward (annotated)", "Reward (all)");
  for (const ValidatedFeature& v : report.validation) {
    if (v.kept) continue;
    printf("%-44s %18.2f %14.2f\n", v.feature.spec.Name().c_str(),
           v.annotated_reward, v.validated_reward);
  }

  size_t kept = 0;
  for (const auto& v : report.validation) kept += v.kept ? 1 : 0;
  printf("\n%zu of %zu Step-1 survivors validated (feature space: %zu)\n", kept,
         report.validation.size(), report.ranked.size());
  return 0;
}
