// Reproduces Fig. 8: accumulative mutual-information gain under different
// feature-selection strategies (Sec. 2.4).
//
// Expected shape: the greedy strategies dominate (reach high joint MI with
// the fewest features) but still need ~20+ features before the curve levels
// off — too many for a human-readable explanation, which motivates XStream's
// heuristic pipeline.

#include "bench_util.h"

#include "features/builder.h"
#include "ml/dataset.h"
#include "ml/mutual_info.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  auto run = BuildRun(HadoopWorkloads()[0]);  // W1: high memory
  const auto specs = GenerateFeatureSpecs(*run->registry, run->FeatureSpace());
  FeatureBuilder builder(run->archive.get());

  // The MI analysis runs over pooled labeled data: both anomalous jobs'
  // annotated intervals (widened by 60 s to emulate annotation imprecision)
  // as the abnormal class, and their reference intervals plus a whole normal
  // job as the reference class. Pooling across intervals and partitions is
  // what keeps any single feature from predicting the labels perfectly
  // (time-monotone counters separate any two intervals of ONE partition), so
  // joint MI accumulates over many features — the regime Fig. 8 shows.
  auto widened = [](TimeInterval iv) {
    iv.lower -= 60;
    iv.upper += 60;
    return iv;
  };
  const std::vector<TimeInterval> abnormal_intervals = {
      widened(run->annotation.abnormal.range),
      widened(run->test_annotation.abnormal.range)};
  const std::vector<TimeInterval> reference_intervals = {
      run->annotation.reference.range, run->test_annotation.reference.range,
      {0, 479}};  // the first normal job

  Dataset data;
  for (size_t ai = 0; ai < abnormal_intervals.size(); ++ai) {
    auto abnormal =
        CheckResult(builder.Build(specs, abnormal_intervals[ai]), "build I_A");
    auto reference =
        CheckResult(builder.Build(specs, reference_intervals[ai]), "build I_R");
    Dataset part = CheckResult(BuildDataset(abnormal, reference, 64), "dataset");
    if (data.feature_names.empty()) data.feature_names = part.feature_names;
    data.rows.insert(data.rows.end(), part.rows.begin(), part.rows.end());
    data.labels.insert(data.labels.end(), part.labels.begin(), part.labels.end());
  }
  {  // extra reference interval (the normal job), labeled 0
    auto empty_abnormal = CheckResult(
        builder.Build(specs, TimeInterval{reference_intervals[2].lower,
                                          reference_intervals[2].lower}),
        "empty");
    auto reference =
        CheckResult(builder.Build(specs, reference_intervals[2]), "build ref");
    Dataset part = CheckResult(BuildDataset(empty_abnormal, reference, 64), "dataset");
    data.rows.insert(data.rows.end(), part.rows.begin(), part.rows.end());
    data.labels.insert(data.labels.end(), part.labels.begin(), part.labels.end());
  }

  const std::vector<MiStrategy> strategies = {
      MiStrategy::kGreedyFirstTie, MiStrategy::kGreedyLastTie,
      MiStrategy::kSingleMiRank, MiStrategy::kRandom, MiStrategy::kReverseRank};

  MiCurveOptions options;
  options.max_features = 40;
  std::vector<MiGainCurve> curves;
  for (const MiStrategy s : strategies) {
    fprintf(stderr, "[bench] computing curve for %s ...\n",
            std::string(MiStrategyToString(s)).c_str());
    curves.push_back(ComputeMiGainCurve(data, s, options));
  }

  printf("Figure 8 reproduction: accumulative mutual information gain (bits)\n\n");
  printf("%9s", "#features");
  for (const MiStrategy s : strategies) {
    printf(" %18s", std::string(MiStrategyToString(s)).c_str());
  }
  printf("\n");
  for (size_t k = 0; k < options.max_features; ++k) {
    printf("%9zu", k + 1);
    for (const auto& c : curves) {
      if (k < c.accumulated_mi.size()) {
        printf(" %18.4f", c.accumulated_mi[k]);
      } else {
        printf(" %18s", "-");
      }
    }
    printf("\n");
  }

  printf("\nfeatures selected before the curve levels off (gain < 1e-3 bits):\n");
  for (const auto& c : curves) {
    printf("  %-20s %zu\n", std::string(MiStrategyToString(c.strategy)).c_str(),
           LevelOffIndex(c));
  }
  printf("\nEven the best greedy strategy selects far more features than a concise\n"
         "explanation allows (Sec. 2.4).\n");
  return 0;
}
