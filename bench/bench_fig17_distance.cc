// Reproduces Fig. 17: distance-function comparison. For each of the 8 Hadoop
// workloads and each distance function, all features are sorted by the
// distance between their abnormal- and reference-interval series
// (descending); the score is the number of top-ranked features that must be
// taken to cover every ground-truth signal.
//
// Expected shape: the entropy distance needs the fewest features on every
// workload; LCSS is competitive on some workloads but not robust; lock-step
// measures (Manhattan/Euclidean) need many features.

#include <algorithm>

#include "bench_util.h"

#include "explain/reward.h"
#include "features/builder.h"
#include "ml/metrics.h"
#include "ts/distance.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

// Rank position (1-based) needed to cover all ground-truth signals given a
// descending-score feature ordering; returns names.size()+1 when a signal is
// never covered.
size_t FeaturesToCoverTruth(const std::vector<std::string>& ordered_names,
                            const std::vector<std::string>& ground_truth) {
  size_t worst = 0;
  for (const std::string& g : ground_truth) {
    size_t pos = ordered_names.size() + 1;
    for (size_t i = 0; i < ordered_names.size(); ++i) {
      if (SameUnderlyingSignal(ordered_names[i], g)) {
        pos = i + 1;
        break;
      }
    }
    worst = std::max(worst, pos);
  }
  return worst;
}

}  // namespace

int main() {
  const std::vector<WorkloadDef> defs = HadoopWorkloads();
  std::vector<std::string> functions = {"entropy"};
  for (const std::string& n : BaselineDistanceNames()) functions.push_back(n);

  printf("Figure 17 reproduction: #features needed to cover ground truth\n\n");
  printf("%-34s", "workload");
  for (const auto& f : functions) printf(" %10s", f.c_str());
  printf("\n");

  std::vector<double> totals(functions.size(), 0.0);
  for (const WorkloadDef& def : defs) {
    fprintf(stderr, "[bench] %s ...\n", def.name.c_str());
    auto run = BuildRun(def);
    const auto specs = GenerateFeatureSpecs(*run->registry, run->FeatureSpace());
    FeatureBuilder builder(run->archive.get());
    auto abnormal = CheckResult(builder.Build(specs, run->annotation.abnormal.range),
                                "build I_A");
    auto reference = CheckResult(builder.Build(specs, run->annotation.reference.range),
                                 "build I_R");

    printf("%-34s", def.name.c_str());
    for (size_t fi = 0; fi < functions.size(); ++fi) {
      std::vector<std::pair<double, std::string>> scored;
      if (functions[fi] == "entropy") {
        const auto ranked = RankFeatures(abnormal, reference);
        for (const auto& r : ranked) scored.emplace_back(r.reward(), r.spec.Name());
      } else {
        auto dist = CheckResult(MakeDistanceByName(functions[fi]), "distance");
        for (size_t i = 0; i < specs.size(); ++i) {
          const double d = dist->Distance(abnormal[i].series, reference[i].series);
          scored.emplace_back(std::isfinite(d) ? d : 0.0, specs[i].Name());
        }
      }
      std::stable_sort(scored.begin(), scored.end(),
                       [](const auto& a, const auto& b) { return a.first > b.first; });
      std::vector<std::string> ordered;
      ordered.reserve(scored.size());
      for (const auto& [_, name] : scored) ordered.push_back(name);
      const size_t needed = FeaturesToCoverTruth(ordered, run->ground_truth);
      totals[fi] += static_cast<double>(needed);
      printf(" %10zu", needed);
    }
    printf("\n");
  }

  printf("%-34s", "mean");
  for (size_t fi = 0; fi < functions.size(); ++fi) {
    printf(" %10.1f", totals[fi] / static_cast<double>(defs.size()));
  }
  printf("\n");

  const double entropy_mean = totals[0] / static_cast<double>(defs.size());
  double best_other = 1e18;
  for (size_t fi = 1; fi < functions.size(); ++fi) {
    best_other = std::min(best_other, totals[fi] / static_cast<double>(defs.size()));
  }
  printf("\nentropy distance needs %.1f features on average vs %.1f for the best\n"
         "baseline (%.1f%% reduction)\n",
         entropy_mean, best_other, 100.0 * (1.0 - entropy_mean / best_other));
  return 0;
}
