// Minimal JSON emission for machine-readable bench artifacts (BENCH_*.json),
// so successive PRs can track the perf trajectory without parsing tables.

#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"

namespace exstream::bench {

/// \brief Append-only JSON writer: the caller provides structure through
/// Begin/End calls; commas and string escaping are handled here.
class JsonWriter {
 public:
  void BeginObject() {
    Sep();
    out_ += '{';
    stack_.push_back(1);
  }
  void EndObject() {
    out_ += '}';
    stack_.pop_back();
  }
  void BeginArray() {
    Sep();
    out_ += '[';
    stack_.push_back(1);
  }
  void EndArray() {
    out_ += ']';
    stack_.pop_back();
  }
  void Key(std::string_view name) {
    Sep();
    AppendQuoted(name);
    out_ += ':';
    after_key_ = true;
  }
  void String(std::string_view value) {
    Sep();
    AppendQuoted(value);
  }
  void Double(double value) {
    Sep();
    out_ += StrFormat("%.17g", value);
  }
  void UInt(size_t value) {
    Sep();
    out_ += StrFormat("%zu", value);
  }
  void Bool(bool value) {
    Sep();
    out_ += value ? "true" : "false";
  }

  const std::string& str() const { return out_; }

  /// Writes the document to `path`; returns false (with a stderr note) on
  /// I/O failure so benches can keep printing their tables regardless.
  bool WriteFile(const std::string& path) const {
    FILE* f = fopen(path.c_str(), "wb");
    if (f == nullptr) {
      fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    fwrite(out_.data(), 1, out_.size(), f);
    fputc('\n', f);
    fclose(f);
    return true;
  }

 private:
  void Sep() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (!stack_.back()) out_ += ',';
      stack_.back() = 0;
    }
  }

  void AppendQuoted(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out_ += StrFormat("\\u%04x", c);
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<char> stack_;  // 1 while the open container is still empty
  bool after_key_ = false;
};

}  // namespace exstream::bench
