// Minimal JSON emission for machine-readable bench artifacts (BENCH_*.json),
// so successive PRs can track the perf trajectory without parsing tables.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "common/strings.h"

namespace exstream::bench {

/// \brief Process memory counters sampled from the OS (and, where available,
/// the allocator), so BENCH_*.json artifacts record memory alongside latency.
struct MemoryStats {
  size_t peak_rss_bytes = 0;      ///< VmHWM: high-water resident set
  size_t current_rss_bytes = 0;   ///< VmRSS at sample time
  size_t heap_in_use_bytes = 0;   ///< allocator-reported live heap (0 if n/a)
  bool available = false;         ///< false when /proc isn't readable
};

/// \brief Samples the current process's memory counters. Peak RSS comes from
/// /proc/self/status (Linux); heap-in-use from mallinfo2 on glibc. On other
/// platforms the struct comes back with available=false and callers should
/// still emit it (zeros are honest: "not measured here").
inline MemoryStats SampleMemoryStats() {
  MemoryStats stats;
  FILE* f = fopen("/proc/self/status", "rb");
  if (f != nullptr) {
    char line[256];
    while (fgets(line, sizeof(line), f) != nullptr) {
      size_t kb = 0;
      if (sscanf(line, "VmHWM: %zu kB", &kb) == 1) {
        stats.peak_rss_bytes = kb * 1024;
        stats.available = true;
      } else if (sscanf(line, "VmRSS: %zu kB", &kb) == 1) {
        stats.current_rss_bytes = kb * 1024;
        stats.available = true;
      }
    }
    fclose(f);
  }
#if defined(__GLIBC__) && __GLIBC__ >= 2 && __GLIBC_MINOR__ >= 33
  const struct mallinfo2 mi = mallinfo2();
  stats.heap_in_use_bytes = static_cast<size_t>(mi.uordblks);
#endif
  return stats;
}

/// \brief Append-only JSON writer: the caller provides structure through
/// Begin/End calls; commas and string escaping are handled here.
class JsonWriter {
 public:
  void BeginObject() {
    Sep();
    out_ += '{';
    stack_.push_back(1);
  }
  void EndObject() {
    out_ += '}';
    stack_.pop_back();
  }
  void BeginArray() {
    Sep();
    out_ += '[';
    stack_.push_back(1);
  }
  void EndArray() {
    out_ += ']';
    stack_.pop_back();
  }
  void Key(std::string_view name) {
    Sep();
    AppendQuoted(name);
    out_ += ':';
    after_key_ = true;
  }
  void String(std::string_view value) {
    Sep();
    AppendQuoted(value);
  }
  void Double(double value) {
    Sep();
    out_ += StrFormat("%.17g", value);
  }
  void UInt(size_t value) {
    Sep();
    out_ += StrFormat("%zu", value);
  }
  void Bool(bool value) {
    Sep();
    out_ += value ? "true" : "false";
  }

  const std::string& str() const { return out_; }

  /// Emits a "memory" object from a MemoryStats sample at the current
  /// position (the caller is inside an object and has not written the key).
  void MemoryObject(const MemoryStats& stats) {
    Key("memory");
    BeginObject();
    Key("available");
    Bool(stats.available);
    Key("peak_rss_bytes");
    UInt(stats.peak_rss_bytes);
    Key("current_rss_bytes");
    UInt(stats.current_rss_bytes);
    Key("heap_in_use_bytes");
    UInt(stats.heap_in_use_bytes);
    EndObject();
  }

  /// Writes the document to `path`; returns false (with a stderr note) on
  /// I/O failure so benches can keep printing their tables regardless.
  bool WriteFile(const std::string& path) const {
    FILE* f = fopen(path.c_str(), "wb");
    if (f == nullptr) {
      fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    fwrite(out_.data(), 1, out_.size(), f);
    fputc('\n', f);
    fclose(f);
    return true;
  }

 private:
  void Sep() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (!stack_.back()) out_ += ',';
      stack_.back() = 0;
    }
  }

  void AppendQuoted(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out_ += StrFormat("\\u%04x", c);
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<char> stack_;  // 1 while the open container is still empty
  bool after_key_ = false;
};

}  // namespace exstream::bench
