// Reproduces Fig. 15: conciseness comparison (number of selected features,
// paper plots it in log scale) on the 8 Hadoop workloads.
//
// Expected shape: |XStream-cluster| ~ |clustered ground truth| (a few),
// decision tree < 10, logistic regression ~tens, majority voting and data
// fusion = |feature space|.

#include "bench_util.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  const std::vector<WorkloadDef> defs = HadoopWorkloads();
  const std::vector<MethodComparison> comparisons = CompareAll(defs);

  PrintMethodTable("Figure 15: conciseness (#selected features)", "%18.0f", defs,
                   comparisons, [](const MethodResult& r) {
                     return static_cast<double>(r.explanation_size);
                   });

  printf("\n%-34s %14s %22s %14s\n", "workload", "ground truth",
         "ground truth cluster", "feature space");
  for (size_t w = 0; w < defs.size(); ++w) {
    printf("%-34s %14zu %22zu %14zu\n", defs[w].name.c_str(),
           comparisons[w].ground_truth_size, comparisons[w].ground_truth_clusters,
           comparisons[w].feature_space_size);
  }

  double reduction = 0.0;
  for (const auto& cmp : comparisons) {
    const auto& xs = FindMethod(cmp, kMethodXStreamCluster);
    reduction += 1.0 - static_cast<double>(xs.explanation_size) /
                           static_cast<double>(cmp.feature_space_size);
  }
  printf("\nmean feature reduction by XStream-cluster: %.1f%%\n",
         100.0 * reduction / static_cast<double>(comparisons.size()));
  return 0;
}
