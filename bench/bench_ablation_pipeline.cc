// Ablation study of the explanation pipeline (the design choices DESIGN.md
// calls out): what each stage contributes to consistency and conciseness.
//
// Variants per workload:
//   full            : leap + validation + clustering (XStream-cluster)
//   no-clustering   : Step 3 off (paper's plain "XStream")
//   no-validation   : Step 2 off — false positives (uptime, task counters)
//                     survive and poison the explanation
//   rank-only       : Steps 2+3 off — raw reward-leap output
//
// Expected shape: consistency degrades monotonically as stages are removed,
// and explanation size grows.

#include "bench_util.h"

#include "ml/metrics.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

struct Variant {
  const char* name;
  bool validation;
  bool clustering;
};

constexpr Variant kVariants[] = {
    {"full", true, true},
    {"no-clustering", true, false},
    {"no-validation", false, true},
    {"rank-only", false, false},
};

}  // namespace

int main() {
  const std::vector<WorkloadDef> defs = HadoopWorkloads();

  printf("Pipeline ablation: consistency (F-measure) / explanation size\n\n");
  printf("%-34s", "workload");
  for (const Variant& v : kVariants) printf(" %20s", v.name);
  printf("\n");

  std::vector<double> mean_consistency(std::size(kVariants), 0.0);
  std::vector<double> mean_size(std::size(kVariants), 0.0);

  for (const WorkloadDef& def : defs) {
    fprintf(stderr, "[bench] %s ...\n", def.name.c_str());
    auto run = BuildRun(def);
    printf("%-34s", def.name.c_str());
    for (size_t vi = 0; vi < std::size(kVariants); ++vi) {
      ExplainOptions options = run->DefaultExplainOptions();
      options.enable_validation = kVariants[vi].validation;
      options.enable_clustering = kVariants[vi].clustering;
      ExplanationEngine engine = run->MakeExplanationEngine(options);
      auto report = CheckResult(engine.Explain(run->annotation), "explain");
      // Clustered variants are scored cluster-aware (as in Fig. 14); plain
      // variants by direct feature match.
      const double consistency =
          kVariants[vi].clustering
              ? ClusterAwareConsistency(report, run->ground_truth)
              : ExplanationConsistency(report.SelectedFeatureNames(),
                                       run->ground_truth);
      mean_consistency[vi] += consistency;
      mean_size[vi] += static_cast<double>(report.final_features.size());
      printf("      %6.3f / %5zu", consistency, report.final_features.size());
    }
    printf("\n");
  }

  printf("%-34s", "mean");
  for (size_t vi = 0; vi < std::size(kVariants); ++vi) {
    printf("      %6.3f / %5.1f",
           mean_consistency[vi] / static_cast<double>(defs.size()),
           mean_size[vi] / static_cast<double>(defs.size()));
  }
  printf("\n");
  return 0;
}
