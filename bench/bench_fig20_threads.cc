// Reproduces Fig. 20: total monitoring threads vs threads delayed by a
// concurrently-running explanation analysis, for each of the 8 workloads.
//
// Model: 2000 monitoring queries (one per "thread", as in the paper's
// thread-per-query prototype), each evaluated per event with individual
// latency accounting. While the stream replays, the annotated anomaly's
// explanation analysis runs on a background thread; a monitoring thread
// counts as "affected" when any of its per-event processing latencies during
// the analysis exceeds 0.01 s (the paper's threshold — "most events are
// processed within this range when no explanation analysis is triggered").
//
// Expected shape: only a modest fraction (paper: mostly < 25%) of the 2000
// threads is affected.

#include <atomic>
#include <future>

#include "bench_util.h"

#include "common/stopwatch.h"
#include "common/strings.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

constexpr size_t kNumQueries = 2000;
constexpr double kDelayThresholdSeconds = 0.01;

struct EfficiencyResult {
  size_t total_threads = 0;
  size_t affected_threads = 0;
};

EfficiencyResult RunUseCase(const WorkloadDef& def) {
  WorkloadRunOptions options;
  options.num_normal_jobs = 1;  // smaller stream; the query count is the load
  options.num_nodes = 4;
  auto run = BuildRun(def, options);

  // 2000 independent monitoring "threads": one single-query engine each.
  std::vector<std::unique_ptr<CepEngine>> threads;
  threads.reserve(kNumQueries);
  const std::string q1_text = run->engine->compiled(run->monitor_query)
                                  .query()
                                  .ToString();
  for (size_t i = 0; i < kNumQueries; ++i) {
    auto engine = std::make_unique<CepEngine>(run->registry.get());
    CheckOk(engine->AddQueryText(q1_text, StrFormat("Q1_%zu", i)).status(),
            "add query");
    threads.push_back(std::move(engine));
  }

  // Replay the archived stream through every thread while the explanation
  // runs in the background.
  auto events = CheckResult(
      run->archive->ScanAll(TimeInterval{0, (Timestamp{1} << 62)}), "scan");
  std::vector<Event> stream;
  for (auto& per_type : events) {
    stream.insert(stream.end(), per_type.events.begin(), per_type.events.end());
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  // Our C++ analysis finishes in tens of milliseconds — far faster than the
  // paper's prototype — so a single trigger would barely overlap the replay.
  // To exercise sustained monitoring/analysis contention, the background
  // thread issues explanations back to back (the paper triggered one every
  // few minutes over a long run) until the replay completes.
  std::atomic<bool> stop{false};
  ExplanationEngine explainer =
      run->MakeExplanationEngine(run->DefaultExplainOptions());
  auto future = std::async(std::launch::async, [&]() -> Status {
    while (!stop.load(std::memory_order_relaxed)) {
      EXSTREAM_RETURN_NOT_OK(explainer.Explain(run->annotation).status());
    }
    return Status::OK();
  });

  std::vector<double> max_latency(kNumQueries, 0.0);
  for (const Event& e : stream) {
    for (size_t q = 0; q < threads.size(); ++q) {
      Stopwatch timer;
      threads[q]->OnEvent(e);
      max_latency[q] = std::max(max_latency[q], timer.ElapsedSeconds());
    }
  }
  stop.store(true);
  CheckOk(future.get(), "explain loop");

  EfficiencyResult result;
  result.total_threads = kNumQueries;
  for (double l : max_latency) {
    if (l > kDelayThresholdSeconds) ++result.affected_threads;
  }
  return result;
}

}  // namespace

int main() {
  const std::vector<WorkloadDef> defs = HadoopWorkloads();
  printf("Figure 20 reproduction: total vs delayed monitoring threads\n");
  printf("(%zu concurrent queries; delay threshold %.2f s)\n\n", kNumQueries,
         kDelayThresholdSeconds);
  printf("%-34s %14s %16s %10s\n", "use case", "total threads", "delayed threads",
         "affected");
  for (const WorkloadDef& def : defs) {
    fprintf(stderr, "[bench] %s ...\n", def.name.c_str());
    const EfficiencyResult r = RunUseCase(def);
    printf("%-34s %14zu %16zu %9.1f%%\n", def.name.c_str(), r.total_threads,
           r.affected_threads,
           100.0 * static_cast<double>(r.affected_threads) /
               static_cast<double>(r.total_threads));
  }
  return 0;
}
