// Reproduces Fig. 21: explanation duration vs affected duration vs average
// delay of affected monitoring threads, per workload.
//
//  * explanation duration: wall-clock of the analysis run standalone, both
//    serial (num_threads=1) and parallel (one worker per hardware thread).
//  * affected duration: the time span during which any monitoring thread
//    observed a per-event latency above the 0.01 s threshold while the
//    analysis ran concurrently.
//  * delayed distance (avg delay): the mean excess latency of affected
//    threads over the idle baseline.
//
// Expected shape: explanation returns within seconds (paper: < 1 minute at
// their scale); delays are short-lived and small (paper: ~0.4 s average).
//
// Also emits BENCH_explain.json: per-workload serial/parallel wall clock and
// affected-thread fraction, plus a direct serial-vs-parallel
// ComputeFeatureRewards measurement, so future PRs can track the perf
// trajectory mechanically.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <thread>

#include "bench_json.h"
#include "bench_util.h"

#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "explain/reward.h"
#include "features/feature_space.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

constexpr double kDelayThresholdSeconds = 0.01;

// Set from the command line; --smoke shrinks the monitoring-thread fleet so
// CI can run the bench in seconds as a correctness smoke test.
size_t g_num_queries = 2000;

struct LatencyResult {
  double serial_explain_seconds = 0.0;    ///< standalone, num_threads = 1
  double parallel_explain_seconds = 0.0;  ///< standalone, one worker per core
  double affected_seconds = 0.0;          ///< span with any delayed thread
  double mean_delay_seconds = 0.0;  ///< avg excess latency of affected threads
  size_t affected_threads = 0;
};

LatencyResult RunUseCase(const WorkloadDef& def) {
  WorkloadRunOptions options;
  options.num_normal_jobs = 1;
  options.num_nodes = 4;
  auto run = BuildRun(def, options);

  ExplanationEngine serial_explainer =
      run->MakeExplanationEngine(run->DefaultExplainOptions());
  ExplainOptions parallel_options = run->DefaultExplainOptions();
  parallel_options.num_threads = 0;  // one worker per hardware thread
  ExplanationEngine parallel_explainer =
      run->MakeExplanationEngine(std::move(parallel_options));

  LatencyResult result;
  // Standalone explanation runtime (the blue bars of Fig. 21), both modes.
  {
    Stopwatch timer;
    CheckOk(serial_explainer.Explain(run->annotation).status(),
            "standalone serial explain");
    result.serial_explain_seconds = timer.ElapsedSeconds();
  }
  {
    Stopwatch timer;
    CheckOk(parallel_explainer.Explain(run->annotation).status(),
            "standalone parallel explain");
    result.parallel_explain_seconds = timer.ElapsedSeconds();
  }

  std::vector<std::unique_ptr<CepEngine>> threads;
  const std::string q1_text =
      run->engine->compiled(run->monitor_query).query().ToString();
  for (size_t i = 0; i < g_num_queries; ++i) {
    auto engine = std::make_unique<CepEngine>(run->registry.get());
    CheckOk(engine->AddQueryText(q1_text, StrFormat("Q1_%zu", i)).status(),
            "add query");
    threads.push_back(std::move(engine));
  }

  auto scanned = CheckResult(
      run->archive->ScanAll(TimeInterval{0, (Timestamp{1} << 62)}), "scan");
  std::vector<Event> stream;
  for (auto& per_type : scanned) {
    stream.insert(stream.end(), per_type.events.begin(), per_type.events.end());
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  // The concurrent run uses the parallel analysis — the deployment shape.
  std::atomic<bool> explaining{true};
  auto future = std::async(std::launch::async, [&] {
    auto report = parallel_explainer.Explain(run->annotation);
    explaining.store(false);
    return report;
  });

  Stopwatch wall;
  std::vector<double> max_latency(g_num_queries, 0.0);
  double first_delay = -1.0;
  double last_delay = -1.0;
  for (const Event& e : stream) {
    const bool busy = explaining.load(std::memory_order_relaxed);
    for (size_t q = 0; q < threads.size(); ++q) {
      Stopwatch timer;
      threads[q]->OnEvent(e);
      const double elapsed = timer.ElapsedSeconds();
      if (busy) {
        max_latency[q] = std::max(max_latency[q], elapsed);
        if (elapsed > kDelayThresholdSeconds) {
          const double now = wall.ElapsedSeconds();
          if (first_delay < 0) first_delay = now;
          last_delay = now;
        }
      }
    }
    if (!busy) break;
  }
  CheckOk(future.get().status(), "concurrent explain");

  std::vector<double> delays;
  for (double l : max_latency) {
    if (l > kDelayThresholdSeconds) delays.push_back(l - kDelayThresholdSeconds);
  }
  result.affected_threads = delays.size();
  result.mean_delay_seconds = Mean(delays);
  result.affected_seconds = first_delay < 0 ? 0.0 : last_delay - first_delay;
  return result;
}

/// Times one ComputeFeatureRewards sweep over the first workload; best of
/// `reps` to shed scheduler noise.
double TimeRewards(const FeatureBuilder& builder, const std::vector<FeatureSpec>& specs,
                   const AnomalyAnnotation& annotation, ThreadPool* pool, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    CheckOk(ComputeFeatureRewards(builder, specs, annotation.abnormal.range,
                                  annotation.reference.range, 5, pool)
                .status(),
            "reward sweep");
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 5;
  std::string out_path = "BENCH_explain.json";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<int>(strtoull(argv[++i], nullptr, 10));
    } else {
      fprintf(stderr, "usage: bench_fig21_latency [--smoke] [--out PATH] [--reps N]\n");
      return 2;
    }
  }
  if (smoke) {
    g_num_queries = 200;
    reps = std::min(reps, 2);
  }

  std::vector<WorkloadDef> defs = HadoopWorkloads();
  if (smoke) defs.resize(1);  // one workload is enough to smoke the pipeline
  const size_t cores = std::max(1u, std::thread::hardware_concurrency());
  printf("Figure 21 reproduction: explanation vs affected duration vs delay\n");
  printf("(%zu concurrent queries; delay threshold %.2f s; %zu cores)\n\n",
         g_num_queries, kDelayThresholdSeconds, cores);
  printf("%-34s %12s %14s %14s %13s %9s\n", "use case", "serial (s)",
         "parallel (s)", "affected (s)", "avg delay (s)", "affected");

  std::vector<LatencyResult> results;
  for (const WorkloadDef& def : defs) {
    fprintf(stderr, "[bench] %s ...\n", def.name.c_str());
    const LatencyResult r = RunUseCase(def);
    printf("%-34s %12.3f %14.3f %14.3f %13.4f %8zu\n", def.name.c_str(),
           r.serial_explain_seconds, r.parallel_explain_seconds,
           r.affected_seconds, r.mean_delay_seconds, r.affected_threads);
    results.push_back(r);
  }

  // Direct serial-vs-parallel ComputeFeatureRewards measurement (the tightest
  // loop of the analysis) on the first workload.
  fprintf(stderr, "[bench] feature-reward serial vs parallel ...\n");
  WorkloadRunOptions options;
  options.num_normal_jobs = 1;
  options.num_nodes = 4;
  auto run = BuildRun(defs[0], options);
  FeatureBuilder builder(run->archive.get());
  const std::vector<FeatureSpec> specs =
      GenerateFeatureSpecs(*run->registry, run->FeatureSpace());
  ThreadPool pool(0);
  const double serial_rewards = TimeRewards(builder, specs, run->annotation,
                                            nullptr, reps);
  const double parallel_rewards = TimeRewards(builder, specs, run->annotation,
                                              &pool, reps);
  printf("\nComputeFeatureRewards (%zu specs): serial %.4f s, parallel %.4f s "
         "(%.2fx on %zu threads)\n",
         specs.size(), serial_rewards, parallel_rewards,
         serial_rewards / std::max(parallel_rewards, 1e-12),
         pool.num_threads());

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("fig21_latency");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("hardware_concurrency");
  json.UInt(cores);
  json.Key("num_queries");
  json.UInt(g_num_queries);
  json.Key("delay_threshold_s");
  json.Double(kDelayThresholdSeconds);
  json.Key("feature_rewards");
  json.BeginObject();
  json.Key("num_specs");
  json.UInt(specs.size());
  json.Key("num_threads");
  json.UInt(pool.num_threads());
  json.Key("serial_s");
  json.Double(serial_rewards);
  json.Key("parallel_s");
  json.Double(parallel_rewards);
  json.Key("speedup");
  json.Double(serial_rewards / std::max(parallel_rewards, 1e-12));
  json.EndObject();
  json.Key("workloads");
  json.BeginArray();
  for (size_t w = 0; w < defs.size(); ++w) {
    const LatencyResult& r = results[w];
    json.BeginObject();
    json.Key("name");
    json.String(defs[w].name);
    json.Key("serial_explain_s");
    json.Double(r.serial_explain_seconds);
    json.Key("parallel_explain_s");
    json.Double(r.parallel_explain_seconds);
    json.Key("explain_speedup");
    json.Double(r.serial_explain_seconds /
                std::max(r.parallel_explain_seconds, 1e-12));
    json.Key("affected_s");
    json.Double(r.affected_seconds);
    json.Key("mean_delay_s");
    json.Double(r.mean_delay_seconds);
    json.Key("affected_threads");
    json.UInt(r.affected_threads);
    json.Key("affected_fraction");
    json.Double(static_cast<double>(r.affected_threads) /
                static_cast<double>(g_num_queries));
    json.EndObject();
  }
  json.EndArray();
  json.MemoryObject(SampleMemoryStats());
  json.EndObject();
  if (json.WriteFile(out_path)) {
    fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());
  }

  printf("\nExplanations return in seconds and delay only a small set of\n"
         "monitoring threads briefly (Appendix C).\n");
  return 0;
}
