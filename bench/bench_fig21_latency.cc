// Reproduces Fig. 21: explanation duration vs affected duration vs average
// delay of affected monitoring threads, per workload.
//
//  * explanation duration: wall-clock of the analysis run standalone.
//  * affected duration: the time span during which any monitoring thread
//    observed a per-event latency above the 0.01 s threshold while the
//    analysis ran concurrently.
//  * delayed distance (avg delay): the mean excess latency of affected
//    threads over the idle baseline.
//
// Expected shape: explanation returns within seconds (paper: < 1 minute at
// their scale); delays are short-lived and small (paper: ~0.4 s average).

#include <atomic>
#include <future>

#include "bench_util.h"

#include "common/stats.h"
#include "common/strings.h"
#include "common/stopwatch.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

constexpr size_t kNumQueries = 2000;
constexpr double kDelayThresholdSeconds = 0.01;

struct LatencyResult {
  double explanation_seconds = 0.0;  ///< standalone analysis runtime
  double affected_seconds = 0.0;     ///< span with any delayed thread
  double mean_delay_seconds = 0.0;   ///< avg excess latency of affected threads
  size_t affected_threads = 0;
};

LatencyResult RunUseCase(const WorkloadDef& def) {
  WorkloadRunOptions options;
  options.num_normal_jobs = 1;
  options.num_nodes = 4;
  auto run = BuildRun(def, options);

  ExplanationEngine explainer =
      run->MakeExplanationEngine(run->DefaultExplainOptions());

  LatencyResult result;
  // Standalone explanation runtime (the blue bars of Fig. 21).
  {
    Stopwatch timer;
    CheckOk(explainer.Explain(run->annotation).status(), "standalone explain");
    result.explanation_seconds = timer.ElapsedSeconds();
  }

  std::vector<std::unique_ptr<CepEngine>> threads;
  const std::string q1_text =
      run->engine->compiled(run->monitor_query).query().ToString();
  for (size_t i = 0; i < kNumQueries; ++i) {
    auto engine = std::make_unique<CepEngine>(run->registry.get());
    CheckOk(engine->AddQueryText(q1_text, StrFormat("Q1_%zu", i)).status(),
            "add query");
    threads.push_back(std::move(engine));
  }

  auto scanned = CheckResult(
      run->archive->ScanAll(TimeInterval{0, (Timestamp{1} << 62)}), "scan");
  std::vector<Event> stream;
  for (auto& per_type : scanned) {
    stream.insert(stream.end(), per_type.begin(), per_type.end());
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  std::atomic<bool> explaining{true};
  auto future = std::async(std::launch::async, [&] {
    auto report = explainer.Explain(run->annotation);
    explaining.store(false);
    return report;
  });

  Stopwatch wall;
  std::vector<double> max_latency(kNumQueries, 0.0);
  double first_delay = -1.0;
  double last_delay = -1.0;
  for (const Event& e : stream) {
    const bool busy = explaining.load(std::memory_order_relaxed);
    for (size_t q = 0; q < threads.size(); ++q) {
      Stopwatch timer;
      threads[q]->OnEvent(e);
      const double elapsed = timer.ElapsedSeconds();
      if (busy) {
        max_latency[q] = std::max(max_latency[q], elapsed);
        if (elapsed > kDelayThresholdSeconds) {
          const double now = wall.ElapsedSeconds();
          if (first_delay < 0) first_delay = now;
          last_delay = now;
        }
      }
    }
    if (!busy) break;
  }
  CheckOk(future.get().status(), "concurrent explain");

  std::vector<double> delays;
  for (double l : max_latency) {
    if (l > kDelayThresholdSeconds) delays.push_back(l - kDelayThresholdSeconds);
  }
  result.affected_threads = delays.size();
  result.mean_delay_seconds = Mean(delays);
  result.affected_seconds = first_delay < 0 ? 0.0 : last_delay - first_delay;
  return result;
}

}  // namespace

int main() {
  const std::vector<WorkloadDef> defs = HadoopWorkloads();
  printf("Figure 21 reproduction: explanation vs affected duration vs delay\n");
  printf("(%zu concurrent queries; delay threshold %.2f s)\n\n", kNumQueries,
         kDelayThresholdSeconds);
  printf("%-34s %16s %16s %14s %10s\n", "use case", "explanation (s)",
         "affected (s)", "avg delay (s)", "affected");
  for (const WorkloadDef& def : defs) {
    fprintf(stderr, "[bench] %s ...\n", def.name.c_str());
    const LatencyResult r = RunUseCase(def);
    printf("%-34s %16.3f %16.3f %14.4f %9zu\n", def.name.c_str(),
           r.explanation_seconds, r.affected_seconds, r.mean_delay_seconds,
           r.affected_threads);
  }
  printf("\nExplanations return in seconds and delay only a small set of\n"
         "monitoring threads briefly (Appendix C).\n");
  return 0;
}
