// Parameter-sensitivity ablations for the pipeline's key thresholds, run on
// workload W1 (high memory):
//
//   * correlation-clustering threshold (Step 3)
//   * validation minimum reward (Step 2)
//   * leap-filter keep ratio (Step 1)
//   * feature-space window sizes
//
// Expected shape: results are stable across a wide band around the defaults;
// extreme settings degrade either conciseness (thresholds too permissive) or
// recall of the ground truth (too aggressive).

#include "bench_util.h"

#include "ml/metrics.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

void Report(const WorkloadRun& run, const char* setting, double value,
            const ExplainOptions& options) {
  ExplanationEngine engine = run.MakeExplanationEngine(options);
  auto report = CheckResult(engine.Explain(run.annotation), "explain");
  printf("  %-28s %8.2f   consistency=%.3f  size=%zu  (leap=%zu valid=%zu)\n",
         setting, value,
         ExplanationConsistency(report.SelectedFeatureNames(), run.ground_truth),
         report.final_features.size(), report.after_leap.size(),
         report.after_validation.size());
}

}  // namespace

int main() {
  auto run = BuildRun(HadoopWorkloads()[0]);  // W1
  printf("Parameter ablations on %s\n", run->def.name.c_str());

  printf("\ncorrelation threshold (Step 3, default 0.8):\n");
  for (const double t : {0.5, 0.7, 0.8, 0.9, 0.99}) {
    ExplainOptions options = run->DefaultExplainOptions();
    options.correlation.threshold = t;
    Report(*run, "correlation", t, options);
  }

  printf("\nvalidation min reward (Step 2, default 0.5):\n");
  for (const double t : {0.2, 0.4, 0.5, 0.7, 0.9}) {
    ExplainOptions options = run->DefaultExplainOptions();
    options.validation_min_reward = t;
    Report(*run, "validation-min-reward", t, options);
  }

  printf("\nleap keep ratio (Step 1, default 0.7):\n");
  for (const double t : {0.3, 0.5, 0.7, 0.9, 0.97}) {
    ExplainOptions options = run->DefaultExplainOptions();
    options.leap.keep_ratio = t;
    Report(*run, "leap-keep-ratio", t, options);
  }

  printf("\nsmoothing windows (default {10, 30}):\n");
  const std::vector<std::vector<Timestamp>> window_sets = {
      {5}, {10}, {30}, {10, 30}, {10, 30, 60}};
  for (const auto& windows : window_sets) {
    ExplainOptions options = run->DefaultExplainOptions();
    options.feature_space.windows = windows;
    std::string label = "windows={";
    for (size_t i = 0; i < windows.size(); ++i) {
      if (i > 0) label += ",";
      label += std::to_string(windows[i]);
    }
    label += "}";
    Report(*run, label.c_str(), static_cast<double>(windows.size()), options);
  }

  printf("\nlabeling cut threshold (Step 2, default 0.35):\n");
  for (const double t : {0.2, 0.3, 0.35, 0.45, 0.6}) {
    ExplainOptions options = run->DefaultExplainOptions();
    options.labeling.cut_threshold = t;
    Report(*run, "labeling-cut", t, options);
  }
  return 0;
}
