// Reproduces the Sec. 6.2 "Summary" aggregate claims across both use cases:
//
//  * consistency: XStream outperforms the alternatives (paper: +3201% avg)
//  * conciseness: XStream reduces ~90.5% of features on average
//  * prediction: XStream within a few percent of logistic regression, above
//    majority voting / fusion / decision tree
//
// Absolute percentages depend on the substrate; the directional claims are
// what this bench verifies.

#include "bench_util.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

struct Aggregate {
  double consistency = 0.0;
  double conciseness_reduction = 0.0;
  double prediction = 0.0;
};

}  // namespace

int main() {
  std::vector<WorkloadDef> defs = HadoopWorkloads();
  for (const WorkloadDef& d : SupplyChainWorkloads()) defs.push_back(d);
  const std::vector<MethodComparison> comparisons = CompareAll(defs);

  const std::vector<std::string> methods = {
      kMethodXStream, kMethodXStreamCluster, kMethodLogReg,
      kMethodDTree,   kMethodVote,           kMethodFusion};
  std::vector<Aggregate> agg(methods.size());
  for (const auto& cmp : comparisons) {
    for (size_t m = 0; m < methods.size(); ++m) {
      const MethodResult& r = FindMethod(cmp, methods[m]);
      agg[m].consistency += r.consistency;
      agg[m].conciseness_reduction +=
          1.0 - static_cast<double>(r.explanation_size) /
                    static_cast<double>(cmp.feature_space_size);
      agg[m].prediction += r.prediction_f1;
    }
  }
  const double n = static_cast<double>(comparisons.size());

  printf("Section 6.2 summary claims (all %zu workloads: 8 Hadoop + 6 supply "
         "chain)\n\n",
         comparisons.size());
  printf("%-20s %12s %22s %12s\n", "method", "consistency", "feature reduction",
         "prediction");
  for (size_t m = 0; m < methods.size(); ++m) {
    printf("%-20s %12.3f %21.1f%% %12.3f\n", methods[m].c_str(),
           agg[m].consistency / n, 100.0 * agg[m].conciseness_reduction / n,
           agg[m].prediction / n);
  }

  const double xs_cons = agg[1].consistency / n;
  double others_cons = 0.0;
  for (size_t m : {size_t{2}, size_t{3}, size_t{4}, size_t{5}}) {
    others_cons += agg[m].consistency / n;
  }
  others_cons /= 4.0;
  printf("\nclaim 1 (consistency): XStream-cluster %.3f vs alternative mean %.3f "
         "-> %+.0f%%\n",
         xs_cons, others_cons,
         others_cons > 0 ? (xs_cons / others_cons - 1.0) * 100.0 : 0.0);
  printf("claim 2 (conciseness): XStream-cluster removes %.1f%% of the feature "
         "space on average\n",
         100.0 * agg[1].conciseness_reduction / n);
  printf("claim 3 (prediction): XStream-cluster %.3f vs logistic regression "
         "%.3f (delta %+.1f%%)\n",
         agg[1].prediction / n, agg[2].prediction / n,
         (agg[1].prediction / n - agg[2].prediction / n) * 100.0);
  return 0;
}
