// Reproduces Fig. 22: supply-chain use case, consistency comparison over the
// six Appendix-D workloads (3 missing-monitoring + 3 sub-par-material).
//
// Expected shape: XStream(-cluster) far above the baselines on every
// workload.

#include "bench_util.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  const std::vector<WorkloadDef> defs = SupplyChainWorkloads();
  const std::vector<MethodComparison> comparisons = CompareAll(defs);
  PrintMethodTable(
      "Figure 22: supply chain consistency (F-measure vs ground truth)", "%18.3f",
      defs, comparisons, [](const MethodResult& r) { return r.consistency; });
  return 0;
}
