// Reproduces Fig. 6: the decision-tree model for the Fig. 4 annotated
// anomaly.
//
// Expected shape: a very small tree (the training intervals admit many
// coincidental perfect separators, so CART terminates after 1-3 splits) whose
// split features are mostly NOT the ground truth — "more concise than
// logistic regression, but not consistent with the ground truth".

#include "bench_util.h"

#include "features/builder.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  auto run = BuildRun(HadoopWorkloads()[0]);  // W1: high memory
  const auto specs = GenerateFeatureSpecs(*run->registry, run->FeatureSpace());
  FeatureBuilder builder(run->archive.get());

  auto abnormal =
      CheckResult(builder.Build(specs, run->annotation.abnormal.range), "build I_A");
  auto reference =
      CheckResult(builder.Build(specs, run->annotation.reference.range), "build I_R");
  auto train = CheckResult(BuildDataset(abnormal, reference, 64), "dataset");

  auto tree = CheckResult(DecisionTree::Fit(train), "dtree fit");

  printf("Figure 6 reproduction: decision tree model\n\n%s\n",
         tree.ToString().c_str());
  printf("split features (%zu):\n", tree.SelectedFeatures().size());
  for (const auto& f : tree.SelectedFeatures()) {
    bool is_truth = false;
    for (const auto& g : run->ground_truth) {
      if (SameUnderlyingSignal(f, g)) is_truth = true;
    }
    printf("  %s%s\n", f.c_str(), is_truth ? "  <-- ground truth" : "");
  }
  printf("\nconsistency vs ground truth: %.3f\n",
         ExplanationConsistency(tree.SelectedFeatures(), run->ground_truth));
  return 0;
}
