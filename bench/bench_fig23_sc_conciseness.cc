// Reproduces Fig. 23: supply-chain use case, conciseness comparison.
//
// Expected shape: |XStream-cluster| tracks the ground-truth size (1-3
// features); majority voting / data fusion use the whole feature space.

#include "bench_util.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  const std::vector<WorkloadDef> defs = SupplyChainWorkloads();
  const std::vector<MethodComparison> comparisons = CompareAll(defs);
  PrintMethodTable("Figure 23: supply chain conciseness (#selected features)",
                   "%18.0f", defs, comparisons, [](const MethodResult& r) {
                     return static_cast<double>(r.explanation_size);
                   });
  printf("\n%-34s %14s %14s\n", "workload", "ground truth", "feature space");
  for (size_t w = 0; w < defs.size(); ++w) {
    printf("%-34s %14zu %14zu\n", defs[w].name.c_str(),
           comparisons[w].ground_truth_size, comparisons[w].feature_space_size);
  }
  return 0;
}
