// Replication overhead: child ingest throughput with the parent/child
// replication pipeline on vs off, over a loopback link.
//
// The sender is asynchronous — OnBatch only spools under a mutex and a
// background thread does the framing and socket I/O — so replication must
// not cost the child more than a modest fraction of its ingest throughput.
// The within-run ratio (replicated ev/s divided by standalone ev/s) is the
// gated quantity: both sides of the ratio run on the same host seconds
// apart, so hardware speed cancels out and
// scripts/check_replication_overhead.py can enforce a floor on any machine
// (absolute ev/s are reported for context only, never gated).
//
// Each run also cross-checks correctness: the parent must end with every
// child event applied (watermark == stream size, zero gaps) — a throughput
// "win" that drops events is a bug, not a speedup.
//
// Emits BENCH_replication.json.
//
//   bench_replication [--smoke] [--out PATH] [--reps N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "net/replication_receiver.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"

using namespace exstream;
using bench::CheckOk;
using bench::JsonWriter;

namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

std::vector<Event> BuildStream(const EventTypeRegistry& registry, int num_nodes,
                               int num_jobs, Timestamp duration) {
  HadoopSimConfig config;
  config.num_nodes = num_nodes;
  config.seed = 20170321;  // EDBT'17
  HadoopClusterSim sim(config, &registry);
  for (int j = 0; j < num_jobs; ++j) {
    HadoopJobConfig job;
    job.job_id = StrFormat("job-%03d", j);
    job.program = "wordcount";
    job.dataset = "ds";
    job.start_time = (duration * j) / num_jobs;
    sim.AddJob(job);
  }
  VectorSink sink;
  CheckOk(sim.Run(&sink).status(), "hadoop sim");
  return sink.TakeEvents();
}

struct Measurement {
  bool replicated = false;
  size_t events = 0;
  double ingest_seconds = 0;   ///< child-side feed + Flush (best rep)
  double ingest_eps = 0;
  double drain_seconds = 0;    ///< replication only: Flush -> last ACK
  size_t parent_applied = 0;   ///< replication only: receiver counter
  size_t parent_gaps = 0;      ///< must be 0 — nothing may shed on loopback
  size_t reconnects = 0;       ///< link flaps during the measured run
};

Measurement RunChild(const EventTypeRegistry& registry,
                     const std::vector<Event>& stream, bool replicate,
                     size_t reps, size_t batch_size) {
  // Pre-slice outside the timed region (the producer's cost, not ingest's).
  std::vector<EventBatch> slices;
  for (size_t i = 0; i < stream.size(); i += batch_size) {
    const size_t end = std::min(stream.size(), i + batch_size);
    slices.emplace_back(stream.begin() + static_cast<ptrdiff_t>(i),
                        stream.begin() + static_cast<ptrdiff_t>(end));
  }
  Measurement m;
  m.replicated = replicate;
  m.events = stream.size();
  for (size_t rep = 0; rep < reps; ++rep) {
    std::unique_ptr<XStreamSystem> parent;
    std::unique_ptr<ReplicationReceiver> receiver;
    XStreamConfig child_cfg;
    if (replicate) {
      parent = std::make_unique<XStreamSystem>(&registry);
      CheckOk(parent->AddQuery(kQ1, "Q1").status(), "parent AddQuery");
      ReplicationReceiverOptions ropts;
      ropts.io_timeout_ms = 100;
      receiver = std::make_unique<ReplicationReceiver>(parent.get(), ropts);
      CheckOk(receiver->Start(), "receiver Start");
      ReplicationSenderOptions sopts;
      sopts.port = receiver->port();
      sopts.idle_poll_ms = 2;
      child_cfg.replication = sopts;
    }
    auto child = std::make_unique<XStreamSystem>(&registry, child_cfg);
    CheckOk(child->AddQuery(kQ1, "Q1").status(), "child AddQuery");

    Stopwatch timer;
    for (const EventBatch& slice : slices) child->OnEventBatch(slice);
    child->Flush();
    const double ingest_secs = timer.ElapsedSeconds();

    if (replicate) {
      Stopwatch drain_timer;
      if (!child->replication()->WaitForDrain(120000)) {
        fprintf(stderr, "FAIL: replication did not drain\n");
        exit(1);
      }
      const double drain_secs = drain_timer.ElapsedSeconds();
      receiver->Stop();
      const auto rstats = receiver->stats();
      const auto cstats = child->replication()->stats();
      if (rep == 0 || ingest_secs < m.ingest_seconds) {
        m.drain_seconds = drain_secs;
      }
      m.parent_applied = rstats.events_applied;
      m.parent_gaps = rstats.gap_events;
      m.reconnects = cstats.reconnects;
      if (rstats.events_applied + rstats.gap_events != stream.size() ||
          rstats.gap_events != 0) {
        fprintf(stderr,
                "FAIL: parent applied %zu events + %zu gaps of %zu — "
                "replication lost data on a healthy loopback link\n",
                static_cast<size_t>(rstats.events_applied),
                static_cast<size_t>(rstats.gap_events), stream.size());
        exit(1);
      }
    }
    if (rep == 0 || ingest_secs < m.ingest_seconds) {
      m.ingest_seconds = ingest_secs;
    }
  }
  m.ingest_eps = static_cast<double>(m.events) / m.ingest_seconds;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t reps = 0;
  std::string out_path = "BENCH_replication.json";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = strtoull(argv[++i], nullptr, 10);
    } else {
      fprintf(stderr, "usage: bench_replication [--smoke] [--out PATH] [--reps N]\n");
      return 2;
    }
  }
  if (reps == 0) reps = smoke ? 2 : 5;

  EventTypeRegistry registry;
  CheckOk(HadoopClusterSim::RegisterEventTypes(&registry), "RegisterEventTypes");
  const int num_nodes = smoke ? 3 : 30;
  const Timestamp duration = smoke ? 600 : 3600;
  const size_t batch_size = 1024;
  const std::vector<Event> stream = BuildStream(registry, num_nodes, 3, duration);
  fprintf(stderr, "[bench] stream: %zu events, %zu reps\n", stream.size(), reps);

  fprintf(stderr, "[bench] standalone child (replication off) ...\n");
  const Measurement off = RunChild(registry, stream, /*replicate=*/false, reps,
                                   batch_size);
  fprintf(stderr, "[bench] replicated child (loopback parent) ...\n");
  const Measurement on = RunChild(registry, stream, /*replicate=*/true, reps,
                                  batch_size);

  const double ratio = on.ingest_eps / off.ingest_eps;
  printf("\nReplication overhead (child ingest, %zu events/batch)\n", batch_size);
  printf("%14s %14s %12s %10s\n", "mode", "events/sec", "drain (s)", "gaps");
  printf("%14s %14.0f %12s %10s\n", "standalone", off.ingest_eps, "-", "-");
  printf("%14s %14.0f %12.3f %10zu\n", "replicated", on.ingest_eps,
         on.drain_seconds, on.parent_gaps);
  printf("\noverhead ratio (replicated / standalone) = %.3f\n", ratio);
  printf("parent applied %zu/%zu events, %zu reconnects\n", on.parent_applied,
         stream.size(), on.reconnects);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("replication");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("reps");
  json.UInt(reps);
  json.Key("batch_size");
  json.UInt(batch_size);
  json.Key("stream_events");
  json.UInt(stream.size());
  json.Key("ingest_eps_standalone");
  json.Double(off.ingest_eps);
  json.Key("ingest_eps_replicated");
  json.Double(on.ingest_eps);
  json.Key("overhead_ratio");
  json.Double(ratio);
  json.Key("drain_seconds");
  json.Double(on.drain_seconds);
  json.Key("parent_events_applied");
  json.UInt(on.parent_applied);
  json.Key("parent_gap_events");
  json.UInt(on.parent_gaps);
  json.Key("sender_reconnects");
  json.UInt(on.reconnects);
  json.MemoryObject(bench::SampleMemoryStats());
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());
  return 0;
}
