// Replication overhead: child ingest throughput with the parent/child
// replication pipeline on vs off, over a loopback link.
//
// The sender is asynchronous — OnBatch only spools under a mutex and a
// background thread does the framing and socket I/O — so replication must
// not cost the child more than a modest fraction of its ingest throughput.
// The within-run ratio (replicated ev/s divided by standalone ev/s) is the
// gated quantity: both sides of the ratio run on the same host seconds
// apart, so hardware speed cancels out and
// scripts/check_replication_overhead.py can enforce a floor on any machine
// (absolute ev/s are reported for context only, never gated).
//
// Each run also cross-checks correctness: the parent must end with every
// child event applied (watermark == stream size, zero gaps) — a throughput
// "win" that drops events is a bug, not a speedup.
//
// Emits BENCH_replication.json.
//
//   bench_replication [--smoke] [--out PATH] [--reps N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "net/replication_receiver.h"
#include "sim/hadoop_sim.h"
#include "xstream/system.h"
#include "xstream/tenant_hub.h"

using namespace exstream;
using bench::CheckOk;
using bench::JsonWriter;

namespace {

constexpr char kQ1[] =
    "PATTERN SEQ(JobStart a, DataIO+ b[], JobEnd c) WHERE [jobId] "
    "RETURN (b[i].timestamp, a.jobId, sum(b[1..i].dataSize))";

std::vector<Event> BuildStream(const EventTypeRegistry& registry, int num_nodes,
                               int num_jobs, Timestamp duration) {
  HadoopSimConfig config;
  config.num_nodes = num_nodes;
  config.seed = 20170321;  // EDBT'17
  HadoopClusterSim sim(config, &registry);
  for (int j = 0; j < num_jobs; ++j) {
    HadoopJobConfig job;
    job.job_id = StrFormat("job-%03d", j);
    job.program = "wordcount";
    job.dataset = "ds";
    job.start_time = (duration * j) / num_jobs;
    sim.AddJob(job);
  }
  VectorSink sink;
  CheckOk(sim.Run(&sink).status(), "hadoop sim");
  return sink.TakeEvents();
}

struct Measurement {
  bool replicated = false;
  size_t events = 0;
  double ingest_seconds = 0;   ///< child-side feed + Flush (best rep)
  double ingest_eps = 0;
  double drain_seconds = 0;    ///< replication only: Flush -> last ACK
  size_t parent_applied = 0;   ///< replication only: receiver counter
  size_t parent_gaps = 0;      ///< must be 0 — nothing may shed on loopback
  size_t reconnects = 0;       ///< link flaps during the measured run
};

Measurement RunChild(const EventTypeRegistry& registry,
                     const std::vector<Event>& stream, bool replicate,
                     size_t reps, size_t batch_size) {
  // Pre-slice outside the timed region (the producer's cost, not ingest's).
  std::vector<EventBatch> slices;
  for (size_t i = 0; i < stream.size(); i += batch_size) {
    const size_t end = std::min(stream.size(), i + batch_size);
    slices.emplace_back(stream.begin() + static_cast<ptrdiff_t>(i),
                        stream.begin() + static_cast<ptrdiff_t>(end));
  }
  Measurement m;
  m.replicated = replicate;
  m.events = stream.size();
  for (size_t rep = 0; rep < reps; ++rep) {
    std::unique_ptr<XStreamSystem> parent;
    std::unique_ptr<ReplicationReceiver> receiver;
    XStreamConfig child_cfg;
    if (replicate) {
      parent = std::make_unique<XStreamSystem>(&registry);
      CheckOk(parent->AddQuery(kQ1, "Q1").status(), "parent AddQuery");
      ReplicationReceiverOptions ropts;
      ropts.io_timeout_ms = 100;
      receiver = std::make_unique<ReplicationReceiver>(parent.get(), ropts);
      CheckOk(receiver->Start(), "receiver Start");
      ReplicationSenderOptions sopts;
      sopts.port = receiver->port();
      sopts.idle_poll_ms = 2;
      child_cfg.replication = sopts;
    }
    auto child = std::make_unique<XStreamSystem>(&registry, child_cfg);
    CheckOk(child->AddQuery(kQ1, "Q1").status(), "child AddQuery");

    Stopwatch timer;
    for (const EventBatch& slice : slices) child->OnEventBatch(slice);
    child->Flush();
    const double ingest_secs = timer.ElapsedSeconds();

    if (replicate) {
      Stopwatch drain_timer;
      if (!child->replication()->WaitForDrain(120000)) {
        fprintf(stderr, "FAIL: replication did not drain\n");
        exit(1);
      }
      const double drain_secs = drain_timer.ElapsedSeconds();
      receiver->Stop();
      const auto rstats = receiver->stats();
      const auto cstats = child->replication()->stats();
      if (rep == 0 || ingest_secs < m.ingest_seconds) {
        m.drain_seconds = drain_secs;
      }
      m.parent_applied = rstats.events_applied;
      m.parent_gaps = rstats.gap_events;
      m.reconnects = cstats.reconnects;
      if (rstats.events_applied + rstats.gap_events != stream.size() ||
          rstats.gap_events != 0) {
        fprintf(stderr,
                "FAIL: parent applied %zu events + %zu gaps of %zu — "
                "replication lost data on a healthy loopback link\n",
                static_cast<size_t>(rstats.events_applied),
                static_cast<size_t>(rstats.gap_events), stream.size());
        exit(1);
      }
    }
    if (rep == 0 || ingest_secs < m.ingest_seconds) {
      m.ingest_seconds = ingest_secs;
    }
  }
  m.ingest_eps = static_cast<double>(m.events) / m.ingest_seconds;
  return m;
}

// --- Multi-child fan-in ------------------------------------------------------
//
// One receiver, N children across two tenants (even children -> tenant-a, odd
// -> tenant-b), the same total event volume split contiguously across the
// children. The gated quantity is fanin_ratio = aggregate ev/s with N
// children divided by aggregate ev/s with 1 child — both sides run on the
// same host in the same process, so hardware cancels out, exactly like
// overhead_ratio. Each run also asserts tenant isolation: every tenant's
// parent must end with exactly its own children's events and nothing else.

struct FanInMeasurement {
  size_t children = 0;
  size_t events = 0;            ///< total across all children
  double seconds = 0;           ///< best rep: feed start -> all drained
  double eps = 0;
  size_t tenant_a_applied = 0;
  size_t tenant_b_applied = 0;
  size_t tenant_a_shed = 0;     ///< gaps + quota sheds disclosed to tenant-a
  size_t tenant_b_shed = 0;
  size_t gap_events = 0;        ///< receiver-wide; must be 0 on loopback
  bool contamination_free = false;
};

FanInMeasurement RunFanIn(const EventTypeRegistry& registry,
                          const std::vector<Event>& stream, size_t n_children,
                          size_t reps, size_t batch_size) {
  // Contiguous per-child slices; each child owns its own seq space, so each
  // slice replays as that child's whole stream.
  std::vector<std::vector<Event>> child_streams(n_children);
  const size_t per_child = stream.size() / n_children;
  for (size_t c = 0; c < n_children; ++c) {
    const size_t begin = c * per_child;
    const size_t end = (c + 1 == n_children) ? stream.size() : begin + per_child;
    child_streams[c].assign(stream.begin() + static_cast<ptrdiff_t>(begin),
                            stream.begin() + static_cast<ptrdiff_t>(end));
  }
  size_t expected_a = 0;
  size_t expected_b = 0;
  for (size_t c = 0; c < n_children; ++c) {
    (c % 2 == 0 ? expected_a : expected_b) += child_streams[c].size();
  }

  FanInMeasurement m;
  m.children = n_children;
  m.events = stream.size();
  for (size_t rep = 0; rep < reps; ++rep) {
    XStreamSystem parent_a(&registry);
    XStreamSystem parent_b(&registry);
    CheckOk(parent_a.AddQuery(kQ1, "Q1").status(), "tenant-a AddQuery");
    CheckOk(parent_b.AddQuery(kQ1, "Q1").status(), "tenant-b AddQuery");
    TenantHub hub;
    CheckOk(hub.AddTenant("tenant-a", &parent_a), "AddTenant a");
    CheckOk(hub.AddTenant("tenant-b", &parent_b), "AddTenant b");
    ReplicationReceiverOptions ropts;
    ropts.io_timeout_ms = 100;
    ReplicationReceiver receiver(&hub, ropts);
    CheckOk(receiver.Start(), "receiver Start");

    std::vector<std::unique_ptr<XStreamSystem>> children;
    for (size_t c = 0; c < n_children; ++c) {
      XStreamConfig cfg;
      ReplicationSenderOptions sopts;
      sopts.port = receiver.port();
      sopts.idle_poll_ms = 2;
      sopts.tenant = (c % 2 == 0) ? "tenant-a" : "tenant-b";
      sopts.node_id = StrFormat("child-%zu", c);
      cfg.replication = sopts;
      children.push_back(std::make_unique<XStreamSystem>(&registry, cfg));
      CheckOk(children.back()->AddQuery(kQ1, "Q1").status(), "child AddQuery");
    }

    Stopwatch timer;
    for (size_t c = 0; c < n_children; ++c) {
      const std::vector<Event>& events = child_streams[c];
      for (size_t i = 0; i < events.size(); i += batch_size) {
        const size_t end = std::min(events.size(), i + batch_size);
        children[c]->OnEventBatch(
            EventBatch(events.begin() + static_cast<ptrdiff_t>(i),
                       events.begin() + static_cast<ptrdiff_t>(end)));
      }
    }
    for (auto& child : children) child->Flush();
    for (auto& child : children) {
      if (!child->replication()->WaitForDrain(120000)) {
        fprintf(stderr, "FAIL: fan-in replication did not drain\n");
        exit(1);
      }
    }
    const double secs = timer.ElapsedSeconds();
    receiver.Stop();

    const size_t applied_a = parent_a.engine().events_processed();
    const size_t applied_b = parent_b.engine().events_processed();
    const size_t shed_a = parent_a.shed_events();
    const size_t shed_b = parent_b.shed_events();
    const auto rstats = receiver.stats();
    const bool clean = applied_a == expected_a && applied_b == expected_b &&
                       shed_a == 0 && shed_b == 0 && rstats.gap_events == 0 &&
                       rstats.quota_shed_events == 0;
    if (!clean) {
      fprintf(stderr,
              "FAIL: fan-in contamination with %zu children — tenant-a "
              "%zu/%zu, tenant-b %zu/%zu, sheds %zu/%zu, gaps %zu\n",
              n_children, applied_a, expected_a, applied_b, expected_b, shed_a,
              shed_b, static_cast<size_t>(rstats.gap_events));
      exit(1);
    }
    if (rep == 0 || secs < m.seconds) m.seconds = secs;
    m.tenant_a_applied = applied_a;
    m.tenant_b_applied = applied_b;
    m.tenant_a_shed = shed_a;
    m.tenant_b_shed = shed_b;
    m.gap_events = rstats.gap_events;
    m.contamination_free = clean;
  }
  m.eps = static_cast<double>(m.events) / m.seconds;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t reps = 0;
  std::string out_path = "BENCH_replication.json";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = strtoull(argv[++i], nullptr, 10);
    } else {
      fprintf(stderr, "usage: bench_replication [--smoke] [--out PATH] [--reps N]\n");
      return 2;
    }
  }
  if (reps == 0) reps = smoke ? 2 : 5;

  EventTypeRegistry registry;
  CheckOk(HadoopClusterSim::RegisterEventTypes(&registry), "RegisterEventTypes");
  const int num_nodes = smoke ? 3 : 30;
  const Timestamp duration = smoke ? 600 : 3600;
  const size_t batch_size = 1024;
  const std::vector<Event> stream = BuildStream(registry, num_nodes, 3, duration);
  fprintf(stderr, "[bench] stream: %zu events, %zu reps\n", stream.size(), reps);

  fprintf(stderr, "[bench] standalone child (replication off) ...\n");
  const Measurement off = RunChild(registry, stream, /*replicate=*/false, reps,
                                   batch_size);
  fprintf(stderr, "[bench] replicated child (loopback parent) ...\n");
  const Measurement on = RunChild(registry, stream, /*replicate=*/true, reps,
                                  batch_size);

  const double ratio = on.ingest_eps / off.ingest_eps;
  printf("\nReplication overhead (child ingest, %zu events/batch)\n", batch_size);
  printf("%14s %14s %12s %10s\n", "mode", "events/sec", "drain (s)", "gaps");
  printf("%14s %14.0f %12s %10s\n", "standalone", off.ingest_eps, "-", "-");
  printf("%14s %14.0f %12.3f %10zu\n", "replicated", on.ingest_eps,
         on.drain_seconds, on.parent_gaps);
  printf("\noverhead ratio (replicated / standalone) = %.3f\n", ratio);
  printf("parent applied %zu/%zu events, %zu reconnects\n", on.parent_applied,
         stream.size(), on.reconnects);

  std::vector<FanInMeasurement> fanin;
  for (const size_t n_children : {size_t{1}, size_t{2}, size_t{4}}) {
    fprintf(stderr, "[bench] fan-in: %zu children, 2 tenants ...\n",
            n_children);
    fanin.push_back(RunFanIn(registry, stream, n_children, reps, batch_size));
  }
  printf("\nFan-in (one receiver, 2 tenants, same total events)\n");
  printf("%9s %14s %9s %12s %12s %8s %8s\n", "children", "events/sec", "ratio",
         "tenant-a ev", "tenant-b ev", "shed-a", "shed-b");
  for (const FanInMeasurement& f : fanin) {
    printf("%9zu %14.0f %9.3f %12zu %12zu %8zu %8zu\n", f.children, f.eps,
           f.eps / fanin.front().eps, f.tenant_a_applied, f.tenant_b_applied,
           f.tenant_a_shed, f.tenant_b_shed);
  }

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("replication");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("reps");
  json.UInt(reps);
  json.Key("batch_size");
  json.UInt(batch_size);
  json.Key("stream_events");
  json.UInt(stream.size());
  json.Key("ingest_eps_standalone");
  json.Double(off.ingest_eps);
  json.Key("ingest_eps_replicated");
  json.Double(on.ingest_eps);
  json.Key("overhead_ratio");
  json.Double(ratio);
  json.Key("drain_seconds");
  json.Double(on.drain_seconds);
  json.Key("parent_events_applied");
  json.UInt(on.parent_applied);
  json.Key("parent_gap_events");
  json.UInt(on.parent_gaps);
  json.Key("sender_reconnects");
  json.UInt(on.reconnects);
  json.Key("fanin");
  json.BeginArray();
  for (const FanInMeasurement& f : fanin) {
    json.BeginObject();
    json.Key("children");
    json.UInt(f.children);
    json.Key("events");
    json.UInt(f.events);
    json.Key("seconds");
    json.Double(f.seconds);
    json.Key("eps");
    json.Double(f.eps);
    json.Key("fanin_ratio");
    json.Double(f.eps / fanin.front().eps);
    json.Key("tenant_a_applied");
    json.UInt(f.tenant_a_applied);
    json.Key("tenant_b_applied");
    json.UInt(f.tenant_b_applied);
    json.Key("tenant_a_shed_events");
    json.UInt(f.tenant_a_shed);
    json.Key("tenant_b_shed_events");
    json.UInt(f.tenant_b_shed);
    json.Key("gap_events");
    json.UInt(f.gap_events);
    json.Key("contamination_free");
    json.Bool(f.contamination_free);
    json.EndObject();
  }
  json.EndArray();
  json.MemoryObject(bench::SampleMemoryStats());
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());
  return 0;
}
