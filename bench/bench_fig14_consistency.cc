// Reproduces Fig. 14: consistency comparison on the 8 Hadoop workloads.
//
// Consistency = F-measure of each method's selected features against the
// expert ground truth (Sec. 6.2). Expected shape: XStream-cluster >= XStream
// >> logistic regression, decision tree, majority voting, data fusion.

#include "bench_util.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  const std::vector<WorkloadDef> defs = HadoopWorkloads();
  const std::vector<MethodComparison> comparisons = CompareAll(defs);

  PrintMethodTable("Figure 14: consistency (F-measure vs ground truth)", "%18.3f",
                   defs, comparisons,
                   [](const MethodResult& r) { return r.consistency; });

  // The paper's headline: XStream outperforms the alternatives on average.
  double xs = 0.0;
  double best_other = 0.0;
  for (const auto& cmp : comparisons) {
    xs += FindMethod(cmp, kMethodXStreamCluster).consistency;
    double other = 0.0;
    for (const char* m : {kMethodLogReg, kMethodDTree, kMethodVote, kMethodFusion}) {
      other = std::max(other, FindMethod(cmp, m).consistency);
    }
    best_other += other;
  }
  xs /= static_cast<double>(comparisons.size());
  best_other /= static_cast<double>(comparisons.size());
  printf("\nmean XStream-cluster consistency : %.3f\n", xs);
  printf("mean best-alternative consistency: %.3f\n", best_other);
  if (best_other > 0) {
    printf("improvement                      : %+.0f%%\n",
           (xs / best_other - 1.0) * 100.0);
  }
  return 0;
}
