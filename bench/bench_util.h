// Shared helpers for the experiment-reproduction benches.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/workloads.h"
#include "xstream/evaluation.h"

namespace exstream::bench {

/// Aborts the bench with a message when a Result/Status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).MoveValue();
}

/// Builds one workload run, aborting on failure.
inline std::unique_ptr<WorkloadRun> BuildRun(const WorkloadDef& def,
                                             WorkloadRunOptions options = {}) {
  return CheckResult(BuildWorkloadRun(def, options), def.name.c_str());
}

/// Runs CompareMethods over every workload in `defs`, printing progress.
inline std::vector<MethodComparison> CompareAll(const std::vector<WorkloadDef>& defs) {
  std::vector<MethodComparison> out;
  for (const WorkloadDef& def : defs) {
    fprintf(stderr, "[bench] building + evaluating %s ...\n", def.name.c_str());
    auto run = BuildRun(def);
    out.push_back(CheckResult(CompareMethods(*run), "CompareMethods"));
  }
  return out;
}

/// Prints one metric of every method as a workload x method table.
inline void PrintMethodTable(const char* title, const char* value_format,
                             const std::vector<WorkloadDef>& defs,
                             const std::vector<MethodComparison>& comparisons,
                             double (*metric)(const MethodResult&)) {
  printf("\n%s\n", title);
  printf("%-34s", "workload");
  const std::vector<std::string> methods = {
      kMethodXStream, kMethodXStreamCluster, kMethodLogReg,
      kMethodDTree,   kMethodVote,           kMethodFusion};
  for (const auto& m : methods) printf(" %18s", m.c_str());
  printf("\n");
  for (size_t w = 0; w < defs.size(); ++w) {
    printf("%-34s", defs[w].name.c_str());
    for (const auto& m : methods) {
      const MethodResult& r = FindMethod(comparisons[w], m);
      printf(" ");
      printf(value_format, metric(r));
    }
    printf("\n");
  }
}

}  // namespace exstream::bench
