// Continuous-serving bench: interactive Explain throughput with the serving
// layer on — incremental sliding-window feature tails vs cold archive scans,
// and the keyed single-flight result cache vs recomputation.
//
// Correctness is checked before timing: the explanation must be bit-identical
// (every ranked feature's abnormal AND reference series, plus the final CNF)
// whether features come from the incremental tails, the columnar archive
// scan, or the legacy row scan — and the cached repeat must return the very
// same report object. Single-flight is exercised with concurrent threads on
// one cold key: exactly one computation may run.
//
// Emits BENCH_explain_qps.json. Acceptance gates, full mode only:
//   - cached repeat Explain at least 20x faster than the uncached one
//   - incremental recent-interval feature build at least 2x faster than the
//     cold archive scan
// --smoke shrinks the workload for CI; gates then only print (the
// machine-independent subset is re-checked by scripts/check_explain_qps.py).

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"

#include "common/stopwatch.h"
#include "explain/engine.h"
#include "features/builder.h"
#include "features/feature_space.h"
#include "io/file_util.h"
#include "xstream/system.h"

using namespace exstream;
using namespace exstream::bench;

namespace {

// Best-of-reps wall time of one thunk.
template <typename Fn>
double TimeBest(size_t reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

// Bitwise comparison of BOTH interval series of every ranked feature, plus
// the final explanation. Unlike tiering (which legitimately changes
// reference-side aggregates), the incremental path promises full identity.
bool ReportsIdentical(const ExplanationReport& a, const ExplanationReport& b) {
  if (a.ranked.size() != b.ranked.size()) return false;
  if (a.explanation.ToString() != b.explanation.ToString()) return false;
  std::map<std::string, const RankedFeature*> by_name;
  for (const RankedFeature& f : a.ranked) by_name[f.spec.Name()] = &f;
  for (const RankedFeature& f : b.ranked) {
    auto it = by_name.find(f.spec.Name());
    if (it == by_name.end()) return false;
    const RankedFeature& o = *it->second;
    if (o.abnormal_series.times() != f.abnormal_series.times()) return false;
    if (o.abnormal_series.values() != f.abnormal_series.values()) return false;
    if (o.reference_series.times() != f.reference_series.times()) return false;
    if (o.reference_series.values() != f.reference_series.values()) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t reps = 0;  // 0 = default per mode (full: 5, smoke: 2)
  std::string out_path = "BENCH_explain_qps.json";
  std::string spill_dir = "/tmp/exstream_bench_qps";
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = strtoull(argv[++i], nullptr, 10);
    } else if (strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      spill_dir = argv[++i];
    } else {
      fprintf(stderr,
              "usage: bench_explain_qps [--smoke] [--out PATH] [--reps N] "
              "[--spill-dir DIR]\n");
      return 2;
    }
  }
  if (reps == 0) reps = smoke ? 2 : 5;

  WorkloadRunOptions options;
  options.num_nodes = smoke ? 4 : 12;
  options.num_normal_jobs = smoke ? 2 : 4;
  const WorkloadDef def = HadoopWorkloads()[0];
  fprintf(stderr, "[bench] building %s (%d nodes) ...\n", def.name.c_str(),
          options.num_nodes);
  auto run = BuildRun(def, options);
  const std::string query_text =
      run->engine->compiled(run->monitor_query).query().ToString();

  // Pull the simulated stream back out of the reference archive, in global
  // timestamp order (stable: per-type append order is preserved).
  const TimeInterval everything{std::numeric_limits<Timestamp>::min() / 2,
                                std::numeric_limits<Timestamp>::max() / 2};
  const auto scans =
      CheckResult(run->archive->ScanAll(everything), "full archive scan");
  std::vector<Event> events;
  for (const auto& scan : scans) {
    events.insert(events.end(), scan.events.begin(), scan.events.end());
  }
  const size_t events_total = events.size();

  // Serving-enabled system over a COLD archive: every sealed chunk spills to
  // disk, so the incremental tails are the only in-memory copy of the stream
  // (the access pattern the serving layer exists to accelerate).
  CheckOk(EnsureDir(spill_dir), "spill dir");
  XStreamConfig config;
  config.archive.spill_dir = spill_dir;
  // Capacity must sit well below the per-type event counts or chunks never
  // seal and the "cold archive" is actually resident, zero-copy memory.
  config.archive.chunk_capacity = smoke ? 128 : 2048;
  config.archive.max_resident_chunks = 1;
  config.explain = run->DefaultExplainOptions();
  config.serving.incremental_features = true;
  config.serving.incremental_retention = 0;  // unbounded: bench wants full hits
  config.serving.explain_cache_capacity = 64;
  XStreamSystem system(run->registry.get(), config);
  const QueryId qid = CheckResult(
      system.AddQuery(query_text, run->monitor_query_name), "add query");

  fprintf(stderr, "[bench] ingesting %zu events ...\n", events_total);
  VectorEventSource source(std::move(events));
  source.SortByTime();
  source.ReplayMove(&system, 512);
  system.Flush();
  CheckOk(system.IndexPartitions(qid, {{"workload", def.name}}), "index");

  const AnomalyAnnotation annotation = run->annotation;
  const std::string& column = run->monitor_column;
  const FeatureSpaceOptions space = config.explain.feature_space;
  const std::vector<FeatureSpec> specs =
      GenerateFeatureSpecs(*run->registry, space);
  // The timed slice is a narrow (60 s) window inside the incident — the
  // dashboard-poll access pattern the tails exist for. Narrow matters: the
  // archive must read and decode every spilled chunk overlapping the window
  // (read amplification), while the tails slice exactly the rows asked for.
  // The window sits mid-incident so it lands on sealed, spilled chunks, not
  // the open resident tail chunk at stream end.
  const Timestamp mid = annotation.abnormal.range.lower +
                        annotation.abnormal.range.Length() / 2;
  const TimeInterval recent{mid - 30, mid + 30};

  // --- Correctness: one explanation, three feature paths, one answer. ---
  fprintf(stderr, "[bench] checking bit-identity across scan paths ...\n");
  const auto incr_before = system.incremental()->stats();
  const ExplanationReport incremental_report = CheckResult(
      system.Explain(annotation, qid, column), "incremental explain");
  const auto incr_after = system.incremental()->stats();
  const uint64_t tail_hits = (incr_after.full_hits + incr_after.partial_hits) -
                             (incr_before.full_hits + incr_before.partial_hits);
  if (tail_hits == 0) {
    fprintf(stderr, "FAIL: incremental Explain never touched the tails\n");
    return 1;
  }

  ExplainOptions scan_opts = config.explain;
  const ExplanationEngine scan_engine(&system.archive(), &system.partitions(),
                                      system.MakeSeriesProvider(qid, column),
                                      scan_opts);
  const ExplanationReport scan_report =
      CheckResult(scan_engine.Explain(annotation), "scan explain");
  ExplainOptions legacy_opts = config.explain;
  legacy_opts.use_legacy_row_scan = true;
  const ExplanationEngine legacy_engine(&system.archive(), &system.partitions(),
                                        system.MakeSeriesProvider(qid, column),
                                        legacy_opts);
  const ExplanationReport legacy_report =
      CheckResult(legacy_engine.Explain(annotation), "legacy explain");
  const bool incremental_identical =
      ReportsIdentical(incremental_report, scan_report);
  const bool legacy_identical = ReportsIdentical(scan_report, legacy_report);
  if (!incremental_identical || !legacy_identical) {
    fprintf(stderr, "FAIL: scan paths diverged (incremental %d, legacy %d)\n",
            incremental_identical, legacy_identical);
    return 1;
  }

  // --- Timing: recent-interval feature build, tails vs cold archive. ---
  fprintf(stderr, "[bench] timing recent-interval feature build ...\n");
  const FeatureBuilder scan_builder(&system.archive());
  const FeatureBuilder incr_builder(&system.archive(), false,
                                    system.incremental());
  const double build_scan_s = TimeBest(reps, [&] {
    CheckResult(scan_builder.Build(specs, recent), "scan build");
  });
  const double build_incremental_s = TimeBest(reps, [&] {
    CheckResult(incr_builder.Build(specs, recent), "incremental build");
  });
  const double incremental_speedup =
      build_scan_s / std::max(build_incremental_s, 1e-12);

  // --- Timing: cached repeat vs uncached Explain. ---
  fprintf(stderr, "[bench] timing cached vs uncached Explain ...\n");
  ExplainResultCache* cache = system.explain_cache();
  double uncached_explain_s = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < reps; ++r) {
    cache->Clear();
    Stopwatch timer;
    CheckResult(system.Explain(annotation, qid, column), "uncached explain");
    uncached_explain_s = std::min(uncached_explain_s, timer.ElapsedSeconds());
  }
  // Key is warm now; repeats are pure cache hits.
  const size_t hit_batch = 100;
  const double cached_batch_s = TimeBest(reps, [&] {
    for (size_t i = 0; i < hit_batch; ++i) {
      CheckResult(system.Explain(annotation, qid, column), "cached explain");
    }
  });
  const double cached_explain_s = cached_batch_s / hit_batch;
  const double cached_speedup =
      uncached_explain_s / std::max(cached_explain_s, 1e-12);
  const double cached_qps = 1.0 / std::max(cached_explain_s, 1e-12);

  // --- Single-flight: concurrent threads on one cold key. ---
  fprintf(stderr, "[bench] checking single-flight dedup ...\n");
  cache->Clear();
  const auto sf_before = cache->stats();
  {
    const size_t kThreads = 4;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        CheckResult(system.Explain(annotation, qid, column), "sf explain");
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto sf_after = cache->stats();
  const uint64_t single_flight_computations =
      sf_after.computations - sf_before.computations;
  if (single_flight_computations != 1) {
    fprintf(stderr, "FAIL: %llu computations for one key (want 1)\n",
            static_cast<unsigned long long>(single_flight_computations));
    return 1;
  }

  const auto cache_stats = cache->stats();
  const auto incr_stats = system.incremental()->stats();

  printf("\nContinuous-serving Explain throughput, %s (%zu events, %zu specs)\n",
         def.name.c_str(), events_total, specs.size());
  printf("%-36s %12.6f s\n", "feature build, cold archive scan", build_scan_s);
  printf("%-36s %12.6f s  (%.2fx)\n", "feature build, incremental tails",
         build_incremental_s, incremental_speedup);
  printf("%-36s %12.6f s\n", "Explain, uncached", uncached_explain_s);
  printf("%-36s %12.6f s  (%.0fx, %.0f QPS)\n", "Explain, cached repeat",
         cached_explain_s, cached_speedup, cached_qps);
  printf("single-flight: %llu computation(s) for 4 concurrent cold callers\n",
         static_cast<unsigned long long>(single_flight_computations));
  printf("tails: %llu full hits, %llu partial, %llu misses, %llu buffered\n",
         static_cast<unsigned long long>(incr_stats.full_hits),
         static_cast<unsigned long long>(incr_stats.partial_hits),
         static_cast<unsigned long long>(incr_stats.misses),
         static_cast<unsigned long long>(incr_stats.events_buffered));
  printf("explanations bit-identical across incremental/scan/legacy paths\n");
  printf("acceptance: cached %.0fx %s, incremental %.2fx %s\n", cached_speedup,
         smoke ? "(smoke; gate applies to the full run)"
               : (cached_speedup >= 20.0 ? "(PASS, >= 20x)" : "(FAIL, < 20x)"),
         incremental_speedup,
         smoke ? "(smoke; gate applies to the full run)"
               : (incremental_speedup >= 2.0 ? "(PASS, >= 2x)"
                                             : "(FAIL, < 2x)"));

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("explain_qps");
  json.Key("smoke");
  json.Bool(smoke);
  json.Key("workload");
  json.String(def.name);
  json.Key("num_nodes");
  json.UInt(static_cast<size_t>(options.num_nodes));
  json.Key("events_total");
  json.UInt(events_total);
  json.Key("num_specs");
  json.UInt(specs.size());
  json.Key("build_scan_s");
  json.Double(build_scan_s);
  json.Key("build_incremental_s");
  json.Double(build_incremental_s);
  json.Key("incremental_speedup");
  json.Double(incremental_speedup);
  json.Key("uncached_explain_s");
  json.Double(uncached_explain_s);
  json.Key("cached_explain_s");
  json.Double(cached_explain_s);
  json.Key("cached_speedup");
  json.Double(cached_speedup);
  json.Key("cached_qps");
  json.Double(cached_qps);
  json.Key("single_flight_computations");
  json.UInt(static_cast<size_t>(single_flight_computations));
  json.Key("incremental_identical");
  json.Bool(incremental_identical);
  json.Key("legacy_identical");
  json.Bool(legacy_identical);
  json.Key("tail_full_hits");
  json.UInt(static_cast<size_t>(incr_stats.full_hits));
  json.Key("tail_partial_hits");
  json.UInt(static_cast<size_t>(incr_stats.partial_hits));
  json.Key("tail_misses");
  json.UInt(static_cast<size_t>(incr_stats.misses));
  json.Key("tail_events_buffered");
  json.UInt(static_cast<size_t>(incr_stats.events_buffered));
  json.Key("cache_hits");
  json.UInt(static_cast<size_t>(cache_stats.hits));
  json.Key("cache_misses");
  json.UInt(static_cast<size_t>(cache_stats.misses));
  json.Key("cache_single_flight_waits");
  json.UInt(static_cast<size_t>(cache_stats.single_flight_waits));
  json.MemoryObject(SampleMemoryStats());
  json.EndObject();
  if (!json.WriteFile(out_path)) return 1;
  fprintf(stderr, "[bench] wrote %s\n", out_path.c_str());

  if (!smoke && (cached_speedup < 20.0 || incremental_speedup < 2.0)) return 1;
  return 0;
}
