// Reproduces Fig. 5: the logistic-regression model for the Fig. 4 annotated
// anomaly, printed as a ranked weight table.
//
// Expected shape: tens of non-zero weights; the ground-truth signals
// (MemUsage.memFree / MemUsage.swapFree) appear but buried with low |weight|
// relative to their rank — "too noisy to be of use as an explanation".

#include "bench_util.h"

#include "features/builder.h"
#include "ml/dataset.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

using namespace exstream;
using namespace exstream::bench;

int main() {
  auto run = BuildRun(HadoopWorkloads()[0]);  // W1: high memory
  const auto specs = GenerateFeatureSpecs(*run->registry, run->FeatureSpace());
  FeatureBuilder builder(run->archive.get());

  auto abnormal =
      CheckResult(builder.Build(specs, run->annotation.abnormal.range), "build I_A");
  auto reference =
      CheckResult(builder.Build(specs, run->annotation.reference.range), "build I_R");
  auto train = CheckResult(BuildDataset(abnormal, reference, 64), "dataset");

  auto model = CheckResult(LogisticRegression::Fit(train), "logreg fit");
  const auto ranked = model.RankedWeights();

  printf("Figure 5 reproduction: logistic regression model (%zu features of %zu "
         "have non-zero weight)\n\n",
         ranked.size(), specs.size());
  printf("%4s  %-44s %14s %s\n", "No.", "Feature", "Weight", "");
  for (size_t i = 0; i < ranked.size(); ++i) {
    bool is_truth = false;
    for (const auto& g : run->ground_truth) {
      if (SameUnderlyingSignal(ranked[i].first, g)) is_truth = true;
    }
    printf("%4zu  %-44s %14.6g %s\n", i + 1, ranked[i].first.c_str(),
           ranked[i].second, is_truth ? "<-- ground truth" : "");
  }
  printf("\nThe model predicts well but is too large and too noisy to serve as a\n"
         "human-readable explanation (Sec. 2.2).\n");
  return 0;
}
