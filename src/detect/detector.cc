#include "detect/detector.h"

#include <algorithm>

#include "common/stats.h"
#include "explain/labeling.h"

namespace exstream {

AnomalyAnnotation DetectedAnomaly::ToAnnotation(const std::string& query_name) const {
  AnomalyAnnotation out;
  out.abnormal = {query_name, abnormal_region, partition};
  out.reference = {query_name, reference_region, reference_partition};
  return out;
}

AnomalyDetector::AnomalyDetector(const PartitionTable* partitions,
                                 SeriesProvider series_provider,
                                 DetectorOptions options)
    : partitions_(partitions),
      series_provider_(std::move(series_provider)),
      options_(options) {}

Result<std::vector<std::pair<PartitionRecord, TimeSeries>>>
AnomalyDetector::LoadFamily(const PartitionRecord& seed) const {
  std::vector<std::pair<PartitionRecord, TimeSeries>> family;
  std::vector<PartitionRecord> records = {seed};
  for (PartitionRecord& rec : partitions_->FindRelated(seed)) {
    records.push_back(std::move(rec));
  }
  for (const PartitionRecord& rec : records) {
    auto series = series_provider_(rec.query_name, rec.partition);
    if (!series.ok() || series->empty()) continue;
    family.emplace_back(rec, std::move(*series));
  }
  if (family.size() < 3) {
    return Status::InvalidArgument(
        "anomaly detection needs at least 3 comparable partitions");
  }
  return family;
}

namespace {

// Detection distance between two interval series: a deviation in EITHER the
// value distribution OR the event frequency marks an anomaly, so take the
// max of the two components (the labeling distance averages them, which
// caps single-component deviations at the component's weight).
double DetectionDistance(const TimeSeries& a, const TimeSeries& b,
                         const LabelingOptions& options) {
  LabelingOptions value_only = options;
  value_only.entropy_weight = 1.0;
  value_only.frequency_weight = 0.0;
  LabelingOptions freq_only = options;
  freq_only.entropy_weight = 0.0;
  freq_only.frequency_weight = 1.0;
  return std::max(IntervalDistance(a, b, value_only),
                  IntervalDistance(a, b, freq_only));
}

// The k-th point-aligned chunk of a series: points with index in
// [k*n/segments, (k+1)*n/segments). Point-based alignment (the paper's
// Fig. 11(b)) is what makes a locally slowed partition comparable to a normal
// one: the i-th match point corresponds to the same amount of monitored work
// in both, so values align and the slowdown surfaces purely as a frequency
// drop in the affected chunks.
TimeSeries PointChunk(const TimeSeries& s, size_t k, size_t segments) {
  TimeSeries out;
  if (s.empty()) return out;
  const size_t lo = k * s.size() / segments;
  const size_t hi = std::min(s.size(), (k + 1) * s.size() / segments);
  for (size_t i = lo; i < hi; ++i) (void)out.Append(s.time(i), s.value(i));
  return out;
}

// Distances between point-aligned chunks of two monitored series, under the
// exact component weights in `options` (pass entropy-only or frequency-only
// weights to isolate one component).
std::vector<double> SegmentDistances(const TimeSeries& a, const TimeSeries& b,
                                     size_t segments,
                                     const LabelingOptions& options) {
  if (a.empty() || b.empty()) return std::vector<double>(segments, 1.0);
  std::vector<double> out(segments, 0.0);
  for (size_t k = 0; k < segments; ++k) {
    out[k] = IntervalDistance(PointChunk(a, k, segments),
                              PointChunk(b, k, segments), options);
  }
  return out;
}

// Component-maxed chunk distances (for outlier scoring).
std::vector<double> MaxedSegmentDistances(const TimeSeries& a, const TimeSeries& b,
                                          size_t segments,
                                          const LabelingOptions& options) {
  if (a.empty() || b.empty()) return std::vector<double>(segments, 1.0);
  std::vector<double> out(segments, 0.0);
  for (size_t k = 0; k < segments; ++k) {
    out[k] = DetectionDistance(PointChunk(a, k, segments),
                               PointChunk(b, k, segments), options);
  }
  return out;
}

// Pairwise partition distance: the worst aligned segment. A localized
// deviation (the usual anomaly shape) would be diluted by a whole-series
// comparison, but dominates the aligned segment it lives in.
double PairDistance(const TimeSeries& a, const TimeSeries& b, size_t segments,
                    const LabelingOptions& options) {
  const std::vector<double> d = MaxedSegmentDistances(a, b, segments, options);
  return d.empty() ? 1.0 : *std::max_element(d.begin(), d.end());
}

}  // namespace

Result<std::vector<std::pair<std::string, double>>> AnomalyDetector::Scores(
    const PartitionRecord& seed) const {
  EXSTREAM_ASSIGN_OR_RETURN(const auto family, LoadFamily(seed));
  const size_t n = family.size();
  const size_t segments = std::max<size_t>(2, options_.scoring_segments);
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = PairDistance(family[i].second, family[j].second, segments,
                                    options_.distance);
      dist[i][j] = d;
      dist[j][i] = d;
    }
  }
  std::vector<std::pair<std::string, double>> scores;
  scores.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> others;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(dist[i][j]);
    }
    scores.emplace_back(family[i].first.partition, Percentile(others, 50));
  }
  return scores;
}

Result<std::vector<DetectedAnomaly>> AnomalyDetector::Detect(
    const PartitionRecord& seed) const {
  EXSTREAM_ASSIGN_OR_RETURN(const auto family, LoadFamily(seed));
  EXSTREAM_ASSIGN_OR_RETURN(const auto scores, Scores(seed));

  // Partition indices of normal members (for nearest-normal lookup). A
  // member is an outlier only if it clears both the absolute floor and the
  // family-relative bar.
  std::vector<double> all_scores;
  all_scores.reserve(scores.size());
  for (const auto& [_, s] : scores) all_scores.push_back(s);
  const double median_score = Percentile(all_scores, 50);
  std::vector<size_t> normal_idx;
  std::vector<size_t> outlier_idx;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool outlier = scores[i].second > options_.outlier_threshold &&
                         scores[i].second > options_.median_ratio * median_score;
    (outlier ? outlier_idx : normal_idx).push_back(i);
  }
  std::vector<DetectedAnomaly> out;
  if (outlier_idx.empty() || normal_idx.empty()) return out;

  for (const size_t oi : outlier_idx) {
    const TimeSeries& o_series = family[oi].second;
    const PartitionRecord& o_rec = family[oi].first;

    // Nearest normal member by pairwise distance.
    const size_t segments = std::max<size_t>(2, options_.localization_segments);
    size_t best = normal_idx[0];
    double best_d = 2.0;
    for (const size_t ni : normal_idx) {
      const double d =
          PairDistance(o_series, family[ni].second, segments, options_.distance);
      if (d < best_d) {
        best_d = d;
        best = ni;
      }
    }
    const TimeSeries& n_series = family[best].second;
    const PartitionRecord& n_rec = family[best].first;

    // Localize against the nearest normal, per distance component: a slowed
    // region shows as a frequency drop localized at the cause, while monitored
    // *values* often stay perturbed long after (aftereffects of the delay).
    // Each component gets a per-chunk baseline from normal-vs-normal pairs so
    // family-intrinsic jitter does not count as deviation; the final region
    // is the most compact non-empty component signal.
    const Timestamp o_start = o_series.start_time();
    const Timestamp o_span = std::max<Timestamp>(1, o_series.end_time() - o_start);

    LabelingOptions value_only = options_.distance;
    value_only.entropy_weight = 1.0;
    value_only.frequency_weight = 0.0;
    LabelingOptions freq_only = options_.distance;
    freq_only.entropy_weight = 0.0;
    freq_only.frequency_weight = 1.0;

    auto deviating_run = [&](const LabelingOptions& component)
        -> std::pair<size_t, size_t> {  // (start, len); len 0 = none
      const std::vector<double> seg_dist =
          SegmentDistances(o_series, n_series, segments, component);
      std::vector<double> baseline(segments, 0.0);
      if (normal_idx.size() >= 2) {
        std::vector<std::vector<double>> per_segment(segments);
        for (size_t a = 0; a < normal_idx.size(); ++a) {
          for (size_t b = a + 1; b < normal_idx.size(); ++b) {
            const std::vector<double> d =
                SegmentDistances(family[normal_idx[a]].second,
                                 family[normal_idx[b]].second, segments, component);
            for (size_t k = 0; k < segments; ++k) per_segment[k].push_back(d[k]);
          }
        }
        for (size_t k = 0; k < segments; ++k) {
          baseline[k] = Percentile(per_segment[k], 50);
        }
      }
      size_t best_start = 0;
      size_t best_len = 0;
      size_t cur_start = 0;
      size_t cur_len = 0;
      for (size_t k = 0; k <= segments; ++k) {
        const bool dev =
            k < segments &&
            seg_dist[k] > std::max(options_.segment_threshold, 1.5 * baseline[k]);
        if (dev) {
          if (cur_len == 0) cur_start = k;
          ++cur_len;
        } else {
          if (cur_len > best_len) {
            best_len = cur_len;
            best_start = cur_start;
          }
          cur_len = 0;
        }
      }
      return {best_start, best_len};
    };

    const auto freq_run = deviating_run(freq_only);
    const auto value_run = deviating_run(value_only);
    std::pair<size_t, size_t> run;
    if (freq_run.second > 0 && value_run.second > 0) {
      run = freq_run.second <= value_run.second ? freq_run : value_run;
    } else if (freq_run.second > 0) {
      run = freq_run;
    } else if (value_run.second > 0) {
      run = value_run;
    } else {
      run = {0, segments};  // globally odd but no localized region: take all
    }
    const size_t best_start = run.first;
    const size_t best_len = run.second;

    DetectedAnomaly anomaly;
    anomaly.partition = o_rec.partition;
    anomaly.score = scores[oi].second;
    const TimeSeries first_chunk = PointChunk(o_series, best_start, segments);
    const TimeSeries last_chunk =
        PointChunk(o_series, best_start + best_len - 1, segments);
    anomaly.abnormal_region = {
        first_chunk.empty() ? o_start : first_chunk.start_time(),
        last_chunk.empty() ? o_series.end_time() : last_chunk.end_time()};

    // Reference: prefer the non-deviating remainder of the same partition
    // (the Fig. 4 shape) when it is substantial; otherwise use the nearest
    // normal partition (the paper's cross-partition reference annotation).
    const Timestamp min_ref_len = static_cast<Timestamp>(
        options_.min_reference_fraction * static_cast<double>(o_span));
    const Timestamp tail_len = o_series.end_time() - anomaly.abnormal_region.upper;
    const Timestamp head_len = anomaly.abnormal_region.lower - o_start;
    if (tail_len >= min_ref_len) {
      anomaly.reference_partition = o_rec.partition;
      anomaly.reference_region = {anomaly.abnormal_region.upper + 1,
                                  o_series.end_time()};
    } else if (head_len >= min_ref_len) {
      anomaly.reference_partition = o_rec.partition;
      anomaly.reference_region = {o_start, anomaly.abnormal_region.lower - 1};
    } else {
      anomaly.reference_partition = n_rec.partition;
      anomaly.reference_region = {n_series.start_time(), n_series.end_time()};
    }
    out.push_back(std::move(anomaly));
  }

  std::sort(out.begin(), out.end(),
            [](const DetectedAnomaly& a, const DetectedAnomaly& b) {
              return a.score > b.score;
            });
  return out;
}

}  // namespace exstream
