// Automatic anomaly recognition — the proactive-monitoring extension the
// paper names as future work (Sec. 8: "automatic recognition and explanation
// of anomalous behaviors").
//
// Given the family of partitions produced by one monitoring query (e.g. all
// runs of the same Hadoop program on the same dataset), the detector scores
// how far each partition's monitored series deviates from the family
// consensus, flags outliers, localizes the deviating region, and emits a
// ready-to-explain AnomalyAnnotation — replacing the human annotation step of
// the core pipeline.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "explain/annotation.h"
#include "explain/engine.h"
#include "explain/partition_table.h"

namespace exstream {

struct DetectorOptions {
  /// A partition is an outlier when its median distance to the rest of the
  /// family exceeds this (IntervalDistance is in [0,1]) ...
  double outlier_threshold = 0.5;
  /// ... AND exceeds `median_ratio` times the family's median score. The
  /// relative test adapts to the family's intrinsic noise level (queue curves
  /// of identical jobs still differ segment-by-segment).
  double median_ratio = 1.4;
  /// Coarse segment count used for outlier scoring: slices must stay large
  /// enough that the entropy distance between two *normal* slices is low.
  size_t scoring_segments = 8;
  /// Finer segment count used to localize the deviating region of a partition
  /// already known to be an outlier.
  size_t localization_segments = 16;
  /// A segment deviates when its distance to the aligned normal segment
  /// exceeds this.
  double segment_threshold = 0.5;
  /// The same-partition remainder is used as the reference interval only when
  /// it covers at least this fraction of the partition's span; otherwise the
  /// nearest normal partition serves as reference (the paper's cross-partition
  /// reference annotation).
  double min_reference_fraction = 0.3;
  /// Labeling weights reused for the interval distance.
  LabelingOptions distance;
};

/// \brief One automatically detected anomaly.
struct DetectedAnomaly {
  std::string partition;
  double score = 0.0;                ///< median distance to the family
  TimeInterval abnormal_region;      ///< localized deviating time range
  TimeInterval reference_region;     ///< non-deviating range of a normal peer
  std::string reference_partition;   ///< the nearest normal family member

  /// Converts to the annotation format the ExplanationEngine consumes.
  AnomalyAnnotation ToAnnotation(const std::string& query_name) const;
};

/// \brief Scores a partition family and reports outliers.
class AnomalyDetector {
 public:
  AnomalyDetector(const PartitionTable* partitions, SeriesProvider series_provider,
                  DetectorOptions options = {});

  /// \brief Detects anomalous partitions among `seed` and its related
  /// partitions (same query + dimensions).
  ///
  /// Requires at least 3 family members (a lone pair cannot distinguish
  /// which side is anomalous).
  Result<std::vector<DetectedAnomaly>> Detect(const PartitionRecord& seed) const;

  /// \brief Per-partition deviation scores (diagnostics / dashboards).
  Result<std::vector<std::pair<std::string, double>>> Scores(
      const PartitionRecord& seed) const;

 private:
  Result<std::vector<std::pair<PartitionRecord, TimeSeries>>> LoadFamily(
      const PartitionRecord& seed) const;

  const PartitionTable* partitions_;  // not owned
  SeriesProvider series_provider_;
  DetectorOptions options_;
};

}  // namespace exstream
