#include "detect/streaming_detector.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace exstream {

StreamingDetector::StreamingDetector(std::string query_name,
                                     StreamingDetectorOptions options)
    : query_name_(std::move(query_name)), options_(options) {}

void StreamingDetector::Observe(std::string_view partition, Timestamp ts,
                                double value) {
  if (std::isnan(value)) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
  auto [it, inserted] = partitions_.try_emplace(std::string(partition));
  PartitionState& st = it->second;
  if (inserted) st.first_ts = ts;
  st.last_ts = ts;

  if (st.samples >= options_.warmup_samples) {
    const double stddev = std::sqrt(std::max(0.0, st.var));
    // A flat-lined baseline (stddev 0) treats any deviation as abnormal.
    const double z = stddev > 0.0 ? (value - st.mean) / stddev
                                  : (value == st.mean ? 0.0
                                                      : options_.z_threshold);
    if (std::abs(z) >= options_.z_threshold) {
      if (!st.in_anomaly) {
        st.in_anomaly = true;
        st.anomaly_start = ts;
        st.peak_z = 0.0;
        st.abnormal_samples = 0;
        ++excursions_opened_;
      }
      st.last_abnormal = ts;
      st.peak_z = std::max(st.peak_z, std::abs(z));
      ++st.abnormal_samples;
      st.normal_run = 0;
      // The baseline is frozen for the excursion's duration: folding
      // anomalous values into the EWMA would teach the detector that the
      // anomaly is normal and close the excursion from the wrong side.
      return;
    }
    if (st.in_anomaly) {
      if (++st.normal_run >= options_.cooldown_samples) {
        CloseExcursion(it->first, &st);
      }
      return;  // cooldown samples do not move the frozen baseline either
    }
  }

  // Baseline update: plain Welford accumulation during warmup (an EWMA from
  // a cold start overweights the first samples), EWMA afterwards so the
  // baseline tracks slow drift.
  ++st.samples;
  if (st.samples <= options_.warmup_samples) {
    const double delta = value - st.mean;
    st.mean += delta / static_cast<double>(st.samples);
    st.var += (delta * (value - st.mean) - st.var) /
              static_cast<double>(st.samples);
  } else {
    const double a = options_.ewma_alpha;
    const double delta = value - st.mean;
    st.mean += a * delta;
    st.var = (1.0 - a) * (st.var + a * delta * delta);
  }
}

void StreamingDetector::CloseExcursion(const std::string& partition,
                                       PartitionState* st) {
  st->in_anomaly = false;
  st->normal_run = 0;
  if (st->abnormal_samples < options_.min_anomaly_samples) {
    ++anomalies_dropped_;
    return;
  }
  const TimeInterval abnormal{st->anomaly_start, st->last_abnormal};
  // Reference: the same-length span immediately before the excursion,
  // clipped to the partition's start (the paper's same-partition reference
  // annotation, Sec. 2.1).
  const Timestamp span = std::max<Timestamp>(abnormal.Length(), 1);
  const TimeInterval reference{std::max(st->first_ts, abnormal.lower - span),
                               abnormal.lower - 1};
  if (reference.upper < reference.lower ||
      static_cast<double>(reference.Length()) <
          options_.min_reference_fraction * static_cast<double>(span)) {
    ++anomalies_dropped_;
    return;
  }
  StreamAnomaly out;
  out.partition = partition;
  out.peak_z = st->peak_z;
  out.abnormal_samples = st->abnormal_samples;
  out.annotation.abnormal = IntervalRef{query_name_, abnormal, partition};
  out.annotation.reference = IntervalRef{query_name_, reference, partition};
  ready_.push_back(std::move(out));
  ++anomalies_emitted_;
  while (ready_.size() > options_.max_pending) {
    ready_.pop_front();
    ++anomalies_dropped_;
  }
}

size_t StreamingDetector::FinalizeOpenExcursions() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t closed = 0;
  for (auto& [partition, st] : partitions_) {
    if (!st.in_anomaly) continue;
    CloseExcursion(partition, &st);
    ++closed;
  }
  return closed;
}

std::vector<StreamAnomaly> StreamingDetector::TakeReady() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamAnomaly> out(std::make_move_iterator(ready_.begin()),
                                 std::make_move_iterator(ready_.end()));
  ready_.clear();
  return out;
}

StreamingDetector::Stats StreamingDetector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.samples = samples_;
  s.excursions_opened = excursions_opened_;
  s.anomalies_emitted = anomalies_emitted_;
  s.anomalies_dropped = anomalies_dropped_;
  s.partitions_tracked = partitions_.size();
  return s;
}

}  // namespace exstream
