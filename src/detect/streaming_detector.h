// StreamingDetector: online anomaly recognition over the monitored series.
//
// The batch AnomalyDetector (detector.h) scores a finished partition family;
// this detector instead watches match rows as they are emitted — an EWMA
// mean/variance per partition with a z-score gate — and turns each excursion
// into a ready-to-explain AnomalyAnnotation the moment it closes. Riding the
// CEP engine's match callback keeps it on the ingest thread with
// deterministic sample order, so detection results are reproducible for a
// fixed event stream regardless of batching.

#pragma once

#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "explain/annotation.h"

namespace exstream {

struct StreamingDetectorOptions {
  /// |z| at or above which a sample is abnormal (z against the EWMA
  /// mean/stddev frozen at the excursion's start).
  double z_threshold = 4.0;
  /// EWMA smoothing for mean and variance (per sample).
  double ewma_alpha = 0.05;
  /// Samples before a partition may flag anything (the baseline must exist).
  size_t warmup_samples = 32;
  /// Consecutive normal samples that close an open excursion.
  size_t cooldown_samples = 4;
  /// Excursions with fewer abnormal samples than this are discarded (noise).
  size_t min_anomaly_samples = 2;
  /// The pre-excursion reference interval must cover at least this fraction
  /// of the abnormal interval's length, else the anomaly is dropped as
  /// unexplainable (no baseline to contrast against).
  double min_reference_fraction = 0.5;
  /// Bounded ready queue: oldest finalized anomalies are dropped (counted)
  /// when the consumer falls behind.
  size_t max_pending = 64;
};

/// \brief One finalized streaming anomaly, ready for Explain.
struct StreamAnomaly {
  std::string partition;
  double peak_z = 0.0;          ///< strongest z inside the excursion
  size_t abnormal_samples = 0;  ///< samples at or above the threshold
  AnomalyAnnotation annotation; ///< abnormal + same-partition reference
};

/// \brief Per-partition EWMA z-score detector over one query's match stream.
///
/// Observe() is called from the ingest thread (match callback order);
/// TakeReady()/stats() may be called from any thread.
class StreamingDetector {
 public:
  StreamingDetector(std::string query_name, StreamingDetectorOptions options = {});

  /// Feeds one monitored sample (one match row's visualized column).
  void Observe(std::string_view partition, Timestamp ts, double value);

  /// Drains finalized anomalies (FIFO).
  std::vector<StreamAnomaly> TakeReady();

  /// \brief Closes every still-open excursion as if the stream had ended.
  ///
  /// A series that stays elevated through the last sample never accumulates
  /// the cooldown run that normally closes its excursion, so without this the
  /// incident is silently lost. Call at end-of-stream (after the final
  /// Flush); each open excursion is finalized through the same
  /// emit-or-discard path as a cooldown close, with the last abnormal sample
  /// as its upper bound. Returns the number of excursions closed (emitted or
  /// discarded). Safe to call on a live stream, but an excursion closed here
  /// mid-incident will re-open on the next abnormal sample and emit again.
  size_t FinalizeOpenExcursions();

  struct Stats {
    uint64_t samples = 0;
    uint64_t excursions_opened = 0;
    uint64_t anomalies_emitted = 0;
    uint64_t anomalies_dropped = 0;   ///< too short / no reference / overflow
    size_t partitions_tracked = 0;
  };
  Stats stats() const;

  const StreamingDetectorOptions& options() const { return options_; }

 private:
  struct PartitionState {
    size_t samples = 0;
    double mean = 0.0;
    double var = 0.0;
    Timestamp first_ts = 0;
    Timestamp last_ts = 0;
    // Open excursion (in_anomaly): baseline frozen, bounds accumulating.
    bool in_anomaly = false;
    Timestamp anomaly_start = 0;
    Timestamp last_abnormal = 0;
    double peak_z = 0.0;
    size_t abnormal_samples = 0;
    size_t normal_run = 0;
  };

  void CloseExcursion(const std::string& partition, PartitionState* st);

  const std::string query_name_;
  const StreamingDetectorOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, PartitionState> partitions_;
  std::deque<StreamAnomaly> ready_;
  uint64_t samples_ = 0;
  uint64_t excursions_opened_ = 0;
  uint64_t anomalies_emitted_ = 0;
  uint64_t anomalies_dropped_ = 0;
};

}  // namespace exstream
