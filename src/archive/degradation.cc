#include "archive/degradation.h"

#include "common/strings.h"

namespace exstream {

void DegradationReport::Merge(const DegradationReport& other) {
  skipped.insert(skipped.end(), other.skipped.begin(), other.skipped.end());
  events_lost_estimate += other.events_lost_estimate;
  for (const auto& [type, cov] : other.coverage) {
    TypeCoverage& mine = coverage[type];
    mine.chunks_total += cov.chunks_total;
    mine.chunks_skipped += cov.chunks_skipped;
  }
  events_shed += other.events_shed;
  events_rejected += other.events_rejected;
  resolution_degraded += other.resolution_degraded;
}

std::string DegradationReport::ToString() const {
  if (!degraded()) return "no degradation";
  std::string out = StrFormat("%zu chunk%s skipped (~%zu events lost", skipped.size(),
                              skipped.size() == 1 ? "" : "s", events_lost_estimate);
  for (const auto& [type, cov] : coverage) {
    if (cov.chunks_skipped == 0) continue;
    out += StrFormat("; type %u coverage %.2f", type, cov.fraction());
  }
  if (events_shed > 0) out += StrFormat("; %zu events shed at ingest", events_shed);
  if (resolution_degraded > 0) {
    out += StrFormat("; %zu chunk%s resolution-degraded (raw tier evicted)",
                     resolution_degraded, resolution_degraded == 1 ? "" : "s");
  }
  if (events_rejected > 0) {
    out += StrFormat("; %zu malformed events rejected", events_rejected);
  }
  out += ")";
  return out;
}

}  // namespace exstream
