#include "archive/compress.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/strings.h"

namespace exstream {

namespace {

// Longest legal LEB128 encoding of a uint64 (10 × 7 bits >= 64).
constexpr int kMaxVarintBytes = 10;

}  // namespace

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < kMaxVarintBytes; ++i) {
    if (pos_ >= data_.size()) {
      return Status::Truncated(
          StrFormat("varint runs past end of buffer at offset %zu", pos_));
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (i == kMaxVarintBytes - 1 && (byte & 0xFE) != 0) {
      // The 10th byte may only carry the top bit of a uint64.
      return Status::Corruption(
          StrFormat("varint overflows 64 bits at offset %zu", pos_ - 1));
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::Corruption(
      StrFormat("varint longer than %d bytes at offset %zu", kMaxVarintBytes, pos_));
}

Result<uint8_t> ByteReader::GetU8() {
  if (pos_ >= data_.size()) {
    return Status::Truncated(
        StrFormat("byte read past end of buffer at offset %zu", pos_));
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<std::string_view> ByteReader::GetBytes(size_t n) {
  if (n > data_.size() - pos_) {
    return Status::Truncated(StrFormat(
        "byte range at offset %zu needs %zu bytes, %zu left", pos_, n, remaining()));
  }
  std::string_view v = data_.substr(pos_, n);
  pos_ += n;
  return v;
}

void BitWriter::Write(uint64_t bits, int n) {
  if (n <= 0) return;
  if (n < 64) bits &= (uint64_t{1} << n) - 1;
  // Feed the accumulator MSB-first, draining full bytes as they form.
  int left = n;
  while (left > 0) {
    const int take = std::min(left, 8 - acc_bits_);
    const uint64_t piece = (bits >> (left - take)) & ((uint64_t{1} << take) - 1);
    acc_ = (acc_ << take) | piece;
    acc_bits_ += take;
    left -= take;
    if (acc_bits_ == 8) {
      out_->push_back(static_cast<char>(acc_ & 0xFF));
      acc_ = 0;
      acc_bits_ = 0;
    }
  }
}

void BitWriter::Finish() {
  if (acc_bits_ > 0) {
    out_->push_back(static_cast<char>((acc_ << (8 - acc_bits_)) & 0xFF));
    acc_ = 0;
    acc_bits_ = 0;
  }
}

Result<uint64_t> BitReader::Read(int n) {
  if (n <= 0) return uint64_t{0};
  if (n > 64) return Status::Corruption("bit read wider than 64 bits");
  const size_t available = (data_.size() - byte_) * 8 - static_cast<size_t>(bit_);
  if (static_cast<size_t>(n) > available) {
    return Status::Truncated(
        StrFormat("bit stream ends %zu bits short", static_cast<size_t>(n) - available));
  }
  uint64_t v = 0;
  int left = n;
  while (left > 0) {
    const int take = std::min(left, 8 - bit_);
    const uint8_t cur = static_cast<uint8_t>(data_[byte_]);
    const uint8_t piece =
        static_cast<uint8_t>((cur >> (8 - bit_ - take)) & ((1u << take) - 1));
    v = (v << take) | piece;
    bit_ += take;
    left -= take;
    if (bit_ == 8) {
      bit_ = 0;
      ++byte_;
    }
  }
  return v;
}

void EncodeTimestampsDoD(const std::vector<Timestamp>& ts, std::string* out) {
  if (ts.empty()) return;
  PutSignedVarint(out, ts[0]);
  if (ts.size() == 1) return;
  int64_t prev_delta = ts[1] - ts[0];
  PutSignedVarint(out, prev_delta);
  for (size_t i = 2; i < ts.size(); ++i) {
    const int64_t delta = ts[i] - ts[i - 1];
    PutSignedVarint(out, delta - prev_delta);
    prev_delta = delta;
  }
}

Status DecodeTimestampsDoD(std::string_view data, size_t n,
                           std::vector<Timestamp>* out) {
  out->clear();
  if (n == 0) {
    if (!data.empty()) return Status::Corruption("ts stream has bytes but 0 rows");
    return Status::OK();
  }
  // Each delta-of-delta costs at least one byte, so the buffer bounds the
  // reserve — a corrupt row count cannot drive a huge allocation.
  out->reserve(std::min(n, data.size()));
  ByteReader r(data);
  EXSTREAM_ASSIGN_OR_RETURN(const int64_t first, r.GetSignedVarint());
  out->push_back(first);
  if (n > 1) {
    EXSTREAM_ASSIGN_OR_RETURN(int64_t delta, r.GetSignedVarint());
    out->push_back(out->back() + delta);
    for (size_t i = 2; i < n; ++i) {
      EXSTREAM_ASSIGN_OR_RETURN(const int64_t dod, r.GetSignedVarint());
      delta += dod;
      out->push_back(out->back() + delta);
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption(
        StrFormat("%zu trailing bytes after %zu timestamps", r.remaining(), n));
  }
  return Status::OK();
}

namespace {

constexpr uint8_t kDoublesRaw = 0;
constexpr uint8_t kDoublesXor = 1;
constexpr uint8_t kDoublesScaledInt = 2;
// Decimal powers the integer mode probes, cheapest first. 10^p must be exact
// in double for the round-trip check below to mean anything (true through
// 10^15).
constexpr double kPow10[] = {1.0, 10.0, 100.0, 1000.0, 10000.0, 1000000.0};
constexpr int kNumPows = 6;

void EncodeDoublesXor(const double* vals, size_t n, std::string* out) {
  BitWriter w(out);
  uint64_t prev = std::bit_cast<uint64_t>(vals[0]);
  w.Write(prev, 64);
  int prev_leading = -1;  // no reusable window yet
  int prev_length = 0;
  for (size_t i = 1; i < n; ++i) {
    const uint64_t cur = std::bit_cast<uint64_t>(vals[i]);
    const uint64_t x = cur ^ prev;
    prev = cur;
    if (x == 0) {
      w.Write(0, 1);
      continue;
    }
    int leading = std::countl_zero(x);
    const int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit field cap
    const int length = 64 - leading - trailing;
    if (prev_leading >= 0 && leading >= prev_leading &&
        trailing >= 64 - prev_leading - prev_length) {
      // '10': the meaningful bits fit the previous window — reuse it.
      w.Write(0b10, 2);
      w.Write(x >> (64 - prev_leading - prev_length), prev_length);
    } else {
      // '11': new window: 5-bit leading zeros, 6-bit (length - 1), bits.
      w.Write(0b11, 2);
      w.Write(static_cast<uint64_t>(leading), 5);
      w.Write(static_cast<uint64_t>(length - 1), 6);
      w.Write(x >> trailing, length);
      prev_leading = leading;
      prev_length = length;
    }
  }
  w.Finish();
}

Status DecodeDoublesXor(std::string_view payload, size_t n,
                        std::vector<double>* out) {
  BitReader r(payload);
  EXSTREAM_ASSIGN_OR_RETURN(uint64_t prev, r.Read(64));
  out->push_back(std::bit_cast<double>(prev));
  int leading = 0;
  int length = 0;
  for (size_t i = 1; i < n; ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t same, r.Read(1));
    if (same == 0) {
      out->push_back(std::bit_cast<double>(prev));
      continue;
    }
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t fresh, r.Read(1));
    if (fresh != 0) {
      EXSTREAM_ASSIGN_OR_RETURN(const uint64_t lead, r.Read(5));
      EXSTREAM_ASSIGN_OR_RETURN(const uint64_t len1, r.Read(6));
      leading = static_cast<int>(lead);
      length = static_cast<int>(len1) + 1;
    } else if (length == 0) {
      return Status::Corruption("XOR stream reuses a window before defining one");
    }
    if (leading + length > 64) {
      return Status::Corruption(
          StrFormat("XOR window %d+%d exceeds 64 bits", leading, length));
    }
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t bits, r.Read(length));
    prev ^= bits << (64 - leading - length);
    out->push_back(std::bit_cast<double>(prev));
  }
  return Status::OK();
}

// Probes the smallest decimal power that represents every value exactly as a
// scaled integer; returns -1 when none does. Exactness is bit-level: the
// decoder's divide must reproduce the original double bit for bit (so -0.0,
// NaN, and inexact decimals all fall through to XOR/raw).
int FindScaledIntPower(const double* vals, size_t n) {
  for (int p = 0; p < kNumPows; ++p) {
    bool ok = true;
    for (size_t i = 0; i < n; ++i) {
      const double scaled = vals[i] * kPow10[p];
      if (!(std::fabs(scaled) < 9.0e15)) {  // NaN/inf fail here too
        ok = false;
        break;
      }
      const int64_t iv = std::llround(scaled);
      if (std::bit_cast<uint64_t>(static_cast<double>(iv) / kPow10[p]) !=
          std::bit_cast<uint64_t>(vals[i])) {
        ok = false;
        break;
      }
    }
    if (ok) return p;
  }
  return -1;
}

}  // namespace

void EncodeDoubles(const double* vals, size_t n, std::string* out) {
  if (n == 0) return;
  std::string payload;
  uint8_t mode = kDoublesRaw;
  const int pow = FindScaledIntPower(vals, n);
  if (pow >= 0) {
    mode = kDoublesScaledInt;
    payload.push_back(static_cast<char>(pow));
    int64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      const int64_t iv = std::llround(vals[i] * kPow10[pow]);
      PutSignedVarint(&payload, iv - prev);
      prev = iv;
    }
  } else {
    EncodeDoublesXor(vals, n, &payload);
    mode = kDoublesXor;
  }
  if (payload.size() >= n * sizeof(double)) {
    // Compression did not pay (adversarial bit patterns): store raw.
    payload.assign(reinterpret_cast<const char*>(vals), n * sizeof(double));
    mode = kDoublesRaw;
  }
  out->push_back(static_cast<char>(mode));
  PutVarint(out, payload.size());
  out->append(payload);
}

Status DecodeDoubles(ByteReader* r, size_t n, std::vector<double>* out) {
  out->clear();
  if (n == 0) return Status::OK();
  EXSTREAM_ASSIGN_OR_RETURN(const uint8_t mode, r->GetU8());
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t len, r->GetVarint());
  EXSTREAM_ASSIGN_OR_RETURN(const std::string_view payload,
                            r->GetBytes(static_cast<size_t>(len)));
  switch (mode) {
    case kDoublesRaw: {
      if (payload.size() != n * sizeof(double)) {
        return Status::Corruption(
            StrFormat("raw double stream holds %zu bytes, %zu rows need %zu",
                      payload.size(), n, n * sizeof(double)));
      }
      out->resize(n);
      std::memcpy(out->data(), payload.data(), payload.size());
      return Status::OK();
    }
    case kDoublesXor: {
      out->reserve(n);
      return DecodeDoublesXor(payload, n, out);
    }
    case kDoublesScaledInt: {
      ByteReader pr(payload);
      EXSTREAM_ASSIGN_OR_RETURN(const uint8_t pow, pr.GetU8());
      if (pow >= kNumPows) {
        return Status::Corruption(
            StrFormat("scaled-int double stream has bad power %u", pow));
      }
      out->reserve(n);
      int64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        EXSTREAM_ASSIGN_OR_RETURN(const int64_t delta, pr.GetSignedVarint());
        prev += delta;
        out->push_back(static_cast<double>(prev) / kPow10[pow]);
      }
      if (!pr.AtEnd()) {
        return Status::Corruption("trailing bytes after scaled-int doubles");
      }
      return Status::OK();
    }
    default:
      return Status::Corruption(StrFormat("bad double stream mode %u", mode));
  }
}

void EncodeTagsRle(const std::vector<uint8_t>& tags, std::string* out) {
  // Count runs first so the run count prefixes the stream.
  size_t runs = 0;
  for (size_t i = 0; i < tags.size();) {
    size_t j = i + 1;
    while (j < tags.size() && tags[j] == tags[i]) ++j;
    ++runs;
    i = j;
  }
  PutVarint(out, runs);
  for (size_t i = 0; i < tags.size();) {
    size_t j = i + 1;
    while (j < tags.size() && tags[j] == tags[i]) ++j;
    out->push_back(static_cast<char>(tags[i]));
    PutVarint(out, j - i);
    i = j;
  }
}

Status DecodeTagsRle(ByteReader* r, size_t rows, std::vector<uint8_t>* out) {
  out->clear();
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t runs, r->GetVarint());
  if (runs > rows) {
    return Status::Corruption(
        StrFormat("%llu tag runs exceed %zu rows",
                  static_cast<unsigned long long>(runs), rows));
  }
  out->reserve(rows);
  for (uint64_t i = 0; i < runs; ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(const uint8_t tag, r->GetU8());
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t len, r->GetVarint());
    if (len == 0 || len > rows - out->size()) {
      return Status::Corruption(
          StrFormat("tag run %llu of length %llu overflows %zu rows",
                    static_cast<unsigned long long>(i),
                    static_cast<unsigned long long>(len), rows));
    }
    out->insert(out->end(), static_cast<size_t>(len), tag);
  }
  if (out->size() != rows) {
    return Status::Corruption(StrFormat("tag runs cover %zu of %zu rows",
                                        out->size(), rows));
  }
  return Status::OK();
}

void EncodeInts(const int64_t* vals, size_t n, std::string* out) {
  int64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    // Wrap-around subtraction: deltas are exact mod 2^64, so extreme values
    // round-trip even when the true difference overflows int64.
    const int64_t delta = static_cast<int64_t>(static_cast<uint64_t>(vals[i]) -
                                               static_cast<uint64_t>(prev));
    PutSignedVarint(out, delta);
    prev = vals[i];
  }
}

Status DecodeInts(ByteReader* r, size_t n, std::vector<int64_t>* out) {
  out->clear();
  out->reserve(std::min(n, r->remaining()));
  int64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(const int64_t delta, r->GetSignedVarint());
    prev = static_cast<int64_t>(static_cast<uint64_t>(prev) +
                                static_cast<uint64_t>(delta));
    out->push_back(prev);
  }
  return Status::OK();
}

void EncodeU32s(const uint32_t* vals, size_t n, std::string* out) {
  for (size_t i = 0; i < n; ++i) PutVarint(out, vals[i]);
}

Status DecodeU32s(ByteReader* r, size_t n, std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(std::min(n, r->remaining()));
  for (size_t i = 0; i < n; ++i) {
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t v, r->GetVarint());
    if (v > UINT32_MAX) {
      return Status::Corruption(
          StrFormat("u32 stream value %llu overflows 32 bits",
                    static_cast<unsigned long long>(v)));
    }
    out->push_back(static_cast<uint32_t>(v));
  }
  return Status::OK();
}

}  // namespace exstream
