// Column codecs for the v4 compressed spill format (and tier sidecars):
// zigzag varints, delta-of-delta timestamps, Gorilla-style XOR doubles with
// an exact decimal/integer fallback, run-length tags, and varint id arrays.
//
// Every decoder is bounds-checked and total: truncated or corrupt input
// yields Status::Truncated / Status::Corruption, never an out-of-bounds read
// or an unbounded loop — these functions sit behind the spill-file CRC but
// are also fuzzed directly (fuzz_spill_v4), so they must hold on arbitrary
// bytes.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "event/event.h"

namespace exstream {

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Appends `v` as a LEB128 varint (1–10 bytes).
void PutVarint(std::string* out, uint64_t v);

inline void PutSignedVarint(std::string* out, int64_t v) {
  PutVarint(out, ZigZagEncode(v));
}

/// \brief Bounds-checked byte/varint cursor over an immutable buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint64_t> GetVarint();
  Result<int64_t> GetSignedVarint() {
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t raw, GetVarint());
    return ZigZagDecode(raw);
  }
  Result<uint8_t> GetU8();
  Result<std::string_view> GetBytes(size_t n);

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// \brief MSB-first bit appender backing the XOR float stream.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Appends the low `n` bits of `bits` (n <= 64), most significant first.
  void Write(uint64_t bits, int n);

  /// Flushes the partial trailing byte (zero-padded). Call exactly once.
  void Finish();

 private:
  std::string* out_;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;
};

/// \brief Bounds-checked MSB-first bit cursor. Reading past the end fails
/// with Status::Truncated instead of touching out-of-range memory.
class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  Result<uint64_t> Read(int n);

 private:
  std::string_view data_;
  size_t byte_ = 0;
  int bit_ = 0;  ///< bits consumed of data_[byte_]
};

/// \brief Sorted timestamps as zigzag varints of delta-of-deltas: first
/// value, first delta, then each delta's change. Constant-rate streams cost
/// ~1 byte per row.
void EncodeTimestampsDoD(const std::vector<Timestamp>& ts, std::string* out);

/// Decodes exactly `n` timestamps; appends to `*out` (cleared first).
Status DecodeTimestampsDoD(std::string_view data, size_t n,
                           std::vector<Timestamp>* out);

/// \brief Doubles with a per-stream mode byte:
///  0 = raw little-endian (XOR and integer modes both lost),
///  1 = Gorilla XOR bitstream (leading/length window reuse),
///  2 = scaled integers: u8 decimal power p, zigzag delta varints of
///      v * 10^p — used only when every value round-trips *bit-identically*,
///      so it is as lossless as raw.
/// Layout: u8 mode, varint payload length, payload bytes.
void EncodeDoubles(const double* vals, size_t n, std::string* out);

/// Decodes exactly `n` doubles from the mode-tagged stream at `r`.
Status DecodeDoubles(ByteReader* r, size_t n, std::vector<double>* out);

/// \brief Per-row value tags as (tag, run length) pairs: varint run count,
/// then u8 tag + varint length per run. Single-type columns cost ~3 bytes
/// per chunk instead of 1 byte per row.
void EncodeTagsRle(const std::vector<uint8_t>& tags, std::string* out);

/// Decodes tag runs covering exactly `rows` rows.
Status DecodeTagsRle(ByteReader* r, size_t rows, std::vector<uint8_t>* out);

/// \brief int64 array as zigzag varints of consecutive deltas.
void EncodeInts(const int64_t* vals, size_t n, std::string* out);
Status DecodeInts(ByteReader* r, size_t n, std::vector<int64_t>* out);

/// \brief uint32 array as plain varints (dictionary ids are small).
void EncodeU32s(const uint32_t* vals, size_t n, std::string* out);
Status DecodeU32s(ByteReader* r, size_t n, std::vector<uint32_t>* out);

}  // namespace exstream
