#include "archive/tiers.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "archive/compress.h"
#include "common/crc32.h"
#include "common/strings.h"

namespace exstream {
namespace {

constexpr uint32_t kTiersMagic = 0x45585431;  // "EXT1"
constexpr size_t kMaxTiersPerChunk = 16;
constexpr size_t kMaxAttrs = 1 << 16;

void PutPod32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

Result<uint32_t> GetPod32(ByteReader* r) {
  EXSTREAM_ASSIGN_OR_RETURN(const std::string_view bytes, r->GetBytes(4));
  uint32_t v;
  std::memcpy(&v, bytes.data(), sizeof(v));
  return v;
}

/// Same len+CRC32 frame the v3/v4 spill blocks use, so a flipped bit in a
/// sidecar is detected before any decoder touches the payload.
void PutBlock(std::string* out, const std::string& payload) {
  PutPod32(out, static_cast<uint32_t>(payload.size()));
  PutPod32(out, Crc32(payload));
  out->append(payload);
}

Result<std::string_view> GetBlock(ByteReader* r, const char* what) {
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t len, GetPod32(r));
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t stored_crc, GetPod32(r));
  if (len > r->remaining()) {
    return Status::Truncated(StrFormat("tiers %s block: %u bytes declared, %zu "
                                       "remain",
                                       what, len, r->remaining()));
  }
  EXSTREAM_ASSIGN_OR_RETURN(const std::string_view payload, r->GetBytes(len));
  if (Crc32(payload) != stored_crc) {
    return Status::Corruption(StrFormat("tiers %s block: CRC mismatch", what));
  }
  return payload;
}

TierColumns BuildOneTier(const ChunkColumns& columns, Timestamp window) {
  TierColumns tier;
  tier.window = window;
  tier.attrs.resize(columns.num_columns());
  const std::vector<Timestamp>& ts = columns.ts();
  const size_t rows = ts.size();
  size_t lo = 0;
  while (lo < rows) {
    const Timestamp wend = TierWindowEnd(ts[lo], window);
    size_t hi = lo;
    while (hi < rows && ts[hi] < wend) ++hi;
    tier.ts.push_back(wend);
    for (size_t c = 0; c < columns.num_columns(); ++c) {
      const AttributeColumn& col = columns.attr(c);
      TierAttr& agg = tier.attrs[c];
      uint32_t count = 0;
      double mn = 0, mx = 0, sum = 0, sumsq = 0;
      for (size_t i = lo; i < hi; ++i) {
        const double v = col.nums[i];
        if (std::isnan(v)) continue;
        if (count == 0) {
          mn = mx = v;
        } else {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
        sum += v;
        sumsq += v * v;
        ++count;
      }
      agg.count.push_back(count);
      agg.min.push_back(mn);
      agg.max.push_back(mx);
      agg.sum.push_back(sum);
      agg.sumsq.push_back(sumsq);
    }
    lo = hi;
  }
  return tier;
}

void SerializeOneTier(const TierColumns& tier, std::string* out) {
  std::string payload;
  PutVarint(&payload, static_cast<uint64_t>(tier.window));
  PutVarint(&payload, tier.ts.size());
  std::string ts_bytes;
  EncodeTimestampsDoD(tier.ts, &ts_bytes);
  PutVarint(&payload, ts_bytes.size());
  payload.append(ts_bytes);
  const size_t n = tier.ts.size();
  for (const TierAttr& agg : tier.attrs) {
    EncodeU32s(agg.count.data(), n, &payload);
    EncodeDoubles(agg.min.data(), n, &payload);
    EncodeDoubles(agg.max.data(), n, &payload);
    EncodeDoubles(agg.sum.data(), n, &payload);
    EncodeDoubles(agg.sumsq.data(), n, &payload);
  }
  PutBlock(out, payload);
}

Result<TierColumns> ParseOneTier(std::string_view payload, size_t n_attrs) {
  ByteReader r(payload);
  TierColumns tier;
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t window_raw, r.GetVarint());
  if (window_raw == 0 || window_raw > static_cast<uint64_t>(INT64_MAX)) {
    return Status::Corruption("tier window out of range");
  }
  tier.window = static_cast<Timestamp>(window_raw);
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t n_windows, r.GetVarint());
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t ts_len, r.GetVarint());
  if (ts_len > r.remaining()) {
    return Status::Truncated("tier ts stream longer than payload");
  }
  // Every encoded window timestamp costs at least one varint byte.
  if (n_windows > ts_len && n_windows > 0) {
    return Status::Corruption(
        StrFormat("tier declares %llu windows in a %llu-byte ts stream",
                  static_cast<unsigned long long>(n_windows),
                  static_cast<unsigned long long>(ts_len)));
  }
  EXSTREAM_ASSIGN_OR_RETURN(const std::string_view ts_bytes,
                            r.GetBytes(static_cast<size_t>(ts_len)));
  EXSTREAM_RETURN_NOT_OK(DecodeTimestampsDoD(
      ts_bytes, static_cast<size_t>(n_windows), &tier.ts));
  for (size_t i = 1; i < tier.ts.size(); ++i) {
    if (tier.ts[i] <= tier.ts[i - 1]) {
      return Status::Corruption("tier window timestamps not increasing");
    }
  }
  tier.attrs.resize(n_attrs);
  const size_t n = static_cast<size_t>(n_windows);
  for (size_t c = 0; c < n_attrs; ++c) {
    TierAttr& agg = tier.attrs[c];
    EXSTREAM_RETURN_NOT_OK(DecodeU32s(&r, n, &agg.count));
    EXSTREAM_RETURN_NOT_OK(DecodeDoubles(&r, n, &agg.min));
    EXSTREAM_RETURN_NOT_OK(DecodeDoubles(&r, n, &agg.max));
    EXSTREAM_RETURN_NOT_OK(DecodeDoubles(&r, n, &agg.sum));
    EXSTREAM_RETURN_NOT_OK(DecodeDoubles(&r, n, &agg.sumsq));
  }
  if (!r.AtEnd()) {
    return Status::Corruption(
        StrFormat("tier block has %zu trailing bytes", r.remaining()));
  }
  return tier;
}

}  // namespace

std::pair<size_t, size_t> TierColumns::WindowRange(
    const TimeInterval& interval) const {
  // Window i spans [ts[i]-window, ts[i]): it intersects [lower, upper] iff
  // ts[i] > lower and ts[i]-window <= upper.
  const auto first =
      std::upper_bound(ts.begin(), ts.end(), interval.lower) - ts.begin();
  size_t last = static_cast<size_t>(first);
  while (last < ts.size() && ts[last] - window <= interval.upper) ++last;
  return {static_cast<size_t>(first), last};
}

ChunkTiers BuildChunkTiers(const ChunkColumns& columns,
                           const std::vector<Timestamp>& windows) {
  std::vector<Timestamp> sorted;
  for (Timestamp w : windows) {
    if (w > 0) sorted.push_back(w);
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.size() > kMaxTiersPerChunk) sorted.resize(kMaxTiersPerChunk);
  ChunkTiers tiers;
  tiers.reserve(sorted.size());
  for (Timestamp w : sorted) tiers.push_back(BuildOneTier(columns, w));
  return tiers;
}

int SelectTier(const ChunkTiers& tiers, Timestamp resolution) {
  if (resolution <= 0) return -1;
  for (int i = static_cast<int>(tiers.size()) - 1; i >= 0; --i) {
    if (tiers[i].window > 0 && resolution % tiers[i].window == 0) return i;
  }
  return -1;
}

std::string SerializeTiers(const ChunkTiers& tiers, EventTypeId type) {
  std::string out;
  PutPod32(&out, kTiersMagic);
  PutPod32(&out, type);
  const uint32_t n_attrs =
      tiers.empty() ? 0 : static_cast<uint32_t>(tiers[0].attrs.size());
  PutPod32(&out, n_attrs);
  out.push_back(static_cast<char>(tiers.size()));
  for (const TierColumns& tier : tiers) SerializeOneTier(tier, &out);
  return out;
}

Result<ChunkTiers> DeserializeTiers(std::string_view data,
                                    EventTypeId expected_type) {
  ByteReader r(data);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, GetPod32(&r));
  if (magic != kTiersMagic) {
    return Status::Corruption("bad tier sidecar magic");
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t type, GetPod32(&r));
  if (type != expected_type) {
    return Status::Corruption(StrFormat(
        "tier sidecar is for event type %u, expected %u", type, expected_type));
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_attrs, GetPod32(&r));
  if (n_attrs > kMaxAttrs) {
    return Status::Corruption("tier sidecar declares an impossible attribute "
                              "count");
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint8_t n_tiers, r.GetU8());
  if (n_tiers > kMaxTiersPerChunk) {
    return Status::Corruption("tier sidecar declares too many tiers");
  }
  ChunkTiers tiers;
  tiers.reserve(n_tiers);
  Timestamp prev_window = 0;
  for (size_t t = 0; t < n_tiers; ++t) {
    EXSTREAM_ASSIGN_OR_RETURN(const std::string_view payload,
                              GetBlock(&r, "tier"));
    auto tier = ParseOneTier(payload, n_attrs);
    if (!tier.ok()) {
      return Status(tier.status().code(),
                    StrFormat("tier %zu: %s", t, tier.status().message().c_str()));
    }
    if (tier->window <= prev_window) {
      return Status::Corruption("tier windows not ascending");
    }
    prev_window = tier->window;
    tiers.push_back(std::move(tier).MoveValue());
  }
  if (!r.AtEnd()) {
    return Status::Corruption(
        StrFormat("tier sidecar has %zu trailing bytes", r.remaining()));
  }
  return tiers;
}

// The sidecar writer/reader deliberately skip FaultInjector::Intercept (see
// header): a wildcard fault plan must keep hitting the raw spill read/write
// seams with the same counts as before tiering existed. Sidecars are derived
// data; a damaged one degrades resolution, it never loses events.
Status WriteTiersFile(const std::string& path, const ChunkTiers& tiers,
                      EventTypeId type) {
  const std::string data = SerializeTiers(tiers, type);
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  const size_t written = fwrite(data.data(), 1, data.size(), f);
  if (written != data.size() || fflush(f) != 0 || fsync(fileno(f)) != 0) {
    fclose(f);
    remove(tmp.c_str());
    return Status::IOError("cannot write " + tmp);
  }
  fclose(f);
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<ChunkTiers> ReadTiersFile(const std::string& path,
                                 EventTypeId expected_type) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  fclose(f);
  auto tiers = DeserializeTiers(data, expected_type);
  if (!tiers.ok()) {
    return Status(tiers.status().code(),
                  path + ": " + std::string(tiers.status().message()));
  }
  return tiers;
}

}  // namespace exstream
