#include "archive/chunk.h"

#include <algorithm>
#include <cstdio>

#include "archive/serialization.h"
#include "common/strings.h"

namespace exstream {

Status Chunk::Append(Event event) {
  if (sealed_) return Status::Internal("append to sealed chunk");
  if (event.type != type_) {
    return Status::InvalidArgument("event type does not match chunk type");
  }
  if (count_ > 0 && event.ts < max_ts_) {
    return Status::InvalidArgument(
        StrFormat("out-of-order event ts %lld < chunk max %lld",
                  static_cast<long long>(event.ts), static_cast<long long>(max_ts_)));
  }
  if (count_ == 0) min_ts_ = event.ts;
  max_ts_ = event.ts;
  events_->push_back(std::move(event));
  ++count_;
  return Status::OK();
}

Status Chunk::SpillTo(const std::string& path, SpillFormat format) {
  if (!sealed_) return Status::Internal("spill of unsealed chunk");
  if (spilled_) return Status::OK();
  EXSTREAM_RETURN_NOT_OK(WriteEventsFile(path, *events_, format));
  spill_path_ = path;
  spilled_ = true;
  // Swap in a fresh empty vector instead of clearing: snapshots taken before
  // the spill keep their handle to the old (immutable) data.
  events_ = std::make_shared<std::vector<Event>>();
  return Status::OK();
}

Result<std::vector<Event>> Chunk::Load() const {
  if (!spilled_) return *events_;
  if (quarantined()) {
    return Status::Corruption("chunk quarantined: " + spill_path_ + ".quarantine");
  }
  return ReadEventsFile(spill_path_);
}

bool Chunk::MarkQuarantined() {
  bool expected = false;
  if (!quarantined_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    return false;
  }
  if (!spill_path_.empty()) {
    // Best-effort: the file may already be gone; the in-memory flag alone is
    // enough to keep the chunk out of future scans.
    (void)rename(spill_path_.c_str(), (spill_path_ + ".quarantine").c_str());
  }
  return true;
}

void AppendEventsInRange(const std::vector<Event>& events,
                         const TimeInterval& interval, std::vector<Event>* out) {
  const auto lo = std::lower_bound(
      events.begin(), events.end(), interval.lower,
      [](const Event& e, Timestamp t) { return e.ts < t; });
  const auto hi = std::upper_bound(
      lo, events.end(), interval.upper,
      [](Timestamp t, const Event& e) { return t < e.ts; });
  out->insert(out->end(), lo, hi);
}

}  // namespace exstream
