#include "archive/chunk.h"

#include <cstdio>

#include "archive/serialization.h"
#include "common/strings.h"

namespace exstream {

Status Chunk::Append(const Event& event) {
  if (sealed_) return Status::Internal("append to sealed chunk");
  if (event.type != type_) {
    return Status::InvalidArgument("event type does not match chunk type");
  }
  if (count_ > 0 && event.ts < max_ts_) {
    return Status::InvalidArgument(
        StrFormat("out-of-order event ts %lld < chunk max %lld",
                  static_cast<long long>(event.ts), static_cast<long long>(max_ts_)));
  }
  if (count_ == 0) min_ts_ = event.ts;
  max_ts_ = event.ts;
  columns_->AppendEvent(event);
  ++count_;
  return Status::OK();
}

Status Chunk::SpillTo(const std::string& path, SpillFormat format) {
  if (!sealed_) return Status::Internal("spill of unsealed chunk");
  if (spilled_) return Status::OK();
  EXSTREAM_RETURN_NOT_OK(WriteColumnsFile(path, *columns_, format));
  spill_path_ = path;
  spilled_ = true;
  // Swap in fresh empty columns instead of clearing: snapshots taken before
  // the spill keep their handle to the old (immutable) data.
  columns_ = std::make_shared<ChunkColumns>(type_, nullptr);
  return Status::OK();
}

Result<std::vector<Event>> Chunk::Load() const {
  std::vector<Event> out;
  if (!spilled_) {
    columns_->MaterializeRows(0, columns_->rows(), &out);
    return out;
  }
  if (quarantined()) {
    return Status::Corruption("chunk quarantined: " + spill_path_ + ".quarantine");
  }
  return ReadEventsFile(spill_path_);
}

bool Chunk::MarkQuarantined() {
  bool expected = false;
  if (!quarantined_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    return false;
  }
  if (!spill_path_.empty()) {
    // Best-effort: the file may already be gone; the in-memory flag alone is
    // enough to keep the chunk out of future scans.
    (void)rename(spill_path_.c_str(), (spill_path_ + ".quarantine").c_str());
  }
  return true;
}

}  // namespace exstream
