#include "archive/chunk.h"

#include <cstdio>

#include "archive/serialization.h"
#include "common/strings.h"
#include "io/file_util.h"

namespace exstream {

Status Chunk::Append(const Event& event) {
  if (sealed_) return Status::Internal("append to sealed chunk");
  if (event.type != type_) {
    return Status::InvalidArgument("event type does not match chunk type");
  }
  if (count_ > 0 && event.ts < max_ts_) {
    return Status::InvalidArgument(
        StrFormat("out-of-order event ts %lld < chunk max %lld",
                  static_cast<long long>(event.ts), static_cast<long long>(max_ts_)));
  }
  if (count_ == 0) min_ts_ = event.ts;
  max_ts_ = event.ts;
  columns_->AppendEvent(event);
  ++count_;
  return Status::OK();
}

void Chunk::BuildTiers(const std::vector<Timestamp>& windows) {
  if (windows.empty() || count_ == 0 || spilled_) return;
  auto tiers =
      std::make_shared<ChunkTiers>(BuildChunkTiers(*columns_, windows));
  if (!tiers->empty()) tiers_ = std::move(tiers);
}

Status Chunk::SpillTo(const std::string& path, SpillFormat format) {
  if (!sealed_) return Status::Internal("spill of unsealed chunk");
  if (spilled_) return Status::OK();
  EXSTREAM_RETURN_NOT_OK(WriteColumnsFile(path, *columns_, format));
  if (tiers_ != nullptr) {
    // Best-effort: a failed sidecar write costs nothing now (tiers stay
    // resident) and restore rebuilds tiers from the spill file if the
    // sidecar is missing.
    (void)WriteTiersFile(TiersSidecarPath(path), *tiers_, type_);
  }
  spill_path_ = path;
  spilled_ = true;
  // Swap in fresh empty columns instead of clearing: snapshots taken before
  // the spill keep their handle to the old (immutable) data.
  columns_ = std::make_shared<ChunkColumns>(type_, nullptr);
  return Status::OK();
}

Status Chunk::EvictRaw() {
  if (!spilled_ || raw_evicted_ || quarantined()) return Status::OK();
  EXSTREAM_RETURN_NOT_OK(RemoveFileIfExists(spill_path_));
  raw_evicted_ = true;
  return Status::OK();
}

Result<std::vector<Event>> Chunk::Load() const {
  std::vector<Event> out;
  if (!spilled_) {
    columns_->MaterializeRows(0, columns_->rows(), &out);
    return out;
  }
  if (quarantined()) {
    return Status::Corruption("chunk quarantined: " + spill_path_ + ".quarantine");
  }
  if (raw_evicted_) {
    return Status::NotFound("chunk raw data evicted by tier-0 retention: " +
                            spill_path_);
  }
  return ReadEventsFile(spill_path_);
}

std::shared_ptr<Chunk> Chunk::AdoptResident(EventTypeId type, size_t capacity,
                                            const EventSchema* schema,
                                            ChunkColumns columns, bool sealed) {
  auto chunk = std::make_shared<Chunk>(type, capacity, schema);
  chunk->count_ = columns.rows();
  if (chunk->count_ > 0) {
    chunk->min_ts_ = columns.ts().front();
    chunk->max_ts_ = columns.ts().back();
  }
  *chunk->columns_ = std::move(columns);
  chunk->sealed_ = sealed;
  return chunk;
}

std::shared_ptr<Chunk> Chunk::AdoptSpilled(EventTypeId type, size_t capacity,
                                           size_t count, Timestamp min_ts,
                                           Timestamp max_ts, std::string spill_path,
                                           bool quarantined, bool raw_evicted) {
  auto chunk = std::make_shared<Chunk>(type, capacity, nullptr);
  chunk->count_ = count;
  chunk->min_ts_ = min_ts;
  chunk->max_ts_ = max_ts;
  chunk->sealed_ = true;
  chunk->spilled_ = true;
  chunk->raw_evicted_ = raw_evicted;
  chunk->spill_path_ = std::move(spill_path);
  chunk->quarantined_.store(quarantined, std::memory_order_release);
  return chunk;
}

bool Chunk::MarkQuarantined() {
  bool expected = false;
  if (!quarantined_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    return false;
  }
  if (!spill_path_.empty()) {
    // Best-effort: the file may already be gone; the in-memory flag alone is
    // enough to keep the chunk out of future scans.
    (void)rename(spill_path_.c_str(), (spill_path_ + ".quarantine").c_str());
  }
  return true;
}

}  // namespace exstream
