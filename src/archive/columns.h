// Columnar chunk storage: the read-optimized layout behind archive scans.
//
// The explanation hot path replays archived intervals and folds them into
// features; what it actually reads is, per (type, attribute) pair, the ts
// column and one attribute's numeric view. Storing sealed chunks as typed
// columns (MonetDB/X100-style) makes that access pattern a contiguous array
// walk, and lets scans return pinned column *views* instead of materialized
// `std::vector<Event>` copies.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "event/event.h"
#include "event/schema.h"

namespace exstream {

/// Per-row value tag marking an attribute the event did not carry (an event
/// may have fewer values than the widest event of its chunk).
inline constexpr uint8_t kMissingValueTag = 0xFF;

/// \brief One attribute of a chunk, decomposed by value kind.
///
/// `tags` and `nums` are per-row: `nums[i]` is the row's numeric view
/// (AsDouble — NaN for strings and missing values), which is exactly what
/// feature generation consumes, as a contiguous double array. Exact values
/// are kept densely per kind (`ints` holds only the int64-tagged rows in row
/// order, `str_ids` only the string-tagged rows), so row materialization and
/// serialization stay lossless without padding every kind to full length.
struct AttributeColumn {
  ValueType declared = ValueType::kDouble;  ///< schema-declared kind
  std::vector<uint8_t> tags;   ///< per row: ValueType or kMissingValueTag
  std::vector<double> nums;    ///< per row: AsDouble view (NaN if not numeric)
  std::vector<int64_t> ints;   ///< dense: int64-tagged rows, in row order
  std::vector<uint32_t> str_ids;  ///< dense: string-tagged rows, in row order
  std::vector<std::string> dict;  ///< string dictionary (first-seen order)

  /// Dense cursor positions of `ints` / `str_ids` for the given first row.
  /// O(row) tag walk; used by the row-materializing compatibility path only.
  std::pair<size_t, size_t> DenseOffsetsAt(size_t row) const;
};

/// \brief A chunk's events in columnar form: one sorted ts column plus one
/// AttributeColumn per schema attribute.
///
/// Open chunks append in place (externally synchronized, like the row layout
/// before it); once sealed the structure is immutable and can be shared
/// across scan snapshots via `shared_ptr<const ChunkColumns>` with no copying.
class ChunkColumns {
 public:
  ChunkColumns() = default;
  /// Pre-declares one column per schema attribute (events may still widen the
  /// set; unseen trailing attributes are backfilled as missing).
  ChunkColumns(EventTypeId type, const EventSchema* schema);

  EventTypeId type() const { return type_; }
  size_t rows() const { return ts_.size(); }
  size_t num_columns() const { return attrs_.size(); }

  const std::vector<Timestamp>& ts() const { return ts_; }
  const AttributeColumn& attr(size_t i) const { return attrs_[i]; }
  const std::vector<AttributeColumn>& attrs() const { return attrs_; }

  /// Appends one event's values across the columns. The caller has already
  /// validated type and time order (Chunk::Append).
  void AppendEvent(const Event& event);

  /// Reserves row capacity across the ts and per-row column vectors.
  void Reserve(size_t n);

  /// Drops append-only scaffolding (dictionary hash index) and shrinks the
  /// column vectors; called when the owning chunk seals.
  void SealStorage();

  /// Row range [first, second) with ts inside [interval.lower, interval.upper],
  /// by binary search on the sorted ts column.
  std::pair<size_t, size_t> RowRange(const TimeInterval& interval) const;

  /// Lossless reconstruction of row `i` as an Event (the compatibility path).
  /// `int_off`/`str_off` are the dense cursors for row i (see DenseOffsetsAt)
  /// and are advanced past the row's values.
  Event MaterializeRow(size_t i, size_t* int_off, size_t* str_off) const;

  /// Appends rows [lo, hi) to `out` as Events.
  void MaterializeRows(size_t lo, size_t hi, std::vector<Event>* out) const;

  /// Deep copy of rows [lo, hi) — used to snapshot the mutable open tail of a
  /// chunk under the shard lock. The dictionary is copied whole (ids stay
  /// valid); dense vectors are trimmed to the range.
  ChunkColumns Slice(size_t lo, size_t hi) const;

  /// Builds columns from a row vector (v1/v2 spill-file loads). All events
  /// must share one type; mixed types mean the buffer was not a chunk spill.
  static Result<ChunkColumns> FromRows(const std::vector<Event>& events);

  /// Serialization needs mutable access when rebuilding the struct.
  std::vector<Timestamp>* mutable_ts() { return &ts_; }
  std::vector<AttributeColumn>* mutable_attrs() { return &attrs_; }
  void set_type(EventTypeId type) { type_ = type; }

 private:
  uint32_t InternString(size_t col, const std::string& s);

  EventTypeId type_ = kInvalidEventType;
  std::vector<Timestamp> ts_;
  std::vector<AttributeColumn> attrs_;
  /// Per-column dictionary index; only consulted while the chunk is open.
  std::vector<std::unordered_map<std::string, uint32_t>> dict_index_;
};

struct TierColumns;  // archive/tiers.h

/// \brief Zero-copy result of a columnar archive scan.
///
/// A view is a list of segments, each pinning one chunk's immutable columns
/// (shared snapshot) plus the row range that falls inside the scanned
/// interval. Sealed resident chunks are shared without copying; spilled
/// chunks are deserialized straight into columns owned by the view; the open
/// tail is the one copied segment (it is still mutating under the shard
/// lock). Segments are in chunk order, so concatenating them yields the same
/// time-ordered rows a legacy row Scan returns.
///
/// A resolution-aware scan (EventArchive::ScanColumns with resolution > 0)
/// may answer a sealed chunk from a downsampled tier instead of raw rows: the
/// chunk then contributes a TierSegment (pre-aggregated windows, no disk
/// read) rather than a raw Segment. The two segment lists interleave in chunk
/// order via the `order` field, so a consumer folding both sees windows and
/// rows in global time order.
///
/// Lifetime: a segment's columns stay valid (and immutable) for as long as
/// the view is alive, even if the archive spills or seals the chunk
/// meanwhile — the shared_ptr pins the snapshot, exactly like the row
/// snapshot handles before it. A TierSegment's pointer aliases the chunk's
/// immutable ChunkTiers the same way.
struct ScanView {
  struct Segment {
    std::shared_ptr<const ChunkColumns> columns;
    size_t begin = 0;  ///< first in-range row
    size_t end = 0;    ///< one past the last in-range row
    size_t order = 0;  ///< chunk position among all segments of the view
    size_t size() const { return end - begin; }
  };

  /// One chunk answered from a downsampled tier (archive/tiers.h).
  struct TierSegment {
    std::shared_ptr<const TierColumns> tier;  ///< aliases the chunk's tiers
    size_t begin = 0;  ///< first in-range window
    size_t end = 0;    ///< one past the last in-range window
    size_t order = 0;  ///< chunk position among all segments of the view
    size_t size() const { return end - begin; }
  };

  std::vector<Segment> segments;
  std::vector<TierSegment> tier_segments;

  /// Total in-range raw rows across all raw segments (tier windows are not
  /// rows and do not count).
  size_t rows() const;
  bool empty() const { return rows() == 0 && tier_segments.empty(); }

  /// Materializes every in-range raw row, in order — the legacy Scan output.
  /// Tier segments cannot be materialized as events and must be empty when a
  /// caller needs exact rows (scans with resolution 0 never produce them).
  void MaterializeEvents(std::vector<Event>* out) const;
};

}  // namespace exstream
