// DegradationReport: what a degraded-mode archive scan could NOT read.
//
// When a spill file is unreadable (and retries are exhausted), the scan
// quarantines the chunk and keeps going with the healthy ones instead of
// failing the whole analysis. The report carries exactly what was skipped so
// downstream consumers — and ultimately the Explanation — can flag results
// computed from incomplete data.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "event/event.h"

namespace exstream {

/// \brief Per-scan account of skipped chunks and estimated data loss.
struct DegradationReport {
  /// One chunk the scan had to skip.
  struct SkippedChunk {
    EventTypeId type = 0;
    std::string spill_path;   ///< original path (on disk it is now `.quarantine`)
    size_t events_lost = 0;   ///< events the chunk held when sealed
    std::string reason;       ///< terminal error, e.g. the corruption status
  };

  /// Per-type chunk coverage of the scanned interval.
  struct TypeCoverage {
    size_t chunks_total = 0;    ///< chunks overlapping the interval
    size_t chunks_skipped = 0;  ///< of those, skipped as unreadable

    /// Fraction of overlapping chunks that contributed data (1.0 = full).
    double fraction() const {
      return chunks_total == 0
                 ? 1.0
                 : 1.0 - static_cast<double>(chunks_skipped) /
                             static_cast<double>(chunks_total);
    }
  };

  std::vector<SkippedChunk> skipped;
  size_t events_lost_estimate = 0;
  std::map<EventTypeId, TypeCoverage> coverage;
  /// Valid events dropped by ingest backpressure (bounded-queue shedding)
  /// before this analysis ran — the archive/match tables are missing them.
  size_t events_shed = 0;
  /// Malformed events the ingest guard rejected (quarantined, not analyzed).
  /// Informational: rejects are invalid data, so they do not by themselves
  /// mark the analysis degraded.
  size_t events_rejected = 0;
  /// Chunks whose raw (tier-0) rows were evicted by retention and could not
  /// serve the scan at its requested resolution: an exact-row scan, or a
  /// resolution with no aligned tier. Such chunks are also listed in
  /// `skipped` — a scan never silently substitutes coarse aggregates where
  /// exact rows were asked for.
  size_t resolution_degraded = 0;

  bool degraded() const {
    return !skipped.empty() || events_shed > 0 || resolution_degraded > 0;
  }
  size_t chunks_skipped() const { return skipped.size(); }

  /// Folds another report (e.g. a second interval's scan) into this one.
  void Merge(const DegradationReport& other);

  /// One-line summary, e.g.
  /// "2 chunks skipped (~8192 events lost; type 3 coverage 0.75)".
  std::string ToString() const;
};

}  // namespace exstream
