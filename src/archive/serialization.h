// Binary (de)serialization of archive chunks for spill files.

#pragma once

#include <string>
#include <vector>

#include "archive/columns.h"
#include "common/result.h"
#include "event/event.h"

namespace exstream {

/// \brief On-disk spill-file format version.
///
/// v1 ("EXS1"): u32 magic, u32 count, row payload — no integrity check.
/// v2 ("EXS2"): u32 magic, u32 count, u32 CRC32(payload), row payload.
/// v3 ("EXS3"): columnar — u32 magic, u32 row count, u32 event type, u16
/// column count, then the ts column and one block per attribute column, each
/// length-prefixed and carrying its own CRC32. Columnar files deserialize
/// straight into ChunkColumns (no intermediate row pass), and a flipped bit
/// is pinned to the column it corrupted. v1/v2 files remain readable forever.
/// v4 ("EXS4"): compressed columnar — same header and per-block CRC32 frame
/// as v3, but the ts block is delta-of-delta varints, double streams are
/// Gorilla-style XOR (with exact scaled-integer and raw fallbacks), tags are
/// run-length encoded, and int/string-id/dictionary payloads are varints
/// (archive/compress.h). Decoders are bounds-checked and fuzzed; a corrupt
/// block still names its column. v1–v3 files remain readable forever.
enum class SpillFormat : uint32_t { kV1 = 1, kV2 = 2, kV3 = 3, kV4 = 4 };

/// \brief Serializes events into a compact binary buffer (v1/v2 row layout;
/// a kV3/kV4 request serializes the rows through their columnar form, falling
/// back to the v2 row layout when the rows mix event types).
///
/// Row payload layout: per event: i64 ts, u32 type, u16 value count, per
/// value: u8 tag + payload (i64 / f64 / u32-length prefixed bytes).
std::string SerializeEvents(const std::vector<Event>& events,
                            SpillFormat format = SpillFormat::kV4);

/// \brief Parses a buffer produced by SerializeEvents / SerializeColumns
/// (any format version).
///
/// Error codes are diagnostic: Truncated when the buffer ends before its
/// declared contents, Corruption for bad magic / checksum mismatch / an
/// impossible header count / bad value tags. Messages carry the byte offset
/// of the failure (and, for v3, the failing column). Header counts are
/// validated against the buffer size before any allocation, so a corrupt
/// count cannot trigger a huge reserve.
Result<std::vector<Event>> DeserializeEvents(std::string_view data);

/// \brief Serializes a chunk's columns. kV4 writes the compressed columnar
/// layout, kV3 the uncompressed one; kV1/kV2 materialize rows first (the
/// compatibility path).
std::string SerializeColumns(const ChunkColumns& columns,
                             SpillFormat format = SpillFormat::kV4);

/// \brief Parses any format version into columns. v3/v4 deserialize column
/// vectors directly; v1/v2 buffers are parsed as rows and folded into
/// columns (all events must then share one type).
Result<ChunkColumns> DeserializeColumns(std::string_view data);

/// \brief Writes the serialized form of `events` to `path` atomically: temp
/// file + fsync + rename. Honors the global FaultInjector (tests only).
Status WriteEventsFile(const std::string& path, const std::vector<Event>& events,
                       SpillFormat format = SpillFormat::kV4);

/// \brief Reads an events file written by WriteEventsFile / WriteColumnsFile.
/// Errors are annotated with the file path; see DeserializeEvents for the
/// code taxonomy.
Result<std::vector<Event>> ReadEventsFile(const std::string& path);

/// \brief Writes a chunk's columns to `path` atomically (same crash-safety
/// contract and fault-injection hooks as WriteEventsFile).
Status WriteColumnsFile(const std::string& path, const ChunkColumns& columns,
                        SpillFormat format = SpillFormat::kV4);

/// \brief Reads any spill file (v1–v4) into columns. The archive's cold-read
/// path: the file is mmapped (io/file_util MmapFile, fault site "mmap-read")
/// and decoded straight from the mapping into column vectors — no
/// intermediate heap copy of the file bytes.
Result<ChunkColumns> ReadColumnsFile(const std::string& path);

}  // namespace exstream
