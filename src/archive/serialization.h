// Binary (de)serialization of event vectors for archive spill files.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"

namespace exstream {

/// \brief Serializes events into a compact binary buffer.
///
/// Layout: u32 magic, u32 count, then per event: i64 ts, u32 type,
/// u16 value count, per value: u8 tag + payload (i64 / f64 / u32-length
/// prefixed bytes).
std::string SerializeEvents(const std::vector<Event>& events);

/// \brief Parses a buffer produced by SerializeEvents.
Result<std::vector<Event>> DeserializeEvents(std::string_view data);

/// \brief Writes the serialized form of `events` to `path` (atomically via a
/// temp file + rename).
Status WriteEventsFile(const std::string& path, const std::vector<Event>& events);

/// \brief Reads an events file written by WriteEventsFile.
Result<std::vector<Event>> ReadEventsFile(const std::string& path);

}  // namespace exstream
