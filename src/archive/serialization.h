// Binary (de)serialization of event vectors for archive spill files.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "event/event.h"

namespace exstream {

/// \brief On-disk spill-file format version.
///
/// v1 ("EXS1"): u32 magic, u32 count, payload — no integrity check.
/// v2 ("EXS2"): u32 magic, u32 count, u32 CRC32(payload), payload. The
/// checksum makes silent bit rot and torn writes detectable before a corrupt
/// chunk poisons downstream features; v1 files remain readable forever.
enum class SpillFormat : uint32_t { kV1 = 1, kV2 = 2 };

/// \brief Serializes events into a compact binary buffer.
///
/// Payload layout (both formats): per event: i64 ts, u32 type, u16 value
/// count, per value: u8 tag + payload (i64 / f64 / u32-length prefixed
/// bytes).
std::string SerializeEvents(const std::vector<Event>& events,
                            SpillFormat format = SpillFormat::kV2);

/// \brief Parses a buffer produced by SerializeEvents (either format).
///
/// Error codes are diagnostic: Truncated when the buffer ends before its
/// declared contents, Corruption for bad magic / checksum mismatch / an
/// impossible header count / bad value tags. Messages carry the byte offset
/// of the failure. The header count is validated against the buffer size
/// before any allocation, so a corrupt count cannot trigger a huge reserve.
Result<std::vector<Event>> DeserializeEvents(std::string_view data);

/// \brief Writes the serialized form of `events` to `path` atomically: temp
/// file + fsync + rename. Honors the global FaultInjector (tests only).
Status WriteEventsFile(const std::string& path, const std::vector<Event>& events,
                       SpillFormat format = SpillFormat::kV2);

/// \brief Reads an events file written by WriteEventsFile. Errors are
/// annotated with the file path; see DeserializeEvents for the code taxonomy.
Result<std::vector<Event>> ReadEventsFile(const std::string& path);

}  // namespace exstream
