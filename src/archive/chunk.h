// Chunk: a bounded run of same-type events, the archive's storage unit
// (Appendix B: "events of the same type are chopped into smaller chunk files
// on disk; an index of the time range for each chunk is built").

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "archive/columns.h"
#include "archive/serialization.h"
#include "archive/tiers.h"
#include "common/result.h"
#include "event/event.h"

namespace exstream {

/// \brief A contiguous, time-ordered run of events of one type, stored as
/// columns (one sorted ts column + typed per-attribute columns).
///
/// A chunk is open while events accumulate, sealed once it reaches the
/// configured capacity, and may then be spilled to a binary file. Spilled
/// chunks keep their time range in memory (the index entry) and reload their
/// columns on demand.
///
/// Columns live behind a shared_ptr so that scan views can pin a sealed
/// chunk's data without copying it: spilling swaps the pointer out rather
/// than mutating the columns, and any view holding the old handle keeps
/// reading consistent data. All other mutation (Append/Seal/SpillTo) must be
/// externally synchronized with snapshot-taking (the archive's shard locks).
class Chunk {
 public:
  /// `schema` (optional, not owned, must outlive the chunk) pre-declares one
  /// column per attribute so appends never need to widen the column set.
  Chunk(EventTypeId type, size_t capacity, const EventSchema* schema = nullptr)
      : type_(type),
        capacity_(capacity),
        columns_(std::make_shared<ChunkColumns>(type, schema)) {
    columns_->Reserve(capacity);
  }

  EventTypeId type() const { return type_; }
  size_t size() const { return count_; }
  bool sealed() const { return sealed_; }
  bool spilled() const { return spilled_; }
  bool full() const { return count_ >= capacity_; }
  bool quarantined() const { return quarantined_.load(std::memory_order_acquire); }

  /// True once tier-0 retention dropped the raw spill file. The chunk's index
  /// entry, tiers, and sidecar survive; only exact-row reads are gone.
  bool raw_evicted() const { return raw_evicted_; }

  Timestamp min_ts() const { return min_ts_; }
  Timestamp max_ts() const { return max_ts_; }

  /// True if the chunk's time range intersects [interval.lower, interval.upper].
  bool Overlaps(const TimeInterval& interval) const {
    return count_ > 0 && min_ts_ <= interval.upper && max_ts_ >= interval.lower;
  }

  /// \brief Appends an event (same type, non-decreasing ts) to the columns.
  /// Fails when sealed.
  Status Append(const Event& event);

  /// Marks the chunk immutable and shrinks its column storage.
  void Seal() {
    sealed_ = true;
    columns_->SealStorage();
  }

  /// \brief Builds the chunk's downsampled tiers from its resident columns
  /// (one tier per positive window). Requires sealed, not yet spilled.
  /// Deterministic, so a restored chunk rebuilds identical tiers.
  void BuildTiers(const std::vector<Timestamp>& windows);

  /// Checkpoint restore: attaches tiers loaded from a sidecar.
  void AdoptTiers(std::shared_ptr<const ChunkTiers> tiers) {
    if (tiers != nullptr && !tiers->empty()) tiers_ = std::move(tiers);
  }

  /// The chunk's downsampled tiers (ascending window); null when none were
  /// built. Immutable once published, shareable with scan views.
  std::shared_ptr<const ChunkTiers> tiers() const { return tiers_; }

  /// Writes the columns to `path` and drops the in-memory copy. Requires
  /// sealed. Also writes the tier sidecar (`path.tiers`, best-effort — tiers
  /// stay resident regardless, and restore can rebuild them from the spill).
  Status SpillTo(const std::string& path, SpillFormat format = SpillFormat::kV4);

  /// \brief Tier-0 retention: deletes the raw spill file, keeping the index
  /// entry, tiers, and sidecar. Requires spilled; quarantined chunks are left
  /// alone (their renamed file is triage evidence). Idempotent.
  Status EvictRaw();

  /// Events of the chunk as rows; reloads from the spill file if necessary.
  /// Fails with Status::Corruption if the chunk has been quarantined.
  Result<std::vector<Event>> Load() const;

  /// \brief Marks the chunk's spill file unreadable and retires it: the file
  /// is renamed to `<path>.quarantine` (preserved for offline triage) and
  /// future scans skip the chunk instead of retrying it.
  ///
  /// Thread-safe and idempotent: scans race to quarantine a chunk they both
  /// failed to read, exactly one caller wins (and gets `true` back); the
  /// rename happens once.
  bool MarkQuarantined();

  /// Shared handle to the resident columns; null once spilled. For sealed
  /// chunks the pointee is immutable, so the handle stays valid (and
  /// race-free) even after a later SpillTo drops the chunk's own reference.
  std::shared_ptr<const ChunkColumns> resident_columns() const {
    return spilled_ ? nullptr : std::shared_ptr<const ChunkColumns>(columns_);
  }

  /// In-memory columns (empty once spilled). Only meaningful under the same
  /// external synchronization as Append (the open-tail snapshot path).
  const ChunkColumns& columns() const { return *columns_; }

  /// Spill-file path; empty until spilled.
  const std::string& spill_path() const { return spill_path_; }

  /// \brief Checkpoint restore: rebuilds an open or resident-sealed chunk
  /// around deserialized columns. `sealed` false leaves the chunk appendable
  /// (the shard's tail chunk).
  static std::shared_ptr<Chunk> AdoptResident(EventTypeId type, size_t capacity,
                                              const EventSchema* schema,
                                              ChunkColumns columns, bool sealed);

  /// \brief Checkpoint restore: rebuilds the index entry of a chunk whose
  /// data lives in its (already durable) spill file. `raw_evicted` restores a
  /// chunk whose raw file was dropped by tier-0 retention (tiers only).
  static std::shared_ptr<Chunk> AdoptSpilled(EventTypeId type, size_t capacity,
                                             size_t count, Timestamp min_ts,
                                             Timestamp max_ts, std::string spill_path,
                                             bool quarantined,
                                             bool raw_evicted = false);

 private:
  EventTypeId type_;
  size_t capacity_;
  std::shared_ptr<ChunkColumns> columns_;
  std::shared_ptr<const ChunkTiers> tiers_;
  size_t count_ = 0;
  Timestamp min_ts_ = 0;
  Timestamp max_ts_ = 0;
  bool sealed_ = false;
  bool spilled_ = false;
  bool raw_evicted_ = false;
  std::atomic<bool> quarantined_{false};
  std::string spill_path_;
};

}  // namespace exstream
