// Chunk: a bounded run of same-type events, the archive's storage unit
// (Appendix B: "events of the same type are chopped into smaller chunk files
// on disk; an index of the time range for each chunk is built").

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "archive/serialization.h"
#include "common/result.h"
#include "event/event.h"

namespace exstream {

/// \brief A contiguous, time-ordered run of events of one type.
///
/// A chunk is open while events accumulate, sealed once it reaches the
/// configured capacity, and may then be spilled to a binary file. Spilled
/// chunks keep their time range in memory (the index entry) and reload their
/// events on demand.
///
/// Events live behind a shared_ptr so that scan snapshots can pin a sealed
/// chunk's data without copying it: spilling swaps the pointer out rather
/// than mutating the vector, and any snapshot holding the old handle keeps
/// reading consistent data. All other mutation (Append/Seal/SpillTo) must be
/// externally synchronized with snapshot-taking (the archive's shard locks).
class Chunk {
 public:
  Chunk(EventTypeId type, size_t capacity)
      : type_(type),
        capacity_(capacity),
        events_(std::make_shared<std::vector<Event>>()) {
    events_->reserve(capacity);
  }

  EventTypeId type() const { return type_; }
  size_t size() const { return count_; }
  bool sealed() const { return sealed_; }
  bool spilled() const { return spilled_; }
  bool full() const { return count_ >= capacity_; }
  bool quarantined() const { return quarantined_.load(std::memory_order_acquire); }

  Timestamp min_ts() const { return min_ts_; }
  Timestamp max_ts() const { return max_ts_; }

  /// True if the chunk's time range intersects [interval.lower, interval.upper].
  bool Overlaps(const TimeInterval& interval) const {
    return count_ > 0 && min_ts_ <= interval.upper && max_ts_ >= interval.lower;
  }

  /// \brief Appends an event (same type, non-decreasing ts). Fails when
  /// sealed. Takes the event by value so batched ingest can move instead of
  /// copying the values vector; lvalue callers copy exactly as before.
  Status Append(Event event);

  /// Marks the chunk immutable.
  void Seal() { sealed_ = true; }

  /// Writes events to `path` and drops the in-memory copy. Requires sealed.
  Status SpillTo(const std::string& path, SpillFormat format = SpillFormat::kV2);

  /// Events of the chunk; reloads from the spill file if necessary. Fails
  /// with Status::Corruption if the chunk has been quarantined.
  Result<std::vector<Event>> Load() const;

  /// \brief Marks the chunk's spill file unreadable and retires it: the file
  /// is renamed to `<path>.quarantine` (preserved for offline triage) and
  /// future scans skip the chunk instead of retrying it.
  ///
  /// Thread-safe and idempotent: scans race to quarantine a chunk they both
  /// failed to read, exactly one caller wins (and gets `true` back); the
  /// rename happens once.
  bool MarkQuarantined();

  /// Shared handle to the resident events; null once spilled. For sealed
  /// chunks the pointee is immutable, so the handle stays valid (and
  /// race-free) even after a later SpillTo drops the chunk's own reference.
  std::shared_ptr<const std::vector<Event>> resident_handle() const {
    return spilled_ ? nullptr : std::shared_ptr<const std::vector<Event>>(events_);
  }

  /// Spill-file path; empty until spilled.
  const std::string& spill_path() const { return spill_path_; }

  /// In-memory events (empty if spilled). Use Load() for uniform access.
  const std::vector<Event>& resident_events() const { return *events_; }

 private:
  EventTypeId type_;
  size_t capacity_;
  std::shared_ptr<std::vector<Event>> events_;
  size_t count_ = 0;
  Timestamp min_ts_ = 0;
  Timestamp max_ts_ = 0;
  bool sealed_ = false;
  bool spilled_ = false;
  std::atomic<bool> quarantined_{false};
  std::string spill_path_;
};

/// \brief Appends the events of time-ordered `events` whose ts lies in
/// [interval.lower, interval.upper] to `out`, locating the run by binary
/// search rather than testing every event.
void AppendEventsInRange(const std::vector<Event>& events,
                         const TimeInterval& interval, std::vector<Event>* out);

}  // namespace exstream
