#include "archive/archive.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace exstream {

EventArchive::EventArchive(const EventTypeRegistry* registry, ArchiveOptions options)
    : registry_(registry), options_(std::move(options)) {
  chunks_.resize(registry_->size());
  resident_sealed_.assign(registry_->size(), 0);
  spill_cursor_.assign(registry_->size(), 0);
  for (size_t t = 0; t < registry_->size(); ++t) {
    chunks_[t].emplace_back(static_cast<EventTypeId>(t), options_.chunk_capacity);
  }
}

void EventArchive::OnEvent(const Event& event) {
  const Status st = Append(event);
  if (!st.ok()) {
    ++append_errors_;
    EXSTREAM_LOG(Warn) << "archive append failed: " << st.ToString();
  }
}

Status EventArchive::Append(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(event);
}

Status EventArchive::AppendLocked(const Event& event) {
  if (event.type >= chunks_.size()) {
    return Status::InvalidArgument(
        StrFormat("event type %u not registered", event.type));
  }
  auto& list = chunks_[event.type];
  if (list.back().full()) {
    list.back().Seal();
    ++resident_sealed_[event.type];
    list.emplace_back(event.type, options_.chunk_capacity);
    EXSTREAM_RETURN_NOT_OK(MaybeSpillLocked(event.type));
  }
  return list.back().Append(event);
}

Status EventArchive::MaybeSpillLocked(EventTypeId type) {
  if (!options_.spill_dir.has_value()) return Status::OK();
  while (resident_sealed_[type] > options_.max_resident_chunks) {
    auto& list = chunks_[type];
    size_t& cursor = spill_cursor_[type];
    while (cursor < list.size() && (list[cursor].spilled() || !list[cursor].sealed())) {
      ++cursor;
    }
    if (cursor >= list.size()) break;
    const std::string path = StrFormat("%s/type%u_chunk%zu_%zu.bin",
                                       options_.spill_dir->c_str(), type, cursor,
                                       spill_file_seq_++);
    EXSTREAM_RETURN_NOT_OK(list[cursor].SpillTo(path));
    --resident_sealed_[type];
  }
  return Status::OK();
}

Result<std::vector<Event>> EventArchive::Scan(EventTypeId type,
                                              const TimeInterval& interval) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (type >= chunks_.size()) {
    return Status::InvalidArgument(StrFormat("event type %u not registered", type));
  }
  std::vector<Event> out;
  for (const Chunk& chunk : chunks_[type]) {
    if (!chunk.Overlaps(interval)) continue;  // the time-range index at work
    EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events, chunk.Load());
    for (Event& e : events) {
      if (interval.Contains(e.ts)) out.push_back(std::move(e));
    }
  }
  return out;
}

Result<std::vector<std::vector<Event>>> EventArchive::ScanAll(
    const TimeInterval& interval) const {
  std::vector<std::vector<Event>> out;
  out.reserve(chunks_.size());
  for (size_t t = 0; t < chunks_.size(); ++t) {
    EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events,
                              Scan(static_cast<EventTypeId>(t), interval));
    out.push_back(std::move(events));
  }
  return out;
}

size_t EventArchive::CountEvents(EventTypeId type) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (type >= chunks_.size()) return 0;
  size_t n = 0;
  for (const Chunk& c : chunks_[type]) n += c.size();
  return n;
}

size_t EventArchive::TotalEvents() const {
  size_t n = 0;
  for (size_t t = 0; t < chunks_.size(); ++t) {
    n += CountEvents(static_cast<EventTypeId>(t));
  }
  return n;
}

size_t EventArchive::NumChunks(EventTypeId type) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (type >= chunks_.size()) return 0;
  return chunks_[type].size();
}

}  // namespace exstream
