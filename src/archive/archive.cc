#include "archive/archive.h"

#include <algorithm>

#include "archive/serialization.h"
#include "common/logging.h"
#include "common/strings.h"

namespace exstream {

EventArchive::EventArchive(const EventTypeRegistry* registry, ArchiveOptions options)
    : registry_(registry), options_(std::move(options)), shards_(registry_->size()) {
  for (size_t t = 0; t < shards_.size(); ++t) {
    shards_[t].chunks.push_back(
        std::make_shared<Chunk>(static_cast<EventTypeId>(t), options_.chunk_capacity));
  }
}

void EventArchive::OnEvent(const Event& event) {
  const Status st = Append(event);
  if (!st.ok()) {
    append_errors_.fetch_add(1, std::memory_order_relaxed);
    EXSTREAM_LOG(Warn) << "archive append failed: " << st.ToString();
  }
}

Status EventArchive::Append(const Event& event) {
  if (event.type >= shards_.size()) {
    return Status::InvalidArgument(
        StrFormat("event type %u not registered", event.type));
  }
  Shard& shard = shards_[event.type];
  std::lock_guard<std::mutex> lock(shard.mu);
  return AppendLocked(&shard, event);
}

Status EventArchive::AppendLocked(Shard* shard, const Event& event) {
  auto& list = shard->chunks;
  if (list.back()->full()) {
    list.back()->Seal();
    ++shard->resident_sealed;
    list.push_back(std::make_shared<Chunk>(event.type, options_.chunk_capacity));
    EXSTREAM_RETURN_NOT_OK(MaybeSpillLocked(shard, event.type));
  }
  return list.back()->Append(event);
}

Status EventArchive::MaybeSpillLocked(Shard* shard, EventTypeId type) {
  if (!options_.spill_dir.has_value()) return Status::OK();
  while (shard->resident_sealed > options_.max_resident_chunks) {
    auto& list = shard->chunks;
    size_t& cursor = shard->spill_cursor;
    while (cursor < list.size() &&
           (list[cursor]->spilled() || !list[cursor]->sealed())) {
      ++cursor;
    }
    if (cursor >= list.size()) break;
    const std::string path =
        StrFormat("%s/type%u_chunk%zu_%zu.bin", options_.spill_dir->c_str(), type,
                  cursor, spill_file_seq_.fetch_add(1, std::memory_order_relaxed));
    EXSTREAM_RETURN_NOT_OK(list[cursor]->SpillTo(path));
    --shard->resident_sealed;
  }
  return Status::OK();
}

Result<std::vector<Event>> EventArchive::Scan(EventTypeId type,
                                              const TimeInterval& interval) const {
  if (type >= shards_.size()) {
    return Status::InvalidArgument(StrFormat("event type %u not registered", type));
  }
  const Shard& shard = shards_[type];

  // Phase 1 (under the shard lock): snapshot handles of overlapping chunks.
  // Sealed resident chunks are pinned by shared_ptr; spilled chunks contribute
  // only their path; the open tail chunk is the one place events still mutate,
  // so its in-range run is copied here (bounded by chunk_capacity).
  std::vector<ChunkSnapshot> snapshots;
  size_t reserve_hint = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& chunk : shard.chunks) {
      if (!chunk->Overlaps(interval)) continue;  // the time-range index at work
      ChunkSnapshot snap;
      if (!chunk->sealed()) {
        AppendEventsInRange(chunk->resident_events(), interval, &snap.open_tail);
        reserve_hint += snap.open_tail.size();
      } else if (auto resident = chunk->resident_handle()) {
        snap.resident = std::move(resident);
        reserve_hint += chunk->size();
      } else {
        snap.spill_path = chunk->spill_path();
        reserve_hint += chunk->size();
      }
      snapshots.push_back(std::move(snap));
    }
  }

  // Phase 2 (lock-free): load and range-filter each snapshot. Spill-file
  // reads — disk I/O — happen here, where they cannot stall appends.
  std::vector<Event> out;
  out.reserve(reserve_hint);
  for (ChunkSnapshot& snap : snapshots) {
    if (!snap.spill_path.empty()) {
      if (options_.spill_read_hook_for_testing) options_.spill_read_hook_for_testing();
      EXSTREAM_ASSIGN_OR_RETURN(const std::vector<Event> events,
                                ReadEventsFile(snap.spill_path));
      AppendEventsInRange(events, interval, &out);
    } else if (snap.resident != nullptr) {
      AppendEventsInRange(*snap.resident, interval, &out);
    } else {
      out.insert(out.end(), std::make_move_iterator(snap.open_tail.begin()),
                 std::make_move_iterator(snap.open_tail.end()));
    }
  }
  return out;
}

Result<std::vector<std::vector<Event>>> EventArchive::ScanAll(
    const TimeInterval& interval) const {
  std::vector<std::vector<Event>> out;
  out.reserve(shards_.size());
  for (size_t t = 0; t < shards_.size(); ++t) {
    EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events,
                              Scan(static_cast<EventTypeId>(t), interval));
    out.push_back(std::move(events));
  }
  return out;
}

size_t EventArchive::CountEvents(EventTypeId type) const {
  if (type >= shards_.size()) return 0;
  const Shard& shard = shards_[type];
  std::lock_guard<std::mutex> lock(shard.mu);
  size_t n = 0;
  for (const auto& c : shard.chunks) n += c->size();
  return n;
}

size_t EventArchive::TotalEvents() const {
  size_t n = 0;
  for (size_t t = 0; t < shards_.size(); ++t) {
    n += CountEvents(static_cast<EventTypeId>(t));
  }
  return n;
}

size_t EventArchive::NumChunks(EventTypeId type) const {
  if (type >= shards_.size()) return 0;
  const Shard& shard = shards_[type];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.chunks.size();
}

}  // namespace exstream
