#include "archive/archive.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "archive/serialization.h"
#include "common/logging.h"
#include "common/strings.h"
#include "io/file_util.h"
#include "io/quarantine_dir.h"

namespace exstream {

namespace {
// Sentinel index for the per-type linked lists built by OnEventBatch.
constexpr uint32_t kNoEvent = static_cast<uint32_t>(-1);
}  // namespace

EventArchive::EventArchive(const EventTypeRegistry* registry, ArchiveOptions options)
    : registry_(registry), options_(std::move(options)), shards_(registry_->size()) {
  for (size_t t = 0; t < shards_.size(); ++t) {
    const EventTypeId type = static_cast<EventTypeId>(t);
    shards_[t].chunks.push_back(std::make_shared<Chunk>(
        type, options_.chunk_capacity, &registry_->schema(type)));
  }
}

void EventArchive::OnEvent(const Event& event) {
  const Status st = Append(event);
  if (!st.ok()) {
    append_errors_.fetch_add(1, std::memory_order_relaxed);
    EXSTREAM_LOG(Warn) << "archive append failed: " << st.ToString();
  }
}

void EventArchive::OnEventBatch(EventBatch batch) {
  // Group the batch by event type (stable, so per-type time order is kept),
  // then drain each group under a single shard-lock acquisition.
  const size_t num_types = shards_.size();
  std::vector<uint32_t> first(num_types, kNoEvent);
  std::vector<uint32_t> next(batch.size(), kNoEvent);
  std::vector<uint32_t> last(num_types, kNoEvent);
  std::vector<EventTypeId> touched;
  for (uint32_t i = 0; i < batch.size(); ++i) {
    const EventTypeId t = batch[i].type;
    if (t >= num_types) {
      append_errors_.fetch_add(1, std::memory_order_relaxed);
      EXSTREAM_LOG(Warn) << "archive append failed: "
                         << StrFormat("event type %u not registered", t);
      continue;
    }
    if (first[t] == kNoEvent) {
      first[t] = i;
      touched.push_back(t);
    } else {
      next[last[t]] = i;
    }
    last[t] = i;
  }
  for (const EventTypeId t : touched) {
    Shard& shard = shards_[t];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (uint32_t i = first[t]; i != kNoEvent; i = next[i]) {
      const Status st = AppendLocked(&shard, batch[i]);
      if (!st.ok()) {
        append_errors_.fetch_add(1, std::memory_order_relaxed);
        EXSTREAM_LOG(Warn) << "archive append failed: " << st.ToString();
      }
    }
  }
}

Status EventArchive::Append(Event event) {
  if (event.type >= shards_.size()) {
    return Status::InvalidArgument(
        StrFormat("event type %u not registered", event.type));
  }
  Shard& shard = shards_[event.type];
  std::lock_guard<std::mutex> lock(shard.mu);
  return AppendLocked(&shard, event);
}

Status EventArchive::AppendLocked(Shard* shard, const Event& event) {
  auto& list = shard->chunks;
  if (list.back()->full()) {
    list.back()->Seal();
    // Tiers are built once, at seal time, from the still-resident columns;
    // they stay resident for the chunk's lifetime (a few windows per chunk)
    // and ride along to disk as a sidecar when the chunk spills.
    list.back()->BuildTiers(options_.tier_windows);
    ++shard->resident_sealed;
    list.push_back(std::make_shared<Chunk>(event.type, options_.chunk_capacity,
                                           &registry_->schema(event.type)));
    // Spill housekeeping runs after the fresh open chunk exists and can never
    // fail the append itself: an ENOSPC during the seal-triggered spill must
    // not drop the incoming event (the chunk stays resident and retryable).
    MaybeSpillLocked(shard, event.type);
  }
  return list.back()->Append(event);
}

void EventArchive::MaybeSpillLocked(Shard* shard, EventTypeId type) {
  if (!options_.spill_dir.has_value()) return;
  if (shard->spill_cooldown > 0) {
    // A recent spill failed even after retries (disk full / dead device):
    // skip a few seals before probing the disk again instead of paying the
    // full retry backoff on every append that seals a chunk.
    --shard->spill_cooldown;
    return;
  }
  while (shard->resident_sealed > options_.max_resident_chunks) {
    auto& list = shard->chunks;
    size_t& cursor = shard->spill_cursor;
    while (cursor < list.size() &&
           (list[cursor]->spilled() || !list[cursor]->sealed())) {
      ++cursor;
    }
    if (cursor >= list.size()) break;
    const std::string path =
        StrFormat("%s/type%u_chunk%zu_%zu.bin", options_.spill_dir->c_str(), type,
                  cursor, spill_file_seq_.fetch_add(1, std::memory_order_relaxed));
    size_t retries = 0;
    const Status spilled = RetryWithBackoff(
        options_.spill_retry,
        [&] { return list[cursor]->SpillTo(path, options_.spill_format); },
        [](const Status& s) { return s.IsIOError(); }, &retries);
    spill_write_retries_.fetch_add(retries, std::memory_order_relaxed);
    if (!spilled.ok()) {
      // Persistent write failure (disk full, dead device): keep the chunk
      // resident instead of failing the append path. Memory pressure grows,
      // but ingest — and therefore monitoring — stays available.
      spill_write_failures_.fetch_add(1, std::memory_order_relaxed);
      ++shard->spill_failures_in_a_row;
      shard->spill_cooldown = std::min<size_t>(shard->spill_failures_in_a_row, 8);
      EXSTREAM_LOG(Warn) << "spill write failed, chunk stays resident: "
                         << spilled.ToString();
      return;
    }
    shard->spill_failures_in_a_row = 0;
    --shard->resident_sealed;
  }
  EnforceTierRetentionLocked(shard);
}

void EventArchive::EnforceTierRetentionLocked(Shard* shard) {
  if (options_.tier0_retention_chunks == 0) return;
  // Oldest raw files go first (chunk lists are append-ordered). Only chunks
  // whose tiers exist are eligible — dropping raw bytes with nothing coarser
  // to fall back on would be plain data loss, not tiering.
  std::vector<Chunk*> eligible;
  for (const auto& chunk : shard->chunks) {
    if (chunk->spilled() && !chunk->raw_evicted() && !chunk->quarantined() &&
        chunk->tiers() != nullptr) {
      eligible.push_back(chunk.get());
    }
  }
  if (eligible.size() <= options_.tier0_retention_chunks) return;
  const size_t to_evict = eligible.size() - options_.tier0_retention_chunks;
  for (size_t i = 0; i < to_evict; ++i) {
    const Status st = eligible[i]->EvictRaw();
    if (st.ok()) {
      tier0_evictions_.fetch_add(1, std::memory_order_relaxed);
    } else {
      EXSTREAM_LOG(Warn) << "tier-0 retention could not remove "
                         << eligible[i]->spill_path() << ": " << st.ToString();
    }
  }
}

Result<ScanView> EventArchive::ScanColumns(EventTypeId type,
                                           const TimeInterval& interval,
                                           DegradationReport* degradation,
                                           const CancelToken* cancel,
                                           Timestamp resolution) const {
  if (type >= shards_.size()) {
    return Status::InvalidArgument(StrFormat("event type %u not registered", type));
  }
  const Shard& shard = shards_[type];

  // Phase 1 (under the shard lock): snapshot handles of overlapping chunks.
  // Sealed resident chunks are pinned by shared_ptr (their columns are
  // immutable, so the binary search for the in-range rows can wait until the
  // lock is released); spilled chunks are carried as chunk handles (read —
  // and possibly quarantined — outside the lock); the open tail chunk is the
  // one place events still mutate, so its in-range rows are column-copied
  // here (bounded by chunk_capacity). Chunks already quarantined are skipped
  // up front and accounted as lost coverage. A sealed chunk with a tier whose
  // window divides a nonzero `resolution` is answered from that tier — no
  // disk read, no row folding; with resolution 0 (exact rows required) a
  // raw-evicted chunk is reported as resolution-degraded, never approximated.
  std::vector<ChunkSnapshot> snapshots;
  DegradationReport local;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& chunk : shard.chunks) {
      if (!chunk->Overlaps(interval)) continue;  // the time-range index at work
      ++local.coverage[type].chunks_total;
      if (chunk->quarantined()) {
        DegradationReport::SkippedChunk sk;
        sk.type = type;
        sk.spill_path = chunk->spill_path();
        sk.events_lost = chunk->size();
        sk.reason = "quarantined by an earlier scan";
        local.skipped.push_back(std::move(sk));
        local.events_lost_estimate += chunk->size();
        ++local.coverage[type].chunks_skipped;
        continue;
      }
      ChunkSnapshot snap;
      if (!chunk->sealed()) {
        const ChunkColumns& cols = chunk->columns();
        const auto [lo, hi] = cols.RowRange(interval);
        if (hi > lo) {
          snap.open_tail = std::make_shared<const ChunkColumns>(cols.Slice(lo, hi));
        }
      } else {
        std::shared_ptr<const ChunkTiers> tiers =
            resolution > 0 ? chunk->tiers() : nullptr;
        const int tier_index =
            tiers != nullptr ? SelectTier(*tiers, resolution) : -1;
        if (tier_index >= 0) {
          snap.tiers = std::move(tiers);
          snap.tier_index = tier_index;
        } else if (chunk->spilled() && chunk->raw_evicted()) {
          // Raw rows are gone and no tier matches the request: surface the
          // gap instead of silently answering at the wrong resolution.
          DegradationReport::SkippedChunk sk;
          sk.type = type;
          sk.spill_path = chunk->spill_path();
          sk.events_lost = chunk->size();
          sk.reason = resolution > 0
                          ? "raw rows evicted by tier-0 retention; no tier "
                            "matches the requested resolution"
                          : "raw rows evicted by tier-0 retention; exact rows "
                            "required";
          local.skipped.push_back(std::move(sk));
          local.events_lost_estimate += chunk->size();
          ++local.coverage[type].chunks_skipped;
          ++local.resolution_degraded;
          continue;
        } else if (auto resident = chunk->resident_columns()) {
          snap.resident = std::move(resident);
        } else {
          snap.spilled = chunk;
        }
      }
      if (snap.resident || snap.spilled || snap.open_tail || snap.tiers) {
        snapshots.push_back(std::move(snap));
      }
    }
  }

  // Phase 2 (lock-free): resolve each snapshot to a column segment. Spill-
  // file reads — disk I/O — happen here, where they cannot stall appends. An
  // unreadable spill degrades the scan instead of failing it. `order` stamps
  // each segment with its chunk position so tier and raw segments interleave
  // in time order for the consumer.
  ScanView view;
  view.segments.reserve(snapshots.size());
  for (size_t order = 0; order < snapshots.size(); ++order) {
    ChunkSnapshot& snap = snapshots[order];
    if (snap.tiers != nullptr) {
      const TierColumns& tier = (*snap.tiers)[snap.tier_index];
      const auto [lo, hi] = tier.WindowRange(interval);
      if (hi > lo) {
        view.tier_segments.push_back(
            {std::shared_ptr<const TierColumns>(snap.tiers, &tier), lo, hi,
             order});
        tier_segments_served_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (snap.spilled != nullptr) {
      if (options_.spill_read_hook_for_testing) options_.spill_read_hook_for_testing();
      ReadSpillOrQuarantine(snap.spilled, interval, &view, &local, cancel, order);
    } else if (snap.resident != nullptr) {
      const auto [lo, hi] = snap.resident->RowRange(interval);
      if (hi > lo) view.segments.push_back({std::move(snap.resident), lo, hi, order});
    } else {
      const size_t rows = snap.open_tail->rows();
      view.segments.push_back({std::move(snap.open_tail), 0, rows, order});
    }
  }
  if (local.degraded()) {
    degraded_scans_.fetch_add(1, std::memory_order_relaxed);
    EXSTREAM_LOG(Warn) << "degraded scan of type " << type << ": "
                       << local.ToString();
  }
  if (degradation != nullptr) degradation->Merge(local);
  return view;
}

Result<std::vector<Event>> EventArchive::Scan(EventTypeId type,
                                              const TimeInterval& interval,
                                              DegradationReport* degradation,
                                              const CancelToken* cancel) const {
  EXSTREAM_ASSIGN_OR_RETURN(const ScanView view,
                            ScanColumns(type, interval, degradation, cancel));
  std::vector<Event> out;
  out.reserve(view.rows());
  view.MaterializeEvents(&out);
  return out;
}

void EventArchive::ReadSpillOrQuarantine(const std::shared_ptr<Chunk>& chunk,
                                         const TimeInterval& interval,
                                         ScanView* view,
                                         DegradationReport* degradation,
                                         const CancelToken* cancel,
                                         size_t order) const {
  Result<ChunkColumns> columns = ChunkColumns{};
  size_t retries = 0;
  // IOError is transient (flaky device, momentary open failure) and worth the
  // backoff; Corruption/Truncated is a property of the bytes and permanent.
  // The caller's CancelToken caps the backoff sleeps, so a deadline'd Explain
  // degrades on time instead of waiting out the full retry schedule.
  const Status read = RetryWithBackoff(
      options_.spill_retry,
      [&] {
        columns = ReadColumnsFile(chunk->spill_path());
        return columns.ok() ? Status::OK() : columns.status();
      },
      [](const Status& s) { return s.IsIOError(); }, &retries, cancel);
  spill_read_retries_.fetch_add(retries, std::memory_order_relaxed);
  if (read.ok()) {
    auto loaded = std::make_shared<const ChunkColumns>(std::move(*columns));
    const auto [lo, hi] = loaded->RowRange(interval);
    if (hi > lo) view->segments.push_back({std::move(loaded), lo, hi, order});
    return;
  }
  if (chunk->MarkQuarantined()) {
    quarantined_chunks_.fetch_add(1, std::memory_order_relaxed);
    if (options_.spill_dir.has_value()) {
      const Result<size_t> evicted =
          EnforceQuarantineCap(*options_.spill_dir, options_.max_quarantine_files);
      if (evicted.ok() && *evicted > 0) {
        quarantine_evictions_.fetch_add(*evicted, std::memory_order_relaxed);
      }
    }
  }
  EXSTREAM_LOG(Warn) << "spill read failed, chunk quarantined as "
                     << chunk->spill_path() << ".quarantine: " << read.ToString();
  DegradationReport::SkippedChunk sk;
  sk.type = chunk->type();
  sk.spill_path = chunk->spill_path();
  sk.events_lost = chunk->size();
  sk.reason = read.ToString();
  degradation->skipped.push_back(std::move(sk));
  degradation->events_lost_estimate += chunk->size();
  ++degradation->coverage[chunk->type()].chunks_skipped;
}

Result<std::vector<EventArchive::TypeScan>> EventArchive::ScanAll(
    const TimeInterval& interval, DegradationReport* degradation,
    const CancelToken* cancel) const {
  std::vector<TypeScan> out;
  for (size_t t = 0; t < shards_.size(); ++t) {
    EXSTREAM_ASSIGN_OR_RETURN(
        std::vector<Event> events,
        Scan(static_cast<EventTypeId>(t), interval, degradation, cancel));
    if (events.empty()) continue;  // no in-range events: no placeholder entry
    TypeScan ts;
    ts.type = static_cast<EventTypeId>(t);
    ts.events = std::move(events);
    out.push_back(std::move(ts));
  }
  return out;
}

size_t EventArchive::CountEvents(EventTypeId type) const {
  if (type >= shards_.size()) return 0;
  const Shard& shard = shards_[type];
  std::lock_guard<std::mutex> lock(shard.mu);
  size_t n = 0;
  for (const auto& c : shard.chunks) n += c->size();
  return n;
}

size_t EventArchive::TotalEvents() const {
  size_t n = 0;
  for (size_t t = 0; t < shards_.size(); ++t) {
    n += CountEvents(static_cast<EventTypeId>(t));
  }
  return n;
}

size_t EventArchive::NumChunks(EventTypeId type) const {
  if (type >= shards_.size()) return 0;
  const Shard& shard = shards_[type];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.chunks.size();
}

namespace {
// Chunk kinds in the checkpoint manifest.
constexpr uint8_t kChunkOpen = 0;
constexpr uint8_t kChunkResidentSealed = 1;
constexpr uint8_t kChunkSpilled = 2;
// Spilled chunk whose raw file was dropped by tier-0 retention: only the
// index entry and the tier sidecar survive a restore.
constexpr uint8_t kChunkEvicted = 3;

/// Parses "chunk_<epoch>_<type>_<i>.col", yielding the epoch; false for
/// anything else (spill files, MANIFEST, quarantine files, ...).
bool ParseCheckpointChunkEpoch(const std::string& name, uint64_t* epoch) {
  constexpr std::string_view kPrefix = "chunk_";
  constexpr std::string_view kSuffix = ".col";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (std::string_view(name).substr(0, kPrefix.size()) != kPrefix) return false;
  if (std::string_view(name).substr(name.size() - kSuffix.size()) != kSuffix) {
    return false;
  }
  const std::string digits = name.substr(kPrefix.size());
  char* end = nullptr;
  const unsigned long long v = strtoull(digits.c_str(), &end, 10);
  if (end == digits.c_str() || *end != '_') return false;
  *epoch = v;
  return true;
}
}  // namespace

Status EventArchive::RemoveStaleCheckpointChunks(const std::string& dir,
                                                 uint64_t keep_epoch) {
  EXSTREAM_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                            ListDirFiles(dir));
  Status status = Status::OK();
  for (const std::string& name : names) {
    uint64_t epoch = 0;
    if (ParseCheckpointChunkEpoch(name, &epoch) && epoch != keep_epoch) {
      const Status st = RemoveFileIfExists(dir + "/" + name);
      if (!st.ok() && status.ok()) status = st;
    }
  }
  return status;
}

Result<uint64_t> EventArchive::CheckpointTo(const std::string& dir,
                                            BytesWriter* out) const {
  EXSTREAM_RETURN_NOT_OK(EnsureDir(dir));
  // Fresh epoch = 1 + the highest already present, so this checkpoint's
  // files never overwrite ones the directory's current MANIFEST references;
  // a crash before the new MANIFEST lands leaves the old set intact.
  uint64_t epoch = 1;
  {
    EXSTREAM_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                              ListDirFiles(dir));
    for (const std::string& name : names) {
      uint64_t e = 0;
      if (ParseCheckpointChunkEpoch(name, &e)) epoch = std::max(epoch, e + 1);
    }
  }
  out->Put<uint64_t>(spill_file_seq_.load(std::memory_order_relaxed));
  out->Put<uint32_t>(static_cast<uint32_t>(shards_.size()));
  struct Entry {
    uint8_t kind = kChunkOpen;
    uint64_t count = 0;
    Timestamp min_ts = 0;
    Timestamp max_ts = 0;
    uint8_t quarantined = 0;
    std::string path;
    std::shared_ptr<const ChunkColumns> columns;  // resident kinds only
  };
  for (size_t t = 0; t < shards_.size(); ++t) {
    const Shard& shard = shards_[t];
    std::vector<Entry> entries;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      entries.reserve(shard.chunks.size());
      for (const auto& chunk : shard.chunks) {
        Entry e;
        e.count = chunk->size();
        e.min_ts = chunk->min_ts();
        e.max_ts = chunk->max_ts();
        e.quarantined = chunk->quarantined() ? 1 : 0;
        if (chunk->spilled()) {
          e.kind = chunk->raw_evicted() ? kChunkEvicted : kChunkSpilled;
          e.path = chunk->spill_path();
        } else if (chunk->sealed()) {
          e.kind = kChunkResidentSealed;
          e.columns = chunk->resident_columns();
        } else {
          // The open tail still mutates; its rows are column-copied under the
          // lock (bounded by chunk_capacity).
          e.kind = kChunkOpen;
          e.columns = std::make_shared<const ChunkColumns>(
              chunk->columns().Slice(0, chunk->columns().rows()));
        }
        entries.push_back(std::move(e));
      }
    }
    // Resident chunks persist to one file each, outside the shard lock.
    for (size_t i = 0; i < entries.size(); ++i) {
      Entry& e = entries[i];
      if (e.columns == nullptr) continue;
      e.path = StrFormat("%s/chunk_%llu_%zu_%zu.col", dir.c_str(),
                         static_cast<unsigned long long>(epoch), t, i);
      EXSTREAM_RETURN_NOT_OK(WriteColumnsFile(e.path, *e.columns));
    }
    out->Put<uint32_t>(static_cast<uint32_t>(entries.size()));
    for (const Entry& e : entries) {
      out->Put<uint8_t>(e.kind);
      out->Put<uint64_t>(e.count);
      out->Put<int64_t>(e.min_ts);
      out->Put<int64_t>(e.max_ts);
      out->Put<uint8_t>(e.quarantined);
      out->PutString(e.path);
    }
  }
  return epoch;
}

Status EventArchive::RestoreFrom(BytesReader* in) {
  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t spill_seq, in->Get<uint64_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_types, in->Get<uint32_t>());
  if (n_types != shards_.size()) {
    return Status::InvalidArgument(
        StrFormat("snapshot holds %u event types, registry has %zu", n_types,
                  shards_.size()));
  }
  if (TotalEvents() != 0) {
    return Status::InvalidArgument(
        "archive must be freshly constructed before restore");
  }
  for (size_t t = 0; t < shards_.size(); ++t) {
    Shard& shard = shards_[t];
    std::lock_guard<std::mutex> lock(shard.mu);
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_chunks, in->Get<uint32_t>());
    shard.chunks.clear();
    shard.resident_sealed = 0;
    shard.spill_cursor = 0;
    for (uint32_t i = 0; i < n_chunks; ++i) {
      EXSTREAM_ASSIGN_OR_RETURN(const uint8_t kind, in->Get<uint8_t>());
      EXSTREAM_ASSIGN_OR_RETURN(const uint64_t count, in->Get<uint64_t>());
      EXSTREAM_ASSIGN_OR_RETURN(const int64_t min_ts, in->Get<int64_t>());
      EXSTREAM_ASSIGN_OR_RETURN(const int64_t max_ts, in->Get<int64_t>());
      EXSTREAM_ASSIGN_OR_RETURN(const uint8_t quarantined, in->Get<uint8_t>());
      EXSTREAM_ASSIGN_OR_RETURN(const std::string path, in->GetString());
      const EventTypeId type = static_cast<EventTypeId>(t);
      if (kind == kChunkSpilled || kind == kChunkEvicted) {
        auto chunk = Chunk::AdoptSpilled(type, options_.chunk_capacity, count,
                                         min_ts, max_ts, path, quarantined != 0,
                                         kind == kChunkEvicted);
        if (quarantined == 0 && !options_.tier_windows.empty()) {
          // Tiers come back from the sidecar (no fault-injection seam; a
          // missing or damaged sidecar degrades resolution, never restore).
          auto tiers = ReadTiersFile(TiersSidecarPath(path), type);
          if (tiers.ok()) {
            chunk->AdoptTiers(
                std::make_shared<const ChunkTiers>(std::move(tiers).MoveValue()));
          } else if (kind == kChunkEvicted) {
            EXSTREAM_LOG(Warn)
                << "restored raw-evicted chunk without its tier sidecar ("
                << tiers.status().ToString()
                << "): scans of it will report resolution degradation";
          }
        }
        shard.chunks.push_back(std::move(chunk));
      } else if (kind == kChunkOpen || kind == kChunkResidentSealed) {
        EXSTREAM_ASSIGN_OR_RETURN(ChunkColumns columns, ReadColumnsFile(path));
        if (columns.rows() != count) {
          return Status::Corruption(
              StrFormat("checkpoint chunk %s holds %zu rows, manifest says %llu",
                        path.c_str(), columns.rows(),
                        static_cast<unsigned long long>(count)));
        }
        shard.chunks.push_back(Chunk::AdoptResident(
            type, options_.chunk_capacity, &registry_->schema(type),
            std::move(columns), kind == kChunkResidentSealed));
        if (kind == kChunkResidentSealed) {
          // Resident sealed chunks rebuild their tiers from the restored
          // columns — deterministic, so they match the pre-checkpoint tiers
          // bit for bit.
          shard.chunks.back()->BuildTiers(options_.tier_windows);
          ++shard.resident_sealed;
        }
      } else {
        return Status::Corruption(
            StrFormat("bad chunk kind %u in checkpoint manifest", kind));
      }
    }
    // Appends require an open tail chunk.
    if (shard.chunks.empty() || shard.chunks.back()->sealed()) {
      shard.chunks.push_back(std::make_shared<Chunk>(
          static_cast<EventTypeId>(t), options_.chunk_capacity,
          &registry_->schema(static_cast<EventTypeId>(t))));
    }
  }
  spill_file_seq_.store(spill_seq, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace exstream
