#include "archive/archive.h"

#include <algorithm>

#include "archive/serialization.h"
#include "common/logging.h"
#include "common/strings.h"

namespace exstream {

namespace {
// Sentinel index for the per-type linked lists built by OnEventBatch.
constexpr uint32_t kNoEvent = static_cast<uint32_t>(-1);
}  // namespace

EventArchive::EventArchive(const EventTypeRegistry* registry, ArchiveOptions options)
    : registry_(registry), options_(std::move(options)), shards_(registry_->size()) {
  for (size_t t = 0; t < shards_.size(); ++t) {
    shards_[t].chunks.push_back(
        std::make_shared<Chunk>(static_cast<EventTypeId>(t), options_.chunk_capacity));
  }
}

void EventArchive::OnEvent(const Event& event) {
  const Status st = Append(event);
  if (!st.ok()) {
    append_errors_.fetch_add(1, std::memory_order_relaxed);
    EXSTREAM_LOG(Warn) << "archive append failed: " << st.ToString();
  }
}

void EventArchive::OnEventBatch(EventBatch batch) {
  // Group the batch by event type (stable, so per-type time order is kept),
  // then drain each group under a single shard-lock acquisition.
  const size_t num_types = shards_.size();
  std::vector<uint32_t> first(num_types, kNoEvent);
  std::vector<uint32_t> next(batch.size(), kNoEvent);
  std::vector<uint32_t> last(num_types, kNoEvent);
  std::vector<EventTypeId> touched;
  for (uint32_t i = 0; i < batch.size(); ++i) {
    const EventTypeId t = batch[i].type;
    if (t >= num_types) {
      append_errors_.fetch_add(1, std::memory_order_relaxed);
      EXSTREAM_LOG(Warn) << "archive append failed: "
                         << StrFormat("event type %u not registered", t);
      continue;
    }
    if (first[t] == kNoEvent) {
      first[t] = i;
      touched.push_back(t);
    } else {
      next[last[t]] = i;
    }
    last[t] = i;
  }
  for (const EventTypeId t : touched) {
    Shard& shard = shards_[t];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (uint32_t i = first[t]; i != kNoEvent; i = next[i]) {
      const Status st = AppendLocked(&shard, std::move(batch[i]));
      if (!st.ok()) {
        append_errors_.fetch_add(1, std::memory_order_relaxed);
        EXSTREAM_LOG(Warn) << "archive append failed: " << st.ToString();
      }
    }
  }
}

Status EventArchive::Append(Event event) {
  if (event.type >= shards_.size()) {
    return Status::InvalidArgument(
        StrFormat("event type %u not registered", event.type));
  }
  Shard& shard = shards_[event.type];
  std::lock_guard<std::mutex> lock(shard.mu);
  return AppendLocked(&shard, std::move(event));
}

Status EventArchive::AppendLocked(Shard* shard, Event event) {
  auto& list = shard->chunks;
  if (list.back()->full()) {
    list.back()->Seal();
    ++shard->resident_sealed;
    list.push_back(std::make_shared<Chunk>(event.type, options_.chunk_capacity));
    EXSTREAM_RETURN_NOT_OK(MaybeSpillLocked(shard, event.type));
  }
  return list.back()->Append(std::move(event));
}

Status EventArchive::MaybeSpillLocked(Shard* shard, EventTypeId type) {
  if (!options_.spill_dir.has_value()) return Status::OK();
  while (shard->resident_sealed > options_.max_resident_chunks) {
    auto& list = shard->chunks;
    size_t& cursor = shard->spill_cursor;
    while (cursor < list.size() &&
           (list[cursor]->spilled() || !list[cursor]->sealed())) {
      ++cursor;
    }
    if (cursor >= list.size()) break;
    const std::string path =
        StrFormat("%s/type%u_chunk%zu_%zu.bin", options_.spill_dir->c_str(), type,
                  cursor, spill_file_seq_.fetch_add(1, std::memory_order_relaxed));
    size_t retries = 0;
    const Status spilled = RetryWithBackoff(
        options_.spill_retry,
        [&] { return list[cursor]->SpillTo(path, options_.spill_format); },
        [](const Status& s) { return s.IsIOError(); }, &retries);
    spill_write_retries_.fetch_add(retries, std::memory_order_relaxed);
    if (!spilled.ok()) {
      // Persistent write failure (disk full, dead device): keep the chunk
      // resident instead of failing the append path. Memory pressure grows,
      // but ingest — and therefore monitoring — stays available.
      spill_write_failures_.fetch_add(1, std::memory_order_relaxed);
      EXSTREAM_LOG(Warn) << "spill write failed, chunk stays resident: "
                         << spilled.ToString();
      break;
    }
    --shard->resident_sealed;
  }
  return Status::OK();
}

Result<std::vector<Event>> EventArchive::Scan(EventTypeId type,
                                              const TimeInterval& interval,
                                              DegradationReport* degradation) const {
  if (type >= shards_.size()) {
    return Status::InvalidArgument(StrFormat("event type %u not registered", type));
  }
  const Shard& shard = shards_[type];

  // Phase 1 (under the shard lock): snapshot handles of overlapping chunks.
  // Sealed resident chunks are pinned by shared_ptr; spilled chunks are
  // carried as chunk handles (read — and possibly quarantined — outside the
  // lock); the open tail chunk is the one place events still mutate, so its
  // in-range run is copied here (bounded by chunk_capacity). Chunks already
  // quarantined are skipped up front and accounted as lost coverage.
  std::vector<ChunkSnapshot> snapshots;
  size_t reserve_hint = 0;
  DegradationReport local;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& chunk : shard.chunks) {
      if (!chunk->Overlaps(interval)) continue;  // the time-range index at work
      ++local.coverage[type].chunks_total;
      if (chunk->quarantined()) {
        DegradationReport::SkippedChunk sk;
        sk.type = type;
        sk.spill_path = chunk->spill_path();
        sk.events_lost = chunk->size();
        sk.reason = "quarantined by an earlier scan";
        local.skipped.push_back(std::move(sk));
        local.events_lost_estimate += chunk->size();
        ++local.coverage[type].chunks_skipped;
        continue;
      }
      ChunkSnapshot snap;
      if (!chunk->sealed()) {
        AppendEventsInRange(chunk->resident_events(), interval, &snap.open_tail);
        reserve_hint += snap.open_tail.size();
      } else if (auto resident = chunk->resident_handle()) {
        snap.resident = std::move(resident);
        reserve_hint += chunk->size();
      } else {
        snap.spilled = chunk;
        reserve_hint += chunk->size();
      }
      snapshots.push_back(std::move(snap));
    }
  }

  // Phase 2 (lock-free): load and range-filter each snapshot. Spill-file
  // reads — disk I/O — happen here, where they cannot stall appends. An
  // unreadable spill degrades the scan instead of failing it.
  std::vector<Event> out;
  out.reserve(reserve_hint);
  for (ChunkSnapshot& snap : snapshots) {
    if (snap.spilled != nullptr) {
      if (options_.spill_read_hook_for_testing) options_.spill_read_hook_for_testing();
      ReadSpillOrQuarantine(snap.spilled, interval, &out, &local);
    } else if (snap.resident != nullptr) {
      AppendEventsInRange(*snap.resident, interval, &out);
    } else {
      out.insert(out.end(), std::make_move_iterator(snap.open_tail.begin()),
                 std::make_move_iterator(snap.open_tail.end()));
    }
  }
  if (local.degraded()) {
    degraded_scans_.fetch_add(1, std::memory_order_relaxed);
    EXSTREAM_LOG(Warn) << "degraded scan of type " << type << ": "
                       << local.ToString();
  }
  if (degradation != nullptr) degradation->Merge(local);
  return out;
}

void EventArchive::ReadSpillOrQuarantine(const std::shared_ptr<Chunk>& chunk,
                                         const TimeInterval& interval,
                                         std::vector<Event>* out,
                                         DegradationReport* degradation) const {
  Result<std::vector<Event>> events = std::vector<Event>{};
  size_t retries = 0;
  // IOError is transient (flaky device, momentary open failure) and worth the
  // backoff; Corruption/Truncated is a property of the bytes and permanent.
  const Status read = RetryWithBackoff(
      options_.spill_retry,
      [&] {
        events = ReadEventsFile(chunk->spill_path());
        return events.ok() ? Status::OK() : events.status();
      },
      [](const Status& s) { return s.IsIOError(); }, &retries);
  spill_read_retries_.fetch_add(retries, std::memory_order_relaxed);
  if (read.ok()) {
    AppendEventsInRange(*events, interval, out);
    return;
  }
  if (chunk->MarkQuarantined()) {
    quarantined_chunks_.fetch_add(1, std::memory_order_relaxed);
  }
  EXSTREAM_LOG(Warn) << "spill read failed, chunk quarantined as "
                     << chunk->spill_path() << ".quarantine: " << read.ToString();
  DegradationReport::SkippedChunk sk;
  sk.type = chunk->type();
  sk.spill_path = chunk->spill_path();
  sk.events_lost = chunk->size();
  sk.reason = read.ToString();
  degradation->skipped.push_back(std::move(sk));
  degradation->events_lost_estimate += chunk->size();
  ++degradation->coverage[chunk->type()].chunks_skipped;
}

Result<std::vector<std::vector<Event>>> EventArchive::ScanAll(
    const TimeInterval& interval, DegradationReport* degradation) const {
  std::vector<std::vector<Event>> out;
  out.reserve(shards_.size());
  for (size_t t = 0; t < shards_.size(); ++t) {
    EXSTREAM_ASSIGN_OR_RETURN(std::vector<Event> events,
                              Scan(static_cast<EventTypeId>(t), interval, degradation));
    out.push_back(std::move(events));
  }
  return out;
}

size_t EventArchive::CountEvents(EventTypeId type) const {
  if (type >= shards_.size()) return 0;
  const Shard& shard = shards_[type];
  std::lock_guard<std::mutex> lock(shard.mu);
  size_t n = 0;
  for (const auto& c : shard.chunks) n += c->size();
  return n;
}

size_t EventArchive::TotalEvents() const {
  size_t n = 0;
  for (size_t t = 0; t < shards_.size(); ++t) {
    n += CountEvents(static_cast<EventTypeId>(t));
  }
  return n;
}

size_t EventArchive::NumChunks(EventTypeId type) const {
  if (type >= shards_.size()) return 0;
  const Shard& shard = shards_[type];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.chunks.size();
}

}  // namespace exstream
