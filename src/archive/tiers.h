// Storage tiers: per-window downsampled aggregates built over a sealed
// chunk's raw columns (netdata-dbengine-style).
//
// Tier-0 is the raw ChunkColumns itself. Each higher tier summarizes the
// chunk at one fixed window (e.g. 60 s, 1 h): per present window, the end
// timestamp plus per-attribute {count, min, max, sum, sum-of-squares} over
// the window's non-NaN numeric samples. Windows are aligned to absolute time
// (floor(ts / window) * window), so tier windows from adjacent chunks — and
// from different tiers whose windows nest — line up exactly and can be merged
// without re-reading raw rows.
//
// Tiers are small (a few windows per chunk) and stay resident for the
// chunk's lifetime; a sidecar file (`<spill_path>.tiers`) persists them next
// to the spill so checkpoint restore — and tier-0 retention eviction — never
// needs the raw bytes back.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "archive/columns.h"
#include "common/result.h"
#include "event/event.h"

namespace exstream {

/// \brief One attribute's aggregates, dense over the tier's present windows.
/// `count[i] == 0` marks a window where the attribute had no numeric sample
/// (min/max/sum/sumsq are 0 there and must be ignored).
struct TierAttr {
  std::vector<uint32_t> count;
  std::vector<double> min;
  std::vector<double> max;
  std::vector<double> sum;
  std::vector<double> sumsq;
};

/// \brief One tier of one chunk: aggregates at a fixed window resolution.
/// Only windows that contained at least one raw row are present; `ts` holds
/// their absolute-aligned *end* timestamps, strictly increasing.
struct TierColumns {
  Timestamp window = 0;
  std::vector<Timestamp> ts;
  std::vector<TierAttr> attrs;

  size_t windows() const { return ts.size(); }

  /// Window index range [first, second) whose span [ts[i]-window, ts[i])
  /// intersects [interval.lower, interval.upper].
  std::pair<size_t, size_t> WindowRange(const TimeInterval& interval) const;
};

/// All tiers of one chunk, ascending by window.
using ChunkTiers = std::vector<TierColumns>;

/// End timestamp of the absolute-aligned window of length `w` containing `t`
/// (floor division, correct for negative timestamps).
inline Timestamp TierWindowEnd(Timestamp t, Timestamp w) {
  Timestamp q = t / w;
  if (t % w < 0) --q;
  return q * w + w;
}

/// \brief Builds one tier per positive window over the chunk's raw columns.
/// Deterministic: aggregation folds rows in ascending row order, so restoring
/// a checkpointed chunk and re-building its tiers reproduces them bit for
/// bit. Windows are sorted ascending and deduplicated.
ChunkTiers BuildChunkTiers(const ChunkColumns& columns,
                           const std::vector<Timestamp>& windows);

/// Index of the coarsest tier whose window divides `resolution` (every
/// aligned tier window then nests inside an aligned resolution window);
/// -1 when no tier qualifies.
int SelectTier(const ChunkTiers& tiers, Timestamp resolution);

/// \brief Tier sidecar serialization ("EXT1": u32 magic, u32 event type,
/// u32 attr count, u8 tier count, then one CRC32-framed block per tier with
/// delta-of-delta window timestamps and compressed aggregate streams).
std::string SerializeTiers(const ChunkTiers& tiers, EventTypeId type);

/// Parses a SerializeTiers buffer; `expected_type` guards against a sidecar
/// paired with the wrong chunk.
Result<ChunkTiers> DeserializeTiers(std::string_view data,
                                    EventTypeId expected_type);

/// Sidecar path for a spill file.
inline std::string TiersSidecarPath(const std::string& spill_path) {
  return spill_path + ".tiers";
}

/// \brief Writes the sidecar atomically (temp + fsync + rename). Tier
/// sidecars are derived data — rebuildable from raw columns — so these two
/// deliberately bypass the fault injector: arming a wildcard read/write plan
/// keeps hitting the primary spill seams exactly as often as before tiering.
Status WriteTiersFile(const std::string& path, const ChunkTiers& tiers,
                      EventTypeId type);
Result<ChunkTiers> ReadTiersFile(const std::string& path,
                                 EventTypeId expected_type);

}  // namespace exstream
