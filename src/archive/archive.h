// EventArchive: the archive module of the XStream architecture (Fig. 18/19a).
//
// Stores all input-stream events, partitioned by event type into bounded
// chunks with a per-chunk time-range index, so that explanation analysis can
// read back exactly the events of an annotated interval without scanning
// unrelated data. Sealed chunks can be spilled to disk and reloaded lazily.

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "archive/chunk.h"
#include "archive/degradation.h"
#include "common/bytes.h"
#include "common/result.h"
#include "common/retry.h"
#include "event/event.h"
#include "event/registry.h"
#include "event/stream.h"

namespace exstream {

/// \brief Configuration for the archive.
struct ArchiveOptions {
  /// Events per chunk; the paper's index-size vs read-amplification tradeoff.
  size_t chunk_capacity = 4096;
  /// If set, sealed chunks beyond `max_resident_chunks` spill here.
  std::optional<std::string> spill_dir;
  /// Resident sealed-chunk budget per event type before spilling (FIFO).
  size_t max_resident_chunks = 64;
  /// On-disk format for new spill files (v4 = compressed columnar with
  /// per-block CRC32s; files written by older builds stay readable).
  SpillFormat spill_format = SpillFormat::kV4;
  /// Downsampled-tier windows built per sealed chunk (ascending; empty
  /// disables tiering). A resolution-aware scan whose resolution is a
  /// multiple of a tier window is answered from that tier without touching
  /// the raw rows (or the disk, for spilled chunks).
  std::vector<Timestamp> tier_windows = {60, 3600};
  /// Tier-0 (raw) retention: keep at most this many spilled chunks' raw
  /// files per event type; older raw files are deleted, leaving the chunk's
  /// aggregate tiers (and sidecar) to answer coarse scans. 0 = keep all raw
  /// data forever. Raw files are only dropped for chunks that have tiers;
  /// quarantined files are never touched (triage evidence).
  size_t tier0_retention_chunks = 0;
  /// Backoff schedule for transient spill I/O errors (reads and writes).
  /// Corruption/truncation is permanent and never retried.
  RetryPolicy spill_retry;
  /// Cap on `*.quarantine` files kept in `spill_dir`; when a new quarantine
  /// pushes the count past this, the oldest are deleted (triage keeps the
  /// newest evidence, disk usage stays bounded).
  size_t max_quarantine_files = 64;
  /// Test-only: invoked by Scan once per spill-file read, after the shard
  /// lock is released and before the disk read. Lets tests prove that slow
  /// spill I/O cannot block concurrent Appends.
  std::function<void()> spill_read_hook_for_testing;
};

/// \brief Chunked, time-indexed store of all archived events.
///
/// Thread-safe: the CEP data source appends from the ingest thread while the
/// explanation engine scans from worker threads. Locking is sharded per event
/// type, and scans only hold the shard lock long enough to snapshot chunk
/// handles — chunk loading, spill-file reads, and range filtering all run
/// outside the lock, so a scan never stalls appends (even of its own type)
/// on disk I/O.
class EventArchive : public EventSink {
 public:
  EventArchive(const EventTypeRegistry* registry, ArchiveOptions options = {});

  /// EventSink: archives one event. Errors are counted and logged, not thrown.
  void OnEvent(const Event& event) override;

  /// \brief EventSink: archives a batch, taking each touched type's shard
  /// lock once per batch instead of once per event, and moving the events
  /// into their chunks (the batch is owned). Errors are counted and logged.
  void OnEventBatch(EventBatch batch) override;

  /// Appends with error reporting (preferred in non-streaming code). Takes
  /// the event by value: rvalue callers move, lvalue callers copy as before.
  Status Append(Event event);

  /// \brief Zero-copy columnar scan: every chunk of `type` overlapping
  /// [interval.lower, interval.upper], as pinned column segments in time
  /// order (the interval is resolved by binary search on each chunk's ts
  /// column). Sealed resident chunks are shared without copying; spilled
  /// chunks deserialize straight into view-owned columns; only the mutable
  /// open tail is copied. This is the explanation hot path's entry point.
  ///
  /// Degrades rather than fails on unreadable spill files: transient I/O
  /// errors are retried per `ArchiveOptions::spill_retry`; a chunk that still
  /// cannot be read is quarantined (file renamed to `<path>.quarantine`,
  /// chunk excluded from future scans) and the view carries every healthy
  /// chunk. When `degradation` is non-null it receives exactly what was
  /// skipped; pass nullptr to ignore (skips are still logged).
  ///
  /// `cancel`, when non-null, bounds the retry backoff: an Explain running
  /// against a deadline must not sleep past it waiting on a flaky disk. An
  /// expired token stops further retry sleeps (the chunk quarantines as if
  /// the retries were exhausted); it does not abort reads already in flight.
  ///
  /// `resolution` declares the coarsest time granularity the caller can fold
  /// (e.g. the gcd of its aggregation windows). 0 means exact rows are
  /// required: the scan never substitutes tiers, and a chunk whose raw data
  /// was evicted by tier-0 retention is reported as resolution-degraded in
  /// `degradation` rather than silently approximated. With resolution > 0, a
  /// sealed chunk carrying a tier whose window divides the resolution is
  /// answered as a TierSegment (pre-aggregated, no disk read); chunks
  /// without a suitable tier still contribute raw rows, and only an evicted
  /// chunk with no suitable tier degrades the scan.
  Result<ScanView> ScanColumns(EventTypeId type, const TimeInterval& interval,
                               DegradationReport* degradation = nullptr,
                               const CancelToken* cancel = nullptr,
                               Timestamp resolution = 0) const;

  /// \brief All events of `type` with ts in the interval, in time order, as
  /// materialized rows. Compatibility shim over ScanColumns: each event is
  /// rebuilt from the column segments (same degradation contract).
  Result<std::vector<Event>> Scan(EventTypeId type, const TimeInterval& interval,
                                  DegradationReport* degradation,
                                  const CancelToken* cancel = nullptr) const;
  Result<std::vector<Event>> Scan(EventTypeId type, const TimeInterval& interval) const {
    return Scan(type, interval, nullptr);
  }

  /// One event type's rows from a ScanAll.
  struct TypeScan {
    EventTypeId type = kInvalidEventType;
    std::vector<Event> events;
  };

  /// \brief Scan across every event type, in type-id order. Types with zero
  /// in-range events are skipped entirely (no empty placeholder entries);
  /// each returned entry carries its type id.
  Result<std::vector<TypeScan>> ScanAll(
      const TimeInterval& interval, DegradationReport* degradation = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// Total archived events of a type.
  size_t CountEvents(EventTypeId type) const;

  /// Total archived events.
  size_t TotalEvents() const;

  /// Number of chunks (resident + spilled) for a type.
  size_t NumChunks(EventTypeId type) const;

  /// Number of append errors swallowed by OnEvent (out-of-order etc.).
  size_t append_errors() const { return append_errors_.load(std::memory_order_relaxed); }

  /// Spill reads re-attempted after a transient I/O error.
  size_t spill_read_retries() const {
    return spill_read_retries_.load(std::memory_order_relaxed);
  }
  /// Spill writes re-attempted after a transient I/O error.
  size_t spill_write_retries() const {
    return spill_write_retries_.load(std::memory_order_relaxed);
  }
  /// Chunks quarantined as unreadable (lifetime total).
  size_t quarantined_chunks() const {
    return quarantined_chunks_.load(std::memory_order_relaxed);
  }
  /// Spill writes that failed even after retries (chunk stayed resident).
  size_t spill_write_failures() const {
    return spill_write_failures_.load(std::memory_order_relaxed);
  }
  /// Scans that returned with at least one chunk skipped.
  size_t degraded_scans() const {
    return degraded_scans_.load(std::memory_order_relaxed);
  }
  /// Quarantine files deleted to enforce `max_quarantine_files`.
  size_t quarantine_evictions() const {
    return quarantine_evictions_.load(std::memory_order_relaxed);
  }
  /// Raw spill files deleted by tier-0 retention (lifetime total).
  size_t tier0_evictions() const {
    return tier0_evictions_.load(std::memory_order_relaxed);
  }
  /// Chunks answered from a downsampled tier instead of raw rows.
  size_t tier_segments_served() const {
    return tier_segments_served_.load(std::memory_order_relaxed);
  }

  /// \brief Checkpoint support: appends the archive's chunk index to `out`
  /// and writes every resident chunk's columns under `dir` (file per chunk).
  /// Spilled chunks are referenced by their spill path — already durable, so
  /// the checkpoint stores only their index entry. Must not run concurrently
  /// with appends (scans are fine).
  ///
  /// Chunk files carry a per-checkpoint epoch (`chunk_<epoch>_<type>_<i>.col`,
  /// epoch = 1 + the highest epoch already in `dir`), so re-checkpointing into
  /// the same directory never overwrites files a previous MANIFEST still
  /// references. Returns the epoch used; once the caller has durably
  /// installed the new MANIFEST it passes that epoch to
  /// RemoveStaleCheckpointChunks to reclaim the superseded files.
  Result<uint64_t> CheckpointTo(const std::string& dir, BytesWriter* out) const;

  /// \brief Deletes checkpoint chunk files in `dir` whose epoch differs from
  /// `keep_epoch`. Call only after the MANIFEST referencing `keep_epoch` is
  /// durably in place — until then the stale files back the previous
  /// checkpoint. Best-effort; returns the first deletion error, if any.
  static Status RemoveStaleCheckpointChunks(const std::string& dir,
                                            uint64_t keep_epoch);

  /// \brief Restores a CheckpointTo snapshot into a freshly constructed
  /// archive (same registry, no events appended yet).
  Status RestoreFrom(BytesReader* in);

  const EventTypeRegistry& registry() const { return *registry_; }

 private:
  /// One event type's chunk list plus its lock. The shard vector itself is
  /// sized at construction and never resized, so shards can be addressed
  /// without any global lock.
  struct Shard {
    mutable std::mutex mu;
    std::vector<std::shared_ptr<Chunk>> chunks;
    size_t resident_sealed = 0;  ///< count of unspilled sealed chunks
    size_t spill_cursor = 0;     ///< next chunk index to consider spilling
    /// Consecutive failed spill attempts; backs off the per-seal retry storm
    /// a full disk would otherwise cause.
    size_t spill_failures_in_a_row = 0;
    /// Seals to skip before the next spill attempt (set after a failure).
    size_t spill_cooldown = 0;
  };

  /// A scan's view of one overlapping chunk, captured under the shard lock.
  /// Exactly one of resident / spilled / open_tail / tiers is populated.
  struct ChunkSnapshot {
    std::shared_ptr<const ChunkColumns> resident;  ///< sealed, in memory (pinned)
    std::shared_ptr<Chunk> spilled;  ///< sealed, on disk (read outside the lock)
    std::shared_ptr<const ChunkColumns> open_tail;  ///< open chunk: in-range rows, copied
    std::shared_ptr<const ChunkTiers> tiers;  ///< sealed, answered from a tier
    int tier_index = -1;                      ///< which tier of `tiers`
  };

  Status AppendLocked(Shard* shard, const Event& event);
  /// Spill housekeeping after a seal. Never fails the caller: a failed spill
  /// keeps the chunk resident, counts the failure, and arms a cooldown so a
  /// dead disk is not retried on every subsequent seal.
  void MaybeSpillLocked(Shard* shard, EventTypeId type);
  /// Tier-0 retention: drops the oldest spilled chunks' raw files beyond
  /// `tier0_retention_chunks`, keeping their tiers. Runs under the shard lock
  /// after spill housekeeping.
  void EnforceTierRetentionLocked(Shard* shard);
  /// Reads one spilled chunk's columns with retries; on terminal failure
  /// quarantines it and records the loss in `degradation`. Appends the
  /// in-range segment to `view` on success.
  void ReadSpillOrQuarantine(const std::shared_ptr<Chunk>& chunk,
                             const TimeInterval& interval, ScanView* view,
                             DegradationReport* degradation,
                             const CancelToken* cancel, size_t order) const;

  const EventTypeRegistry* registry_;  // not owned
  ArchiveOptions options_;
  std::vector<Shard> shards_;  // one per event type, fixed at construction
  std::atomic<size_t> append_errors_{0};
  std::atomic<size_t> spill_file_seq_{0};
  mutable std::atomic<size_t> spill_read_retries_{0};
  std::atomic<size_t> spill_write_retries_{0};
  mutable std::atomic<size_t> quarantined_chunks_{0};
  std::atomic<size_t> spill_write_failures_{0};
  mutable std::atomic<size_t> degraded_scans_{0};
  mutable std::atomic<size_t> quarantine_evictions_{0};
  std::atomic<size_t> tier0_evictions_{0};
  mutable std::atomic<size_t> tier_segments_served_{0};
};

}  // namespace exstream
