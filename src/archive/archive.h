// EventArchive: the archive module of the XStream architecture (Fig. 18/19a).
//
// Stores all input-stream events, partitioned by event type into bounded
// chunks with a per-chunk time-range index, so that explanation analysis can
// read back exactly the events of an annotated interval without scanning
// unrelated data. Sealed chunks can be spilled to disk and reloaded lazily.

#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "archive/chunk.h"
#include "common/result.h"
#include "event/event.h"
#include "event/registry.h"
#include "event/stream.h"

namespace exstream {

/// \brief Configuration for the archive.
struct ArchiveOptions {
  /// Events per chunk; the paper's index-size vs read-amplification tradeoff.
  size_t chunk_capacity = 4096;
  /// If set, sealed chunks beyond `max_resident_chunks` spill here.
  std::optional<std::string> spill_dir;
  /// Resident sealed-chunk budget per event type before spilling (FIFO).
  size_t max_resident_chunks = 64;
};

/// \brief Chunked, time-indexed store of all archived events.
///
/// Thread-safe: the CEP data source appends from the ingest thread while the
/// explanation engine scans from worker threads.
class EventArchive : public EventSink {
 public:
  EventArchive(const EventTypeRegistry* registry, ArchiveOptions options = {});

  /// EventSink: archives one event. Errors are counted and logged, not thrown.
  void OnEvent(const Event& event) override;

  /// Appends with error reporting (preferred in non-streaming code).
  Status Append(const Event& event);

  /// \brief All events of `type` with ts in [interval.lower, interval.upper],
  /// in time order.
  Result<std::vector<Event>> Scan(EventTypeId type, const TimeInterval& interval) const;

  /// \brief Scan across every event type; results grouped by type id.
  Result<std::vector<std::vector<Event>>> ScanAll(const TimeInterval& interval) const;

  /// Total archived events of a type.
  size_t CountEvents(EventTypeId type) const;

  /// Total archived events.
  size_t TotalEvents() const;

  /// Number of chunks (resident + spilled) for a type.
  size_t NumChunks(EventTypeId type) const;

  /// Number of append errors swallowed by OnEvent (out-of-order etc.).
  size_t append_errors() const { return append_errors_; }

  const EventTypeRegistry& registry() const { return *registry_; }

 private:
  Status AppendLocked(const Event& event);
  Status MaybeSpillLocked(EventTypeId type);

  const EventTypeRegistry* registry_;  // not owned
  ArchiveOptions options_;
  mutable std::mutex mu_;
  // chunks_[type] is the ordered chunk list of that event type.
  std::vector<std::vector<Chunk>> chunks_;
  std::vector<size_t> resident_sealed_;  // per type, count of unspilled sealed chunks
  std::vector<size_t> spill_cursor_;     // per type, next chunk index to spill
  size_t append_errors_ = 0;
  size_t spill_file_seq_ = 0;
};

}  // namespace exstream
