#include "archive/serialization.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <thread>

#include <unistd.h>

#include "archive/compress.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/strings.h"
#include "io/file_util.h"

namespace exstream {

namespace {

constexpr uint32_t kMagicV1 = 0x45585331;  // "EXS1"
constexpr uint32_t kMagicV2 = 0x45585332;  // "EXS2"
constexpr uint32_t kMagicV3 = 0x45585333;  // "EXS3"
constexpr uint32_t kMagicV4 = 0x45585334;  // "EXS4"

// Smallest possible event record: i64 ts + u32 type + u16 value count.
constexpr size_t kMinEventBytes = sizeof(int64_t) + sizeof(uint32_t) + sizeof(uint16_t);

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

template <typename T>
void PutPod(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
void PutPodVector(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  Result<T> Get() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::Truncated(
          StrFormat("event buffer ends at offset %zu (need %zu more bytes, %zu left)",
                    pos_, sizeof(T), data_.size() - pos_));
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  Result<std::string> GetBytes(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Truncated(
          StrFormat("string payload at offset %zu needs %zu bytes, %zu left", pos_,
                    n, data_.size() - pos_));
    }
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  Result<std::string_view> GetView(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Truncated(
          StrFormat("block at offset %zu needs %zu bytes, %zu left", pos_, n,
                    data_.size() - pos_));
    }
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  /// Bulk-reads `n` trivially copyable elements into `out`.
  template <typename T>
  Status GetPodVector(size_t n, std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    EXSTREAM_ASSIGN_OR_RETURN(const std::string_view bytes, GetView(n * sizeof(T)));
    out->resize(n);
    std::memcpy(out->data(), bytes.data(), bytes.size());
    return Status::OK();
  }

  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// Parses the per-event row payload shared by v1 and v2. `r` is positioned at
// the first event record.
Result<std::vector<Event>> ParseEventPayload(Reader* r, uint32_t count) {
  // A corrupt count must not drive a multi-GB reserve: every event occupies
  // at least kMinEventBytes, so a count the remaining bytes cannot hold is
  // corruption, detected before any allocation.
  if (static_cast<uint64_t>(count) * kMinEventBytes > r->remaining()) {
    return Status::Corruption(
        StrFormat("header count %u needs at least %llu bytes but %zu remain at offset %zu",
                  count, static_cast<unsigned long long>(count) * kMinEventBytes,
                  r->remaining(), r->pos()));
  }
  std::vector<Event> events;
  events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Event e;
    EXSTREAM_ASSIGN_OR_RETURN(e.ts, r->Get<int64_t>());
    EXSTREAM_ASSIGN_OR_RETURN(e.type, r->Get<uint32_t>());
    EXSTREAM_ASSIGN_OR_RETURN(const uint16_t nvals, r->Get<uint16_t>());
    e.values.reserve(nvals);
    for (uint16_t j = 0; j < nvals; ++j) {
      EXSTREAM_ASSIGN_OR_RETURN(const uint8_t tag, r->Get<uint8_t>());
      switch (static_cast<ValueType>(tag)) {
        case ValueType::kInt64: {
          EXSTREAM_ASSIGN_OR_RETURN(const int64_t v, r->Get<int64_t>());
          e.values.emplace_back(v);
          break;
        }
        case ValueType::kDouble: {
          EXSTREAM_ASSIGN_OR_RETURN(const double v, r->Get<double>());
          e.values.emplace_back(v);
          break;
        }
        case ValueType::kString: {
          EXSTREAM_ASSIGN_OR_RETURN(const uint32_t len, r->Get<uint32_t>());
          EXSTREAM_ASSIGN_OR_RETURN(std::string s, r->GetBytes(len));
          e.values.emplace_back(std::move(s));
          break;
        }
        default:
          return Status::Corruption(
              StrFormat("bad value tag %u at offset %zu", tag, r->pos() - 1));
      }
    }
    events.push_back(std::move(e));
  }
  if (!r->AtEnd()) {
    return Status::Corruption(
        StrFormat("%zu trailing bytes after %u events at offset %zu", r->remaining(),
                  count, r->pos()));
  }
  return events;
}

template <typename T>
inline void StorePod(char** p, T v) {
  std::memcpy(*p, &v, sizeof(T));
  *p += sizeof(T);
}

std::string SerializeRowPayload(const std::vector<Event>& events, SpillFormat format) {
  // Row serialization is on the WAL's per-batch hot path, so the exact size
  // is computed up front and the payload written with raw stores into one
  // allocation — the incremental-append version spent most of its time in
  // per-value append bookkeeping. The byte layout is unchanged.
  const bool v2 = format == SpillFormat::kV2;
  size_t size = 2 * sizeof(uint32_t) + (v2 ? sizeof(uint32_t) : 0);
  for (const Event& e : events) {
    size += sizeof(int64_t) + sizeof(uint32_t) + sizeof(uint16_t);
    for (const Value& v : e.values) {
      size += 1;
      switch (v.type()) {
        case ValueType::kInt64:
        case ValueType::kDouble:
          size += 8;
          break;
        case ValueType::kString:
          size += sizeof(uint32_t) + v.AsString().size();
          break;
      }
    }
  }
  std::string out;
  out.resize(size);
  char* p = out.data();
  StorePod<uint32_t>(&p, v2 ? kMagicV2 : kMagicV1);
  StorePod<uint32_t>(&p, static_cast<uint32_t>(events.size()));
  char* crc_pos = p;
  if (v2) StorePod<uint32_t>(&p, 0);  // checksum placeholder, patched below
  const char* payload_pos = p;
  for (const Event& e : events) {
    StorePod<int64_t>(&p, e.ts);
    StorePod<uint32_t>(&p, e.type);
    StorePod<uint16_t>(&p, static_cast<uint16_t>(e.values.size()));
    for (const Value& v : e.values) {
      *p++ = static_cast<char>(v.type());
      switch (v.type()) {
        case ValueType::kInt64:
          StorePod<int64_t>(&p, v.AsInt64());
          break;
        case ValueType::kDouble:
          StorePod<double>(&p, v.AsDouble());
          break;
        case ValueType::kString: {
          const std::string& s = v.AsString();
          StorePod<uint32_t>(&p, static_cast<uint32_t>(s.size()));
          std::memcpy(p, s.data(), s.size());
          p += s.size();
          break;
        }
      }
    }
  }
  if (v2) {
    const uint32_t crc =
        Crc32(payload_pos, static_cast<size_t>(p - payload_pos));
    std::memcpy(crc_pos, &crc, sizeof(crc));
  }
  return out;
}

// Appends one length-prefixed, CRC-protected block: u32 len, u32 crc, bytes.
void PutBlock(std::string* out, const std::string& payload) {
  PutPod<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  PutPod<uint32_t>(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

// Reads one block, verifying its CRC. `what` names the block in errors.
Result<std::string_view> GetBlock(Reader* r, const char* what) {
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t len, r->Get<uint32_t>());
  if (len > r->remaining()) {
    return Status::Truncated(
        StrFormat("%s block at offset %zu declares %u bytes, %zu left", what,
                  r->pos(), len, r->remaining() >= 4 ? r->remaining() - 4 : 0));
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t stored_crc, r->Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const std::string_view payload, r->GetView(len));
  const uint32_t computed = Crc32(payload.data(), payload.size());
  if (computed != stored_crc) {
    return Status::Corruption(
        StrFormat("%s column checksum mismatch: stored 0x%08x, computed 0x%08x "
                  "over %u bytes",
                  what, stored_crc, computed, len));
  }
  return payload;
}

std::string SerializeColumnarPayload(const ChunkColumns& columns) {
  std::string out;
  PutPod<uint32_t>(&out, kMagicV3);
  PutPod<uint32_t>(&out, static_cast<uint32_t>(columns.rows()));
  PutPod<uint32_t>(&out, columns.type());
  PutPod<uint16_t>(&out, static_cast<uint16_t>(columns.num_columns()));

  std::string block;
  PutPodVector(&block, columns.ts());
  PutBlock(&out, block);

  for (const AttributeColumn& col : columns.attrs()) {
    block.clear();
    PutU8(&block, static_cast<uint8_t>(col.declared));
    PutPodVector(&block, col.tags);
    PutPod<uint32_t>(&block, static_cast<uint32_t>(col.ints.size()));
    PutPodVector(&block, col.ints);
    // Dense doubles: the double-tagged rows' numeric view, in row order.
    std::vector<double> dbls;
    for (size_t i = 0; i < col.tags.size(); ++i) {
      if (col.tags[i] == static_cast<uint8_t>(ValueType::kDouble)) {
        dbls.push_back(col.nums[i]);
      }
    }
    PutPod<uint32_t>(&block, static_cast<uint32_t>(dbls.size()));
    PutPodVector(&block, dbls);
    PutPod<uint32_t>(&block, static_cast<uint32_t>(col.str_ids.size()));
    PutPodVector(&block, col.str_ids);
    PutPod<uint32_t>(&block, static_cast<uint32_t>(col.dict.size()));
    for (const std::string& s : col.dict) {
      PutPod<uint32_t>(&block, static_cast<uint32_t>(s.size()));
      block.append(s);
    }
    PutBlock(&out, block);
  }
  return out;
}

// Rebuilds the per-row numeric view from the dense vectors and cross-checks
// the tag census — shared by the v3 and v4 column decoders, so both formats
// reject blocks whose dense vectors disagree with their tags.
Status FinalizeAttributeColumn(AttributeColumn* col, const std::vector<double>& dbls,
                               size_t rows, size_t col_index) {
  col->nums.reserve(rows);
  size_t int_cursor = 0;
  size_t dbl_cursor = 0;
  size_t str_cursor = 0;
  for (size_t i = 0; i < rows; ++i) {
    switch (col->tags[i]) {
      case static_cast<uint8_t>(ValueType::kInt64):
        if (int_cursor >= col->ints.size()) {
          return Status::Corruption(
              StrFormat("column %zu: tag census exceeds %zu stored ints",
                        col_index, col->ints.size()));
        }
        col->nums.push_back(static_cast<double>(col->ints[int_cursor++]));
        break;
      case static_cast<uint8_t>(ValueType::kDouble):
        if (dbl_cursor >= dbls.size()) {
          return Status::Corruption(
              StrFormat("column %zu: tag census exceeds %zu stored doubles",
                        col_index, dbls.size()));
        }
        col->nums.push_back(dbls[dbl_cursor++]);
        break;
      case static_cast<uint8_t>(ValueType::kString):
        if (str_cursor >= col->str_ids.size()) {
          return Status::Corruption(
              StrFormat("column %zu: tag census exceeds %zu stored strings",
                        col_index, col->str_ids.size()));
        }
        if (col->str_ids[str_cursor] >= col->dict.size()) {
          return Status::Corruption(
              StrFormat("column %zu: string id %u outside dictionary of %zu",
                        col_index, col->str_ids[str_cursor], col->dict.size()));
        }
        ++str_cursor;
        col->nums.push_back(std::numeric_limits<double>::quiet_NaN());
        break;
      case kMissingValueTag:
        col->nums.push_back(std::numeric_limits<double>::quiet_NaN());
        break;
      default:
        return Status::Corruption(StrFormat("column %zu: bad value tag %u at row %zu",
                                            col_index, col->tags[i], i));
    }
  }
  if (int_cursor != col->ints.size() || dbl_cursor != dbls.size() ||
      str_cursor != col->str_ids.size()) {
    return Status::Corruption(
        StrFormat("column %zu: dense vectors longer than their tag census",
                  col_index));
  }
  return Status::OK();
}

Result<AttributeColumn> ParseColumnBlock(std::string_view payload, size_t rows,
                                         size_t col_index) {
  Reader r(payload);
  AttributeColumn col;
  EXSTREAM_ASSIGN_OR_RETURN(const uint8_t declared, r.Get<uint8_t>());
  if (declared > static_cast<uint8_t>(ValueType::kString)) {
    return Status::Corruption(
        StrFormat("column %zu: bad declared type %u", col_index, declared));
  }
  col.declared = static_cast<ValueType>(declared);
  EXSTREAM_RETURN_NOT_OK(r.GetPodVector(rows, &col.tags));

  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_ints, r.Get<uint32_t>());
  if (n_ints > rows) {
    return Status::Corruption(
        StrFormat("column %zu: %u int rows exceed row count %zu", col_index,
                  n_ints, rows));
  }
  EXSTREAM_RETURN_NOT_OK(r.GetPodVector(n_ints, &col.ints));

  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_dbls, r.Get<uint32_t>());
  if (n_dbls > rows) {
    return Status::Corruption(
        StrFormat("column %zu: %u double rows exceed row count %zu", col_index,
                  n_dbls, rows));
  }
  std::vector<double> dbls;
  EXSTREAM_RETURN_NOT_OK(r.GetPodVector(n_dbls, &dbls));

  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t n_strs, r.Get<uint32_t>());
  if (n_strs > rows) {
    return Status::Corruption(
        StrFormat("column %zu: %u string rows exceed row count %zu", col_index,
                  n_strs, rows));
  }
  EXSTREAM_RETURN_NOT_OK(r.GetPodVector(n_strs, &col.str_ids));

  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t dict_n, r.Get<uint32_t>());
  // Every dictionary entry costs at least its u32 length prefix.
  if (static_cast<uint64_t>(dict_n) * sizeof(uint32_t) > r.remaining()) {
    return Status::Corruption(
        StrFormat("column %zu: dictionary count %u cannot fit in %zu bytes",
                  col_index, dict_n, r.remaining()));
  }
  col.dict.reserve(dict_n);
  for (uint32_t d = 0; d < dict_n; ++d) {
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t len, r.Get<uint32_t>());
    EXSTREAM_ASSIGN_OR_RETURN(std::string s, r.GetBytes(len));
    col.dict.push_back(std::move(s));
  }
  if (!r.AtEnd()) {
    return Status::Corruption(StrFormat("column %zu: %zu trailing bytes",
                                        col_index, r.remaining()));
  }
  EXSTREAM_RETURN_NOT_OK(FinalizeAttributeColumn(&col, dbls, rows, col_index));
  return col;
}

// --- v4: compressed columnar layout (same block framing as v3) ---

std::string SerializeCompressedPayload(const ChunkColumns& columns) {
  std::string out;
  PutPod<uint32_t>(&out, kMagicV4);
  PutPod<uint32_t>(&out, static_cast<uint32_t>(columns.rows()));
  PutPod<uint32_t>(&out, columns.type());
  PutPod<uint16_t>(&out, static_cast<uint16_t>(columns.num_columns()));

  std::string block;
  EncodeTimestampsDoD(columns.ts(), &block);
  PutBlock(&out, block);

  for (const AttributeColumn& col : columns.attrs()) {
    block.clear();
    PutU8(&block, static_cast<uint8_t>(col.declared));
    EncodeTagsRle(col.tags, &block);
    PutVarint(&block, col.ints.size());
    EncodeInts(col.ints.data(), col.ints.size(), &block);
    // Dense doubles: the double-tagged rows' numeric view, in row order.
    std::vector<double> dbls;
    for (size_t i = 0; i < col.tags.size(); ++i) {
      if (col.tags[i] == static_cast<uint8_t>(ValueType::kDouble)) {
        dbls.push_back(col.nums[i]);
      }
    }
    PutVarint(&block, dbls.size());
    EncodeDoubles(dbls.data(), dbls.size(), &block);
    PutVarint(&block, col.str_ids.size());
    EncodeU32s(col.str_ids.data(), col.str_ids.size(), &block);
    PutVarint(&block, col.dict.size());
    for (const std::string& s : col.dict) {
      PutVarint(&block, s.size());
      block.append(s);
    }
    PutBlock(&out, block);
  }
  return out;
}

Result<AttributeColumn> ParseColumnBlockV4(std::string_view payload, size_t rows,
                                           size_t col_index) {
  ByteReader r(payload);
  AttributeColumn col;
  EXSTREAM_ASSIGN_OR_RETURN(const uint8_t declared, r.GetU8());
  if (declared > static_cast<uint8_t>(ValueType::kString)) {
    return Status::Corruption(
        StrFormat("column %zu: bad declared type %u", col_index, declared));
  }
  col.declared = static_cast<ValueType>(declared);
  EXSTREAM_RETURN_NOT_OK(DecodeTagsRle(&r, rows, &col.tags));

  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t n_ints, r.GetVarint());
  if (n_ints > rows) {
    return Status::Corruption(
        StrFormat("column %zu: %llu int rows exceed row count %zu", col_index,
                  static_cast<unsigned long long>(n_ints), rows));
  }
  EXSTREAM_RETURN_NOT_OK(DecodeInts(&r, static_cast<size_t>(n_ints), &col.ints));

  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t n_dbls, r.GetVarint());
  if (n_dbls > rows) {
    return Status::Corruption(
        StrFormat("column %zu: %llu double rows exceed row count %zu", col_index,
                  static_cast<unsigned long long>(n_dbls), rows));
  }
  std::vector<double> dbls;
  EXSTREAM_RETURN_NOT_OK(DecodeDoubles(&r, static_cast<size_t>(n_dbls), &dbls));

  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t n_strs, r.GetVarint());
  if (n_strs > rows) {
    return Status::Corruption(
        StrFormat("column %zu: %llu string rows exceed row count %zu", col_index,
                  static_cast<unsigned long long>(n_strs), rows));
  }
  EXSTREAM_RETURN_NOT_OK(DecodeU32s(&r, static_cast<size_t>(n_strs), &col.str_ids));

  EXSTREAM_ASSIGN_OR_RETURN(const uint64_t dict_n, r.GetVarint());
  // Every dictionary entry costs at least its 1-byte length varint.
  if (dict_n > r.remaining()) {
    return Status::Corruption(
        StrFormat("column %zu: dictionary count %llu cannot fit in %zu bytes",
                  col_index, static_cast<unsigned long long>(dict_n), r.remaining()));
  }
  col.dict.reserve(static_cast<size_t>(dict_n));
  for (uint64_t d = 0; d < dict_n; ++d) {
    EXSTREAM_ASSIGN_OR_RETURN(const uint64_t len, r.GetVarint());
    EXSTREAM_ASSIGN_OR_RETURN(const std::string_view s,
                              r.GetBytes(static_cast<size_t>(len)));
    col.dict.emplace_back(s);
  }
  if (!r.AtEnd()) {
    return Status::Corruption(StrFormat("column %zu: %zu trailing bytes",
                                        col_index, r.remaining()));
  }
  EXSTREAM_RETURN_NOT_OK(FinalizeAttributeColumn(&col, dbls, rows, col_index));
  return col;
}

Result<ChunkColumns> ParseColumnarBuffer(std::string_view data) {
  Reader r(data);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, r.Get<uint32_t>());
  if (magic != kMagicV3 && magic != kMagicV4) {
    return Status::Corruption(
        StrFormat("bad columnar buffer magic 0x%08x at offset 0", magic));
  }
  const bool v4 = magic == kMagicV4;
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t rows, r.Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t type, r.Get<uint32_t>());
  EXSTREAM_ASSIGN_OR_RETURN(const uint16_t ncols, r.Get<uint16_t>());
  // The ts column alone needs rows * 8 bytes uncompressed, or at least one
  // delta-of-delta varint byte per row compressed; reject an impossible row
  // count before any allocation.
  const uint64_t min_ts_bytes =
      static_cast<uint64_t>(rows) * (v4 ? 1 : sizeof(int64_t));
  if (min_ts_bytes > r.remaining()) {
    return Status::Corruption(
        StrFormat("row count %u needs at least %llu bytes but %zu remain", rows,
                  static_cast<unsigned long long>(min_ts_bytes), r.remaining()));
  }

  ChunkColumns columns;
  columns.set_type(type);
  EXSTREAM_ASSIGN_OR_RETURN(const std::string_view ts_block, GetBlock(&r, "ts"));
  if (v4) {
    const Status st = DecodeTimestampsDoD(ts_block, rows, columns.mutable_ts());
    if (!st.ok()) return Status(st.code(), "ts column: " + st.message());
  } else {
    if (ts_block.size() != static_cast<size_t>(rows) * sizeof(int64_t)) {
      return Status::Corruption(
          StrFormat("ts column holds %zu bytes, %u rows need %zu", ts_block.size(),
                    rows, static_cast<size_t>(rows) * sizeof(int64_t)));
    }
    columns.mutable_ts()->resize(rows);
    std::memcpy(columns.mutable_ts()->data(), ts_block.data(), ts_block.size());
  }

  columns.mutable_attrs()->reserve(ncols);
  for (uint16_t c = 0; c < ncols; ++c) {
    char what[32];
    snprintf(what, sizeof(what), "attr%u", c);
    EXSTREAM_ASSIGN_OR_RETURN(const std::string_view block, GetBlock(&r, what));
    EXSTREAM_ASSIGN_OR_RETURN(AttributeColumn col,
                              v4 ? ParseColumnBlockV4(block, rows, c)
                                 : ParseColumnBlock(block, rows, c));
    columns.mutable_attrs()->push_back(std::move(col));
  }
  if (!r.AtEnd()) {
    return Status::Corruption(StrFormat("%zu trailing bytes after %u columns",
                                        r.remaining(), ncols));
  }
  return columns;
}

// Prefixes a (non-OK) status message with the file path, keeping the code.
Status AnnotateWithPath(const Status& st, const std::string& path) {
  return Status(st.code(), path + ": " + st.message());
}

void ApplyInjectedDelay(const FaultPlan& plan) {
  std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
}

// Writes `data` to `path` atomically (temp file + fsync + rename), honoring
// injected write faults. Shared by the row and columnar file writers.
Status WriteBufferFileAtomic(const std::string& path, std::string data) {
  size_t write_bytes = data.size();

  if (auto fault =
          FaultInjector::Global().Intercept(FaultOp::kWrite, "spill-write", path)) {
    switch (fault->mode) {
      case FaultMode::kFailOpen:
      case FaultMode::kReset:
        return Status::IOError("injected open failure writing " + path);
      case FaultMode::kNoSpace:
        return Status::IOError("injected ENOSPC writing " + path);
      case FaultMode::kTruncate:
        // Simulates a torn write that still reached the final name (e.g.
        // post-rename media failure): only a prefix lands on disk.
        write_bytes = std::min(write_bytes, fault->truncate_to);
        break;
      case FaultMode::kCorruptBytes: {
        const size_t off = fault->corrupt_offset == SIZE_MAX
                               ? data.size() / 2
                               : std::min(fault->corrupt_offset, data.size() - 1);
        if (!data.empty()) data[off] = static_cast<char>(data[off] ^ 0x5A);
        break;
      }
      case FaultMode::kDelay:
        ApplyInjectedDelay(*fault);
        break;
    }
  }

  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + tmp);
  const size_t written = fwrite(data.data(), 1, write_bytes, f);
  if (written != write_bytes) {
    fclose(f);
    remove(tmp.c_str());
    return Status::IOError(StrFormat("short write to %s (%zu of %zu bytes)",
                                     tmp.c_str(), written, write_bytes));
  }
  // Flush user-space buffers and force the data to the device before the
  // rename publishes the file: a crash can lose the spill, never expose a
  // half-written one under its final name.
  if (fflush(f) != 0 || fsync(fileno(f)) != 0) {
    fclose(f);
    remove(tmp.c_str());
    return Status::IOError("cannot fsync " + tmp);
  }
  fclose(f);
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

// Reads the raw bytes of `path`, honoring injected read faults.
Result<std::string> ReadBufferFile(const std::string& path) {
  std::optional<FaultPlan> fault =
      FaultInjector::Global().Intercept(FaultOp::kRead, "spill-read", path);
  if (fault.has_value()) {
    if (fault->mode == FaultMode::kFailOpen || fault->mode == FaultMode::kReset) {
      return Status::IOError("injected open failure reading " + path);
    }
    if (fault->mode == FaultMode::kDelay) ApplyInjectedDelay(*fault);
  }

  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  fclose(f);

  if (fault.has_value()) {
    if (fault->mode == FaultMode::kTruncate) {
      data.resize(std::min(data.size(), fault->truncate_to));
    } else if (fault->mode == FaultMode::kCorruptBytes && !data.empty()) {
      const size_t off = fault->corrupt_offset == SIZE_MAX
                             ? data.size() / 2
                             : std::min(fault->corrupt_offset, data.size() - 1);
      data[off] = static_cast<char>(data[off] ^ 0x5A);
    }
  }
  return data;
}

}  // namespace

std::string SerializeEvents(const std::vector<Event>& events, SpillFormat format) {
  if (format == SpillFormat::kV3 || format == SpillFormat::kV4) {
    auto columns = ChunkColumns::FromRows(events);
    if (columns.ok()) {
      return format == SpillFormat::kV4 ? SerializeCompressedPayload(*columns)
                                        : SerializeColumnarPayload(*columns);
    }
    // Mixed-type rows cannot form a chunk; fall back to the self-describing
    // v2 row layout (readable by every DeserializeEvents).
    return SerializeRowPayload(events, SpillFormat::kV2);
  }
  return SerializeRowPayload(events, format);
}

Result<std::vector<Event>> DeserializeEvents(std::string_view data) {
  Reader r(data);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, r.Get<uint32_t>());
  if (magic == kMagicV3 || magic == kMagicV4) {
    EXSTREAM_ASSIGN_OR_RETURN(const ChunkColumns columns, ParseColumnarBuffer(data));
    std::vector<Event> events;
    columns.MaterializeRows(0, columns.rows(), &events);
    return events;
  }
  if (magic != kMagicV1 && magic != kMagicV2) {
    return Status::Corruption(
        StrFormat("bad event buffer magic 0x%08x at offset 0", magic));
  }
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t count, r.Get<uint32_t>());
  if (magic == kMagicV2) {
    EXSTREAM_ASSIGN_OR_RETURN(const uint32_t stored_crc, r.Get<uint32_t>());
    const uint32_t computed =
        Crc32(data.data() + r.pos(), data.size() - r.pos());
    if (computed != stored_crc) {
      return Status::Corruption(
          StrFormat("payload checksum mismatch: stored 0x%08x, computed 0x%08x "
                    "over %zu bytes at offset %zu",
                    stored_crc, computed, data.size() - r.pos(), r.pos()));
    }
  }
  return ParseEventPayload(&r, count);
}

std::string SerializeColumns(const ChunkColumns& columns, SpillFormat format) {
  if (format == SpillFormat::kV4) return SerializeCompressedPayload(columns);
  if (format == SpillFormat::kV3) return SerializeColumnarPayload(columns);
  std::vector<Event> rows;
  columns.MaterializeRows(0, columns.rows(), &rows);
  return SerializeRowPayload(rows, format);
}

Result<ChunkColumns> DeserializeColumns(std::string_view data) {
  Reader r(data);
  EXSTREAM_ASSIGN_OR_RETURN(const uint32_t magic, r.Get<uint32_t>());
  if (magic == kMagicV3 || magic == kMagicV4) return ParseColumnarBuffer(data);
  // v1/v2: parse the row layout, then fold into columns.
  EXSTREAM_ASSIGN_OR_RETURN(const std::vector<Event> events, DeserializeEvents(data));
  return ChunkColumns::FromRows(events);
}

Status WriteEventsFile(const std::string& path, const std::vector<Event>& events,
                       SpillFormat format) {
  return WriteBufferFileAtomic(path, SerializeEvents(events, format));
}

Result<std::vector<Event>> ReadEventsFile(const std::string& path) {
  EXSTREAM_ASSIGN_OR_RETURN(const std::string data, ReadBufferFile(path));
  auto events = DeserializeEvents(data);
  if (!events.ok()) return AnnotateWithPath(events.status(), path);
  return events;
}

Status WriteColumnsFile(const std::string& path, const ChunkColumns& columns,
                        SpillFormat format) {
  return WriteBufferFileAtomic(path, SerializeColumns(columns, format));
}

Result<ChunkColumns> ReadColumnsFile(const std::string& path) {
  // Cold reads go through mmap: the decoder parses straight from the kernel
  // page cache instead of a heap copy of the whole file. The mapping lives
  // only for the decode — the decoded columns own their memory and are what
  // ScanView pins. MmapFile carries its own fault-injection site
  // ("mmap-read"), so this path makes exactly one Intercept call per read,
  // like the buffered path it replaces.
  EXSTREAM_ASSIGN_OR_RETURN(const MmapFile file, MmapFile::Open(path));
  auto columns = DeserializeColumns(file.view());
  if (!columns.ok()) return AnnotateWithPath(columns.status(), path);
  return columns;
}

}  // namespace exstream
